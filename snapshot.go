package adjstream

import (
	"context"
	"fmt"
	"io"
	"os"

	"adjstream/internal/stream"
)

// Splitting a run across processes. A median-of-k estimation is k
// independent copies whose results meet only at the final median, so the
// copy set [0,k) can be partitioned into disjoint ranges, each range run by
// a separate process with EstimateShardContext, the resulting snapshots
// written to files with WriteSnapshotFile, and the files merged back into
// the bit-identical Result with ReadSnapshotFile + MergeSnapshots (or the
// adjmerge command). Copy i receives the same seed no matter which shard
// runs it — the per-copy schedule depends only on Options.Seed and i — so
// the split is invisible in the output.

// CopySnapshot is one copy's serialized completed-run summary; see
// EstimateShardContext and MergeSnapshots.
type CopySnapshot = []byte

// EstimateShardContext runs the copy range [lo, hi) of the k-copy estimation
// opts describes over s and returns one snapshot per copy, in copy order.
// The full run has k = opts.copies() copies (from Copies or Confidence);
// 0 ≤ lo < hi ≤ k is required. Parallel and Driver choose how the shard's
// copies traverse the stream, exactly as in EstimateContext. The snapshots
// from shards covering all of [0, k) merge into the bit-identical
// single-process Result via MergeSnapshots. Errors wrap ErrUnknownAlgorithm,
// ErrInvalidOptions, or ErrCanceled.
func EstimateShardContext(ctx context.Context, s *Stream, opts Options, lo, hi int) ([]CopySnapshot, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Model == ModelArbitrary {
		return nil, fmt.Errorf("%w: Model %q has no snapshot transport; shard execution is adjacency-list only", ErrInvalidOptions, opts.Model)
	}
	k := opts.copies()
	if lo < 0 || hi <= lo || hi > k {
		return nil, fmt.Errorf("%w: copy range [%d,%d) outside [0,%d)", ErrInvalidOptions, lo, hi, k)
	}
	copies := make([]Estimator, hi-lo)
	for i := range copies {
		seed := opts.Seed
		if k > 1 {
			seed = opts.Seed + uint64(lo+i)*0x9e37_79b9 + 1
		}
		e, err := opts.wrapSingle(seed)
		if err != nil {
			return nil, err
		}
		if _, ok := e.(stream.Snapshotter); !ok {
			return nil, fmt.Errorf("%w: algorithm %q does not support snapshots", ErrInvalidOptions, opts.Algorithm)
		}
		copies[i] = e
	}
	if opts.Parallel && len(copies) > 1 {
		var err error
		switch opts.Driver {
		case DriverReplay:
			err = stream.RunParallelContext(ctx, s, copies)
		case DriverPushBroadcast:
			_, err = stream.RunBroadcastConfigContext(ctx, s, copies, stream.BroadcastConfig{Push: true})
		default: // DriverBroadcast or ""
			_, err = stream.RunBroadcastContext(ctx, s, copies)
		}
		if err != nil {
			return nil, canceled(err)
		}
	} else {
		for _, e := range copies {
			if err := stream.RunContext(ctx, s, e); err != nil {
				return nil, canceled(err)
			}
		}
	}
	snaps := make([]CopySnapshot, len(copies))
	for i, e := range copies {
		snaps[i] = e.(stream.Snapshotter).Snapshot()
	}
	return snaps, nil
}

// MergeSnapshots combines per-copy snapshots — from any partition of a run's
// copies into shards, in any order — into the run's Result: the median
// estimate, summed space peaks, and the max pass/edge counts. The result is
// bit-identical to the single-process EstimateContext over the same copies.
// Result.Driver is empty; the caller knows how its shards were executed.
// All snapshots must come from the same algorithm.
func MergeSnapshots(snaps []CopySnapshot) (Result, error) {
	cs, err := stream.MergeMedianSet(snaps)
	if err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return Result{
		Estimate:   cs.Estimate,
		SpaceWords: cs.SpaceWords,
		Passes:     int(cs.Passes),
		M:          cs.M,
		Copies:     len(snaps),
	}, nil
}

// SnapshotAlgorithm reports the algorithm tag a snapshot carries, without
// restoring it.
func SnapshotAlgorithm(snap CopySnapshot) (Algorithm, error) {
	cs, err := stream.DecodeCopyState(snap)
	if err != nil {
		return "", fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return Algorithm(cs.Algo), nil
}

// WriteSnapshotSet writes a snapshot-set to w: the "adjM" magic, a uint32
// version, a uint32 record count, then one record per snapshot — uint32
// global copy index (lo, lo+1, …), uint32 payload length, payload bytes —
// all little-endian. The index records which copies of the full run the
// shard covered, letting the merge verify disjoint full coverage. The same
// framing carries shard results over HTTP in cluster mode (see
// internal/cluster and stream.SnapshotSetContentType).
func WriteSnapshotSet(w io.Writer, lo int, snaps []CopySnapshot) error {
	return stream.WriteSnapshotSet(w, lo, snaps)
}

// ReadSnapshotSet reads a snapshot-set written by WriteSnapshotSet,
// returning each record's global copy index and payload.
func ReadSnapshotSet(r io.Reader) (indices []int, snaps []CopySnapshot, err error) {
	return stream.ReadSnapshotSet(r)
}

// WriteSnapshotFile writes a snapshot-set file (see WriteSnapshotSet).
func WriteSnapshotFile(path string, lo int, snaps []CopySnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("adjstream: %w", err)
	}
	if err := WriteSnapshotSet(f, lo, snaps); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("adjstream: %w", err)
	}
	return nil
}

// ReadSnapshotFile reads a snapshot-set file written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (indices []int, snaps []CopySnapshot, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("adjstream: %w", err)
	}
	defer f.Close()
	return ReadSnapshotSet(f)
}
