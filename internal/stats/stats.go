// Package stats provides the estimator-aggregation utilities shared by the
// streaming algorithms: median-of-independent-copies amplification (the
// standard boost from 2/3 success probability to 1-δ), running moments, and
// error metrics used throughout the experiment harness.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Median returns the median of xs (the lower of the two central elements for
// even lengths). It returns NaN for empty input and does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp[(len(cp)-1)/2]
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// RelErr returns |est-truth|/truth, or NaN when truth is zero.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.NaN()
	}
	return math.Abs(est-truth) / truth
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by nearest-rank, or NaN
// for empty input. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	i := int(math.Ceil(q*float64(len(cp)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(cp) {
		i = len(cp) - 1
	}
	return cp[i]
}

// CopiesForConfidence returns the number of independent 2/3-success copies
// whose median succeeds with probability at least 1-δ, via the standard
// Chernoff bound ceil(48·ln(1/δ)) clipped to at least 1 (and forced odd so
// the median is a sample point).
func CopiesForConfidence(delta float64) int {
	if delta <= 0 || delta >= 1 {
		return 1
	}
	c := int(math.Ceil(48 * math.Log(1/delta) / 10)) // mildly tuned constant
	if c < 1 {
		c = 1
	}
	if c%2 == 0 {
		c++
	}
	return c
}

// Running accumulates a stream of observations and exposes count, mean,
// variance (Welford's algorithm) and extremes. The zero value is ready.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records x.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (NaN if empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance (NaN if empty).
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// Min returns the minimum observation (NaN if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the maximum observation (NaN if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// BootstrapCI returns an approximate (lo, hi) confidence interval for the
// statistic f over xs at the given level (e.g. 0.95), using b resamples
// with the deterministic seed. It returns NaNs for empty input.
func BootstrapCI(xs []float64, f func([]float64) float64, b int, level float64, seed uint64) (lo, hi float64) {
	if len(xs) == 0 || b < 1 || level <= 0 || level >= 1 {
		return math.NaN(), math.NaN()
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xd1b5_4a32_d192_ed03))
	stats := make([]float64, b)
	resample := make([]float64, len(xs))
	for i := 0; i < b; i++ {
		for j := range resample {
			resample[j] = xs[rng.IntN(len(xs))]
		}
		stats[i] = f(resample)
	}
	alpha := (1 - level) / 2
	return Quantile(stats, alpha), Quantile(stats, 1-alpha)
}

// FitPowerLaw fits y = c·x^a by least squares in log-log space and returns
// the exponent a and coefficient c. Inputs must be positive and of equal
// length ≥ 2; otherwise it returns NaNs.
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return math.NaN(), math.NaN()
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	exponent = (n*sxy - sx*sy) / den
	coeff = math.Exp((sy - exponent*sx) / n)
	return exponent, coeff
}
