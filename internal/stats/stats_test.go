package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2},
		{[]float64{5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 1.25 {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.1", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v, want 0.1", got)
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Error("RelErr with zero truth should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("Q50 = %v", got)
	}
	if got := Quantile(xs, 0.9); got != 9 {
		t.Errorf("Q90 = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("Q100 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input should be NaN")
	}
}

func TestCopiesForConfidence(t *testing.T) {
	if got := CopiesForConfidence(0.5); got < 1 || got%2 == 0 {
		t.Errorf("copies(0.5) = %d, want positive odd", got)
	}
	a, b := CopiesForConfidence(0.1), CopiesForConfidence(0.01)
	if b < a {
		t.Errorf("copies should grow as δ shrinks: %d vs %d", a, b)
	}
	if got := CopiesForConfidence(0); got != 1 {
		t.Errorf("copies(0) = %d, want 1", got)
	}
	if got := CopiesForConfidence(1.5); got != 1 {
		t.Errorf("copies(1.5) = %d, want 1", got)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty Running should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningMatchesBatchQuick(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip degenerate inputs
			}
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		scale := 1 + math.Abs(Variance(xs))
		return math.Abs(r.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(r.Variance()-Variance(xs)) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, -2.0/3.0)
	}
	a, c := FitPowerLaw(xs, ys)
	if math.Abs(a-(-2.0/3.0)) > 1e-9 {
		t.Errorf("exponent = %v, want -2/3", a)
	}
	if math.Abs(c-3) > 1e-9 {
		t.Errorf("coeff = %v, want 3", c)
	}
}

func TestFitPowerLawRejectsBadInput(t *testing.T) {
	if a, _ := FitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(a) {
		t.Error("single point should be NaN")
	}
	if a, _ := FitPowerLaw([]float64{1, 2}, []float64{1}); !math.IsNaN(a) {
		t.Error("length mismatch should be NaN")
	}
	if a, _ := FitPowerLaw([]float64{1, -2}, []float64{1, 2}); !math.IsNaN(a) {
		t.Error("non-positive x should be NaN")
	}
	if a, _ := FitPowerLaw([]float64{1, 1}, []float64{1, 2}); !math.IsNaN(a) {
		t.Error("constant x should be NaN")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10) // mean 4.5
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.95, 7)
	if !(lo < 4.5 && 4.5 < hi) {
		t.Fatalf("CI [%v, %v] does not cover the mean", lo, hi)
	}
	if hi-lo > 1.5 {
		t.Fatalf("CI [%v, %v] too wide for n=200", lo, hi)
	}
	if lo2, _ := BootstrapCI(nil, Mean, 100, 0.95, 1); !math.IsNaN(lo2) {
		t.Fatal("empty input should be NaN")
	}
	if lo2, _ := BootstrapCI(xs, Mean, 0, 0.95, 1); !math.IsNaN(lo2) {
		t.Fatal("b=0 should be NaN")
	}
	if lo2, _ := BootstrapCI(xs, Mean, 10, 1.5, 1); !math.IsNaN(lo2) {
		t.Fatal("bad level should be NaN")
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a1, b1 := BootstrapCI(xs, Median, 200, 0.9, 42)
	a2, b2 := BootstrapCI(xs, Median, 200, 0.9, 42)
	if a1 != a2 || b1 != b2 {
		t.Fatal("same seed gave different CIs")
	}
}
