package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adjstream"
)

// seedPtr returns a request seed literal.
func seedPtr(v uint64) *uint64 { return &v }

// completeGraph returns K_n.
func completeGraph(t *testing.T, n int) *adjstream.Graph {
	t.Helper()
	var edges []adjstream.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, adjstream.Edge{U: adjstream.V(u), V: adjstream.V(v)})
		}
	}
	g, err := adjstream.FromEdges(edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// starGraph returns a star with n leaves (cycle-free).
func starGraph(t *testing.T, n int) *adjstream.Graph {
	t.Helper()
	var edges []adjstream.Edge
	for v := 1; v <= n; v++ {
		edges = append(edges, adjstream.Edge{U: 0, V: adjstream.V(v)})
	}
	g, err := adjstream.FromEdges(edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// newTestServer builds a catalog with "k6" (20 triangles) and "star"
// (cycle-free), a Server with cfg, and an httptest server around its
// handler. The httptest server (rather than bare handler calls) is what
// makes client disconnects cancel r.Context.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cat := NewCatalog()
	if _, err := cat.Add("k6", completeGraph(t, 6)); err != nil {
		t.Fatalf("Add k6: %v", err)
	}
	if _, err := cat.Add("star", starGraph(t, 5)); err != nil {
		t.Fatalf("Add star: %v", err)
	}
	srv := New(cat, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends body to path and decodes the response JSON into out.
func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestEstimateExactRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp EstimateResponse
	code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Estimate != 20 { // C(6,3) triangles in K6
		t.Errorf("estimate = %v, want 20", resp.Estimate)
	}
	if resp.Graph != "k6" || resp.Passes <= 0 || resp.M != 15 || resp.Copies != 1 {
		t.Errorf("unexpected response: %+v", resp)
	}
	if resp.Found != nil {
		t.Errorf("estimate response carries found = %v", *resp.Found)
	}
}

// TestEstimateMatchesLibrary asserts the service returns bit-identical
// results to a direct library call with the same options — the service adds
// transport, not arithmetic.
func TestEstimateMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{
		Graph:      "k6",
		Algorithm:  string(adjstream.AlgoNaiveTwoPass),
		SampleSize: 30,
		Copies:     3,
		Parallel:   true,
		Driver:     string(adjstream.DriverBroadcast),
		Seed:       seedPtr(7),
	}
	var resp EstimateResponse
	if code := post(t, ts, "/v1/estimate", req, &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	want, err := adjstream.Estimate(adjstream.SortedStream(completeGraph(t, 6)), req.options())
	if err != nil {
		t.Fatalf("library Estimate: %v", err)
	}
	if resp.Estimate != want.Estimate || resp.SpaceWords != want.SpaceWords ||
		resp.Passes != want.Passes || resp.Copies != want.Copies {
		t.Errorf("service %+v != library %+v", resp, want)
	}
}

func TestDistinguishRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		graph string
		want  bool
	}{
		{"k6", true},
		{"star", false},
	} {
		var resp EstimateResponse
		code := post(t, ts, "/v1/distinguish", EstimateRequest{Graph: tc.graph, SampleSize: 64, Seed: seedPtr(3)}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", tc.graph, code)
		}
		if resp.Found == nil || *resp.Found != tc.want {
			t.Errorf("%s: found = %v, want %v", tc.graph, resp.Found, tc.want)
		}
	}
}

func TestGraphsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatalf("GET /v1/graphs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var gr GraphsResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gr.Graphs) != 2 || gr.Graphs[0].Name != "k6" || gr.Graphs[1].Name != "star" {
		t.Fatalf("graphs = %+v, want sorted [k6 star]", gr.Graphs)
	}
	if gr.Graphs[0].N != 6 || gr.Graphs[0].M != 15 {
		t.Errorf("k6 info = %+v, want n=6 m=15", gr.Graphs[0])
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		path     string
		req      EstimateRequest
		want     int
		wantCode string
	}{
		{"unknown graph", "/v1/estimate", EstimateRequest{Graph: "nope", Algorithm: "exact"}, http.StatusNotFound, "unknown_graph"},
		{"unknown algorithm", "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "nope"}, http.StatusBadRequest, "unknown_algorithm"},
		{"missing algorithm", "/v1/estimate", EstimateRequest{Graph: "k6"}, http.StatusBadRequest, "invalid_options"},
		{"bad order", "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact", Order: "shuffled"}, http.StatusBadRequest, "invalid_options"},
		{"bad cycle len", "/v1/distinguish", EstimateRequest{Graph: "k6", CycleLen: 2}, http.StatusBadRequest, "invalid_options"},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := post(t, ts, tc.path, tc.req, &er); code != tc.want {
			t.Errorf("%s: status = %d, want %d (error %+v)", tc.name, code, tc.want, er.Error)
		} else if er.Error.Code != tc.wantCode || er.Error.Message == "" {
			t.Errorf("%s: envelope = %+v, want code %q with a message", tc.name, er.Error, tc.wantCode)
		}
	}

	// Unknown JSON fields are rejected, not silently dropped.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"k6","algorithm":"exact","bogus":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}

	// Wrong method: 405 with an Allow header and the envelope code.
	resp, err = http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode 405 body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET estimate: status = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET estimate: Allow = %q, want POST", resp.Header.Get("Allow"))
	}
	if er.Error.Code != "method_not_allowed" {
		t.Errorf("GET estimate: envelope code = %q, want method_not_allowed", er.Error.Code)
	}
}

func TestRandomOrderDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{
		Graph: "k6", Algorithm: string(adjstream.AlgoNaiveTwoPass),
		SampleSize: 30, Seed: seedPtr(11), Order: "random",
	}
	var a, b EstimateResponse
	if code := post(t, ts, "/v1/estimate", req, &a); code != http.StatusOK {
		t.Fatalf("first: status = %d", code)
	}
	if code := post(t, ts, "/v1/estimate", req, &b); code != http.StatusOK {
		t.Fatalf("second: status = %d", code)
	}
	if a.Estimate != b.Estimate || a.SpaceWords != b.SpaceWords {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

// gate is the deterministic test seam: each request signals entered and
// blocks until release or its context fires.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (g *gate) hook(ctx context.Context) {
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
	}
}

func waitEntered(t *testing.T, g *gate) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the worker slot")
	}
}

func TestSaturationReturns429(t *testing.T) {
	g := newGate()
	// CacheEntries -1: the duplicate request must hit the pool, not
	// coalesce with the in-flight one.
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, CacheEntries: -1, testHookRun: g.hook})

	first := make(chan int, 1)
	go func() {
		var resp EstimateResponse
		first <- post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp)
	}()
	waitEntered(t, g)

	// Slot held, queue disabled: the next request must fail fast.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"k6","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("second POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if srv.Pool().Rejected() == 0 {
		t.Error("pool did not count the rejection")
	}

	close(g.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", code)
	}
}

// TestDeadlineCancelsAndFreesSlot drives a request past its deadline while
// it holds the only worker slot: the run must fail with 504 and the slot
// must come back so the next request succeeds.
func TestDeadlineCancelsAndFreesSlot(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, CacheEntries: -1, testHookRun: g.hook})

	// The hook blocks until the 20ms deadline fires, so the run starts
	// with an expired context.
	var resp EstimateResponse
	code := post(t, ts, "/v1/estimate",
		EstimateRequest{Graph: "k6", Algorithm: "exact", TimeoutMS: 20}, &resp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504", code)
	}

	deadline := time.After(5 * time.Second)
	for !srv.Pool().Idle() {
		select {
		case <-deadline:
			t.Fatal("worker slot never released after cancellation")
		case <-time.After(time.Millisecond):
		}
	}

	// The freed slot serves the next request (gate open from here on).
	close(g.release)
	var ok EstimateResponse
	if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &ok); code != http.StatusOK {
		t.Fatalf("after cancellation: status = %d, want 200", code)
	}
	if ok.Estimate != 20 {
		t.Errorf("estimate = %v, want 20", ok.Estimate)
	}
}

// TestClientDisconnectFreesSlot cancels the client's request mid-run and
// asserts the worker slot is returned.
func TestClientDisconnectFreesSlot(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, CacheEntries: -1, testHookRun: g.hook})
	defer close(g.release)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"graph":"k6","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitEntered(t, g)
	cancel()
	<-done

	deadline := time.After(5 * time.Second)
	for !srv.Pool().Idle() {
		select {
		case <-deadline:
			t.Fatal("worker slot never released after client disconnect")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestGracefulDrain flips drain mode while a request is in flight: health
// and new work go 503, the in-flight request completes, and DrainWait
// returns once the pool is empty.
func TestGracefulDrain(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 2, CacheEntries: -1, testHookRun: g.hook})

	first := make(chan EstimateResponse, 1)
	go func() {
		var resp EstimateResponse
		if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp); code != http.StatusOK {
			resp.Estimate = -1
		}
		first <- resp
	}()
	waitEntered(t, g)

	srv.SetDraining(true)

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", hr.StatusCode, health)
	}
	if health.InFlight != 1 {
		t.Errorf("healthz in_flight = %d, want 1", health.InFlight)
	}

	if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("estimate while draining: status = %d, want 503", code)
	}

	// The in-flight request runs to completion with a correct answer.
	close(g.release)
	resp := <-first
	if resp.Estimate != 20 {
		t.Fatalf("in-flight request under drain: estimate = %v, want 20", resp.Estimate)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait: %v", err)
	}

	srv.SetDraining(false)
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain off = %d, want 200", hr.StatusCode)
	}
}

func TestPoolAcquire(t *testing.T) {
	p := NewPool(1, 0)
	rel, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if p.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", p.InFlight())
	}
	if _, err := p.Acquire(context.Background()); err != ErrSaturated {
		t.Fatalf("saturated Acquire err = %v, want ErrSaturated", err)
	}
	rel()
	rel() // idempotent
	if !p.Idle() {
		t.Error("pool not idle after release")
	}
	if rel2, err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	} else {
		rel2()
	}
}

func TestPoolQueueWaiterCancel(t *testing.T) {
	p := NewPool(1, 1)
	rel, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx)
		errc <- err
	}()
	deadline := time.After(5 * time.Second)
	for p.Waiting() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}
	if p.Waiting() != 0 {
		t.Errorf("Waiting = %d after cancel, want 0", p.Waiting())
	}
	// The abandoned ticket is returned: a fresh waiter can still queue.
	select {
	case p.tickets <- struct{}{}:
		<-p.tickets
	default:
		t.Error("ticket leaked by canceled waiter")
	}
}

func TestCatalogLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeEdges := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	writeEdges("tri.edges", "0 1\n1 2\n2 0\n")
	writeEdges("path.txt", "0 1\n1 2\n")
	cat := NewCatalog()
	n, err := cat.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 2 || cat.Len() != 2 {
		t.Fatalf("loaded %d datasets (len %d), want 2", n, cat.Len())
	}
	d, ok := cat.Get("tri")
	if !ok {
		t.Fatal("dataset tri missing")
	}
	if info := d.Info(); info.N != 3 || info.M != 3 {
		t.Errorf("tri info = %+v, want n=3 m=3", info)
	}
	if _, ok := cat.Get("nope"); ok {
		t.Error("Get(nope) = ok")
	}
}

// postRaw sends body (pre-marshaled JSON) to path and returns the status,
// X-Cache header, and raw response body.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// TestSeedZeroVsAbsent is the regression test for the omitempty seed bug:
// an explicit "seed": 0 must behave exactly like an absent seed (both run
// the server default), the response must always echo the effective seed,
// and a non-zero explicit seed must echo back unchanged.
func TestSeedZeroVsAbsent(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, outcome, absent := postRaw(t, ts, "/v1/estimate", `{"graph":"k6","algorithm":"exact"}`)
	if code != http.StatusOK {
		t.Fatalf("absent seed: status = %d, want 200", code)
	}
	if outcome != string(CacheMiss) {
		t.Fatalf("absent seed: X-Cache = %q, want miss", outcome)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(absent, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Seed != 0 {
		t.Errorf("absent seed echoed as %d, want 0", resp.Seed)
	}
	if !bytes.Contains(absent, []byte(`"seed":0`)) {
		t.Errorf("response does not carry the effective seed: %s", absent)
	}

	// Explicit zero resolves to the same effective seed — and therefore
	// the same cache key: the repeat must be a hit with an identical body.
	code, outcome, explicit := postRaw(t, ts, "/v1/estimate", `{"graph":"k6","algorithm":"exact","seed":0}`)
	if code != http.StatusOK {
		t.Fatalf("explicit seed 0: status = %d, want 200", code)
	}
	if outcome != string(CacheHit) {
		t.Errorf("explicit seed 0 after absent: X-Cache = %q, want hit (same canonical key)", outcome)
	}
	if !bytes.Equal(absent, explicit) {
		t.Errorf("explicit 0 body differs from absent-seed body:\n%s\nvs\n%s", explicit, absent)
	}

	code, _, five := postRaw(t, ts, "/v1/estimate", `{"graph":"k6","algorithm":"exact","seed":5}`)
	if code != http.StatusOK {
		t.Fatalf("seed 5: status = %d, want 200", code)
	}
	if err := json.Unmarshal(five, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Seed != 5 {
		t.Errorf("seed 5 echoed as %d", resp.Seed)
	}
}

// TestValidationBeforeAdmission saturates a size-1 pool with a legitimate
// in-flight request and asserts malformed or misaddressed requests are
// rejected immediately with 400/404 — they must not consume (or wait for)
// a worker slot — while a well-formed request correctly sees 429.
func TestValidationBeforeAdmission(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, CacheEntries: -1, testHookRun: g.hook})

	first := make(chan int, 1)
	go func() {
		var resp EstimateResponse
		first <- post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp)
	}()
	waitEntered(t, g)

	invalid := []struct {
		name string
		path string
		body string
		want int
	}{
		{"unknown algorithm", "/v1/estimate", `{"graph":"k6","algorithm":"nope"}`, http.StatusBadRequest},
		{"missing algorithm", "/v1/estimate", `{"graph":"k6"}`, http.StatusBadRequest},
		{"unknown graph", "/v1/estimate", `{"graph":"ghost","algorithm":"exact"}`, http.StatusNotFound},
		{"bad order", "/v1/estimate", `{"graph":"k6","algorithm":"exact","order":"shuffled"}`, http.StatusBadRequest},
		{"bad cycle len", "/v1/distinguish", `{"graph":"k6","cycle_len":2}`, http.StatusBadRequest},
		{"conflicting copies", "/v1/estimate", `{"graph":"k6","algorithm":"exact","copies":3,"confidence":0.9}`, http.StatusBadRequest},
	}
	for _, tc := range invalid {
		code, _, _ := postRaw(t, ts, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s under saturation: status = %d, want %d", tc.name, code, tc.want)
		}
	}
	if rejected := srv.Pool().Rejected(); rejected != 0 {
		t.Errorf("invalid requests reached the pool: %d rejections", rejected)
	}

	// A well-formed request really is saturated out — the slot is held.
	code, _, _ := postRaw(t, ts, "/v1/estimate", `{"graph":"star","algorithm":"exact"}`)
	if code != http.StatusTooManyRequests {
		t.Errorf("valid request under saturation: status = %d, want 429", code)
	}

	close(g.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request: status = %d, want 200", code)
	}
}

// TestCatalogDeterministicOrderAndDuplicate asserts Infos() is sorted by
// name no matter how Add and LoadDir interleave, and that duplicate names
// fail with the ErrDuplicateGraph sentinel from both Add and LoadFile.
func TestCatalogDeterministicOrderAndDuplicate(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"zeta.edges":  "0 1\n1 2\n2 0\n",
		"alpha.edges": "0 1\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cat := NewCatalog()
	if _, err := cat.Add("mid", completeGraph(t, 4)); err != nil {
		t.Fatalf("Add mid: %v", err)
	}
	if _, err := cat.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if _, err := cat.Add("aaa", completeGraph(t, 3)); err != nil {
		t.Fatalf("Add aaa: %v", err)
	}
	want := []string{"aaa", "alpha", "mid", "zeta"}
	infos := cat.Infos()
	if len(infos) != len(want) {
		t.Fatalf("Infos len = %d, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Fatalf("Infos()[%d] = %q, want %q (full order %+v)", i, info.Name, want[i], infos)
		}
		if info.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", info.Name)
		}
	}

	if _, err := cat.Add("mid", completeGraph(t, 5)); !errors.Is(err, ErrDuplicateGraph) {
		t.Errorf("duplicate Add err = %v, want ErrDuplicateGraph", err)
	}
	if err := cat.LoadFile("alpha", filepath.Join(dir, "alpha.edges")); !errors.Is(err, ErrDuplicateGraph) {
		t.Errorf("duplicate LoadFile err = %v, want ErrDuplicateGraph", err)
	}
	// Failed adds change nothing.
	if got := cat.Len(); got != len(want) {
		t.Errorf("Len after failed adds = %d, want %d", got, len(want))
	}
}

// TestFingerprintDistinguishesContent: same name, different edges, must
// produce different fingerprints — the property cache invalidation on
// catalog reload rests on.
func TestFingerprintDistinguishesContent(t *testing.T) {
	a := NewCatalog()
	b := NewCatalog()
	da, err := a.Add("g", completeGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Add("g", completeGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if da.Fingerprint() == db.Fingerprint() {
		t.Errorf("different graphs share fingerprint %016x", da.Fingerprint())
	}
	same, err := NewCatalog().Add("other", completeGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if da.Fingerprint() != same.Fingerprint() {
		t.Errorf("identical graphs differ: %016x vs %016x", da.Fingerprint(), same.Fingerprint())
	}
}

// TestCacheHitByteIdentical: the repeat of a request is served from the
// cache with a byte-identical body.
func TestCacheHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph":"k6","algorithm":"naive-twopass","sample_size":30,"copies":3,"parallel":true,"seed":7}`
	code, outcome, fresh := postRaw(t, ts, "/v1/estimate", body)
	if code != http.StatusOK || outcome != string(CacheMiss) {
		t.Fatalf("fresh: status %d X-Cache %q, want 200 miss", code, outcome)
	}
	code, outcome, cached := postRaw(t, ts, "/v1/estimate", body)
	if code != http.StatusOK || outcome != string(CacheHit) {
		t.Fatalf("repeat: status %d X-Cache %q, want 200 hit", code, outcome)
	}
	if !bytes.Equal(fresh, cached) {
		t.Errorf("cached body differs:\nfresh  %s\ncached %s", fresh, cached)
	}
	// A different seed is a different key.
	code, outcome, _ = postRaw(t, ts, "/v1/estimate",
		`{"graph":"k6","algorithm":"naive-twopass","sample_size":30,"copies":3,"parallel":true,"seed":8}`)
	if code != http.StatusOK || outcome != string(CacheMiss) {
		t.Errorf("different seed: status %d X-Cache %q, want 200 miss", code, outcome)
	}
}

// TestBatchEndpoint: many specs in one body, one bad spec does not fail
// the batch, repeats are served from the cache.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := BatchRequest{Requests: []EstimateRequest{
		{Graph: "k6", Algorithm: "exact"},
		{Graph: "k6", Algorithm: "nope"},
		{Graph: "ghost", Algorithm: "exact"},
		{Graph: "star", Algorithm: "exact"},
	}}
	var resp BatchResponse
	if code := post(t, ts, "/v1/estimate/batch", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", code)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	if r := resp.Results[0]; r.Status != http.StatusOK || r.Result == nil || r.Result.Estimate != 20 {
		t.Errorf("item 0 = %+v, want 200 with 20 triangles", r)
	}
	if r := resp.Results[1]; r.Status != http.StatusBadRequest || r.Error == nil || r.Error.Code != "unknown_algorithm" || r.Result != nil {
		t.Errorf("item 1 = %+v, want 400 with unknown_algorithm error", r)
	}
	if r := resp.Results[2]; r.Status != http.StatusNotFound || r.Error == nil || r.Error.Code != "unknown_graph" {
		t.Errorf("item 2 = %+v, want 404 with unknown_graph error", r)
	}
	if r := resp.Results[3]; r.Status != http.StatusOK || r.Result == nil || r.Result.Estimate != 0 {
		t.Errorf("item 3 = %+v, want 200 with 0 triangles", r)
	}

	// The repeat batch answers the valid items from the cache.
	var again BatchResponse
	if code := post(t, ts, "/v1/estimate/batch", batch, &again); code != http.StatusOK {
		t.Fatalf("repeat batch status = %d", code)
	}
	for _, i := range []int{0, 3} {
		if again.Results[i].Cache != string(CacheHit) {
			t.Errorf("repeat item %d cache = %q, want hit", i, again.Results[i].Cache)
		}
		if got, want := again.Results[i].Result.Estimate, resp.Results[i].Result.Estimate; got != want {
			t.Errorf("repeat item %d estimate = %v, want %v", i, got, want)
		}
	}

	// Envelope errors: empty and oversized batches, wrong method.
	if code, _, _ := postRaw(t, ts, "/v1/estimate/batch", `{"requests":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", code)
	}
	big := BatchRequest{Requests: make([]EstimateRequest, maxBatchItems+1)}
	if code := post(t, ts, "/v1/estimate/batch", big, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", code)
	}
	getResp, err := http.Get(ts.URL + "/v1/estimate/batch")
	if err != nil {
		t.Fatalf("GET batch: %v", err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status = %d, want 405", getResp.StatusCode)
	}
}

// cacheTestResp builds a distinguishable response for cache unit tests.
func cacheTestResp(v float64) EstimateResponse {
	return EstimateResponse{Graph: "g", Estimate: v}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(cacheShards, 0) // one entry per shard
	keys := make([]cacheKey, 0, 64)
	for i := 0; i < 64; i++ {
		k := cacheKey{kind: "estimate", graph: "g", seed: uint64(i)}
		keys = append(keys, k)
		c.Put(k, cacheTestResp(float64(i)))
	}
	if got := c.Len(); got > cacheShards {
		t.Errorf("Len = %d after 64 puts, want <= %d", got, cacheShards)
	}
	// Whatever remains must be the newest entry of its shard: every
	// surviving key returns its own value.
	survivors := 0
	for i, k := range keys {
		if resp, ok := c.Get(k); ok {
			survivors++
			if resp.Estimate != float64(i) {
				t.Errorf("key %d returned estimate %v", i, resp.Estimate)
			}
		}
	}
	if survivors == 0 || survivors > cacheShards {
		t.Errorf("survivors = %d, want in [1, %d]", survivors, cacheShards)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(64, 5*time.Millisecond)
	k := cacheKey{kind: "estimate", graph: "g", seed: 1}
	c.Put(k, cacheTestResp(1))
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(15 * time.Millisecond)
	if _, ok := c.Get(k); ok {
		t.Error("entry survived past its TTL")
	}
}

// TestCacheCoalescing: N concurrent Do calls on one key run the underlying
// function exactly once; one caller reports miss, the rest coalesced.
func TestCacheCoalescing(t *testing.T) {
	c := NewCache(64, 0)
	k := cacheKey{kind: "estimate", graph: "g", seed: 42}
	var runs atomic.Int64
	release := make(chan struct{})
	run := func(ctx context.Context) (EstimateResponse, error) {
		runs.Add(1)
		select {
		case <-release:
			return cacheTestResp(7), nil
		case <-ctx.Done():
			return EstimateResponse{}, ctx.Err()
		}
	}
	const n = 16
	outcomes := make(chan CacheOutcome, n)
	errs := make(chan error, n)
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		go func() {
			started.Done()
			resp, outcome, err := c.Do(context.Background(), k, time.Minute, run)
			if err == nil && resp.Estimate != 7 {
				err = errors.New("wrong cached value")
			}
			outcomes <- outcome
			errs <- err
		}()
	}
	started.Wait()
	// Let every goroutine reach the flight before releasing the run.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	miss, coalesced := 0, 0
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Do: %v", err)
		}
		switch <-outcomes {
		case CacheMiss:
			miss++
		case CacheCoalesced:
			coalesced++
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("underlying run executed %d times, want exactly 1", got)
	}
	if miss != 1 || coalesced != n-1 {
		t.Errorf("outcomes: %d miss, %d coalesced; want 1 and %d", miss, coalesced, n-1)
	}
	// The populated entry serves subsequent calls without running.
	if resp, outcome, err := c.Do(context.Background(), k, time.Minute, run); err != nil || outcome != CacheHit || resp.Estimate != 7 {
		t.Errorf("post-flight Do = (%v, %v, %v), want hit of 7", resp.Estimate, outcome, err)
	}
}

// TestCacheWaiterAbandonKeepsLeaderRunning: a waiter whose context fires
// gets its own context error, while the leader's run continues untouched
// and still populates the cache.
func TestCacheWaiterAbandonKeepsLeaderRunning(t *testing.T) {
	c := NewCache(64, 0)
	k := cacheKey{kind: "estimate", graph: "g", seed: 9}
	release := make(chan struct{})
	sawCancel := make(chan error, 1)
	run := func(ctx context.Context) (EstimateResponse, error) {
		select {
		case <-release:
			sawCancel <- nil
			return cacheTestResp(3), nil
		case <-ctx.Done():
			sawCancel <- ctx.Err()
			return EstimateResponse{}, ctx.Err()
		}
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), k, time.Minute, run)
		leaderDone <- err
	}()
	// Wait for the flight to exist, then join it with a cancellable waiter.
	deadline := time.After(5 * time.Second)
	for {
		sh := &c.shards[k.shardOf()]
		sh.mu.Lock()
		_, ok := sh.flights[k]
		sh.mu.Unlock()
		if ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("flight never registered")
		case <-time.After(time.Millisecond):
		}
	}
	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(wctx, k, time.Minute, run)
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter join
	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter err = %v, want context.Canceled", err)
	}
	// The leader's run is still alive: releasing it completes the flight.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v after waiter abandoned", err)
	}
	if err := <-sawCancel; err != nil {
		t.Fatalf("run context fired (%v) although the leader was still waiting", err)
	}
	if resp, ok := c.Get(k); !ok || resp.Estimate != 3 {
		t.Errorf("result not cached after flight: %v %v", resp.Estimate, ok)
	}
}
