package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adjstream"
)

// completeGraph returns K_n.
func completeGraph(t *testing.T, n int) *adjstream.Graph {
	t.Helper()
	var edges []adjstream.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, adjstream.Edge{U: adjstream.V(u), V: adjstream.V(v)})
		}
	}
	g, err := adjstream.FromEdges(edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// starGraph returns a star with n leaves (cycle-free).
func starGraph(t *testing.T, n int) *adjstream.Graph {
	t.Helper()
	var edges []adjstream.Edge
	for v := 1; v <= n; v++ {
		edges = append(edges, adjstream.Edge{U: 0, V: adjstream.V(v)})
	}
	g, err := adjstream.FromEdges(edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// newTestServer builds a catalog with "k6" (20 triangles) and "star"
// (cycle-free), a Server with cfg, and an httptest server around its
// handler. The httptest server (rather than bare handler calls) is what
// makes client disconnects cancel r.Context.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cat := NewCatalog()
	if _, err := cat.Add("k6", completeGraph(t, 6)); err != nil {
		t.Fatalf("Add k6: %v", err)
	}
	if _, err := cat.Add("star", starGraph(t, 5)); err != nil {
		t.Fatalf("Add star: %v", err)
	}
	srv := New(cat, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// post sends body to path and decodes the response JSON into out.
func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestEstimateExactRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp EstimateResponse
	code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if resp.Estimate != 20 { // C(6,3) triangles in K6
		t.Errorf("estimate = %v, want 20", resp.Estimate)
	}
	if resp.Graph != "k6" || resp.Passes <= 0 || resp.M != 15 || resp.Copies != 1 {
		t.Errorf("unexpected response: %+v", resp)
	}
	if resp.Found != nil {
		t.Errorf("estimate response carries found = %v", *resp.Found)
	}
}

// TestEstimateMatchesLibrary asserts the service returns bit-identical
// results to a direct library call with the same options — the service adds
// transport, not arithmetic.
func TestEstimateMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{
		Graph:      "k6",
		Algorithm:  string(adjstream.AlgoNaiveTwoPass),
		SampleSize: 30,
		Copies:     3,
		Parallel:   true,
		Driver:     string(adjstream.DriverBroadcast),
		Seed:       7,
	}
	var resp EstimateResponse
	if code := post(t, ts, "/v1/estimate", req, &resp); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	want, err := adjstream.Estimate(adjstream.SortedStream(completeGraph(t, 6)), req.options())
	if err != nil {
		t.Fatalf("library Estimate: %v", err)
	}
	if resp.Estimate != want.Estimate || resp.SpaceWords != want.SpaceWords ||
		resp.Passes != want.Passes || resp.Copies != want.Copies {
		t.Errorf("service %+v != library %+v", resp, want)
	}
}

func TestDistinguishRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		graph string
		want  bool
	}{
		{"k6", true},
		{"star", false},
	} {
		var resp EstimateResponse
		code := post(t, ts, "/v1/distinguish", EstimateRequest{Graph: tc.graph, SampleSize: 64, Seed: 3}, &resp)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", tc.graph, code)
		}
		if resp.Found == nil || *resp.Found != tc.want {
			t.Errorf("%s: found = %v, want %v", tc.graph, resp.Found, tc.want)
		}
	}
}

func TestGraphsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatalf("GET /v1/graphs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var gr GraphsResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(gr.Graphs) != 2 || gr.Graphs[0].Name != "k6" || gr.Graphs[1].Name != "star" {
		t.Fatalf("graphs = %+v, want sorted [k6 star]", gr.Graphs)
	}
	if gr.Graphs[0].N != 6 || gr.Graphs[0].M != 15 {
		t.Errorf("k6 info = %+v, want n=6 m=15", gr.Graphs[0])
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		req  EstimateRequest
		want int
	}{
		{"unknown graph", "/v1/estimate", EstimateRequest{Graph: "nope", Algorithm: "exact"}, http.StatusNotFound},
		{"unknown algorithm", "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "nope"}, http.StatusBadRequest},
		{"missing algorithm", "/v1/estimate", EstimateRequest{Graph: "k6"}, http.StatusBadRequest},
		{"bad order", "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact", Order: "shuffled"}, http.StatusBadRequest},
		{"bad cycle len", "/v1/distinguish", EstimateRequest{Graph: "k6", CycleLen: 2}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := post(t, ts, tc.path, tc.req, &er); code != tc.want {
			t.Errorf("%s: status = %d, want %d (error %q)", tc.name, code, tc.want, er.Error)
		} else if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}

	// Unknown JSON fields are rejected, not silently dropped.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"k6","algorithm":"exact","bogus":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET estimate: status = %d, want 405", resp.StatusCode)
	}
}

func TestRandomOrderDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{
		Graph: "k6", Algorithm: string(adjstream.AlgoNaiveTwoPass),
		SampleSize: 30, Seed: 11, Order: "random",
	}
	var a, b EstimateResponse
	if code := post(t, ts, "/v1/estimate", req, &a); code != http.StatusOK {
		t.Fatalf("first: status = %d", code)
	}
	if code := post(t, ts, "/v1/estimate", req, &b); code != http.StatusOK {
		t.Fatalf("second: status = %d", code)
	}
	if a.Estimate != b.Estimate || a.SpaceWords != b.SpaceWords {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

// gate is the deterministic test seam: each request signals entered and
// blocks until release or its context fires.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (g *gate) hook(ctx context.Context) {
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
	}
}

func waitEntered(t *testing.T, g *gate) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the worker slot")
	}
}

func TestSaturationReturns429(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, testHookRun: g.hook})

	first := make(chan int, 1)
	go func() {
		var resp EstimateResponse
		first <- post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp)
	}()
	waitEntered(t, g)

	// Slot held, queue disabled: the next request must fail fast.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"k6","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("second POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if srv.Pool().Rejected() == 0 {
		t.Error("pool did not count the rejection")
	}

	close(g.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", code)
	}
}

// TestDeadlineCancelsAndFreesSlot drives a request past its deadline while
// it holds the only worker slot: the run must fail with 504 and the slot
// must come back so the next request succeeds.
func TestDeadlineCancelsAndFreesSlot(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, testHookRun: g.hook})

	// The hook blocks until the 20ms deadline fires, so the run starts
	// with an expired context.
	var resp EstimateResponse
	code := post(t, ts, "/v1/estimate",
		EstimateRequest{Graph: "k6", Algorithm: "exact", TimeoutMS: 20}, &resp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504", code)
	}

	deadline := time.After(5 * time.Second)
	for !srv.Pool().Idle() {
		select {
		case <-deadline:
			t.Fatal("worker slot never released after cancellation")
		case <-time.After(time.Millisecond):
		}
	}

	// The freed slot serves the next request (gate open from here on).
	close(g.release)
	var ok EstimateResponse
	if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &ok); code != http.StatusOK {
		t.Fatalf("after cancellation: status = %d, want 200", code)
	}
	if ok.Estimate != 20 {
		t.Errorf("estimate = %v, want 20", ok.Estimate)
	}
}

// TestClientDisconnectFreesSlot cancels the client's request mid-run and
// asserts the worker slot is returned.
func TestClientDisconnectFreesSlot(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: -1, testHookRun: g.hook})
	defer close(g.release)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"graph":"k6","algorithm":"exact"}`))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitEntered(t, g)
	cancel()
	<-done

	deadline := time.After(5 * time.Second)
	for !srv.Pool().Idle() {
		select {
		case <-deadline:
			t.Fatal("worker slot never released after client disconnect")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestGracefulDrain flips drain mode while a request is in flight: health
// and new work go 503, the in-flight request completes, and DrainWait
// returns once the pool is empty.
func TestGracefulDrain(t *testing.T) {
	g := newGate()
	srv, ts := newTestServer(t, Config{Workers: 2, testHookRun: g.hook})

	first := make(chan EstimateResponse, 1)
	go func() {
		var resp EstimateResponse
		if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &resp); code != http.StatusOK {
			resp.Estimate = -1
		}
		first <- resp
	}()
	waitEntered(t, g)

	srv.SetDraining(true)

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", hr.StatusCode, health)
	}
	if health.InFlight != 1 {
		t.Errorf("healthz in_flight = %d, want 1", health.InFlight)
	}

	if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("estimate while draining: status = %d, want 503", code)
	}

	// The in-flight request runs to completion with a correct answer.
	close(g.release)
	resp := <-first
	if resp.Estimate != 20 {
		t.Fatalf("in-flight request under drain: estimate = %v, want 20", resp.Estimate)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.DrainWait(ctx); err != nil {
		t.Fatalf("DrainWait: %v", err)
	}

	srv.SetDraining(false)
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain off = %d, want 200", hr.StatusCode)
	}
}

func TestPoolAcquire(t *testing.T) {
	p := NewPool(1, 0)
	rel, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if p.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", p.InFlight())
	}
	if _, err := p.Acquire(context.Background()); err != ErrSaturated {
		t.Fatalf("saturated Acquire err = %v, want ErrSaturated", err)
	}
	rel()
	rel() // idempotent
	if !p.Idle() {
		t.Error("pool not idle after release")
	}
	if rel2, err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after release: %v", err)
	} else {
		rel2()
	}
}

func TestPoolQueueWaiterCancel(t *testing.T) {
	p := NewPool(1, 1)
	rel, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx)
		errc <- err
	}()
	deadline := time.After(5 * time.Second)
	for p.Waiting() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}
	if p.Waiting() != 0 {
		t.Errorf("Waiting = %d after cancel, want 0", p.Waiting())
	}
	// The abandoned ticket is returned: a fresh waiter can still queue.
	select {
	case p.tickets <- struct{}{}:
		<-p.tickets
	default:
		t.Error("ticket leaked by canceled waiter")
	}
}

func TestCatalogLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeEdges := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}
	writeEdges("tri.edges", "0 1\n1 2\n2 0\n")
	writeEdges("path.txt", "0 1\n1 2\n")
	cat := NewCatalog()
	n, err := cat.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 2 || cat.Len() != 2 {
		t.Fatalf("loaded %d datasets (len %d), want 2", n, cat.Len())
	}
	d, ok := cat.Get("tri")
	if !ok {
		t.Fatal("dataset tri missing")
	}
	if info := d.Info(); info.N != 3 || info.M != 3 {
		t.Errorf("tri info = %+v, want n=3 m=3", info)
	}
	if _, ok := cat.Get("nope"); ok {
		t.Error("Get(nope) = ok")
	}
}
