package serve

import (
	"container/list"
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// The result cache exploits the repo's central determinism contract: every
// estimate is a pure function of (graph, algorithm, options, seed), so two
// requests with the same canonical tuple must produce bit-identical
// responses — recomputing the second one is O(passes · m) of wasted stream
// work. The cache is sharded 16 ways (FNV-1a over the key) so concurrent
// lookups on different keys never contend on one lock, holds a per-shard
// LRU bounded by the configured total entry count, and coalesces concurrent
// misses singleflight-style: the first request for a key becomes the
// leader and runs the estimation once; every concurrent duplicate becomes
// a waiter on the leader's flight. Waiters honor their own context
// (deadline, client disconnect) while waiting, and an abandoning waiter
// never cancels the leader's run — the run is only cancelled when every
// interested request has walked away.

// cacheShards is the shard count; keys are distributed by FNV-1a hash.
const cacheShards = 16

// CacheOutcome reports how a request's result was obtained; the HTTP layer
// echoes it in the X-Cache response header and batch item bodies.
type CacheOutcome string

const (
	// CacheHit: the response came straight from the cache.
	CacheHit CacheOutcome = "hit"
	// CacheMiss: this request ran the estimation (and populated the cache).
	CacheMiss CacheOutcome = "miss"
	// CacheCoalesced: an identical request was already running; this one
	// waited for its result instead of running again.
	CacheCoalesced CacheOutcome = "coalesced"
	// CacheBypass: the cache is disabled or not applicable; the request ran
	// directly.
	CacheBypass CacheOutcome = "bypass"
	// CacheShared: a batch item answered from a shared family pass — the
	// batch held several parallel median runs differing only in copy count,
	// so one run of the largest count produced per-copy snapshots and each
	// item's result was merged from its prefix (see handleBatch).
	CacheShared CacheOutcome = "shared"
)

// cacheKey is the canonical identity of a deterministic run: everything
// that feeds the estimate and nothing that doesn't (timeouts are not part
// of the key). The graph fingerprint rides along with the name so a
// catalog reload that changes the edges behind a name can never serve a
// stale count — old entries key to the old fingerprint and age out of the
// LRU. The struct is comparable, so it indexes the shard maps directly.
type cacheKey struct {
	kind        string // "estimate" or "distinguish"
	graph       string
	fingerprint uint64
	version     uint64 // graph version the run pinned (see EstimateRequest.key)
	model       string // raw request model, so the two models never share a hit
	algorithm   string
	sampleSize  int
	sampleProb  float64
	pairCap     int
	cycleLen    int
	copies      int
	confidence  float64
	parallel    bool
	driver      string
	seed        uint64 // effective seed (request seed or server default)
	order       string
}

// shardOf returns the key's shard index.
func (k cacheKey) shardOf() int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%x\x00%x\x00%s\x00%s\x00%d\x00%g\x00%d\x00%d\x00%d\x00%g\x00%t\x00%s\x00%x\x00%s",
		k.kind, k.graph, k.fingerprint, k.version, k.model, k.algorithm, k.sampleSize,
		k.sampleProb, k.pairCap, k.cycleLen, k.copies, k.confidence, k.parallel, k.driver,
		k.seed, k.order)
	return int(h.Sum64() % cacheShards)
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key    cacheKey
	resp   EstimateResponse
	stored time.Time
}

// flight is one in-progress estimation shared by a leader and any number
// of coalesced waiters. refs counts the requests still interested in the
// result (guarded by the shard mutex); when it reaches zero before the run
// finishes, cancel aborts the run.
type flight struct {
	done   chan struct{} // closed when resp/err are set
	resp   EstimateResponse
	err    error
	refs   int
	cancel context.CancelFunc
}

// cacheShard is one lock domain: an LRU of completed results plus the
// in-progress flights whose keys hash here.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	lru     list.List // front = most recently used; values are *cacheEntry
	flights map[cacheKey]*flight
}

// Cache is the sharded deterministic result cache with request coalescing.
type Cache struct {
	shards   [cacheShards]cacheShard
	shardCap int           // max entries per shard
	ttl      time.Duration // 0 = entries live until evicted
}

// NewCache returns a cache bounded to roughly entries results in total
// (rounded up to a multiple of the shard count) whose entries expire after
// ttl (0 = no age limit). entries <= 0 selects the default of 4096.
func NewCache(entries int, ttl time.Duration) *Cache {
	if entries <= 0 {
		entries = 4096
	}
	c := &Cache{shardCap: (entries + cacheShards - 1) / cacheShards, ttl: ttl}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*list.Element)
		c.shards[i].flights = make(map[cacheKey]*flight)
	}
	return c
}

// Len returns the total number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// getLocked looks key up in sh, refreshing LRU position and enforcing TTL.
// Caller holds sh.mu.
func (c *Cache) getLocked(sh *cacheShard, shard int, key cacheKey, tt cacheTele) (EstimateResponse, bool) {
	el, ok := sh.entries[key]
	if !ok {
		return EstimateResponse{}, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && time.Since(ent.stored) > c.ttl {
		sh.lru.Remove(el)
		delete(sh.entries, key)
		tt.evictions.Add(1)
		tt.occupancy(shard, len(sh.entries))
		return EstimateResponse{}, false
	}
	sh.lru.MoveToFront(el)
	return ent.resp, true
}

// putLocked stores resp under key, evicting the least recently used entry
// when the shard is full. Caller holds sh.mu.
func (c *Cache) putLocked(sh *cacheShard, shard int, key cacheKey, resp EstimateResponse, tt cacheTele) {
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		el.Value.(*cacheEntry).stored = time.Now()
		sh.lru.MoveToFront(el)
		return
	}
	for sh.lru.Len() >= c.shardCap {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.entries, back.Value.(*cacheEntry).key)
		tt.evictions.Add(1)
	}
	sh.entries[key] = sh.lru.PushFront(&cacheEntry{key: key, resp: resp, stored: time.Now()})
	tt.occupancy(shard, len(sh.entries))
}

// Get returns the cached response for key, counting a hit or miss.
func (c *Cache) Get(key cacheKey) (EstimateResponse, bool) {
	tt := teleForCache()
	shard := key.shardOf()
	sh := &c.shards[shard]
	sh.mu.Lock()
	resp, ok := c.getLocked(sh, shard, key, tt)
	sh.mu.Unlock()
	if ok {
		tt.hits.Add(1)
	} else {
		tt.misses.Add(1)
	}
	return resp, ok
}

// Put stores resp under key (used by batch items, which compute under the
// batch's own worker slot instead of leading a flight).
func (c *Cache) Put(key cacheKey, resp EstimateResponse) {
	tt := teleForCache()
	shard := key.shardOf()
	sh := &c.shards[shard]
	sh.mu.Lock()
	c.putLocked(sh, shard, key, resp, tt)
	sh.mu.Unlock()
}

// Do returns the response for key: from the cache when present, by joining
// an in-progress identical run when one exists, and otherwise by running
// run exactly once as the leader. The leader's run executes detached from
// any single request, bounded by maxRun and cancelled only when every
// interested request has abandoned — a waiter whose ctx fires gets its own
// ctx error while the run continues for the others. Successful results are
// stored before the flight is retired, so there is no window in which a
// concurrent request neither finds the entry nor joins the flight.
func (c *Cache) Do(ctx context.Context, key cacheKey, maxRun time.Duration, run func(context.Context) (EstimateResponse, error)) (EstimateResponse, CacheOutcome, error) {
	tt := teleForCache()
	shard := key.shardOf()
	sh := &c.shards[shard]

	sh.mu.Lock()
	if resp, ok := c.getLocked(sh, shard, key, tt); ok {
		sh.mu.Unlock()
		tt.hits.Add(1)
		return resp, CacheHit, nil
	}
	if f, ok := sh.flights[key]; ok {
		f.refs++
		sh.mu.Unlock()
		tt.coalesced.Add(1)
		resp, err := c.wait(ctx, sh, f)
		return resp, CacheCoalesced, err
	}
	runCtx, cancel := context.WithTimeout(context.Background(), maxRun)
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	sh.flights[key] = f
	sh.mu.Unlock()
	tt.misses.Add(1)

	go func() {
		resp, err := run(runCtx)
		cancel()
		// Store the result and retire the flight under one lock
		// acquisition: any request that misses the entry still finds the
		// flight, and vice versa.
		sh.mu.Lock()
		f.resp, f.err = resp, err
		close(f.done)
		delete(sh.flights, key)
		if err == nil {
			c.putLocked(sh, shard, key, resp, tt)
		}
		sh.mu.Unlock()
	}()

	resp, err := c.wait(ctx, sh, f)
	return resp, CacheMiss, err
}

// wait blocks until f completes or ctx fires. An abandoning caller
// decrements the flight's refcount and cancels the run only when it was
// the last request interested in it.
func (c *Cache) wait(ctx context.Context, sh *cacheShard, f *flight) (EstimateResponse, error) {
	select {
	case <-f.done:
		return f.resp, f.err
	case <-ctx.Done():
		sh.mu.Lock()
		f.refs--
		last := f.refs == 0
		sh.mu.Unlock()
		if last {
			f.cancel()
		}
		return EstimateResponse{}, ctx.Err()
	}
}
