package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrSaturated reports that both the worker slots and the admission queue
// are full; the HTTP layer maps it to 429 + Retry-After. Failing fast at
// admission (rather than queueing unboundedly) is the backpressure that
// keeps latency bounded under overload.
var ErrSaturated = errors.New("serve: worker pool saturated")

// Pool is a bounded worker pool with admission control: at most workers
// requests hold a slot concurrently, at most queue more wait for one, and
// everything beyond that is rejected immediately. Waiters abandon the queue
// when their context fires (client disconnect, deadline), so a stuck client
// cannot pin a queue position.
type Pool struct {
	slots   chan struct{} // capacity workers: held while estimating
	tickets chan struct{} // capacity workers+queue: held from admission to release
	workers int
	queue   int

	inflight atomic.Int64
	waiting  atomic.Int64
	rejected atomic.Int64
}

// NewPool returns a pool with the given slot and queue capacities.
// workers <= 0 defaults to GOMAXPROCS; queue < 0 defaults to 2×workers.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 2 * workers
	}
	return &Pool{
		slots:   make(chan struct{}, workers),
		tickets: make(chan struct{}, workers+queue),
		workers: workers,
		queue:   queue,
	}
}

// Workers returns the slot capacity.
func (p *Pool) Workers() int { return p.workers }

// Queue returns the admission-queue capacity beyond the slots.
func (p *Pool) Queue() int { return p.queue }

// Acquire admits the caller: it returns an idempotent release function once
// a worker slot is held, ErrSaturated immediately when slots and queue are
// both full, or ctx.Err() if the context fires while waiting for a slot.
func (p *Pool) Acquire(ctx context.Context) (release func(), err error) {
	tt := teleForPool()
	select {
	case p.tickets <- struct{}{}:
	default:
		p.rejected.Add(1)
		tt.rejected.Add(1)
		return nil, ErrSaturated
	}
	w := p.waiting.Add(1)
	tt.waiting.Set(w)
	tt.queueDepth.Observe(w)
	select {
	case p.slots <- struct{}{}:
		tt.waiting.Set(p.waiting.Add(-1))
		tt.inflight.Set(p.inflight.Add(1))
		tt.admitted.Add(1)
		var once sync.Once
		return func() {
			once.Do(func() {
				tt.inflight.Set(p.inflight.Add(-1))
				<-p.slots
				<-p.tickets
			})
		}, nil
	case <-ctx.Done():
		tt.waiting.Set(p.waiting.Add(-1))
		<-p.tickets
		return nil, ctx.Err()
	}
}

// InFlight returns the number of held worker slots.
func (p *Pool) InFlight() int { return int(p.inflight.Load()) }

// Waiting returns the number of admitted requests waiting for a slot.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }

// Rejected returns the number of admissions refused with ErrSaturated.
func (p *Pool) Rejected() int64 { return p.rejected.Load() }

// Idle reports whether no request holds a slot or waits for one.
func (p *Pool) Idle() bool { return p.inflight.Load() == 0 && p.waiting.Load() == 0 }
