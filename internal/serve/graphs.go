package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// GraphDetail is the body of GET /v1/graphs/{name}: the dataset's Info
// (fingerprint and version included) plus ingestion state and degree
// statistics of the current snapshot.
type GraphDetail struct {
	Info
	// PendingOps counts staged edge operations not yet merged into a
	// published version.
	PendingOps int `json:"pending_ops"`
	// RetainedVersions lists the published versions still resolvable by
	// version-pinned shard requests, oldest first.
	RetainedVersions []uint64 `json:"retained_versions"`
	// Degrees summarizes the current snapshot's degree sequence.
	Degrees DegreeStats `json:"degrees"`
}

// DegreeStats summarizes a graph's degree sequence.
type DegreeStats struct {
	Max int `json:"max"`
	// Avg is 2m/n (0 for the empty graph).
	Avg float64 `json:"avg"`
	// Wedges is the exact path-of-length-2 count Σ C(d(v),2), the
	// normalization the paper's wedge samplers depend on.
	Wedges int64 `json:"wedges"`
}

// handleGraphsResource dispatches the graphs REST resource:
//
//	GET  /v1/graphs              → catalog listing
//	GET  /v1/graphs/{name}       → dataset detail
//	POST /v1/graphs/{name}/edges → edge-batch ingestion
//
// Wrong methods get 405 with an Allow header; unknown names and deeper
// paths get the 404 envelope.
func (s *Server) handleGraphsResource(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs")
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		s.handleGraphList(w, r)
		return
	}
	name, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		s.handleGraphDetail(w, r, name)
	case "edges":
		s.handleIngest(w, r, name)
	default:
		tt := teleForEndpoint("graphs")
		start := tt.start()
		status := s.writeError(w, fmt.Errorf("%w: no resource %q under graph %q", ErrUnknownGraph, sub, name))
		tt.end(start, status)
	}
}

// handleGraphList serves GET /v1/graphs.
func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("graphs")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()
	if r.Method != http.MethodGet {
		status = writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, GraphsResponse{Graphs: s.cat.Infos()})
}

// handleGraphDetail serves GET /v1/graphs/{name}.
func (s *Server) handleGraphDetail(w http.ResponseWriter, r *http.Request, name string) {
	tt := teleForEndpoint("graphs")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()
	if r.Method != http.MethodGet {
		status = writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	md, ok := s.cat.GetMutable(name)
	if !ok {
		status = s.writeError(w, fmt.Errorf("%w %q", ErrUnknownGraph, name))
		return
	}
	ds := md.Current()
	g := ds.Graph()
	d := GraphDetail{
		Info:             ds.Info(),
		PendingOps:       md.PendingOps(),
		RetainedVersions: md.RetainedVersions(),
		Degrees: DegreeStats{
			Max:    g.MaxDegree(),
			Wedges: g.WedgeCount(),
		},
	}
	if n := g.N(); n > 0 {
		d.Degrees.Avg = 2 * float64(g.M()) / float64(n)
	}
	writeJSON(w, http.StatusOK, d)
}
