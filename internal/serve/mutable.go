package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adjstream"
)

// ErrInvalidEdgeOp reports an edge batch containing an operation the
// current graph view rejects (self-loop, duplicate add, removal of an
// absent edge). The batch is applied atomically: on error no operation
// takes effect. The HTTP layer maps it to 400.
var ErrInvalidEdgeOp = errors.New("serve: invalid edge operation")

// ErrVersionGone reports a request pinned to a graph version this node no
// longer retains (or never published). The HTTP layer maps it to 409; the
// cluster scheduler treats it as a replica failure and falls back to the
// proxy's own pinned snapshot.
var ErrVersionGone = errors.New("serve: graph version unavailable")

const (
	// DefaultMergeThreshold is the number of pending edge operations that
	// forces a delta merge into a new published version.
	DefaultMergeThreshold = 1024
	// DefaultMaxVersions is the number of published snapshots retained
	// for version-pinned requests.
	DefaultMaxVersions = 4
	// maxRememberedBatches bounds the idempotency memory: responses for
	// this many recent batch ids are replayed verbatim on duplicates.
	maxRememberedBatches = 4096
)

// EdgeBatchRequest is the body of POST /v1/graphs/{name}/edges: a batch of
// edge additions and removals applied atomically. BatchID makes delivery
// idempotent — resubmitting a batch id that was already applied returns
// the recorded response with duplicate=true and changes nothing, so
// at-least-once clients converge. Flush forces the pending delta to merge
// into a new published version regardless of the merge threshold.
type EdgeBatchRequest struct {
	BatchID string     `json:"batch_id"`
	Add     [][2]int64 `json:"add,omitempty"`
	Remove  [][2]int64 `json:"remove,omitempty"`
	Flush   bool       `json:"flush,omitempty"`
}

// EdgeBatchResponse reports the outcome of one edge batch. GraphVersion
// and GraphFingerprint describe the published snapshot after the batch:
// if Merged is true the batch's ops are part of that version, otherwise
// they sit in the pending delta (PendingOps deep) awaiting a merge.
type EdgeBatchResponse struct {
	Graph            string `json:"graph"`
	BatchID          string `json:"batch_id"`
	Applied          int    `json:"applied"`
	Duplicate        bool   `json:"duplicate,omitempty"`
	Merged           bool   `json:"merged,omitempty"`
	PendingOps       int    `json:"pending_ops"`
	GraphVersion     uint64 `json:"graph_version"`
	GraphFingerprint string `json:"graph_fingerprint"`
}

// MutableDataset is one catalog entry that can evolve through live
// ingestion. Reads are lock-free: Current returns the latest published
// immutable *Dataset from an atomic pointer, and every request pins that
// one snapshot end-to-end. Writes serialize under mu: edge batches stage
// into a copy-on-write delta (adjstream.Delta) and periodically merge into
// a new snapshot with version+1 and a recomputed content fingerprint, so
// the response cache — keyed by (fingerprint, version) — can never serve
// a result across a version bump. A bounded ring of recent snapshots is
// retained so version-pinned shard requests keep working across merges.
type MutableDataset struct {
	name string
	cur  atomic.Pointer[Dataset]

	mu         sync.Mutex
	pending    *adjstream.Delta // staged ops against cur; nil when none
	pendingOps int              // ops accepted since the last merge
	retained   []*Dataset       // published versions, oldest first
	seen       map[string]*EdgeBatchResponse
	seenOrder  []string // FIFO over seen, bounding idempotency memory

	mergeThreshold int
	maxVersions    int
}

// newMutableDataset publishes g as the entry's first snapshot at version.
func newMutableDataset(name string, g *adjstream.Graph, version uint64, mergeThreshold, maxVersions int) *MutableDataset {
	ds := newDataset(name, g, version)
	md := &MutableDataset{
		name:           name,
		retained:       []*Dataset{ds},
		seen:           make(map[string]*EdgeBatchResponse),
		mergeThreshold: mergeThreshold,
		maxVersions:    maxVersions,
	}
	md.cur.Store(ds)
	return md
}

// Current returns the latest published snapshot. It never blocks on
// writers.
func (m *MutableDataset) Current() *Dataset { return m.cur.Load() }

// PendingOps returns the number of staged ops not yet merged.
func (m *MutableDataset) PendingOps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pendingOps
}

// RetainedVersions lists the published versions still resolvable by At,
// oldest first.
func (m *MutableDataset) RetainedVersions() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.retained))
	for i, d := range m.retained {
		out[i] = d.version
	}
	return out
}

// At resolves a pinned version among the retained snapshots. A nonzero fp
// must match the snapshot's content fingerprint — a mismatch means the
// caller's history diverged from ours and running would silently compare
// different graphs.
func (m *MutableDataset) At(version uint64, fp uint64) (*Dataset, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.retained {
		if d.version == version {
			if fp != 0 && d.fp != fp {
				return nil, fmt.Errorf("%w: version %d of %q has fingerprint %016x, request pinned %016x",
					ErrVersionGone, version, m.name, d.fp, fp)
			}
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: version %d of %q (retained: %d..%d)",
		ErrVersionGone, version, m.name, m.retained[0].version, m.retained[len(m.retained)-1].version)
}

// ApplyBatch applies one edge batch atomically: either every op is staged
// (and possibly merged into a new version) or none is and an
// ErrInvalidEdgeOp describes the first offender. Duplicate batch ids
// replay the recorded response without touching the graph. The returned
// duration is the time spent merging (zero when no merge ran), for the
// merge-latency histogram.
func (m *MutableDataset) ApplyBatch(req EdgeBatchRequest) (EdgeBatchResponse, time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	if prev, ok := m.seen[req.BatchID]; ok {
		resp := *prev
		resp.Duplicate = true
		return resp, 0, nil
	}

	if m.pending == nil {
		m.pending = adjstream.NewDelta(m.cur.Load().g)
	}
	type edgeOp struct {
		u, v adjstream.V
		add  bool
	}
	ops := make([]edgeOp, 0, len(req.Add)+len(req.Remove))
	for _, p := range req.Add {
		ops = append(ops, edgeOp{adjstream.V(p[0]), adjstream.V(p[1]), true})
	}
	for _, p := range req.Remove {
		ops = append(ops, edgeOp{adjstream.V(p[0]), adjstream.V(p[1]), false})
	}
	for i, o := range ops {
		var err error
		if o.add {
			err = m.pending.Add(o.u, o.v)
		} else {
			err = m.pending.Remove(o.u, o.v)
		}
		if err != nil {
			// Batch atomicity: add/remove are exact inverses, so undoing
			// the accepted prefix in reverse order restores the pre-batch
			// delta.
			for j := i - 1; j >= 0; j-- {
				var undo error
				if ops[j].add {
					undo = m.pending.Remove(ops[j].u, ops[j].v)
				} else {
					undo = m.pending.Add(ops[j].u, ops[j].v)
				}
				if undo != nil {
					panic(fmt.Sprintf("serve: edge batch rollback failed: %v", undo))
				}
			}
			return EdgeBatchResponse{}, 0, fmt.Errorf("%w: batch %q op %d: %v", ErrInvalidEdgeOp, req.BatchID, i, err)
		}
	}
	m.pendingOps += len(ops)

	var mergeDur time.Duration
	merged := false
	if req.Flush || m.pendingOps >= m.mergeThreshold {
		if m.pending.Empty() {
			// Canceled pairs left no net change: nothing to publish.
			m.pending, m.pendingOps = nil, 0
		} else {
			start := time.Now()
			m.mergeLocked()
			mergeDur = time.Since(start)
			merged = true
		}
	}

	cur := m.cur.Load()
	resp := EdgeBatchResponse{
		Graph:            m.name,
		BatchID:          req.BatchID,
		Applied:          len(ops),
		Merged:           merged,
		PendingOps:       m.pendingOps,
		GraphVersion:     cur.version,
		GraphFingerprint: fmt.Sprintf("%016x", cur.fp),
	}
	m.remember(req.BatchID, resp)
	return resp, mergeDur, nil
}

// mergeLocked folds the pending delta into a new published snapshot at
// version+1. Callers hold mu and guarantee the delta is non-empty.
func (m *MutableDataset) mergeLocked() {
	next := newDataset(m.name, m.pending.Apply(), m.cur.Load().version+1)
	m.retained = append(m.retained, next)
	if len(m.retained) > m.maxVersions {
		m.retained = m.retained[len(m.retained)-m.maxVersions:]
	}
	m.cur.Store(next)
	m.pending, m.pendingOps = nil, 0
}

// remember records a batch response for idempotent replay, evicting the
// oldest id once the memory is full.
func (m *MutableDataset) remember(id string, resp EdgeBatchResponse) {
	if len(m.seenOrder) >= maxRememberedBatches {
		delete(m.seen, m.seenOrder[0])
		m.seenOrder = m.seenOrder[1:]
	}
	m.seen[id] = &resp
	m.seenOrder = append(m.seenOrder, id)
}
