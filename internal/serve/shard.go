package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"adjstream"
	"adjstream/internal/stream"
)

// Cluster mode, replica side. A median-of-k estimation is k independent
// copies whose results meet only at the final median, so a proxy can split
// one estimate request into disjoint copy ranges, run each range on a
// different replica, and merge the returned per-copy snapshots into the
// bit-identical single-node answer (see internal/cluster). POST /v1/shard
// is the replica half of that contract: it accepts one estimate spec plus a
// copy range, runs adjstream.EstimateShardContext through the same
// validation, admission pool, and deadline machinery as /v1/estimate, and
// answers with the raw "adjM" snapshot-set bytes — the exact framing
// cyclecount -snapshot writes to disk, so a shard response saved to a file
// merges with adjmerge unchanged.

// ErrRemoteUnavailable reports that a configured remote runner could not
// produce a result — no healthy replicas, or every shard attempt exhausted
// its retries. Unless Config.NoLocalFallback is set, the server falls back
// to the local pool+library path; when it is set, the HTTP layer maps the
// error to 503.
var ErrRemoteUnavailable = errors.New("serve: remote execution unavailable")

// RemoteRunner executes one validated estimation somewhere other than the
// local worker pool — in practice internal/cluster's scheduler, which fans
// copy-range shard calls out to replicas and merges the snapshots. kind is
// "estimate" or "distinguish" (req is the original, underived request). The
// returned response must be byte-identical (modulo ElapsedMS) to what the
// local path would produce, so the result cache in front stays oblivious.
// Errors wrapping ErrRemoteUnavailable trigger the local fallback.
type RemoteRunner func(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, error)

// ShardRequest is the body of POST /v1/shard: one estimate-shaped spec plus
// the copy range [CopyLo, CopyHi) of its k-copy run to execute here. The
// spec must already be estimate-shaped (Algorithm set; distinguish requests
// are derived to their underlying estimator by the proxy before sharding).
type ShardRequest struct {
	EstimateRequest
	// CopyLo is the first copy index this replica runs.
	CopyLo int `json:"copy_lo"`
	// CopyHi is one past the last copy index this replica runs.
	CopyHi int `json:"copy_hi"`
	// GraphVersion pins the graph version this shard must run against, so
	// a sharded run stays on one immutable snapshot fleet-wide even while
	// ingestion advances the graph. 0 means "current" (pre-versioning
	// proxies). The replica answers 409 when it no longer retains the
	// version; the proxy treats that as a replica failure and falls back
	// to its own pinned snapshot.
	GraphVersion uint64 `json:"graph_version,omitempty"`
	// GraphFingerprint is the pinned version's content hash (16 hex
	// digits — a string because JSON numbers lose precision past 2^53).
	// When set, the replica verifies its retained version has identical
	// content, catching diverged ingestion histories before they can
	// silently merge snapshots of different graphs.
	GraphFingerprint string `json:"graph_fingerprint,omitempty"`
}

// DeriveEstimate maps a distinguish request onto the estimate-shaped spec
// its run actually executes — the same derivation DistinguishContext
// applies: cycle length 3 uses the naive two-pass distinguisher, 4 the
// two-pass 4-cycle estimator, ≥5 the exact counter (with the budget fields
// cleared), and the sublinear cases default to SampleProb 0.25 when no
// budget is given. Estimate requests pass through unchanged. The decision
// bit is Estimate > 0 on the derived run's result.
func DeriveEstimate(kind string, r EstimateRequest) EstimateRequest {
	if kind != "distinguish" {
		return r
	}
	cycleLen := r.CycleLen
	if cycleLen == 0 {
		cycleLen = 3
	}
	r.CycleLen = 0
	switch {
	case cycleLen == 3:
		r.Algorithm = string(adjstream.AlgoNaiveTwoPass)
	case cycleLen == 4:
		r.Algorithm = string(adjstream.AlgoTwoPassFourCycle)
	default:
		r.Algorithm = string(adjstream.AlgoExact)
		r.CycleLen = cycleLen
		r.SampleSize, r.SampleProb = 0, 0
	}
	if cycleLen < 5 && r.SampleSize == 0 && r.SampleProb == 0 {
		r.SampleProb = 0.25
	}
	return r
}

// handleShard serves POST /v1/shard: decode, validate (as an estimate spec,
// before admission), run the copy range, and answer with the snapshot-set
// bytes. Errors use the same JSON bodies and status mapping as the JSON
// endpoints; the success body is binary (stream.SnapshotSetContentType).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("shard")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()

	if r.Method != http.MethodPost {
		status = writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.draining.Load() {
		status = s.writeError(w, ErrDraining)
		return
	}
	var req ShardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status = s.writeError(w, fmt.Errorf("%w: %w", adjstream.ErrInvalidOptions, err))
		return
	}
	if err := req.validate("estimate"); err != nil {
		status = s.writeError(w, err)
		return
	}
	ds, err := s.resolveShardDataset(req)
	if err != nil {
		status = s.writeError(w, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.EstimateRequest))
	defer cancel()
	body, err := s.runShard(ctx, req, ds)
	if err != nil {
		status = s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", stream.SnapshotSetContentType)
	// Write failures past this point can only be connection errors.
	_, _ = w.Write(body)
}

// resolveShardDataset resolves the snapshot a shard request runs against:
// the current version when no pin is set, otherwise exactly the retained
// version the request pins (fingerprint-checked when supplied).
func (s *Server) resolveShardDataset(req ShardRequest) (*Dataset, error) {
	md, ok := s.cat.GetMutable(req.Graph)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, req.Graph)
	}
	if req.GraphVersion == 0 && req.GraphFingerprint == "" {
		return md.Current(), nil
	}
	if req.GraphVersion == 0 {
		return nil, fmt.Errorf("%w: graph_fingerprint set without graph_version", adjstream.ErrInvalidOptions)
	}
	var fp uint64
	if req.GraphFingerprint != "" {
		var err error
		fp, err = strconv.ParseUint(req.GraphFingerprint, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: graph_fingerprint %q is not 16 hex digits", adjstream.ErrInvalidOptions, req.GraphFingerprint)
		}
	}
	return md.At(req.GraphVersion, fp)
}

// runShard acquires a worker slot and executes the copy range, returning
// the encoded snapshot set. The copy-range bounds are validated by
// EstimateShardContext itself (wrapping ErrInvalidOptions → 400).
func (s *Server) runShard(ctx context.Context, req ShardRequest, ds *Dataset) ([]byte, error) {
	release, err := s.pool.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if s.cfg.testHookRun != nil {
		s.cfg.testHookRun(ctx)
	}
	st, err := ds.Stream(req.Order, req.EffectiveSeed())
	if err != nil {
		return nil, err
	}
	snaps, err := adjstream.EstimateShardContext(ctx, st, req.options(), req.CopyLo, req.CopyHi)
	if err != nil {
		return nil, err
	}
	return stream.EncodeSnapshotSet(req.CopyLo, snaps)
}
