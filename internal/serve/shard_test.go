package serve

// Tests for the replica half of cluster mode: POST /v1/shard runs a copy
// range and returns adjM snapshot-set bytes that merge into the exact
// single-node result.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"adjstream"
	"adjstream/internal/stream"
)

// postShard sends a shard request and returns the status, content type, and
// raw body.
func postShard(t *testing.T, url string, req ShardRequest) (int, string, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/shard", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/shard: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func TestShardEndpointMergesToSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := EstimateRequest{
		Graph:      "k6",
		Algorithm:  string(adjstream.AlgoTwoPassTriangle),
		SampleProb: 0.6,
		Copies:     5,
		Parallel:   true,
		Seed:       seedPtr(7),
	}
	var want EstimateResponse
	if code := post(t, ts, "/v1/estimate", base, &want); code != http.StatusOK {
		t.Fatalf("single-node status = %d", code)
	}

	all := make([]adjstream.CopySnapshot, 5)
	for _, rng := range [][2]int{{0, 2}, {2, 5}} {
		code, ct, body := postShard(t, ts.URL, ShardRequest{EstimateRequest: base, CopyLo: rng[0], CopyHi: rng[1]})
		if code != http.StatusOK {
			t.Fatalf("shard [%d,%d) status = %d: %s", rng[0], rng[1], code, body)
		}
		if ct != stream.SnapshotSetContentType {
			t.Errorf("content type = %q, want %q", ct, stream.SnapshotSetContentType)
		}
		indices, snaps, err := adjstream.ReadSnapshotSet(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("decode shard body: %v", err)
		}
		for i, idx := range indices {
			if idx != rng[0]+i {
				t.Fatalf("index %d = %d, want %d", i, idx, rng[0]+i)
			}
			all[idx] = snaps[i]
		}
	}
	res, err := adjstream.MergeSnapshots(all)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if res.Estimate != want.Estimate || res.SpaceWords != want.SpaceWords ||
		res.Passes != want.Passes || res.M != want.M || res.Copies != want.Copies {
		t.Errorf("merged shard result (%v, %d, %d, %d, %d) != single-node (%v, %d, %d, %d, %d)",
			res.Estimate, res.SpaceWords, res.Passes, res.M, res.Copies,
			want.Estimate, want.SpaceWords, want.Passes, want.M, want.Copies)
	}
}

func TestShardEndpointRejects(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	ok := EstimateRequest{Graph: "k6", Algorithm: "exact", Copies: 3}
	cases := []struct {
		name string
		req  ShardRequest
		want int
	}{
		{"range outside copies", ShardRequest{EstimateRequest: ok, CopyLo: 1, CopyHi: 9}, http.StatusBadRequest},
		{"empty range", ShardRequest{EstimateRequest: ok, CopyLo: 2, CopyHi: 2}, http.StatusBadRequest},
		{"unknown graph", ShardRequest{EstimateRequest: EstimateRequest{Graph: "nope", Algorithm: "exact"}, CopyHi: 1}, http.StatusNotFound},
		{"missing algorithm", ShardRequest{EstimateRequest: EstimateRequest{Graph: "k6"}, CopyHi: 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, body := postShard(t, ts.URL, tc.req); code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, code, tc.want, body)
		}
	}

	// Method and drain handling match the JSON endpoints.
	resp, err := http.Get(ts.URL + "/v1/shard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
	srv.SetDraining(true)
	if code, _, _ := postShard(t, ts.URL, ShardRequest{EstimateRequest: ok, CopyHi: 1}); code != http.StatusServiceUnavailable {
		t.Errorf("draining status = %d, want 503", code)
	}
}

// TestDeriveEstimate pins the distinguish→estimate derivation the proxy
// ships to shard replicas to DistinguishContext's documented rules.
func TestDeriveEstimate(t *testing.T) {
	base := EstimateRequest{Graph: "g", Copies: 3}
	cases := []struct {
		cycleLen  int
		algo      string
		prob      float64
		derivedCL int
	}{
		{0, string(adjstream.AlgoNaiveTwoPass), 0.25, 0},
		{3, string(adjstream.AlgoNaiveTwoPass), 0.25, 0},
		{4, string(adjstream.AlgoTwoPassFourCycle), 0.25, 0},
		{5, string(adjstream.AlgoExact), 0, 5},
		{7, string(adjstream.AlgoExact), 0, 7},
	}
	for _, tc := range cases {
		req := base
		req.CycleLen = tc.cycleLen
		got := DeriveEstimate("distinguish", req)
		if got.Algorithm != tc.algo || got.SampleProb != tc.prob || got.CycleLen != tc.derivedCL {
			t.Errorf("cycleLen %d: derived (algo %q, prob %g, len %d), want (%q, %g, %d)",
				tc.cycleLen, got.Algorithm, got.SampleProb, got.CycleLen, tc.algo, tc.prob, tc.derivedCL)
		}
		if got.Copies != base.Copies || got.Graph != base.Graph {
			t.Errorf("cycleLen %d: derivation disturbed unrelated fields: %+v", tc.cycleLen, got)
		}
	}
	// An explicit budget survives derivation for the sublinear cases.
	req := base
	req.SampleSize = 40
	if got := DeriveEstimate("distinguish", req); got.SampleSize != 40 || got.SampleProb != 0 {
		t.Errorf("explicit budget overwritten: %+v", got)
	}
	// Estimate requests pass through untouched.
	est := EstimateRequest{Graph: "g", Algorithm: "exact", CycleLen: 6}
	if got := DeriveEstimate("estimate", est); got != est {
		t.Errorf("estimate derivation changed the request: %+v", got)
	}
}
