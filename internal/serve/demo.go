package serve

import (
	"adjstream"
	"adjstream/internal/gen"
)

// LoadDemo fills cat with small generated graphs — k16 (C(16,3) triangles),
// triangles64, fourcycles64, and er400 — so a server is usable without any
// data files. Both adjserved -demo and adjproxy -demo load exactly this set,
// which is what makes a demo fleet coherent: every replica must hold the
// same graph under the same name (same content fingerprint) for shard
// results to merge into the single-node answer.
func LoadDemo(cat *Catalog) error {
	er, err := gen.ErdosRenyi(400, 0.05, 1)
	if err != nil {
		return err
	}
	for _, d := range []struct {
		name string
		g    *adjstream.Graph
	}{
		{"k16", gen.Complete(16)},
		{"triangles64", gen.DisjointTriangles(64)},
		{"fourcycles64", gen.DisjointFourCycles(64)},
		{"er400", er},
	} {
		if _, err := cat.Add(d.name, d.g); err != nil {
			return err
		}
	}
	return nil
}
