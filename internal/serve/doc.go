// Package serve is the online estimation service: the paper's sublinear
// estimators (Theorems 3.7 and 4.6) behind an HTTP/JSON API, which is
// exactly the setting where their space bounds matter — a loaded graph is
// large, a request's working set is not.
//
// The subsystem has three parts:
//
//   - Catalog: named datasets loaded once. Each dataset caches its graph
//     and canonical sorted stream, shared read-only by every request;
//     random-order streams are materialized per request.
//   - Pool: a bounded worker pool with admission control. At most Workers
//     requests estimate concurrently, at most Queue more wait; beyond that
//     Acquire fails fast with ErrSaturated, which the HTTP layer maps to
//     429 + Retry-After. Waiters leave the queue when their request's
//     context fires.
//   - Server: the HTTP surface (POST /v1/estimate, POST /v1/distinguish,
//     GET /v1/graphs, GET /healthz). Every estimation runs under a context
//     carrying the request deadline (bounded by Config.MaxTimeout) and the
//     client connection, so a timeout or disconnect cancels the pass loop
//     at the next batch boundary via adjstream.EstimateContext and frees
//     the worker slot.
//
// Draining: SetDraining(true) makes /healthz fail (503) and rejects new
// estimation work while in-flight requests run to completion; cmd/adjserved
// flips it on SIGTERM before http.Server.Shutdown so load balancers stop
// routing first.
//
// Telemetry: when the global registry is enabled (cmd/adjserved -telemetry)
// the service reports per-endpoint request/error counters and latency
// histograms plus pool occupancy under the serve.* metric namespace.
package serve
