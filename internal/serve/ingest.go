package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"adjstream"
)

// maxIngestBody bounds one edge-batch body; larger batches are rejected
// with 400 rather than staged into an unbounded delta in one shot.
const maxIngestBody = 8 << 20

// maxIngestOps bounds the operations in one batch for the same reason.
const maxIngestOps = 65536

// handleIngest serves POST /v1/graphs/{name}/edges: one atomic,
// idempotent edge batch. The raw body is retained so cluster mode can
// forward it verbatim to the rest of the fleet — every replica decodes
// the identical bytes, keeping versions in lockstep.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, name string) {
	tt := teleForEndpoint("ingest")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()

	if r.Method != http.MethodPost {
		status = writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.draining.Load() {
		status = s.writeError(w, ErrDraining)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody+1))
	if err != nil {
		status = s.writeError(w, fmt.Errorf("%w: reading body: %v", adjstream.ErrInvalidOptions, err))
		return
	}
	if len(body) > maxIngestBody {
		status = s.writeError(w, fmt.Errorf("%w: edge batch exceeds %d bytes", adjstream.ErrInvalidOptions, maxIngestBody))
		return
	}
	var req EdgeBatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status = s.writeError(w, fmt.Errorf("%w: %w", adjstream.ErrInvalidOptions, err))
		return
	}
	if req.BatchID == "" {
		status = s.writeError(w, fmt.Errorf("%w: batch_id is required (idempotency key)", adjstream.ErrInvalidOptions))
		return
	}
	if n := len(req.Add) + len(req.Remove); n > maxIngestOps {
		status = s.writeError(w, fmt.Errorf("%w: batch of %d ops exceeds the %d-op limit",
			adjstream.ErrInvalidOptions, n, maxIngestOps))
		return
	}
	md, ok := s.cat.GetMutable(name)
	if !ok {
		status = s.writeError(w, fmt.Errorf("%w %q", ErrUnknownGraph, name))
		return
	}

	resp, mergeDur, err := md.ApplyBatch(req)
	if err != nil {
		status = s.writeError(w, err)
		return
	}
	teleForIngest().record(req, resp, mergeDur)

	// Local apply first, then fan-out: the local catalog is the reference
	// the fleet must mirror. Duplicates are forwarded too — a retry after
	// a partial fan-out failure must reach the replicas that missed it
	// (they dedupe by batch id, so converged replicas are unaffected).
	if s.cfg.RemoteIngest != nil {
		if err := s.cfg.RemoteIngest(r.Context(), name, body); err != nil {
			status = s.writeError(w, fmt.Errorf("%w: ingest fan-out: %v", ErrRemoteUnavailable, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
