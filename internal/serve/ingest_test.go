package serve

// Tests for the graphs REST resource: live edge ingestion, versioned
// snapshots, version echo in estimates, and the cache's re-key across
// version bumps.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// ingest POSTs an edge batch and decodes the response (or error envelope).
func ingest(t *testing.T, ts *httptest.Server, graph string, req EdgeBatchRequest) (int, EdgeBatchResponse, *ErrorDetail) {
	t.Helper()
	var raw json.RawMessage
	code := post(t, ts, "/v1/graphs/"+graph+"/edges", req, &raw)
	if code == http.StatusOK {
		var resp EdgeBatchResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("decode ingest response %s: %v", raw, err)
		}
		return code, resp, nil
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decode ingest error %s: %v", raw, err)
	}
	return code, EdgeBatchResponse{}, &er.Error
}

// graphDetail GETs /v1/graphs/{name}.
func graphDetail(t *testing.T, ts *httptest.Server, name string) (int, GraphDetail) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/graphs/" + name)
	if err != nil {
		t.Fatalf("GET graph detail: %v", err)
	}
	defer resp.Body.Close()
	var d GraphDetail
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatalf("decode graph detail: %v", err)
		}
	}
	return resp.StatusCode, d
}

func TestIngestStageAndFlush(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Stage two removals: no merge yet, estimates still see version 1.
	code, resp, _ := ingest(t, ts, "k6", EdgeBatchRequest{
		BatchID: "b1",
		Remove:  [][2]int64{{0, 1}, {0, 2}},
	})
	if code != http.StatusOK {
		t.Fatalf("stage: status = %d, want 200", code)
	}
	if resp.Applied != 2 || resp.Merged || resp.PendingOps != 2 || resp.GraphVersion != 1 {
		t.Errorf("stage response = %+v, want applied 2, pending 2, version 1", resp)
	}
	var est EstimateResponse
	if post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &est); est.Estimate != 20 {
		t.Errorf("pre-merge estimate = %v, want 20 (staged ops must be invisible)", est.Estimate)
	}

	// Flush: the delta merges and publishes version 2.
	code, resp, _ = ingest(t, ts, "k6", EdgeBatchRequest{BatchID: "b2", Flush: true})
	if code != http.StatusOK || !resp.Merged || resp.GraphVersion != 2 || resp.PendingOps != 0 {
		t.Fatalf("flush response = %+v (code %d), want merged at version 2 with 0 pending", resp, code)
	}

	// K6 minus edges {0,1} and {0,2}: triangles through a missing edge are
	// gone. C(6,3)=20, each removed edge kills 4 triangles, none shared
	// except {0,1,2} counted twice: 20 - 4 - 4 + 1 = 13.
	if post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &est); est.Estimate != 13 {
		t.Errorf("post-merge estimate = %v, want 13", est.Estimate)
	}
	if est.GraphVersion != 2 {
		t.Errorf("post-merge estimate version = %d, want 2", est.GraphVersion)
	}

	// The detail resource reflects the new version and retention history.
	code, d := graphDetail(t, ts, "k6")
	if code != http.StatusOK {
		t.Fatalf("detail status = %d", code)
	}
	if d.Version != 2 || d.PendingOps != 0 || len(d.RetainedVersions) != 2 ||
		d.RetainedVersions[0] != 1 || d.RetainedVersions[1] != 2 {
		t.Errorf("detail = %+v, want version 2 retaining [1 2]", d)
	}
	if d.M != 13 { // 15 edges minus 2 removed
		t.Errorf("detail m = %d, want 13", d.M)
	}
	if d.Fingerprint != est.GraphFingerprint {
		t.Errorf("detail fingerprint %q != estimate echo %q", d.Fingerprint, est.GraphFingerprint)
	}
	if d.Degrees.Max != 5 || d.Degrees.Wedges <= 0 {
		t.Errorf("detail degrees = %+v, want max 5 and positive wedges", d.Degrees)
	}
}

func TestIngestIdempotency(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := EdgeBatchRequest{BatchID: "retry-me", Add: [][2]int64{{10, 11}}}
	code, first, _ := ingest(t, ts, "k6", req)
	if code != http.StatusOK || first.Duplicate {
		t.Fatalf("first = %+v (code %d)", first, code)
	}
	code, second, _ := ingest(t, ts, "k6", req)
	if code != http.StatusOK || !second.Duplicate {
		t.Fatalf("replay = %+v (code %d), want duplicate=true", second, code)
	}
	if second.Applied != first.Applied || second.PendingOps != first.PendingOps ||
		second.GraphVersion != first.GraphVersion {
		t.Errorf("replay %+v differs from recorded %+v beyond the duplicate flag", second, first)
	}
	md, _ := srv.cat.GetMutable("k6")
	if md.PendingOps() != 1 {
		t.Errorf("pending ops = %d after replay, want 1 (replay must not re-apply)", md.PendingOps())
	}
}

func TestIngestAtomicRollback(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	// Valid add, then an invalid removal: the whole batch must reject and
	// leave no trace.
	code, _, er := ingest(t, ts, "k6", EdgeBatchRequest{
		BatchID: "bad",
		Add:     [][2]int64{{20, 21}},
		Remove:  [][2]int64{{20, 99}}, // not an edge
	})
	if code != http.StatusBadRequest || er == nil || er.Code != "invalid_edge_op" {
		t.Fatalf("invalid batch: code %d envelope %+v, want 400 invalid_edge_op", code, er)
	}
	md, _ := srv.cat.GetMutable("k6")
	if md.PendingOps() != 0 {
		t.Fatalf("pending ops = %d after rejected batch, want 0", md.PendingOps())
	}
	// The rolled-back add must be re-addable (rollback actually removed it).
	if code, resp, _ := ingest(t, ts, "k6", EdgeBatchRequest{
		BatchID: "good", Add: [][2]int64{{20, 21}}, Flush: true,
	}); code != http.StatusOK || !resp.Merged {
		t.Errorf("follow-up batch = %+v (code %d), want merged 200", resp, code)
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		wantCode         int
		wantErrCode      string
	}{
		{"missing batch_id", "/v1/graphs/k6/edges", `{"add":[[1,2]]}`, http.StatusBadRequest, "invalid_options"},
		{"unknown graph", "/v1/graphs/ghost/edges", `{"batch_id":"x","add":[[1,2]]}`, http.StatusNotFound, "unknown_graph"},
		{"unknown sub-resource", "/v1/graphs/k6/nope", `{}`, http.StatusNotFound, "unknown_graph"},
		{"unknown field", "/v1/graphs/k6/edges", `{"batch_id":"x","bogus":1}`, http.StatusBadRequest, "invalid_options"},
	}
	for _, c := range cases {
		code, _, body := postRaw(t, ts, c.path, c.body)
		if code != c.wantCode {
			t.Errorf("%s: status = %d, want %d", c.name, code, c.wantCode)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Errorf("%s: decode envelope %s: %v", c.name, body, err)
			continue
		}
		if er.Error.Code != c.wantErrCode {
			t.Errorf("%s: error code = %q, want %q", c.name, er.Error.Code, c.wantErrCode)
		}
	}

	// Wrong methods answer 405 with an Allow header across the resource.
	for _, c := range []struct{ method, path, allow string }{
		{http.MethodGet, "/v1/graphs/k6/edges", http.MethodPost},
		{http.MethodPost, "/v1/graphs", http.MethodGet},
		{http.MethodDelete, "/v1/graphs/k6", http.MethodGet},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != c.allow ||
			er.Error.Code != "method_not_allowed" {
			t.Errorf("%s %s: status %d Allow %q code %q, want 405 %q method_not_allowed",
				c.method, c.path, resp.StatusCode, resp.Header.Get("Allow"), er.Error.Code, c.allow)
		}
	}

	// An op-count bomb is rejected before staging.
	var sb strings.Builder
	sb.WriteString(`{"batch_id":"big","add":[`)
	for i := 0; i <= maxIngestOps; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, i+100000)
	}
	sb.WriteString(`]}`)
	if code, _, _ := postRaw(t, ts, "/v1/graphs/k6/edges", sb.String()); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", code)
	}
}

// TestCacheRekeysAcrossVersions is the cache-coherence acceptance check:
// a cached result is served for repeats of the same version but never
// across a version bump, and the version echo in a cached response is the
// version it was computed at.
func TestCacheRekeysAcrossVersions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"graph":"k6","algorithm":"exact","seed":1}`

	code, outcome, fresh := postRaw(t, ts, "/v1/estimate", body)
	if code != http.StatusOK || outcome != string(CacheMiss) {
		t.Fatalf("fresh: status %d X-Cache %q, want 200 miss", code, outcome)
	}
	if code, outcome, _ = postRaw(t, ts, "/v1/estimate", body); outcome != string(CacheHit) {
		t.Fatalf("repeat: X-Cache %q, want hit", outcome)
	}

	// Publish version 2. The same request must be a fresh run, with the
	// new count and the new version echoed.
	if code, resp, _ := ingest(t, ts, "k6", EdgeBatchRequest{
		BatchID: "v2", Remove: [][2]int64{{0, 1}}, Flush: true,
	}); code != http.StatusOK || resp.GraphVersion != 2 {
		t.Fatalf("ingest = %+v (code %d), want version 2", resp, code)
	}
	code, outcome, after := postRaw(t, ts, "/v1/estimate", body)
	if code != http.StatusOK || outcome != string(CacheMiss) {
		t.Fatalf("post-bump: status %d X-Cache %q, want 200 miss (stale hit!)", code, outcome)
	}
	var was, now EstimateResponse
	if err := json.Unmarshal(fresh, &was); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &now); err != nil {
		t.Fatal(err)
	}
	if was.GraphVersion != 1 || now.GraphVersion != 2 {
		t.Errorf("version echo: was %d now %d, want 1 then 2", was.GraphVersion, now.GraphVersion)
	}
	if was.Estimate != 20 || now.Estimate != 16 { // one edge of K6 removed: 20 - 4
		t.Errorf("estimates: was %v now %v, want 20 then 16", was.Estimate, now.Estimate)
	}
	if was.GraphFingerprint == now.GraphFingerprint || was.GraphFingerprint == "" {
		t.Errorf("fingerprint did not change across the bump: %q vs %q", was.GraphFingerprint, now.GraphFingerprint)
	}
	// And the new version's repeat is itself cacheable.
	if _, outcome, _ = postRaw(t, ts, "/v1/estimate", body); outcome != string(CacheHit) {
		t.Errorf("post-bump repeat: X-Cache %q, want hit", outcome)
	}
}

// TestShardVersionPinning exercises /v1/shard's version resolution: a
// pinned retained version still runs after merges, evicted or unknown
// versions answer 409, and fingerprint mismatches are caught.
func TestShardVersionPinning(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	md, _ := srv.cat.GetMutable("k6")
	v1 := md.Current()

	shardPost := func(req ShardRequest) (int, string) {
		t.Helper()
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/shard", "application/json", strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return resp.StatusCode, ""
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decode shard error: %v", err)
		}
		return resp.StatusCode, er.Error.Code
	}
	spec := EstimateRequest{Graph: "k6", Algorithm: "exact", Seed: seedPtr(1)}
	shard := func(version uint64, fp string) ShardRequest {
		return ShardRequest{EstimateRequest: spec, CopyLo: 0, CopyHi: 1,
			GraphVersion: version, GraphFingerprint: fp}
	}

	// Publish version 2 so version 1 is history but still retained.
	if code, resp, _ := ingest(t, ts, "k6", EdgeBatchRequest{
		BatchID: "bump", Remove: [][2]int64{{0, 1}}, Flush: true,
	}); code != http.StatusOK || resp.GraphVersion != 2 {
		t.Fatalf("ingest: %+v (code %d)", resp, code)
	}

	v1fp := fmt.Sprintf("%016x", v1.Fingerprint())
	if code, ec := shardPost(shard(1, v1fp)); code != http.StatusOK {
		t.Errorf("retained version 1: status %d (%s), want 200", code, ec)
	}
	if code, ec := shardPost(shard(0, "")); code != http.StatusOK {
		t.Errorf("unpinned: status %d (%s), want 200", code, ec)
	}
	if code, ec := shardPost(shard(99, "")); code != http.StatusConflict || ec != "version_unavailable" {
		t.Errorf("unknown version: status %d code %q, want 409 version_unavailable", code, ec)
	}
	if code, ec := shardPost(shard(1, "00000000deadbeef")); code != http.StatusConflict || ec != "version_unavailable" {
		t.Errorf("fingerprint mismatch: status %d code %q, want 409 version_unavailable", code, ec)
	}
	if code, ec := shardPost(shard(0, v1fp)); code != http.StatusBadRequest || ec != "invalid_options" {
		t.Errorf("fingerprint without version: status %d code %q, want 400 invalid_options", code, ec)
	}
	if code, ec := shardPost(shard(1, "xyz")); code != http.StatusBadRequest || ec != "invalid_options" {
		t.Errorf("malformed fingerprint: status %d code %q, want 400 invalid_options", code, ec)
	}
}

// TestMergePolicy exercises threshold-driven merges and version retention
// directly against the MutableDataset.
func TestMergePolicy(t *testing.T) {
	cat := NewCatalog()
	cat.SetMergePolicy(4, 2)
	if _, err := cat.Add("g", completeGraph(t, 5)); err != nil {
		t.Fatal(err)
	}
	md, _ := cat.GetMutable("g")

	// Three ops stage; the fourth crosses the threshold and merges.
	for i, batch := range []EdgeBatchRequest{
		{BatchID: "a", Add: [][2]int64{{10, 11}, {11, 12}}},
		{BatchID: "b", Add: [][2]int64{{12, 13}}},
	} {
		resp, _, err := md.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Merged {
			t.Fatalf("batch %d merged below threshold: %+v", i, resp)
		}
	}
	resp, _, err := md.ApplyBatch(EdgeBatchRequest{BatchID: "c", Add: [][2]int64{{13, 14}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Merged || resp.GraphVersion != 2 || resp.PendingOps != 0 {
		t.Fatalf("threshold batch = %+v, want merge to version 2", resp)
	}

	// Another merge evicts version 1 (maxVersions = 2 keeps {2, 3}).
	if resp, _, err = md.ApplyBatch(EdgeBatchRequest{BatchID: "d", Add: [][2]int64{{14, 15}}, Flush: true}); err != nil || resp.GraphVersion != 3 {
		t.Fatalf("flush: %+v, %v", resp, err)
	}
	if got := md.RetainedVersions(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("retained = %v, want [2 3]", got)
	}
	if _, err := md.At(1, 0); !errors.Is(err, ErrVersionGone) {
		t.Errorf("At(1) after eviction = %v, want ErrVersionGone", err)
	}

	// A flush whose delta cancels to nothing publishes no version.
	if resp, _, err = md.ApplyBatch(EdgeBatchRequest{BatchID: "e", Add: [][2]int64{{50, 51}}}); err != nil || resp.Merged {
		t.Fatalf("stage: %+v, %v", resp, err)
	}
	resp, _, err = md.ApplyBatch(EdgeBatchRequest{BatchID: "f", Remove: [][2]int64{{50, 51}}, Flush: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Merged || resp.GraphVersion != 3 || resp.PendingOps != 0 {
		t.Errorf("canceling flush = %+v, want no merge, version still 3, pending reset", resp)
	}
}

// TestIngestDrainingRejected: a draining server admits no mutations.
func TestIngestDrainingRejected(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.SetDraining(true)
	code, _, er := ingest(t, ts, "k6", EdgeBatchRequest{BatchID: "late", Add: [][2]int64{{1, 2}}})
	if code != http.StatusServiceUnavailable || er == nil || er.Code != "draining" {
		t.Errorf("draining ingest: code %d envelope %+v, want 503 draining", code, er)
	}
}
