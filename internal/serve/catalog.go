package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adjstream"
)

// ErrUnknownGraph reports a request naming no catalog dataset; the HTTP
// layer maps it to 404.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// ErrDuplicateGraph reports an Add or LoadFile under a name the catalog
// already holds. Callers that reload catalogs dispatch on it with
// errors.Is instead of matching message strings.
var ErrDuplicateGraph = errors.New("serve: duplicate graph")

// Info is the public description of a catalog dataset.
type Info struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// N is the vertex count.
	N int `json:"n"`
	// M is the edge count.
	M int64 `json:"m"`
	// Lists is the number of adjacency lists in the canonical stream.
	Lists int `json:"lists"`
	// Fingerprint is the content hash of the graph (16 hex digits), the
	// value that keys cached results to the graph's edges rather than its
	// catalog name.
	Fingerprint string `json:"fingerprint"`
}

// Dataset is one loaded graph: the graph itself plus its canonical sorted
// stream and content fingerprint, built once at load time and shared
// read-only across requests (streams are immutable and safe for concurrent
// replay).
type Dataset struct {
	name   string
	g      *adjstream.Graph
	sorted *adjstream.Stream
	fp     uint64
}

// Name returns the catalog key.
func (d *Dataset) Name() string { return d.name }

// Fingerprint returns the content hash of the dataset's graph: FNV-64a
// over the vertex count, edge count, and every adjacency list in canonical
// sorted order. Two datasets share a fingerprint iff they hold the same
// labeled graph, so a cache entry keyed by (name, fingerprint) can never
// survive a reload that changes the edges behind a name.
func (d *Dataset) Fingerprint() uint64 { return d.fp }

// fingerprintGraph hashes g's canonical adjacency structure.
func fingerprintGraph(g *adjstream.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, u := range g.Vertices() {
		put(uint64(u))
		for _, v := range g.Neighbors(u) {
			put(uint64(v))
		}
	}
	return h.Sum64()
}

// Info returns the dataset description.
func (d *Dataset) Info() Info {
	return Info{
		Name:        d.name,
		N:           d.g.N(),
		M:           d.g.M(),
		Lists:       d.sorted.Lists(),
		Fingerprint: fmt.Sprintf("%016x", d.fp),
	}
}

// Stream returns the stream for the requested order: "" or "sorted" is the
// cached canonical stream (no per-request work), "random" materializes a
// fresh seeded random order for this request.
func (d *Dataset) Stream(order string, seed uint64) (*adjstream.Stream, error) {
	switch order {
	case "", "sorted":
		return d.sorted, nil
	case "random":
		return adjstream.RandomStream(d.g, seed), nil
	default:
		return nil, fmt.Errorf("%w: unknown order %q (want sorted or random)", adjstream.ErrInvalidOptions, order)
	}
}

// Catalog is a named set of datasets, loaded once and shared by all
// requests. Adds and lookups are safe for concurrent use; in the service
// the catalog is populated before Listen and read-only afterwards.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Dataset
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Dataset)}
}

// Add registers g under name, building the cached sorted stream.
func (c *Catalog) Add(name string, g *adjstream.Graph) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty dataset name")
	}
	d := &Dataset{name: name, g: g, sorted: adjstream.SortedStream(g), fp: fingerprintGraph(g)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("%w %q", ErrDuplicateGraph, name)
	}
	c.byName[name] = d
	return d, nil
}

// LoadFile reads an edge-list file and registers it under name.
func (c *Catalog) LoadFile(name, path string) error {
	g, err := adjstream.ReadEdgeListFile(path)
	if err != nil {
		return err
	}
	_, err = c.Add(name, g)
	return err
}

// LoadDir loads every *.edges and *.txt edge-list file in dir, naming each
// dataset after its file base name without the extension. It returns the
// number of datasets loaded.
func (c *Catalog) LoadDir(dir string) (int, error) {
	var paths []string
	for _, pat := range []string{"*.edges", "*.txt"} {
		got, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return 0, fmt.Errorf("serve: %w", err)
		}
		paths = append(paths, got...)
	}
	sort.Strings(paths)
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if err := c.LoadFile(name, p); err != nil {
			return 0, fmt.Errorf("serve: loading %s: %w", p, err)
		}
	}
	return len(paths), nil
}

// Get looks up a dataset; ok is false for unknown names.
func (c *Catalog) Get(name string) (d *Dataset, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok = c.byName[name]
	return d, ok
}

// Len returns the number of datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byName)
}

// Infos lists every dataset, sorted by name.
func (c *Catalog) Infos() []Info {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Info, 0, len(c.byName))
	for _, d := range c.byName {
		out = append(out, d.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
