package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adjstream"
)

// ErrUnknownGraph reports a request naming no catalog dataset; the HTTP
// layer maps it to 404.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// ErrDuplicateGraph reports an Add or LoadFile under a name the catalog
// already holds. Callers that reload catalogs dispatch on it with
// errors.Is instead of matching message strings.
var ErrDuplicateGraph = errors.New("serve: duplicate graph")

// Info is the public description of a catalog dataset.
type Info struct {
	// Name is the catalog key.
	Name string `json:"name"`
	// N is the vertex count.
	N int `json:"n"`
	// M is the edge count.
	M int64 `json:"m"`
	// Lists is the number of adjacency lists in the canonical stream.
	Lists int `json:"lists"`
	// Fingerprint is the content hash of the graph (16 hex digits), the
	// value that keys cached results to the graph's edges rather than its
	// catalog name.
	Fingerprint string `json:"fingerprint"`
	// Version is the monotonically increasing graph version; it advances
	// whenever an ingested edge delta is merged (see MutableDataset).
	Version uint64 `json:"version"`
}

// Dataset is one immutable version of a catalog graph: the graph itself
// plus its canonical sorted stream, content fingerprint, and version
// number, built once when the version is published and shared read-only
// across requests (streams are immutable and safe for concurrent replay).
// Every estimate pins exactly one Dataset for its whole lifetime — cache
// key, admission, and run all read the same snapshot — so a concurrent
// ingest merge can never shift the graph under an in-flight request.
type Dataset struct {
	name    string
	g       *adjstream.Graph
	sorted  *adjstream.Stream
	fp      uint64
	version uint64
}

// Name returns the catalog key.
func (d *Dataset) Name() string { return d.name }

// Version returns the dataset's graph version (1 for a freshly loaded
// graph; +1 per merged ingest delta).
func (d *Dataset) Version() uint64 { return d.version }

// Graph returns the immutable graph behind this version.
func (d *Dataset) Graph() *adjstream.Graph { return d.g }

// Fingerprint returns the content hash of the dataset's graph: FNV-64a
// over the vertex count, edge count, and every adjacency list in canonical
// sorted order. Two datasets share a fingerprint iff they hold the same
// labeled graph, so a cache entry keyed by (name, fingerprint) can never
// survive a reload that changes the edges behind a name.
func (d *Dataset) Fingerprint() uint64 { return d.fp }

// fingerprintGraph hashes g's canonical adjacency structure.
func fingerprintGraph(g *adjstream.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, u := range g.Vertices() {
		put(uint64(u))
		for _, v := range g.Neighbors(u) {
			put(uint64(v))
		}
	}
	return h.Sum64()
}

// Info returns the dataset description.
func (d *Dataset) Info() Info {
	return Info{
		Name:        d.name,
		N:           d.g.N(),
		M:           d.g.M(),
		Lists:       d.sorted.Lists(),
		Fingerprint: fmt.Sprintf("%016x", d.fp),
		Version:     d.version,
	}
}

// newDataset builds the immutable snapshot for one graph version.
func newDataset(name string, g *adjstream.Graph, version uint64) *Dataset {
	return &Dataset{
		name:    name,
		g:       g,
		sorted:  adjstream.SortedStream(g),
		fp:      fingerprintGraph(g),
		version: version,
	}
}

// Stream returns the stream for the requested order: "" or "sorted" is the
// cached canonical stream (no per-request work), "random" materializes a
// fresh seeded random order for this request.
func (d *Dataset) Stream(order string, seed uint64) (*adjstream.Stream, error) {
	switch order {
	case "", "sorted":
		return d.sorted, nil
	case "random":
		return adjstream.RandomStream(d.g, seed), nil
	default:
		return nil, fmt.Errorf("%w: unknown order %q (want sorted or random)", adjstream.ErrInvalidOptions, order)
	}
}

// Catalog is a named set of mutable datasets. The set of names is fixed
// after loading (populated before Listen), but each entry can advance
// through graph versions via live ingestion; Get always returns the
// current immutable snapshot. Adds and lookups are safe for concurrent
// use.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*MutableDataset

	// Merge policy stamped onto datasets at Add time; set it with
	// SetMergePolicy before loading graphs.
	mergeThreshold int
	maxVersions    int
}

// NewCatalog returns an empty catalog with the default merge policy.
func NewCatalog() *Catalog {
	return &Catalog{
		byName:         make(map[string]*MutableDataset),
		mergeThreshold: DefaultMergeThreshold,
		maxVersions:    DefaultMaxVersions,
	}
}

// SetMergePolicy configures how datasets added afterwards fold ingested
// deltas: a merge is forced once threshold net edge ops are pending, and
// at most maxVersions published snapshots are retained for version-pinned
// shard requests. Call it before loading graphs; values < 1 keep the
// current setting.
func (c *Catalog) SetMergePolicy(threshold, maxVersions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if threshold >= 1 {
		c.mergeThreshold = threshold
	}
	if maxVersions >= 1 {
		c.maxVersions = maxVersions
	}
}

// Add registers g under name at version 1, building the cached sorted
// stream.
func (c *Catalog) Add(name string, g *adjstream.Graph) (*Dataset, error) {
	return c.AddAt(name, g, 1)
}

// AddAt registers g under name at an explicit starting version. It exists
// so a catalog can be reconstructed with version numbers matching another
// node's history (equivalence tests cold-load a graph at version V and
// compare byte-for-byte against estimates pinned to V).
func (c *Catalog) AddAt(name string, g *adjstream.Graph, version uint64) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty dataset name")
	}
	if version == 0 {
		return nil, fmt.Errorf("serve: graph versions start at 1")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("%w %q", ErrDuplicateGraph, name)
	}
	md := newMutableDataset(name, g, version, c.mergeThreshold, c.maxVersions)
	c.byName[name] = md
	return md.Current(), nil
}

// LoadFile reads an edge-list file and registers it under name.
func (c *Catalog) LoadFile(name, path string) error {
	g, err := adjstream.ReadEdgeListFile(path)
	if err != nil {
		return err
	}
	_, err = c.Add(name, g)
	return err
}

// LoadDir loads every *.edges and *.txt edge-list file in dir, naming each
// dataset after its file base name without the extension. It returns the
// number of datasets loaded.
func (c *Catalog) LoadDir(dir string) (int, error) {
	var paths []string
	for _, pat := range []string{"*.edges", "*.txt"} {
		got, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return 0, fmt.Errorf("serve: %w", err)
		}
		paths = append(paths, got...)
	}
	sort.Strings(paths)
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if err := c.LoadFile(name, p); err != nil {
			return 0, fmt.Errorf("serve: loading %s: %w", p, err)
		}
	}
	return len(paths), nil
}

// Get looks up a dataset and returns its current immutable snapshot; ok
// is false for unknown names. Callers pin the returned *Dataset for the
// whole request, so later merges never shift the graph under them.
func (c *Catalog) Get(name string) (d *Dataset, ok bool) {
	c.mu.RLock()
	md, ok := c.byName[name]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return md.Current(), true
}

// GetMutable looks up the mutable dataset behind a name; ok is false for
// unknown names.
func (c *Catalog) GetMutable(name string) (md *MutableDataset, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	md, ok = c.byName[name]
	return md, ok
}

// Len returns the number of datasets.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byName)
}

// Infos lists every dataset, sorted by name.
func (c *Catalog) Infos() []Info {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Info, 0, len(c.byName))
	for _, md := range c.byName {
		out = append(out, md.Current().Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
