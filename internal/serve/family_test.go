package serve

// Tests for the batch family optimization: items identical up to Copies run
// once at the largest copy count, and each member's answer is merged from
// its prefix of the shared snapshots — bit-identical to a standalone run,
// reported as Cache "shared".

import (
	"net/http"
	"testing"
)

func TestBatchFamilySharesOneRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	family := func(copies int) EstimateRequest {
		return EstimateRequest{
			Graph:      "k6",
			Algorithm:  "twopass-triangle",
			SampleProb: 0.6,
			Copies:     copies,
			Parallel:   true,
			Seed:       seedPtr(9),
		}
	}
	other := family(8)
	other.Algorithm = "naive-twopass"
	batch := BatchRequest{Requests: []EstimateRequest{family(4), family(8), other}}
	var resp BatchResponse
	if code := post(t, ts, "/v1/estimate/batch", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for i := 0; i < 2; i++ {
		if resp.Results[i].Status != http.StatusOK || resp.Results[i].Result == nil {
			t.Fatalf("item %d = %+v, want 200 with result", i, resp.Results[i])
		}
		if resp.Results[i].Cache != string(CacheShared) {
			t.Errorf("item %d cache = %q, want %q", i, resp.Results[i].Cache, CacheShared)
		}
	}
	// The lone member of a different family runs solo.
	if resp.Results[2].Cache == string(CacheShared) {
		t.Errorf("non-family item reported shared cache")
	}

	// Each member's response is bit-identical to a standalone request on a
	// fresh server (everything but the elapsed time).
	for i, req := range []EstimateRequest{family(4), family(8)} {
		_, fresh := newTestServer(t, Config{})
		var want EstimateResponse
		if code := post(t, fresh, "/v1/estimate", req, &want); code != http.StatusOK {
			t.Fatalf("standalone status = %d", code)
		}
		got := *resp.Results[i].Result
		got.ElapsedMS, want.ElapsedMS = 0, 0
		if got != want {
			t.Errorf("item %d: shared-run response %+v != standalone %+v", i, got, want)
		}
	}

	// The family results were cached per member: the repeat batch hits.
	var again BatchResponse
	if code := post(t, ts, "/v1/estimate/batch", batch, &again); code != http.StatusOK {
		t.Fatalf("repeat batch status = %d", code)
	}
	for i := 0; i < 2; i++ {
		if again.Results[i].Cache != string(CacheHit) {
			t.Errorf("repeat item %d cache = %q, want hit", i, again.Results[i].Cache)
		}
		if again.Results[i].Result.Estimate != resp.Results[i].Result.Estimate {
			t.Errorf("repeat item %d estimate changed", i)
		}
	}
}

// TestBatchFamilyDriverVariants checks the shared run honors each member
// family's driver and stays bit-identical to standalone runs under it.
func TestBatchFamilyDriverVariants(t *testing.T) {
	for _, driver := range []string{"broadcast", "push-broadcast", "replay"} {
		t.Run(driver, func(t *testing.T) {
			_, ts := newTestServer(t, Config{})
			mk := func(copies int) EstimateRequest {
				return EstimateRequest{
					Graph:      "k6",
					Algorithm:  "onepass-triangle",
					SampleProb: 0.7,
					Copies:     copies,
					Parallel:   true,
					Driver:     driver,
					Seed:       seedPtr(3),
				}
			}
			batch := BatchRequest{Requests: []EstimateRequest{mk(3), mk(5)}}
			var resp BatchResponse
			if code := post(t, ts, "/v1/estimate/batch", batch, &resp); code != http.StatusOK {
				t.Fatalf("batch status = %d", code)
			}
			for i, copies := range []int{3, 5} {
				r := resp.Results[i]
				if r.Status != http.StatusOK || r.Result == nil {
					t.Fatalf("item %d = %+v", i, r)
				}
				if r.Cache != string(CacheShared) {
					t.Errorf("item %d cache = %q, want shared", i, r.Cache)
				}
				if r.Result.Copies != copies || r.Result.Driver != driver {
					t.Errorf("item %d: copies/driver = %d/%q, want %d/%q",
						i, r.Result.Copies, r.Result.Driver, copies, driver)
				}
				_, fresh := newTestServer(t, Config{})
				var want EstimateResponse
				if code := post(t, fresh, "/v1/estimate", mk(copies), &want); code != http.StatusOK {
					t.Fatalf("standalone status = %d", code)
				}
				got := *r.Result
				got.ElapsedMS, want.ElapsedMS = 0, 0
				if got != want {
					t.Errorf("item %d: %+v != standalone %+v", i, got, want)
				}
			}
		})
	}
}
