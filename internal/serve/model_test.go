package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
)

// postFull sends body and returns the raw response, for header assertions.
func postFull(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// The model axis end to end: an arbitrary-order estimate over a catalog
// graph at p = 1 returns the exact count, echoes the model, reports no
// driver, and the repeat is a cache hit.
func TestEstimateArbitraryModelRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{
		Graph: "k6", Model: "arbitrary", Algorithm: "arb-twopass-wedge",
		SampleProb: 1, Seed: seedPtr(1),
	}
	resp := postFull(t, ts.URL+"/v1/estimate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != string(CacheMiss) {
		t.Fatalf("first X-Cache = %q", got)
	}
	var body EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Estimate != 20 { // K6: 20 triangles
		t.Fatalf("estimate = %v, want 20", body.Estimate)
	}
	if body.Model != "arbitrary" {
		t.Fatalf("model echoed as %q", body.Model)
	}
	if body.Driver != "" {
		t.Fatalf("driver = %q, want empty for arbitrary runs", body.Driver)
	}
	if body.M != 15 || body.Passes != 2 {
		t.Fatalf("metadata m=%d passes=%d", body.M, body.Passes)
	}

	again := postFull(t, ts.URL+"/v1/estimate", req)
	if got := again.Header.Get("X-Cache"); got != string(CacheHit) {
		t.Fatalf("repeat X-Cache = %q", got)
	}
	var cached EstimateResponse
	if err := json.NewDecoder(again.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	if cached != body {
		t.Fatalf("cached response %+v != fresh %+v", cached, body)
	}

	// The 4-cycle family over the same API: K6 has 45 four-cycles.
	var c4 EstimateResponse
	code := post(t, ts, "/v1/estimate", EstimateRequest{
		Graph: "k6", Model: "arbitrary", Algorithm: "arb-threepass-fourcycle",
		SampleProb: 1, Seed: seedPtr(1),
	}, &c4)
	if code != http.StatusOK || c4.Estimate != 45 || c4.Passes != 3 {
		t.Fatalf("threepass-fourcycle: code %d, %+v", code, c4)
	}
}

// Cache-collision regression: two keys identical in everything but the
// model must be distinct cache entries — if model ever drops out of
// cacheKey, the second Put overwrites the first and this test fails.
func TestCacheKeysDistinctPerModel(t *testing.T) {
	c := NewCache(64, 0)
	base := cacheKey{kind: "estimate", graph: "g", algorithm: "exact", seed: 1}
	arb := base
	arb.model = "arbitrary"
	c.Put(base, EstimateResponse{Estimate: 1})
	c.Put(arb, EstimateResponse{Estimate: 2})
	got, ok := c.Get(base)
	if !ok || got.Estimate != 1 {
		t.Fatalf("adjacency-list entry = %+v, %v", got, ok)
	}
	got, ok = c.Get(arb)
	if !ok || got.Estimate != 2 {
		t.Fatalf("arbitrary entry = %+v, %v", got, ok)
	}
}

func TestModelValidationOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		req  any
	}{
		{"unknown model", "/v1/estimate", EstimateRequest{Graph: "k6", Model: "edge-list", Algorithm: "exact"}},
		{"AL algorithm under arbitrary", "/v1/estimate", EstimateRequest{Graph: "k6", Model: "arbitrary", Algorithm: "exact"}},
		{"arb algorithm without model", "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "arb-twopass-wedge", SampleProb: 1}},
		{"driver under arbitrary", "/v1/estimate", EstimateRequest{Graph: "k6", Model: "arbitrary", Algorithm: "arb-twopass-wedge", SampleProb: 1, Driver: "broadcast"}},
		{"distinguish rejects model", "/v1/distinguish", EstimateRequest{Graph: "k6", Model: "arbitrary"}},
		{"shard rejects model", "/v1/shard", ShardRequest{
			EstimateRequest: EstimateRequest{Graph: "k6", Model: "arbitrary", Algorithm: "arb-twopass-wedge", SampleProb: 1, Copies: 2},
			CopyLo:          0, CopyHi: 1,
		}},
	}
	for _, c := range cases {
		var errResp ErrorResponse
		if code := post(t, ts, c.path, c.req, &errResp); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
			continue
		}
		if errResp.Error.Code != "invalid_options" {
			t.Errorf("%s: code %q", c.name, errResp.Error.Code)
		}
	}
}

// Batch items may select the arbitrary model; they run solo (never grouped
// into a snapshot-merging family) and still populate the cache.
func TestBatchArbitraryModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mk := func(copies int) EstimateRequest {
		return EstimateRequest{
			Graph: "k6", Model: "arbitrary", Algorithm: "arb-twopass-wedge",
			SampleProb: 0.5, Copies: copies, Parallel: true, Seed: seedPtr(3),
		}
	}
	var batch BatchResponse
	code := post(t, ts, "/v1/estimate/batch", BatchRequest{Requests: []EstimateRequest{mk(4), mk(8)}}, &batch)
	if code != http.StatusOK || len(batch.Results) != 2 {
		t.Fatalf("code %d, results %d", code, len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Error != nil || item.Result == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		if item.Cache == string(CacheShared) {
			t.Fatalf("item %d grouped into a snapshot family", i)
		}
		if item.Result.Model != "arbitrary" {
			t.Fatalf("item %d model %q", i, item.Result.Model)
		}
		// Each item must equal its standalone run.
		var solo EstimateResponse
		if post(t, ts, "/v1/estimate", batchReq(mk, i), &solo); solo.Estimate != item.Result.Estimate {
			t.Fatalf("item %d: batch %v != solo %v", i, item.Result.Estimate, solo.Estimate)
		}
	}
}

func batchReq(mk func(int) EstimateRequest, i int) EstimateRequest {
	if i == 0 {
		return mk(4)
	}
	return mk(8)
}

// Cluster mode never routes arbitrary-model runs to the remote: the shard
// transport is adjacency-list only, so they execute locally even when a
// remote runner is configured.
func TestArbitraryModelBypassesRemote(t *testing.T) {
	boom := errors.New("remote must not see arbitrary-model runs")
	cfg := Config{
		Remote: func(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, error) {
			return EstimateResponse{}, boom // not ErrRemoteUnavailable: no local fallback
		},
	}
	_, ts := newTestServer(t, cfg)
	var resp EstimateResponse
	code := post(t, ts, "/v1/estimate", EstimateRequest{
		Graph: "k6", Model: "arbitrary", Algorithm: "arb-twopass-wedge",
		SampleProb: 1, Seed: seedPtr(1),
	}, &resp)
	if code != http.StatusOK || resp.Estimate != 20 {
		t.Fatalf("arbitrary run through cluster config: code %d, %+v", code, resp)
	}
	// Sanity: the same server does route adjacency-list runs remotely.
	var errResp ErrorResponse
	if code := post(t, ts, "/v1/estimate", EstimateRequest{Graph: "k6", Algorithm: "exact"}, &errResp); code != http.StatusInternalServerError {
		t.Fatalf("AL run bypassed remote: code %d", code)
	}
}
