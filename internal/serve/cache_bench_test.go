package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adjstream/internal/gen"
)

// newBenchServer builds an httptest server over one mid-size Erdős–Rényi
// graph, heavy enough that an estimation run dwarfs HTTP overhead.
func newBenchServer(b *testing.B, cfg Config) *httptest.Server {
	b.Helper()
	g, err := gen.ErdosRenyi(800, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	cat := NewCatalog()
	if _, err := cat.Add("er800", g); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(New(cat, cfg).Handler())
	b.Cleanup(ts.Close)
	return ts
}

// benchPost POSTs body to /v1/estimate and returns the X-Cache header.
func benchPost(b *testing.B, ts *httptest.Server, body string) string {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Cache")
}

// BenchmarkEstimateColdVsCached compares the full request latency of an
// uncached estimation run ("cold", cache disabled so every iteration
// streams the graph) against a cache hit ("cached", primed once). The
// cached path should cost well under 1% of the cold path — it is one
// shard-map lookup plus JSON encoding.
func BenchmarkEstimateColdVsCached(b *testing.B) {
	const body = `{"graph":"er800","algorithm":"twopass-triangle","sample_size":512,"copies":9,"parallel":true,"seed":7}`
	b.Run("cold", func(b *testing.B) {
		ts := newBenchServer(b, Config{CacheEntries: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := benchPost(b, ts, body); out != string(CacheBypass) {
				b.Fatalf("X-Cache = %q, want bypass", out)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		ts := newBenchServer(b, Config{})
		benchPost(b, ts, body) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := benchPost(b, ts, body); out != string(CacheHit) {
				b.Fatalf("X-Cache = %q, want hit", out)
			}
		}
	})
}
