package serve

// Guards OPERATIONS.md against drift: binds every handle set this package
// registers and asserts the operator guide names each resulting metric.

import (
	"os"
	"regexp"
	"testing"

	"adjstream/internal/telemetry"
)

// endpointNames is the full endpoint list Handler registers metrics for.
var endpointNames = []string{"estimate", "distinguish", "batch", "shard", "graphs", "ingest", "healthz"}

func TestOperationsDocCoversServeMetrics(t *testing.T) {
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()
	for _, ep := range endpointNames {
		teleForEndpoint(ep)
	}
	teleForPool()
	teleForCache().occupancy(0, 0)
	teleForIngest()

	// The guide documents per-endpoint metrics once with an <endpoint>
	// placeholder and numbered series with NN. Only the standard
	// requests/errors/latency_ns trio normalizes; the ingest-specific
	// serve.ingest.{batches,merges,...} names must appear literally.
	endpointRe := regexp.MustCompile(`^serve\.(estimate|distinguish|batch|shard|graphs|ingest|healthz)\.(requests|errors|latency_ns)$`)
	digitsRe := regexp.MustCompile(`\.[0-9]+\.`)
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, name := range names {
		normalized := endpointRe.ReplaceAllString(name, "serve.<endpoint>.$2")
		normalized = digitsRe.ReplaceAllString(normalized, ".NN.")
		if !regexp.MustCompile("`" + regexp.QuoteMeta(normalized) + "`").Match(doc) {
			t.Errorf("metric %s (documented form `%s`) is missing from OPERATIONS.md", name, normalized)
		}
	}
}
