package serve

import (
	"fmt"
	"time"

	"adjstream/internal/telemetry"
)

// Service telemetry, following the driver convention: handles resolve per
// request (one atomic load, plus registry lookups only when enabled) and
// every update is a nil-check no-op when telemetry is disabled.
//
// Metric names, per endpoint ("estimate", "distinguish", "batch", "shard",
// "graphs", "ingest", "healthz"):
//
//	serve.<endpoint>.requests    counter   — requests handled
//	serve.<endpoint>.errors      counter   — non-2xx responses
//	serve.<endpoint>.latency_ns  histogram — wall time per request
//
// and for live ingestion (beyond the per-endpoint trio):
//
//	serve.ingest.batches           counter   — edge batches applied
//	serve.ingest.duplicates        counter   — batches replayed by batch id
//	serve.ingest.edges_added       counter   — edge additions accepted
//	serve.ingest.edges_removed     counter   — edge removals accepted
//	serve.ingest.merges            counter   — delta merges published
//	serve.ingest.merge_latency_ns  histogram — wall time per delta merge
//
// and for the worker pool:
//
//	serve.pool.in_flight    gauge      — held worker slots
//	serve.pool.waiting      gauge      — admitted requests waiting for a slot
//	serve.pool.queue_depth  high-water — peak waiting requests
//	serve.pool.admitted     counter    — requests granted a slot
//	serve.pool.rejected     counter    — admissions refused (429s)
//
// and for the result cache:
//
//	serve.cache.hits               counter — responses served from the cache
//	serve.cache.misses             counter — lookups that ran the estimation
//	serve.cache.evictions          counter — entries dropped (LRU or TTL)
//	serve.cache.coalesced          counter — requests that joined an
//	                                         in-progress identical run
//	serve.cache.shard.NN.entries   gauge   — per-shard occupancy
type endpointTele struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

// teleForEndpoint binds the handle set for the named endpoint, or the
// all-nil zero value when telemetry is disabled.
func teleForEndpoint(name string) endpointTele {
	r := telemetry.Global()
	if r == nil {
		return endpointTele{}
	}
	prefix := "serve." + name + "."
	return endpointTele{
		requests: r.Counter(prefix + "requests"),
		errors:   r.Counter(prefix + "errors"),
		latency:  r.Histogram(prefix + "latency_ns"),
	}
}

// start returns the request start time, or the zero time when disabled.
func (t endpointTele) start() time.Time {
	if t.requests == nil {
		return time.Time{}
	}
	return time.Now()
}

// end records one handled request and whether it failed.
func (t endpointTele) end(start time.Time, status int) {
	if t.requests == nil {
		return
	}
	t.requests.Add(1)
	if status >= 300 {
		t.errors.Add(1)
	}
	t.latency.Observe(int64(time.Since(start)))
}

// ingestTele is the live-ingestion handle set (the ingest endpoint also
// gets the standard per-endpoint trio via teleForEndpoint).
type ingestTele struct {
	batches      *telemetry.Counter
	duplicates   *telemetry.Counter
	edgesAdded   *telemetry.Counter
	edgesRemoved *telemetry.Counter
	merges       *telemetry.Counter
	mergeLatency *telemetry.Histogram
}

// teleForIngest binds the ingestion handles, or the all-nil zero value
// when telemetry is disabled.
func teleForIngest() ingestTele {
	r := telemetry.Global()
	if r == nil {
		return ingestTele{}
	}
	return ingestTele{
		batches:      r.Counter("serve.ingest.batches"),
		duplicates:   r.Counter("serve.ingest.duplicates"),
		edgesAdded:   r.Counter("serve.ingest.edges_added"),
		edgesRemoved: r.Counter("serve.ingest.edges_removed"),
		merges:       r.Counter("serve.ingest.merges"),
		mergeLatency: r.Histogram("serve.ingest.merge_latency_ns"),
	}
}

// record publishes the outcome of one applied batch.
func (t ingestTele) record(req EdgeBatchRequest, resp EdgeBatchResponse, mergeDur time.Duration) {
	if t.batches == nil {
		return
	}
	t.batches.Add(1)
	if resp.Duplicate {
		t.duplicates.Add(1)
		return
	}
	t.edgesAdded.Add(int64(len(req.Add)))
	t.edgesRemoved.Add(int64(len(req.Remove)))
	if resp.Merged {
		t.merges.Add(1)
		t.mergeLatency.Observe(int64(mergeDur))
	}
}

// poolTele is the pool's handle set.
type poolTele struct {
	inflight   *telemetry.Gauge
	waiting    *telemetry.Gauge
	queueDepth *telemetry.HighWater
	admitted   *telemetry.Counter
	rejected   *telemetry.Counter
}

// teleForPool binds the pool handles, or the all-nil zero value when
// telemetry is disabled.
func teleForPool() poolTele {
	r := telemetry.Global()
	if r == nil {
		return poolTele{}
	}
	return poolTele{
		inflight:   r.Gauge("serve.pool.in_flight"),
		waiting:    r.Gauge("serve.pool.waiting"),
		queueDepth: r.HighWater("serve.pool.queue_depth"),
		admitted:   r.Counter("serve.pool.admitted"),
		rejected:   r.Counter("serve.pool.rejected"),
	}
}

// cacheTele is the result cache's handle set.
type cacheTele struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	coalesced *telemetry.Counter
	reg       *telemetry.Registry
}

// cacheShardGauges holds the per-shard occupancy metric names, built once.
var cacheShardGauges = func() [cacheShards]string {
	var names [cacheShards]string
	for i := range names {
		names[i] = fmt.Sprintf("serve.cache.shard.%02d.entries", i)
	}
	return names
}()

// teleForCache binds the cache handles, or the all-nil zero value when
// telemetry is disabled.
func teleForCache() cacheTele {
	r := telemetry.Global()
	if r == nil {
		return cacheTele{}
	}
	return cacheTele{
		hits:      r.Counter("serve.cache.hits"),
		misses:    r.Counter("serve.cache.misses"),
		evictions: r.Counter("serve.cache.evictions"),
		coalesced: r.Counter("serve.cache.coalesced"),
		reg:       r,
	}
}

// occupancy publishes the entry count of one shard (off the hot lookup
// path: it runs only on puts and evictions).
func (t cacheTele) occupancy(shard, n int) {
	if t.reg == nil {
		return
	}
	t.reg.Gauge(cacheShardGauges[shard]).Set(int64(n))
}
