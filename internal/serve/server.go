package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"adjstream"
)

// ErrDraining reports that the server is shutting down and admits no new
// estimation work; the HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: draining")

// StatusClientClosedRequest is the (nginx-conventional) status reported
// when the client disconnected before its run finished; the response is
// never seen, but the access log and metrics keep an honest record.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value selects every default.
type Config struct {
	// Workers bounds concurrent estimation requests (default GOMAXPROCS).
	Workers int
	// Queue bounds admitted requests waiting for a worker slot beyond the
	// slots themselves (default 2×Workers; 0 disables queueing so every
	// excess request is rejected immediately).
	Queue int
	// MaxTimeout caps per-request deadlines and applies when a request
	// asks for none (default 30s).
	MaxTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration

	// testHookRun, when set, runs inside the worker slot before the
	// estimation starts — the test seam for deterministic saturation,
	// cancellation, and drain tests.
	testHookRun func(ctx context.Context)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 0 // NewPool resolves GOMAXPROCS
	}
	if c.Queue == 0 {
		c.Queue = -1 // NewPool resolves 2×workers
	} else if c.Queue < 0 {
		c.Queue = 0
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the estimation service: a catalog of loaded graphs behind the
// HTTP/JSON API, with every estimation admitted through the bounded pool
// and run under a context that carries the request deadline and client
// connection.
type Server struct {
	cat  *Catalog
	cfg  Config
	pool *Pool

	draining atomic.Bool
}

// EstimateRequest is the body of POST /v1/estimate and POST /v1/distinguish.
// For /v1/estimate, Algorithm selects the estimator and CycleLen is the
// cycle length for "exact". For /v1/distinguish, CycleLen is the decision
// problem's cycle length (default 3) and Algorithm must be empty — the
// service derives it, exactly as adjstream.DistinguishContext does.
type EstimateRequest struct {
	// Graph names a catalog dataset.
	Graph string `json:"graph"`
	// Algorithm selects the estimator (see adjstream.Algorithms).
	Algorithm string `json:"algorithm,omitempty"`
	// SampleSize is the bottom-k edge budget m′.
	SampleSize int `json:"sample_size,omitempty"`
	// SampleProb is the per-edge sampling probability.
	SampleProb float64 `json:"sample_prob,omitempty"`
	// PairCap bounds the candidate pair/wedge reservoir.
	PairCap int `json:"pair_cap,omitempty"`
	// CycleLen is the cycle length (see the struct comment).
	CycleLen int `json:"cycle_len,omitempty"`
	// Copies runs median-of-k amplification.
	Copies int `json:"copies,omitempty"`
	// Confidence derives Copies from δ = 1-Confidence.
	Confidence float64 `json:"confidence,omitempty"`
	// Parallel runs copies concurrently through the selected driver.
	Parallel bool `json:"parallel,omitempty"`
	// Driver is "broadcast" (default) or "replay".
	Driver string `json:"driver,omitempty"`
	// Seed drives all randomness deterministically.
	Seed uint64 `json:"seed,omitempty"`
	// Order is the stream order: "sorted" (default, cached) or "random"
	// (materialized per request from Seed).
	Order string `json:"order,omitempty"`
	// TimeoutMS bounds this request's wall time; 0 means the server
	// maximum. Values above the server maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// options maps the wire request onto adjstream.Options.
func (r EstimateRequest) options() adjstream.Options {
	return adjstream.Options{
		Algorithm:  adjstream.Algorithm(r.Algorithm),
		SampleSize: r.SampleSize,
		SampleProb: r.SampleProb,
		PairCap:    r.PairCap,
		CycleLen:   r.CycleLen,
		Copies:     r.Copies,
		Confidence: r.Confidence,
		Parallel:   r.Parallel,
		Driver:     adjstream.Driver(r.Driver),
		Seed:       r.Seed,
	}
}

// EstimateResponse is the body of a successful estimate or distinguish.
type EstimateResponse struct {
	Graph      string  `json:"graph"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Found      *bool   `json:"found,omitempty"` // distinguish only
	Estimate   float64 `json:"estimate"`
	SpaceWords int64   `json:"space_words"`
	Passes     int     `json:"passes"`
	M          int64   `json:"m"`
	Copies     int     `json:"copies"`
	Driver     string  `json:"driver,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// GraphsResponse is the body of GET /v1/graphs.
type GraphsResponse struct {
	Graphs []Info `json:"graphs"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Graphs   int    `json:"graphs"`
	InFlight int    `json:"in_flight"`
	Waiting  int    `json:"waiting"`
}

// New returns a server over cat.
func New(cat *Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cat:  cat,
		cfg:  cfg,
		pool: NewPool(cfg.Workers, cfg.Queue),
	}
}

// Pool exposes the admission pool (read-only use: occupancy, counters).
func (s *Server) Pool() *Pool { return s.pool }

// SetDraining flips drain mode: when on, /healthz fails and new estimation
// work is rejected with 503 while in-flight requests run to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainWait waits until no request holds or waits for a worker slot, or
// until ctx fires. Call SetDraining(true) first so the pool can only empty.
func (s *Server) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pool.Idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "estimate")
	})
	mux.HandleFunc("/v1/distinguish", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "distinguish")
	})
	mux.HandleFunc("/v1/graphs", s.handleGraphs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// statusOf maps service and facade sentinel errors to HTTP statuses. The
// deadline check precedes the cancellation check: ErrCanceled wraps the
// context cause, and an expired deadline is a server-visible timeout (504)
// while a bare cancellation means the client went away (499).
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, adjstream.ErrUnknownAlgorithm),
		errors.Is(err, adjstream.ErrInvalidOptions):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, adjstream.ErrCanceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode failures at this point can only be connection errors; the
	// status line is already on the wire either way.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error body for err, attaching Retry-After on
// saturation.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	status := statusOf(err)
	if status == http.StatusTooManyRequests {
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
	return status
}

// handleRun is the shared estimate/distinguish path: admission, deadline,
// catalog lookup, context-aware run, error mapping.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, kind string) {
	tt := teleForEndpoint(kind)
	start := time.Now()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, ErrorResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		status = s.writeError(w, ErrDraining)
		return
	}
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status = s.writeError(w, fmt.Errorf("%w: %w", adjstream.ErrInvalidOptions, err))
		return
	}
	ds, ok := s.cat.Get(req.Graph)
	if !ok {
		status = s.writeError(w, fmt.Errorf("%w %q", ErrUnknownGraph, req.Graph))
		return
	}

	release, err := s.pool.Acquire(r.Context())
	if err != nil {
		status = s.writeError(w, err)
		return
	}
	defer release()

	// The run context carries the client connection (r.Context is
	// cancelled on disconnect) plus the request deadline, clamped to the
	// server maximum.
	d := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	if s.cfg.testHookRun != nil {
		s.cfg.testHookRun(ctx)
	}

	st, err := ds.Stream(req.Order, req.Seed)
	if err != nil {
		status = s.writeError(w, err)
		return
	}

	resp := EstimateResponse{Graph: req.Graph, Algorithm: req.Algorithm}
	var res adjstream.Result
	switch kind {
	case "estimate":
		res, err = adjstream.EstimateContext(ctx, st, req.options())
	default: // distinguish
		cycleLen := req.CycleLen
		if cycleLen == 0 {
			cycleLen = 3
		}
		opts := req.options()
		opts.CycleLen = 0 // derived from cycleLen by DistinguishContext
		var found bool
		found, res, err = adjstream.DistinguishContext(ctx, st, cycleLen, opts)
		resp.Found = &found
	}
	if err != nil {
		status = s.writeError(w, err)
		return
	}
	resp.Estimate = res.Estimate
	resp.SpaceWords = res.SpaceWords
	resp.Passes = res.Passes
	resp.M = res.M
	resp.Copies = res.Copies
	resp.Driver = string(res.Driver)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// handleGraphs serves GET /v1/graphs.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("graphs")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		status = http.StatusMethodNotAllowed
		writeJSON(w, status, ErrorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, GraphsResponse{Graphs: s.cat.Infos()})
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining, so load balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("healthz")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()
	h := HealthResponse{
		Status:   "ok",
		Graphs:   s.cat.Len(),
		InFlight: s.pool.InFlight(),
		Waiting:  s.pool.Waiting(),
	}
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
