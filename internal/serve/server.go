package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"adjstream"
)

// ErrDraining reports that the server is shutting down and admits no new
// estimation work; the HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: draining")

// StatusClientClosedRequest is the (nginx-conventional) status reported
// when the client disconnected before its run finished; the response is
// never seen, but the access log and metrics keep an honest record.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value selects every default.
type Config struct {
	// Workers bounds concurrent estimation requests (default GOMAXPROCS).
	Workers int
	// Queue bounds admitted requests waiting for a worker slot beyond the
	// slots themselves (default 2×Workers; 0 disables queueing so every
	// excess request is rejected immediately).
	Queue int
	// MaxTimeout caps per-request deadlines and applies when a request
	// asks for none (default 30s).
	MaxTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to 429 responses
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// CacheEntries bounds the result cache (total entries across its
	// shards): 0 selects the default (4096), negative disables the cache
	// and its request coalescing entirely.
	CacheEntries int
	// CacheTTL expires cached results by age; 0 keeps entries until LRU
	// eviction.
	CacheTTL time.Duration
	// Remote, when set, executes estimations through it instead of the
	// local pool — the proxy half of cluster mode (internal/cluster's
	// scheduler). The result cache and coalescing sit in front of it
	// unchanged: remote responses are byte-identical to local ones. When a
	// remote run fails with an error wrapping ErrRemoteUnavailable, the
	// server degrades gracefully to the local pool+library path unless
	// NoLocalFallback is set.
	Remote RemoteRunner
	// NoLocalFallback disables the local-execution fallback when Remote is
	// set and unavailable; the request then fails with 503.
	NoLocalFallback bool
	// RemoteIngest, when set, forwards each accepted edge batch (its raw
	// JSON body) to the rest of the fleet after the local apply — the proxy
	// half of cluster-mode ingestion. An error surfaces to the client as
	// 503 remote_unavailable; batches are idempotent by batch id, so the
	// client's retry converges every replica.
	RemoteIngest func(ctx context.Context, graph string, body []byte) error

	// testHookRun, when set, runs inside the worker slot before the
	// estimation starts — the test seam for deterministic saturation,
	// cancellation, and drain tests.
	testHookRun func(ctx context.Context)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 0 // NewPool resolves GOMAXPROCS
	}
	if c.Queue == 0 {
		c.Queue = -1 // NewPool resolves 2×workers
	} else if c.Queue < 0 {
		c.Queue = 0
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Server is the estimation service: a catalog of loaded graphs behind the
// HTTP/JSON API, with every estimation admitted through the bounded pool
// and run under a context that carries the request deadline and client
// connection.
type Server struct {
	cat   *Catalog
	cfg   Config
	pool  *Pool
	cache *Cache // nil when disabled

	draining atomic.Bool
}

// EstimateRequest is the body of POST /v1/estimate and POST /v1/distinguish.
// For /v1/estimate, Algorithm selects the estimator and CycleLen is the
// cycle length for "exact". For /v1/distinguish, CycleLen is the decision
// problem's cycle length (default 3) and Algorithm must be empty — the
// service derives it, exactly as adjstream.DistinguishContext does.
type EstimateRequest struct {
	// Graph names a catalog dataset.
	Graph string `json:"graph"`
	// Model selects the streaming model: "adjacency-list" (the default,
	// also selected by an absent field) or "arbitrary", which replays the
	// dataset as an arbitrary-order edge stream (first occurrence of each
	// edge in the selected stream order). Estimate only; distinguish always
	// runs the adjacency-list model.
	Model string `json:"model,omitempty"`
	// Algorithm selects the estimator (see adjstream.AlgorithmsForModel).
	Algorithm string `json:"algorithm,omitempty"`
	// SampleSize is the bottom-k edge budget m′.
	SampleSize int `json:"sample_size,omitempty"`
	// SampleProb is the per-edge sampling probability.
	SampleProb float64 `json:"sample_prob,omitempty"`
	// PairCap bounds the candidate pair/wedge reservoir.
	PairCap int `json:"pair_cap,omitempty"`
	// CycleLen is the cycle length (see the struct comment).
	CycleLen int `json:"cycle_len,omitempty"`
	// Copies runs median-of-k amplification.
	Copies int `json:"copies,omitempty"`
	// Confidence derives Copies from δ = 1-Confidence.
	Confidence float64 `json:"confidence,omitempty"`
	// Parallel runs copies concurrently through the selected driver.
	Parallel bool `json:"parallel,omitempty"`
	// Driver is "broadcast" (default), "push-broadcast", or "replay".
	Driver string `json:"driver,omitempty"`
	// Seed drives all randomness deterministically. A nil Seed selects the
	// server default (0). The pointer matters: with a plain uint64 an
	// explicit "seed": 0 would be indistinguishable from an absent field,
	// making the effective seed — and therefore the cache key and any
	// client-side reproduction — ambiguous. The response always echoes the
	// seed that actually ran.
	Seed *uint64 `json:"seed,omitempty"`
	// Order is the stream order: "sorted" (default, cached) or "random"
	// (materialized per request from Seed).
	Order string `json:"order,omitempty"`
	// TimeoutMS bounds this request's wall time; 0 means the server
	// maximum. Values above the server maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// EffectiveSeed resolves the seed that actually runs: the request's when
// given (including an explicit 0), the server default otherwise.
func (r EstimateRequest) EffectiveSeed() uint64 {
	if r.Seed != nil {
		return *r.Seed
	}
	return 0
}

// arbitraryModel reports whether the request selects the arbitrary-order
// model — the runs that bypass the cluster-mode remote runner and the batch
// family grouping (both are built on the adjacency-list snapshot transport).
func (r EstimateRequest) arbitraryModel() bool {
	return adjstream.Model(r.Model) == adjstream.ModelArbitrary
}

// options maps the wire request onto adjstream.Options.
func (r EstimateRequest) options() adjstream.Options {
	return adjstream.Options{
		Model:      adjstream.Model(r.Model),
		Algorithm:  adjstream.Algorithm(r.Algorithm),
		SampleSize: r.SampleSize,
		SampleProb: r.SampleProb,
		PairCap:    r.PairCap,
		CycleLen:   r.CycleLen,
		Copies:     r.Copies,
		Confidence: r.Confidence,
		Parallel:   r.Parallel,
		Driver:     adjstream.Driver(r.Driver),
		Seed:       r.EffectiveSeed(),
	}
}

// validate applies the full pre-admission validation — the stream-order
// check, the distinguish derivation rules, and the same Options.Validate
// the run itself will apply — so a malformed or misaddressed request is
// rejected before it can consume a bounded worker slot.
func (r EstimateRequest) validate(kind string) error {
	switch r.Order {
	case "", "sorted", "random":
	default:
		return fmt.Errorf("%w: unknown order %q (want sorted or random)", adjstream.ErrInvalidOptions, r.Order)
	}
	if kind != "distinguish" {
		return r.options().Validate()
	}
	if r.Model != "" && adjstream.Model(r.Model) != adjstream.ModelAdjacencyList {
		return fmt.Errorf("%w: distinguish runs the adjacency-list model; leave model empty", adjstream.ErrInvalidOptions)
	}
	if r.Algorithm != "" {
		return fmt.Errorf("%w: Distinguish derives Algorithm from cycle_len; leave it empty", adjstream.ErrInvalidOptions)
	}
	if r.CycleLen != 0 && r.CycleLen < 3 {
		return fmt.Errorf("%w: cycle length %d < 3", adjstream.ErrInvalidOptions, r.CycleLen)
	}
	// Validate the options the run will actually use — the same derivation
	// DistinguishContext applies (and the proxy ships to shard replicas).
	return DeriveEstimate(kind, r).options().Validate()
}

// key builds the canonical cache identity of this request against the
// pinned dataset snapshot. Both the content fingerprint and the version
// number participate: the fingerprint re-keys the cache whenever the
// edges behind a name change, and the version keeps the echoed
// graph_version in cached responses exact even when two versions happen
// to share content — so the cache never serves a result across a version
// bump, by construction.
func (r EstimateRequest) key(kind string, ds *Dataset) cacheKey {
	return cacheKey{
		kind:        kind,
		graph:       r.Graph,
		fingerprint: ds.Fingerprint(),
		version:     ds.Version(),
		model:       r.Model,
		algorithm:   r.Algorithm,
		sampleSize:  r.SampleSize,
		sampleProb:  r.SampleProb,
		pairCap:     r.PairCap,
		cycleLen:    r.CycleLen,
		copies:      r.Copies,
		confidence:  r.Confidence,
		parallel:    r.Parallel,
		driver:      r.Driver,
		seed:        r.EffectiveSeed(),
		order:       r.Order,
	}
}

// EstimateResponse is the body of a successful estimate or distinguish.
// Seed is always present: it is the seed that actually ran (the request's,
// or the server default when the request carried none), so any response
// can be reproduced client-side or re-requested cache-identically.
type EstimateResponse struct {
	Graph string `json:"graph"`
	// Model echoes the request's streaming model, verbatim (absent when the
	// request selected the adjacency-list default by omission).
	Model      string  `json:"model,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Found      *bool   `json:"found,omitempty"` // distinguish only
	Estimate   float64 `json:"estimate"`
	SpaceWords int64   `json:"space_words"`
	Passes     int     `json:"passes"`
	M          int64   `json:"m"`
	Copies     int     `json:"copies"`
	Driver     string  `json:"driver,omitempty"`
	Seed       uint64  `json:"seed"`
	// GraphVersion and GraphFingerprint identify the exact immutable
	// snapshot this result ran against, so clients can detect when two
	// responses compare different versions of a mutating graph.
	GraphVersion     uint64  `json:"graph_version"`
	GraphFingerprint string  `json:"graph_fingerprint"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

// BatchRequest is the body of POST /v1/estimate/batch: many estimate specs
// admitted as a unit (pure cache-hit batches bypass admission entirely;
// everything else shares one worker slot).
type BatchRequest struct {
	Requests []EstimateRequest `json:"requests"`
}

// BatchItem is one element of a batch response. Exactly one of Result and
// Error is set; Status is the HTTP status this item would have received as
// a standalone request, so one bad spec never fails its batch. Error uses
// the same {"code","message"} shape as the top-level envelope.
type BatchItem struct {
	Result *EstimateResponse `json:"result,omitempty"`
	Error  *ErrorDetail      `json:"error,omitempty"`
	Status int               `json:"status"`
	Cache  string            `json:"cache,omitempty"`
}

// BatchResponse is the body of a batch request that was decoded and
// answered (always 200; per-item failures live in the items).
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// maxBatchItems bounds one batch body; larger batches are rejected with
// 400 rather than pinning a worker slot for an unbounded run sequence.
const maxBatchItems = 256

// ErrorDetail is the machine-readable error payload: a stable code from
// the error taxonomy plus a human-oriented message. Clients dispatch on
// Code; Message wording is not part of the API contract.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response: the unified
// envelope {"error":{"code","message"}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// GraphsResponse is the body of GET /v1/graphs.
type GraphsResponse struct {
	Graphs []Info `json:"graphs"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	Graphs   int    `json:"graphs"`
	InFlight int    `json:"in_flight"`
	Waiting  int    `json:"waiting"`
}

// New returns a server over cat.
func New(cat *Catalog, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cat:  cat,
		cfg:  cfg,
		pool: NewPool(cfg.Workers, cfg.Queue),
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewCache(cfg.CacheEntries, cfg.CacheTTL)
	}
	return s
}

// Pool exposes the admission pool (read-only use: occupancy, counters).
func (s *Server) Pool() *Pool { return s.pool }

// ResultCache exposes the result cache (nil when disabled); read-only use.
func (s *Server) ResultCache() *Cache { return s.cache }

// SetDraining flips drain mode: when on, /healthz fails and new estimation
// work is rejected with 503 while in-flight requests run to completion.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainWait waits until no request holds or waits for a worker slot, or
// until ctx fires. Call SetDraining(true) first so the pool can only empty.
func (s *Server) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.pool.Idle() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "estimate")
	})
	mux.HandleFunc("/v1/distinguish", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "distinguish")
	})
	mux.HandleFunc("/v1/estimate/batch", s.handleBatch)
	mux.HandleFunc("/v1/shard", s.handleShard)
	// The graphs resource dispatches on path shape and method itself (list,
	// detail, edge ingestion) — both patterns route to the same dispatcher.
	mux.HandleFunc("/v1/graphs", s.handleGraphsResource)
	mux.HandleFunc("/v1/graphs/", s.handleGraphsResource)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// statusOf maps service and facade sentinel errors to HTTP statuses. The
// deadline check precedes the cancellation check: ErrCanceled wraps the
// context cause, and an expired deadline is a server-visible timeout (504)
// while a bare cancellation means the client went away (499).
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrVersionGone):
		return http.StatusConflict
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrRemoteUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInvalidEdgeOp),
		errors.Is(err, adjstream.ErrUnknownAlgorithm),
		errors.Is(err, adjstream.ErrInvalidOptions):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, adjstream.ErrCanceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// codeOf maps the same error taxonomy to the stable machine-readable
// codes carried in the error envelope. Check order mirrors statusOf;
// codes are finer-grained than statuses where one status covers several
// conditions (503 splits into draining / remote_unavailable).
func codeOf(err error) string {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return "unknown_graph"
	case errors.Is(err, ErrVersionGone):
		return "version_unavailable"
	case errors.Is(err, ErrSaturated):
		return "saturated"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrRemoteUnavailable):
		return "remote_unavailable"
	case errors.Is(err, ErrInvalidEdgeOp):
		return "invalid_edge_op"
	case errors.Is(err, adjstream.ErrUnknownAlgorithm):
		return "unknown_algorithm"
	case errors.Is(err, adjstream.ErrInvalidOptions):
		return "invalid_options"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline_exceeded"
	case errors.Is(err, context.Canceled), errors.Is(err, adjstream.ErrCanceled):
		return "canceled"
	default:
		return "internal"
	}
}

// errDetail builds the envelope payload for err.
func errDetail(err error) *ErrorDetail {
	return &ErrorDetail{Code: codeOf(err), Message: err.Error()}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode failures at this point can only be connection errors; the
	// status line is already on the wire either way.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error body for err, attaching Retry-After on
// saturation.
func (s *Server) writeError(w http.ResponseWriter, err error) int {
	status := statusOf(err)
	if status == http.StatusTooManyRequests {
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, ErrorResponse{Error: *errDetail(err)})
	return status
}

// writeMethodNotAllowed writes the 405 envelope with the Allow header.
func writeMethodNotAllowed(w http.ResponseWriter, allow string) int {
	w.Header().Set("Allow", allow)
	writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: ErrorDetail{
		Code:    "method_not_allowed",
		Message: allow + " only",
	}})
	return http.StatusMethodNotAllowed
}

// handleRun is the shared estimate/distinguish path: decode, validate
// (before admission, so malformed or misaddressed requests never consume
// a worker slot), then cache lookup / coalesced or fresh run, error
// mapping. The X-Cache response header reports how the result was
// obtained (hit, miss, coalesced, or bypass).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, kind string) {
	tt := teleForEndpoint(kind)
	start := time.Now()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()

	if r.Method != http.MethodPost {
		status = writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.draining.Load() {
		status = s.writeError(w, ErrDraining)
		return
	}
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status = s.writeError(w, fmt.Errorf("%w: %w", adjstream.ErrInvalidOptions, err))
		return
	}
	if err := req.validate(kind); err != nil {
		status = s.writeError(w, err)
		return
	}
	ds, ok := s.cat.Get(req.Graph)
	if !ok {
		status = s.writeError(w, fmt.Errorf("%w %q", ErrUnknownGraph, req.Graph))
		return
	}

	resp, outcome, err := s.runOne(r.Context(), kind, req, ds)
	if err != nil {
		status = s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))
	writeJSON(w, http.StatusOK, resp)
}

// timeoutFor resolves a request's wall-time budget: its own timeout_ms,
// clamped to the server maximum.
func (s *Server) timeoutFor(req EstimateRequest) time.Duration {
	d := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < d {
			d = t
		}
	}
	return d
}

// runOne produces the response for one validated request spec. With the
// cache enabled it goes through Cache.Do — cache hit, coalesced wait on an
// identical in-progress run, or a fresh leader run that populates the
// cache. The caller's wait is bounded by its own context (client
// connection + request deadline); a coalesced run itself is bounded by
// the server maximum and survives individual waiters abandoning.
func (s *Server) runOne(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, CacheOutcome, error) {
	ctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req))
	defer cancel()
	if s.cache == nil {
		resp, err := s.dispatch(ctx, kind, req, ds)
		return resp, CacheBypass, err
	}
	return s.cache.Do(ctx, req.key(kind, ds), s.cfg.MaxTimeout,
		func(runCtx context.Context) (EstimateResponse, error) {
			return s.dispatch(runCtx, kind, req, ds)
		})
}

// dispatch routes one fresh run: through the configured remote runner when
// cluster mode is on (shard fan-out is network-bound, so it bypasses the
// local worker pool — the replicas run their own admission), degrading to
// the local pool+library path when the remote reports itself unavailable,
// unless that fallback is disabled.
func (s *Server) dispatch(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, error) {
	// Arbitrary-model runs always execute locally: the cluster scheduler
	// shards copies over the adjacency-list snapshot transport, which
	// arbitrary-order estimators do not speak.
	if s.cfg.Remote != nil && !req.arbitraryModel() {
		resp, err := s.cfg.Remote(ctx, kind, req, ds)
		if err == nil || !errors.Is(err, ErrRemoteUnavailable) || s.cfg.NoLocalFallback {
			return resp, err
		}
	}
	return s.admitAndRun(ctx, kind, req, ds)
}

// admitAndRun acquires a worker slot under ctx and runs the estimation.
func (s *Server) admitAndRun(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, error) {
	release, err := s.pool.Acquire(ctx)
	if err != nil {
		return EstimateResponse{}, err
	}
	defer release()
	return s.run(ctx, kind, req, ds)
}

// run executes the estimation under ctx; the caller holds a worker slot.
func (s *Server) run(ctx context.Context, kind string, req EstimateRequest, ds *Dataset) (EstimateResponse, error) {
	start := time.Now()
	if s.cfg.testHookRun != nil {
		s.cfg.testHookRun(ctx)
	}
	st, err := ds.Stream(req.Order, req.EffectiveSeed())
	if err != nil {
		return EstimateResponse{}, err
	}
	resp := EstimateResponse{
		Graph:            req.Graph,
		Model:            req.Model,
		Algorithm:        req.Algorithm,
		Seed:             req.EffectiveSeed(),
		GraphVersion:     ds.Version(),
		GraphFingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
	}
	var res adjstream.Result
	switch kind {
	case "estimate":
		res, err = adjstream.EstimateContext(ctx, st, req.options())
	default: // distinguish
		cycleLen := req.CycleLen
		if cycleLen == 0 {
			cycleLen = 3
		}
		opts := req.options()
		opts.CycleLen = 0 // derived from cycleLen by DistinguishContext
		var found bool
		found, res, err = adjstream.DistinguishContext(ctx, st, cycleLen, opts)
		resp.Found = &found
	}
	if err != nil {
		return EstimateResponse{}, err
	}
	resp.Estimate = res.Estimate
	resp.SpaceWords = res.SpaceWords
	resp.Passes = res.Passes
	resp.M = res.M
	resp.Copies = res.Copies
	resp.Driver = string(res.Driver)
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// handleBatch serves POST /v1/estimate/batch: many estimate specs in one
// body, answered per-item so one bad spec cannot fail the others. The
// batch is admitted as a unit — items answerable from the cache are
// resolved before admission, and every remaining run shares a single
// worker slot (items run sequentially under it, each bounded by its own
// timeout_ms). Batch items populate the cache but do not join in-progress
// flights of concurrent requests: the batch already holds a slot, and
// waiting on another request's admission from inside it could deadlock a
// small pool.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("batch")
	start := time.Now()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()

	if r.Method != http.MethodPost {
		status = writeMethodNotAllowed(w, http.MethodPost)
		return
	}
	if s.draining.Load() {
		status = s.writeError(w, ErrDraining)
		return
	}
	var batch BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		status = s.writeError(w, fmt.Errorf("%w: %w", adjstream.ErrInvalidOptions, err))
		return
	}
	if len(batch.Requests) == 0 {
		status = s.writeError(w, fmt.Errorf("%w: empty batch", adjstream.ErrInvalidOptions))
		return
	}
	if len(batch.Requests) > maxBatchItems {
		status = s.writeError(w, fmt.Errorf("%w: batch of %d exceeds the %d-item limit",
			adjstream.ErrInvalidOptions, len(batch.Requests), maxBatchItems))
		return
	}

	// Phase 1 (pre-admission): validate every spec and serve what the
	// cache already holds. Only specs that need a fresh run go on to
	// admission.
	items := make([]BatchItem, len(batch.Requests))
	datasets := make([]*Dataset, len(batch.Requests))
	var pending []int
	for i, req := range batch.Requests {
		if err := req.validate("estimate"); err != nil {
			items[i] = BatchItem{Error: errDetail(err), Status: statusOf(err)}
			continue
		}
		ds, ok := s.cat.Get(req.Graph)
		if !ok {
			err := fmt.Errorf("%w %q", ErrUnknownGraph, req.Graph)
			items[i] = BatchItem{Error: errDetail(err), Status: statusOf(err)}
			continue
		}
		datasets[i] = ds
		if s.cache != nil {
			if resp, ok := s.cache.Get(req.key("estimate", ds)); ok {
				r := resp
				items[i] = BatchItem{Result: &r, Status: http.StatusOK, Cache: string(CacheHit)}
				continue
			}
		}
		pending = append(pending, i)
	}

	// Phase 2: one admission covers every fresh run in the batch. Pending
	// items that are the same parallel median run except for the copy count
	// form a family: one shard run of the largest count produces per-copy
	// snapshots, and each member's result is merged from its prefix — the
	// per-copy seed schedule depends only on the seed and the copy index,
	// so the prefix merge is byte-identical to the standalone run.
	if len(pending) > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
		defer cancel()
		release, err := s.pool.Acquire(ctx)
		if err != nil {
			for _, i := range pending {
				items[i] = BatchItem{Error: errDetail(err), Status: statusOf(err)}
			}
		} else {
			defer release()
			solo := pending
			if s.cache != nil && s.cfg.Remote == nil {
				// Families need the cache only to publish results; group
				// regardless, but keep the grouping off the bypass path so
				// outcomes stay accurate there. In cluster mode items go to
				// the remote runner individually — the scheduler already
				// shards each run's copies across the fleet.
				solo = s.batchRunFamilies(ctx, batch.Requests, pending, datasets, items)
			}
			for _, i := range solo {
				items[i] = s.batchRun(ctx, batch.Requests[i], datasets[i])
			}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: items})
}

// batchRunFamilies runs every copy-count family among the pending items and
// fills in their responses, returning the items left for individual runs. A
// family is ≥2 items identical in every option but Copies (Parallel, more
// than one copy, no Confidence — the shapes whose per-copy seeds are
// independent of the copy count).
func (s *Server) batchRunFamilies(ctx context.Context, reqs []EstimateRequest, pending []int, datasets []*Dataset, items []BatchItem) (solo []int) {
	groups := make(map[cacheKey][]int)
	order := make([]cacheKey, 0, len(pending))
	for _, i := range pending {
		req := reqs[i]
		if !req.Parallel || req.Copies <= 1 || req.Confidence != 0 || req.arbitraryModel() {
			solo = append(solo, i)
			continue
		}
		key := req.key("estimate", datasets[i])
		key.copies = 0
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	for _, key := range order {
		idxs := groups[key]
		if len(idxs) < 2 {
			solo = append(solo, idxs...)
			continue
		}
		s.batchRunFamily(ctx, reqs, idxs, datasets[idxs[0]], items)
	}
	return solo
}

// batchRunFamily executes one copy-count family: a single shard run of the
// largest requested copy count, then a per-item prefix merge. Each member's
// response matches its standalone run byte-for-byte (except elapsed time).
func (s *Server) batchRunFamily(ctx context.Context, reqs []EstimateRequest, idxs []int, ds *Dataset, items []BatchItem) {
	kmax := 0
	var tmax time.Duration
	for _, i := range idxs {
		if reqs[i].Copies > kmax {
			kmax = reqs[i].Copies
		}
		if t := s.timeoutFor(reqs[i]); t > tmax {
			tmax = t
		}
	}
	fctx, cancel := context.WithTimeout(ctx, tmax)
	defer cancel()
	start := time.Now()
	base := reqs[idxs[0]]
	fail := func(err error) {
		for _, i := range idxs {
			items[i] = BatchItem{Error: errDetail(err), Status: statusOf(err)}
		}
	}
	st, err := ds.Stream(base.Order, base.EffectiveSeed())
	if err != nil {
		fail(err)
		return
	}
	opts := base.options()
	opts.Copies = kmax
	snaps, err := adjstream.EstimateShardContext(fctx, st, opts, 0, kmax)
	if err != nil {
		fail(err)
		return
	}
	// The driver the standalone parallel run would report.
	driver := adjstream.DriverBroadcast
	switch adjstream.Driver(base.Driver) {
	case adjstream.DriverReplay:
		driver = adjstream.DriverReplay
	case adjstream.DriverPushBroadcast:
		driver = adjstream.DriverPushBroadcast
	}
	for _, i := range idxs {
		res, err := adjstream.MergeSnapshots(snaps[:reqs[i].Copies])
		if err != nil {
			items[i] = BatchItem{Error: errDetail(err), Status: statusOf(err)}
			continue
		}
		resp := EstimateResponse{
			Graph:            reqs[i].Graph,
			Model:            reqs[i].Model,
			Algorithm:        reqs[i].Algorithm,
			Estimate:         res.Estimate,
			SpaceWords:       res.SpaceWords,
			Passes:           res.Passes,
			M:                res.M,
			Copies:           res.Copies,
			Driver:           string(driver),
			Seed:             reqs[i].EffectiveSeed(),
			GraphVersion:     ds.Version(),
			GraphFingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
			ElapsedMS:        float64(time.Since(start)) / float64(time.Millisecond),
		}
		if s.cache != nil {
			s.cache.Put(reqs[i].key("estimate", ds), resp)
		}
		items[i] = BatchItem{Result: &resp, Status: http.StatusOK, Cache: string(CacheShared)}
	}
}

// batchRun executes one pending batch item under the batch's worker slot
// (through the remote runner in cluster mode, with the usual local
// fallback) and publishes the result to the cache.
func (s *Server) batchRun(ctx context.Context, req EstimateRequest, ds *Dataset) BatchItem {
	ictx, cancel := context.WithTimeout(ctx, s.timeoutFor(req))
	defer cancel()
	resp, err := s.runOrRemote(ictx, req, ds)
	if err != nil {
		return BatchItem{Error: errDetail(err), Status: statusOf(err)}
	}
	outcome := CacheBypass
	if s.cache != nil {
		s.cache.Put(req.key("estimate", ds), resp)
		outcome = CacheMiss
	}
	return BatchItem{Result: &resp, Status: http.StatusOK, Cache: string(outcome)}
}

// runOrRemote executes one estimate under the caller's worker slot,
// preferring the remote runner in cluster mode (same fallback rules as
// dispatch, but without a second pool acquisition — the caller already
// holds a slot).
func (s *Server) runOrRemote(ctx context.Context, req EstimateRequest, ds *Dataset) (EstimateResponse, error) {
	if s.cfg.Remote != nil && !req.arbitraryModel() {
		resp, err := s.cfg.Remote(ctx, "estimate", req, ds)
		if err == nil || !errors.Is(err, ErrRemoteUnavailable) || s.cfg.NoLocalFallback {
			return resp, err
		}
	}
	return s.run(ctx, "estimate", req, ds)
}

// handleHealthz serves GET /healthz: 200 while serving, 503 while
// draining, so load balancers stop routing before shutdown completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tt := teleForEndpoint("healthz")
	start := tt.start()
	status := http.StatusOK
	defer func() { tt.end(start, status) }()
	h := HealthResponse{
		Status:   "ok",
		Graphs:   s.cat.Len(),
		InFlight: s.pool.InFlight(),
		Waiting:  s.pool.Waiting(),
	}
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
