package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adjstream/internal/telemetry"
)

// TestJournalRoundTrip drives one experiment with a journal installed and
// checks the full cycle: write → parse → re-summarize reproduces the tables
// the run returned.
func TestJournalRoundTrip(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var buf bytes.Buffer
	SetJournal(&buf)
	defer SetJournal(nil)

	tables, err := Run("F1", 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	SetJournal(nil)
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	want := tables[0]

	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	var runs, points, exps int
	for _, r := range recs {
		switch r.Kind {
		case KindRun:
			runs++
			if r.Seed != 1 {
				t.Errorf("run header seed = %d, want 1", r.Seed)
			}
			if r.Driver == "" || r.GoVersion == "" || r.Workers == 0 {
				t.Errorf("run header missing environment fields: %+v", r)
			}
		case KindGridPoint:
			points++
			if r.Experiment != "F1" || r.Row != points {
				t.Errorf("grid point %d: experiment=%q row=%d", points, r.Experiment, r.Row)
			}
			if !reflect.DeepEqual(r.Header, want.Header) {
				t.Errorf("grid point header = %v, want %v", r.Header, want.Header)
			}
			p := r.Point()
			for i, h := range r.Header {
				if p[h] != r.Cells[i] {
					t.Errorf("Point()[%q] = %q, want %q", h, p[h], r.Cells[i])
				}
			}
		case KindExperiment:
			exps++
			if r.Title != want.Title {
				t.Errorf("experiment title = %q, want %q", r.Title, want.Title)
			}
			if !reflect.DeepEqual(r.Notes, want.Notes) {
				t.Errorf("experiment notes = %v, want %v", r.Notes, want.Notes)
			}
			if r.DriverStats == nil {
				t.Error("experiment record missing driver stats")
			}
		}
	}
	if runs != 1 || points != len(want.Rows) || exps != 1 {
		t.Fatalf("record counts: %d runs, %d points, %d experiments; want 1, %d, 1",
			runs, points, exps, len(want.Rows))
	}

	// Re-summarize: the recorded grid points reconstruct the original table.
	got, err := JournalTables(recs, "F1")
	if err != nil {
		t.Fatalf("JournalTables: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("JournalTables returned %d tables, want 1", len(got))
	}
	g := got[0]
	if g.ID != want.ID || g.Title != want.Title ||
		!reflect.DeepEqual(g.Header, want.Header) ||
		!reflect.DeepEqual(g.Rows, want.Rows) ||
		!reflect.DeepEqual(g.Notes, want.Notes) {
		t.Errorf("reconstructed table differs:\ngot  %+v\nwant %+v", g, want)
	}

	// The overview renders without error and names the experiment.
	sum := SummarizeJournal(recs)
	if len(sum.Rows) != 1 || sum.Rows[0][0] != "F1" {
		t.Errorf("summary rows = %v", sum.Rows)
	}
}

// TestJournalCapturesMetrics checks that an experiment that runs estimators
// records a telemetry snapshot with space high-water marks in its trailer.
func TestJournalCapturesMetrics(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	var buf bytes.Buffer
	SetJournal(&buf)
	defer SetJournal(nil)

	if _, err := Run("A1", 1); err != nil {
		t.Fatalf("Run: %v", err)
	}
	SetJournal(nil)
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	var trailer *JournalRecord
	for i := range recs {
		if recs[i].Kind == KindExperiment {
			trailer = &recs[i]
		}
	}
	if trailer == nil {
		t.Fatal("no experiment trailer recorded")
	}
	if len(trailer.Metrics) == 0 {
		t.Fatal("experiment trailer has no metrics snapshot")
	}
	var sawSpace bool
	for k := range trailer.Metrics {
		if strings.HasSuffix(k, ".space_words") {
			sawSpace = true
		}
	}
	if !sawSpace {
		t.Errorf("metrics snapshot has no .space_words key: %v", keysOf(trailer.Metrics))
	}
	if trailer.DriverStats == nil || trailer.DriverStats.StreamItemsRead == 0 {
		t.Errorf("driver stats delta missing or empty: %+v", trailer.DriverStats)
	}
	if trailer.ElapsedMS <= 0 {
		t.Errorf("elapsed = %v, want > 0", trailer.ElapsedMS)
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestReadJournalRejectsMalformed checks the validation -check relies on.
func TestReadJournalRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"bad json", `{"kind":`},
		{"unknown kind", `{"kind":"mystery"}`},
		{"grid point without id", `{"kind":"grid-point","header":["a"],"cells":["1"]}`},
		{"column mismatch", `{"kind":"grid-point","experiment":"X","header":["a","b"],"cells":["1"]}`},
	}
	for _, c := range cases {
		if _, err := ReadJournal(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: ReadJournal accepted %q", c.name, c.line)
		}
	}
	// Blank lines are fine.
	recs, err := ReadJournal(strings.NewReader("\n{\"kind\":\"run\",\"seed\":7}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("blank-line journal: recs=%d err=%v", len(recs), err)
	}
}
