package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "test",
		Claim:  "c",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"*n*"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### X — test", "| a | b |", "| 1 | 2 |", "*n*", "*Paper claim:* c"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestWorkloadsExactCounts(t *testing.T) {
	g, err := plantedTriangleWorkload(50, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 50 {
		t.Fatalf("planted T = %d", g.Triangles())
	}
	g, err = pjHardWorkload(49, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 49 {
		t.Fatalf("pj T = %d", g.Triangles())
	}
	if _, err := pjHardWorkload(50, 3000, 1); err == nil {
		t.Fatal("expected non-square error")
	}
	g, err = tripartiteWorkload(27, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 27 {
		t.Fatalf("tripartite T = %d", g.Triangles())
	}
	if _, err := tripartiteWorkload(26, 3000, 1); err == nil {
		t.Fatal("expected non-cube error")
	}
}

func TestBudgetClamps(t *testing.T) {
	if got := budget(1, 1000, 1e12, 1, 8); got != 8 {
		t.Fatalf("low clamp: %d", got)
	}
	if got := budget(100, 1000, 1, 1, 8); got != 1000 {
		t.Fatalf("high clamp: %d", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// 12 Table 1 rows + Figure 1 + 3 model comparisons + 5 ablations.
	if len(ids) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(ids))
	}
	for _, want := range []string{"T1.R1", "T1.R6", "T1.R12", "F1", "M1", "M2", "M3", "A1", "A5"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFourCycleModelComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := FourCycleModelComparison(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// The (1±ε) arbitrary-order estimators must actually deliver small
	// median error at the prescribed rate on every workload.
	for _, row := range tab.Rows {
		for _, col := range []int{4, 6} { // AO-V, AO-LNP rel err columns
			var rel float64
			if _, err := fmt.Sscanf(row[col], "%f", &rel); err != nil {
				t.Fatalf("parsing %q: %v", row[col], err)
			}
			if rel > 0.25 {
				t.Errorf("T=%s col %d: median rel err %v > 0.25", row[0], col, rel)
			}
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", 1); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

// Smoke tests for the cheaper experiments; the expensive rows are covered
// by cmd/experiments runs and the benchmarks.
func TestFigure1GadgetsRuns(t *testing.T) {
	tab, err := Figure1Gadgets(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
}

func TestLowerBoundRowsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, f := range []func(uint64) (*Table, error){
		Table1Row7LowerBoundPJ,
		Table1Row10LowerBoundIndex,
		Table1Row12LowerBoundLong,
	} {
		tab, err := f(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatal("empty table")
		}
	}
}

func TestGoodCycleAblationRuns(t *testing.T) {
	tab, err := AblationGoodCycleFraction(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
