package exp

import (
	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/stream"
)

// OrderSensitivity (M2) measures how the stream order affects each
// algorithm class. The wedge sampler's closure probability depends on
// within-list order (its 5/2 factor is a random-order average): ascending
// neighbor order presents each closing item before the wedge-forming item
// in the shared list (≈ 2 closures per triangle), descending after (≈ 3),
// random in between (5/2). The paper's adversarial-order algorithms
// (Theorem 3.7's two-pass, the one-pass edge sampler) must be unaffected.
func OrderSensitivity(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "M2",
		Title:  "Stream-order sensitivity: adversarial-order algorithms vs the random-order wedge sampler",
		Claim:  "the paper's algorithms hold under any adjacency-list order; random-order estimators are biased by adversarial within-list order (cf. §1.1 on [17])",
		Header: []string{"order", "wedge-sampler mean est/T", "two-pass mean est/T", "one-pass mean est/T"},
	}
	g, err := plantedTriangleWorkload(200, 6000, seed)
	if err != nil {
		return nil, err
	}
	truth := float64(g.Triangles())
	orders := []struct {
		name string
		s    func(trial uint64) *stream.Stream
	}{
		{"ascending (adversarial -)", func(uint64) *stream.Stream { return stream.Sorted(g) }},
		{"random", func(trial uint64) *stream.Stream { return stream.Random(g, seed+trial) }},
		{"descending (adversarial +)", func(uint64) *stream.Stream { return stream.SortedDesc(g) }},
	}
	const trials = 80
	for _, o := range orders {
		var ws, tp, op float64
		for i := uint64(0); i < trials; i++ {
			// The three algorithm classes of a trial share one stream, so
			// each trial is one broadcast fan-out. (Trials cannot share: the
			// random rows use a fresh order per trial.)
			s := o.s(i)
			w, err := baseline.NewWedgeSampler(baseline.Config{SampleProb: 0.6, WedgeCap: 1 << 20, Seed: seed + i*3 + 1})
			if err != nil {
				return nil, err
			}
			two, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: 0.6, PairCap: 1 << 20, Seed: seed + i*3 + 1})
			if err != nil {
				return nil, err
			}
			one, err := baseline.NewOnePassTriangle(baseline.Config{SampleProb: 0.6, Seed: seed + i*3 + 1})
			if err != nil {
				return nil, err
			}
			runCopies(s, []stream.Estimator{w, two, one})
			ws += w.Estimate() / truth
			tp += two.Estimate() / truth
			op += one.Estimate() / truth
		}
		t.Rows = append(t.Rows, []string{o.name, f3(ws / trials), f3(tp / trials), f3(op / trials)})
	}
	t.Notes = append(t.Notes,
		"*Expected wedge-sampler ratios: 2/2.5 = 0.8 ascending, 1.0 random, 3/2.5 = 1.2 descending. The two-pass and one-pass columns stay at 1.0 under every order — their guarantees are adversarial.*")
	return t, nil
}
