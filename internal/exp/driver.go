package exp

import (
	"fmt"
	"sync"

	"adjstream/internal/stream"
)

// The experiment harness runs many independent estimator copies over the
// same stream (trials, median amplification, budget searches). runCopies is
// the single choke point through which all of them execute, so the whole
// harness can be A/B-switched between the broadcast driver (one stream read
// per pass, shared by all copies — the default) and the legacy per-copy
// replay driver, and so driver counters accumulate in one place.

var (
	driverMu      sync.Mutex
	driverSel     string // "", "broadcast", "push-broadcast", or "replay"
	driverCounter stream.DriverStats
	replayCounter stream.DriverStats
)

// SetDriver selects the execution driver for multi-copy experiment runs:
// "broadcast" (pull executor, the default), "push-broadcast" (legacy
// channel fan-out), or "replay".
func SetDriver(name string) error {
	driverMu.Lock()
	defer driverMu.Unlock()
	switch name {
	case "broadcast", "push-broadcast", "replay":
		driverSel = name
	default:
		return fmt.Errorf("exp: unknown driver %q (want broadcast, push-broadcast, or replay)", name)
	}
	return nil
}

// runCopies drives every estimator over s with the selected driver and
// accumulates the driver counters. Per-copy results are identical under
// both drivers (and to sequential stream.Run), so experiment outputs do
// not depend on the driver choice.
func runCopies(s *stream.Stream, ests []stream.Estimator) {
	driverMu.Lock()
	name := driverSel
	driverMu.Unlock()
	var st stream.DriverStats
	switch name {
	case "replay":
		stream.RunParallel(s, ests)
		st = stream.ReplayStats(s, ests)
	case "push-broadcast":
		st = stream.RunBroadcastConfig(s, ests, stream.BroadcastConfig{Push: true})
	default: // "" or "broadcast": the pull executor
		st = stream.RunBroadcastConfig(s, ests, stream.BroadcastConfig{})
	}
	driverMu.Lock()
	driverCounter.Merge(st)
	replayCounter.Merge(stream.ReplayStats(s, ests))
	driverMu.Unlock()
}

// runOne is runCopies for a single estimator; kept sequential (no fan-out
// machinery) but still counted, so the driver report covers every stream
// traversal the harness performs.
func runOne(s *stream.Stream, e stream.Estimator) {
	stream.Run(s, e)
	st := stream.ReplayStats(s, []stream.Estimator{e})
	driverMu.Lock()
	driverCounter.Merge(st)
	replayCounter.Merge(st)
	driverMu.Unlock()
}

// DriverCounters returns the accumulated driver stats of every runCopies /
// runOne call since the last reset, together with what a pure replay
// execution of the same work would have cost.
func DriverCounters() (used, replayEquivalent stream.DriverStats) {
	driverMu.Lock()
	defer driverMu.Unlock()
	return driverCounter, replayCounter
}

// ResetDriverCounters zeroes the accumulated driver stats.
func ResetDriverCounters() {
	driverMu.Lock()
	defer driverMu.Unlock()
	driverCounter = stream.DriverStats{}
	replayCounter = stream.DriverStats{}
}

// DriverReport renders the accumulated driver counters as a table, printed
// by cmd/experiments alongside the space-words columns of the experiment
// tables: the same reporting path, one level up.
func DriverReport() *Table {
	used, replay := DriverCounters()
	driverMu.Lock()
	name := driverSel
	driverMu.Unlock()
	if name == "" {
		name = "broadcast"
	}
	savings := "1.00"
	if used.StreamItemsRead > 0 {
		savings = f2(float64(replay.StreamItemsRead) / float64(used.StreamItemsRead))
	}
	return &Table{
		ID:    "D1",
		Title: "Execution driver counters (" + name + ")",
		Claim: "the broadcast driver reads each stream once per pass regardless of copy count",
		Header: []string{
			"copies run", "stream items read", "items delivered", "batches",
			"peak queue depth", "replay-equivalent reads", "read reduction ×",
		},
		Rows: [][]string{{
			d(int64(used.Copies)), d(used.StreamItemsRead), d(used.ItemsDelivered),
			d(used.Batches), d(int64(used.PeakQueueDepth)),
			d(replay.StreamItemsRead), savings,
		}},
	}
}
