package exp

import (
	"math"

	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// triangleSweep are the T values used by the benign-workload rows; mTarget
// keeps m roughly fixed so the sample-size exponent fit is clean.
var triangleSweep = []int{64, 256, 1024, 4096}

const (
	triangleMTarget = 20000
	triangleTrials  = 15
	// searchTrials controls the quantile estimate inside requiredBudget.
	searchTrials = 31
	// targetRelErr is the ε of the required-budget search: the smallest m′
	// with relative error ≤ ε at success probability ≥ 2/3.
	targetRelErr = 0.2
)

// upperBoundRow runs one Table 1 upper-bound triangle row: for each T in
// the sweep it builds the row's extremal workload (the instance family on
// which the claimed bound binds), measures accuracy and space at the theory
// budget m′(m,T) = c·m/T^alpha, and independently searches for the smallest
// budget achieving the target error. The exponent of the required budget
// versus T is the row's measured space law.
func upperBoundRow(id, title, claim string, alpha float64, c float64, seed uint64,
	sweep []int,
	workload func(T int, mTarget int, seed uint64) (*graph.Graph, error),
	mk func(budgetEdges int, seed uint64) (stream.Estimator, error)) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Claim:  claim,
		Header: []string{"T", "m", "m′ theory", "median rel. err", "space (words)", "m′ required (ε=0.2)"},
	}
	var Ts, reqs []float64
	for _, T := range sweep {
		g, err := workload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		b := budget(c, g.M(), float64(T), alpha, 8)
		medErr, meanSpace, err := trialStats(s, float64(T), triangleTrials, func(sd uint64) (stream.Estimator, error) {
			return mk(b, sd+seed)
		})
		if err != nil {
			return nil, err
		}
		req, err := requiredBudget(s, float64(T), g.M(), searchTrials, targetRelErr, func(bb int, sd uint64) (stream.Estimator, error) {
			return mk(bb, sd+seed)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(int64(T)), d(g.M()), d(int64(b)), f3(medErr), d(int64(meanSpace)), d(int64(req)),
		})
		Ts = append(Ts, float64(T))
		reqs = append(reqs, float64(req))
	}
	t.Notes = append(t.Notes, fitNote("required sample size", Ts, reqs, -alpha))
	return t, nil
}

// Table1Row1WedgeSampler measures the Õ(P2/T)-style one-pass wedge sampler
// (random list order). Each edge is kept with probability √(c/T), so the
// stored wedge set — the algorithm's dominant state — has expected size
// P2·c/T: the P2/T space law that makes wedge sampling lose to edge
// sampling on wedge-heavy graphs.
func Table1Row1WedgeSampler(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R1",
		Title:  "Triangle, 1 pass, wedge sampling (random order) — Õ(P2/T) [12,17]",
		Claim:  "1-pass estimation with space driven by P2/T wedge samples",
		Header: []string{"T", "m", "P2", "c·P2/T", "median rel. err", "mean space (words)"},
	}
	var p2OverT, spaces []float64
	for _, T := range []int{64, 256, 1024} {
		g, err := plantedTriangleWorkload(T, 4000, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		const c = 60.0
		p := math.Sqrt(c / float64(T))
		if p > 1 {
			p = 1
		}
		// Average over random orders too: the estimator's guarantee is for
		// the random-order model. Each trial has its own stream order, so
		// there is nothing for the broadcast driver to share here; the runs
		// stay sequential but counted.
		var errs []float64
		var spaceSum float64
		for i := 0; i < triangleTrials; i++ {
			alg, err := baseline.NewWedgeSampler(baseline.Config{SampleProb: p, WedgeCap: 1 << 22, Seed: seed + uint64(i)*131})
			if err != nil {
				return nil, err
			}
			runOne(stream.Random(g, seed+uint64(i)), alg)
			errs = append(errs, relErr(alg.Estimate(), float64(T)))
			spaceSum += float64(alg.SpaceWords())
		}
		meanSpace := spaceSum / float64(triangleTrials)
		t.Rows = append(t.Rows, []string{
			d(int64(T)), d(g.M()), d(g.WedgeCount()),
			d(int64(c * float64(g.WedgeCount()) / float64(T))),
			f3(median(errs)), d(int64(meanSpace)),
		})
		p2OverT = append(p2OverT, float64(g.WedgeCount())/float64(T))
		spaces = append(spaces, meanSpace)
	}
	exp1, _ := stats.FitPowerLaw(p2OverT, spaces)
	t.Notes = append(t.Notes, f2(exp1)+" *= fitted exponent of measured space versus P2/T (paper: 1.00 — space is linear in P2/T).*")
	t.Notes = append(t.Notes, "*Unbiased in the random-order adjacency-list model; degrades under adversarial order (see paper §1.1). P2/T ≫ m/√T on wedge-heavy graphs — why the Table 1 successors win.*")
	return t, nil
}

// Table1Row2OnePass measures the Õ(m/√T)-style one-pass estimator on its
// extremal family — the Figure 1a hub-completed K_{√T,√T} structure, whose
// (1,k,k) edge loads make Σ T(e)² = Θ(T^{3/2}) and pin edge sampling to
// Θ(m/√T).
func Table1Row2OnePass(seed uint64) (*Table, error) {
	tab, err := upperBoundRow("T1.R2",
		"Triangle, 1 pass, edge sampling — Õ(m/√T) [27]",
		"1-pass (1±ε) estimation with m′ = Θ(m/√T) sampled edges",
		0.5, 8, seed,
		[]int{1024, 4096, 16384}, pjHardWorkload,
		func(b int, sd uint64) (stream.Estimator, error) {
			return baseline.NewOnePassTriangle(baseline.Config{SampleSize: b, Seed: sd})
		})
	if err != nil {
		return nil, err
	}
	tab.Notes = append(tab.Notes, "*Workload: the Figure 1a extremal structure (hub-completed K_{√T,√T}), where the m/√T law binds.*")
	return tab, nil
}

// Table1Row3EdgeSample measures the naive two-pass estimator at the
// Õ(m^{3/2}/T) budget of the const-pass prior work.
func Table1Row3EdgeSample(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R3",
		Title:  "Triangle, naive 2-pass edge-sample estimator at the Õ(m^{3/2}/T) budget [22,27]",
		Claim:  "const-pass estimation with m′ = Θ(m^{3/2}/T)",
		Header: []string{"T", "m", "m′ budget", "median rel. err", "mean space (words)"},
	}
	for _, T := range triangleSweep {
		g, err := plantedTriangleWorkload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		b := int(2 * math.Pow(float64(g.M()), 1.5) / float64(T))
		if int64(b) > g.M() {
			b = int(g.M())
		}
		if b < 8 {
			b = 8
		}
		medErr, meanSpace, err := trialStats(s, float64(T), triangleTrials, func(sd uint64) (stream.Estimator, error) {
			return core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: b, Seed: sd + seed})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d(int64(T)), d(g.M()), d(int64(b)), f3(medErr), d(int64(meanSpace))})
	}
	return t, nil
}

// Table1Row4ThreePass measures the three-pass exact-load variant at the
// same Õ(m^{3/2}/T) edge budget (its collected-pair set adds (m′/m)·3T).
func Table1Row4ThreePass(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R4",
		Title:  "Triangle, 3 pass, lightest-edge with exact loads — Õ(m^{3/2}/T) [27]",
		Claim:  "const-pass (1±ε) estimation with m′ = Θ(m^{3/2}/T)",
		Header: []string{"T", "m", "m′ budget", "median rel. err", "mean space (words)"},
	}
	for _, T := range triangleSweep {
		g, err := plantedTriangleWorkload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		b := int(2 * math.Pow(float64(g.M()), 1.5) / float64(T))
		if int64(b) > g.M() {
			b = int(g.M())
		}
		if b < 8 {
			b = 8
		}
		medErr, meanSpace, err := trialStats(s, float64(T), triangleTrials, func(sd uint64) (stream.Estimator, error) {
			return core.NewThreePassTriangle(core.TriangleConfig{SampleSize: b, Seed: sd + seed})
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d(int64(T)), d(g.M()), d(int64(b)), f3(medErr), d(int64(meanSpace))})
	}
	return t, nil
}

// Table1Row5Distinguisher measures the 0-vs-T distinguisher at the
// Õ(m/T^{2/3}) budget: detection rate on T-instances and false-positive
// rate on triangle-free instances.
func Table1Row5Distinguisher(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R5",
		Title:  "Triangle, 2 pass, 0-vs-T distinguishing — Õ(m/T^{2/3}) [27]",
		Claim:  "distinguishing triangle-free from T triangles with m′ = Θ(m/T^{2/3})",
		Header: []string{"T", "m", "m′ budget", "detect rate (T inst.)", "false pos. (0 inst.)"},
	}
	const trials = 40
	for _, T := range triangleSweep {
		g, err := plantedTriangleWorkload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		g0, err := plantedTriangleWorkload(0, triangleMTarget, seed+uint64(T)+7)
		if err != nil {
			return nil, err
		}
		b := budget(4, g.M(), float64(T), 2.0/3.0, 8)
		sYes := stream.Random(g, seed)
		sNo := stream.Random(g0, seed)
		// All yes-trials share sYes and all no-trials share sNo, so each
		// group is one broadcast fan-out.
		dys := make([]*core.NaiveTwoPass, trials)
		dns := make([]*core.NaiveTwoPass, trials)
		yesEsts := make([]stream.Estimator, trials)
		noEsts := make([]stream.Estimator, trials)
		for i := 0; i < trials; i++ {
			dy, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: b, Seed: seed + uint64(i)*17})
			if err != nil {
				return nil, err
			}
			dn, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: b, Seed: seed + uint64(i)*17})
			if err != nil {
				return nil, err
			}
			dys[i], dns[i] = dy, dn
			yesEsts[i], noEsts[i] = dy, dn
		}
		runCopies(sYes, yesEsts)
		runCopies(sNo, noEsts)
		detect, falsePos := 0, 0
		for i := 0; i < trials; i++ {
			if dys[i].Detected() {
				detect++
			}
			if dns[i].Detected() {
				falsePos++
			}
		}
		t.Rows = append(t.Rows, []string{
			d(int64(T)), d(g.M()), d(int64(b)),
			f2(float64(detect) / trials), f2(float64(falsePos) / trials),
		})
	}
	t.Notes = append(t.Notes, "*Any graph with T triangles has ≥ T^{2/3} edges in triangles, so an m/T^{2/3} sample hits one with constant probability; a triangle-free graph can never trigger detection.*")
	return t, nil
}

// Table1Row6TwoPassTriangle measures the paper's main algorithm at the
// Õ(m/T^{2/3}) budget (Theorem 3.7).
func Table1Row6TwoPassTriangle(seed uint64) (*Table, error) {
	tab, err := upperBoundRow("T1.R6",
		"Triangle, 2 pass, lightest-edge via H proxy — Õ(m/T^{2/3}) (Theorem 3.7)",
		"2-pass (1±ε) estimation with m′ = Θ(m/T^{2/3}) — the paper's main upper bound",
		2.0/3.0, 8, seed,
		[]int{4096, 32768, 262144}, tripartiteWorkload,
		func(b int, sd uint64) (stream.Estimator, error) {
			return core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b, PairCap: 8 * b, Seed: sd})
		})
	if err != nil {
		return nil, err
	}
	tab.Notes = append(tab.Notes,
		"*Workload: the Figure 1b extremal structure (a K_{T^{1/3},T^{1/3},T^{1/3}} cluster in noise) — the family behind the Ω(m/T^{2/3}) lower bound, on which Theorem 3.7 is tight.*",
		"*The pair reservoir uses |Q| = 8m′ (still Θ(m′) space): the paper's k²T′/m′ variance term is a 1/|Q| floor that would otherwise mask the T^{-2/3} law at the small m of this testbed.*")
	return tab, nil
}

// Table1Row9TwoPassFourCycle measures the paper's 4-cycle algorithm at the
// Õ(m/T^{3/8}) budget (Theorem 4.6).
func Table1Row9TwoPassFourCycle(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R9",
		Title:  "4-cycle, 2 pass, sampled wedges — Õ(m/T^{3/8}) (Theorem 4.6)",
		Claim:  "2-pass O(1)-approximation with m′ = Θ(m/T^{3/8})",
		Header: []string{"T (C4)", "m", "m′ budget", "median rel. err", "approx ratio p90", "mean space (words)"},
	}
	// Bipartite butterfly workloads of growing density, sized so the
	// m/T^{3/8} budget is genuinely sublinear.
	// The k=16 point (≈4× the 4-cycle mass of k=12) became affordable when
	// the ground-truth layer moved to the CSR kernels.
	params := []struct{ a, b, k int }{
		{300, 60, 5},
		{300, 60, 8},
		{300, 60, 12},
		{300, 60, 16},
	}
	for _, p := range params {
		g, err := gen.BipartiteButterflies(p.a, p.b, p.k, seed)
		if err != nil {
			return nil, err
		}
		T := g.FourCycles()
		b := budget(10, g.M(), float64(T), 3.0/8.0, 8)
		s := stream.Random(g, seed)
		var errs, ratios []float64
		var spaceSum float64
		const trials = 15
		ests := make([]stream.Estimator, trials)
		for i := 0; i < trials; i++ {
			// WedgeCap keeps |Q| = O(m′), the paper's stated space; the
			// dilution correction keeps the estimator centered.
			alg, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: b, WedgeCap: 4 * b, Seed: seed + uint64(i)*37})
			if err != nil {
				return nil, err
			}
			ests[i] = alg
		}
		runCopies(s, ests)
		for _, alg := range ests {
			errs = append(errs, relErr(alg.Estimate(), float64(T)))
			r := alg.Estimate() / float64(T)
			if r < 1 && r > 0 {
				r = 1 / r
			}
			ratios = append(ratios, r)
			spaceSum += float64(alg.SpaceWords())
		}
		t.Rows = append(t.Rows, []string{
			d(T), d(g.M()), d(int64(b)), f3(median(errs)), f2(quantile(ratios, 0.9)),
			d(int64(spaceSum / trials)),
		})
	}
	t.Notes = append(t.Notes, "*A constant-factor approximation, per the theorem; the (1±ε) regime is provably out of reach for this budget.*")

	// Second half of the row: the required-budget law on the extremal
	// family (a planted K_{b,b}, whose C(b,2)² 4-cycles ride on only
	// ≈ T^{3/4} wedges — the scarce-wedge structure that pins the budget
	// to Θ(m/T^{3/8})).
	var Ts, reqs []float64
	detail := "*Biclique extremal family (T, m, required m′ at ε=0.2):*"
	for _, bside := range []int{6, 10, 16, 22} {
		g, T, err := plantedBicliqueWorkload(bside, 3000, seed)
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		req, err := requiredBudget(s, float64(T), g.M(), searchTrials, targetRelErr, func(bb int, sd uint64) (stream.Estimator, error) {
			return core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: bb, Seed: sd + seed})
		})
		if err != nil {
			return nil, err
		}
		Ts = append(Ts, float64(T))
		reqs = append(reqs, float64(req))
		detail += " (" + d(T) + ", " + d(g.M()) + ", " + d(int64(req)) + ")"
	}
	t.Notes = append(t.Notes, detail)
	t.Notes = append(t.Notes, fitNote("required sample size (biclique family)", Ts, reqs, -3.0/8.0))
	return t, nil
}

// relErr is RelErr that treats 0-truth/0-estimate as zero error.
func relErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / truth
}

func median(xs []float64) float64              { return stats.Median(xs) }
func quantile(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }
