package exp

import (
	"path/filepath"
	"testing"

	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

// TestStreamFromFileMatchesInMemory replays the T1.R9 estimator from a
// columnar stream file and checks the estimate is bit-identical to the
// in-memory stream it was captured from — the property that makes file
// reruns interchangeable with generated runs.
func TestStreamFromFileMatchesInMemory(t *testing.T) {
	g, err := gen.BipartiteButterflies(60, 12, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 1)
	path := filepath.Join(t.TempDir(), "r9.adjc")
	if err := stream.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	loaded, closeFn, err := StreamFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if loaded.Len() != s.Len() || loaded.M() != s.M() {
		t.Fatalf("loaded stream (len=%d, m=%d) != captured (len=%d, m=%d)",
			loaded.Len(), loaded.M(), s.Len(), s.M())
	}
	mk := func() stream.Estimator {
		alg, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: 64, WedgeCap: 256, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	mem := mk()
	file := mk()
	runOne(s, mem)
	runOne(loaded, file)
	if mem.Estimate() != file.Estimate() {
		t.Fatalf("file replay estimate %v != in-memory %v", file.Estimate(), mem.Estimate())
	}
	if mem.SpaceWords() != file.SpaceWords() {
		t.Fatalf("file replay space %d != in-memory %d", file.SpaceWords(), mem.SpaceWords())
	}
}
