package exp

import (
	"fmt"

	"adjstream/internal/baseline"
	"adjstream/internal/comm"
	"adjstream/internal/core"
	"adjstream/internal/lb"
	"adjstream/internal/stream"
)

// dichotomyCell verifies the gadget's 0-vs-T promise and renders it.
func dichotomyCell(g *lb.Gadget) (string, error) {
	if err := g.VerifyDichotomy(); err != nil {
		return "", err
	}
	n, err := g.G.CountCycles(g.CycleLen)
	if err != nil {
		return "", err
	}
	return d(n), nil
}

// exactProtocolWords runs the exact O(m) streaming counter as the protocol
// and returns total communicated words (the Ω(m) reference point).
func exactProtocolWords(g *lb.Gadget) (int64, float64, error) {
	alg, err := baseline.NewExactStream(g.CycleLen)
	if err != nil {
		return 0, 0, err
	}
	tr, err := comm.RunProtocol(g.Segments, alg)
	if err != nil {
		return 0, 0, err
	}
	detected := 0.0
	if alg.Estimate() > 0 {
		detected = 1
	}
	return tr.TotalWords, detected, nil
}

// Table1Row7LowerBoundPJ builds the Figure 1a reduction (Theorem 5.1):
// 3-PJ_r instances become triangle gadgets whose 0-vs-k² dichotomy a
// one-pass streaming algorithm must resolve, so its space lower-bounds the
// game's one-way communication.
func Table1Row7LowerBoundPJ(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R7",
		Title:  "Triangle, 1 pass lower bound via 3-PJ (Theorem 5.1, Figure 1a)",
		Claim:  "1-pass triangle counting needs Ω(f_pj(m/√T)) space (conditional)",
		Header: []string{"r", "k", "m", "T=k² (yes)", "cycles (yes)", "cycles (no)", "exact-protocol words", "words/m"},
	}
	for _, r := range []int{8, 16, 32} {
		k := 4
		yes, err := lb.TrianglePJGadget(comm.RandomPJ3(r, true, seed), k)
		if err != nil {
			return nil, err
		}
		no, err := lb.TrianglePJGadget(comm.RandomPJ3(r, false, seed), k)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, err
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, err
		}
		words, det, err := exactProtocolWords(yes)
		if err != nil {
			return nil, err
		}
		if det != 1 {
			return nil, fmt.Errorf("exp: protocol failed to detect on yes-instance")
		}
		t.Rows = append(t.Rows, []string{
			d(int64(r)), d(int64(k)), d(yes.G.M()), d(yes.Want), cy, cn,
			d(words), f2(float64(words) / float64(yes.G.M())),
		})
	}
	t.Notes = append(t.Notes,
		"*Gadget dichotomy verified exactly: k² triangles on 1-instances, none on 0-instances. The exact protocol communicates Θ(m) words; a sublinear one-pass counter would give a sublinear 3-PJ protocol.*")
	return t, nil
}

// Table1Row8LowerBound3Disj builds the Figure 1b reduction (Theorem 5.2)
// and additionally demonstrates the matching upper bound: the two-pass
// distinguisher at the Θ(m/T^{2/3}) budget solves the game.
func Table1Row8LowerBound3Disj(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R8",
		Title:  "Triangle, const-pass lower bound via 3-DISJ (Theorem 5.2, Figure 1b)",
		Claim:  "const-pass triangle counting needs Ω(f_d(m/T^{2/3})) space (conditional); Θ(m/T^{2/3}) is achievable",
		Header: []string{"r", "k", "m", "T=k³ (yes)", "cycles (yes)", "cycles (no)", "m′=4m/T^{2/3}", "distinguish rate"},
	}
	for _, r := range []int{6, 12, 24} {
		k := 3
		yes, err := lb.TriangleDisj3Gadget(comm.RandomDisj3(r, true, seed), k)
		if err != nil {
			return nil, err
		}
		no, err := lb.TriangleDisj3Gadget(comm.RandomDisj3(r, false, seed), k)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, err
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, err
		}
		b := budget(4, yes.G.M(), float64(yes.Want), 2.0/3.0, 8)
		ok := 0
		const trials = 30
		// Gadget streams are deterministic, so all trials share one yes
		// stream and one no stream: two broadcast fan-outs.
		sy, err := yes.Stream()
		if err != nil {
			return nil, err
		}
		sn, err := no.Stream()
		if err != nil {
			return nil, err
		}
		dys := make([]*core.NaiveTwoPass, trials)
		dns := make([]*core.NaiveTwoPass, trials)
		yesEsts := make([]stream.Estimator, trials)
		noEsts := make([]stream.Estimator, trials)
		for i := 0; i < trials; i++ {
			dy, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: b, Seed: seed + uint64(i)*7})
			if err != nil {
				return nil, err
			}
			dn, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleSize: b, Seed: seed + uint64(i)*7})
			if err != nil {
				return nil, err
			}
			dys[i], dns[i] = dy, dn
			yesEsts[i], noEsts[i] = dy, dn
		}
		runCopies(sy, yesEsts)
		runCopies(sn, noEsts)
		for i := 0; i < trials; i++ {
			if dys[i].Detected() && !dns[i].Detected() {
				ok++
			}
		}
		t.Rows = append(t.Rows, []string{
			d(int64(r)), d(int64(k)), d(yes.G.M()), d(yes.Want), cy, cn,
			d(int64(b)), f2(float64(ok) / trials),
		})
	}
	t.Notes = append(t.Notes,
		"*The sublinear Θ(m/T^{2/3}) distinguisher solves every instance, matching the conditional lower bound's exponent.*")
	return t, nil
}

// Table1Row10LowerBoundIndex builds the Figure 1c reduction (Theorem 5.3):
// INDEX instances on projective-plane gadgets where T ≤ n^{1/3}; since
// INDEX needs Ω(m) one-way communication, one-pass 4-cycle counting needs
// Ω(m) space.
func Table1Row10LowerBoundIndex(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R10",
		Title:  "4-cycle, 1 pass lower bound via INDEX (Theorem 5.3, Figure 1c)",
		Claim:  "1-pass 4-cycle counting needs Ω(m) space for T = O(n^{1/3})",
		Header: []string{"plane q", "string r", "k=T", "n", "m", "cycles (yes)", "cycles (no)", "exact-protocol words", "words/m", "sublinear 1-pass detect rate"},
	}
	for _, q := range []int64{3, 5, 7} {
		strLen, err := lb.IndexGadgetStringLen(q)
		if err != nil {
			return nil, err
		}
		k := 2
		yes, err := lb.FourCycleIndexGadget(comm.RandomIndex(strLen, true, seed), q, k)
		if err != nil {
			return nil, err
		}
		no, err := lb.FourCycleIndexGadget(comm.RandomIndex(strLen, false, seed), q, k)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, err
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, err
		}
		words, det, err := exactProtocolWords(yes)
		if err != nil {
			return nil, err
		}
		if det != 1 {
			return nil, fmt.Errorf("exp: protocol failed on yes-instance")
		}
		// The Theorem 5.3 phenomenon on a concrete algorithm: a one-pass
		// edge-sample heuristic at a quarter of the edges almost never sees
		// a complete 4-cycle ((m′/m)⁴ per cycle).
		detects := 0
		const trials = 30
		sy, err := yes.Stream()
		if err != nil {
			return nil, err
		}
		straws := make([]*baseline.OnePassFourCycle, trials)
		strawEsts := make([]stream.Estimator, trials)
		for i := 0; i < trials; i++ {
			straw, err := baseline.NewOnePassFourCycle(baseline.Config{SampleSize: int(yes.G.M() / 4), Seed: seed + uint64(i)*9 + 1})
			if err != nil {
				return nil, err
			}
			straws[i] = straw
			strawEsts[i] = straw
		}
		runCopies(sy, strawEsts)
		for _, straw := range straws {
			if straw.Detected() {
				detects++
			}
		}
		t.Rows = append(t.Rows, []string{
			d(q), d(int64(strLen)), d(int64(k)), d(int64(yes.G.N())), d(yes.G.M()),
			cy, cn, d(words), f2(float64(words) / float64(yes.G.M())),
			f2(float64(detects) / trials),
		})
	}
	t.Notes = append(t.Notes,
		"*The base graph is the girth-6 projective-plane incidence graph (4-cycle-free with Θ(r^{3/2}) edges); the k target cycles appear iff Alice's indexed bit is 1. The last column shows a natural sublinear one-pass heuristic (edge sampling at m/4) failing on yes-instances, as the theorem requires of every sublinear one-pass algorithm.*")
	return t, nil
}

// Table1Row11LowerBoundDisj builds the Figure 1d reduction (Theorem 5.4)
// and demonstrates the sublinear multipass upper bound on the same gadgets.
func Table1Row11LowerBoundDisj(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R11",
		Title:  "4-cycle, const-pass lower bound via DISJ (Theorem 5.4, Figure 1d)",
		Claim:  "const-pass 4-cycle counting needs Ω(m/T^{2/3}) space for T ≤ √m",
		Header: []string{"q1", "q2", "m", "T (yes)", "cycles (yes)", "cycles (no)", "m′=10m/T^{3/8}", "distinguish rate"},
	}
	for _, q1 := range []int64{2, 3} {
		q2 := int64(2)
		strLen, err := lb.DisjGadgetStringLen(q1)
		if err != nil {
			return nil, err
		}
		yes, err := lb.FourCycleDisjGadget(comm.RandomDisj(strLen, true, seed), q1, q2)
		if err != nil {
			return nil, err
		}
		no, err := lb.FourCycleDisjGadget(comm.RandomDisj(strLen, false, seed), q1, q2)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, err
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, err
		}
		b := budget(10, yes.G.M(), float64(yes.Want), 3.0/8.0, 8)
		ok := 0
		const trials = 30
		sy, err := yes.Stream()
		if err != nil {
			return nil, err
		}
		sn, err := no.Stream()
		if err != nil {
			return nil, err
		}
		fys := make([]stream.Estimator, trials)
		fns := make([]stream.Estimator, trials)
		for i := 0; i < trials; i++ {
			fy, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: b, Seed: seed + uint64(i)*13})
			if err != nil {
				return nil, err
			}
			fn, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: b, Seed: seed + uint64(i)*13})
			if err != nil {
				return nil, err
			}
			fys[i], fns[i] = fy, fn
		}
		runCopies(sy, fys)
		runCopies(sn, fns)
		for i := 0; i < trials; i++ {
			if fys[i].Estimate() > 0 && fns[i].Estimate() == 0 {
				ok++
			}
		}
		t.Rows = append(t.Rows, []string{
			d(q1), d(q2), d(yes.G.M()), d(yes.Want), cy, cn, d(int64(b)),
			f2(float64(ok) / trials),
		})
	}
	t.Notes = append(t.Notes,
		"*Both planes are girth-6 incidence graphs; common indices create |E(H2)| 4-cycles. Multipass sublinear distinguishing works (Theorem 4.6), separating 4-cycles from the ℓ≥5 regime.*")
	return t, nil
}

// Table1Row12LowerBoundLong builds the Figure 1e reduction (Theorem 5.5)
// for ℓ ∈ {5,6,7}.
func Table1Row12LowerBoundLong(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "T1.R12",
		Title:  "ℓ-cycle (ℓ≥5), const-pass lower bound via DISJ (Theorem 5.5, Figure 1e)",
		Claim:  "const-pass ℓ-cycle counting needs Ω(m) space for any constant ℓ ≥ 5",
		Header: []string{"ℓ", "r", "T", "m", "cycles (yes)", "cycles (no)", "exact-protocol words", "words/m"},
	}
	for _, l := range []int{5, 6, 7} {
		r, T := 60, 20
		yes, err := lb.LongCycleGadget(comm.RandomDisj(r, true, seed), T, l)
		if err != nil {
			return nil, err
		}
		no, err := lb.LongCycleGadget(comm.RandomDisj(r, false, seed), T, l)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, err
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, err
		}
		words, det, err := exactProtocolWords(yes)
		if err != nil {
			return nil, err
		}
		if det != 1 {
			return nil, fmt.Errorf("exp: protocol failed on yes-instance")
		}
		t.Rows = append(t.Rows, []string{
			d(int64(l)), d(int64(r)), d(int64(T)), d(yes.G.M()), cy, cn,
			d(words), f2(float64(words) / float64(yes.G.M())),
		})
	}
	t.Notes = append(t.Notes,
		"*Unlike triangles and 4-cycles, no sublinear multipass algorithm exists for ℓ ≥ 5: the gadget packs a DISJ instance into Θ(m) input-dependent edges.*")
	return t, nil
}

// Figure1Gadgets summarizes all five Figure 1 constructions side by side.
func Figure1Gadgets(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "F1",
		Title:  "Figure 1 gadget constructions (a–e)",
		Claim:  "each panel's graph encodes its game with the stated cycle dichotomy",
		Header: []string{"panel", "game", "cycle len", "n", "m", "want (yes)", "cycles (yes)", "cycles (no)"},
	}
	type build struct {
		panel, game string
		mk          func(want bool) (*lb.Gadget, error)
	}
	strLenC, err := lb.IndexGadgetStringLen(3)
	if err != nil {
		return nil, err
	}
	strLenD, err := lb.DisjGadgetStringLen(2)
	if err != nil {
		return nil, err
	}
	builds := []build{
		{"1a", "3-PJ", func(w bool) (*lb.Gadget, error) {
			return lb.TrianglePJGadget(comm.RandomPJ3(10, w, seed), 4)
		}},
		{"1b", "3-DISJ", func(w bool) (*lb.Gadget, error) {
			return lb.TriangleDisj3Gadget(comm.RandomDisj3(10, w, seed), 3)
		}},
		{"1c", "INDEX", func(w bool) (*lb.Gadget, error) {
			return lb.FourCycleIndexGadget(comm.RandomIndex(strLenC, w, seed), 3, 4)
		}},
		{"1d", "DISJ", func(w bool) (*lb.Gadget, error) {
			return lb.FourCycleDisjGadget(comm.RandomDisj(strLenD, w, seed), 2, 2)
		}},
		{"1e", "DISJ", func(w bool) (*lb.Gadget, error) {
			return lb.LongCycleGadget(comm.RandomDisj(30, w, seed), 12, 5)
		}},
	}
	for _, bd := range builds {
		yes, err := bd.mk(true)
		if err != nil {
			return nil, err
		}
		no, err := bd.mk(false)
		if err != nil {
			return nil, err
		}
		cy, err := dichotomyCell(yes)
		if err != nil {
			return nil, fmt.Errorf("panel %s: %w", bd.panel, err)
		}
		cn, err := dichotomyCell(no)
		if err != nil {
			return nil, fmt.Errorf("panel %s: %w", bd.panel, err)
		}
		t.Rows = append(t.Rows, []string{
			bd.panel, bd.game, d(int64(yes.CycleLen)), d(int64(yes.G.N())), d(yes.G.M()),
			d(yes.Want), cy, cn,
		})
	}
	return t, nil
}
