package exp

import (
	"fmt"
	"math"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// plantedTriangleWorkload returns a graph with exactly T triangles and
// roughly mTarget edges: T disjoint planted triangles over triangle-free
// bipartite noise. It lets the T axis move while m stays (almost) fixed,
// which is what the space-exponent fits need.
func plantedTriangleWorkload(T int, mTarget int, seed uint64) (*graph.Graph, error) {
	const side = 120
	noise := mTarget - 3*T
	if noise < 0 {
		noise = 0
	}
	p := float64(noise) / float64(side*side)
	if p > 1 {
		p = 1
	}
	g, err := gen.PlantedTriangles(T, side, p, seed)
	if err != nil {
		return nil, err
	}
	if got := g.Triangles(); got != int64(T) {
		return nil, fmt.Errorf("exp: workload has %d triangles, want %d", got, T)
	}
	return g, nil
}

// pjHardWorkload returns the one-pass extremal family (the Figure 1a
// structure): a complete bipartite B×C on k=√T vertices per side completed
// by a single hub adjacent to all of B and C, giving exactly T = k²
// triangles with edge loads (1, k, k) — the skew that pins edge-sampling
// estimators to Θ(m/√T) — plus triangle-free noise up to mTarget edges.
func pjHardWorkload(T int, mTarget int, seed uint64) (*graph.Graph, error) {
	k := int(math.Round(math.Sqrt(float64(T))))
	if k*k != T {
		return nil, fmt.Errorf("exp: T=%d is not a perfect square", T)
	}
	b := graph.NewBuilder()
	hub := graph.V(0)
	bBase, cBase := graph.V(1), graph.V(1+k)
	for i := 0; i < k; i++ {
		if err := b.Add(hub, bBase+graph.V(i)); err != nil {
			return nil, err
		}
		if err := b.Add(hub, cBase+graph.V(i)); err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			if err := b.Add(bBase+graph.V(i), cBase+graph.V(j)); err != nil {
				return nil, err
			}
		}
	}
	g, err := addBipartiteNoise(b, graph.V(1+2*k), mTarget-(k*k+2*k), seed)
	if err != nil {
		return nil, err
	}
	if got := g.Triangles(); got != int64(T) {
		return nil, fmt.Errorf("exp: pj workload has %d triangles, want %d", got, T)
	}
	return g, nil
}

// tripartiteWorkload returns the const-pass extremal family (the Figure 1b
// structure): one complete tripartite cluster K_{k,k,k} with k = T^{1/3},
// i.e. T = k³ triangles on 3k² = 3T^{2/3} edges — the instance class behind
// both the Ω(m/T^{2/3}) lower bound and the tightness of Theorem 3.7 —
// plus triangle-free noise up to mTarget edges.
func tripartiteWorkload(T int, mTarget int, seed uint64) (*graph.Graph, error) {
	k := int(math.Round(math.Cbrt(float64(T))))
	if k*k*k != T {
		return nil, fmt.Errorf("exp: T=%d is not a perfect cube", T)
	}
	b := graph.NewBuilder()
	base := func(side, i int) graph.V { return graph.V(side*k + i) }
	for s1 := 0; s1 < 3; s1++ {
		for s2 := s1 + 1; s2 < 3; s2++ {
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if err := b.Add(base(s1, i), base(s2, j)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	g, err := addBipartiteNoise(b, graph.V(3*k), mTarget-3*k*k, seed)
	if err != nil {
		return nil, err
	}
	if got := g.Triangles(); got != int64(T) {
		return nil, fmt.Errorf("exp: tripartite workload has %d triangles, want %d", got, T)
	}
	return g, nil
}

// plantedBicliqueWorkload returns the 4-cycle extremal family: one complete
// bipartite clique K_{b,b} (T = C(b,2)² 4-cycles, with only ≈ T^{3/4}
// wedges carrying them — the scarce-wedge regime that forces the
// Θ(m/T^{3/8}) budget of Theorem 4.6) over 4-cycle-free path noise.
func plantedBicliqueWorkload(b int, mTarget int, seed uint64) (*graph.Graph, int64, error) {
	bld := graph.NewBuilder()
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			if err := bld.Add(graph.V(i), graph.V(b+j)); err != nil {
				return nil, 0, err
			}
		}
	}
	// Path noise: 4-cycle-free (and triangle-free).
	base := graph.V(2 * b)
	extra := mTarget - b*b
	for i := 0; i < extra; i++ {
		if err := bld.Add(base+graph.V(i), base+graph.V(i)+1); err != nil {
			return nil, 0, err
		}
	}
	g := bld.Graph()
	bb := int64(b)
	wantT := (bb * (bb - 1) / 2) * (bb * (bb - 1) / 2)
	if got := g.FourCycles(); got != wantT {
		return nil, 0, fmt.Errorf("exp: biclique workload has %d 4-cycles, want %d", got, wantT)
	}
	return g, wantT, nil
}

// addBipartiteNoise fills the builder with ≈ extra triangle-free edges on
// fresh vertices at and above base, then finalizes.
func addBipartiteNoise(b *graph.Builder, base graph.V, extra int, seed uint64) (*graph.Graph, error) {
	if extra < 0 {
		extra = 0
	}
	const side = 160
	p := float64(extra) / float64(side*side)
	if p > 1 {
		p = 1
	}
	noise, err := gen.RandomBipartite(side, side, p, seed)
	if err != nil {
		return nil, err
	}
	for _, e := range noise.Edges() {
		if err := b.Add(base+e.U, base+e.V); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// trialStats runs trials independent estimator instances over s — all
// copies share one broadcast traversal per pass — and reports the median
// relative error against truth and the mean peak space in words.
func trialStats(s *stream.Stream, truth float64, trials int, mk func(seed uint64) (stream.Estimator, error)) (medErr, meanSpace float64, err error) {
	ests := make([]stream.Estimator, trials)
	for i := range ests {
		e, err := mk(uint64(i)*0x9e37 + 11)
		if err != nil {
			return 0, 0, err
		}
		ests[i] = e
	}
	runCopies(s, ests)
	var errs []float64
	var sp stats.Running
	for _, e := range ests {
		errs = append(errs, stats.RelErr(e.Estimate(), truth))
		sp.Add(float64(e.SpaceWords()))
	}
	return stats.Median(errs), sp.Mean(), nil
}

// budget computes c·m/T^alpha, clamped to [lo, m].
func budget(c float64, m int64, T float64, alpha float64, lo int) int {
	b := int(c * float64(m) / math.Pow(T, alpha))
	if b < lo {
		b = lo
	}
	if int64(b) > m {
		b = int(m)
	}
	return b
}

// fitNote fits y ∝ T^x over a sweep and renders the conclusion.
func fitNote(what string, Ts, ys []float64, claimed float64) string {
	got, _ := stats.FitPowerLaw(Ts, ys)
	return fmt.Sprintf("*Measured %s exponent vs T: %.2f (paper: %.2f; m held ≈ constant).*", what, got, claimed)
}

// requiredBudget doubles the edge-sample budget until the estimator meets
// the paper's guarantee form — relative error ≤ target with probability at
// least 2/3 (checked as the 70th-percentile error over the trials) — or the
// budget reaches m. This measures the empirical space requirement of an
// estimator family, the quantity the Table 1 bounds are about. Gating on a
// quantile rather than the median avoids the small-sample artifact where a
// lumpy estimator (scale·{0,1,2,…}) lands near the truth by luck.
func requiredBudget(s *stream.Stream, truth float64, m int64, trials int, target float64,
	mk func(budget int, seed uint64) (stream.Estimator, error)) (int, error) {
	for fb := 8.0; ; fb *= math.Sqrt2 {
		b := int(math.Round(fb))
		if int64(b) > m {
			b = int(m)
		}
		ests := make([]stream.Estimator, trials)
		for i := range ests {
			e, err := mk(b, uint64(i)*0x51ed+271)
			if err != nil {
				return 0, err
			}
			ests[i] = e
		}
		runCopies(s, ests)
		var errs []float64
		for _, e := range ests {
			errs = append(errs, stats.RelErr(e.Estimate(), truth))
		}
		if stats.Quantile(errs, 0.7) <= target || int64(b) >= m {
			return b, nil
		}
	}
}
