package exp

// Stream-file loading for experiment reruns. Experiments normally generate
// their workloads in-process, which couples a rerun to the generator code
// and pays graph construction plus stream shuffling on every trial batch.
// StreamFromFile instead replays a stream captured on disk — for the
// mmap-able columnar format the replay touches the mapped pages directly,
// so even multi-gigabyte workloads load in O(1). The capture for, e.g.,
// the T1.R9 workload is one genstream call:
//
//	genstream -kind butterflies -n 300 -side 60 -k 12 -seed 1 \
//	    -format colstream -out r9.adjc
//
// and StreamFromFile("r9.adjc") then feeds the usual runCopies/runOne
// drivers. Because the file pins the exact item order, reruns across
// machines and sessions see bit-identical streams.

import (
	"adjstream/internal/stream"
)

// StreamFromFile opens an adjacency-list stream file in any supported
// format (text, "adj1" varint binary, or "adjC" columnar — the latter
// memory-mapped). The returned closer must be called when the stream is no
// longer needed; it is never nil.
func StreamFromFile(path string) (*stream.Stream, func() error, error) {
	return stream.OpenFile(path)
}
