package exp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"adjstream/internal/stream"
	"adjstream/internal/telemetry"
)

// The run journal is the machine-readable provenance record of a sweep: an
// append-only JSONL file with one record per experiment grid point (the
// config and measured cells of one table row), bracketed by a run header
// (seed, git revision, driver, environment) and a per-experiment summary
// (wall time, telemetry metrics snapshot, driver-counter delta). Everything
// EXPERIMENTS.md claims is re-derivable from the journal of the run that
// produced it: workload parameters, budgets, measured space words, and the
// per-pass timing/occupancy metrics of the telemetry registry.

// Journal record kinds.
const (
	// KindRun is the one-per-run header record: seed, git rev, driver,
	// Go version, GOMAXPROCS.
	KindRun = "run"
	// KindGridPoint is one experiment table row: the header names the
	// config and measured columns, the cells hold the values.
	KindGridPoint = "grid-point"
	// KindExperiment is the per-experiment trailer: elapsed wall time,
	// notes, the telemetry metrics snapshot accumulated over the
	// experiment, and the driver-counter delta.
	KindExperiment = "experiment"
)

// JournalRecord is one line of the JSONL run journal.
type JournalRecord struct {
	Kind string `json:"kind"`
	// Time is the record's wall-clock timestamp (RFC 3339).
	Time string `json:"time,omitempty"`
	// Experiment is the experiment id (e.g. "T1.R9"); empty on run headers.
	Experiment string `json:"experiment,omitempty"`
	// Title is the experiment title (experiment records only).
	Title string `json:"title,omitempty"`
	// Seed is the sweep seed every grid point derives its randomness from.
	Seed uint64 `json:"seed"`
	// GitRev is the VCS revision of the binary (suffixed "+dirty" when the
	// worktree had local modifications; empty when no VCS stamp is present).
	GitRev string `json:"git_rev,omitempty"`
	// GoVersion and Workers describe the environment (run headers only).
	GoVersion string `json:"go_version,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// Driver is the multi-copy execution driver ("broadcast" or "replay").
	Driver string `json:"driver,omitempty"`
	// Row is the 1-based grid-point index within its experiment.
	Row int `json:"row,omitempty"`
	// Header and Cells are the column names and values of one grid point,
	// in table order.
	Header []string `json:"header,omitempty"`
	Cells  []string `json:"cells,omitempty"`
	// Notes are the experiment's conclusions (fitted exponents etc.).
	Notes []string `json:"notes,omitempty"`
	// ElapsedMS is the experiment's wall time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Metrics is the telemetry registry snapshot accumulated over the
	// experiment (per-pass wall times, items/sec, space high-water marks,
	// sample occupancy; empty when telemetry is disabled).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// DriverStats is the driver-counter delta of the experiment.
	DriverStats *stream.DriverStats `json:"driver_stats,omitempty"`
}

// Point returns the grid point as a column→value map.
func (r *JournalRecord) Point() map[string]string {
	if len(r.Header) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.Header))
	for i, h := range r.Header {
		if i < len(r.Cells) {
			out[h] = r.Cells[i]
		}
	}
	return out
}

var (
	journalMu sync.Mutex
	journalW  io.Writer
)

// SetJournal directs Run to append JSONL records to w (nil disables
// journaling). The caller owns w's lifetime; records are written with a
// trailing newline each, so appending to an existing journal file is safe.
func SetJournal(w io.Writer) {
	journalMu.Lock()
	defer journalMu.Unlock()
	journalW = w
}

// writeJournal marshals rec onto the journal, if one is set.
func writeJournal(rec JournalRecord) error {
	journalMu.Lock()
	defer journalMu.Unlock()
	if journalW == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = journalW.Write(b)
	return err
}

// journaling reports whether a journal writer is installed.
func journaling() bool {
	journalMu.Lock()
	defer journalMu.Unlock()
	return journalW != nil
}

// GitRev returns the build's VCS revision (12 hex digits, "+dirty" suffix
// when built from a modified worktree), or "" when the binary carries no
// VCS stamp (e.g. under `go test`).
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// driverName returns the currently selected multi-copy driver.
func driverName() string {
	driverMu.Lock()
	defer driverMu.Unlock()
	if driverSel == "" {
		return "broadcast"
	}
	return driverSel
}

// statsDelta returns after minus before for the summing counters; the
// max-style fields (Passes, PeakQueueDepth) keep their after values.
func statsDelta(after, before stream.DriverStats) stream.DriverStats {
	return stream.DriverStats{
		Copies:          after.Copies - before.Copies,
		Passes:          after.Passes,
		StreamItemsRead: after.StreamItemsRead - before.StreamItemsRead,
		ItemsDelivered:  after.ItemsDelivered - before.ItemsDelivered,
		Batches:         after.Batches - before.Batches,
		PeakQueueDepth:  after.PeakQueueDepth,
	}
}

// journalRunHeader emits the one-per-run provenance record.
func journalRunHeader(seed uint64) error {
	return writeJournal(JournalRecord{
		Kind:      KindRun,
		Time:      time.Now().Format(time.RFC3339),
		Seed:      seed,
		GitRev:    GitRev(),
		GoVersion: runtime.Version(),
		Workers:   runtime.GOMAXPROCS(0),
		Driver:    driverName(),
	})
}

// journalExperiment emits the grid-point records of t followed by the
// experiment trailer.
func journalExperiment(t *Table, seed uint64, elapsed time.Duration, metrics map[string]float64, ds stream.DriverStats) error {
	rev := GitRev()
	for i, row := range t.Rows {
		if err := writeJournal(JournalRecord{
			Kind:       KindGridPoint,
			Experiment: t.ID,
			Seed:       seed,
			GitRev:     rev,
			Driver:     driverName(),
			Row:        i + 1,
			Header:     t.Header,
			Cells:      row,
		}); err != nil {
			return err
		}
	}
	return writeJournal(JournalRecord{
		Kind:        KindExperiment,
		Time:        time.Now().Format(time.RFC3339),
		Experiment:  t.ID,
		Title:       t.Title,
		Seed:        seed,
		GitRev:      rev,
		Driver:      driverName(),
		Notes:       t.Notes,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
		Metrics:     metrics,
		DriverStats: &ds,
	})
}

// ReadJournal parses a JSONL run journal, skipping blank lines. Every
// record must carry a known kind; grid points must have matching
// header/cell lengths — the validation `cmd/runjournal -check` and the
// journal-smoke CI target rely on.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []JournalRecord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("exp: journal line %d: %w", line, err)
		}
		switch rec.Kind {
		case KindRun, KindExperiment:
		case KindGridPoint:
			if len(rec.Header) == 0 || len(rec.Header) != len(rec.Cells) {
				return nil, fmt.Errorf("exp: journal line %d: grid point with %d header / %d cell columns",
					line, len(rec.Header), len(rec.Cells))
			}
			if rec.Experiment == "" {
				return nil, fmt.Errorf("exp: journal line %d: grid point without experiment id", line)
			}
		default:
			return nil, fmt.Errorf("exp: journal line %d: unknown kind %q", line, rec.Kind)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exp: reading journal: %w", err)
	}
	return out, nil
}

// JournalTables reconstructs the experiment tables recorded in a journal
// (the re-summarize direction of the round trip): grid points grouped by
// experiment id in journal order, with the notes of the matching experiment
// trailer. id filters to one experiment ("" or "all" keeps every one).
func JournalTables(recs []JournalRecord, id string) ([]*Table, error) {
	byID := make(map[string]*Table)
	var order []string
	for i := range recs {
		rec := &recs[i]
		if id != "" && id != "all" && rec.Experiment != id {
			continue
		}
		switch rec.Kind {
		case KindGridPoint:
			t, ok := byID[rec.Experiment]
			if !ok {
				t = &Table{ID: rec.Experiment, Header: rec.Header}
				byID[rec.Experiment] = t
				order = append(order, rec.Experiment)
			}
			t.Rows = append(t.Rows, rec.Cells)
		case KindExperiment:
			if t, ok := byID[rec.Experiment]; ok {
				t.Title = rec.Title
				t.Notes = rec.Notes
			}
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("exp: no grid points for experiment %q in journal", id)
	}
	out := make([]*Table, 0, len(order))
	for _, eid := range order {
		out = append(out, byID[eid])
	}
	return out, nil
}

// SummarizeJournal renders one overview table for a journal: a row per
// experiment with grid-point count, elapsed time, stream traversal work,
// and the peak space words telemetry observed — the `cmd/runjournal`
// default view.
func SummarizeJournal(recs []JournalRecord) *Table {
	t := &Table{
		ID:    "J1",
		Title: "Run journal summary",
		Header: []string{
			"experiment", "grid points", "elapsed (ms)", "copies run",
			"stream items read", "peak space (words)", "seed", "git rev", "driver",
		},
	}
	points := make(map[string]int)
	var order []string
	seen := make(map[string]bool)
	trailers := make(map[string]*JournalRecord)
	for i := range recs {
		rec := &recs[i]
		if rec.Experiment == "" {
			continue
		}
		if !seen[rec.Experiment] {
			seen[rec.Experiment] = true
			order = append(order, rec.Experiment)
		}
		switch rec.Kind {
		case KindGridPoint:
			points[rec.Experiment]++
		case KindExperiment:
			trailers[rec.Experiment] = rec
		}
	}
	for _, id := range order {
		row := []string{id, d(int64(points[id])), "—", "—", "—", "—", "—", "—", "—"}
		if tr := trailers[id]; tr != nil {
			row[2] = fmt.Sprintf("%.0f", tr.ElapsedMS)
			if tr.DriverStats != nil {
				row[3] = d(int64(tr.DriverStats.Copies))
				row[4] = d(tr.DriverStats.StreamItemsRead)
			}
			if peak := peakSpaceWords(tr.Metrics); peak > 0 {
				row[5] = d(peak)
			}
			row[6] = fmt.Sprintf("%d", tr.Seed)
			if tr.GitRev != "" {
				row[7] = tr.GitRev
			}
			if tr.Driver != "" {
				row[8] = tr.Driver
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// peakSpaceWords extracts the largest space high-water mark of a metrics
// snapshot (keys ending in ".space_words").
func peakSpaceWords(metrics map[string]float64) int64 {
	var peak int64
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasSuffix(k, ".space_words") {
			if v := int64(metrics[k]); v > peak {
				peak = v
			}
		}
	}
	return peak
}

// runExperimentJournaled executes one experiment, bracketing it with the
// telemetry/driver-counter bookkeeping the journal records. When a journal
// is installed and the global telemetry registry is live, the registry is
// reset first so the recorded metrics snapshot is the experiment's own.
func runExperimentJournaled(e Experiment, seed uint64) (*Table, error) {
	journal := journaling()
	reg := telemetry.Global()
	if journal {
		reg.Reset()
	}
	usedBefore, _ := DriverCounters()
	start := time.Now()
	t, err := e.Run(seed)
	if err != nil {
		return nil, err
	}
	if !journal {
		return t, nil
	}
	usedAfter, _ := DriverCounters()
	if err := journalExperiment(t, seed, time.Since(start), reg.Snapshot(), statsDelta(usedAfter, usedBefore)); err != nil {
		return nil, fmt.Errorf("writing journal: %w", err)
	}
	return t, nil
}
