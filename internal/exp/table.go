// Package exp is the experiment harness: it regenerates, as measured
// tables, every row of Table 1 and every panel of Figure 1 of the paper,
// plus the ablations listed in DESIGN.md. cmd/experiments prints these
// tables; bench_test.go wraps them as benchmarks; EXPERIMENTS.md records
// their output against the paper's claims.
package exp

import (
	"fmt"
	"strings"
)

// Table is a titled experiment result with a Markdown rendering.
type Table struct {
	// ID is the experiment id (e.g. "T1.R6", "F1.a", "A3").
	ID string
	// Title describes the experiment.
	Title string
	// Claim is the paper's claim being checked.
	Claim string
	// Header holds column names.
	Header []string
	// Rows holds the measured cells.
	Rows [][]string
	// Notes holds conclusions (fitted exponents, pass/fail remarks).
	Notes []string
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first, one
// metadata comment line on top).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(csvEscape(t.Header), ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(csvEscape(r), ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return out
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func d(x int64) string    { return fmt.Sprintf("%d", x) }
