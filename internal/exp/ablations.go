package exp

import (
	"fmt"
	"math"

	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// AblationLightestEdge (A1) compares the naive edge-sample estimator with
// the lightest-edge two-pass estimator on heavy-edge (planted book)
// workloads at equal sampling rate: the Section 2.1 motivation.
func AblationLightestEdge(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "Lightest-edge rule vs naive counting on heavy-edge graphs",
		Claim:  "heavy edges blow up the naive estimator's variance; ρ(τ) counting suppresses it (Section 2.1)",
		Header: []string{"book size h", "T", "max edge load", "p", "naive RMSE/T", "lightest RMSE/T"},
	}
	for _, h := range []int{40, 120, 360} {
		g, err := gen.PlantedBooks(3, h, 30, 0.3, seed)
		if err != nil {
			return nil, err
		}
		truth := float64(g.Triangles())
		s := stream.Random(g, seed)
		const p = 0.15
		const trials = 120
		ests := make([]stream.Estimator, 0, 2*trials)
		for i := 0; i < trials; i++ {
			n, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleProb: p, Seed: seed + uint64(i)*3 + 1})
			if err != nil {
				return nil, err
			}
			l, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: p, PairCap: 1 << 20, Seed: seed + uint64(i)*3 + 1})
			if err != nil {
				return nil, err
			}
			ests = append(ests, n, l)
		}
		runCopies(s, ests)
		var naive, smart stats.Running
		for i := 0; i < trials; i++ {
			naive.Add(ests[2*i].Estimate() - truth)
			smart.Add(ests[2*i+1].Estimate() - truth)
		}
		rmse := func(r stats.Running) float64 {
			return math.Sqrt(r.Variance()+r.Mean()*r.Mean()) / truth
		}
		t.Rows = append(t.Rows, []string{
			d(int64(h)), d(g.Triangles()), d(g.MaxTriangleLoad()), f2(p),
			f3(rmse(naive)), f3(rmse(smart)),
		})
	}
	t.Notes = append(t.Notes, "*Naive error grows with the heavy-edge load h; the lightest-edge estimator stays flat.*")
	return t, nil
}

// AblationHvsExact (A2) compares the two-pass H_{e,τ} proxy against the
// three-pass exact T_e loads at equal sampling rate.
func AblationHvsExact(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "Stream-order proxy H_{e,τ} (2 passes) vs exact loads T_e (3 passes)",
		Claim:  "H averages Te/2 across a heavy edge's triangles, so the proxy costs little accuracy while saving a pass (Section 2.1)",
		Header: []string{"workload", "T", "p", "2-pass median rel. err", "3-pass median rel. err"},
	}
	workloads := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"planted-books", func() (*graph.Graph, error) { return gen.PlantedBooks(4, 80, 30, 0.3, seed) }},
		{"planted-uniform", func() (*graph.Graph, error) { return gen.PlantedTriangles(300, 40, 0.3, seed) }},
		{"erdos-renyi", func() (*graph.Graph, error) { return gen.ErdosRenyi(90, 0.25, seed) }},
	}
	for _, w := range workloads {
		g, err := w.g()
		if err != nil {
			return nil, err
		}
		truth := float64(g.Triangles())
		s := stream.Random(g, seed)
		const p = 0.2
		const trials = 40
		ests := make([]stream.Estimator, 0, 2*trials)
		for i := 0; i < trials; i++ {
			two, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: p, PairCap: 1 << 20, Seed: seed + uint64(i)*5 + 1})
			if err != nil {
				return nil, err
			}
			three, err := core.NewThreePassTriangle(core.TriangleConfig{SampleProb: p, Seed: seed + uint64(i)*5 + 1})
			if err != nil {
				return nil, err
			}
			ests = append(ests, two, three)
		}
		runCopies(s, ests)
		var e2, e3 []float64
		for i := 0; i < trials; i++ {
			e2 = append(e2, relErr(ests[2*i].Estimate(), truth))
			e3 = append(e3, relErr(ests[2*i+1].Estimate(), truth))
		}
		t.Rows = append(t.Rows, []string{w.name, d(g.Triangles()), f2(p), f3(median(e2)), f3(median(e3))})
	}
	return t, nil
}

// AblationGoodCycleFraction (A3) measures Lemma 4.2 empirically: the
// fraction of 4-cycles containing a good wedge, across workload classes.
func AblationGoodCycleFraction(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "Good 4-cycle fraction (Lemma 4.2, constant 40)",
		Claim:  "|good cycles| = Ω(T): at least a constant fraction of 4-cycles contain a wedge that is neither heavy nor overused",
		Header: []string{"workload", "T", "heavy edges", "overused wedges", "good fraction"},
	}
	workloads := []struct {
		name string
		g    func() (*graph.Graph, error)
	}{
		{"disjoint-C4", func() (*graph.Graph, error) { return gen.DisjointFourCycles(200), nil }},
		{"butterflies", func() (*graph.Graph, error) { return gen.BipartiteButterflies(80, 40, 6, seed) }},
		{"erdos-renyi", func() (*graph.Graph, error) { return gen.ErdosRenyi(60, 0.3, seed) }},
		{"K(2,80) skew", func() (*graph.Graph, error) { return gen.CompleteBipartite(2, 80), nil }},
		{"K(2,1200) skew", func() (*graph.Graph, error) { return gen.CompleteBipartite(2, 1200), nil }},
		{"K(12,12)", func() (*graph.Graph, error) { return gen.CompleteBipartite(12, 12), nil }},
	}
	for _, w := range workloads {
		g, err := w.g()
		if err != nil {
			return nil, err
		}
		st := core.ClassifyFourCycles(g, 40)
		t.Rows = append(t.Rows, []string{
			w.name, d(st.T), d(int64(st.HeavyEdges)), d(int64(st.OverusedWedges)), f3(st.GoodFraction()),
		})
	}
	t.Notes = append(t.Notes, "*Lemma 4.2 proves the fraction is at least 1/50; measured fractions are far higher on these workloads.*")
	return t, nil
}

// AblationSamplerKind (A4) compares bottom-k and fixed-probability edge
// sampling inside the two-pass triangle estimator at matched expected
// sample size.
func AblationSamplerKind(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "Bottom-k vs fixed-probability edge sampling in TwoPassTriangle",
		Claim:  "both realize the first-sight hash sampling the algorithm needs; bottom-k pins the space exactly",
		Header: []string{"T", "m", "sample", "bottom-k median rel. err", "fixed-p median rel. err"},
	}
	for _, T := range []int{128, 512} {
		g, err := plantedTriangleWorkload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		b := budget(8, g.M(), float64(T), 2.0/3.0, 8)
		p := float64(b) / float64(g.M())
		const trials = 30
		ests := make([]stream.Estimator, 0, 2*trials)
		for i := 0; i < trials; i++ {
			bk, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b, PairCap: b, Seed: seed + uint64(i)*11 + 1})
			if err != nil {
				return nil, err
			}
			fp, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: p, PairCap: b, Seed: seed + uint64(i)*11 + 1})
			if err != nil {
				return nil, err
			}
			ests = append(ests, bk, fp)
		}
		runCopies(s, ests)
		var ek, ep []float64
		for i := 0; i < trials; i++ {
			ek = append(ek, relErr(ests[2*i].Estimate(), float64(T)))
			ep = append(ep, relErr(ests[2*i+1].Estimate(), float64(T)))
		}
		t.Rows = append(t.Rows, []string{d(int64(T)), d(g.M()), d(int64(b)), f3(median(ek)), f3(median(ep))})
	}
	return t, nil
}

// AblationPassCrossover (A5) measures the required sample size of the
// one-pass and two-pass algorithms on both extremal families. On the
// Figure 1a family the one-pass estimator needs Θ(m/√T) while the two-pass
// needs only Θ(m/T); on the Figure 1b family both need Θ(m/T^{2/3}). The
// worst case over families is therefore m/√T for one pass versus m/T^{2/3}
// for two passes: the extra pass buys exactly the T^{1/6} factor the paper
// claims.
func AblationPassCrossover(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "1-pass m/√T vs 2-pass m/T^{2/3}: required samples on the extremal families",
		Claim:  "the extra pass buys a T^{1/6} space factor in the worst case",
		Header: []string{"family", "T", "m", "1p m′ required", "2p m′ required", "worst-case ratio T^{1/6}"},
	}
	type fam struct {
		name     string
		workload func(T, mTarget int, seed uint64) (*graph.Graph, error)
		sweep    []int
	}
	fams := []fam{
		{"fig-1a (hub K_{√T,√T})", pjHardWorkload, []int{1024, 4096, 16384}},
		{"fig-1b (K_{T^{1/3}}³)", tripartiteWorkload, []int{4096, 32768, 262144}},
	}
	exps := make(map[string]float64)
	for _, f := range fams {
		var Ts, r1s, r2s []float64
		for _, T := range f.sweep {
			g, err := f.workload(T, triangleMTarget, seed+uint64(T))
			if err != nil {
				return nil, err
			}
			s := stream.Random(g, seed)
			r1, err := requiredBudget(s, float64(T), g.M(), searchTrials, targetRelErr, func(b int, sd uint64) (stream.Estimator, error) {
				return baseline.NewOnePassTriangle(baseline.Config{SampleSize: b, Seed: sd + seed})
			})
			if err != nil {
				return nil, err
			}
			r2, err := requiredBudget(s, float64(T), g.M(), searchTrials, targetRelErr, func(b int, sd uint64) (stream.Estimator, error) {
				return core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b, PairCap: 8 * b, Seed: sd + seed})
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f.name, d(int64(T)), d(g.M()), d(int64(r1)), d(int64(r2)),
				f2(math.Pow(float64(T), 1.0/6.0)),
			})
			Ts = append(Ts, float64(T))
			r1s = append(r1s, float64(r1))
			r2s = append(r2s, float64(r2))
		}
		e1, _ := stats.FitPowerLaw(Ts, r1s)
		e2, _ := stats.FitPowerLaw(Ts, r2s)
		exps["1p "+f.name] = e1
		exps["2p "+f.name] = e2
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"*Fitted required-sample exponents vs T — 1-pass: %.2f on fig-1a, %.2f on fig-1b; 2-pass: %.2f on fig-1a, %.2f on fig-1b.*",
		exps["1p fig-1a (hub K_{√T,√T})"], exps["1p fig-1b (K_{T^{1/3}}³)"],
		exps["2p fig-1a (hub K_{√T,√T})"], exps["2p fig-1b (K_{T^{1/3}}³)"]))
	t.Notes = append(t.Notes,
		"*Each algorithm's worst case is its flatter exponent: one pass is pinned by fig-1a at ≈ T^{-1/2}, two passes by fig-1b at ≈ T^{-2/3} — the extra pass buys the paper's T^{1/6} factor.*")
	return t, nil
}
