package exp

import (
	"fmt"
	"math"

	"adjstream/internal/arbitrary"
	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// starredWorkload plants T disjoint triangles plus one star of the given
// degree: the star inflates P2 (the wedge count) without touching m much or
// T at all — the structure that separates the two streaming models.
func starredWorkload(T, starDeg int) (*graph.Graph, error) {
	b := graph.NewBuilder()
	for i := 0; i < T; i++ {
		v := graph.V(3 * i)
		if err := b.Add(v, v+1); err != nil {
			return nil, err
		}
		if err := b.Add(v+1, v+2); err != nil {
			return nil, err
		}
		if err := b.Add(v, v+2); err != nil {
			return nil, err
		}
	}
	hub := graph.V(3 * T)
	for i := 1; i <= starDeg; i++ {
		if err := b.Add(hub, hub+graph.V(i)); err != nil {
			return nil, err
		}
	}
	g := b.Graph()
	if got := g.Triangles(); got != int64(T) {
		return nil, fmt.Errorf("exp: starred workload has %d triangles, want %d", got, T)
	}
	return g, nil
}

// ModelComparison (M1) contrasts the two streaming models on star-inflated
// workloads: the arbitrary-order two-pass wedge estimator must store the
// wedges inside its edge sample, so its space requirement scales with P2;
// the adjacency-list two-pass algorithm of Theorem 3.7 never materializes
// wedges and is untouched by the star. This is the operational content of
// the paper's model choice.
func ModelComparison(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "M1",
		Title:  "Adjacency-list vs arbitrary-order model: required space as P2 grows",
		Claim:  "the adjacency-list promise makes triangle counting independent of the wedge count P2 (cf. §1.1)",
		Header: []string{"star degree", "m", "P2", "T", "AL 2-pass space (words)", "AO 2-pass space (words)"},
	}
	const T = 256
	var p2s, aoSpaces []float64
	for _, starDeg := range []int{200, 800, 3200} {
		g, err := starredWorkload(T, starDeg)
		if err != nil {
			return nil, err
		}
		// Adjacency-list model at a fixed, accuracy-sufficient budget.
		alStream := stream.Random(g, seed)
		alReq, err := requiredBudget(alStream, T, g.M(), searchTrials, targetRelErr, func(b int, sd uint64) (stream.Estimator, error) {
			return core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b, PairCap: 8 * b, Seed: sd + seed})
		})
		if err != nil {
			return nil, err
		}
		alSpace, err := alSpaceAt(alStream, alReq, seed)
		if err != nil {
			return nil, err
		}
		// Arbitrary-order model: smallest sampling rate achieving the same
		// guarantee; report its measured space (edges + wedges).
		aoStream := arbitrary.FromGraph(g, seed)
		aoSpace, err := arbRequiredSpace(aoStream, T, searchTrials, targetRelErr, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(int64(starDeg)), d(g.M()), d(g.WedgeCount()), d(int64(T)),
			d(alSpace), d(aoSpace),
		})
		p2s = append(p2s, float64(g.WedgeCount()))
		aoSpaces = append(aoSpaces, float64(aoSpace))
	}
	e, _ := stats.FitPowerLaw(p2s, aoSpaces)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"*Arbitrary-order required space grows with P2 (fitted exponent %.2f); the adjacency-list column is flat — the model's promise at work.*", e))
	return t, nil
}

// alSpaceAt measures the adjacency-list estimator's space at budget b.
func alSpaceAt(s *stream.Stream, b int, seed uint64) (int64, error) {
	alg, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: b, PairCap: 8 * b, Seed: seed + 1})
	if err != nil {
		return 0, err
	}
	runOne(s, alg)
	return alg.SpaceWords(), nil
}

// FourCycleModelComparison (M3) A/Bs 4-cycle counting across the model
// axis: the paper's two-pass adjacency-list estimator (Theorem 4.6, an
// O(1)-approximation at m′ = Θ(m/T^{3/8})) against the two three-pass
// arbitrary-order estimators — Vorotnikova's improved algorithm and the
// Lüderssen–Neumann–Peng near-optimal variant — at the wedge-sampling rate
// p = Θ(1/T^{1/4}). The arbitrary-order pair buys a (1±ε) guarantee that
// the two-pass adjacency-list algorithm does not give, at the price of one
// extra pass and no use of the list promise; the table shows both sides of
// that trade on the same workloads.
func FourCycleModelComparison(seed uint64) (*Table, error) {
	t := &Table{
		ID:    "M3",
		Title: "4-cycle estimation across the model axis: AL 2-pass vs arbitrary-order 3-pass",
		Claim: "three arbitrary-order passes give (1±ε) 4-cycle estimates where two adjacency-list passes give O(1)-approximation (Theorem 4.6 vs arXiv 2007.13466/2604.00828)",
		Header: []string{
			"T (C4)", "m",
			"AL 2p rel err", "AL space",
			"AO-V 3p rel err", "AO-V space",
			"AO-LNP 3p rel err", "AO-LNP space",
		},
	}
	const trials = 15
	for _, k := range []int{5, 8, 12} {
		g, err := gen.BipartiteButterflies(300, 60, k, seed)
		if err != nil {
			return nil, err
		}
		T := float64(g.FourCycles())

		// Adjacency-list side: Theorem 4.6 at its prescribed budget.
		b := budget(10, g.M(), T, 3.0/8.0, 8)
		alStream := stream.Random(g, seed)
		alEsts := make([]stream.Estimator, trials)
		for i := range alEsts {
			alg, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleSize: b, WedgeCap: 4 * b, Seed: seed + uint64(i)*37})
			if err != nil {
				return nil, err
			}
			alEsts[i] = alg
		}
		runCopies(alStream, alEsts)
		var alErrs []float64
		var alSpace int64
		for _, e := range alEsts {
			alErrs = append(alErrs, relErr(e.Estimate(), T))
			if sp := e.SpaceWords(); sp > alSpace {
				alSpace = sp
			}
		}

		// Arbitrary-order side: both three-pass estimators at the rate
		// where the expected number of surviving wedges per 4-cycle is
		// Ω(1) — the space point the (1±ε) analyses prescribe.
		p := math.Min(1, 3/math.Pow(T, 0.25))
		aoStream := arbitrary.FromGraph(g, seed)
		measure := func(mk func(seed uint64) (arbitrary.Estimator, error)) (float64, int64, error) {
			var errs []float64
			var space int64
			for i := 0; i < trials; i++ {
				alg, err := mk(seed + uint64(i)*0x51ed + 97)
				if err != nil {
					return 0, 0, err
				}
				arbitrary.Run(aoStream, alg)
				errs = append(errs, relErr(alg.Estimate(), T))
				if sp := alg.SpaceWords(); sp > space {
					space = sp
				}
			}
			return median(errs), space, nil
		}
		vErr, vSpace, err := measure(func(sd uint64) (arbitrary.Estimator, error) {
			return arbitrary.NewThreePassFourCycle(p, sd)
		})
		if err != nil {
			return nil, err
		}
		lnpErr, lnpSpace, err := measure(func(sd uint64) (arbitrary.Estimator, error) {
			return arbitrary.NewNearOptFourCycle(p, 0, sd)
		})
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			d(int64(T)), d(g.M()),
			f3(median(alErrs)), d(alSpace),
			f3(vErr), d(vSpace),
			f3(lnpErr), d(lnpSpace),
		})
	}
	t.Notes = append(t.Notes,
		"*AL runs Theorem 4.6 at m′ = Θ(m/T^{3/8}); AO runs both three-pass estimators at p = Θ(1/T^{1/4}). Space is the peak meter reading over the trials.*",
		"*The arbitrary-order column trades one extra pass for a (1±ε) guarantee; the adjacency-list column stays at two passes but only an O(1) ratio — the 4-cycle face of the model comparison started in M1.*")
	return t, nil
}

// arbRequiredSpace searches for the smallest sampling probability at which
// the arbitrary-order wedge estimator meets the guarantee, and returns the
// measured peak space there.
func arbRequiredSpace(s *arbitrary.Stream, truth float64, trials int, target float64, seed uint64) (int64, error) {
	for p := 1.0 / 128; ; p *= math.Sqrt2 {
		if p > 1 {
			p = 1
		}
		var errs []float64
		var maxSpace int64
		for i := 0; i < trials; i++ {
			alg, err := arbitrary.NewTwoPassWedge(p, seed+uint64(i)*0x51ed+271)
			if err != nil {
				return 0, err
			}
			arbitrary.Run(s, alg)
			errs = append(errs, stats.RelErr(alg.Estimate(), truth))
			if sp := alg.SpaceWords(); sp > maxSpace {
				maxSpace = sp
			}
		}
		if stats.Quantile(errs, 0.7) <= target || p >= 1 {
			return maxSpace, nil
		}
	}
}
