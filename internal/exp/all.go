package exp

import "fmt"

// Experiment is a named runnable experiment.
type Experiment struct {
	ID  string
	Run func(seed uint64) (*Table, error)
}

// Registry lists every experiment in presentation order: the 12 Table 1
// rows, the Figure 1 summary, and the 5 ablations.
func Registry() []Experiment {
	return []Experiment{
		{"T1.R1", Table1Row1WedgeSampler},
		{"T1.R2", Table1Row2OnePass},
		{"T1.R3", Table1Row3EdgeSample},
		{"T1.R4", Table1Row4ThreePass},
		{"T1.R5", Table1Row5Distinguisher},
		{"T1.R6", Table1Row6TwoPassTriangle},
		{"T1.R7", Table1Row7LowerBoundPJ},
		{"T1.R8", Table1Row8LowerBound3Disj},
		{"T1.R9", Table1Row9TwoPassFourCycle},
		{"T1.R10", Table1Row10LowerBoundIndex},
		{"T1.R11", Table1Row11LowerBoundDisj},
		{"T1.R12", Table1Row12LowerBoundLong},
		{"F1", Figure1Gadgets},
		{"M1", ModelComparison},
		{"M2", OrderSensitivity},
		{"M3", FourCycleModelComparison},
		{"A1", AblationLightestEdge},
		{"A2", AblationHvsExact},
		{"A3", AblationGoodCycleFraction},
		{"A4", AblationSamplerKind},
		{"A5", AblationPassCrossover},
		{"A6", AdaptiveVsOracle},
	}
}

// Run executes the experiment with the given id, or all of them for "all",
// returning the tables in order. When a journal writer is installed (see
// SetJournal), every run appends a provenance header, one grid-point record
// per table row, and a per-experiment trailer with the telemetry metrics
// snapshot and driver-counter delta.
func Run(id string, seed uint64) ([]*Table, error) {
	if journaling() {
		if err := journalRunHeader(seed); err != nil {
			return nil, fmt.Errorf("exp: writing journal header: %w", err)
		}
	}
	var out []*Table
	for _, e := range Registry() {
		if id != "all" && e.ID != id {
			continue
		}
		t, err := runExperimentJournaled(e, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exp: unknown experiment id %q", id)
	}
	return out, nil
}
