package exp

import (
	"adjstream/internal/core"
	"adjstream/internal/stream"
)

// AdaptiveVsOracle (A6) measures the cost of not knowing T: the adaptive
// two-pass estimator (which self-tunes its bottom-k budget from the running
// pair count) against the oracle two-pass estimator configured with the
// C·m/T^{2/3} budget computed from the true T.
func AdaptiveVsOracle(seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A6",
		Title:  "Adaptive budget (T unknown) vs oracle budget (T known)",
		Claim:  "Theorem 3.7's budget is stated in the unknown T; shrinking bottom-k recovers it online at small accuracy cost",
		Header: []string{"T", "m", "oracle m′", "adaptive final m′", "oracle med. err", "adaptive med. err"},
	}
	for _, T := range []int{256, 1024, 4096} {
		g, err := plantedTriangleWorkload(T, triangleMTarget, seed+uint64(T))
		if err != nil {
			return nil, err
		}
		s := stream.Random(g, seed)
		oracleBudget := budget(8, g.M(), float64(T), 2.0/3.0, 64)
		var oErrs, aErrs []float64
		var finalSum int64
		const trials = 25
		oracles := make([]stream.Estimator, trials)
		adaptives := make([]*core.AdaptiveTwoPassTriangle, trials)
		ests := make([]stream.Estimator, 0, 2*trials)
		for i := 0; i < trials; i++ {
			o, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleSize: oracleBudget, PairCap: 8 * oracleBudget, Seed: seed + uint64(i)*7 + 1})
			if err != nil {
				return nil, err
			}
			a, err := core.NewAdaptiveTwoPassTriangle(core.AdaptiveConfig{InitialSample: int(g.M()), Seed: seed + uint64(i)*7 + 1})
			if err != nil {
				return nil, err
			}
			oracles[i], adaptives[i] = o, a
			ests = append(ests, o, a)
		}
		runCopies(s, ests)
		for i := 0; i < trials; i++ {
			oErrs = append(oErrs, relErr(oracles[i].Estimate(), float64(T)))
			aErrs = append(aErrs, relErr(adaptives[i].Estimate(), float64(T)))
			finalSum += int64(adaptives[i].FinalSample())
		}
		t.Rows = append(t.Rows, []string{
			d(int64(T)), d(g.M()), d(int64(oracleBudget)), d(finalSum / trials),
			f3(median(oErrs)), f3(median(aErrs)),
		})
	}
	t.Notes = append(t.Notes,
		"*The adaptive run converges to a budget within a small factor of the oracle's and pays little accuracy, closing the \"T is unknown\" gap between the theorem statement and a deployable system.*")
	return t, nil
}
