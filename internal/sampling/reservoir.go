package sampling

import "math/rand/v2"

// Reservoir maintains a uniformly random size-k subset of the items offered
// so far (all items if fewer than k have been offered), using classic
// reservoir sampling. It is deterministic given the seed.
type Reservoir[T any] struct {
	k     int
	n     int64 // items offered
	items []T
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of capacity k seeded deterministically.
// k must be positive.
func NewReservoir[T any](k int, seed uint64) *Reservoir[T] {
	if k <= 0 {
		panic("sampling: reservoir capacity must be positive")
	}
	return &Reservoir[T]{
		k:   k,
		rng: rand.New(rand.NewPCG(seed, seed^0xe7037ed1a0b428db)),
	}
}

// Offer presents an item. It reports whether the item was accepted into the
// reservoir and, if accepting evicted a previous item, returns that item
// with evicted=true.
func (r *Reservoir[T]) Offer(item T) (victim T, evicted, accepted bool) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return victim, false, true
	}
	j := r.rng.Int64N(r.n)
	if j >= int64(r.k) {
		return victim, false, false
	}
	victim = r.items[j]
	r.items[j] = item
	return victim, true, true
}

// Items returns the current sample. The slice is shared; do not modify.
func (r *Reservoir[T]) Items() []T { return r.items }

// Len returns the current sample size.
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Cap returns the reservoir capacity k.
func (r *Reservoir[T]) Cap() int { return r.k }

// Offered returns the total number of items offered so far.
func (r *Reservoir[T]) Offered() int64 { return r.n }

// Saturated reports whether more items have been offered than fit, i.e. the
// sample is a strict subset of the offered items.
func (r *Reservoir[T]) Saturated() bool { return r.n > int64(r.k) }
