package sampling

import (
	"container/heap"
	"fmt"

	"adjstream/internal/graph"
)

// EdgeSampler decides streaming membership of edges in the sample set S.
// Both samplers share the crucial first-sight property: Offer must be called
// the first time an edge appears (in either orientation), and an edge that
// is in the final sample was accepted at that moment and never left — except
// under bottom-k, which may evict and reports evictions to the caller.
type EdgeSampler interface {
	// Offer presents edge {u,v} at its first appearance and reports whether
	// it is (currently) in the sample.
	Offer(u, v graph.V) bool
	// Contains reports whether {u,v} is currently in the sample.
	Contains(u, v graph.V) bool
	// Len returns the current sample size.
	Len() int
	// InclusionScale returns the factor 1/Pr[e ∈ S] used by estimators,
	// given the final number of edges m (needed by bottom-k).
	InclusionScale(m int64) float64
}

// FixedProb includes each edge independently with probability p, decided by
// a seeded hash, so both appearances of an edge agree.
type FixedProb struct {
	seed      uint64
	threshold uint64
	p         float64
	set       map[graph.Edge]struct{}
}

// NewFixedProb returns a hash sampler with inclusion probability p. p must
// lie in (0,1]; anything else (including NaN) is a configuration error — a
// sampler that can never accept an edge turns into a silent zero estimate
// downstream, so the mistake is rejected here instead.
func NewFixedProb(p float64, seed uint64) (*FixedProb, error) {
	if !(p > 0 && p <= 1) {
		return nil, fmt.Errorf("sampling: fixed-prob rate %v outside (0,1]", p)
	}
	return &FixedProb{
		seed:      seed,
		threshold: ProbThreshold(p),
		p:         p,
		set:       make(map[graph.Edge]struct{}),
	}, nil
}

// Offer implements EdgeSampler.
func (f *FixedProb) Offer(u, v graph.V) bool {
	if HashEdge(f.seed, u, v) < f.threshold {
		f.set[graph.Edge{U: u, V: v}.Norm()] = struct{}{}
		return true
	}
	return false
}

// Contains implements EdgeSampler.
func (f *FixedProb) Contains(u, v graph.V) bool {
	_, ok := f.set[graph.Edge{U: u, V: v}.Norm()]
	return ok
}

// Len implements EdgeSampler.
func (f *FixedProb) Len() int { return len(f.set) }

// InclusionScale implements EdgeSampler.
func (f *FixedProb) InclusionScale(m int64) float64 {
	if f.p <= 0 {
		return 0
	}
	return 1 / f.p
}

// P returns the inclusion probability.
func (f *FixedProb) P() float64 { return f.p }

// Edges returns the edges currently in the sample (unsorted).
func (f *FixedProb) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(f.set))
	for e := range f.set {
		out = append(out, e)
	}
	return out
}

// BottomK keeps the k edges with the smallest hash values seen so far. The
// final sample is a uniformly random size-k subset of the edges (or all of
// them if fewer than k arrive). Because the running threshold (the k-th
// smallest hash) only decreases, every edge in the final sample has been in
// the running sample since its first appearance.
type BottomK struct {
	seed    uint64
	k       int
	h       hashHeap // max-heap on hash
	onEvict func(graph.Edge)
}

type hashEntry struct {
	e graph.Edge
	h uint64
}

type hashHeap struct {
	entries []hashEntry
	pos     map[graph.Edge]int
}

func (h *hashHeap) Len() int           { return len(h.entries) }
func (h *hashHeap) Less(i, j int) bool { return h.entries[i].h > h.entries[j].h } // max-heap
func (h *hashHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].e] = i
	h.pos[h.entries[j].e] = j
}
func (h *hashHeap) Push(x any) {
	e := x.(hashEntry)
	h.pos[e.e] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *hashHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	h.entries = old[:n-1]
	delete(h.pos, e.e)
	return e
}

// NewBottomK returns a bottom-k sampler of capacity k. onEvict, if non-nil,
// is invoked whenever a previously accepted edge leaves the sample, letting
// callers discard dependent state (e.g. collected triangles).
func NewBottomK(k int, seed uint64, onEvict func(graph.Edge)) *BottomK {
	if k <= 0 {
		panic("sampling: bottom-k capacity must be positive")
	}
	b := &BottomK{seed: seed, k: k, onEvict: onEvict}
	b.h.pos = make(map[graph.Edge]int)
	return b
}

// Offer implements EdgeSampler. Offering an edge that is already in the
// sample is a no-op reporting true, so both stream appearances of an edge
// may be offered safely.
func (b *BottomK) Offer(u, v graph.V) bool {
	e := graph.Edge{U: u, V: v}.Norm()
	if _, ok := b.h.pos[e]; ok {
		return true
	}
	hv := HashEdge(b.seed, u, v)
	if len(b.h.entries) < b.k {
		heap.Push(&b.h, hashEntry{e, hv})
		return true
	}
	if hv >= b.h.entries[0].h {
		return false
	}
	victim := heap.Pop(&b.h).(hashEntry)
	heap.Push(&b.h, hashEntry{e, hv})
	if b.onEvict != nil {
		b.onEvict(victim.e)
	}
	return true
}

// Shrink reduces the sampler's capacity to newK (no-op if newK ≥ current),
// evicting the largest-hash edges. Because capacity only decreases, the
// final sample remains exactly the bottom-newK set by hash — a uniformly
// random subset — and every surviving edge has been in the sample since its
// first appearance, preserving the property the two-pass algorithm needs.
// This is what makes adaptive space budgets possible when T is unknown.
func (b *BottomK) Shrink(newK int) {
	if newK < 1 || newK >= b.k {
		return
	}
	b.k = newK
	for len(b.h.entries) > b.k {
		victim := heap.Pop(&b.h).(hashEntry)
		if b.onEvict != nil {
			b.onEvict(victim.e)
		}
	}
}

// K returns the current capacity.
func (b *BottomK) K() int { return b.k }

// Contains implements EdgeSampler.
func (b *BottomK) Contains(u, v graph.V) bool {
	_, ok := b.h.pos[graph.Edge{U: u, V: v}.Norm()]
	return ok
}

// Len implements EdgeSampler.
func (b *BottomK) Len() int { return len(b.h.entries) }

// InclusionScale implements EdgeSampler. For bottom-k the final sample has
// min(k, m) edges, each equally likely, so Pr[e ∈ S] = min(k,m)/m.
func (b *BottomK) InclusionScale(m int64) float64 {
	if m <= 0 {
		return 0
	}
	sz := int64(b.k)
	if m < sz {
		sz = m
	}
	return float64(m) / float64(sz)
}

// Edges returns the edges currently in the sample (unsorted).
func (b *BottomK) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(b.h.entries))
	for _, e := range b.h.entries {
		out = append(out, e.e)
	}
	return out
}
