// Package sampling provides the streaming samplers used by the cycle
// counting algorithms: seeded 64-bit hashing of edges (Hash64, HashEdge),
// uniform fixed-size reservoir sampling (Reservoir), fixed-probability hash
// sampling (FixedProb), and bottom-k hash sampling of edges (BottomK).
//
// FixedProb and BottomK both implement EdgeSampler and both realize the
// paper's "hash-based sampling method": an edge's membership in the sample
// is a function of its hash, so it is decided at the edge's FIRST
// appearance in the stream — the first-sight property the two-pass
// correctness argument (Section 2.1 of the paper) depends on. They differ
// in the guarantee: FixedProb includes each edge independently with
// probability p, while BottomK keeps the k smallest-hash edges — exactly
// min(k, m) of them, a uniformly random subset.
//
// BottomK additionally supports shrinking its capacity mid-stream
// (Shrink): because the inclusion threshold only decreases, every edge of
// the final sample has still been tracked continuously since its first
// appearance, which is what makes the adaptive space budgets of
// AdaptiveTwoPassTriangle sound when T is unknown. Evictions are reported
// through an optional callback so estimators can retract dependent state
// (collected triangles, wedges) and stay unbiased.
//
// Everything is deterministic given its seed; determinism is what lets
// split runs merge bit-identically and the result cache key on
// (options, seed).
package sampling
