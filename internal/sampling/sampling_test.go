package sampling

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"adjstream/internal/graph"
)

func TestHashEdgeSymmetric(t *testing.T) {
	f := func(seed uint64, u, v int64) bool {
		return HashEdge(seed, graph.V(u), graph.V(v)) == HashEdge(seed, graph.V(v), graph.V(u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashEdgeSeedSensitivity(t *testing.T) {
	a := HashEdge(1, 10, 20)
	b := HashEdge(2, 10, 20)
	if a == b {
		t.Fatal("different seeds should (almost surely) give different hashes")
	}
}

func TestHash64Uniformish(t *testing.T) {
	// Crude uniformity check: the fraction of hashes below a threshold for
	// p=0.25 should be close to 0.25.
	thr := ProbThreshold(0.25)
	n, below := 20000, 0
	for i := 0; i < n; i++ {
		if Hash64(99, uint64(i)) < thr {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("fraction below threshold = %v, want ≈0.25", frac)
	}
}

func TestProbThresholdBounds(t *testing.T) {
	if ProbThreshold(0) != 0 {
		t.Error("p=0 should give threshold 0")
	}
	if ProbThreshold(-1) != 0 {
		t.Error("p<0 should give threshold 0")
	}
	if ProbThreshold(1) != ^uint64(0) {
		t.Error("p=1 should give max threshold")
	}
	if ProbThreshold(2) != ^uint64(0) {
		t.Error("p>1 should give max threshold")
	}
	if ProbThreshold(0.5) < 1<<62 || ProbThreshold(0.5) > 3<<62 {
		t.Error("p=0.5 threshold out of plausible range")
	}
}

// TestProbThresholdMonotoneSaturation is the regression test for the
// unclamped float→uint64 conversion: the threshold must be monotone
// non-decreasing in p, never wrap around, and reach ^uint64(0) only at
// p ≥ 1 — for any p < 1 the threshold must leave headroom, because a
// saturated threshold makes every hash pass and silently turns a
// subsampling estimator into an exact counter with the wrong scale.
func TestProbThresholdMonotoneSaturation(t *testing.T) {
	// Dense grid plus the adversarial boundary: the largest float64 below 1
	// and its neighbors, where the old conversion was implementation-defined
	// (the scaled product sits right at the 2^64 boundary).
	ps := []float64{math.SmallestNonzeroFloat64, 1e-300, 1e-18, 1e-9}
	for p := 0.001; p < 1; p += 0.001 {
		ps = append(ps, p)
	}
	for p, n := math.Nextafter(1, 0), 0; n < 8; n++ {
		ps = append(ps, p)
		p = math.Nextafter(p, 0)
	}
	sort.Float64s(ps)
	prev := uint64(0)
	for _, p := range ps {
		thr := ProbThreshold(p)
		if thr < prev {
			t.Fatalf("ProbThreshold not monotone: p=%v gives %d < previous %d", p, thr, prev)
		}
		if thr == ^uint64(0) {
			t.Fatalf("ProbThreshold saturated at p=%v < 1", p)
		}
		prev = thr
	}
	// The boundary value itself: 1-2⁻⁵³ scales to exactly (2⁵³-1)·2¹¹, the
	// largest representable product below 2⁶⁴ — still not saturated.
	if got, want := ProbThreshold(math.Nextafter(1, 0)), uint64(1<<53-1)<<11; got != want {
		t.Fatalf("ProbThreshold(1-ulp) = %d, want %d", got, want)
	}
	// Saturation happens exactly at p ≥ 1 (and +Inf); NaN samples nothing.
	for _, p := range []float64{1, math.Nextafter(1, 2), 1.5, math.Inf(1)} {
		if ProbThreshold(p) != ^uint64(0) {
			t.Fatalf("ProbThreshold(%v) should saturate", p)
		}
	}
	for _, p := range []float64{math.NaN(), math.Inf(-1)} {
		if ProbThreshold(p) != 0 {
			t.Fatalf("ProbThreshold(%v) = %d, want 0", p, ProbThreshold(p))
		}
	}
}

func TestNewFixedProbRejectsBadRates(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.0000000000000002, 2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewFixedProb(p, 1); err == nil {
			t.Errorf("NewFixedProb(%v) should fail", p)
		}
	}
	for _, p := range []float64{math.SmallestNonzeroFloat64, 0.5, 1} {
		if _, err := NewFixedProb(p, 1); err != nil {
			t.Errorf("NewFixedProb(%v): %v", p, err)
		}
	}
}

func TestReservoirKeepsAllWhenUnderCapacity(t *testing.T) {
	r := NewReservoir[int](10, 1)
	for i := 0; i < 7; i++ {
		if _, ev, acc := r.Offer(i); ev || !acc {
			t.Fatal("under capacity: every item accepted, none evicted")
		}
	}
	if r.Len() != 7 || r.Saturated() {
		t.Fatalf("Len=%d Saturated=%v", r.Len(), r.Saturated())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Offer 0..99 into a size-10 reservoir many times; each item should be
	// kept with probability ≈ 0.1.
	const trials = 3000
	counts := make([]int, 100)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](10, uint64(trial)+1)
		for i := 0; i < 100; i++ {
			r.Offer(i)
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.1) > 0.03 {
			t.Fatalf("item %d kept with frequency %v, want ≈0.1", i, frac)
		}
	}
}

func TestReservoirEvictionReporting(t *testing.T) {
	r := NewReservoir[int](1, 3)
	r.Offer(42)
	sawEvict := false
	for i := 0; i < 100; i++ {
		if v, ev, acc := r.Offer(i); ev {
			sawEvict = true
			if !acc {
				t.Fatal("eviction implies acceptance")
			}
			_ = v
		}
	}
	if !sawEvict {
		t.Fatal("expected at least one eviction in 100 offers to a size-1 reservoir")
	}
	if r.Offered() != 101 {
		t.Fatalf("Offered = %d, want 101", r.Offered())
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewReservoir[int](0, 1)
}

func TestFixedProbConsistency(t *testing.T) {
	s, err := NewFixedProb(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.V(0); u < 50; u++ {
		for v := u + 1; v < 50; v++ {
			first := s.Offer(u, v)
			if got := s.Contains(v, u); got != first {
				t.Fatalf("Contains disagrees with Offer for {%d,%d}", u, v)
			}
			// Offering the reverse orientation must agree.
			if second := s.Offer(v, u); second != first {
				t.Fatalf("Offer not orientation-symmetric for {%d,%d}", u, v)
			}
		}
	}
}

func TestFixedProbRate(t *testing.T) {
	s, err := NewFixedProb(0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	n, in := 0, 0
	for u := graph.V(0); u < 100; u++ {
		for v := u + 1; v < 100; v++ {
			n++
			if s.Offer(u, v) {
				in++
			}
		}
	}
	frac := float64(in) / float64(n)
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("inclusion rate %v, want ≈0.3", frac)
	}
	if s.InclusionScale(int64(n)) != 1/0.3 {
		t.Fatalf("InclusionScale = %v", s.InclusionScale(int64(n)))
	}
}

func TestBottomKExactSize(t *testing.T) {
	b := NewBottomK(25, 5, nil)
	for u := graph.V(0); u < 40; u++ {
		b.Offer(u, u+1000)
	}
	if b.Len() != 25 {
		t.Fatalf("Len = %d, want 25", b.Len())
	}
	if len(b.Edges()) != 25 {
		t.Fatalf("Edges len = %d, want 25", len(b.Edges()))
	}
}

func TestBottomKKeepsAllWhenSmall(t *testing.T) {
	b := NewBottomK(100, 5, nil)
	for u := graph.V(0); u < 10; u++ {
		if !b.Offer(u, u+1000) {
			t.Fatal("under capacity: all offers accepted")
		}
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	if b.InclusionScale(10) != 1 {
		t.Fatalf("scale = %v, want 1 when m ≤ k", b.InclusionScale(10))
	}
}

func TestBottomKKeepsSmallestHashes(t *testing.T) {
	const k, n = 10, 200
	b := NewBottomK(k, 9, nil)
	type eh struct {
		e graph.Edge
		h uint64
	}
	var all []eh
	for u := graph.V(0); u < n; u++ {
		e := graph.Edge{U: u, V: u + 1000}
		all = append(all, eh{e, HashEdge(9, e.U, e.V)})
		b.Offer(e.U, e.V)
	}
	// Find the k smallest hashes.
	want := map[graph.Edge]bool{}
	for i := 0; i < k; i++ {
		best := -1
		for j, x := range all {
			if want[x.e] {
				continue
			}
			if best == -1 || x.h < all[best].h {
				best = j
			}
		}
		want[all[best].e] = true
	}
	for _, e := range b.Edges() {
		if !want[e] {
			t.Fatalf("edge %v in sample but not among k smallest hashes", e)
		}
	}
}

func TestBottomKEvictionCallbackAndContains(t *testing.T) {
	evicted := map[graph.Edge]bool{}
	b := NewBottomK(5, 13, func(e graph.Edge) { evicted[e] = true })
	for u := graph.V(0); u < 50; u++ {
		b.Offer(u, u+1000)
	}
	if len(evicted) == 0 {
		t.Fatal("expected evictions")
	}
	for e := range evicted {
		if b.Contains(e.U, e.V) {
			t.Fatalf("evicted edge %v still reported present", e)
		}
	}
	for _, e := range b.Edges() {
		if evicted[e] {
			t.Fatalf("sample edge %v was reported evicted", e)
		}
		if !b.Contains(e.U, e.V) || !b.Contains(e.V, e.U) {
			t.Fatalf("Contains false for sample edge %v", e)
		}
	}
}

func TestBottomKFirstSightProperty(t *testing.T) {
	// Every edge in the final sample must have been accepted at its offer
	// and never evicted — i.e. accepted(e) && !evicted(e).
	accepted := map[graph.Edge]bool{}
	evicted := map[graph.Edge]bool{}
	b := NewBottomK(8, 21, func(e graph.Edge) { evicted[e] = true })
	for u := graph.V(0); u < 100; u++ {
		e := graph.Edge{U: u, V: u + 500}
		if b.Offer(e.U, e.V) {
			accepted[e] = true
		}
	}
	for _, e := range b.Edges() {
		if !accepted[e] || evicted[e] {
			t.Fatalf("final edge %v: accepted=%v evicted=%v", e, accepted[e], evicted[e])
		}
	}
}

func TestBottomKInclusionScale(t *testing.T) {
	b := NewBottomK(10, 1, nil)
	if got := b.InclusionScale(100); got != 10 {
		t.Fatalf("scale = %v, want 10", got)
	}
	if got := b.InclusionScale(0); got != 0 {
		t.Fatalf("scale(0) = %v, want 0", got)
	}
}

func TestBottomKPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewBottomK(0, 1, nil)
}
