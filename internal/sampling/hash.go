package sampling

import "adjstream/internal/graph"

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong
// 64-bit mixer suitable for hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 hashes x under the given seed.
func Hash64(seed, x uint64) uint64 {
	return splitmix64(splitmix64(seed) ^ splitmix64(x))
}

// HashEdge hashes the undirected edge {u,v} symmetrically under seed: both
// orientations produce the same value, so a sampler can decide membership
// the first time either endpoint's adjacency list presents the edge.
func HashEdge(seed uint64, u, v graph.V) uint64 {
	if u > v {
		u, v = v, u
	}
	return Hash64(seed, splitmix64(uint64(u))^splitmix64(uint64(v))*0x2545f4914f6cdd1d)
}

// ProbThreshold converts an inclusion probability p ∈ [0,1] to a uint64
// threshold such that a uniform hash is below it with probability p. The
// mapping is monotone in p and reaches ^uint64(0) only at p ≥ 1: the scaled
// product is clamped before the float→uint64 conversion, because converting
// a float64 ≥ 2^64 to uint64 is implementation-defined in Go and would
// silently corrupt the threshold. NaN maps to 0 (nothing sampled) rather
// than leaking through the conversion.
func ProbThreshold(p float64) uint64 {
	switch {
	case p >= 1:
		return ^uint64(0)
	case p > 0:
		v := p * float64(1<<63) * 2
		if v >= float64(1<<63)*2 {
			return ^uint64(0)
		}
		return uint64(v)
	default: // p ≤ 0 or NaN
		return 0
	}
}
