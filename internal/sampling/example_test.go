package sampling_test

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
)

// A bottom-k sampler keeps the min(k, m) smallest-hash edges — a uniformly
// random subset whose membership is decided at each edge's first
// appearance. Offering a retained edge again is a no-op reporting true, so
// both stream appearances of an edge may be offered safely.
func ExampleBottomK() {
	s := sampling.NewBottomK(8, 1, nil)
	for u := graph.V(0); u < 100; u++ {
		s.Offer(u, u+1000)
	}
	fmt.Println("kept:", s.Len())
	fmt.Println("1/Pr[e in S]:", s.InclusionScale(100))
	e := s.Edges()[0]
	fmt.Println("re-offer retained edge:", s.Offer(e.U, e.V))
	// Output:
	// kept: 8
	// 1/Pr[e in S]: 12.5
	// re-offer retained edge: true
}

// A reservoir holds a uniform size-k subset of everything offered so far,
// deterministically under its seed.
func ExampleReservoir() {
	r := sampling.NewReservoir[int](10, 7)
	for i := 0; i < 1000; i++ {
		r.Offer(i)
	}
	fmt.Println(r.Len(), "of", r.Offered(), "saturated:", r.Saturated())
	// Output:
	// 10 of 1000 saturated: true
}
