package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

func TestCounterGaugeHighWater(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter handle not stable")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Set(4)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	h := r.HighWater("h")
	h.Observe(5)
	h.Observe(3)
	h.Observe(9)
	if got := h.Value(); got != 9 {
		t.Fatalf("high water = %d, want 9", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every lookup on a nil registry must return a nil handle, and every
	// handle method must no-op on it — this is the disabled fast path.
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.HighWater("x").Observe(1)
	r.Histogram("x").Observe(1)
	r.Reset()
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if r.Counter("x").Value() != 0 || r.Histogram("x").Quantile(0.5) != 0 {
		t.Fatal("nil handles should read as zero")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if m := h.Mean(); m != 500.5 {
		t.Fatalf("mean = %v", m)
	}
	// Log₂ sketch: quantiles are exact to a factor of 2.
	if q := h.Quantile(0.5); q < 500 || q > 1024 {
		t.Fatalf("p50 = %d, want within [500, 1024]", q)
	}
	if q := h.Quantile(1); q < 1000 || q > 1024 {
		t.Fatalf("p100 = %d, want within [1000, 1024]", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d, want 1", q)
	}
	h.Observe(-5) // clamped to 0
	if h.Quantile(0) != 1 {
		t.Fatal("negative observation should clamp into the first bucket")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 40, 40}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(3)
	r.HighWater("c").Observe(4)
	r.Histogram("d").Observe(7)
	snap := r.Snapshot()
	for k, want := range map[string]float64{
		"a": 2, "b": 3, "c": 4, "d.count": 1, "d.sum": 7, "d.mean": 7,
	} {
		if snap[k] != want {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], want)
		}
	}
	names := r.Names()
	if len(names) != 4 || names[0] != "a" || names[3] != "d" {
		t.Fatalf("names = %v", names)
	}
	// Reset zeroes values but keeps handles registered and valid.
	c := r.Counter("a")
	r.Reset()
	if c.Value() != 0 || r.Histogram("d").Count() != 0 {
		t.Fatal("reset did not zero metrics")
	}
	c.Add(1)
	if r.Snapshot()["a"] != 1 {
		t.Fatal("handle dead after reset")
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("n").Add(1)
				r.HighWater("hw").Observe(int64(w*each + i))
				r.Histogram("h").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.HighWater("hw").Value(); got != workers*each-1 {
		t.Fatalf("high water = %d, want %d", got, workers*each-1)
	}
	if got := r.Histogram("h").Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	Disable()
	if Global() != nil {
		t.Fatal("global registry should start nil")
	}
	r := Enable()
	if r == nil || Global() != r || Enable() != r {
		t.Fatal("Enable should install one stable registry")
	}
	Disable()
	if Global() != nil {
		t.Fatal("Disable should clear the registry")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	defer Disable()
	r := Enable()
	r.Counter("stream.test_metric").Add(42)
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Adjstream map[string]float64 `json:"adjstream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Adjstream["stream.test_metric"] != 42 {
		t.Fatalf("expvar snapshot = %v", vars.Adjstream)
	}
	// The pprof index must be mounted too.
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp2.StatusCode)
	}
}

// BenchmarkDisabledCounter measures the disabled fast path: one atomic
// pointer load (Global) plus nil-receiver method calls.
func BenchmarkDisabledCounter(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		Global().Counter("x").Add(1)
	}
}

// BenchmarkDisabledHandle measures the steady-state disabled cost when the
// nil handle is already cached, as instrumented hot paths do.
func BenchmarkDisabledHandle(b *testing.B) {
	Disable()
	c := Global().Counter("x")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledCounter measures the enabled steady state with a cached
// handle: one atomic add.
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkEnabledHistogram measures one histogram observation.
func BenchmarkEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
