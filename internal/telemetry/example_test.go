package telemetry_test

import (
	"fmt"

	"adjstream/internal/telemetry"
)

// Example shows the whole lifecycle: enable the global registry, report
// into it from instrumented code (here inlined), and snapshot it — the
// same snapshot the JSONL run journal records and /debug/vars serves.
func Example() {
	r := telemetry.Enable()
	defer telemetry.Disable()

	r.Counter("stream.items_read").Add(2048)
	r.Gauge("core.sampled_edges").Set(117)
	r.HighWater("core.space_words").Observe(950)
	r.HighWater("core.space_words").Observe(720) // below the mark: ignored

	fmt.Println("items read:", r.Counter("stream.items_read").Value())
	fmt.Println("occupancy: ", r.Gauge("core.sampled_edges").Value())
	fmt.Println("peak words:", r.HighWater("core.space_words").Value())
	// Output:
	// items read: 2048
	// occupancy:  117
	// peak words: 950
}

// ExampleHistogram records a distribution (per-pass wall times, say) and
// reads its streaming summary.
func ExampleHistogram() {
	r := telemetry.NewRegistry()
	h := r.Histogram("stream.pass_ns")
	for _, d := range []int64{100, 120, 110, 4000} {
		h.Observe(d)
	}
	fmt.Println("passes:", h.Count())
	fmt.Println("total: ", h.Sum())
	fmt.Println("mean:  ", h.Mean())
	// Output:
	// passes: 4
	// total:  4330
	// mean:   1082.5
}

// ExampleRegistry_disabled shows the nil fast path: with no registry
// installed, handles are nil and every operation is a no-op — instrumented
// code never needs its own enabled/disabled branch.
func ExampleRegistry_disabled() {
	telemetry.Disable()
	c := telemetry.Global().Counter("stream.items_read") // nil handle
	c.Add(1024)                                          // no-op
	fmt.Println("disabled read:", c.Value())
	// Output:
	// disabled read: 0
}
