package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The live-inspection endpoint: the global registry published as an expvar
// variable next to Go's standard memstats/cmdline vars, plus the pprof
// profile handlers — everything a long sweep needs for "what is it doing
// right now" without stopping the run.

// publishOnce guards the process-global expvar registration (expvar.Publish
// panics on duplicate names).
var publishOnce sync.Once

// publishExpvar exposes the global registry's snapshot as the expvar
// variable "adjstream". The closure reads Global() at request time, so the
// published variable tracks Enable/Disable.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("adjstream", expvar.Func(func() any {
			return Global().Snapshot()
		}))
	})
}

// Handler returns an http.Handler serving the observability surface:
//
//	/debug/vars         — expvar JSON (includes the "adjstream" registry snapshot)
//	/debug/pprof/...    — the standard pprof index, profile, symbol, trace
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "adjstream telemetry: see /debug/vars and /debug/pprof/")
	})
	return mux
}

// Listen binds addr (e.g. "localhost:6060"), serves Handler on it in a
// background goroutine, and returns the bound listener so the caller can
// report the actual address and close it on shutdown. The global registry
// is enabled as a side effect — a listener with nothing to show is useless.
func Listen(addr string) (net.Listener, error) {
	Enable()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	go func() {
		// Serve returns when the listener closes; nothing to report.
		_ = http.Serve(ln, Handler())
	}()
	return ln, nil
}
