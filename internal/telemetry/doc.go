// Package telemetry is the run-telemetry layer shared by every part of the
// system that measures anything: the stream drivers (per-pass wall time,
// items/sec, fan-out batches, queue depth), the estimators and baselines
// (sample-set occupancy, live/high-water space words via internal/space),
// the communication-game harness (handoff words per pass), and the
// experiment harness (which snapshots the registry into JSONL run
// journals). It is dependency-free — standard library only — and built
// around two constraints:
//
//  1. Near-zero cost when disabled. Telemetry is off unless Enable has
//     installed the global registry; Global() is then a single atomic
//     pointer load returning nil, every lookup on a nil *Registry returns a
//     nil handle, and every handle method no-ops on a nil receiver.
//     Instrumented code therefore never branches on a "telemetry enabled?"
//     flag of its own — it calls unconditionally. The driver benchmarks
//     bound the disabled overhead at under 2% (see DESIGN.md §4d).
//
//  2. Safe under the broadcast driver's concurrency. All metric types are
//     single atomic words (or arrays of them, for histograms), so estimator
//     shards on different workers can report into the same registry without
//     locks on the hot path.
//
// Four metric shapes cover the quantities the paper's claims are stated in:
// Counter (monotonic totals: items read, pairs discovered), Gauge (last
// value: sample occupancy after a pass), HighWater (peaks: space words,
// queue depth), and Histogram (log₂-bucketed streaming distributions:
// per-pass wall time).
//
// The registry is exposed live over HTTP — expvar JSON at /debug/vars and
// the pprof handlers at /debug/pprof/ — via Listen, wired to the -listen
// flag of cmd/experiments and cmd/cyclecount.
package telemetry
