package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of metrics. Handles returned by Counter,
// Gauge, HighWater, and Histogram are stable for the life of the registry:
// instrumented code looks a handle up once (per run, per construction) and
// then updates it with plain atomic operations, so the steady-state cost of
// an enabled metric is one atomic RMW and the cost of a disabled one is a
// nil check.
//
// All methods are safe on a nil *Registry: lookups return nil handles and
// every handle method is a no-op on a nil receiver. This is the disabled
// fast path — code instruments unconditionally and pays (almost) nothing
// when no registry is installed.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	highWaters map[string]*HighWater
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		highWaters: make(map[string]*HighWater),
		histograms: make(map[string]*Histogram),
	}
}

// global is the process-wide registry consulted by instrumented packages.
// nil (the default) disables telemetry.
var global atomic.Pointer[Registry]

// Enable installs (or returns the already-installed) global registry.
func Enable() *Registry {
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable removes the global registry; subsequent Global calls return nil
// and all instrumentation reverts to the disabled fast path.
func Disable() { global.Store(nil) }

// Global returns the installed registry, or nil when telemetry is disabled.
// The cost of a disabled call is one atomic pointer load.
func Global() *Registry { return global.Load() }

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named last-value gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// HighWater returns the named high-water mark, creating it on first use.
func (r *Registry) HighWater(name string) *HighWater {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.highWaters[name]
	if !ok {
		h = &HighWater{}
		r.highWaters[name] = h
	}
	return h
}

// Histogram returns the named streaming histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every metric in the registry (handles stay valid — resetting
// does not invalidate pointers held by instrumented code).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.highWaters {
		h.v.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// Snapshot returns a point-in-time flat view of every metric. Counters,
// gauges, and high-water marks appear under their own name; a histogram h
// expands to h.count, h.sum, h.mean, h.min, h.max, h.p50, h.p90, and h.p99
// (quantiles are upper bucket bounds of the log₂ sketch, exact to a factor
// of 2). The map is detached from the registry.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.highWaters {
		out[name] = float64(h.Value())
	}
	for name, h := range r.histograms {
		for suffix, v := range h.stats() {
			out[name+"."+suffix] = v
		}
	}
	return out
}

// Names returns the sorted names of every registered metric (histograms
// once, without their expansion suffixes).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.highWaters {
		out = append(out, name)
	}
	for name := range r.histograms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HighWater tracks the maximum value ever observed.
type HighWater struct{ v atomic.Int64 }

// Observe raises the mark to v if v exceeds it. No-op on a nil receiver.
func (h *HighWater) Observe(v int64) {
	if h == nil {
		return
	}
	for {
		cur := h.v.Load()
		if v <= cur || h.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark (0 on a nil receiver).
func (h *HighWater) Value() int64 {
	if h == nil {
		return 0
	}
	return h.v.Load()
}

// histBuckets is the number of log₂ buckets: bucket i counts observations
// v with 2^(i-1) < v ≤ 2^i (bucket 0 counts v ≤ 1), so 64 buckets cover
// the full positive int64 range.
const histBuckets = 64

// Histogram is a streaming log₂-bucketed histogram of non-negative values
// (typically nanosecond durations or sizes). Observation is lock-free: one
// atomic add into a bucket plus sum/count/min/max maintenance.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf returns the log₂ bucket index of v.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for x := v - 1; x > 0; x >>= 1 {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value. Negative values are clamped to zero. No-op on
// a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		h.min.Store(v)
	} else {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) from the
// log₂ sketch: the bound of the bucket containing the q·count-th
// observation, exact to a factor of 2. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n-1)) + 1
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i)
		}
	}
	return h.max.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// stats returns the Snapshot expansion of the histogram.
func (h *Histogram) stats() map[string]float64 {
	n := h.count.Load()
	out := map[string]float64{
		"count": float64(n),
		"sum":   float64(h.sum.Load()),
	}
	if n > 0 {
		out["mean"] = float64(h.sum.Load()) / float64(n)
		out["min"] = float64(h.min.Load())
		out["max"] = float64(h.max.Load())
		out["p50"] = float64(h.Quantile(0.50))
		out["p90"] = float64(h.Quantile(0.90))
		out["p99"] = float64(h.Quantile(0.99))
	}
	return out
}
