package graph

import (
	"fmt"
	"sort"
	"sync"
)

// V is a vertex identifier. Vertices are arbitrary non-negative int64 values;
// they need not be contiguous.
type V int64

// Edge is an undirected edge. The canonical form (as produced by Norm and
// required by map keys throughout the repository) has U < V.
type Edge struct {
	U, V V
}

// Norm returns the canonical orientation of e with U < V.
func (e Edge) Norm() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("{%d,%d}", e.U, e.V) }

// Graph is a finalized simple undirected graph. The zero value is an empty
// graph. Graphs are built with NewBuilder or FromEdges and are immutable
// afterwards; all read methods are safe for concurrent use — including the
// lazily built CSR index and the memoized derived quantities below, which
// are computed at most once per graph behind sync.Once.
type Graph struct {
	nbr  map[V][]V // sorted neighbor lists
	vs   []V       // sorted vertex list
	m    int64     // number of edges
	maxD int       // maximum degree

	// Lazily built CSR index (csr.go), shared by all exact kernels.
	csrOnce sync.Once
	csrIx   *csr

	// Memoized derived quantities. Experiments score every grid point
	// against these, so each is computed once per (immutable) graph.
	triOnce        sync.Once
	triCount       int64
	fourOnce       sync.Once
	fourCount      int64
	wedgeOnce      sync.Once
	wedgeP2        int64
	triLoadsOnce   sync.Once
	triLoadSlice   []int64 // per-edge triangle loads, canonical edge ids
	triLoadMapOnce sync.Once
	triLoadMap     map[Edge]int64
	localTriOnce   sync.Once
	localTriSlice  []int64 // per-vertex triangle counts, dense ids
	momentsOnce    sync.Once
	degMoments     [3]int64 // Σ deg, Σ deg², Σ deg³
	motifOnce      sync.Once
	motifCounts    MotifCounts
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are rejected at Add time.
type Builder struct {
	nbr map[V]map[V]struct{}
	m   int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{nbr: make(map[V]map[V]struct{})}
}

// Add inserts the undirected edge {u,v}. It returns an error for self-loops
// and duplicate edges.
func (b *Builder) Add(u, v V) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if _, ok := b.nbr[u][v]; ok {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.addHalf(u, v)
	b.addHalf(v, u)
	b.m++
	return nil
}

// AddIfAbsent inserts {u,v} unless it is a self-loop or already present.
// It reports whether the edge was inserted.
func (b *Builder) AddIfAbsent(u, v V) bool {
	if u == v {
		return false
	}
	if _, ok := b.nbr[u][v]; ok {
		return false
	}
	b.addHalf(u, v)
	b.addHalf(v, u)
	b.m++
	return true
}

func (b *Builder) addHalf(u, v V) {
	s, ok := b.nbr[u]
	if !ok {
		s = make(map[V]struct{})
		b.nbr[u] = s
	}
	s[v] = struct{}{}
}

// AddVertex ensures v exists even if isolated.
func (b *Builder) AddVertex(v V) {
	if _, ok := b.nbr[v]; !ok {
		b.nbr[v] = make(map[V]struct{})
	}
}

// Has reports whether edge {u,v} is already present.
func (b *Builder) Has(u, v V) bool {
	_, ok := b.nbr[u][v]
	return ok
}

// M returns the number of edges added so far.
func (b *Builder) M() int64 { return b.m }

// Graph finalizes the builder into an immutable Graph. The builder may be
// reused afterwards, but further Adds do not affect the returned Graph.
func (b *Builder) Graph() *Graph {
	g := &Graph{nbr: make(map[V][]V, len(b.nbr)), m: b.m}
	g.vs = make([]V, 0, len(b.nbr))
	for v, set := range b.nbr {
		ns := make([]V, 0, len(set))
		for u := range set {
			ns = append(ns, u)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		g.nbr[v] = ns
		g.vs = append(g.vs, v)
		if len(ns) > g.maxD {
			g.maxD = len(ns)
		}
	}
	sort.Slice(g.vs, func(i, j int) bool { return g.vs[i] < g.vs[j] })
	return g
}

// FromEdges builds a Graph from an edge list. It returns an error on
// self-loops or duplicate edges (in either orientation).
func FromEdges(edges []Edge) (*Graph, error) {
	b := NewBuilder()
	for _, e := range edges {
		if err := b.Add(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// hand-written fixtures.
func MustFromEdges(edges []Edge) *Graph {
	g, err := FromEdges(edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices (including isolated vertices that were
// explicitly added).
func (g *Graph) N() int { return len(g.vs) }

// M returns the number of edges.
func (g *Graph) M() int64 { return g.m }

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int { return g.maxD }

// Degree returns the degree of v (0 if v is not in the graph).
func (g *Graph) Degree(v V) int { return len(g.nbr[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v V) []V { return g.nbr[v] }

// Vertices returns the sorted vertex list. The returned slice is shared with
// the graph and must not be modified.
func (g *Graph) Vertices() []V { return g.vs }

// HasVertex reports whether v is a vertex of g.
func (g *Graph) HasVertex(v V) bool {
	_, ok := g.nbr[v]
	return ok
}

// HasEdge reports whether {u,v} is an edge of g.
func (g *Graph) HasEdge(u, v V) bool {
	ns := g.nbr[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges returns all edges in canonical orientation, sorted by (U,V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for _, u := range g.vs {
		for _, v := range g.nbr[u] {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	return es
}

// WedgeCount returns P2, the number of paths of length two, which equals
// Σ_v C(deg(v), 2). Memoized.
func (g *Graph) WedgeCount() int64 {
	g.wedgeOnce.Do(func() {
		var p2 int64
		for _, v := range g.vs {
			d := int64(len(g.nbr[v]))
			p2 += d * (d - 1) / 2
		}
		g.wedgeP2 = p2
	})
	return g.wedgeP2
}

// DegreeSum returns Σ_v deg(v) = 2m.
func (g *Graph) DegreeSum() int64 { return 2 * g.m }

// DegreeMoments returns the first three degree moments Σ deg(v),
// Σ deg(v)², Σ deg(v)³ — the quantities the space bounds' workload
// parameters (m, P2, heavy-vertex skew) are phrased in. Memoized.
func (g *Graph) DegreeMoments() (s1, s2, s3 int64) {
	g.momentsOnce.Do(func() {
		for _, v := range g.vs {
			d := int64(len(g.nbr[v]))
			g.degMoments[0] += d
			g.degMoments[1] += d * d
			g.degMoments[2] += d * d * d
		}
	})
	return g.degMoments[0], g.degMoments[1], g.degMoments[2]
}

// commonNeighbors returns |N(u) ∩ N(v)| using a sorted-merge intersection.
func (g *Graph) commonNeighbors(u, v V) int {
	a, b := g.nbr[u], g.nbr[v]
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// CommonNeighbors returns the number of common neighbors of u and v.
func (g *Graph) CommonNeighbors(u, v V) int { return g.commonNeighbors(u, v) }
