package graph

import (
	"testing"
	"testing/quick"
)

func TestGraph6KnownStrings(t *testing.T) {
	// Standard references: K4 is "C~", the path P4 is "Cr" per nauty docs
	// ("Cr" = n=4, bits for edges 01,12,23... verify by decode instead),
	// the empty graph on 5 vertices is "D??".
	k4, err := complete(4).Graph6()
	if err != nil {
		t.Fatal(err)
	}
	if k4 != "C~" {
		t.Fatalf("K4 graph6 = %q, want \"C~\"", k4)
	}
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddVertex(V(i))
	}
	empty5, err := b.Graph().Graph6()
	if err != nil {
		t.Fatal(err)
	}
	if empty5 != "D??" {
		t.Fatalf("empty5 graph6 = %q, want \"D??\"", empty5)
	}
}

func TestGraph6RoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomGraph(20, 0.3, seed)
		s, err := g.Graph6()
		if err != nil {
			t.Fatal(err)
		}
		g2, err := FromGraph6(s)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("seed %d: shape %d/%d vs %d/%d", seed, g2.N(), g2.M(), g.N(), g.M())
		}
		if g2.Triangles() != g.Triangles() || g2.FourCycles() != g.FourCycles() {
			t.Fatalf("seed %d: counts changed", seed)
		}
	}
}

func TestGraph6RoundTripRelabels(t *testing.T) {
	// Non-contiguous vertex ids survive as an isomorphic graph.
	g := MustFromEdges([]Edge{{U: 100, V: 200}, {U: 200, V: 300}, {U: 100, V: 300}})
	s, err := g.Graph6()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromGraph6(s)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.Triangles() != 1 {
		t.Fatalf("decoded n=%d T=%d", g2.N(), g2.Triangles())
	}
}

func TestGraph6LargeN(t *testing.T) {
	g := path(100) // n = 100 > 62: long-form header
	s, err := g.Graph6()
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 126 {
		t.Fatalf("expected long-form header, got %q", s[:4])
	}
	g2, err := FromGraph6(s)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 100 || g2.M() != 99 {
		t.Fatalf("decoded %d/%d", g2.N(), g2.M())
	}
}

func TestFromGraph6Header(t *testing.T) {
	g, err := FromGraph6(">>graph6<<C~\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 6 {
		t.Fatalf("decoded %d/%d", g.N(), g.M())
	}
}

func TestFromGraph6Rejects(t *testing.T) {
	cases := []string{
		"",
		"C",      // truncated body
		"C~~",    // oversized body
		"C\x01",  // byte out of range
		"~~????", // giant-n form
	}
	for _, c := range cases {
		if _, err := FromGraph6(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
	// Padding bit set: n=3 needs 3 bits; byte with a low bit set is invalid.
	if _, err := FromGraph6("B" + string(rune(63+1))); err == nil {
		t.Error("expected padding error")
	}
}

func TestGraph6RoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(12, 0.5, seed%512+1)
		s, err := g.Graph6()
		if err != nil {
			return false
		}
		g2, err := FromGraph6(s)
		if err != nil {
			return false
		}
		return g2.M() == g.M() && g2.Triangles() == g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
