package graph

// MotifCounts are the exact counts of all six connected four-vertex
// subgraphs (as subgraphs, not induced). Together with triangle and wedge
// counts they form the standard motif census used throughout the subgraph
// counting literature the paper builds on.
type MotifCounts struct {
	// Path4 is the number of paths on four vertices (three edges).
	Path4 int64
	// Claw is the number of stars K_{1,3}.
	Claw int64
	// Cycle4 is the number of 4-cycles.
	Cycle4 int64
	// Paw is the number of triangles with a pendant edge.
	Paw int64
	// Diamond is the number of K4-minus-an-edge subgraphs (equivalently,
	// pairs of triangles sharing an edge).
	Diamond int64
	// K4 is the number of 4-cliques.
	K4 int64
}

// Motifs computes the exact four-vertex motif census from the triangle and
// co-degree primitives:
//
//	Path4    = Σ_{uv∈E} (deg u − 1)(deg v − 1) − 3·T
//	Claw     = Σ_v C(deg v, 3)
//	Cycle4   = FourCycles()
//	Paw      = Σ_v localT(v)·(deg v − 2)
//	Diamond  = Σ_{e∈E} C(T(e), 2)
//	K4       = (1/4)·Σ_{triangles uvw} |N(u) ∩ N(v) ∩ N(w)|
func (g *Graph) Motifs() MotifCounts {
	var mc MotifCounts

	t := g.Triangles()

	// Path4 and the per-edge degree products.
	for _, u := range g.vs {
		du := int64(len(g.nbr[u]))
		for _, v := range g.nbr[u] {
			if u < v {
				dv := int64(len(g.nbr[v]))
				mc.Path4 += (du - 1) * (dv - 1)
			}
		}
	}
	mc.Path4 -= 3 * t

	// Claw.
	for _, v := range g.vs {
		d := int64(len(g.nbr[v]))
		mc.Claw += d * (d - 1) * (d - 2) / 6
	}

	mc.Cycle4 = g.FourCycles()

	// Paw from local triangle counts.
	for v, lt := range g.LocalTriangles() {
		mc.Paw += lt * int64(len(g.nbr[v])-2)
	}

	// Diamond from per-edge triangle loads.
	for _, l := range g.TriangleLoads() {
		mc.Diamond += l * (l - 1) / 2
	}

	// K4 via triple neighborhood intersections at each triangle; each K4
	// has four triangles, each finding the fourth vertex once.
	var k4x4 int64
	g.ForEachTriangle(func(tr Triangle) {
		k4x4 += g.tripleCommon(tr.A, tr.B, tr.C)
	})
	mc.K4 = k4x4 / 4

	return mc
}

// tripleCommon returns |N(a) ∩ N(b) ∩ N(c)| by three-way sorted merge.
func (g *Graph) tripleCommon(a, b, c V) int64 {
	la, lb, lc := g.nbr[a], g.nbr[b], g.nbr[c]
	i, j, k := 0, 0, 0
	var n int64
	for i < len(la) && j < len(lb) && k < len(lc) {
		x, y, z := la[i], lb[j], lc[k]
		mx := x
		if y > mx {
			mx = y
		}
		if z > mx {
			mx = z
		}
		if x == y && y == z {
			n++
			i++
			j++
			k++
			continue
		}
		if x < mx {
			i++
		}
		if y < mx {
			j++
		}
		if z < mx {
			k++
		}
	}
	return n
}
