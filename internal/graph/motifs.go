package graph

// MotifCounts are the exact counts of all six connected four-vertex
// subgraphs (as subgraphs, not induced). Together with triangle and wedge
// counts they form the standard motif census used throughout the subgraph
// counting literature the paper builds on.
type MotifCounts struct {
	// Path4 is the number of paths on four vertices (three edges).
	Path4 int64
	// Claw is the number of stars K_{1,3}.
	Claw int64
	// Cycle4 is the number of 4-cycles.
	Cycle4 int64
	// Paw is the number of triangles with a pendant edge.
	Paw int64
	// Diamond is the number of K4-minus-an-edge subgraphs (equivalently,
	// pairs of triangles sharing an edge).
	Diamond int64
	// K4 is the number of 4-cliques.
	K4 int64
}

// Motifs computes the exact four-vertex motif census from the triangle and
// co-degree primitives:
//
//	Path4    = Σ_{uv∈E} (deg u − 1)(deg v − 1) − 3·T
//	Claw     = Σ_v C(deg v, 3)
//	Cycle4   = FourCycles()
//	Paw      = Σ_v localT(v)·(deg v − 2)
//	Diamond  = Σ_{e∈E} C(T(e), 2)
//	K4       = (1/4)·Σ_{triangles uvw} |N(u) ∩ N(v) ∩ N(w)|
//
// All pieces run over the CSR index: the degree terms stream the flat rows,
// Paw and Diamond reuse the memoized local-triangle and edge-load slices,
// and the K4 intersection scan is sharded across the kernel worker pool.
// The census itself is memoized.
func (g *Graph) Motifs() MotifCounts {
	g.motifOnce.Do(func() {
		g.motifCounts = g.computeMotifs(
			g.Triangles(), g.FourCycles(),
			g.localTriangleSlice(), g.triangleLoadSlice())
	})
	return g.motifCounts
}

// computeMotifs assembles the census from precomputed triangle/4-cycle
// counts and per-vertex/per-edge triangle loads. Motifs passes the memoized
// values; the benchmark suite recomputes them each iteration.
func (g *Graph) computeMotifs(t, c4 int64, localTri, edgeLoads []int64) MotifCounts {
	var mc MotifCounts
	c := g.csr()

	// Path4 (per-edge degree products) and Claw, from the CSR rows.
	for v := 0; v < len(c.verts); v++ {
		d := int64(c.degree(int32(v)))
		mc.Claw += d * (d - 1) * (d - 2) / 6
		for j := c.upStart[v]; j < c.rowPtr[v+1]; j++ {
			du := int64(c.degree(c.colIdx[j]))
			mc.Path4 += (d - 1) * (du - 1)
		}
	}
	mc.Path4 -= 3 * t

	mc.Cycle4 = c4

	// Paw from the local triangle counts.
	for v, lt := range localTri {
		if lt != 0 {
			mc.Paw += lt * int64(c.degree(int32(v))-2)
		}
	}

	// Diamond from the per-edge triangle loads.
	for _, l := range edgeLoads {
		mc.Diamond += l * (l - 1) / 2
	}

	// K4 via triple neighborhood intersections at each triangle; each K4
	// has four triangles, each finding the fourth vertex once.
	k4x4 := reduceShards(c,
		func() *int64 { return new(int64) },
		func(acc *int64, v int32) {
			c.triangleScan(v, func(u, w int32, _, _, _ int64) {
				*acc += c.tripleCommon(v, u, w)
			})
		},
		func(dst, src *int64) { *dst += *src })
	mc.K4 = *k4x4 / 4

	return mc
}

// tripleCommon returns |N(a) ∩ N(b) ∩ N(c)| by three-way sorted merge over
// the flat CSR rows.
func (c *csr) tripleCommon(a, b, d int32) int64 {
	la, lb, lc := c.row(a), c.row(b), c.row(d)
	i, j, k := 0, 0, 0
	var n int64
	for i < len(la) && j < len(lb) && k < len(lc) {
		x, y, z := la[i], lb[j], lc[k]
		mx := x
		if y > mx {
			mx = y
		}
		if z > mx {
			mx = z
		}
		if x == y && y == z {
			n++
			i++
			j++
			k++
			continue
		}
		if x < mx {
			i++
		}
		if y < mx {
			j++
		}
		if z < mx {
			k++
		}
	}
	return n
}
