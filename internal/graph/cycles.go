package graph

import "fmt"

// CountCycles returns the exact number of simple cycles of length exactly l
// in g, for l >= 3. It uses canonical DFS enumeration: each cycle is
// discovered from its minimum vertex and counted once (each undirected cycle
// is traversed in two directions, so the raw count is halved).
//
// The running time is output- and degree-sensitive (O(n · Δ^{l-1}) worst
// case); it is intended as ground truth for gadget graphs and test-scale
// workloads, not for massive inputs.
func (g *Graph) CountCycles(l int) (int64, error) {
	if l < 3 {
		return 0, fmt.Errorf("graph: cycle length %d < 3", l)
	}
	switch l {
	case 3:
		return g.Triangles(), nil
	case 4:
		return g.FourCycles(), nil
	}
	var count int64
	onPath := make(map[V]bool, l)
	var dfs func(start, cur V, depth int)
	dfs = func(start, cur V, depth int) {
		if depth == l-1 {
			// Close the cycle back to start if adjacent.
			if g.HasEdge(cur, start) {
				count++
			}
			return
		}
		for _, nxt := range g.nbr[cur] {
			if nxt <= start || onPath[nxt] {
				continue
			}
			// Prune: at depth == l-2 the next vertex is the last one; it
			// must be adjacent to start, which HasEdge checks in the
			// recursive call — no extra pruning needed beyond the canonical
			// "all internal vertices > start" rule.
			onPath[nxt] = true
			dfs(start, nxt, depth+1)
			delete(onPath, nxt)
		}
	}
	for _, s := range g.vs {
		onPath[s] = true
		dfs(s, s, 0)
		delete(onPath, s)
	}
	return count / 2, nil
}

// HasCycleOfLength reports whether g contains at least one simple cycle of
// length exactly l, with early exit.
func (g *Graph) HasCycleOfLength(l int) (bool, error) {
	if l < 3 {
		return false, fmt.Errorf("graph: cycle length %d < 3", l)
	}
	found := false
	onPath := make(map[V]bool, l)
	var dfs func(start, cur V, depth int)
	dfs = func(start, cur V, depth int) {
		if found {
			return
		}
		if depth == l-1 {
			if g.HasEdge(cur, start) {
				found = true
			}
			return
		}
		for _, nxt := range g.nbr[cur] {
			if found {
				return
			}
			if nxt <= start || onPath[nxt] {
				continue
			}
			onPath[nxt] = true
			dfs(start, nxt, depth+1)
			delete(onPath, nxt)
		}
	}
	for _, s := range g.vs {
		if found {
			break
		}
		onPath[s] = true
		dfs(s, s, 0)
		delete(onPath, s)
	}
	return found, nil
}

// Girth returns the length of a shortest cycle in g, or 0 if g is acyclic.
// It runs a truncated BFS from every vertex.
func (g *Graph) Girth() int {
	best := 0
	dist := make(map[V]int, len(g.vs))
	parent := make(map[V]V, len(g.vs))
	for _, s := range g.vs {
		for k := range dist {
			delete(dist, k)
		}
		for k := range parent {
			delete(parent, k)
		}
		dist[s] = 0
		queue := []V{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if best > 0 && 2*dist[u] >= best {
				break
			}
			for _, w := range g.nbr[u] {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				} else if parent[u] != w && parent[w] != u {
					// Cycle through s of length dist[u]+dist[w]+1 (may
					// overestimate for cycles not through s; the minimum
					// over all start vertices is exact).
					c := dist[u] + dist[w] + 1
					if best == 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}
