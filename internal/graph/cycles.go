package graph

import "fmt"

func errCycleLen(l int) error { return fmt.Errorf("graph: cycle length %d < 3", l) }

// CountCycles returns the exact number of simple cycles of length exactly l
// in g, for l >= 3. It uses canonical DFS enumeration over the CSR index:
// each cycle is discovered from its minimum vertex and counted once (each
// undirected cycle is traversed in two directions, so the raw count is
// halved). Start vertices are sharded across the kernel worker pool, each
// worker carrying its own dense on-path bitmap.
//
// The running time is output- and degree-sensitive (O(n · Δ^{l-1}) worst
// case); it is intended as ground truth for gadget graphs and test-scale
// workloads, not for massive inputs.
func (g *Graph) CountCycles(l int) (int64, error) {
	if l < 3 {
		return 0, errCycleLen(l)
	}
	switch l {
	case 3:
		return g.Triangles(), nil
	case 4:
		return g.FourCycles(), nil
	}
	c := g.csr()
	type acc struct {
		count  int64
		onPath []bool
	}
	a := reduceShards(c,
		func() *acc { return &acc{onPath: make([]bool, len(c.verts))} },
		func(ac *acc, s int32) {
			ac.onPath[s] = true
			c.cycleDFS(s, s, 0, l, ac.onPath, &ac.count)
			ac.onPath[s] = false
		},
		func(dst, src *acc) { dst.count += src.count })
	return a.count / 2, nil
}

// cycleDFS extends a canonical path (all internal vertices > start, in
// dense order, which coincides with vertex-name order) and closes it back
// to start at depth l-1.
func (c *csr) cycleDFS(start, cur int32, depth, l int, onPath []bool, count *int64) {
	if depth == l-1 {
		if c.hasArc(cur, start) {
			*count++
		}
		return
	}
	for _, nxt := range c.row(cur) {
		if nxt <= start || onPath[nxt] {
			continue
		}
		onPath[nxt] = true
		c.cycleDFS(start, nxt, depth+1, l, onPath, count)
		onPath[nxt] = false
	}
}

// HasCycleOfLength reports whether g contains at least one simple cycle of
// length exactly l, with early exit.
func (g *Graph) HasCycleOfLength(l int) (bool, error) {
	if l < 3 {
		return false, errCycleLen(l)
	}
	c := g.csr()
	n := len(c.verts)
	onPath := make([]bool, n)
	found := false
	var dfs func(start, cur int32, depth int)
	dfs = func(start, cur int32, depth int) {
		if found {
			return
		}
		if depth == l-1 {
			if c.hasArc(cur, start) {
				found = true
			}
			return
		}
		for _, nxt := range c.row(cur) {
			if found {
				return
			}
			if nxt <= start || onPath[nxt] {
				continue
			}
			onPath[nxt] = true
			dfs(start, nxt, depth+1)
			onPath[nxt] = false
		}
	}
	for s := 0; s < n && !found; s++ {
		onPath[s] = true
		dfs(int32(s), int32(s), 0)
		onPath[s] = false
	}
	return found, nil
}

// Girth returns the length of a shortest cycle in g, or 0 if g is acyclic.
// It runs a truncated BFS from every vertex over the CSR rows.
func (g *Graph) Girth() int {
	c := g.csr()
	n := len(c.verts)
	best := 0
	const unseen = -1
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = unseen
			parent[i] = unseen
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if best > 0 && 2*int(dist[u]) >= best {
				break
			}
			for _, w := range c.row(u) {
				if dist[w] == unseen {
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				} else if parent[u] != w && parent[w] != u {
					// Cycle through s of length dist[u]+dist[w]+1 (may
					// overestimate for cycles not through s; the minimum
					// over all start vertices is exact).
					cl := int(dist[u]) + int(dist[w]) + 1
					if best == 0 || cl < best {
						best = cl
					}
				}
			}
		}
	}
	return best
}
