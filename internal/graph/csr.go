package graph

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file holds the compressed-sparse-row index shared by the exact
// counting kernels, plus the bounded worker pool they shard their outer
// vertex loops across. The map-based implementations the kernels replaced
// are kept in oracle.go as reference oracles for the property tests.

// maxWorkers overrides the worker bound of the parallel exact kernels;
// 0 means runtime.GOMAXPROCS(0).
var maxWorkers atomic.Int32

// SetMaxWorkers bounds the worker pool used by the parallel exact kernels
// (Triangles, FourCycles, the load and motif computations, CountCycles).
// n <= 0 restores the default, runtime.GOMAXPROCS(0). It returns the
// previous setting (0 for the default). Kernels read the bound at call
// time; the setting is global and intended for benchmarks, tests, and
// tools that need an explicitly sequential or explicitly concurrent path.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int32(n)))
}

func kernelWorkers() int {
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelThreshold is the half-edge count below which sharding the outer
// vertex loop costs more than it saves.
const parallelThreshold = 1 << 12

// csr is the compressed-sparse-row view of a Graph: vertices renumbered to
// dense int32 ids (ascending in vertex name, so dense order and name order
// agree), neighbor lists flattened into rowPtr/colIdx, the cached
// degree-rank orientation that the O(m^{3/2}) triangle kernel directs edges
// along, and a canonical indexing of the m undirected edges so per-edge
// loads can accumulate in flat slices instead of maps. Built lazily once
// per (immutable) Graph via sync.Once and shared by all kernels.
type csr struct {
	verts  []V     // dense id -> vertex name; identical to g.vs
	rowPtr []int64 // len n+1; row v is colIdx[rowPtr[v]:rowPtr[v+1]]
	colIdx []int32 // dense neighbor ids, ascending within each row

	rank []int32 // position of each dense id in the (degree, id) order

	// Oriented adjacency: row v holds the neighbors of strictly higher
	// rank, ascending by dense id; outEdge carries the canonical edge id
	// of each oriented half-edge so triangle loads never search.
	outPtr  []int64
	outIdx  []int32
	outEdge []int64

	// Canonical edge indexing: the undirected edge {a,b} with a < b has id
	// upOff[a] + (j - upStart[a]) where j is b's index in row a. upStart[a]
	// is the first index in row a with colIdx > a; upOff[n] == m.
	upStart []int64
	upOff   []int64

	scratch sync.Pool // *codegScratch, one per concurrent kernel worker
}

func (g *Graph) csr() *csr {
	g.csrOnce.Do(func() { g.csrIx = buildCSR(g) })
	return g.csrIx
}

func buildCSR(g *Graph) *csr {
	n := len(g.vs)
	if int64(n) > math.MaxInt32 || 2*g.m > math.MaxInt32 {
		// 2^31 half-edges is >16 GiB of adjacency before any kernel runs;
		// the int32 column index is a deliberate cache-density choice.
		panic("graph: CSR index supports at most 2^31 half-edges")
	}
	c := &csr{verts: g.vs}
	dense := make(map[V]int32, n)
	for i, v := range g.vs {
		dense[v] = int32(i)
	}

	c.rowPtr = make([]int64, n+1)
	c.colIdx = make([]int32, 2*g.m)
	c.upStart = make([]int64, n)
	c.upOff = make([]int64, n+1)
	pos := int64(0)
	for i, v := range g.vs {
		c.rowPtr[i] = pos
		c.upStart[i] = pos // advanced past the < v neighbors below
		for _, u := range g.nbr[v] {
			du := dense[u] // ascending: dense renumbering is monotone
			c.colIdx[pos] = du
			if du < int32(i) {
				c.upStart[i] = pos + 1
			}
			pos++
		}
		c.upOff[i+1] = c.upOff[i] + (pos - c.upStart[i])
	}
	c.rowPtr[n] = pos

	// Degree-rank order: by (degree, id). Directing each edge toward the
	// higher rank bounds the out-degree by O(√m).
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		di, dj := c.degree(perm[i]), c.degree(perm[j])
		if di != dj {
			return di < dj
		}
		return perm[i] < perm[j]
	})
	c.rank = make([]int32, n)
	for p, v := range perm {
		c.rank[v] = int32(p)
	}

	c.outPtr = make([]int64, n+1)
	for v := 0; v < n; v++ {
		cnt := int64(0)
		for _, u := range c.row(int32(v)) {
			if c.rank[u] > c.rank[v] {
				cnt++
			}
		}
		c.outPtr[v+1] = c.outPtr[v] + cnt
	}
	c.outIdx = make([]int32, c.outPtr[n])
	c.outEdge = make([]int64, c.outPtr[n])
	for v := 0; v < n; v++ {
		p := c.outPtr[v]
		for _, u := range c.row(int32(v)) {
			if c.rank[u] > c.rank[int32(v)] {
				c.outIdx[p] = u
				c.outEdge[p] = c.edgeID(int32(v), u)
				p++
			}
		}
	}
	return c
}

func (c *csr) degree(v int32) int { return int(c.rowPtr[v+1] - c.rowPtr[v]) }

// row returns the dense neighbor ids of v, ascending.
func (c *csr) row(v int32) []int32 { return c.colIdx[c.rowPtr[v]:c.rowPtr[v+1]] }

// out returns the higher-rank neighbors of v and their canonical edge ids.
func (c *csr) out(v int32) ([]int32, []int64) {
	return c.outIdx[c.outPtr[v]:c.outPtr[v+1]], c.outEdge[c.outPtr[v]:c.outPtr[v+1]]
}

// edgeID returns the canonical id of the undirected edge between u and v.
func (c *csr) edgeID(u, v int32) int64 {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	lo, hi := c.upStart[a], c.rowPtr[a+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.colIdx[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.upOff[a] + (lo - c.upStart[a])
}

// hasArc reports whether v appears in u's row, by binary search.
func (c *csr) hasArc(u, v int32) bool {
	lo, hi := c.rowPtr[u], c.rowPtr[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.colIdx[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < c.rowPtr[u+1] && c.colIdx[lo] == v
}

// forEachUpEdge calls fn for every canonical edge (a < b) with its id, in
// id order.
func (c *csr) forEachUpEdge(fn func(id int64, a, b int32)) {
	for a := 0; a < len(c.verts); a++ {
		for j := c.upStart[a]; j < c.rowPtr[a+1]; j++ {
			fn(c.upOff[a]+(j-c.upStart[a]), int32(a), c.colIdx[j])
		}
	}
}

// triangleScan enumerates the triangles whose lowest-rank vertex is v by
// merge-intersecting v's oriented row with each out-neighbor's oriented
// row. fn receives the dense vertices (u the out-neighbor, w the common
// neighbor) and the canonical edge ids of {v,u}, {v,w}, {u,w}. The visit
// order matches the map-based reference enumeration exactly.
func (c *csr) triangleScan(v int32, fn func(u, w int32, evu, evw, euw int64)) {
	ov, oe := c.out(v)
	for p, u := range ov {
		ou, ue := c.out(u)
		i, j := 0, 0
		for i < len(ov) && j < len(ou) {
			switch {
			case ov[i] < ou[j]:
				i++
			case ov[i] > ou[j]:
				j++
			default:
				fn(u, ov[i], oe[p], oe[i], ue[j])
				i++
				j++
			}
		}
	}
}

// codegScratch is the per-worker scratch for the co-degree (pair counting)
// kernels: cnt is a dense 2-walk counter and touched records the nonzero
// entries so resets cost O(touched), not O(n).
type codegScratch struct {
	cnt     []int32
	touched []int32
}

func (s *codegScratch) reset() {
	for _, b := range s.touched {
		s.cnt[b] = 0
	}
	s.touched = s.touched[:0]
}

func (c *csr) getScratch() *codegScratch {
	if s, ok := c.scratch.Get().(*codegScratch); ok && len(s.cnt) >= len(c.verts) {
		return s
	}
	return &codegScratch{cnt: make([]int32, len(c.verts))}
}

func (c *csr) putScratch(s *codegScratch) {
	s.reset()
	c.scratch.Put(s)
}

// twoWalks fills s.cnt[b] with the number of 2-walks a→v→b for every b ≠ a,
// i.e. the co-degree of the pair {a,b}. Callers must s.reset() (or zero the
// touched entries themselves) before reuse.
func (c *csr) twoWalks(a int32, s *codegScratch) {
	for _, v := range c.row(a) {
		for _, b := range c.row(v) {
			if b == a {
				continue
			}
			if s.cnt[b] == 0 {
				s.touched = append(s.touched, b)
			}
			s.cnt[b]++
		}
	}
}

// reduceShards runs body(acc, v) for every dense vertex v in [0, n),
// sharded across up to SetMaxWorkers/GOMAXPROCS goroutines in dynamically
// scheduled contiguous chunks; each worker owns one accumulator and fold
// combines them afterwards, first-to-last. Every kernel's fold is an exact
// integer merge (sums of int64 counters, keyed by index or by vertex name),
// so the result is bit-identical to the sequential path regardless of how
// chunks land on workers. Small inputs run inline with a single
// accumulator and no goroutines — that is the sequential path the
// benchmarks pin.
func reduceShards[A any](c *csr, newAcc func() *A, body func(acc *A, v int32), fold func(dst, src *A)) *A {
	n := len(c.verts)
	w := kernelWorkers()
	if w > n {
		w = n
	}
	if w <= 1 || len(c.colIdx) < parallelThreshold {
		acc := newAcc()
		for v := 0; v < n; v++ {
			body(acc, int32(v))
		}
		return acc
	}
	chunk := n / (w * 8)
	if chunk < 16 {
		chunk = 16
	}
	var next atomic.Int64
	accs := make([]*A, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc := newAcc()
			accs[i] = acc
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					body(acc, int32(v))
				}
			}
		}(i)
	}
	wg.Wait()
	out := accs[0]
	for _, a := range accs[1:] {
		fold(out, a)
	}
	return out
}
