package graph

import (
	"testing"
	"testing/quick"
)

func TestLocalTrianglesSumTo3T(t *testing.T) {
	g := randomGraph(25, 0.3, 5)
	var sum int64
	for _, c := range g.LocalTriangles() {
		sum += c
	}
	if sum != 3*g.Triangles() {
		t.Fatalf("Σ local = %d, want %d", sum, 3*g.Triangles())
	}
}

func TestLocalTrianglesKnown(t *testing.T) {
	// Friendship-style: hub 0 in both triangles, spokes in one each.
	g := MustFromEdges([]Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 0, V: 3}, {U: 0, V: 4}, {U: 3, V: 4},
	})
	lt := g.LocalTriangles()
	if lt[0] != 2 {
		t.Errorf("hub = %d, want 2", lt[0])
	}
	for _, v := range []V{1, 2, 3, 4} {
		if lt[v] != 1 {
			t.Errorf("spoke %d = %d, want 1", v, lt[v])
		}
	}
}

func TestLocalClustering(t *testing.T) {
	g := complete(5)
	for _, v := range g.Vertices() {
		if c := g.LocalClustering(v); c != 1 {
			t.Fatalf("K5 local clustering(%d) = %v", v, c)
		}
	}
	if g.AverageLocalClustering() != 1 {
		t.Fatal("K5 average clustering should be 1")
	}
	p := path(5)
	if c := p.LocalClustering(2); c != 0 {
		t.Fatalf("path clustering = %v", c)
	}
	if p.LocalClustering(0) != 0 {
		t.Fatal("degree-1 vertex clustering should be 0")
	}
	if NewBuilder().Graph().AverageLocalClustering() != 0 {
		t.Fatal("empty average clustering should be 0")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder()
	_ = b.Add(1, 2)
	_ = b.Add(2, 3)
	_ = b.Add(10, 11)
	b.AddVertex(99)
	g := b.Graph()
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 {
		t.Fatalf("first component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 10 {
		t.Fatalf("second component = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 99 {
		t.Fatalf("isolated component = %v", comps[2])
	}
}

func TestInduced(t *testing.T) {
	g := complete(6)
	sub, err := g.Induced([]V{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 6 || sub.Triangles() != 4 {
		t.Fatalf("induced K4: n=%d m=%d T=%d", sub.N(), sub.M(), sub.Triangles())
	}
	if _, err := g.Induced([]V{0, 99}); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
}

func TestDegeneracyKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", complete(5), 4},
		{"path", path(10), 1},
		{"C6", cycle(6), 2},
		{"K33", completeBipartite(3, 3), 3},
		{"empty", NewBuilder().Graph(), 0},
	}
	for _, c := range cases {
		got, order := c.g.Degeneracy()
		if got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
		if len(order) != c.g.N() {
			t.Errorf("%s: order has %d vertices, want %d", c.name, len(order), c.g.N())
		}
	}
}

// Property: a degeneracy ordering has ≤ d later-neighbors per vertex.
func TestDegeneracyOrderingValidQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(20, 0.3, seed%128+1)
		d, order := g.Degeneracy()
		pos := make(map[V]int, len(order))
		for i, v := range order {
			pos[v] = i
		}
		for _, v := range order {
			later := 0
			for _, u := range g.Neighbors(v) {
				if pos[u] > pos[v] {
					later++
				}
			}
			if later > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := MustFromEdges([]Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}
