package graph

import (
	"fmt"
	"strings"
)

// Graph6 encodes g in the graph6 format used by nauty, geng and the
// combinatorial graph repositories — handy for importing extremal graphs
// (e.g. known C4-free graphs) into the experiments. Vertices are relabeled
// to 0..n-1 in sorted order; the format stores the upper-triangular
// adjacency matrix, so it suits small-to-medium dense graphs.
func (g *Graph) Graph6() (string, error) {
	n := len(g.vs)
	if n > 258047 {
		return "", fmt.Errorf("graph: graph6 supports at most 258047 vertices, have %d", n)
	}
	idx := make(map[V]int, n)
	for i, v := range g.vs {
		idx[v] = i
	}
	var b strings.Builder
	// N(n).
	switch {
	case n <= 62:
		b.WriteByte(byte(n + 63))
	default:
		b.WriteByte(126)
		b.WriteByte(byte((n>>12)&63) + 63)
		b.WriteByte(byte((n>>6)&63) + 63)
		b.WriteByte(byte(n&63) + 63)
	}
	// R(x): upper-triangle bits, column by column.
	var acc, bits int
	flush := func(bit int) {
		acc = acc<<1 | bit
		bits++
		if bits == 6 {
			b.WriteByte(byte(acc + 63))
			acc, bits = 0, 0
		}
	}
	for j := 1; j < n; j++ {
		vj := g.vs[j]
		nbrs := make(map[int]bool, len(g.nbr[vj]))
		for _, u := range g.nbr[vj] {
			nbrs[idx[u]] = true
		}
		for i := 0; i < j; i++ {
			bit := 0
			if nbrs[i] {
				bit = 1
			}
			flush(bit)
		}
	}
	if bits > 0 {
		acc <<= uint(6 - bits)
		b.WriteByte(byte(acc + 63))
	}
	return b.String(), nil
}

// FromGraph6 decodes a graph6 string (with or without the optional
// ">>graph6<<" header) into a graph on vertices 0..n-1.
func FromGraph6(s string) (*Graph, error) {
	s = strings.TrimPrefix(s, ">>graph6<<")
	s = strings.TrimSpace(s)
	if len(s) == 0 {
		return nil, fmt.Errorf("graph: empty graph6 string")
	}
	data := []byte(s)
	for i, c := range data {
		if (c < 63 || c > 126) && !(i == 0 && c == 126) {
			return nil, fmt.Errorf("graph: graph6 byte %d out of range at position %d", c, i)
		}
	}
	var n int
	pos := 0
	if data[0] == 126 {
		if len(data) >= 2 && data[1] == 126 {
			return nil, fmt.Errorf("graph: graph6 giant-n form not supported")
		}
		if len(data) < 4 {
			return nil, fmt.Errorf("graph: truncated graph6 header")
		}
		n = int(data[1]-63)<<12 | int(data[2]-63)<<6 | int(data[3]-63)
		pos = 4
	} else {
		n = int(data[0] - 63)
		pos = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative graph6 size")
	}
	needBits := n * (n - 1) / 2
	needBytes := (needBits + 5) / 6
	if len(data)-pos != needBytes {
		return nil, fmt.Errorf("graph: graph6 body has %d bytes, want %d for n=%d", len(data)-pos, needBytes, n)
	}
	b := NewBuilder()
	for v := 0; v < n; v++ {
		b.AddVertex(V(v))
	}
	bit := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			byteIdx := pos + bit/6
			shift := 5 - bit%6
			if (data[byteIdx]-63)>>uint(shift)&1 == 1 {
				if err := b.Add(V(i), V(j)); err != nil {
					return nil, fmt.Errorf("graph: graph6 decode: %w", err)
				}
			}
			bit++
		}
	}
	// Padding bits must be zero.
	for ; bit < needBytes*6; bit++ {
		byteIdx := pos + bit/6
		shift := 5 - bit%6
		if (data[byteIdx]-63)>>uint(shift)&1 == 1 {
			return nil, fmt.Errorf("graph: graph6 padding bit set")
		}
	}
	return b.Graph(), nil
}
