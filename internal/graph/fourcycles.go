package graph

// Wedge is a path of length two: Center is adjacent to both A and B, with
// A < B in canonical form.
type Wedge struct {
	A, Center, B V
}

// Norm returns the canonical form with A < B.
func (w Wedge) Norm() Wedge {
	if w.A > w.B {
		return Wedge{w.B, w.Center, w.A}
	}
	return w
}

// Edges returns the two edges of the wedge in canonical orientation.
func (w Wedge) Edges() [2]Edge {
	return [2]Edge{Edge{w.A, w.Center}.Norm(), Edge{w.Center, w.B}.Norm()}
}

// FourCycle is a 4-cycle stored by its two diagonals: {P,Q} and {R,S} are the
// opposite (non-adjacent-in-the-cycle) vertex pairs, so the cycle visits
// P-R-Q-S. The canonical form has P < Q, R < S, and P < R (P is the minimum
// vertex of the cycle, which always lies on exactly one diagonal).
type FourCycle struct {
	P, Q, R, S V
}

// Wedges returns the four wedges of the cycle in canonical form.
func (c FourCycle) Wedges() [4]Wedge {
	return [4]Wedge{
		Wedge{c.P, c.R, c.Q}.Norm(),
		Wedge{c.P, c.S, c.Q}.Norm(),
		Wedge{c.R, c.P, c.S}.Norm(),
		Wedge{c.R, c.Q, c.S}.Norm(),
	}
}

// Edges returns the four edges of the cycle in canonical orientation.
func (c FourCycle) Edges() [4]Edge {
	return [4]Edge{
		Edge{c.P, c.R}.Norm(),
		Edge{c.R, c.Q}.Norm(),
		Edge{c.Q, c.S}.Norm(),
		Edge{c.S, c.P}.Norm(),
	}
}

// coDegreeCounts computes, for each unordered vertex pair with at least one
// common neighbor, the number of common neighbors. Pairs are keyed as
// canonical Edges (the pair need not be an edge of the graph). Each pair's
// count is produced by 2-walk counting from its smaller endpoint into the
// CSR's pooled scratch array — O(Σ deg²) time and O(n) transient space —
// instead of a global map accumulation.
func (g *Graph) coDegreeCounts() map[Edge]int32 {
	c := g.csr()
	s := c.getScratch()
	defer c.putScratch(s)
	cnt := make(map[Edge]int32)
	for a := 0; a < len(c.verts); a++ {
		c.twoWalks(int32(a), s)
		for _, b := range s.touched {
			if b > int32(a) {
				cnt[Edge{c.verts[a], c.verts[b]}] = s.cnt[b]
			}
		}
		s.reset()
	}
	return cnt
}

// FourCycles returns the exact number of 4-cycles (C4 subgraphs; chords are
// irrelevant) in g. A 4-cycle has two diagonals; for a pair {a,b} with c
// common neighbors there are C(c,2) cycles with that diagonal, and each
// cycle is counted at both of its diagonals, hence the division by two.
// The pair counts come from per-source scratch-array 2-walk counting,
// sharded across the kernel worker pool; the count is memoized.
func (g *Graph) FourCycles() int64 {
	g.fourOnce.Do(func() { g.fourCount = g.computeFourCycles() })
	return g.fourCount
}

// computeFourCycles is the unmemoized kernel behind FourCycles.
func (g *Graph) computeFourCycles() int64 {
	c := g.csr()
	type acc struct {
		twice int64
		s     *codegScratch
	}
	a := reduceShards(c,
		func() *acc { return &acc{s: c.getScratch()} },
		func(ac *acc, u int32) {
			c.twoWalks(u, ac.s)
			for _, b := range ac.s.touched {
				if b > u {
					cc := int64(ac.s.cnt[b])
					ac.twice += cc * (cc - 1) / 2
				}
			}
			ac.s.reset()
		},
		func(dst, src *acc) {
			dst.twice += src.twice
			c.putScratch(src.s)
		})
	c.putScratch(a.s)
	return a.twice / 2
}

// ForEachFourCycle calls fn exactly once per 4-cycle in canonical form. Each
// cycle is emitted at the diagonal containing its minimum vertex. The cost
// is O(P2 + Σ_pairs C(codeg,2)); intended for ground truth at test scale.
func (g *Graph) ForEachFourCycle(fn func(c FourCycle)) {
	// Collect common-neighbor lists per pair.
	common := make(map[Edge][]V)
	for _, v := range g.vs {
		ns := g.nbr[v]
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				k := Edge{ns[i], ns[j]}
				common[k] = append(common[k], v)
			}
		}
	}
	for pair, cs := range common {
		if len(cs) < 2 {
			continue
		}
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				r, s := cs[i], cs[j]
				if r > s {
					r, s = s, r
				}
				// Emit only at the diagonal holding the minimum vertex, so
				// each cycle appears exactly once.
				if pair.U < r {
					fn(FourCycle{P: pair.U, Q: pair.V, R: r, S: s})
				}
			}
		}
	}
}

// FourCycleWedgeLoads returns, for every wedge contained in at least one
// 4-cycle, the number of 4-cycles containing it (the paper's T_w). The
// wedge a-v-b lies in codeg(a,b)-1 cycles, since every common neighbor of
// a,b other than v closes it. Wedges are produced from their smaller
// endpoint via the scratch 2-walk counts — each worker owns the wedges
// whose min endpoint falls in its shard, so the merged map is identical to
// the sequential result.
func (g *Graph) FourCycleWedgeLoads() map[Wedge]int64 {
	c := g.csr()
	type acc struct {
		loads map[Wedge]int64
		s     *codegScratch
	}
	a := reduceShards(c,
		func() *acc { return &acc{loads: make(map[Wedge]int64), s: c.getScratch()} },
		func(ac *acc, av int32) {
			c.twoWalks(av, ac.s)
			for _, v := range c.row(av) {
				for _, b := range c.row(v) {
					if b > av {
						if cc := ac.s.cnt[b]; cc > 1 {
							ac.loads[Wedge{c.verts[av], c.verts[v], c.verts[b]}] = int64(cc) - 1
						}
					}
				}
			}
			ac.s.reset()
		},
		func(dst, src *acc) {
			for w, l := range src.loads {
				dst.loads[w] = l
			}
			c.putScratch(src.s)
		})
	c.putScratch(a.s)
	return a.loads
}

// FourCycleEdgeLoads returns, for every edge in at least one 4-cycle, the
// number of 4-cycles containing it (the paper's T_e for ℓ=4).
func (g *Graph) FourCycleEdgeLoads() map[Edge]int64 {
	loads := make(map[Edge]int64)
	g.ForEachFourCycle(func(c FourCycle) {
		for _, e := range c.Edges() {
			loads[e]++
		}
	})
	return loads
}

// WedgeFourCycleCount returns the number of 4-cycles containing the wedge
// a-center-b, i.e. the number of common neighbors of a and b other than
// center. It does not require a,b to be adjacent to center (returns the
// closure count for the vertex triple as given).
func (g *Graph) WedgeFourCycleCount(w Wedge) int64 {
	c := int64(g.commonNeighbors(w.A, w.B))
	if g.HasEdge(w.A, w.Center) && g.HasEdge(w.B, w.Center) {
		c-- // exclude the wedge's own center
	}
	if c < 0 {
		c = 0
	}
	return c
}
