// Package graph provides an in-memory simple undirected graph together with
// exact subgraph counting (triangles, 4-cycles, ℓ-cycles) and the degree and
// wedge statistics that the streaming estimators in this repository are
// measured against. It is the ground-truth substrate for every experiment:
// a workload is generated or read once as a Graph, the exact counts come
// from here, and a streaming Estimate's relative error is measured against
// them.
//
// Graphs are built incrementally with a Builder (or in one shot with
// FromEdges) and are immutable once finalized, which is what lets derived
// quantities — triangle counts, per-edge loads, degree moments, the motif
// census — be computed once and cached behind sync.Once without locking on
// the read path. The heavier counting kernels (CountCycles, the motif
// census) run on a cached CSR projection of the adjacency structure; see
// csr.go and the BenchmarkExactKernels suite.
//
// Vertices are arbitrary non-negative int64 values and need not be
// contiguous. Edges are undirected; the canonical orientation (Norm) has
// U < V and is required wherever an Edge is used as a map key.
package graph
