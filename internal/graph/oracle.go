package graph

import "sort"

// This file preserves the original map-based exact kernels verbatim as
// unexported reference oracles. The shipping kernels (triangles.go,
// fourcycles.go, cycles.go, motifs.go) run over the CSR index in csr.go;
// the property tests in csr_test.go and the kernel benchmarks assert that
// the two implementations agree exactly on every workload family.

// rankRef orders vertices by (degree, id); the forward triangle-enumeration
// algorithm directs each edge from lower to higher rank, which bounds the
// out-degree by O(√m) and gives an O(m^{3/2}) enumeration.
func (g *Graph) rankRef() map[V]int {
	vs := make([]V, len(g.vs))
	copy(vs, g.vs)
	sort.Slice(vs, func(i, j int) bool {
		di, dj := len(g.nbr[vs[i]]), len(g.nbr[vs[j]])
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
	r := make(map[V]int, len(vs))
	for i, v := range vs {
		r[v] = i
	}
	return r
}

// forEachTriangleRef is the map-based triangle enumeration: fresh rank and
// orientation maps per call, merge-intersection over per-vertex slices.
func (g *Graph) forEachTriangleRef(fn func(t Triangle)) {
	r := g.rankRef()
	// out[v] = neighbors of v with higher rank, sorted by vertex id.
	out := make(map[V][]V, len(g.vs))
	for _, v := range g.vs {
		rv := r[v]
		var os []V
		for _, u := range g.nbr[v] {
			if r[u] > rv {
				os = append(os, u)
			}
		}
		out[v] = os // already sorted: g.nbr[v] is sorted
	}
	for _, v := range g.vs {
		ov := out[v]
		for _, u := range ov {
			ou := out[u]
			// Intersect ov and ou by sorted merge.
			i, j := 0, 0
			for i < len(ov) && j < len(ou) {
				switch {
				case ov[i] < ou[j]:
					i++
				case ov[i] > ou[j]:
					j++
				default:
					fn(sortedTriangle(v, u, ov[i]))
					i++
					j++
				}
			}
		}
	}
}

func (g *Graph) trianglesRef() int64 {
	var t int64
	g.forEachTriangleRef(func(Triangle) { t++ })
	return t
}

func (g *Graph) triangleLoadsRef() map[Edge]int64 {
	loads := make(map[Edge]int64)
	g.forEachTriangleRef(func(t Triangle) {
		for _, e := range t.Edges() {
			loads[e]++
		}
	})
	return loads
}

func (g *Graph) maxTriangleLoadRef() int64 {
	var mx int64
	for _, l := range g.triangleLoadsRef() {
		if l > mx {
			mx = l
		}
	}
	return mx
}

func (g *Graph) localTrianglesRef() map[V]int64 {
	out := make(map[V]int64)
	g.forEachTriangleRef(func(t Triangle) {
		out[t.A]++
		out[t.B]++
		out[t.C]++
	})
	return out
}

// coDegreeCountsRef computes the co-degree of every unordered vertex pair
// with at least one common neighbor via a global map, O(P2) time and
// O(#pairs) space.
func (g *Graph) coDegreeCountsRef() map[Edge]int32 {
	cnt := make(map[Edge]int32)
	for _, v := range g.vs {
		ns := g.nbr[v]
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				cnt[Edge{ns[i], ns[j]}]++ // ns is sorted, so canonical
			}
		}
	}
	return cnt
}

func (g *Graph) fourCyclesRef() int64 {
	var twice int64
	for _, c := range g.coDegreeCountsRef() {
		cc := int64(c)
		twice += cc * (cc - 1) / 2
	}
	return twice / 2
}

func (g *Graph) fourCycleWedgeLoadsRef() map[Wedge]int64 {
	cod := g.coDegreeCountsRef()
	loads := make(map[Wedge]int64)
	for _, v := range g.vs {
		ns := g.nbr[v]
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				c := int64(cod[Edge{ns[i], ns[j]}])
				if c > 1 {
					loads[Wedge{ns[i], v, ns[j]}] = c - 1
				}
			}
		}
	}
	return loads
}

func (g *Graph) countCyclesRef(l int) (int64, error) {
	if l < 3 {
		return 0, errCycleLen(l)
	}
	switch l {
	case 3:
		return g.trianglesRef(), nil
	case 4:
		return g.fourCyclesRef(), nil
	}
	var count int64
	onPath := make(map[V]bool, l)
	var dfs func(start, cur V, depth int)
	dfs = func(start, cur V, depth int) {
		if depth == l-1 {
			if g.HasEdge(cur, start) {
				count++
			}
			return
		}
		for _, nxt := range g.nbr[cur] {
			if nxt <= start || onPath[nxt] {
				continue
			}
			onPath[nxt] = true
			dfs(start, nxt, depth+1)
			delete(onPath, nxt)
		}
	}
	for _, s := range g.vs {
		onPath[s] = true
		dfs(s, s, 0)
		delete(onPath, s)
	}
	return count / 2, nil
}

func (g *Graph) wedgeCountRef() int64 {
	var p2 int64
	for _, v := range g.vs {
		d := int64(len(g.nbr[v]))
		p2 += d * (d - 1) / 2
	}
	return p2
}

// tripleCommonRef returns |N(a) ∩ N(b) ∩ N(c)| by three-way sorted merge
// over the map-held neighbor slices.
func (g *Graph) tripleCommonRef(a, b, c V) int64 {
	la, lb, lc := g.nbr[a], g.nbr[b], g.nbr[c]
	i, j, k := 0, 0, 0
	var n int64
	for i < len(la) && j < len(lb) && k < len(lc) {
		x, y, z := la[i], lb[j], lc[k]
		mx := x
		if y > mx {
			mx = y
		}
		if z > mx {
			mx = z
		}
		if x == y && y == z {
			n++
			i++
			j++
			k++
			continue
		}
		if x < mx {
			i++
		}
		if y < mx {
			j++
		}
		if z < mx {
			k++
		}
	}
	return n
}

func (g *Graph) motifsRef() MotifCounts {
	var mc MotifCounts

	t := g.trianglesRef()

	// Path4 and the per-edge degree products.
	for _, u := range g.vs {
		du := int64(len(g.nbr[u]))
		for _, v := range g.nbr[u] {
			if u < v {
				dv := int64(len(g.nbr[v]))
				mc.Path4 += (du - 1) * (dv - 1)
			}
		}
	}
	mc.Path4 -= 3 * t

	// Claw.
	for _, v := range g.vs {
		d := int64(len(g.nbr[v]))
		mc.Claw += d * (d - 1) * (d - 2) / 6
	}

	mc.Cycle4 = g.fourCyclesRef()

	// Paw from local triangle counts.
	for v, lt := range g.localTrianglesRef() {
		mc.Paw += lt * int64(len(g.nbr[v])-2)
	}

	// Diamond from per-edge triangle loads.
	for _, l := range g.triangleLoadsRef() {
		mc.Diamond += l * (l - 1) / 2
	}

	// K4 via triple neighborhood intersections at each triangle; each K4
	// has four triangles, each finding the fourth vertex once.
	var k4x4 int64
	g.forEachTriangleRef(func(tr Triangle) {
		k4x4 += g.tripleCommonRef(tr.A, tr.B, tr.C)
	})
	mc.K4 = k4x4 / 4

	return mc
}
