package graph

import (
	"testing"
	"testing/quick"
)

// bruteMotifs counts the six connected 4-vertex subgraphs by enumerating
// all vertex 4-subsets and, within each, all labelled embeddings.
func bruteMotifs(g *Graph) MotifCounts {
	var mc MotifCounts
	vs := g.Vertices()
	n := len(vs)
	adj := func(a, b V) int {
		if g.HasEdge(a, b) {
			return 1
		}
		return 0
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					q := [4]V{vs[i], vs[j], vs[k], vs[l]}
					// Count subgraph embeddings within the 4-set.
					// Paths on 4 vertices: orderings a-b-c-d up to reversal.
					perms := [][4]int{
						{0, 1, 2, 3}, {0, 1, 3, 2}, {0, 2, 1, 3},
						{0, 2, 3, 1}, {0, 3, 1, 2}, {0, 3, 2, 1},
						{1, 0, 2, 3}, {1, 0, 3, 2}, {1, 2, 0, 3},
						{1, 3, 0, 2}, {2, 0, 1, 3}, {2, 1, 0, 3},
					}
					for _, p := range perms {
						a, b, c, d := q[p[0]], q[p[1]], q[p[2]], q[p[3]]
						if adj(a, b) == 1 && adj(b, c) == 1 && adj(c, d) == 1 {
							mc.Path4++
						}
					}
					// Claws: each center choice.
					for c0 := 0; c0 < 4; c0++ {
						deg := 0
						for x := 0; x < 4; x++ {
							if x != c0 {
								deg += adj(q[c0], q[x])
							}
						}
						if deg == 3 {
							mc.Claw++
						}
					}
					// 4-cycles: three pairings.
					cyc := func(a, b, c, d V) bool {
						return adj(a, b) == 1 && adj(b, c) == 1 && adj(c, d) == 1 && adj(d, a) == 1
					}
					if cyc(q[0], q[1], q[2], q[3]) {
						mc.Cycle4++
					}
					if cyc(q[0], q[1], q[3], q[2]) {
						mc.Cycle4++
					}
					if cyc(q[0], q[2], q[1], q[3]) {
						mc.Cycle4++
					}
					// Paws: choose the triangle (3 of the 4) and the pendant
					// attachment.
					for skip := 0; skip < 4; skip++ {
						var tri [3]int
						ti := 0
						for x := 0; x < 4; x++ {
							if x != skip {
								tri[ti] = x
								ti++
							}
						}
						if adj(q[tri[0]], q[tri[1]])+adj(q[tri[1]], q[tri[2]])+adj(q[tri[0]], q[tri[2]]) != 3 {
							continue
						}
						for _, at := range tri {
							if adj(q[skip], q[at]) == 1 {
								mc.Paw++
							}
						}
					}
					// Diamonds: choose the missing-edge pair.
					edges := 0
					pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
					for _, pr := range pairs {
						edges += adj(q[pr[0]], q[pr[1]])
					}
					for _, miss := range pairs {
						ok := true
						for _, pr := range pairs {
							if pr == miss {
								continue
							}
							if adj(q[pr[0]], q[pr[1]]) == 0 {
								ok = false
								break
							}
						}
						if ok {
							mc.Diamond++
						}
					}
					if edges == 6 {
						mc.K4++
					}
				}
			}
		}
	}
	// The 12 permutations above cover each unordered 4-path exactly once
	// (they are the 4!/2 reversal-classes), so no correction is needed.
	return mc
}

func TestMotifsKnown(t *testing.T) {
	// K4: 4 claws? no — every 4-set is the whole graph here.
	k4 := complete(4)
	mc := k4.Motifs()
	want := MotifCounts{Path4: 12, Claw: 4, Cycle4: 3, Paw: 12, Diamond: 6, K4: 1}
	if mc != want {
		t.Fatalf("K4 motifs = %+v, want %+v", mc, want)
	}

	// Star K_{1,3}: one claw, nothing else.
	star := MustFromEdges([]Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	mc = star.Motifs()
	want = MotifCounts{Claw: 1}
	if mc != want {
		t.Fatalf("star motifs = %+v, want %+v", mc, want)
	}

	// Path on 4 vertices.
	p4 := path(4)
	mc = p4.Motifs()
	want = MotifCounts{Path4: 1}
	if mc != want {
		t.Fatalf("P4 motifs = %+v, want %+v", mc, want)
	}

	// C4.
	c4 := cycle(4)
	mc = c4.Motifs()
	want = MotifCounts{Path4: 4, Cycle4: 1}
	if mc != want {
		t.Fatalf("C4 motifs = %+v, want %+v", mc, want)
	}

	// Paw: triangle 0-1-2 plus pendant 3 at 0.
	// The paw also contains one claw (center 0, leaves 1,2,3).
	paw := MustFromEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	mc = paw.Motifs()
	want = MotifCounts{Path4: 2, Claw: 1, Paw: 1}
	if mc != want {
		t.Fatalf("paw motifs = %+v, want %+v", mc, want)
	}
}

func TestMotifsMatchBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomGraph(12, 0.4, seed)
		got, want := g.Motifs(), bruteMotifs(g)
		if got != want {
			t.Fatalf("seed %d: Motifs = %+v, brute = %+v", seed, got, want)
		}
	}
}

func TestMotifsMatchBruteForceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(10, 0.45, seed%256+1)
		return g.Motifs() == bruteMotifs(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
