package graph

import (
	"fmt"
	"sort"
)

// localTriangleSlice returns the memoized per-vertex triangle counts
// indexed by dense CSR id, computed by a sharded pass over the oriented
// triangle enumeration.
func (g *Graph) localTriangleSlice() []int64 {
	g.localTriOnce.Do(func() { g.localTriSlice = g.computeLocalTriangleSlice() })
	return g.localTriSlice
}

// computeLocalTriangleSlice is the unmemoized kernel behind
// localTriangleSlice (and thus LocalTriangles).
func (g *Graph) computeLocalTriangleSlice() []int64 {
	c := g.csr()
	acc := reduceShards(c,
		func() *[]int64 { s := make([]int64, len(c.verts)); return &s },
		func(acc *[]int64, v int32) {
			s := *acc
			c.triangleScan(v, func(u, w int32, _, _, _ int64) {
				s[v]++
				s[u]++
				s[w]++
			})
		},
		func(dst, src *[]int64) {
			d := *dst
			for i, x := range *src {
				if x != 0 {
					d[i] += x
				}
			}
		})
	return *acc
}

// LocalTriangles returns, for every vertex contained in at least one
// triangle, the number of triangles through it — the per-vertex counts
// behind local clustering coefficients (the quantity the paper's intro
// cites from spam-detection work). The returned map is a fresh copy built
// from the memoized dense counts; callers may modify it.
func (g *Graph) LocalTriangles() map[V]int64 {
	c := g.csr()
	out := make(map[V]int64)
	for v, lt := range g.localTriangleSlice() {
		if lt != 0 {
			out[c.verts[v]] = lt
		}
	}
	return out
}

// LocalClustering returns the local clustering coefficient of v: triangles
// through v divided by C(deg v, 2), or 0 for degree < 2.
func (g *Graph) LocalClustering(v V) float64 {
	d := int64(g.Degree(v))
	if d < 2 {
		return 0
	}
	var t int64
	ns := g.nbr[v]
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			if g.HasEdge(ns[i], ns[j]) {
				t++
			}
		}
	}
	return float64(t) / float64(d*(d-1)/2)
}

// AverageLocalClustering returns the mean local clustering coefficient over
// all vertices (Watts–Strogatz average clustering), or 0 for an empty graph.
func (g *Graph) AverageLocalClustering() float64 {
	if len(g.vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range g.vs {
		s += g.LocalClustering(v)
	}
	return s / float64(len(g.vs))
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, ordered by their minimum vertex.
func (g *Graph) ConnectedComponents() [][]V {
	seen := make(map[V]bool, len(g.vs))
	var comps [][]V
	for _, s := range g.vs {
		if seen[s] {
			continue
		}
		var comp []V
		queue := []V{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u := range g.nbr[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// Induced returns the subgraph induced on the given vertices. Unknown
// vertices are an error; duplicate entries are ignored.
func (g *Graph) Induced(vs []V) (*Graph, error) {
	keep := make(map[V]bool, len(vs))
	for _, v := range vs {
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("graph: induce: vertex %d not in graph", v)
		}
		keep[v] = true
	}
	b := NewBuilder()
	for v := range keep {
		b.AddVertex(v)
		for _, u := range g.nbr[v] {
			if keep[u] && v < u {
				if err := b.Add(v, u); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Graph(), nil
}

// Degeneracy returns the graph's degeneracy d (the smallest k such that
// every subgraph has a vertex of degree ≤ k) and a degeneracy ordering
// (each vertex has ≤ d neighbors later in the order). Computed with the
// standard bucket peeling algorithm in O(m + n).
func (g *Graph) Degeneracy() (int, []V) {
	n := len(g.vs)
	if n == 0 {
		return 0, nil
	}
	deg := make(map[V]int, n)
	maxd := 0
	for _, v := range g.vs {
		deg[v] = len(g.nbr[v])
		if deg[v] > maxd {
			maxd = deg[v]
		}
	}
	buckets := make([][]V, maxd+1)
	for _, v := range g.vs {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make(map[V]bool, n)
	order := make([]V, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		// Find the lowest non-empty bucket (entries may be stale).
		if cur > 0 {
			cur--
		}
		var v V
		found := false
		for !found {
			for cur <= maxd && len(buckets[cur]) == 0 {
				cur++
			}
			if cur > maxd {
				break
			}
			last := len(buckets[cur]) - 1
			v = buckets[cur][last]
			buckets[cur] = buckets[cur][:last]
			if !removed[v] && deg[v] == cur {
				found = true
			}
		}
		if !found {
			break
		}
		if cur > degeneracy {
			degeneracy = cur
		}
		removed[v] = true
		order = append(order, v)
		for _, u := range g.nbr[v] {
			if removed[u] {
				continue
			}
			deg[u]--
			buckets[deg[u]] = append(buckets[deg[u]], u)
		}
	}
	return degeneracy, order
}

// LocalFourCycles returns, for every vertex on at least one 4-cycle, the
// number of 4-cycles through it ("local butterfly counts" in the bipartite
// motif literature).
func (g *Graph) LocalFourCycles() map[V]int64 {
	out := make(map[V]int64)
	g.ForEachFourCycle(func(c FourCycle) {
		out[c.P]++
		out[c.Q]++
		out[c.R]++
		out[c.S]++
	})
	return out
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, v := range g.vs {
		h[len(g.nbr[v])]++
	}
	return h
}
