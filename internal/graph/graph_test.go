package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	b := NewBuilder()
	for i := 0; i < n-1; i++ {
		if err := b.Add(V(i), V(i+1)); err != nil {
			panic(err)
		}
	}
	return b.Graph()
}

func cycle(n int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		if err := b.Add(V(i), V((i+1)%n)); err != nil {
			panic(err)
		}
	}
	return b.Graph()
}

func complete(n int) *Graph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := b.Add(V(i), V(j)); err != nil {
				panic(err)
			}
		}
	}
	return b.Graph()
}

func completeBipartite(a, b int) *Graph {
	bld := NewBuilder()
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if err := bld.Add(V(i), V(a+j)); err != nil {
				panic(err)
			}
		}
	}
	return bld.Graph()
}

// randomGraph returns an Erdős–Rényi-style graph for cross-validation tests.
func randomGraph(n int, p float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(V(i))
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = b.Add(V(i), V(j))
			}
		}
	}
	return b.Graph()
}

// bruteTriangles counts triangles by checking all vertex triples.
func bruteTriangles(g *Graph) int64 {
	vs := g.Vertices()
	var t int64
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				continue
			}
			for k := j + 1; k < len(vs); k++ {
				if g.HasEdge(vs[i], vs[k]) && g.HasEdge(vs[j], vs[k]) {
					t++
				}
			}
		}
	}
	return t
}

// bruteFourCycles counts 4-cycles by checking all ordered 4-tuples once.
func bruteFourCycles(g *Graph) int64 {
	vs := g.Vertices()
	var t int64
	n := len(vs)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					a, b, c, d := vs[i], vs[j], vs[k], vs[l]
					// Three distinct cyclic arrangements of 4 labeled
					// vertices: a-b-c-d, a-b-d-c, a-c-b-d.
					if isC4(g, a, b, c, d) {
						t++
					}
					if isC4(g, a, b, d, c) {
						t++
					}
					if isC4(g, a, c, b, d) {
						t++
					}
				}
			}
		}
	}
	return t
}

func isC4(g *Graph, a, b, c, d V) bool {
	return g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(c, d) && g.HasEdge(d, a)
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(1, 1); err == nil {
		t.Fatal("expected error for self-loop")
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder()
	if err := b.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(2, 1); err == nil {
		t.Fatal("expected error for duplicate edge in reverse orientation")
	}
}

func TestAddIfAbsent(t *testing.T) {
	b := NewBuilder()
	if !b.AddIfAbsent(1, 2) {
		t.Fatal("first insert should succeed")
	}
	if b.AddIfAbsent(2, 1) {
		t.Fatal("duplicate insert should report false")
	}
	if b.AddIfAbsent(3, 3) {
		t.Fatal("self-loop insert should report false")
	}
	if b.M() != 1 {
		t.Fatalf("M = %d, want 1", b.M())
	}
}

func TestBasicAccessors(t *testing.T) {
	g := MustFromEdges([]Edge{{1, 2}, {2, 3}, {1, 3}, {3, 4}})
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Errorf("M = %d, want 4", g.M())
	}
	if g.Degree(3) != 3 {
		t.Errorf("Degree(3) = %d, want 3", g.Degree(3))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should hold in both orientations")
	}
	if g.HasEdge(1, 4) {
		t.Error("HasEdge(1,4) should be false")
	}
	if got := len(g.Edges()); got != 4 {
		t.Errorf("len(Edges) = %d, want 4", got)
	}
}

func TestIsolatedVertex(t *testing.T) {
	b := NewBuilder()
	b.AddVertex(7)
	_ = b.Add(1, 2)
	g := b.Graph()
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if !g.HasVertex(7) || g.Degree(7) != 0 {
		t.Fatal("isolated vertex lost")
	}
}

func TestEdgeNorm(t *testing.T) {
	if (Edge{5, 2}).Norm() != (Edge{2, 5}) {
		t.Fatal("Norm should swap")
	}
	if (Edge{2, 5}).Norm() != (Edge{2, 5}) {
		t.Fatal("Norm should be identity on canonical edges")
	}
}

func TestTriangleOpposite(t *testing.T) {
	tr := Triangle{1, 2, 3}
	cases := []struct {
		e Edge
		w V
	}{
		{Edge{1, 2}, 3}, {Edge{2, 1}, 3}, {Edge{1, 3}, 2}, {Edge{2, 3}, 1},
	}
	for _, c := range cases {
		if got := tr.Opposite(c.e); got != c.w {
			t.Errorf("Opposite(%v) = %d, want %d", c.e, got, c.w)
		}
	}
}

func TestTrianglesKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K4", complete(4), 4},
		{"K5", complete(5), 10},
		{"K6", complete(6), 20},
		{"C5", cycle(5), 0},
		{"C3", cycle(3), 1},
		{"path10", path(10), 0},
		{"K33", completeBipartite(3, 3), 0},
	}
	for _, c := range cases {
		if got := c.g.Triangles(); got != c.want {
			t.Errorf("%s: Triangles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFourCyclesKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"C4", cycle(4), 1},
		{"C5", cycle(5), 0},
		{"K4", complete(4), 3},
		{"K5", complete(5), 15},
		{"K23", completeBipartite(2, 3), 3},
		{"K33", completeBipartite(3, 3), 9},
		{"path10", path(10), 0},
	}
	for _, c := range cases {
		if got := c.g.FourCycles(); got != c.want {
			t.Errorf("%s: FourCycles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTrianglesMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomGraph(20, 0.3, seed)
		if got, want := g.Triangles(), bruteTriangles(g); got != want {
			t.Errorf("seed %d: Triangles = %d, brute = %d", seed, got, want)
		}
	}
}

func TestFourCyclesMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomGraph(14, 0.35, seed)
		if got, want := g.FourCycles(), bruteFourCycles(g); got != want {
			t.Errorf("seed %d: FourCycles = %d, brute = %d", seed, got, want)
		}
	}
}

func TestForEachTriangleEnumeratesOnceSorted(t *testing.T) {
	g := randomGraph(25, 0.3, 42)
	seen := map[Triangle]bool{}
	g.ForEachTriangle(func(tr Triangle) {
		if !(tr.A < tr.B && tr.B < tr.C) {
			t.Fatalf("triangle not sorted: %+v", tr)
		}
		if seen[tr] {
			t.Fatalf("triangle enumerated twice: %+v", tr)
		}
		seen[tr] = true
		for _, e := range tr.Edges() {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("triangle %+v uses non-edge %v", tr, e)
			}
		}
	})
	if int64(len(seen)) != g.Triangles() {
		t.Fatalf("enumerated %d, counted %d", len(seen), g.Triangles())
	}
}

func TestForEachFourCycleEnumeratesOnce(t *testing.T) {
	g := randomGraph(14, 0.35, 7)
	seen := map[FourCycle]bool{}
	var n int64
	g.ForEachFourCycle(func(c FourCycle) {
		n++
		if seen[c] {
			t.Fatalf("4-cycle enumerated twice: %+v", c)
		}
		seen[c] = true
		for _, e := range c.Edges() {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("4-cycle %+v uses non-edge %v", c, e)
			}
		}
		if c.P >= c.Q || c.R >= c.S || c.P >= c.R {
			t.Fatalf("4-cycle not canonical: %+v", c)
		}
	})
	if n != g.FourCycles() {
		t.Fatalf("enumerated %d, counted %d", n, g.FourCycles())
	}
}

func TestTriangleLoadsSumTo3T(t *testing.T) {
	g := randomGraph(30, 0.25, 3)
	var sum int64
	for _, l := range g.TriangleLoads() {
		sum += l
	}
	if sum != 3*g.Triangles() {
		t.Fatalf("Σ loads = %d, want 3T = %d", sum, 3*g.Triangles())
	}
}

func TestFourCycleWedgeLoadsSumTo4T(t *testing.T) {
	g := randomGraph(14, 0.4, 9)
	var sum int64
	for _, l := range g.FourCycleWedgeLoads() {
		sum += l
	}
	if sum != 4*g.FourCycles() {
		t.Fatalf("Σ wedge loads = %d, want 4T = %d", sum, 4*g.FourCycles())
	}
}

func TestFourCycleEdgeLoadsSumTo4T(t *testing.T) {
	g := randomGraph(14, 0.4, 11)
	var sum int64
	for _, l := range g.FourCycleEdgeLoads() {
		sum += l
	}
	if sum != 4*g.FourCycles() {
		t.Fatalf("Σ edge loads = %d, want 4T = %d", sum, 4*g.FourCycles())
	}
}

func TestWedgeFourCycleCountMatchesLoads(t *testing.T) {
	g := randomGraph(14, 0.4, 13)
	for w, want := range g.FourCycleWedgeLoads() {
		if got := g.WedgeFourCycleCount(w); got != want {
			t.Fatalf("wedge %+v: count %d, loads %d", w, got, want)
		}
	}
}

func TestCountCyclesKnown(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := cycle(n)
		for l := 3; l <= 8; l++ {
			got, err := g.CountCycles(l)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(0)
			if l == n {
				want = 1
			}
			if got != want {
				t.Errorf("C%d: CountCycles(%d) = %d, want %d", n, l, got, want)
			}
		}
	}
	// K5 has C(5,3)=10 triangles, 15 4-cycles, 12 5-cycles.
	g := complete(5)
	for _, c := range []struct {
		l    int
		want int64
	}{{3, 10}, {4, 15}, {5, 12}} {
		got, err := g.CountCycles(c.l)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("K5: CountCycles(%d) = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestCountCyclesRejectsShort(t *testing.T) {
	if _, err := complete(4).CountCycles(2); err == nil {
		t.Fatal("expected error for l < 3")
	}
	if _, err := complete(4).HasCycleOfLength(1); err == nil {
		t.Fatal("expected error for l < 3")
	}
}

func TestHasCycleOfLength(t *testing.T) {
	g := cycle(6)
	for l := 3; l <= 7; l++ {
		got, err := g.HasCycleOfLength(l)
		if err != nil {
			t.Fatal(err)
		}
		if got != (l == 6) {
			t.Errorf("C6: HasCycleOfLength(%d) = %v", l, got)
		}
	}
}

func TestGirthKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"triangle", cycle(3), 3},
		{"C5", cycle(5), 5},
		{"C8", cycle(8), 8},
		{"path", path(10), 0},
		{"K33", completeBipartite(3, 3), 4},
		{"K4", complete(4), 3},
	}
	for _, c := range cases {
		if got := c.g.Girth(); got != c.want {
			t.Errorf("%s: Girth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestWedgeCount(t *testing.T) {
	// Star K_{1,5}: P2 = C(5,2) = 10.
	b := NewBuilder()
	for i := 1; i <= 5; i++ {
		_ = b.Add(0, V(i))
	}
	if got := b.Graph().WedgeCount(); got != 10 {
		t.Fatalf("WedgeCount = %d, want 10", got)
	}
}

func TestTransitivity(t *testing.T) {
	if got := complete(4).Transitivity(); got != 1 {
		t.Fatalf("K4 transitivity = %v, want 1", got)
	}
	if got := path(5).Transitivity(); got != 0 {
		t.Fatalf("path transitivity = %v, want 0", got)
	}
	// Empty graph must not divide by zero.
	if got := NewBuilder().Graph().Transitivity(); got != 0 {
		t.Fatalf("empty transitivity = %v, want 0", got)
	}
}

func TestMaxTriangleLoad(t *testing.T) {
	// Book graph: edge {0,1} shared by 3 triangles.
	b := NewBuilder()
	_ = b.Add(0, 1)
	for i := 2; i <= 4; i++ {
		_ = b.Add(0, V(i))
		_ = b.Add(1, V(i))
	}
	if got := b.Graph().MaxTriangleLoad(); got != 3 {
		t.Fatalf("MaxTriangleLoad = %d, want 3", got)
	}
}

// Property: triangle count is invariant under relabeling vertices.
func TestTrianglesRelabelInvariantQuick(t *testing.T) {
	f := func(seed uint64, shift int64) bool {
		g := randomGraph(16, 0.3, seed%64+1)
		off := shift%1000 + 1000
		b := NewBuilder()
		for _, e := range g.Edges() {
			if err := b.Add(e.U+V(off), e.V+V(off)); err != nil {
				return false
			}
		}
		return g.Triangles() == b.Graph().Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any graph, Σ_e T(e) = 3T and max load ≤ T.
func TestTriangleLoadInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(18, 0.3, seed%128+1)
		total := g.Triangles()
		var sum, mx int64
		for _, l := range g.TriangleLoads() {
			sum += l
			if l > mx {
				mx = l
			}
		}
		return sum == 3*total && mx <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountCycles(3) and CountCycles(4) agree with the dedicated
// counters on random graphs.
func TestCountCyclesAgreesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(12, 0.35, seed%64+1)
		c3, err := g.CountCycles(3)
		if err != nil {
			return false
		}
		c4, err := g.CountCycles(4)
		if err != nil {
			return false
		}
		return c3 == g.Triangles() && c4 == g.FourCycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
