package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"unsafe"
)

// rebuildWithOps is the delta oracle: reconstruct the post-delta graph from
// scratch through the Builder.
func rebuildWithOps(t *testing.T, base *Graph, add, remove []Edge) *Graph {
	t.Helper()
	b := NewBuilder()
	removed := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		removed[e.Norm()] = true
	}
	for _, v := range base.Vertices() {
		b.AddVertex(v)
	}
	for _, e := range base.Edges() {
		if !removed[e] {
			if err := b.Add(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range add {
		if err := b.Add(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return b.Graph()
}

// assertSameGraph compares full adjacency structure and derived counters.
func assertSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("shape: got n=%d m=%d maxD=%d, want n=%d m=%d maxD=%d",
			got.N(), got.M(), got.MaxDegree(), want.N(), want.M(), want.MaxDegree())
	}
	if !reflect.DeepEqual(got.Vertices(), want.Vertices()) {
		t.Fatalf("vertex order: got %v, want %v", got.Vertices(), want.Vertices())
	}
	for _, v := range want.Vertices() {
		if !reflect.DeepEqual(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("neighbors(%d): got %v, want %v", v, got.Neighbors(v), want.Neighbors(v))
		}
	}
}

func TestDeltaApplyMatchesRebuild(t *testing.T) {
	base := MustFromEdges([]Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
	d := NewDelta(base)
	adds := []Edge{{0, 3}, {4, 5}, {5, 6}}
	removes := []Edge{{1, 2}, {3, 4}}
	for _, e := range adds {
		if err := d.Add(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range removes {
		if err := d.Remove(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if d.Ops() != 5 || d.Adds() != 3 || d.Removes() != 2 {
		t.Fatalf("ops = %d (%d adds, %d removes), want 5 (3, 2)", d.Ops(), d.Adds(), d.Removes())
	}
	got := d.Apply()
	want := rebuildWithOps(t, base, adds, removes)
	assertSameGraph(t, got, want)

	// The base graph is untouched.
	if base.M() != 5 || !base.HasEdge(1, 2) || base.HasEdge(0, 3) {
		t.Errorf("base graph mutated: m=%d", base.M())
	}
	// Derived quantities recompute lazily on the merged graph, matching a
	// cold rebuild.
	if got.WedgeCount() != want.WedgeCount() || got.Triangles() != want.Triangles() {
		t.Errorf("derived quantities: wedges %d/%d triangles %d/%d",
			got.WedgeCount(), want.WedgeCount(), got.Triangles(), want.Triangles())
	}
}

func TestDeltaValidation(t *testing.T) {
	base := MustFromEdges([]Edge{{0, 1}, {1, 2}})
	d := NewDelta(base)
	if err := d.Add(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := d.Add(1, 0); err == nil {
		t.Error("duplicate of base edge accepted")
	}
	if err := d.Remove(0, 2); err == nil {
		t.Error("removal of absent edge accepted")
	}
	if err := d.Add(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(2, 0); err == nil {
		t.Error("duplicate of staged add accepted")
	}
	if err := d.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(0, 1); err == nil {
		t.Error("double removal accepted")
	}
	if !d.Present(0, 2) || d.Present(0, 1) || !d.Present(1, 2) {
		t.Error("Present disagrees with staged view")
	}
}

// TestDeltaCancelingOps: add-then-remove and remove-then-add pairs are
// exact inverses, leaving the delta (and the applied graph) unchanged.
func TestDeltaCancelingOps(t *testing.T) {
	base := MustFromEdges([]Edge{{0, 1}, {1, 2}})
	d := NewDelta(base)
	if err := d.Add(5, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(5, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.Ops() != 0 {
		t.Fatalf("canceled pairs left ops=%d empty=%v", d.Ops(), d.Empty())
	}
	assertSameGraph(t, d.Apply(), base)
}

// TestDeltaCopyOnWrite: untouched vertices share their neighbor slices with
// the base graph — the merge must not deep-copy the whole adjacency.
func TestDeltaCopyOnWrite(t *testing.T) {
	base := MustFromEdges([]Edge{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	d := NewDelta(base)
	if err := d.Add(0, 2); err != nil {
		t.Fatal(err)
	}
	g := d.Apply()
	// Vertices 3,4,5 are untouched: their slices must alias the base's.
	for _, v := range []V{3, 4, 5} {
		bp := unsafe.SliceData(base.Neighbors(v))
		gp := unsafe.SliceData(g.Neighbors(v))
		if bp != gp {
			t.Errorf("vertex %d: neighbor slice was copied, want shared", v)
		}
	}
	// Touched vertices get fresh slices.
	if unsafe.SliceData(base.Neighbors(0)) == unsafe.SliceData(g.Neighbors(0)) {
		t.Error("touched vertex 0 shares its slice with the base")
	}
}

func TestDeltaSpentPanics(t *testing.T) {
	d := NewDelta(MustFromEdges([]Edge{{0, 1}}))
	if err := d.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	d.Apply()
	defer func() {
		if recover() == nil {
			t.Error("Add after Apply did not panic")
		}
	}()
	_ = d.Add(2, 3)
}

func TestDeltaNilAndEmptyBase(t *testing.T) {
	d := NewDelta(nil)
	if err := d.Add(7, 9); err != nil {
		t.Fatal(err)
	}
	g := d.Apply()
	if g.N() != 2 || g.M() != 1 || !g.HasEdge(7, 9) {
		t.Fatalf("graph from nil base: n=%d m=%d", g.N(), g.M())
	}
}

// TestDeltaRandomizedAgainstRebuild drives long random op sequences over
// evolving bases (chaining Apply → NewDelta) and checks every merged graph
// — structure and exact kernels — against the from-scratch rebuild.
func TestDeltaRandomizedAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(30, 0.12, 42)
	for round := 0; round < 8; round++ {
		d := NewDelta(g)
		var adds, removes []Edge
		for op := 0; op < 40; op++ {
			u := V(rng.Intn(34))
			v := V(rng.Intn(34))
			if u == v {
				continue
			}
			if d.Present(u, v) {
				if rng.Intn(2) == 0 {
					if err := d.Remove(u, v); err != nil {
						t.Fatal(err)
					}
					removes = append(removes, Edge{u, v}.Norm())
				}
			} else if err := d.Add(u, v); err == nil {
				adds = append(adds, Edge{u, v}.Norm())
			}
		}
		// Net effect of the op log (an edge may bounce in and out).
		net := make(map[Edge]int)
		for _, e := range adds {
			net[e]++
		}
		for _, e := range removes {
			net[e]--
		}
		var netAdd, netCut []Edge
		for e, n := range net {
			switch {
			case n > 0:
				netAdd = append(netAdd, e)
			case n < 0:
				netCut = append(netCut, e)
			}
		}
		want := rebuildWithOps(t, g, netAdd, netCut)
		got := d.Apply()
		assertSameGraph(t, got, want)
		if gt, wt := got.Triangles(), want.Triangles(); gt != wt {
			t.Fatalf("round %d: triangles %d != rebuild %d", round, gt, wt)
		}
		if gf, wf := got.FourCycles(), want.FourCycles(); gf != wf {
			t.Fatalf("round %d: four-cycles %d != rebuild %d", round, gf, wf)
		}
		g = got
	}
}
