package graph

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
)

// Property tests: every CSR kernel agrees exactly — values, maps, and for
// the enumerator even visit order — with the map-based reference oracles in
// oracle.go, on each workload family the experiments draw from, under both
// the sequential path (1 worker) and a concurrent pool. The generators are
// re-implemented inline because internal/gen and internal/plane import this
// package.

// gnp returns G(n,p) with vertex ids stretched by stride (stride > 1 makes
// ids non-contiguous, exercising the dense renumbering).
func gnp(n int, p float64, stride int64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xa5e))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(V(int64(i) * stride))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddIfAbsent(V(int64(i)*stride), V(int64(j)*stride))
			}
		}
	}
	return b.Graph()
}

// chungLu returns a Chung–Lu graph with power-ish weights w_i ∝ (i+1)^{-α}
// scaled to target average degree.
func chungLu(n int, alpha float64, avgDeg float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 7))
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(V(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / (scale * float64(n))
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				b.AddIfAbsent(V(i), V(j))
			}
		}
	}
	return b.Graph()
}

// planeIncidence returns the point–line incidence graph of PG(2,q) for
// prime q: girth-6, (q+1)-regular, the extremal 4-cycle-free family of the
// paper's Section 5.2. Points and lines are normalized homogeneous triples
// over GF(q) (last nonzero coordinate equal to 1); incidence is a zero dot
// product.
func planeIncidence(q int64) *Graph {
	var norm [][3]int64
	for z := int64(0); z < 2; z++ {
		for y := int64(0); y < q; y++ {
			for x := int64(0); x < q; x++ {
				v := [3]int64{x, y, z}
				switch {
				case v[2] == 1:
					norm = append(norm, v)
				case v[2] == 0 && v[1] == 1:
					norm = append(norm, v)
				case v[2] == 0 && v[1] == 0 && v[0] == 1:
					norm = append(norm, v)
				}
			}
		}
	}
	b := NewBuilder()
	off := int64(len(norm))
	for i, p := range norm {
		for j, l := range norm {
			dot := (p[0]*l[0] + p[1]*l[1] + p[2]*l[2]) % q
			if dot == 0 {
				b.AddIfAbsent(V(int64(i)), V(off+int64(j)))
			}
		}
	}
	return b.Graph()
}

// plantedCycles returns k disjoint simple cycles of length l over sparse
// G(n,p) noise on separate vertices.
func plantedCycles(k, l int, seed uint64) *Graph {
	b := NewBuilder()
	id := int64(0)
	for c := 0; c < k; c++ {
		first := id
		for i := 0; i < l; i++ {
			next := first
			if i < l-1 {
				next = id + 1
			}
			b.AddIfAbsent(V(id), V(next))
			id++
		}
	}
	rng := rand.New(rand.NewPCG(seed, 3))
	base := id + 5
	for i := 0; i < 120; i++ {
		u := base + rng.Int64N(60)
		v := base + rng.Int64N(60)
		if u != v {
			b.AddIfAbsent(V(u), V(v))
		}
	}
	return b.Graph()
}

func workloadGraphs(t *testing.T) map[string]func() *Graph {
	t.Helper()
	return map[string]func() *Graph{
		"gnp-small":        func() *Graph { return gnp(40, 0.25, 1, 11) },
		"gnp-mid":          func() *Graph { return gnp(120, 0.08, 1, 12) },
		"gnp-noncontig":    func() *Graph { return gnp(80, 0.12, 1_000_003, 13) },
		"chunglu":          func() *Graph { return chungLu(150, 0.4, 6, 14) },
		"plane-q3":         func() *Graph { return planeIncidence(3) },
		"plane-q5":         func() *Graph { return planeIncidence(5) },
		"planted-c5":       func() *Graph { return plantedCycles(6, 5, 15) },
		"planted-c7":       func() *Graph { return plantedCycles(4, 7, 16) },
		"empty":            func() *Graph { return NewBuilder().Graph() },
		"isolated-only":    func() *Graph { b := NewBuilder(); b.AddVertex(3); b.AddVertex(9); return b.Graph() },
		"single-edge":      func() *Graph { return MustFromEdges([]Edge{{5, 9}}) },
		"triangle-plus-v0": func() *Graph { return MustFromEdges([]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}}) },
	}
}

// withWorkers runs the check under the sequential path and under a forced
// 4-worker pool (independent of GOMAXPROCS), rebuilding the graph each time
// so memoization cannot mask a divergence.
func withWorkers(t *testing.T, mk func() *Graph, check func(t *testing.T, g *Graph)) {
	t.Helper()
	for _, w := range []int{1, 4} {
		prev := SetMaxWorkers(w)
		check(t, mk())
		SetMaxWorkers(prev)
	}
}

func TestCSRKernelsMatchOracles(t *testing.T) {
	for name, mk := range workloadGraphs(t) {
		t.Run(name, func(t *testing.T) {
			withWorkers(t, mk, func(t *testing.T, g *Graph) {
				if got, want := g.Triangles(), g.trianglesRef(); got != want {
					t.Errorf("Triangles = %d, want %d", got, want)
				}
				if got, want := g.FourCycles(), g.fourCyclesRef(); got != want {
					t.Errorf("FourCycles = %d, want %d", got, want)
				}
				if got, want := g.WedgeCount(), g.wedgeCountRef(); got != want {
					t.Errorf("WedgeCount = %d, want %d", got, want)
				}
				if got, want := g.MaxTriangleLoad(), g.maxTriangleLoadRef(); got != want {
					t.Errorf("MaxTriangleLoad = %d, want %d", got, want)
				}
				if got, want := g.TriangleLoads(), g.triangleLoadsRef(); !loadsEqual(got, want) {
					t.Errorf("TriangleLoads = %v, want %v", got, want)
				}
				if got, want := g.LocalTriangles(), g.localTrianglesRef(); !reflect.DeepEqual(got, want) {
					t.Errorf("LocalTriangles = %v, want %v", got, want)
				}
				if got, want := g.coDegreeCounts(), g.coDegreeCountsRef(); !reflect.DeepEqual(got, want) {
					t.Errorf("coDegreeCounts = %v, want %v", got, want)
				}
				if got, want := g.FourCycleWedgeLoads(), g.fourCycleWedgeLoadsRef(); !reflect.DeepEqual(got, want) {
					t.Errorf("FourCycleWedgeLoads = %v, want %v", got, want)
				}
				for _, l := range []int{3, 4, 5, 6, 7} {
					got, err := g.CountCycles(l)
					if err != nil {
						t.Fatal(err)
					}
					want, err := g.countCyclesRef(l)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("CountCycles(%d) = %d, want %d", l, got, want)
					}
				}
				if got, want := g.Motifs(), g.motifsRef(); got != want {
					t.Errorf("Motifs = %+v, want %+v", got, want)
				}
			})
		})
	}
}

// loadsEqual treats a missing key and a zero value as distinct, exactly
// like reflect.DeepEqual — wrapped for a clearer failure message path.
func loadsEqual(a, b map[Edge]int64) bool { return reflect.DeepEqual(a, b) }

// TestForEachTriangleOrderMatchesReference pins the enumeration order, not
// just the multiset: downstream code may rely on deterministic replay.
func TestForEachTriangleOrderMatchesReference(t *testing.T) {
	for name, mk := range workloadGraphs(t) {
		t.Run(name, func(t *testing.T) {
			g := mk()
			var got, want []Triangle
			g.ForEachTriangle(func(tr Triangle) { got = append(got, tr) })
			g.forEachTriangleRef(func(tr Triangle) { want = append(want, tr) })
			if !reflect.DeepEqual(got, want) {
				t.Errorf("enumeration order diverged:\ngot  %v\nwant %v", got, want)
			}
		})
	}
}

func TestDegreeMoments(t *testing.T) {
	g := gnp(60, 0.2, 1, 21)
	s1, s2, s3 := g.DegreeMoments()
	var w1, w2, w3 int64
	for _, v := range g.Vertices() {
		d := int64(g.Degree(v))
		w1 += d
		w2 += d * d
		w3 += d * d * d
	}
	if s1 != w1 || s2 != w2 || s3 != w3 {
		t.Errorf("DegreeMoments = %d,%d,%d want %d,%d,%d", s1, s2, s3, w1, w2, w3)
	}
	if s1 != 2*g.M() {
		t.Errorf("Σdeg = %d, want 2m = %d", s1, 2*g.M())
	}
}

// TestMemoizedQuantitiesStable asserts repeated calls return identical
// (and, for maps, the shared) results.
func TestMemoizedQuantitiesStable(t *testing.T) {
	g := gnp(80, 0.15, 1, 31)
	if g.Triangles() != g.Triangles() {
		t.Error("Triangles not stable")
	}
	if g.FourCycles() != g.FourCycles() {
		t.Error("FourCycles not stable")
	}
	l1 := g.TriangleLoads()
	l2 := g.TriangleLoads()
	if reflect.ValueOf(l1).Pointer() != reflect.ValueOf(l2).Pointer() {
		t.Error("TriangleLoads should return the shared memoized map")
	}
	if g.Motifs() != g.Motifs() {
		t.Error("Motifs not stable")
	}
}

// TestCSRInvariants checks the index structure directly: monotone row
// pointers, sorted rows that round-trip to the map adjacency, a complete
// canonical edge indexing, and the O(√m)-out-degree orientation.
func TestCSRInvariants(t *testing.T) {
	for name, mk := range workloadGraphs(t) {
		t.Run(name, func(t *testing.T) {
			g := mk()
			c := g.csr()
			n := len(c.verts)
			if n != g.N() {
				t.Fatalf("verts = %d, want %d", n, g.N())
			}
			if c.rowPtr[n] != 2*g.M() {
				t.Fatalf("rowPtr[n] = %d, want 2m = %d", c.rowPtr[n], 2*g.M())
			}
			if c.upOff[n] != g.M() {
				t.Fatalf("upOff[n] = %d, want m = %d", c.upOff[n], g.M())
			}
			seen := make(map[int64]bool)
			for v := 0; v < n; v++ {
				if c.rowPtr[v] > c.rowPtr[v+1] {
					t.Fatalf("rowPtr not monotone at %d", v)
				}
				row := c.row(int32(v))
				want := g.Neighbors(c.verts[v])
				if len(row) != len(want) {
					t.Fatalf("row %d has %d entries, want %d", v, len(row), len(want))
				}
				for i, u := range row {
					if c.verts[u] != want[i] {
						t.Fatalf("row %d entry %d = %d, want %d", v, i, c.verts[u], want[i])
					}
					if i > 0 && row[i-1] >= u {
						t.Fatalf("row %d not strictly ascending", v)
					}
				}
				for j := c.upStart[v]; j < c.rowPtr[v+1]; j++ {
					if c.colIdx[j] <= int32(v) {
						t.Fatalf("canonical segment of row %d contains %d", v, c.colIdx[j])
					}
					id := c.upOff[v] + (j - c.upStart[v])
					if seen[id] {
						t.Fatalf("duplicate edge id %d", id)
					}
					seen[id] = true
					if got := c.edgeID(int32(v), c.colIdx[j]); got != id {
						t.Fatalf("edgeID = %d, want %d", got, id)
					}
					if got := c.edgeID(c.colIdx[j], int32(v)); got != id {
						t.Fatalf("edgeID (swapped) = %d, want %d", got, id)
					}
				}
				out, _ := c.out(int32(v))
				for i, u := range out {
					if c.rank[u] <= c.rank[v] {
						t.Fatalf("out row %d contains lower rank %d", v, u)
					}
					if i > 0 && out[i-1] >= u {
						t.Fatalf("out row %d not ascending", v)
					}
				}
			}
			if int64(len(seen)) != g.M() {
				t.Fatalf("indexed %d edges, want %d", len(seen), g.M())
			}
		})
	}
}

// FuzzCSRKernels builds graphs from fuzzer-chosen edges over deliberately
// non-contiguous vertex ids and cross-checks the CSR kernels against the
// map-based oracles.
func FuzzCSRKernels(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3})
	f.Add([]byte{10, 20, 20, 30, 30, 40, 40, 10, 5, 10})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder()
		for i := 0; i+1 < len(data) && i < 60; i += 2 {
			// Spread ids so dense renumbering is exercised; mix two
			// strides so gaps are irregular.
			u := V(int64(data[i]) * 1_000_003)
			v := V(int64(data[i+1])*977 + 1)
			if u != v {
				b.AddIfAbsent(u, v)
			}
		}
		g := b.Graph()
		if got, want := g.Triangles(), g.trianglesRef(); got != want {
			t.Fatalf("Triangles = %d, want %d", got, want)
		}
		if got, want := g.FourCycles(), g.fourCyclesRef(); got != want {
			t.Fatalf("FourCycles = %d, want %d", got, want)
		}
		if got, want := g.TriangleLoads(), g.triangleLoadsRef(); !reflect.DeepEqual(got, want) {
			t.Fatalf("TriangleLoads = %v, want %v", got, want)
		}
		got5, err := g.CountCycles(5)
		if err != nil {
			t.Fatal(err)
		}
		want5, err := g.countCyclesRef(5)
		if err != nil {
			t.Fatal(err)
		}
		if got5 != want5 {
			t.Fatalf("CountCycles(5) = %d, want %d", got5, want5)
		}
		c := g.csr()
		if c.rowPtr[len(c.verts)] != 2*g.M() || c.upOff[len(c.verts)] != g.M() {
			t.Fatalf("CSR shape: rowPtr end %d (2m=%d), upOff end %d (m=%d)",
				c.rowPtr[len(c.verts)], 2*g.M(), c.upOff[len(c.verts)], g.M())
		}
	})
}
