package graph

import (
	"fmt"
	"sort"
)

// Delta is a buffer of edge additions and removals staged against an
// immutable base Graph. It is the write side of live ingestion: mutations
// accumulate cheaply in the delta (O(1) per op, no list rebuilding), and
// Apply materializes a new immutable Graph by copy-on-write — only the
// adjacency lists of touched vertices are rebuilt; every untouched vertex
// shares its neighbor slice with the base. Because Apply produces a fresh
// Graph value, all memoized derived quantities (triangle counts, 4-cycle
// counts, degree moments, the CSR index, …) are recomputed lazily on first
// use of the new graph, exactly as for a cold-loaded graph.
//
// Every mutation is validated at staging time against the delta's current
// view (base plus staged ops): adding a present edge, removing an absent
// edge, and self-loops are errors and leave the delta unchanged. A Delta
// is not safe for concurrent use; callers serialize mutations (the serve
// layer holds one delta per dataset behind a mutex). After Apply the delta
// is exhausted: further ops panic, so a stale buffer can never be applied
// against the wrong base.
type Delta struct {
	base *Graph
	// state tracks staged edges in canonical orientation: +1 staged add,
	// -1 staged remove. Edges in neither state follow the base.
	state map[Edge]int8
	adds  int // staged additions (base-absent edges now present)
	cuts  int // staged removals (base-present edges now absent)
	spent bool
}

// NewDelta returns an empty delta over base. A nil base stages against the
// empty graph.
func NewDelta(base *Graph) *Delta {
	if base == nil {
		base = &Graph{}
	}
	return &Delta{base: base, state: make(map[Edge]int8)}
}

// Base returns the graph the delta stages against.
func (d *Delta) Base() *Graph { return d.base }

// Ops returns the number of staged net changes (adds plus removes). A
// canceled pair — an edge added then removed, or removed then re-added —
// contributes zero.
func (d *Delta) Ops() int { return d.adds + d.cuts }

// Adds returns the number of staged net additions.
func (d *Delta) Adds() int { return d.adds }

// Removes returns the number of staged net removals.
func (d *Delta) Removes() int { return d.cuts }

// Empty reports whether the delta stages no net change.
func (d *Delta) Empty() bool { return len(d.state) == 0 }

// Present reports whether {u,v} is an edge of the delta's current view
// (base plus staged ops).
func (d *Delta) Present(u, v V) bool {
	e := Edge{u, v}.Norm()
	switch d.state[e] {
	case 1:
		return true
	case -1:
		return false
	}
	return d.base.HasEdge(u, v)
}

// checkUsable panics if the delta was already applied.
func (d *Delta) checkUsable() {
	if d.spent {
		panic("graph: Delta used after Apply")
	}
}

// Add stages the addition of {u,v}. It is an error if the edge is already
// present in the delta's view or if u == v; on error nothing is staged.
func (d *Delta) Add(u, v V) error {
	d.checkUsable()
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if d.Present(u, v) {
		return fmt.Errorf("graph: edge {%d,%d} already present", u, v)
	}
	e := Edge{u, v}.Norm()
	if d.state[e] == -1 {
		delete(d.state, e) // re-add of a staged removal cancels it
		d.cuts--
	} else {
		d.state[e] = 1
		d.adds++
	}
	return nil
}

// Remove stages the removal of {u,v}. It is an error if the edge is absent
// from the delta's view; on error nothing is staged.
func (d *Delta) Remove(u, v V) error {
	d.checkUsable()
	if !d.Present(u, v) {
		return fmt.Errorf("graph: edge {%d,%d} not present", u, v)
	}
	e := Edge{u, v}.Norm()
	if d.state[e] == 1 {
		delete(d.state, e) // removal of a staged addition cancels it
		d.adds--
	} else {
		d.state[e] = -1
		d.cuts++
	}
	return nil
}

// Apply materializes the delta into a new immutable Graph by copy-on-write:
// adjacency lists of vertices untouched by any staged op are shared with
// the base graph (not copied), touched lists are rebuilt sorted, and
// vertices introduced by staged additions are inserted into the vertex
// order. Vertices whose last edge was removed remain as isolated vertices,
// matching a Builder that saw AddVertex. The base graph is never modified.
// The delta is consumed: any later op on it panics.
func (d *Delta) Apply() *Graph {
	d.checkUsable()
	d.spent = true

	// Per-vertex staged changes, canonical orientation expanded to both
	// endpoints.
	type change struct {
		add []V
		cut map[V]bool
	}
	touched := make(map[V]*change)
	chg := func(v V) *change {
		c, ok := touched[v]
		if !ok {
			c = &change{}
			touched[v] = c
		}
		return c
	}
	for e, st := range d.state {
		switch st {
		case 1:
			chg(e.U).add = append(chg(e.U).add, e.V)
			chg(e.V).add = append(chg(e.V).add, e.U)
		case -1:
			cu, cv := chg(e.U), chg(e.V)
			if cu.cut == nil {
				cu.cut = make(map[V]bool)
			}
			if cv.cut == nil {
				cv.cut = make(map[V]bool)
			}
			cu.cut[e.V] = true
			cv.cut[e.U] = true
		}
	}

	g := &Graph{
		nbr: make(map[V][]V, len(d.base.nbr)+len(touched)),
		m:   d.base.m + int64(d.adds) - int64(d.cuts),
	}
	// Copy-on-write: untouched vertices alias the base's slices.
	for v, ns := range d.base.nbr {
		if _, ok := touched[v]; !ok {
			g.nbr[v] = ns
		}
	}
	var newVerts []V
	for v, c := range touched {
		base := d.base.nbr[v]
		ns := make([]V, 0, len(base)+len(c.add))
		for _, u := range base {
			if !c.cut[u] {
				ns = append(ns, u)
			}
		}
		ns = append(ns, c.add...)
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		g.nbr[v] = ns
		if !d.base.HasVertex(v) {
			newVerts = append(newVerts, v)
		}
	}
	// Vertex order: the base's sorted list merged with any new vertices.
	if len(newVerts) == 0 {
		g.vs = d.base.vs
	} else {
		sort.Slice(newVerts, func(i, j int) bool { return newVerts[i] < newVerts[j] })
		g.vs = mergeSortedV(d.base.vs, newVerts)
	}
	for _, v := range g.vs {
		if deg := len(g.nbr[v]); deg > g.maxD {
			g.maxD = deg
		}
	}
	return g
}

// mergeSortedV merges two sorted, disjoint vertex lists.
func mergeSortedV(a, b []V) []V {
	out := make([]V, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
