package graph_test

import (
	"fmt"

	"adjstream/internal/graph"
)

// Build the complete graph K4 and read off the exact cycle statistics that
// streaming estimates are measured against.
func Example() {
	b := graph.NewBuilder()
	for u := graph.V(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddIfAbsent(u, v)
		}
	}
	g := b.Graph()
	c4, _ := g.CountCycles(4)
	fmt.Println("triangles:", g.Triangles())
	fmt.Println("4-cycles:", c4)
	fmt.Println("transitivity:", g.Transitivity())
	// Output:
	// triangles: 4
	// 4-cycles: 3
	// transitivity: 1
}
