package graph

import "sort"

// Triangle is a triangle on three distinct vertices in sorted order A < B < C.
type Triangle struct {
	A, B, C V
}

// Edges returns the three edges of the triangle in canonical orientation.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{{t.A, t.B}, {t.A, t.C}, {t.B, t.C}}
}

// Opposite returns the vertex of t not incident to e. It panics if e is not
// an edge of t.
func (t Triangle) Opposite(e Edge) V {
	e = e.Norm()
	switch e {
	case Edge{t.A, t.B}:
		return t.C
	case Edge{t.A, t.C}:
		return t.B
	case Edge{t.B, t.C}:
		return t.A
	}
	panic("graph: edge not in triangle")
}

// rank orders vertices by (degree, id); the forward triangle-enumeration
// algorithm directs each edge from lower to higher rank, which bounds the
// out-degree by O(√m) and gives an O(m^{3/2}) enumeration.
func (g *Graph) rank() map[V]int {
	vs := make([]V, len(g.vs))
	copy(vs, g.vs)
	sort.Slice(vs, func(i, j int) bool {
		di, dj := len(g.nbr[vs[i]]), len(g.nbr[vs[j]])
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
	r := make(map[V]int, len(vs))
	for i, v := range vs {
		r[v] = i
	}
	return r
}

// ForEachTriangle calls fn exactly once for every triangle in g, in sorted
// vertex order (A < B < C). Enumeration runs in O(m^{3/2}) time.
func (g *Graph) ForEachTriangle(fn func(t Triangle)) {
	r := g.rank()
	// out[v] = neighbors of v with higher rank, sorted by vertex id.
	out := make(map[V][]V, len(g.vs))
	for _, v := range g.vs {
		rv := r[v]
		var os []V
		for _, u := range g.nbr[v] {
			if r[u] > rv {
				os = append(os, u)
			}
		}
		out[v] = os // already sorted: g.nbr[v] is sorted
	}
	for _, v := range g.vs {
		ov := out[v]
		for _, u := range ov {
			ou := out[u]
			// Intersect ov and ou by sorted merge.
			i, j := 0, 0
			for i < len(ov) && j < len(ou) {
				switch {
				case ov[i] < ou[j]:
					i++
				case ov[i] > ou[j]:
					j++
				default:
					fn(sortedTriangle(v, u, ov[i]))
					i++
					j++
				}
			}
		}
	}
}

func sortedTriangle(a, b, c V) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}

// Triangles returns the exact number of triangles in g.
func (g *Graph) Triangles() int64 {
	var t int64
	g.ForEachTriangle(func(Triangle) { t++ })
	return t
}

// TriangleLoads returns, for every edge that participates in at least one
// triangle, the number of triangles containing that edge (the paper's T(e)).
func (g *Graph) TriangleLoads() map[Edge]int64 {
	loads := make(map[Edge]int64)
	g.ForEachTriangle(func(t Triangle) {
		for _, e := range t.Edges() {
			loads[e]++
		}
	})
	return loads
}

// Transitivity returns the global clustering coefficient 3T / P2, or 0 when
// the graph has no wedges.
func (g *Graph) Transitivity() float64 {
	p2 := g.WedgeCount()
	if p2 == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(p2)
}

// MaxTriangleLoad returns the maximum number of triangles sharing one edge.
func (g *Graph) MaxTriangleLoad() int64 {
	var mx int64
	for _, l := range g.TriangleLoads() {
		if l > mx {
			mx = l
		}
	}
	return mx
}
