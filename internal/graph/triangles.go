package graph

// Triangle is a triangle on three distinct vertices in sorted order A < B < C.
type Triangle struct {
	A, B, C V
}

// Edges returns the three edges of the triangle in canonical orientation.
func (t Triangle) Edges() [3]Edge {
	return [3]Edge{{t.A, t.B}, {t.A, t.C}, {t.B, t.C}}
}

// Opposite returns the vertex of t not incident to e. It panics if e is not
// an edge of t.
func (t Triangle) Opposite(e Edge) V {
	e = e.Norm()
	switch e {
	case Edge{t.A, t.B}:
		return t.C
	case Edge{t.A, t.C}:
		return t.B
	case Edge{t.B, t.C}:
		return t.A
	}
	panic("graph: edge not in triangle")
}

// ForEachTriangle calls fn exactly once for every triangle in g, in sorted
// vertex order (A < B < C), running in O(m^{3/2}) over the CSR index's
// cached degree-rank orientation. The visit order is identical to the
// original map-based enumeration (and is asserted against it in the
// property tests). Enumeration is sequential — fn need not be safe for
// concurrent use; the aggregate kernels (Triangles, TriangleLoads, ...)
// shard the same scan across workers instead.
func (g *Graph) ForEachTriangle(fn func(t Triangle)) {
	c := g.csr()
	for v := 0; v < len(c.verts); v++ {
		c.triangleScan(int32(v), func(u, w int32, _, _, _ int64) {
			fn(sortedTriangle(c.verts[v], c.verts[u], c.verts[w]))
		})
	}
}

func sortedTriangle(a, b, c V) Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}

// Triangles returns the exact number of triangles in g. The count is
// computed once — sharded across the kernel worker pool on large graphs —
// and memoized.
func (g *Graph) Triangles() int64 {
	g.triOnce.Do(func() { g.triCount = g.computeTriangles() })
	return g.triCount
}

// computeTriangles is the unmemoized kernel behind Triangles. The benchmark
// suite calls it directly so every iteration does real work.
func (g *Graph) computeTriangles() int64 {
	c := g.csr()
	acc := reduceShards(c,
		func() *int64 { return new(int64) },
		func(acc *int64, v int32) {
			c.triangleScan(v, func(_, _ int32, _, _, _ int64) { *acc++ })
		},
		func(dst, src *int64) { *dst += *src })
	return *acc
}

// triangleLoadSlice returns the memoized per-edge triangle counts indexed
// by canonical CSR edge id.
func (g *Graph) triangleLoadSlice() []int64 {
	g.triLoadsOnce.Do(func() { g.triLoadSlice = g.computeTriangleLoadSlice() })
	return g.triLoadSlice
}

// computeTriangleLoadSlice is the unmemoized kernel behind
// triangleLoadSlice (and thus TriangleLoads and MaxTriangleLoad).
func (g *Graph) computeTriangleLoadSlice() []int64 {
	c := g.csr()
	acc := reduceShards(c,
		func() *[]int64 { s := make([]int64, g.m); return &s },
		func(acc *[]int64, v int32) {
			s := *acc
			c.triangleScan(v, func(_, _ int32, evu, evw, euw int64) {
				s[evu]++
				s[evw]++
				s[euw]++
			})
		},
		func(dst, src *[]int64) {
			d := *dst
			for i, x := range *src {
				if x != 0 {
					d[i] += x
				}
			}
		})
	return *acc
}

// TriangleLoads returns, for every edge that participates in at least one
// triangle, the number of triangles containing that edge (the paper's
// T(e)). The map is computed once and shared: callers must not modify it.
func (g *Graph) TriangleLoads() map[Edge]int64 {
	g.triLoadMapOnce.Do(func() {
		loads := g.triangleLoadSlice()
		c := g.csr()
		mp := make(map[Edge]int64)
		c.forEachUpEdge(func(id int64, a, b int32) {
			if l := loads[id]; l != 0 {
				mp[Edge{c.verts[a], c.verts[b]}] = l
			}
		})
		g.triLoadMap = mp
	})
	return g.triLoadMap
}

// Transitivity returns the global clustering coefficient 3T / P2, or 0 when
// the graph has no wedges.
func (g *Graph) Transitivity() float64 {
	p2 := g.WedgeCount()
	if p2 == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(p2)
}

// MaxTriangleLoad returns the maximum number of triangles sharing one edge.
// It streams the max over the flat per-edge load slice instead of
// materializing the Edge-keyed map.
func (g *Graph) MaxTriangleLoad() int64 {
	var mx int64
	for _, l := range g.triangleLoadSlice() {
		if l > mx {
			mx = l
		}
	}
	return mx
}
