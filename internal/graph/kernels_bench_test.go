package graph

import (
	"fmt"
	"testing"
)

// benchScales are the three graph sizes the exact-kernel suite runs at.
// Densities are chosen so the edge count roughly triples per step while the
// co-degree structure stays non-trivial (avg degree 20–30).
var benchScales = []struct {
	name string
	n    int
	p    float64
}{
	{"small", 200, 0.10},
	{"medium", 600, 0.05},
	{"large", 1500, 0.02},
}

func benchGraph(sc struct {
	name string
	n    int
	p    float64
}) *Graph {
	return gnp(sc.n, sc.p, 1, 0xbe47+uint64(sc.n))
}

// BenchmarkExactKernels pits the retired map-based implementations (kept as
// test oracles in oracle.go) against the CSR kernels, sequentially and on a
// 4-worker pool. The CSR index is built once outside the timed region — it
// is shared by every kernel on a real graph — and the csr-* variants call
// the unmemoized compute paths so each iteration does full work.
func BenchmarkExactKernels(b *testing.B) {
	kernels := []struct {
		name   string
		oracle func(g *Graph)
		csr    func(g *Graph)
	}{
		{
			name:   "triangles",
			oracle: func(g *Graph) { g.trianglesRef() },
			csr:    func(g *Graph) { g.computeTriangles() },
		},
		{
			name:   "fourcycles",
			oracle: func(g *Graph) { g.fourCyclesRef() },
			csr:    func(g *Graph) { g.computeFourCycles() },
		},
		{
			name:   "triangle-loads",
			oracle: func(g *Graph) { g.triangleLoadsRef() },
			csr:    func(g *Graph) { g.computeTriangleLoadSlice() },
		},
		{
			name:   "motifs",
			oracle: func(g *Graph) { g.motifsRef() },
			csr: func(g *Graph) {
				g.computeMotifs(
					g.computeTriangles(), g.computeFourCycles(),
					g.computeLocalTriangleSlice(), g.computeTriangleLoadSlice())
			},
		},
	}
	for _, sc := range benchScales {
		g := benchGraph(sc)
		g.csr()
		for _, k := range kernels {
			impls := []struct {
				name    string
				workers int
				fn      func(g *Graph)
			}{
				{"oracle", 1, k.oracle},
				{"csr-seq", 1, k.csr},
				{"csr-par4", 4, k.csr},
			}
			for _, impl := range impls {
				b.Run(fmt.Sprintf("%s/%s/%s", k.name, sc.name, impl.name), func(b *testing.B) {
					prev := SetMaxWorkers(impl.workers)
					defer SetMaxWorkers(prev)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						impl.fn(g)
					}
				})
			}
		}
	}
}

// BenchmarkCSRBuild measures the one-time cost of the index the kernels
// amortize: dense relabeling, flat rows, degree-rank orientation, and
// canonical edge ids.
func BenchmarkCSRBuild(b *testing.B) {
	for _, sc := range benchScales {
		g := benchGraph(sc)
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildCSR(g)
			}
		})
	}
}
