package space

import "testing"

func TestMeterChargeRelease(t *testing.T) {
	var m Meter
	m.Charge(10)
	if m.Live() != 10 || m.Peak() != 10 {
		t.Fatalf("live=%d peak=%d", m.Live(), m.Peak())
	}
	m.Charge(5)
	m.Release(12)
	if m.Live() != 3 {
		t.Fatalf("live = %d, want 3", m.Live())
	}
	if m.Peak() != 15 {
		t.Fatalf("peak = %d, want 15", m.Peak())
	}
}

func TestMeterNegativeCharge(t *testing.T) {
	var m Meter
	m.Charge(8)
	m.Charge(-3)
	if m.Live() != 5 || m.Peak() != 8 {
		t.Fatalf("live=%d peak=%d", m.Live(), m.Peak())
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Charge(7)
	m.Reset()
	if m.Live() != 0 || m.Peak() != 0 {
		t.Fatalf("reset failed: live=%d peak=%d", m.Live(), m.Peak())
	}
}

func TestObjectSizesPositive(t *testing.T) {
	for _, w := range []int64{WordsPerEdge, WordsPerTriangle, WordsPerWedge, WordsPerCounter, WordsPerWatcher} {
		if w <= 0 {
			t.Fatalf("non-positive object size %d", w)
		}
	}
}
