package space

import (
	"testing"

	"adjstream/internal/telemetry"
)

func TestMeterChargeRelease(t *testing.T) {
	var m Meter
	m.Charge(10)
	if m.Live() != 10 || m.Peak() != 10 {
		t.Fatalf("live=%d peak=%d", m.Live(), m.Peak())
	}
	m.Charge(5)
	m.Release(12)
	if m.Live() != 3 {
		t.Fatalf("live = %d, want 3", m.Live())
	}
	if m.Peak() != 15 {
		t.Fatalf("peak = %d, want 15", m.Peak())
	}
}

func TestMeterNegativeCharge(t *testing.T) {
	var m Meter
	m.Charge(8)
	m.Charge(-3)
	if m.Live() != 5 || m.Peak() != 8 {
		t.Fatalf("live=%d peak=%d", m.Live(), m.Peak())
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Charge(7)
	m.Reset()
	if m.Live() != 0 || m.Peak() != 0 {
		t.Fatalf("reset failed: live=%d peak=%d", m.Live(), m.Peak())
	}
}

func TestObjectSizesPositive(t *testing.T) {
	for _, w := range []int64{WordsPerEdge, WordsPerTriangle, WordsPerWedge, WordsPerCounter, WordsPerWatcher} {
		if w <= 0 {
			t.Fatalf("non-positive object size %d", w)
		}
	}
}

func TestMeterAttachMirrorsHighWater(t *testing.T) {
	r := telemetry.NewRegistry()
	hw := r.HighWater("m")
	var m Meter
	m.Charge(5)
	// Attaching after the fact reports the peak reached so far.
	m.Attach(hw)
	if hw.Value() != 5 {
		t.Fatalf("attach did not report existing peak: %d", hw.Value())
	}
	m.Charge(10)
	m.Charge(-12)
	m.Charge(4)
	if m.Peak() != 15 || hw.Value() != 15 {
		t.Fatalf("peak=%d mirror=%d, want 15/15", m.Peak(), hw.Value())
	}
	// A detached meter (nil handle) keeps working.
	m.Attach(nil)
	m.Charge(100)
	if m.Peak() != 107 {
		t.Fatalf("peak=%d after detach", m.Peak())
	}
	if hw.Value() != 15 {
		t.Fatalf("detached mirror moved: %d", hw.Value())
	}
}
