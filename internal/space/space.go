// Package space provides word-level space accounting for streaming
// algorithms. Each algorithm owns a Meter and charges it for the state it
// stores (sampled edges, candidate triangles, watchers, counters); the meter
// tracks the current and peak usage in machine words, which is the unit the
// paper's space bounds are stated in (up to the log n factor of encoding a
// vertex id in a word).
package space

import "adjstream/internal/telemetry"

// Meter tracks live and peak words of state.
type Meter struct {
	live int64
	peak int64
	hw   *telemetry.HighWater
}

// Attach mirrors the meter's high-water mark into hw (typically a handle
// from the global telemetry registry, so live runs expose their peak space
// over /debug/vars and the run journal). A nil hw detaches; the mirror is
// only touched when the peak rises, so the per-Charge cost is a nil check.
func (m *Meter) Attach(hw *telemetry.HighWater) {
	m.hw = hw
	if m.peak > 0 {
		hw.Observe(m.peak)
	}
}

// Charge adds w words of live state (w may be negative to release).
func (m *Meter) Charge(w int64) {
	m.live += w
	if m.live > m.peak {
		m.peak = m.live
		m.hw.Observe(m.peak)
	}
}

// Release subtracts w words of live state.
func (m *Meter) Release(w int64) { m.live -= w }

// Live returns the current live words.
func (m *Meter) Live() int64 { return m.live }

// Peak returns the high-water mark in words.
func (m *Meter) Peak() int64 { return m.peak }

// Reset clears both counters.
func (m *Meter) Reset() { m.live, m.peak = 0, 0 }

// Words of state per stored object, used consistently by the algorithms so
// that space measurements are comparable across estimators.
const (
	// WordsPerEdge covers the two endpoint ids of a stored edge.
	WordsPerEdge = 2
	// WordsPerTriangle covers three vertex ids.
	WordsPerTriangle = 3
	// WordsPerWedge covers three vertex ids.
	WordsPerWedge = 3
	// WordsPerCounter covers one 64-bit counter.
	WordsPerCounter = 1
	// WordsPerWatcher covers a watcher (two endpoints, threshold, counter).
	WordsPerWatcher = 4
)
