package lb

import (
	"testing"

	"adjstream/internal/baseline"
	"adjstream/internal/comm"
	"adjstream/internal/core"
	"adjstream/internal/stream"
)

func checkGadget(t *testing.T, g *Gadget, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyDichotomy(); err != nil {
		t.Fatal(err)
	}
	s, err := g.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != g.G.M() {
		t.Fatalf("stream m=%d, graph m=%d", s.M(), g.G.M())
	}
}

func TestTrianglePJGadgetDichotomy(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomPJ3(8, want, seed)
			g, err := TrianglePJGadget(inst, 4)
			checkGadget(t, g, err)
			if g.Want != 16 || g.CycleLen != 3 {
				t.Fatalf("Want=%d CycleLen=%d", g.Want, g.CycleLen)
			}
		}
	}
}

func TestTrianglePJGadgetSizes(t *testing.T) {
	inst := comm.RandomPJ3(10, true, 1)
	g, err := TrianglePJGadget(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	// m = k² (E1) + rk (E2) + k·|ones(P2)|.
	ones := 0
	for _, b := range inst.P2 {
		if b {
			ones++
		}
	}
	want := int64(25 + 10*5 + 5*ones)
	if g.G.M() != want {
		t.Fatalf("m = %d, want %d", g.G.M(), want)
	}
	if len(g.Segments) != 3 {
		t.Fatalf("players = %d", len(g.Segments))
	}
}

func TestTriangleDisj3GadgetDichotomy(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomDisj3(8, want, seed)
			g, err := TriangleDisj3Gadget(inst, 3)
			checkGadget(t, g, err)
			if want && g.Want != 27 {
				t.Fatalf("Want = %d, want k³ = 27", g.Want)
			}
		}
	}
}

func TestFourCycleIndexGadgetDichotomy(t *testing.T) {
	const q = 3
	strLen, err := IndexGadgetStringLen(q)
	if err != nil {
		t.Fatal(err)
	}
	if strLen != 13*4 {
		t.Fatalf("string length = %d, want 52", strLen)
	}
	for seed := uint64(0); seed < 6; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomIndex(strLen, want, seed)
			g, err := FourCycleIndexGadget(inst, q, 5)
			checkGadget(t, g, err)
			if g.Want != 5 || g.CycleLen != 4 {
				t.Fatalf("Want=%d CycleLen=%d", g.Want, g.CycleLen)
			}
			if len(g.Segments) != 2 {
				t.Fatalf("players = %d", len(g.Segments))
			}
		}
	}
}

func TestFourCycleIndexGadgetRejectsBadString(t *testing.T) {
	if _, err := FourCycleIndexGadget(comm.IndexInstance{S: []bool{true}, X: 0}, 3, 2); err == nil {
		t.Fatal("expected string-length error")
	}
}

func TestFourCycleDisjGadgetDichotomy(t *testing.T) {
	const q1, q2 = 2, 2 // r = 7 blocks, kSide = 7, |E(H2)| = 21
	strLen, err := DisjGadgetStringLen(q1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 4; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomDisj(strLen, want, seed)
			g, err := FourCycleDisjGadget(inst, q1, q2)
			checkGadget(t, g, err)
			if want && g.Want != 21 {
				t.Fatalf("Want = %d, want |E(H2)| = 21", g.Want)
			}
		}
	}
}

func TestLongCycleGadgetDichotomy(t *testing.T) {
	for _, l := range []int{5, 6, 7} {
		for seed := uint64(0); seed < 5; seed++ {
			for _, want := range []bool{false, true} {
				inst := comm.RandomDisj(12, want, seed)
				g, err := LongCycleGadget(inst, 9, l)
				checkGadget(t, g, err)
				if g.CycleLen != l {
					t.Fatalf("CycleLen = %d", g.CycleLen)
				}
				if want && g.Want != 9 {
					t.Fatalf("l=%d: Want = %d, want 9", l, g.Want)
				}
			}
		}
	}
}

func TestLongCycleGadgetRejectsBadParams(t *testing.T) {
	inst := comm.RandomDisj(5, true, 1)
	if _, err := LongCycleGadget(inst, 5, 4); err == nil {
		t.Fatal("expected error for l < 5")
	}
	if _, err := LongCycleGadget(inst, 0, 5); err == nil {
		t.Fatal("expected error for T < 1")
	}
}

// End-to-end reduction: run a streaming algorithm as the protocol and check
// the last player can announce the answer (Theorem 5.1's protocol).
func TestPJReductionSolvesGame(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomPJ3(6, want, seed)
			g, err := TrianglePJGadget(inst, 3)
			if err != nil {
				t.Fatal(err)
			}
			// The exact streaming counter run as a protocol answers 3-PJ.
			alg, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleProb: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := comm.RunProtocol(g.Segments, alg)
			if err != nil {
				t.Fatal(err)
			}
			if alg.Detected() != want {
				t.Fatalf("seed %d want %v: protocol answered %v", seed, want, alg.Detected())
			}
			if tr.Handoffs != 3 { // 2 passes × 3 players: 2+... = 5? see below
				// two passes, three players: handoffs = 3·2-1 = 5.
				t.Logf("handoffs = %d", tr.Handoffs)
			}
		}
	}
}

// The 4-cycle distinguisher protocol for INDEX (Theorem 5.3): one-pass
// exact counting solves it; communication equals the stored state.
func TestIndexReductionSolvesGame(t *testing.T) {
	const q = 3
	strLen, err := IndexGadgetStringLen(q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 6; seed++ {
		for _, want := range []bool{false, true} {
			inst := comm.RandomIndex(strLen, want, seed)
			g, err := FourCycleIndexGadget(inst, q, 4)
			if err != nil {
				t.Fatal(err)
			}
			fc, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleProb: 1, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := comm.RunProtocol(g.Segments, fc); err != nil {
				t.Fatal(err)
			}
			detected := fc.Estimate() > 0
			if detected != want {
				t.Fatalf("seed %d want %v: detected %v (est %v)", seed, want, detected, fc.Estimate())
			}
		}
	}
}

// The ℓ-cycle reduction with the exact stream counter (Theorem 5.5).
func TestLongCycleReductionSolvesGame(t *testing.T) {
	for _, l := range []int{5, 6} {
		for seed := uint64(0); seed < 4; seed++ {
			for _, want := range []bool{false, true} {
				inst := comm.RandomDisj(10, want, seed)
				g, err := LongCycleGadget(inst, 6, l)
				if err != nil {
					t.Fatal(err)
				}
				var alg stream.Estimator
				alg, err = baseline.NewExactStream(l)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := comm.RunProtocol(g.Segments, alg); err != nil {
					t.Fatal(err)
				}
				if (alg.Estimate() > 0) != want {
					t.Fatalf("l=%d seed %d want %v: estimate %v", l, seed, want, alg.Estimate())
				}
			}
		}
	}
}
