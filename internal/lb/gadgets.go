// Package lb constructs the five lower-bound gadget graphs of Figure 1 of
// the paper: encodings of communication-game instances (internal/comm) as
// adjacency-list streams partitioned among the players. Each gadget has the
// promised dichotomy — the graph is ℓ-cycle-free when the game's answer is
// 0 and has the stated number of ℓ-cycles when it is 1 — which the tests
// verify with the exact counters, and each player's segment contains
// exactly the adjacency lists of that player's assigned vertices, every one
// of which is determined by information that player holds.
package lb

import (
	"fmt"

	"adjstream/internal/comm"
	"adjstream/internal/graph"
	"adjstream/internal/plane"
	"adjstream/internal/stream"
)

// Gadget is one constructed reduction instance.
type Gadget struct {
	// G is the encoded graph.
	G *graph.Graph
	// Segments holds each player's adjacency lists in speaking order
	// (Alice, Bob[, Charlie]); their concatenation is a valid stream.
	Segments [][]stream.Item
	// CycleLen is the cycle length the reduction concerns.
	CycleLen int
	// Want is the number of CycleLen-cycles the graph must contain when the
	// game's answer is 1 (it must contain none when the answer is 0).
	Want int64
	// Answer is the game instance's answer.
	Answer bool
}

// VerifyDichotomy checks the 0-versus-Want promise against the exact
// counter; it is the empirical content of Theorems 5.1–5.5.
func (g *Gadget) VerifyDichotomy() error {
	n, err := g.G.CountCycles(g.CycleLen)
	if err != nil {
		return err
	}
	want := int64(0)
	if g.Answer {
		want = g.Want
	}
	if n != want {
		return fmt.Errorf("lb: gadget has %d %d-cycles, want %d (answer=%v)", n, g.CycleLen, want, g.Answer)
	}
	return nil
}

// Stream returns the concatenation of the player segments as a validated
// stream.
func (g *Gadget) Stream() (*stream.Stream, error) {
	var all []stream.Item
	for _, seg := range g.Segments {
		all = append(all, seg...)
	}
	return stream.FromItems(all)
}

// segmentsFor emits, for each player, the adjacency lists of that player's
// vertices (in the given order, neighbors sorted), skipping isolated
// vertices. Every vertex of g with positive degree must be assigned to
// exactly one player.
func segmentsFor(g *graph.Graph, players [][]graph.V) ([][]stream.Item, error) {
	assigned := make(map[graph.V]bool)
	out := make([][]stream.Item, len(players))
	for pi, vs := range players {
		for _, v := range vs {
			if assigned[v] {
				return nil, fmt.Errorf("lb: vertex %d assigned twice", v)
			}
			assigned[v] = true
			for _, u := range g.Neighbors(v) {
				out[pi] = append(out[pi], stream.Item{Owner: v, Nbr: u})
			}
		}
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) > 0 && !assigned[v] {
			return nil, fmt.Errorf("lb: vertex %d unassigned", v)
		}
	}
	return out, nil
}

func vrange(base graph.V, n int) []graph.V {
	out := make([]graph.V, n)
	for i := range out {
		out[i] = base + graph.V(i)
	}
	return out
}

// TrianglePJGadget encodes a 3-PJ_r instance as the Figure 1a triangle
// gadget with block size k: Alice holds the vertices a_1..a_r, Bob a set B
// of k vertices, Charlie blocks C_1..C_r of k vertices each. The graph has
// k² triangles iff v* reaches v41 (Theorem 5.1).
func TrianglePJGadget(inst comm.PJ3Instance, k int) (*Gadget, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("lb: block size k=%d < 1", k)
	}
	r := len(inst.P1)
	aBase := graph.V(0)
	bBase := graph.V(r)
	cBase := func(i int) graph.V { return graph.V(r + k + i*k) }

	b := graph.NewBuilder()
	// E1 (known to Bob and Charlie): B × C_{P0}, k² edges.
	for s := 0; s < k; s++ {
		for t := 0; t < k; t++ {
			if err := b.Add(bBase+graph.V(s), cBase(inst.P0)+graph.V(t)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	// E2 (Alice and Charlie): C_i × {a_{P1[i]}}.
	for i := 0; i < r; i++ {
		for t := 0; t < k; t++ {
			if err := b.Add(cBase(i)+graph.V(t), aBase+graph.V(inst.P1[i])); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	// E3 (Alice and Bob): a_i × B for each i with P2[i] = 1.
	for i := 0; i < r; i++ {
		if !inst.P2[i] {
			continue
		}
		for s := 0; s < k; s++ {
			if err := b.Add(aBase+graph.V(i), bBase+graph.V(s)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	g := b.Graph()
	charlie := make([]graph.V, 0, r*k)
	for i := 0; i < r; i++ {
		charlie = append(charlie, vrange(cBase(i), k)...)
	}
	segs, err := segmentsFor(g, [][]graph.V{vrange(aBase, r), vrange(bBase, k), charlie})
	if err != nil {
		return nil, err
	}
	return &Gadget{
		G:        g,
		Segments: segs,
		CycleLen: 3,
		Want:     int64(k) * int64(k),
		Answer:   inst.Answer(),
	}, nil
}

// TriangleDisj3Gadget encodes a 3-DISJ_r instance as the Figure 1b triangle
// gadget with block size k: blocks A_i (Alice), B_i (Bob), C_i (Charlie) of
// k vertices each; index i contributes A_i×C_i iff S1[i], A_i×B_i iff
// S2[i], B_i×C_i iff S3[i]. The graph has k³ triangles per index in the
// triple intersection (Theorem 5.2); for the unique-intersection instances
// produced by comm.RandomDisj3 that is exactly k³.
func TriangleDisj3Gadget(inst comm.Disj3Instance, k int) (*Gadget, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("lb: block size k=%d < 1", k)
	}
	r := len(inst.S1)
	aBase := func(i int) graph.V { return graph.V(i * k) }
	bBase := func(i int) graph.V { return graph.V((r + i) * k) }
	cBase := func(i int) graph.V { return graph.V((2*r + i) * k) }

	b := graph.NewBuilder()
	addBlock := func(x, y graph.V) error {
		for s := 0; s < k; s++ {
			for t := 0; t < k; t++ {
				if err := b.Add(x+graph.V(s), y+graph.V(t)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var inter int64
	for i := 0; i < r; i++ {
		if inst.S1[i] {
			if err := addBlock(aBase(i), cBase(i)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
		if inst.S2[i] {
			if err := addBlock(aBase(i), bBase(i)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
		if inst.S3[i] {
			if err := addBlock(bBase(i), cBase(i)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
		if inst.S1[i] && inst.S2[i] && inst.S3[i] {
			inter++
		}
	}
	g := b.Graph()
	var alice, bob, charlie []graph.V
	for i := 0; i < r; i++ {
		alice = append(alice, vrange(aBase(i), k)...)
		bob = append(bob, vrange(bBase(i), k)...)
		charlie = append(charlie, vrange(cBase(i), k)...)
	}
	kk := int64(k)
	want := kk * kk * kk
	if inter > 1 {
		want *= inter
	}
	segs, err := segmentsFor(g, [][]graph.V{alice, bob, charlie})
	if err != nil {
		return nil, err
	}
	return &Gadget{G: g, Segments: segs, CycleLen: 3, Want: want, Answer: inst.Answer()}, nil
}

// IndexGadgetStringLen returns the INDEX string length used by
// FourCycleIndexGadget for plane order q: the number of edges of the
// 4-cycle-free bipartite incidence graph H, i.e. (q²+q+1)(q+1).
func IndexGadgetStringLen(q int64) (int, error) {
	p, err := plane.New(q)
	if err != nil {
		return 0, err
	}
	return p.Size() * int(q+1), nil
}

// FourCycleIndexGadget encodes an INDEX instance as the Figure 1c 4-cycle
// gadget (Theorem 5.3): Alice holds vertex sets A, B of size r = q²+q+1 and
// the subgraph of the projective-plane incidence graph H selected by her
// string; Bob holds blocks C_i, D_j of size k, a k-matching between C_{i*}
// and D_{j*} for the H-edge (i*,j*) named by his index, and the fixed edges
// a_i–C_i, b_j–D_j. The graph has k 4-cycles iff S[x] = 1.
func FourCycleIndexGadget(inst comm.IndexInstance, q int64, k int) (*Gadget, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("lb: block size k=%d < 1", k)
	}
	pl, err := plane.New(q)
	if err != nil {
		return nil, err
	}
	incidences := pl.IncidenceEdges()
	if len(inst.S) != len(incidences) {
		return nil, fmt.Errorf("lb: string length %d, want %d for plane order %d", len(inst.S), len(incidences), q)
	}
	r := pl.Size()
	aBase := graph.V(0)
	bBase := graph.V(r)
	cBase := func(i int) graph.V { return graph.V(2*r + i*k) }
	dBase := func(j int) graph.V { return graph.V(2*r + r*k + j*k) }

	b := graph.NewBuilder()
	// Alice's H-subgraph between A and B.
	for t, e := range incidences {
		if inst.S[t] {
			if err := b.Add(aBase+graph.V(e[0]), bBase+graph.V(e[1])); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	// Bob's matching between C_{i*} and D_{j*}.
	star := incidences[inst.X]
	for t := 0; t < k; t++ {
		if err := b.Add(cBase(star[0])+graph.V(t), dBase(star[1])+graph.V(t)); err != nil {
			return nil, fmt.Errorf("lb: %w", err)
		}
	}
	// Fixed edges a_i–C_i and b_j–D_j.
	for i := 0; i < r; i++ {
		for t := 0; t < k; t++ {
			if err := b.Add(aBase+graph.V(i), cBase(i)+graph.V(t)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
			if err := b.Add(bBase+graph.V(i), dBase(i)+graph.V(t)); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	g := b.Graph()
	var bob []graph.V
	for i := 0; i < r; i++ {
		bob = append(bob, vrange(cBase(i), k)...)
	}
	for j := 0; j < r; j++ {
		bob = append(bob, vrange(dBase(j), k)...)
	}
	segs, err := segmentsFor(g, [][]graph.V{vrange(aBase, 2*r), bob})
	if err != nil {
		return nil, err
	}
	return &Gadget{G: g, Segments: segs, CycleLen: 4, Want: int64(k), Answer: inst.Answer()}, nil
}

// DisjGadgetStringLen returns the DISJ string length used by
// FourCycleDisjGadget for outer plane order q1.
func DisjGadgetStringLen(q1 int64) (int, error) {
	return IndexGadgetStringLen(q1)
}

// FourCycleDisjGadget encodes a DISJ instance as the Figure 1d 4-cycle
// gadget (Theorem 5.4). H1 (outer, order q1, sides r) indexes the strings;
// H2 (inner, order q2, sides kSide = q2²+q2+1) is copied between A_i/C_i
// and B_j/D_j; Alice's bits select k-matchings A_i–B_j along H1 edges and
// Bob's bits select matchings C_i–D_j. Each common index contributes
// exactly |E(H2)| = kSide·(q2+1) 4-cycles.
func FourCycleDisjGadget(inst comm.DisjInstance, q1, q2 int64) (*Gadget, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p1, err := plane.New(q1)
	if err != nil {
		return nil, err
	}
	p2, err := plane.New(q2)
	if err != nil {
		return nil, err
	}
	h1 := p1.IncidenceEdges()
	if len(inst.S1) != len(h1) {
		return nil, fmt.Errorf("lb: string length %d, want %d for outer plane order %d", len(inst.S1), len(h1), q1)
	}
	r := p1.Size()
	kSide := p2.Size()
	h2 := p2.IncidenceEdges()

	base := func(group, block int) graph.V {
		return graph.V((group*r + block) * kSide)
	}
	// groups: 0 = A blocks, 1 = B blocks, 2 = C blocks, 3 = D blocks.
	b := graph.NewBuilder()
	// Fixed H2 copies: A_i–C_i and B_j–D_j.
	for i := 0; i < r; i++ {
		for _, e := range h2 {
			if err := b.Add(base(0, i)+graph.V(e[0]), base(2, i)+graph.V(e[1])); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
			if err := b.Add(base(1, i)+graph.V(e[0]), base(3, i)+graph.V(e[1])); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
	}
	// Input-selected matchings along H1 edges.
	var inter int64
	for t, e := range h1 {
		i, j := e[0], e[1]
		if inst.S1[t] {
			for p := 0; p < kSide; p++ {
				if err := b.Add(base(0, i)+graph.V(p), base(1, j)+graph.V(p)); err != nil {
					return nil, fmt.Errorf("lb: %w", err)
				}
			}
		}
		if inst.S2[t] {
			for p := 0; p < kSide; p++ {
				if err := b.Add(base(2, i)+graph.V(p), base(3, j)+graph.V(p)); err != nil {
					return nil, fmt.Errorf("lb: %w", err)
				}
			}
		}
		if inst.S1[t] && inst.S2[t] {
			inter++
		}
	}
	g := b.Graph()
	var alice, bob []graph.V
	for i := 0; i < r; i++ {
		alice = append(alice, vrange(base(0, i), kSide)...)
		alice = append(alice, vrange(base(1, i), kSide)...)
		bob = append(bob, vrange(base(2, i), kSide)...)
		bob = append(bob, vrange(base(3, i), kSide)...)
	}
	want := int64(len(h2))
	if inter > 1 {
		want *= inter
	}
	segs, err := segmentsFor(g, [][]graph.V{alice, bob})
	if err != nil {
		return nil, err
	}
	return &Gadget{G: g, Segments: segs, CycleLen: 4, Want: want, Answer: inst.Answer()}, nil
}

// LongCycleGadget encodes a DISJ_r instance as the Figure 1e ℓ-cycle gadget
// for ℓ ≥ 5 (Theorem 5.5): Alice holds a_1..a_{r+1}; Bob holds b_1..b_r,
// the T-vertex fan C, and the path d_1..d_{ℓ-4}. Each common index yields
// exactly T ℓ-cycles a_i–b_i–d_1–…–d_{ℓ-4}–c_j–a_{r+1}–a_i.
func LongCycleGadget(inst comm.DisjInstance, T int, l int) (*Gadget, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if l < 5 {
		return nil, fmt.Errorf("lb: cycle length %d < 5", l)
	}
	if T < 1 {
		return nil, fmt.Errorf("lb: T = %d < 1", T)
	}
	r := len(inst.S1)
	aBase := graph.V(0) // a_1..a_{r+1} = 0..r (hub = r)
	hub := graph.V(r)
	bBase := graph.V(r + 1)
	cBase := bBase + graph.V(r)
	dBase := cBase + graph.V(T)
	nd := l - 4

	b := graph.NewBuilder()
	for i := 0; i < r; i++ {
		if err := b.Add(aBase+graph.V(i), bBase+graph.V(i)); err != nil {
			return nil, fmt.Errorf("lb: %w", err)
		}
	}
	for j := 0; j < T; j++ {
		if err := b.Add(hub, cBase+graph.V(j)); err != nil {
			return nil, fmt.Errorf("lb: %w", err)
		}
		if err := b.Add(dBase+graph.V(nd-1), cBase+graph.V(j)); err != nil {
			return nil, fmt.Errorf("lb: %w", err)
		}
	}
	for i := 0; i+1 < nd; i++ {
		if err := b.Add(dBase+graph.V(i), dBase+graph.V(i+1)); err != nil {
			return nil, fmt.Errorf("lb: %w", err)
		}
	}
	var inter int64
	for i := 0; i < r; i++ {
		if inst.S1[i] {
			if err := b.Add(aBase+graph.V(i), hub); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
		if inst.S2[i] {
			if err := b.Add(bBase+graph.V(i), dBase); err != nil {
				return nil, fmt.Errorf("lb: %w", err)
			}
		}
		if inst.S1[i] && inst.S2[i] {
			inter++
		}
	}
	g := b.Graph()
	want := int64(T)
	if inter > 1 {
		want *= inter
	}
	segs, err := segmentsFor(g, [][]graph.V{
		vrange(aBase, r+1),
		append(append(vrange(bBase, r), vrange(cBase, T)...), vrange(dBase, nd)...),
	})
	if err != nil {
		return nil, err
	}
	return &Gadget{G: g, Segments: segs, CycleLen: l, Want: want, Answer: inst.Answer()}, nil
}
