// Package gen provides deterministic synthetic graph generators: the
// workloads for every experiment in this repository. The paper is pure
// theory and ships no datasets, so the generators are designed to expose the
// quantities its bounds depend on — the edge count m, the cycle count T, the
// heavy-edge skew that motivates the lightest-edge rule, and the wedge count
// P2 — as directly controllable parameters.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"adjstream/internal/graph"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x2b992ddfa23249d6))
}

// ErdosRenyi returns G(n,p) on vertices 0..n-1.
func ErdosRenyi(n int, p float64, seed uint64) (*graph.Graph, error) {
	if n < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: bad G(n,p) parameters n=%d p=%v", n, p)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.V(i))
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = b.Add(graph.V(i), graph.V(j))
			}
		}
	}
	return b.Graph(), nil
}

// GNM returns a uniform graph with n vertices and exactly m distinct edges.
func GNM(n int, m int64, seed uint64) (*graph.Graph, error) {
	maxM := int64(n) * int64(n-1) / 2
	if n < 0 || m < 0 || m > maxM {
		return nil, fmt.Errorf("gen: bad G(n,m) parameters n=%d m=%d", n, m)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.V(i))
	}
	for b.M() < m {
		u := graph.V(rng.IntN(n))
		v := graph.V(rng.IntN(n))
		b.AddIfAbsent(u, v)
	}
	return b.Graph(), nil
}

// Complete returns K_n on vertices 0..n-1.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.V(i))
		for j := i + 1; j < n; j++ {
			_ = b.Add(graph.V(i), graph.V(j))
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b} with left side 0..a-1 and right side
// a..a+b-1.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder()
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			_ = bld.Add(graph.V(i), graph.V(a+j))
		}
	}
	return bld.Graph()
}

// RandomBipartite returns a bipartite graph with sides of size a and b where
// each cross edge is present independently with probability p.
func RandomBipartite(a, b int, p float64, seed uint64) (*graph.Graph, error) {
	if a < 0 || b < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: bad bipartite parameters a=%d b=%d p=%v", a, b, p)
	}
	rng := newRNG(seed)
	bld := graph.NewBuilder()
	for i := 0; i < a; i++ {
		bld.AddVertex(graph.V(i))
	}
	for j := 0; j < b; j++ {
		bld.AddVertex(graph.V(a + j))
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if rng.Float64() < p {
				_ = bld.Add(graph.V(i), graph.V(a+j))
			}
		}
	}
	return bld.Graph(), nil
}

// ChungLu returns a Chung–Lu random graph whose expected degree sequence
// follows a power law with exponent gamma (> 2) and maximum expected degree
// maxDeg. Edge {i,j} is included with probability min(1, w_i w_j / Σw).
// This is the skewed, heavy-edge-prone workload class that motivates the
// paper's variance-reduction machinery.
func ChungLu(n int, gamma float64, maxDeg float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 || gamma <= 2 || maxDeg < 1 {
		return nil, fmt.Errorf("gen: bad Chung–Lu parameters n=%d gamma=%v maxDeg=%v", n, gamma, maxDeg)
	}
	rng := newRNG(seed)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		// w_i = maxDeg · (i+1)^{-1/(gamma-1)}: a power-law weight sequence.
		w[i] = maxDeg * math.Pow(float64(i+1), -1/(gamma-1))
		if w[i] < 1 {
			w[i] = 1
		}
		sum += w[i]
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex(graph.V(i))
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / sum
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				_ = b.Add(graph.V(i), graph.V(j))
			}
		}
	}
	return b.Graph(), nil
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on k+1 vertices, each new vertex attaches to k distinct existing
// vertices chosen with probability proportional to degree.
func BarabasiAlbert(n, k int, seed uint64) (*graph.Graph, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("gen: bad BA parameters n=%d k=%d", n, k)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	// Repeated-endpoint list implements preferential attachment.
	var ends []graph.V
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			_ = b.Add(graph.V(i), graph.V(j))
			ends = append(ends, graph.V(i), graph.V(j))
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := make(map[graph.V]bool, k)
		for len(chosen) < k {
			t := ends[rng.IntN(len(ends))]
			if t != graph.V(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			_ = b.Add(graph.V(v), t)
			ends = append(ends, graph.V(v), t)
		}
	}
	return b.Graph(), nil
}

// DisjointTriangles returns t vertex-disjoint triangles: T = t exactly, with
// every edge in exactly one triangle (the zero-skew extreme).
func DisjointTriangles(t int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < t; i++ {
		v := graph.V(3 * i)
		_ = b.Add(v, v+1)
		_ = b.Add(v+1, v+2)
		_ = b.Add(v, v+2)
	}
	return b.Graph()
}

// DisjointFourCycles returns t vertex-disjoint 4-cycles: exactly t 4-cycles.
func DisjointFourCycles(t int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < t; i++ {
		v := graph.V(4 * i)
		_ = b.Add(v, v+1)
		_ = b.Add(v+1, v+2)
		_ = b.Add(v+2, v+3)
		_ = b.Add(v+3, v)
	}
	return b.Graph()
}

// Book returns the "book" graph B_h: a single spine edge {0,1} shared by h
// triangles (apexes 2..h+1). The spine is the canonical heavy edge: it lies
// in h triangles while every other edge lies in one.
func Book(h int) *graph.Graph {
	b := graph.NewBuilder()
	_ = b.Add(0, 1)
	for i := 0; i < h; i++ {
		a := graph.V(2 + i)
		_ = b.Add(0, a)
		_ = b.Add(1, a)
	}
	return b.Graph()
}

// Friendship returns the friendship graph F_k: k triangles all sharing one
// hub vertex 0 — a heavy-vertex workload with T = k.
func Friendship(k int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < k; i++ {
		u := graph.V(1 + 2*i)
		_ = b.Add(0, u)
		_ = b.Add(0, u+1)
		_ = b.Add(u, u+1)
	}
	return b.Graph()
}

// PlantedTriangles overlays t vertex-disjoint triangles on top of a
// triangle-free bipartite noise graph, producing graphs where m and T are
// nearly independent knobs. The noise occupies vertices ≥ 3t. The returned
// graph has exactly t triangles.
func PlantedTriangles(t int, noiseSide int, noiseP float64, seed uint64) (*graph.Graph, error) {
	if t < 0 || noiseSide < 0 || noiseP < 0 || noiseP > 1 {
		return nil, fmt.Errorf("gen: bad planted parameters t=%d side=%d p=%v", t, noiseSide, noiseP)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	for i := 0; i < t; i++ {
		v := graph.V(3 * i)
		_ = b.Add(v, v+1)
		_ = b.Add(v+1, v+2)
		_ = b.Add(v, v+2)
	}
	base := graph.V(3 * t)
	for i := 0; i < noiseSide; i++ {
		for j := 0; j < noiseSide; j++ {
			if rng.Float64() < noiseP {
				_ = b.Add(base+graph.V(i), base+graph.V(noiseSide+j))
			}
		}
	}
	return b.Graph(), nil
}

// PlantedBooks overlays c disjoint copies of the book B_h (heavy spines) on
// a bipartite noise graph: T = c·h with maximum edge load h. This is the
// adversarial heavy-edge workload for the triangle estimators.
func PlantedBooks(c, h int, noiseSide int, noiseP float64, seed uint64) (*graph.Graph, error) {
	if c < 0 || h < 0 || noiseSide < 0 || noiseP < 0 || noiseP > 1 {
		return nil, fmt.Errorf("gen: bad planted-book parameters c=%d h=%d", c, h)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	stride := graph.V(h + 2)
	for i := 0; i < c; i++ {
		base := graph.V(i) * stride
		_ = b.Add(base, base+1)
		for j := 0; j < h; j++ {
			a := base + 2 + graph.V(j)
			_ = b.Add(base, a)
			_ = b.Add(base+1, a)
		}
	}
	base := graph.V(c) * stride
	for i := 0; i < noiseSide; i++ {
		for j := 0; j < noiseSide; j++ {
			if rng.Float64() < noiseP {
				_ = b.Add(base+graph.V(i), base+graph.V(noiseSide+j))
			}
		}
	}
	return b.Graph(), nil
}

// PlantedFourCycles overlays t vertex-disjoint 4-cycles on a 4-cycle-free
// noise graph (a long path), so the graph has exactly t 4-cycles. Noise
// vertices start at 4t.
func PlantedFourCycles(t int, noiseLen int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < t; i++ {
		v := graph.V(4 * i)
		_ = b.Add(v, v+1)
		_ = b.Add(v+1, v+2)
		_ = b.Add(v+2, v+3)
		_ = b.Add(v+3, v)
	}
	base := graph.V(4 * t)
	for i := 0; i < noiseLen; i++ {
		_ = b.Add(base+graph.V(i), base+graph.V(i)+1)
	}
	return b.Graph()
}

// BipartiteButterflies returns a random bipartite "user–item" graph sized so
// butterfly (4-cycle) counting is non-trivial: sides a and b with each user
// linked to k uniform items.
func BipartiteButterflies(a, b, k int, seed uint64) (*graph.Graph, error) {
	if a < 1 || b < k || k < 1 {
		return nil, fmt.Errorf("gen: bad butterfly parameters a=%d b=%d k=%d", a, b, k)
	}
	rng := newRNG(seed)
	bld := graph.NewBuilder()
	for i := 0; i < a; i++ {
		chosen := make(map[int]bool, k)
		for len(chosen) < k {
			chosen[rng.IntN(b)] = true
		}
		for j := range chosen {
			_ = bld.Add(graph.V(i), graph.V(a+j))
		}
	}
	return bld.Graph(), nil
}

// Union returns the disjoint union of g1 and g2, offsetting g2's vertex ids
// by off. It returns an error if the shifted vertex sets intersect.
func Union(g1, g2 *graph.Graph, off graph.V) (*graph.Graph, error) {
	b := graph.NewBuilder()
	for _, v := range g1.Vertices() {
		b.AddVertex(v)
	}
	for _, e := range g1.Edges() {
		_ = b.Add(e.U, e.V)
	}
	for _, v := range g2.Vertices() {
		if g1.HasVertex(v + off) {
			return nil, fmt.Errorf("gen: union overlap at vertex %d", v+off)
		}
		b.AddVertex(v + off)
	}
	for _, e := range g2.Edges() {
		if err := b.Add(e.U+off, e.V+off); err != nil {
			return nil, fmt.Errorf("gen: union: %w", err)
		}
	}
	return b.Graph(), nil
}
