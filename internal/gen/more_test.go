package gen

import (
	"testing"
	"testing/quick"
)

func TestTorusProperties(t *testing.T) {
	g, err := Torus(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 35 || g.M() != 70 {
		t.Fatalf("n=%d m=%d, want 35/70", g.N(), g.M())
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.Triangles() != 0 {
		t.Fatal("torus should be triangle-free")
	}
	// Exactly one 4-cycle per face.
	if got := g.FourCycles(); got != 35 {
		t.Fatalf("C4 = %d, want 35", got)
	}
	if _, err := Torus(4, 7); err == nil {
		t.Fatal("expected error for side < 5")
	}
}

func TestTorusFourCyclesQuick(t *testing.T) {
	f := func(a, b uint8) bool {
		aa, bb := int(a%6)+5, int(b%6)+5
		g, err := Torus(aa, bb)
		if err != nil {
			return false
		}
		return g.FourCycles() == int64(aa*bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(50, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 || g.M() != 100 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n·d should fail")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("d ≥ n should fail")
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta=0: pure ring lattice with known clustering.
	g, err := WattsStrogatz(60, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 180 {
		t.Fatalf("m = %d, want 180", g.M())
	}
	lattice := g.AverageLocalClustering()
	if lattice < 0.5 {
		t.Fatalf("lattice clustering = %v, want high", lattice)
	}
	// beta=0.5: clustering drops.
	g2, err := WattsStrogatz(60, 3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.AverageLocalClustering() >= lattice {
		t.Fatalf("rewiring did not reduce clustering: %v vs %v",
			g2.AverageLocalClustering(), lattice)
	}
	if _, err := WattsStrogatz(10, 5, 0, 1); err == nil {
		t.Fatal("2k ≥ n should fail")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1); err == nil {
		t.Fatal("beta > 1 should fail")
	}
}

func TestShuffledPreservesCounts(t *testing.T) {
	g, err := ErdosRenyi(30, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := Shuffled(g, 9)
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", s.N(), s.M(), g.N(), g.M())
	}
	if s.Triangles() != g.Triangles() || s.FourCycles() != g.FourCycles() {
		t.Fatal("relabeling changed subgraph counts")
	}
}
