package gen

import (
	"fmt"
	"math/rand/v2"

	"adjstream/internal/graph"
)

// Torus returns the a×b torus grid (wraparound in both dimensions), for
// a, b ≥ 3. It is triangle-free with exactly a·b faces, each a 4-cycle;
// for a, b ≥ 5 these faces are the only 4-cycles, making the torus a clean
// deterministic 4-cycle workload (for a or b in {3,4} additional wraparound
// 4-cycles appear, so Torus requires ≥ 5).
func Torus(a, b int) (*graph.Graph, error) {
	if a < 5 || b < 5 {
		return nil, fmt.Errorf("gen: torus sides %dx%d must be ≥ 5", a, b)
	}
	bld := graph.NewBuilder()
	id := func(i, j int) graph.V { return graph.V(i*b + j) }
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if err := bld.Add(id(i, j), id((i+1)%a, j)); err != nil {
				return nil, err
			}
			if err := bld.Add(id(i, j), id(i, (j+1)%b)); err != nil {
				return nil, err
			}
		}
	}
	return bld.Graph(), nil
}

// RandomRegular returns a d-regular simple graph on n vertices via the
// configuration (pairing) model with restarts; n·d must be even and d < n.
func RandomRegular(n, d int, seed uint64) (*graph.Graph, error) {
	if d < 1 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("gen: bad regular parameters n=%d d=%d", n, d)
	}
	rng := newRNG(seed)
	const maxAttempts = 500
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs := make([]graph.V, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, graph.V(v))
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		b := graph.NewBuilder()
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			if !b.AddIfAbsent(stubs[i], stubs[i+1]) {
				ok = false
				break
			}
		}
		if ok {
			return b.Graph(), nil
		}
	}
	return nil, fmt.Errorf("gen: configuration model failed after %d attempts (n=%d d=%d)", maxAttempts, n, d)
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with every edge
// rewired independently with probability beta (avoiding self-loops and
// duplicates). High clustering with short paths — a classic workload for
// transitivity estimation.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if k < 1 || 2*k >= n || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: bad Watts–Strogatz parameters n=%d k=%d beta=%v", n, k, beta)
	}
	rng := newRNG(seed)
	b := graph.NewBuilder()
	for v := 0; v < n; v++ {
		b.AddVertex(graph.V(v))
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				// Rewire: pick a fresh endpoint; skip on failure to keep
				// the generator total.
				placed := false
				for tries := 0; tries < 32; tries++ {
					w := rng.IntN(n)
					if w != v && b.AddIfAbsent(graph.V(v), graph.V(w)) {
						placed = true
						break
					}
				}
				if placed {
					continue
				}
			}
			b.AddIfAbsent(graph.V(v), graph.V(u))
		}
	}
	return b.Graph(), nil
}

// Shuffled returns a copy of g with vertex ids permuted uniformly — useful
// for checking label-invariance of estimators.
func Shuffled(g *graph.Graph, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x93c4_67e3_7db0_c7a4))
	vs := g.Vertices()
	perm := make([]graph.V, len(vs))
	copy(perm, vs)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	relabel := make(map[graph.V]graph.V, len(vs))
	for i, v := range vs {
		relabel[v] = perm[i]
	}
	b := graph.NewBuilder()
	for _, v := range vs {
		b.AddVertex(relabel[v])
	}
	for _, e := range g.Edges() {
		_ = b.Add(relabel[e.U], relabel[e.V])
	}
	return b.Graph()
}
