package gen

import (
	"testing"
	"testing/quick"

	"adjstream/internal/graph"
)

func TestErdosRenyiBounds(t *testing.T) {
	g, err := ErdosRenyi(50, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Fatalf("N = %d", g.N())
	}
	max := int64(50 * 49 / 2)
	if g.M() <= 0 || g.M() >= max {
		t.Fatalf("M = %d out of plausible range", g.M())
	}
	if _, err := ErdosRenyi(-1, 0.5, 1); err == nil {
		t.Fatal("expected error for n<0")
	}
	if _, err := ErdosRenyi(10, 1.5, 1); err == nil {
		t.Fatal("expected error for p>1")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, _ := ErdosRenyi(30, 0.3, 42)
	b, _ := ErdosRenyi(30, 0.3, 42)
	if a.M() != b.M() {
		t.Fatal("same seed gave different graphs")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed gave different edges")
		}
	}
}

func TestGNMExactEdgeCount(t *testing.T) {
	g, err := GNM(40, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 100 {
		t.Fatalf("M = %d, want 100", g.M())
	}
	if _, err := GNM(5, 100, 3); err == nil {
		t.Fatal("expected error for m > C(n,2)")
	}
}

func TestCompleteCounts(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || g.Triangles() != 20 {
		t.Fatalf("K6: M=%d T=%d", g.M(), g.Triangles())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.M() != 12 || g.Triangles() != 0 {
		t.Fatalf("K34: M=%d T=%d", g.M(), g.Triangles())
	}
	// C4 count of K_{a,b} = C(a,2)·C(b,2).
	if g.FourCycles() != 3*6 {
		t.Fatalf("K34 C4 = %d, want 18", g.FourCycles())
	}
}

func TestRandomBipartiteIsBipartite(t *testing.T) {
	g, err := RandomBipartite(20, 25, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 0 {
		t.Fatal("bipartite graph has triangles")
	}
	for _, e := range g.Edges() {
		if (e.U < 20) == (e.V < 20) {
			t.Fatalf("edge %v within one side", e)
		}
	}
}

func TestChungLuSkew(t *testing.T) {
	g, err := ChungLu(300, 2.5, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Fatal("empty graph")
	}
	// The first vertices should be far hotter than the median vertex.
	if g.Degree(0) < 4*g.Degree(150) {
		t.Fatalf("expected skew: deg(0)=%d deg(150)=%d", g.Degree(0), g.Degree(150))
	}
	if _, err := ChungLu(10, 1.5, 5, 1); err == nil {
		t.Fatal("expected error for gamma ≤ 2")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(200, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	// m = C(4,2) + 3(n-4).
	want := int64(6 + 3*(200-4))
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if _, err := BarabasiAlbert(3, 3, 1); err == nil {
		t.Fatal("expected error for n < k+1")
	}
}

func TestDisjointTriangles(t *testing.T) {
	g := DisjointTriangles(17)
	if g.Triangles() != 17 {
		t.Fatalf("T = %d, want 17", g.Triangles())
	}
	if g.M() != 51 {
		t.Fatalf("M = %d, want 51", g.M())
	}
	if g.MaxTriangleLoad() != 1 {
		t.Fatalf("max load = %d, want 1", g.MaxTriangleLoad())
	}
}

func TestDisjointFourCycles(t *testing.T) {
	g := DisjointFourCycles(9)
	if g.FourCycles() != 9 {
		t.Fatalf("C4 = %d, want 9", g.FourCycles())
	}
	if g.Triangles() != 0 {
		t.Fatal("unexpected triangles")
	}
}

func TestBook(t *testing.T) {
	g := Book(25)
	if g.Triangles() != 25 {
		t.Fatalf("T = %d, want 25", g.Triangles())
	}
	loads := g.TriangleLoads()
	if loads[graph.Edge{U: 0, V: 1}] != 25 {
		t.Fatalf("spine load = %d, want 25", loads[graph.Edge{U: 0, V: 1}])
	}
}

func TestFriendship(t *testing.T) {
	g := Friendship(12)
	if g.Triangles() != 12 {
		t.Fatalf("T = %d, want 12", g.Triangles())
	}
	if g.Degree(0) != 24 {
		t.Fatalf("hub degree = %d, want 24", g.Degree(0))
	}
}

func TestPlantedTrianglesExactT(t *testing.T) {
	g, err := PlantedTriangles(40, 30, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 40 {
		t.Fatalf("T = %d, want 40", g.Triangles())
	}
	if g.M() <= 120 {
		t.Fatal("noise edges missing")
	}
}

func TestPlantedBooks(t *testing.T) {
	g, err := PlantedBooks(5, 20, 20, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Triangles() != 100 {
		t.Fatalf("T = %d, want 100", g.Triangles())
	}
	if g.MaxTriangleLoad() != 20 {
		t.Fatalf("max load = %d, want 20", g.MaxTriangleLoad())
	}
}

func TestPlantedFourCycles(t *testing.T) {
	g := PlantedFourCycles(13, 50)
	if g.FourCycles() != 13 {
		t.Fatalf("C4 = %d, want 13", g.FourCycles())
	}
}

func TestBipartiteButterflies(t *testing.T) {
	g, err := BipartiteButterflies(30, 20, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 120 {
		t.Fatalf("M = %d, want 120", g.M())
	}
	if g.Triangles() != 0 {
		t.Fatal("bipartite graph has triangles")
	}
	if _, err := BipartiteButterflies(5, 3, 4, 1); err == nil {
		t.Fatal("expected error for b < k")
	}
}

func TestUnion(t *testing.T) {
	g1 := DisjointTriangles(2) // vertices 0..5
	g2 := DisjointFourCycles(1)
	u, err := Union(g1, g2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if u.Triangles() != 2 || u.FourCycles() != 1 {
		t.Fatalf("union T=%d C4=%d", u.Triangles(), u.FourCycles())
	}
	if _, err := Union(g1, g2, 0); err == nil {
		t.Fatal("expected overlap error")
	}
}

// Property: planted triangle count is exact for any small t and noise seed.
func TestPlantedExactQuick(t *testing.T) {
	f := func(seed uint64) bool {
		tt := int(seed%20) + 1
		g, err := PlantedTriangles(tt, 10, 0.3, seed)
		if err != nil {
			return false
		}
		return g.Triangles() == int64(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
