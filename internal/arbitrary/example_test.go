package arbitrary_test

import (
	"fmt"

	"adjstream/internal/arbitrary"
	"adjstream/internal/graph"
)

// At sampling probability 1 every edge enters the sample, so the two-pass
// wedge estimator closes every wedge and the estimate collapses to the
// exact triangle count — the estimator's mechanics without sampling noise.
// K5 has C(5,3) = 10 triangles.
func Example() {
	b := graph.NewBuilder()
	for u := graph.V(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddIfAbsent(u, v)
		}
	}
	g := b.Graph()

	est, err := arbitrary.NewTwoPassWedge(1.0, 1)
	if err != nil {
		panic(err)
	}
	arbitrary.Run(arbitrary.FromGraph(g, 42), est)
	fmt.Printf("estimate %.0f (exact %d) in %d passes\n",
		est.Estimate(), g.Triangles(), est.Passes())
	// Output:
	// estimate 10 (exact 10) in 2 passes
}

// The same full-sample collapse for 4-cycles: at p = 1 the three-pass
// estimator tracks every diagonal pair with exact co-degree, so the closure
// identity Σ w·(codeg−1)/4 returns the exact count. K5 has 15 four-cycles
// (three per 4-vertex subset, C(5,4)·3).
func Example_fourCycle() {
	b := graph.NewBuilder()
	for u := graph.V(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddIfAbsent(u, v)
		}
	}
	g := b.Graph()

	est, err := arbitrary.NewThreePassFourCycle(1.0, 1)
	if err != nil {
		panic(err)
	}
	arbitrary.Run(arbitrary.FromGraph(g, 42), est)
	fmt.Printf("estimate %.0f (exact %d) in %d passes\n",
		est.Estimate(), g.FourCycles(), est.Passes())
	// Output:
	// estimate 15 (exact 15) in 3 passes
}
