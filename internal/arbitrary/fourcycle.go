package arbitrary

import (
	"fmt"
	"math"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
)

// Three-pass arbitrary-order 4-cycle estimation. Both estimators below ride
// on the same identity: with codeg(x,y) = |N(x) ∩ N(y)|, every unordered
// vertex pair {x,y} is the diagonal of exactly C(codeg(x,y), 2) four-cycles,
// and every 4-cycle has two diagonals, so
//
//	C4 = ½ · Σ_{pairs} C(codeg, 2).
//
// Pass one hash-samples edges and turns pairs of sampled edges sharing an
// endpoint into tracked diagonal pairs; passes two and three then compute
// the *exact* co-degree of every tracked pair. The exact-closure machinery
// is shared (pairTracker) and uses the heavy/light orientation trick: each
// pair stores the pending neighbor set of its endpoint with the smaller
// sampled degree, so the per-pair state is min(deg) rather than max(deg)
// words in expectation.

// trackedPair is one diagonal pair {light, heavy} whose exact co-degree the
// closure passes compute. pending accumulates N(light) during pass two;
// pass three counts the edges {c, heavy} with c ∈ pending, which is exactly
// |N(light) ∩ N(heavy)| because every edge appears once per pass.
type trackedPair struct {
	light, heavy graph.V
	pending      map[graph.V]struct{}
	codeg        int64
	weight       int64 // sampled-wedge multiplicity (ThreePassFourCycle)
	disc         bool  // found by the discovery sample (NearOptFourCycle)
	est          bool  // found by the estimation sample (NearOptFourCycle)
}

// pairTracker is the exact co-degree machinery shared by the two 4-cycle
// estimators. Pairs are registered during pass one (wedge formation inside
// the edge sample), oriented heavy/light once the sampled degrees are final,
// and closed over passes two and three. The ordered list fixes every
// iteration (estimates sum floats), keeping runs bit-deterministic.
type pairTracker struct {
	pairs   map[graph.Edge]*trackedPair
	list    []*trackedPair // creation order
	byLight map[graph.V][]*trackedPair
	byHeavy map[graph.V][]*trackedPair
	meter   *space.Meter
}

func newPairTracker(meter *space.Meter) *pairTracker {
	return &pairTracker{
		pairs:   make(map[graph.Edge]*trackedPair),
		byLight: make(map[graph.V][]*trackedPair),
		byHeavy: make(map[graph.V][]*trackedPair),
		meter:   meter,
	}
}

// pair returns the tracked pair for {a,b}, creating it on first use.
func (t *pairTracker) pair(a, b graph.V) *trackedPair {
	key := graph.Edge{U: a, V: b}.Norm()
	tp, ok := t.pairs[key]
	if !ok {
		tp = &trackedPair{light: key.U, heavy: key.V}
		t.pairs[key] = tp
		t.list = append(t.list, tp)
		t.meter.Charge(space.WordsPerWatcher)
	}
	return tp
}

// orient fixes each pair's heavy/light orientation by sampled degree (ties
// by vertex id) and builds the pass-two/three indexes. Called at the end of
// pass one, when the sampled degrees are final.
func (t *pairTracker) orient(sdeg func(graph.V) int) {
	for _, tp := range t.list {
		if sdeg(tp.heavy) < sdeg(tp.light) {
			tp.light, tp.heavy = tp.heavy, tp.light
		}
		tp.pending = make(map[graph.V]struct{})
		t.byLight[tp.light] = append(t.byLight[tp.light], tp)
		t.byHeavy[tp.heavy] = append(t.byHeavy[tp.heavy], tp)
	}
}

// observe handles one pass-two edge: it extends the pending set of every
// pair whose light endpoint it touches.
func (t *pairTracker) observe(u, v graph.V) {
	for _, tp := range t.byLight[u] {
		if _, ok := tp.pending[v]; !ok {
			tp.pending[v] = struct{}{}
			t.meter.Charge(space.WordsPerCounter)
		}
	}
	for _, tp := range t.byLight[v] {
		if _, ok := tp.pending[u]; !ok {
			tp.pending[u] = struct{}{}
			t.meter.Charge(space.WordsPerCounter)
		}
	}
}

// close handles one pass-three edge: an edge {c, heavy} with c in the
// pair's pending set witnesses one common neighbor.
func (t *pairTracker) close(u, v graph.V) {
	for _, tp := range t.byHeavy[v] {
		if _, ok := tp.pending[u]; ok {
			tp.codeg++
		}
	}
	for _, tp := range t.byHeavy[u] {
		if _, ok := tp.pending[v]; ok {
			tp.codeg++
		}
	}
}

// ThreePassFourCycle is the port of Vorotnikova's improved 3-pass
// arbitrary-order 4-cycle estimator (arXiv 2007.13466) onto this package's
// contracts. Pass one hash-samples edges with probability p and registers
// every wedge formed inside the sample as a diagonal pair, with
// multiplicity w_P = number of sampled wedges on pair P; passes two and
// three compute each tracked pair's exact co-degree. A wedge x–c–y lies in
// codeg(x,y) − 1 four-cycles (pick the second common neighbor ≠ c), each
// 4-cycle contains four wedges, and a wedge survives sampling with
// probability exactly p² (its two edges are distinct, so their hash
// decisions are independent), which makes
//
//	Ĉ4 = Σ_P w_P · (codeg_P − 1) / (4p²)
//
// unbiased. The space is the edge sample plus, per tracked pair, the
// pending set of its lighter endpoint — the heavy/light split that keeps
// the closure state near the paper's budget instead of Θ(Δ) per pair.
type ThreePassFourCycle struct {
	p       float64
	sampler *sampling.FixedProb

	incident map[graph.V][]graph.V // sampled-edge adjacency (pass one only)
	tracker  *pairTracker

	pass  int
	items int64
	m     int64
	meter space.Meter
}

var _ Estimator = (*ThreePassFourCycle)(nil)

// NewThreePassFourCycle returns the estimator with edge-sampling
// probability p ∈ (0,1].
func NewThreePassFourCycle(p float64, seed uint64) (*ThreePassFourCycle, error) {
	sampler, err := sampling.NewFixedProb(p, seed)
	if err != nil {
		return nil, err
	}
	t := &ThreePassFourCycle{
		p:        p,
		sampler:  sampler,
		incident: make(map[graph.V][]graph.V),
	}
	t.tracker = newPairTracker(&t.meter)
	return t, nil
}

// Passes implements Algorithm.
func (t *ThreePassFourCycle) Passes() int { return 3 }

// StartPass implements Algorithm.
func (t *ThreePassFourCycle) StartPass(p int) { t.pass = p }

// Edge implements Algorithm.
func (t *ThreePassFourCycle) Edge(u, v graph.V) {
	switch t.pass {
	case 0:
		t.items++
		if t.sampler.Offer(u, v) {
			t.addSampled(graph.Edge{U: u, V: v}.Norm())
		}
	case 1:
		t.tracker.observe(u, v)
	case 2:
		t.tracker.close(u, v)
	}
}

// addSampled registers the wedges the new sampled edge forms with the
// sample so far: each one's endpoint pair becomes (or re-weights) a tracked
// diagonal pair.
func (t *ThreePassFourCycle) addSampled(e graph.Edge) {
	for _, c := range [2]graph.V{e.U, e.V} {
		other := e.V
		if c == e.V {
			other = e.U
		}
		for _, x := range t.incident[c] {
			if x == other {
				continue
			}
			t.tracker.pair(x, other).weight++
		}
	}
	t.incident[e.U] = append(t.incident[e.U], e.V)
	t.incident[e.V] = append(t.incident[e.V], e.U)
	t.meter.Charge(space.WordsPerEdge)
}

// EndPass implements Algorithm.
func (t *ThreePassFourCycle) EndPass(p int) {
	if p != 0 {
		return
	}
	t.m = t.items
	t.tracker.orient(func(v graph.V) int { return len(t.incident[v]) })
	// The sample itself is dead weight after the pairs are formed; only the
	// tracker state rides into the closure passes.
	t.meter.Release(int64(t.sampler.Len()) * space.WordsPerEdge)
	t.incident = nil
}

// Estimate returns Σ w·(codeg−1) / (4p²).
func (t *ThreePassFourCycle) Estimate() float64 {
	var closure int64
	for _, tp := range t.tracker.list {
		closure += tp.weight * (tp.codeg - 1)
	}
	return float64(closure) / (4 * t.p * t.p)
}

// SpaceWords implements Estimator.
func (t *ThreePassFourCycle) SpaceWords() int64 { return t.meter.Peak() }

// M returns the edge count measured in pass one.
func (t *ThreePassFourCycle) M() int64 { return t.m }

// PairsTracked returns the number of diagonal pairs whose co-degree the
// closure passes computed.
func (t *ThreePassFourCycle) PairsTracked() int64 { return int64(len(t.tracker.list)) }

// NearOptFourCycle is the port of the Lüderssen–Neumann–Peng near-optimal
// (1±ε) 3-pass arbitrary-order estimator (arXiv 2604.00828). It runs two
// independent hash samples in pass one: a discovery sample at rate q and an
// estimation sample at rate p, with independent seeds. A diagonal pair is
// tracked when either sample forms a wedge on it, and passes two and three
// compute its exact co-degree d. Because a pair's wedges have distinct
// centers, their edge sets are disjoint and the per-wedge survival events
// are independent, so Pr[pair enters the estimation sample] is exactly
// β(d) = 1 − (1−p²)^d. The split estimator
//
//	Ĉ4 = ½ · [ Σ_{discovered} C(d,2)  +  Σ_{est-only} C(d,2) / β(d) ]
//
// is unbiased for every pair (E = C(d,2)·(α + (1−α)·β·(1/β)) with
// α = 1 − (1−q²)^d), and the heavy/light split is what buys near-optimal
// variance: high-co-degree pairs are discovered almost surely and enter
// exactly, while the surviving light pairs have C(d,2) capped by the
// discovery threshold, so the inverse-β scaling cannot blow up.
type NearOptFourCycle struct {
	p, q    float64
	estS    *sampling.FixedProb
	discS   *sampling.FixedProb
	incEst  map[graph.V][]graph.V
	incDisc map[graph.V][]graph.V
	tracker *pairTracker

	pass  int
	items int64
	m     int64
	meter space.Meter
}

var _ Estimator = (*NearOptFourCycle)(nil)

// NewNearOptFourCycle returns the estimator with estimation rate p ∈ (0,1]
// and discovery rate q. q = 0 selects the default q = min(1, √p): denser
// than the estimation sample, so pairs with co-degree ≳ 1/q² — the ones
// whose C(d,2) would dominate the variance — are discovered almost surely
// and contribute exactly.
func NewNearOptFourCycle(p, q float64, seed uint64) (*NearOptFourCycle, error) {
	if q == 0 {
		q = math.Min(1, math.Sqrt(p))
	}
	if !(q > 0 && q <= 1) {
		return nil, fmt.Errorf("arbitrary: discovery rate %v outside (0,1]", q)
	}
	estS, err := sampling.NewFixedProb(p, seed^0x8f1b_bcdc_bfa5_3e0b)
	if err != nil {
		return nil, err
	}
	discS, err := sampling.NewFixedProb(q, seed^0x2b99_2ddf_a232_49d6)
	if err != nil {
		return nil, err
	}
	n := &NearOptFourCycle{
		p:       p,
		q:       q,
		estS:    estS,
		discS:   discS,
		incEst:  make(map[graph.V][]graph.V),
		incDisc: make(map[graph.V][]graph.V),
	}
	n.tracker = newPairTracker(&n.meter)
	return n, nil
}

// Passes implements Algorithm.
func (n *NearOptFourCycle) Passes() int { return 3 }

// StartPass implements Algorithm.
func (n *NearOptFourCycle) StartPass(p int) { n.pass = p }

// Edge implements Algorithm.
func (n *NearOptFourCycle) Edge(u, v graph.V) {
	switch n.pass {
	case 0:
		n.items++
		e := graph.Edge{U: u, V: v}.Norm()
		if n.discS.Offer(u, v) {
			n.addSampled(e, n.incDisc, func(tp *trackedPair) { tp.disc = true })
		}
		if n.estS.Offer(u, v) {
			n.addSampled(e, n.incEst, func(tp *trackedPair) { tp.est = true })
		}
	case 1:
		n.tracker.observe(u, v)
	case 2:
		n.tracker.close(u, v)
	}
}

// addSampled registers the wedges e forms inside one of the two samples,
// marking each touched pair with that sample's flag.
func (n *NearOptFourCycle) addSampled(e graph.Edge, incident map[graph.V][]graph.V, mark func(*trackedPair)) {
	for _, c := range [2]graph.V{e.U, e.V} {
		other := e.V
		if c == e.V {
			other = e.U
		}
		for _, x := range incident[c] {
			if x == other {
				continue
			}
			mark(n.tracker.pair(x, other))
		}
	}
	incident[e.U] = append(incident[e.U], e.V)
	incident[e.V] = append(incident[e.V], e.U)
	n.meter.Charge(space.WordsPerEdge)
}

// EndPass implements Algorithm.
func (n *NearOptFourCycle) EndPass(p int) {
	if p != 0 {
		return
	}
	n.m = n.items
	n.tracker.orient(func(v graph.V) int { return len(n.incDisc[v]) + len(n.incEst[v]) })
	n.meter.Release(int64(n.discS.Len()+n.estS.Len()) * space.WordsPerEdge)
	n.incEst, n.incDisc = nil, nil
}

// Estimate returns the split estimator over the tracked pairs.
func (n *NearOptFourCycle) Estimate() float64 {
	p2 := n.p * n.p
	var sum float64
	for _, tp := range n.tracker.list {
		d := float64(tp.codeg)
		if d < 2 {
			continue
		}
		c2 := d * (d - 1) / 2
		switch {
		case tp.disc:
			sum += c2
		case tp.est:
			sum += c2 / (1 - math.Pow(1-p2, d))
		}
	}
	return sum / 2
}

// SpaceWords implements Estimator.
func (n *NearOptFourCycle) SpaceWords() int64 { return n.meter.Peak() }

// M returns the edge count measured in pass one.
func (n *NearOptFourCycle) M() int64 { return n.m }

// PairsTracked returns the number of diagonal pairs whose co-degree the
// closure passes computed.
func (n *NearOptFourCycle) PairsTracked() int64 { return int64(len(n.tracker.list)) }
