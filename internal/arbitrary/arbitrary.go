package arbitrary

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"
	"strings"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
)

// Stream is an arbitrary-order edge stream: every edge exactly once.
type Stream struct {
	edges []graph.Edge
}

// FromGraph returns g's edges in a uniformly random order under seed.
func FromGraph(g *graph.Graph, seed uint64) *Stream {
	es := g.Edges()
	rng := rand.New(rand.NewPCG(seed, seed^0x6c62_272e_07bb_0142))
	rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
	return &Stream{edges: es}
}

// FromEdges validates (no duplicates in either orientation, no self-loops)
// and copies an explicit edge sequence into a new stream. The copy is what
// makes multi-pass replay sound: Run presents the stored sequence once per
// pass, so a caller mutating its own slice between passes must not be able
// to change what a later pass sees.
func FromEdges(edges []graph.Edge) (*Stream, error) {
	seen := make(map[graph.Edge]bool, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			return nil, fmt.Errorf("arbitrary: self-loop at index %d", i)
		}
		n := e.Norm()
		if seen[n] {
			return nil, fmt.Errorf("arbitrary: duplicate edge %v at index %d", n, i)
		}
		seen[n] = true
	}
	es := make([]graph.Edge, len(edges))
	copy(es, edges)
	return &Stream{edges: es}, nil
}

// ReadEdges parses one whitespace-separated "u v" edge per line (blank lines
// and #-comments skipped) and returns the stream in file order — the textual
// form of an arbitrary-order stream, as genstream -format arbstream emits.
func ReadEdges(r io.Reader) (*Stream, error) {
	var edges []graph.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("arbitrary: line %d: want \"u v\", got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("arbitrary: line %d: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("arbitrary: line %d: %w", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("arbitrary: line %d: negative vertex", line)
		}
		edges = append(edges, graph.Edge{U: graph.V(u), V: graph.V(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(edges)
}

// Edges returns the stored sequence. The stream owns its storage — FromEdges
// copies its input, so this slice aliases no caller memory — but the return
// value is still the live backing array: treat it as read-only.
func (s *Stream) Edges() []graph.Edge { return s.edges }

// M returns the number of edges.
func (s *Stream) M() int64 { return int64(len(s.edges)) }

// N returns the vertex-universe size implied by the stream: one past the
// largest endpoint (0 for an empty stream). One-pass estimators in the
// Buriol line need n up front; a stream wrapper knows it exactly.
func (s *Stream) N() int64 {
	var max graph.V = -1
	for _, e := range s.edges {
		if e.U > max {
			max = e.U
		}
		if e.V > max {
			max = e.V
		}
	}
	return int64(max) + 1
}

// Algorithm is a multi-pass arbitrary-order streaming algorithm.
type Algorithm interface {
	// Passes returns the number of passes required.
	Passes() int
	// StartPass is called before pass p (0-based).
	StartPass(p int)
	// Edge is called once per stream edge.
	Edge(u, v graph.V)
	// EndPass is called after pass p.
	EndPass(p int)
}

// Estimator is an Algorithm producing an estimate and a space figure.
type Estimator interface {
	Algorithm
	// Estimate returns the final estimate; valid after Run.
	Estimate() float64
	// SpaceWords returns the peak words of state used.
	SpaceWords() int64
}

// Run replays s once per pass of a, in identical order.
func Run(s *Stream, a Algorithm) {
	for p := 0; p < a.Passes(); p++ {
		a.StartPass(p)
		for _, e := range s.edges {
			a.Edge(e.U, e.V)
		}
		a.EndPass(p)
	}
}

// RunContext is Run with cancellation, polled every 1024 edges. A cancelled
// run returns ctx's cause and leaves a in an unspecified mid-pass state.
func RunContext(ctx context.Context, s *Stream, a Algorithm) error {
	for p := 0; p < a.Passes(); p++ {
		a.StartPass(p)
		for i, e := range s.edges {
			if i%1024 == 0 {
				if err := context.Cause(ctx); err != nil {
					return err
				}
			}
			a.Edge(e.U, e.V)
		}
		a.EndPass(p)
	}
	return context.Cause(ctx)
}

// TwoPassWedge is the const-pass arbitrary-order estimator family behind
// the Θ(m^{3/2}/T) bound: pass one hash-samples edges with probability p
// and forms the wedges inside the sample; pass two sees every edge again
// and closes sampled wedges exactly. Each triangle has three wedges, each
// present with probability p², so T̂ = closed/(3p²) is unbiased. The space
// is the edge sample plus the wedge set; at p = Θ(√m/T) that is the
// Θ(m^{3/2}/T) of Table 1's const-pass arbitrary-order rows.
type TwoPassWedge struct {
	p       float64
	sampler *sampling.FixedProb

	incident map[graph.V][]graph.V
	byPair   map[graph.Edge][]*arbWedge
	wedges   int64
	closed   int64

	pass  int
	items int64
	m     int64
	meter space.Meter
}

type arbWedge struct {
	closed bool
}

var _ Estimator = (*TwoPassWedge)(nil)

// NewTwoPassWedge returns the estimator with edge-sampling probability p.
func NewTwoPassWedge(p float64, seed uint64) (*TwoPassWedge, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("arbitrary: sampling probability %v out of (0,1]", p)
	}
	sampler, err := sampling.NewFixedProb(p, seed)
	if err != nil {
		return nil, err
	}
	return &TwoPassWedge{
		p:        p,
		sampler:  sampler,
		incident: make(map[graph.V][]graph.V),
		byPair:   make(map[graph.Edge][]*arbWedge),
	}, nil
}

// Passes implements Algorithm.
func (t *TwoPassWedge) Passes() int { return 2 }

// StartPass implements Algorithm.
func (t *TwoPassWedge) StartPass(p int) { t.pass = p }

// Edge implements Algorithm.
func (t *TwoPassWedge) Edge(u, v graph.V) {
	switch t.pass {
	case 0:
		t.items++
		if t.sampler.Offer(u, v) {
			t.addSampled(graph.Edge{U: u, V: v}.Norm())
		}
	case 1:
		key := graph.Edge{U: u, V: v}.Norm()
		for _, w := range t.byPair[key] {
			if !w.closed {
				w.closed = true
				t.closed++
			}
		}
	}
}

func (t *TwoPassWedge) addSampled(e graph.Edge) {
	for _, c := range [2]graph.V{e.U, e.V} {
		other := e.V
		if c == e.V {
			other = e.U
		}
		for _, x := range t.incident[c] {
			if x == other {
				continue
			}
			t.wedges++
			w := &arbWedge{}
			key := graph.Edge{U: x, V: other}.Norm()
			t.byPair[key] = append(t.byPair[key], w)
			t.meter.Charge(space.WordsPerWedge)
		}
	}
	t.incident[e.U] = append(t.incident[e.U], e.V)
	t.incident[e.V] = append(t.incident[e.V], e.U)
	t.meter.Charge(space.WordsPerEdge)
}

// EndPass implements Algorithm.
func (t *TwoPassWedge) EndPass(p int) {
	if p == 0 {
		t.m = t.items
	}
}

// Estimate returns closed/(3p²).
func (t *TwoPassWedge) Estimate() float64 {
	return float64(t.closed) / (3 * t.p * t.p)
}

// WedgesFormed returns the number of wedges stored after pass one.
func (t *TwoPassWedge) WedgesFormed() int64 { return t.wedges }

// SpaceWords implements Estimator.
func (t *TwoPassWedge) SpaceWords() int64 { return t.meter.Peak() }

// M returns the edge count measured in pass one.
func (t *TwoPassWedge) M() int64 { return t.m }

// BuriolSampler is the classic one-pass arbitrary-order estimator of
// Buriol et al.: R independent instances each hold a uniform stream edge
// (reservoir) and a uniform third vertex from [n]\{endpoints}, and succeed
// if both completing edges appear after the sampled edge. For any fixed
// stream order exactly one edge of each triangle (its first-arriving one)
// can succeed, so E[successes] = R·T/(m·(n-2)) and
// T̂ = successes·m·(n-2)/R is unbiased. It needs the vertex universe size n
// up front (the standard assumption in that line of work) and Ω(mn/T)
// instances for concentration — the weakness that motivated all subsequent
// work in both models.
type BuriolSampler struct {
	n   int64
	rng *rand.Rand

	inst []buriolInstance

	pos   int64
	m     int64
	meter space.Meter
}

type buriolInstance struct {
	e      graph.Edge // sampled edge (valid if havee)
	w      graph.V    // sampled third vertex
	havee  bool
	gotUW  bool
	gotVW  bool
	closed bool
}

var _ Estimator = (*BuriolSampler)(nil)

// NewBuriolSampler returns a sampler with r independent instances over the
// vertex universe {0, …, n-1}.
func NewBuriolSampler(r int, n int64, seed uint64) (*BuriolSampler, error) {
	if r < 1 {
		return nil, fmt.Errorf("arbitrary: instance count %d < 1", r)
	}
	if n < 3 {
		return nil, fmt.Errorf("arbitrary: vertex universe %d < 3", n)
	}
	b := &BuriolSampler{
		n:    n,
		rng:  rand.New(rand.NewPCG(seed, seed^0x3c79_ac49_2ba7_b653)),
		inst: make([]buriolInstance, r),
	}
	b.meter.Charge(int64(r) * (space.WordsPerEdge + 2))
	return b, nil
}

// Passes implements Algorithm.
func (b *BuriolSampler) Passes() int { return 1 }

// StartPass implements Algorithm.
func (b *BuriolSampler) StartPass(p int) {}

// Edge implements Algorithm.
func (b *BuriolSampler) Edge(u, v graph.V) {
	b.pos++
	e := graph.Edge{U: u, V: v}.Norm()
	for i := range b.inst {
		in := &b.inst[i]
		// Reservoir over edges: replace with probability 1/pos.
		if b.rng.Int64N(b.pos) == 0 {
			in.e = e
			in.havee = true
			// Uniform third vertex, resampled on edge replacement; avoid
			// the endpoints (the classical estimator uses n-2 for this).
			for {
				w := graph.V(b.rng.Int64N(b.n))
				if w != e.U && w != e.V {
					in.w = w
					break
				}
			}
			in.gotUW, in.gotVW, in.closed = false, false, false
			continue
		}
		if !in.havee || in.closed {
			continue
		}
		if (e == graph.Edge{U: in.e.U, V: in.w}.Norm()) {
			in.gotUW = true
		}
		if (e == graph.Edge{U: in.e.V, V: in.w}.Norm()) {
			in.gotVW = true
		}
		if in.gotUW && in.gotVW {
			in.closed = true
		}
	}
}

// EndPass implements Algorithm.
func (b *BuriolSampler) EndPass(p int) { b.m = b.pos }

// Estimate returns successes·m·(n-2)/R.
func (b *BuriolSampler) Estimate() float64 {
	succ := 0
	for i := range b.inst {
		if b.inst[i].closed {
			succ++
		}
	}
	return float64(succ) * float64(b.m) * float64(b.n-2) / float64(len(b.inst))
}

// SpaceWords implements Estimator.
func (b *BuriolSampler) SpaceWords() int64 { return b.meter.Peak() }

// M returns the measured edge count.
func (b *BuriolSampler) M() int64 { return b.m }
