package arbitrary

import (
	"testing"

	"adjstream/internal/gen"
)

// BenchmarkArbFourCycle is the benchdiff gate key for the arbitrary-order
// 4-cycle family: one full 3-pass run per iteration at a mid-range rate.
func BenchmarkArbFourCycle(b *testing.B) {
	g, err := gen.ErdosRenyi(400, 0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	s := FromGraph(g, 3)
	b.Run("threepass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			alg, err := NewThreePassFourCycle(0.3, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			Run(s, alg)
			_ = alg.Estimate()
		}
	})
	b.Run("nearopt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			alg, err := NewNearOptFourCycle(0.3, 0, uint64(i)+1)
			if err != nil {
				b.Fatal(err)
			}
			Run(s, alg)
			_ = alg.Estimate()
		}
	})
}
