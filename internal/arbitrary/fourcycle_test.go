package arbitrary

import (
	"math"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/plane"
	"adjstream/internal/stats"
)

// fourCycleFamilies returns the exact-kernel validation families: G(n,p),
// Chung–Lu, planted 4-cycles, and the C4-free projective-plane incidence
// graph (girth 6).
func fourCycleFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er, err := gen.ErdosRenyi(60, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gen.ChungLu(80, 2.2, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	planted := gen.PlantedFourCycles(40, 200)
	pl, err := plane.New(3)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := pl.IncidenceGraph(0, graph.V(pl.Size()))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"er": er, "chunglu": cl, "planted": planted, "plane": inc}
}

func TestFourCycleExactAtFullSample(t *testing.T) {
	// p = 1 (and the default q = 1): every wedge is tracked with its full
	// multiplicity and every co-degree is exact, so both estimators return
	// the kernel count exactly — including 0 on the girth-6 plane.
	for name, g := range fourCycleFamilies(t) {
		truth := float64(g.FourCycles())
		s := FromGraph(g, 5)

		tp, err := NewThreePassFourCycle(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, tp)
		if got := tp.Estimate(); got != truth {
			t.Fatalf("%s: three-pass estimate %v, want %v", name, got, truth)
		}
		if tp.M() != g.M() {
			t.Fatalf("%s: M = %d, want %d", name, tp.M(), g.M())
		}

		no, err := NewNearOptFourCycle(1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, no)
		if got := no.Estimate(); got != truth {
			t.Fatalf("%s: near-opt estimate %v, want %v", name, got, truth)
		}
	}
}

// TestFourCycleAccuracyFamilies is the (1±ε) acceptance check: at the
// sampling budget p = Θ(1/T^{1/4}) — the rate at which the expected number
// of sampled wedges per 4-cycle is Ω(1), i.e. the paper-prescribed space
// point for these graphs — the median of 9 independent copies lands within
// ε of the exact CSR kernel on every family. The C4-free plane is checked
// exactly: the closure sum has nothing to close, so the estimate is 0.
func TestFourCycleAccuracyFamilies(t *testing.T) {
	const eps = 0.25
	for name, g := range fourCycleFamilies(t) {
		truth := float64(g.FourCycles())
		s := FromGraph(g, 7)
		p := 0.5
		if truth > 0 {
			p = math.Min(1, 3/math.Pow(truth, 0.25))
		}
		for algName, build := range map[string]func(seed uint64) (Estimator, error){
			"threepass": func(seed uint64) (Estimator, error) { return NewThreePassFourCycle(p, seed) },
			"nearopt":   func(seed uint64) (Estimator, error) { return NewNearOptFourCycle(p, 0, seed) },
		} {
			var ests []float64
			for c := uint64(0); c < 9; c++ {
				alg, err := build(11 + c*0x9e37_79b9)
				if err != nil {
					t.Fatal(err)
				}
				Run(s, alg)
				ests = append(ests, alg.Estimate())
			}
			med := stats.Median(ests)
			if truth == 0 {
				if med != 0 {
					t.Fatalf("%s/%s: estimate %v on a C4-free graph", name, algName, med)
				}
				continue
			}
			if rel := math.Abs(med-truth) / truth; rel > eps {
				t.Fatalf("%s/%s: median %v, truth %v, rel err %.3f > %v (p=%v)",
					name, algName, med, truth, rel, eps, p)
			}
		}
	}
}

func TestThreePassFourCycleUnbiased(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.FourCycles())
	s := FromGraph(g, 9)
	var ests []float64
	for seed := uint64(0); seed < 300; seed++ {
		alg, err := NewThreePassFourCycle(0.4, seed*3+1)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean %v, truth %v", mean, truth)
	}
}

func TestNearOptFourCycleUnbiased(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.FourCycles())
	s := FromGraph(g, 9)
	var ests []float64
	for seed := uint64(0); seed < 300; seed++ {
		alg, err := NewNearOptFourCycle(0.35, 0, seed*5+2)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean %v, truth %v", mean, truth)
	}
}

func TestFourCycleValidation(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewThreePassFourCycle(p, 1); err == nil {
			t.Errorf("three-pass p=%v should fail", p)
		}
		if _, err := NewNearOptFourCycle(p, 0.5, 1); err == nil {
			t.Errorf("near-opt p=%v should fail", p)
		}
	}
	if _, err := NewNearOptFourCycle(0.5, -0.1, 1); err == nil {
		t.Error("near-opt q<0 should fail")
	}
	if _, err := NewNearOptFourCycle(0.5, 1.5, 1); err == nil {
		t.Error("near-opt q>1 should fail")
	}
	// q = 0 selects the √p default.
	if _, err := NewNearOptFourCycle(0.25, 0, 1); err != nil {
		t.Errorf("default q: %v", err)
	}
}

func TestFourCycleSpaceGrowsWithP(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g, 1)
	for name, build := range map[string]func(p float64) (Estimator, error){
		"threepass": func(p float64) (Estimator, error) { return NewThreePassFourCycle(p, 5) },
		"nearopt":   func(p float64) (Estimator, error) { return NewNearOptFourCycle(p, 0, 5) },
	} {
		lo, err := build(0.1)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, lo)
		hi, err := build(0.9)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, hi)
		if lo.SpaceWords() <= 0 || hi.SpaceWords() <= lo.SpaceWords() {
			t.Fatalf("%s: space lo=%d hi=%d", name, lo.SpaceWords(), hi.SpaceWords())
		}
	}
}

// The pending-set orientation stores each tracked pair's neighbor set on
// the endpoint with the smaller sampled degree, so a star center (huge
// degree) must never own pending sets when paired against leaves.
func TestFourCyclePendingOnLightSide(t *testing.T) {
	// A star K_{1,40} plus one 4-cycle through the center: pairs involving
	// the hub orient the hub heavy.
	var edges []graph.Edge
	hub := graph.V(0)
	for i := graph.V(1); i <= 40; i++ {
		edges = append(edges, graph.Edge{U: hub, V: i})
	}
	edges = append(edges, graph.Edge{U: 1, V: 41}, graph.Edge{U: 41, V: 2})
	s, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewThreePassFourCycle(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	Run(s, alg)
	for _, tp := range alg.tracker.list {
		if tp.light == hub {
			t.Fatalf("pair {%d,%d}: hub oriented light (pending set on the star center)", tp.light, tp.heavy)
		}
	}
	// One 4-cycle: hub–1–41–2–hub.
	if got := alg.Estimate(); got != 1 {
		t.Fatalf("estimate %v, want 1", got)
	}
}
