// Package arbitrary implements the arbitrary-order insertion-only edge
// streaming model that Section 1.1 of the paper contrasts with the
// adjacency-list model: each edge appears exactly once, in adversarial
// order, with no locality promise.
//
// Triangles are covered by the model's classics — the Buriol et al.
// edge-plus-vertex sampler (BuriolSampler, one pass) and the two-pass
// wedge-closure estimator (TwoPassWedge) behind the Θ(m^{3/2}/T)
// const-pass bound of Bera–Chakrabarti and McGregor–Vorotnikova–Vu.
// Four-cycles are covered by two three-pass estimators built on a shared
// exact-co-degree closure (pairTracker): ThreePassFourCycle ports
// Vorotnikova's improved 3-pass algorithm (arXiv 2007.13466), and
// NearOptFourCycle ports the Lüderssen–Neumann–Peng near-optimal (1±ε)
// variant (arXiv 2604.00828) with its discovery/estimation sample split.
// Together they are the arbitrary-order column of the complexity landscape:
// experiments can measure what the adjacency-list promise buys, pass for
// pass (see experiments M1 and M3).
//
// The package is deliberately self-contained and minimal: a Stream is just
// an edge sequence that owns its storage (FromGraph shuffles
// deterministically under a seed; FromEdges copies and validates; ReadEdges
// parses the textual form genstream emits), an Algorithm is driven by Run —
// or RunContext under cancellation — replaying the stream once per pass in
// identical order, and an Estimator adds the estimate and the
// words-of-state figure charged through the same space meter the rest of
// the repository uses — so its numbers land in the same tables. The public
// facade exposes the model as adjstream.ModelArbitrary.
package arbitrary
