// Package arbitrary implements the arbitrary-order insertion-only edge
// streaming model that Section 1.1 of the paper contrasts with the
// adjacency-list model: each edge appears exactly once, in adversarial
// order, with no locality promise.
//
// It provides the model's classic triangle counting algorithms — the
// Buriol et al. edge-plus-vertex sampler (BuriolSampler, one pass) and the
// two-pass wedge-closure estimator (TwoPassWedge) behind the Θ(m^{3/2}/T)
// const-pass bound of Bera–Chakrabarti and McGregor–Vorotnikova–Vu — so
// experiments can measure what the adjacency-list promise buys. The
// headline comparison is experiment M1: in this model the required space
// grows with the wedge count P2, while the adjacency-list two-pass
// algorithm's Õ(m/T^{2/3}) does not, because list locality lets an
// algorithm see a whole neighborhood before deciding what to retain.
//
// The package is deliberately self-contained and minimal: a Stream is just
// an edge sequence (FromGraph shuffles deterministically under a seed), an
// Algorithm is driven by Run replaying the stream once per pass, and an
// Estimator adds the estimate and the words-of-state figure charged
// through the same space meter the rest of the repository uses — so its
// numbers land in the same tables.
package arbitrary
