package arbitrary

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
)

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges([]graph.Edge{{U: 1, V: 1}}); err == nil {
		t.Fatal("expected self-loop error")
	}
	if _, err := FromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 1}}); err == nil {
		t.Fatal("expected duplicate error")
	}
	s, err := FromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 2 {
		t.Fatalf("M = %d", s.M())
	}
}

func TestFromGraphShufflesDeterministically(t *testing.T) {
	g := gen.Complete(8)
	a, b := FromGraph(g, 1), FromGraph(g, 1)
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatal("same seed gave different orders")
		}
	}
	c := FromGraph(g, 2)
	same := true
	for i := range a.Edges() {
		if a.Edges()[i] != c.Edges()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical orders")
	}
}

func TestTwoPassWedgeExactAtFullSample(t *testing.T) {
	// p = 1: every wedge stored, every closure found: closed = 3T exactly.
	for seed := uint64(1); seed <= 5; seed++ {
		g, err := gen.ErdosRenyi(15, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		alg, err := NewTwoPassWedge(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		Run(FromGraph(g, seed), alg)
		if got := alg.Estimate(); got != float64(g.Triangles()) {
			t.Fatalf("seed %d: estimate %v, want %d", seed, got, g.Triangles())
		}
		if alg.M() != g.M() {
			t.Fatalf("M = %d", alg.M())
		}
	}
}

func TestTwoPassWedgeUnbiased(t *testing.T) {
	g, err := gen.PlantedTriangles(60, 20, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := FromGraph(g, 9)
	var ests []float64
	for seed := uint64(0); seed < 300; seed++ {
		alg, err := NewTwoPassWedge(0.5, seed*3+1)
		if err != nil {
			t.Fatal(err)
		}
		Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean %v, truth %v", mean, truth)
	}
}

func TestTwoPassWedgeRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, -1, 1.5} {
		if _, err := NewTwoPassWedge(p, 1); err == nil {
			t.Fatalf("p=%v should fail", p)
		}
	}
}

func TestBuriolUnbiased(t *testing.T) {
	g := gen.Complete(10) // T = 120, n = 10, m = 45
	truth := float64(g.Triangles())
	n := int64(g.N())
	var ests []float64
	for seed := uint64(0); seed < 200; seed++ {
		alg, err := NewBuriolSampler(200, n, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		Run(FromGraph(g, seed), alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("mean %v, truth %v", mean, truth)
	}
}

func TestBuriolSingleTriangle(t *testing.T) {
	// One triangle, three vertices: every instance whose sampled edge is
	// the first-arriving triangle edge and whose w is the third vertex
	// succeeds; none else. Estimate must be non-negative and m·(n-2)-quantized.
	g := gen.DisjointTriangles(1)
	alg, err := NewBuriolSampler(50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	Run(FromGraph(g, 3), alg)
	est := alg.Estimate()
	if est < 0 {
		t.Fatalf("estimate %v", est)
	}
	// With n=3 and m=3, quantum is m(n-2)/R = 3/50.
	if rem := math.Mod(est*50, 3); rem > 1e-9 && rem < 3-1e-9 {
		t.Fatalf("estimate %v is not quantized as expected", est)
	}
}

func TestBuriolValidation(t *testing.T) {
	if _, err := NewBuriolSampler(0, 10, 1); err == nil {
		t.Fatal("r=0 should fail")
	}
	if _, err := NewBuriolSampler(5, 2, 1); err == nil {
		t.Fatal("n<3 should fail")
	}
}

func TestTwoPassWedgeSpaceGrowsWithP(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := FromGraph(g, 1)
	lo, err := NewTwoPassWedge(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	Run(s, lo)
	hi, err := NewTwoPassWedge(0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	Run(s, hi)
	if hi.SpaceWords() <= lo.SpaceWords() {
		t.Fatalf("space lo=%d hi=%d", lo.SpaceWords(), hi.SpaceWords())
	}
}

// orderRecorder records the edge sequence presented in each pass.
type orderRecorder struct {
	passes int
	seqs   [][]graph.Edge
}

func (r *orderRecorder) Passes() int     { return r.passes }
func (r *orderRecorder) StartPass(p int) { r.seqs = append(r.seqs, nil) }
func (r *orderRecorder) Edge(u, v graph.V) {
	r.seqs[len(r.seqs)-1] = append(r.seqs[len(r.seqs)-1], graph.Edge{U: u, V: v})
}
func (r *orderRecorder) EndPass(p int) {}

// Property: Run presents the identical edge sequence on every pass — the
// replay-determinism contract multi-pass estimators rely on.
func TestRunIdenticalOrderEveryPass(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(14, 0.4, seed%64+1)
		if err != nil {
			return false
		}
		rec := &orderRecorder{passes: 3}
		Run(FromGraph(g, seed), rec)
		if len(rec.seqs) != 3 || int64(len(rec.seqs[0])) != g.M() {
			return false
		}
		for p := 1; p < 3; p++ {
			for i := range rec.seqs[0] {
				if rec.seqs[p][i] != rec.seqs[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FromEdges must copy: a caller mutating its slice mid-run (between passes)
// must not change what later passes replay.
func TestFromEdgesDefensiveCopy(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	s, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	edges[0] = graph.Edge{U: 7, V: 8}
	if got := s.Edges()[0]; got != (graph.Edge{U: 0, V: 1}) {
		t.Fatalf("stream edge mutated through caller slice: %v", got)
	}
	// The sharper version of the same bug: mutate from inside a pass and
	// check the recorded sequences still match across passes.
	s2, err := FromEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	rec := &mutatingRecorder{orderRecorder: orderRecorder{passes: 2}, caller: edges}
	Run(s2, rec)
	for i := range rec.seqs[0] {
		if rec.seqs[1][i] != rec.seqs[0][i] {
			t.Fatalf("pass 1 diverged at %d: %v vs %v", i, rec.seqs[1][i], rec.seqs[0][i])
		}
	}
}

type mutatingRecorder struct {
	orderRecorder
	caller []graph.Edge
}

func (r *mutatingRecorder) EndPass(p int) {
	for i := range r.caller {
		r.caller[i] = graph.Edge{U: 90 + graph.V(i), V: 99 + graph.V(i)}
	}
}

func TestStreamN(t *testing.T) {
	s, err := FromEdges([]graph.Edge{{U: 3, V: 9}, {U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 10 {
		t.Fatalf("N = %d, want 10", s.N())
	}
	empty, err := FromEdges(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.N() != 0 {
		t.Fatalf("empty N = %d", empty.N())
	}
}

func TestReadEdges(t *testing.T) {
	s, err := ReadEdges(strings.NewReader("# comment\n0 1\n\n2 3\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}}
	for i, e := range s.Edges() {
		if e != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, e, want[i])
		}
	}
	for _, bad := range []string{"0\n", "a b\n", "-1 2\n", "1 1\n", "0 1\n1 0\n"} {
		if _, err := ReadEdges(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	g := gen.Complete(40)
	s := FromGraph(g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	alg, err := NewTwoPassWedge(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunContext(ctx, s, alg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Uncancelled: identical result to Run.
	a1, _ := NewTwoPassWedge(0.5, 1)
	a2, _ := NewTwoPassWedge(0.5, 1)
	Run(s, a1)
	if err := RunContext(context.Background(), s, a2); err != nil {
		t.Fatal(err)
	}
	if a1.Estimate() != a2.Estimate() {
		t.Fatalf("RunContext %v != Run %v", a2.Estimate(), a1.Estimate())
	}
}

// Property: full-sample two-pass wedge closure equals 3T on random inputs
// regardless of edge order.
func TestTwoPassWedgeClosureQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(12, 0.5, seed%128+1)
		if err != nil {
			return false
		}
		alg, err := NewTwoPassWedge(1, 1)
		if err != nil {
			return false
		}
		Run(FromGraph(g, seed), alg)
		return alg.Estimate() == float64(g.Triangles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
