package core

import (
	"fmt"
	"math"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/stream"
)

// AdaptiveConfig parameterizes the adaptive two-pass triangle estimator.
type AdaptiveConfig struct {
	// InitialSample is the starting bottom-k capacity (an upper bound on
	// the space the run may use). Required.
	InitialSample int
	// MinSample floors the adaptive budget (default 64).
	MinSample int
	// C is the budget constant in k = C·m_seen/T̂^{2/3} (default 8, the
	// constant the Table 1 row-6 experiments use).
	C float64
	// PairCap bounds the candidate reservoir (default 8·InitialSample).
	PairCap int
	// Seed drives all sampling decisions.
	Seed uint64
}

func (c AdaptiveConfig) withDefaults() (AdaptiveConfig, error) {
	if c.InitialSample < 1 {
		return c, fmt.Errorf("core: adaptive InitialSample %d < 1", c.InitialSample)
	}
	if c.MinSample == 0 {
		c.MinSample = 64
		if c.MinSample > c.InitialSample {
			c.MinSample = c.InitialSample
		}
	}
	if c.MinSample < 1 || c.MinSample > c.InitialSample {
		return c, fmt.Errorf("core: adaptive MinSample %d out of [1, %d]", c.MinSample, c.InitialSample)
	}
	if c.C == 0 {
		c.C = 8
	}
	if c.C < 0 {
		return c, fmt.Errorf("core: adaptive C %v < 0", c.C)
	}
	if c.PairCap == 0 {
		c.PairCap = 8 * c.InitialSample
	}
	if c.PairCap < 0 {
		return c, fmt.Errorf("core: adaptive PairCap %d < 0", c.PairCap)
	}
	return c, nil
}

// AdaptiveTwoPassTriangle runs the Theorem 3.7 two-pass estimator without
// knowing T in advance — the gap between the paper's statement (budgets
// parameterized by the unknown T) and a deployable system. During pass one
// it maintains a running naive triangle estimate from the pairs discovered
// so far and shrinks the bottom-k capacity toward k = C·m_seen/T̂^{2/3}.
// Shrinking is sound because a bottom-k sample only ever loses its
// largest-hash edges: the final sample is still a uniform subset and every
// surviving edge has been tracked since first sight (see BottomK.Shrink).
// The final budget is mildly data-dependent, so the estimator trades the
// paper's exact unbiasedness for self-tuning space; the A6 experiment
// measures the cost.
type AdaptiveTwoPassTriangle struct {
	inner *TwoPassTriangle
	cfg   AdaptiveConfig
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap      *stream.CopyState
	snapFinal int
}

var _ stream.Estimator = (*AdaptiveTwoPassTriangle)(nil)

// NewAdaptiveTwoPassTriangle validates cfg and returns the estimator.
func NewAdaptiveTwoPassTriangle(cfg AdaptiveConfig) (*AdaptiveTwoPassTriangle, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	inner, err := NewTwoPassTriangle(TriangleConfig{
		SampleSize: cfg.InitialSample,
		PairCap:    cfg.PairCap,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &AdaptiveTwoPassTriangle{inner: inner, cfg: cfg}, nil
}

// Passes implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) Passes() int { return a.inner.Passes() }

// StartPass implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) StartPass(p int) {
	a.inner.StartPass(p)
	a.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) StartList(v graph.V) { a.inner.StartList(v) }

// Edge implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) Edge(o, n graph.V) { a.inner.Edge(o, n) }

// EndList implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) EndList(v graph.V) {
	a.inner.EndList(v)
	if a.inner.pass == 0 {
		a.adapt()
	}
}

// adapt shrinks the sample toward k = C·m_seen/T̂^{2/3}, with hysteresis so
// the heap is not churned on every list.
func (a *AdaptiveTwoPassTriangle) adapt() {
	bk, ok := a.inner.sampler.(*sampling.BottomK)
	if !ok {
		return
	}
	mSeen := a.inner.items / 2
	if mSeen < int64(a.cfg.MinSample) {
		return
	}
	k := bk.K()
	pairs := a.inner.pairs.Offered()
	if pairs == 0 {
		return
	}
	// Naive running estimate: pass-one discoveries find, on average, half
	// of each sampled edge's triangles (apexes after sampling), and each
	// triangle has three edges, so T ≈ 2·scale·pairs/3.
	scale := float64(mSeen) / float64(min64(int64(k), mSeen))
	tEst := 2 * scale * float64(pairs) / 3
	if tEst < 1 {
		tEst = 1
	}
	target := int(a.cfg.C * float64(mSeen) / math.Pow(tEst, 2.0/3.0))
	if target < a.cfg.MinSample {
		target = a.cfg.MinSample
	}
	// Hysteresis: only shrink on a clear (25%) overshoot.
	if target < k*3/4 {
		bk.Shrink(target)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// EndPass implements stream.Algorithm.
func (a *AdaptiveTwoPassTriangle) EndPass(p int) { a.inner.EndPass(p) }

// Estimate implements stream.Estimator.
func (a *AdaptiveTwoPassTriangle) Estimate() float64 {
	if a.snap != nil {
		return a.snap.Estimate
	}
	return a.inner.Estimate()
}

// SpaceWords implements stream.Estimator.
func (a *AdaptiveTwoPassTriangle) SpaceWords() int64 {
	if a.snap != nil {
		return a.snap.SpaceWords
	}
	return a.inner.SpaceWords()
}

// FinalSample returns the sample capacity the run converged to.
func (a *AdaptiveTwoPassTriangle) FinalSample() int {
	if a.snap != nil {
		return a.snapFinal
	}
	if bk, ok := a.inner.sampler.(*sampling.BottomK); ok {
		return bk.K()
	}
	return 0
}

// SampledEdges returns the live sampled-edge count.
func (a *AdaptiveTwoPassTriangle) SampledEdges() int { return a.inner.SampledEdges() }

// M returns the edge count measured in pass one.
func (a *AdaptiveTwoPassTriangle) M() int64 { return a.inner.m }
