package core

// Columnar fast paths. Every estimator in this package implements
// stream.BatchAlgorithm with the same segment loop: walk the run offsets,
// emitting the Edge/StartList/EndList transitions the item driver would
// have produced, with the open-list cursor (reset in StartPass) carried
// across batches and the final list closed by the driver per the
// BatchAlgorithm contract. The loops are written out per type rather than
// shared through a helper so the Edge/StartList/EndList calls are direct
// concrete-method calls the compiler can inline, which is the point of the
// batch path; the root batch-equality tests pin each one to the item path.

import (
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

var (
	_ stream.BatchAlgorithm = (*TwoPassTriangle)(nil)
	_ stream.BatchAlgorithm = (*ThreePassTriangle)(nil)
	_ stream.BatchAlgorithm = (*NaiveTwoPass)(nil)
	_ stream.BatchAlgorithm = (*TwoPassFourCycle)(nil)
	_ stream.BatchAlgorithm = (*AdaptiveTwoPassTriangle)(nil)
)

// EdgeBatch implements stream.BatchAlgorithm.
func (t *TwoPassTriangle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			t.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if t.cur.Open {
			t.EndList(t.cur.Owner)
		}
		t.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		t.StartList(t.cur.Owner)
	}
	for ; i < len(owners); i++ {
		t.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (t *ThreePassTriangle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			t.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if t.cur.Open {
			t.EndList(t.cur.Owner)
		}
		t.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		t.StartList(t.cur.Owner)
	}
	for ; i < len(owners); i++ {
		t.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (n *NaiveTwoPass) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			n.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if n.cur.Open {
			n.EndList(n.cur.Owner)
		}
		n.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		n.StartList(n.cur.Owner)
	}
	for ; i < len(owners); i++ {
		n.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (f *TwoPassFourCycle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			f.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if f.cur.Open {
			f.EndList(f.cur.Owner)
		}
		f.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		f.StartList(f.cur.Owner)
	}
	for ; i < len(owners); i++ {
		f.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm. The transitions go through
// the adaptive wrapper's own EndList so the pass-one budget adaptation runs
// exactly where the item driver would have run it.
func (a *AdaptiveTwoPassTriangle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			a.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if a.cur.Open {
			a.EndList(a.cur.Owner)
		}
		a.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		a.StartList(a.cur.Owner)
	}
	for ; i < len(owners); i++ {
		a.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}
