package core

import (
	"math"
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// With every edge sampled, Σ_w T_w = 4T (each cycle has four wedges, each
// counted once), so the estimate must be exactly T.
func TestFourCycleExactOnFullSample(t *testing.T) {
	cases := map[string]*graph.Graph{
		"C4":       gen.DisjointFourCycles(1),
		"disjoint": gen.DisjointFourCycles(20),
		"K44":      gen.CompleteBipartite(4, 4),
		"K6":       gen.Complete(6),
		"planted":  gen.PlantedFourCycles(15, 30),
		"c4free":   gen.DisjointTriangles(10),
	}
	for name, g := range cases {
		want := float64(g.FourCycles())
		for seed := uint64(0); seed < 3; seed++ {
			alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			stream.Run(stream.Random(g, seed), alg)
			if got := alg.Estimate(); got != want {
				t.Errorf("%s seed %d: estimate = %v, want exactly %v", name, seed, got, want)
			}
			if alg.CyclesThroughSampledWedges() != 4*g.FourCycles() {
				t.Errorf("%s: ΣT_w = %d, want %d", name, alg.CyclesThroughSampledWedges(), 4*g.FourCycles())
			}
			if alg.M() != g.M() {
				t.Errorf("%s: M = %d, want %d", name, alg.M(), g.M())
			}
		}
	}
}

func TestFourCycleExactQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(12, 0.4, seed%256+1)
		if err != nil {
			return false
		}
		alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, Seed: 1})
		if err != nil {
			return false
		}
		stream.Run(stream.Random(g, seed), alg)
		return alg.Estimate() == float64(g.FourCycles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The 4-cycle algorithm must work even when the two passes use different
// stream orders (the paper does not require identical orders here).
func TestFourCycleDifferentPassOrders(t *testing.T) {
	g := gen.CompleteBipartite(5, 5)
	alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.RunOrders([]*stream.Stream{stream.Random(g, 1), stream.Random(g, 99)}, alg); err != nil {
		t.Fatal(err)
	}
	if got := alg.Estimate(); got != float64(g.FourCycles()) {
		t.Fatalf("estimate = %v, want %d", got, g.FourCycles())
	}
}

func TestFourCycleApproxUnderSubsampling(t *testing.T) {
	g, err := gen.BipartiteButterflies(60, 30, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.FourCycles())
	if truth < 20 {
		t.Fatalf("workload too sparse: T = %v", truth)
	}
	s := stream.Random(g, 2)
	var errs []float64
	for seed := uint64(0); seed < 40; seed++ {
		alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 0.5, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		errs = append(errs, stats.RelErr(alg.Estimate(), truth))
	}
	// O(1)-approximation: median relative error clearly bounded.
	if q := stats.Quantile(errs, 0.5); q > 0.6 {
		t.Fatalf("median relative error %v too large", q)
	}
}

func TestFourCycleBottomKMode(t *testing.T) {
	g := gen.DisjointFourCycles(50) // m = 200
	s := stream.Random(g, 7)
	var ests []float64
	for seed := uint64(0); seed < 150; seed++ {
		alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleSize: 120, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		est := alg.Estimate()
		if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("degenerate estimate %v", est)
		}
		ests = append(ests, est)
	}
	truth := float64(g.FourCycles())
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.25 {
		t.Fatalf("bottom-k mean %v far from truth %v", mean, truth)
	}
}

func TestFourCycleWedgeCap(t *testing.T) {
	g := gen.CompleteBipartite(8, 8)
	full, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), full)
	capped, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, WedgeCap: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), capped)
	if capped.WedgesKept() != 10 {
		t.Fatalf("kept %d wedges, want 10", capped.WedgesKept())
	}
	if capped.WedgesFormed() != full.WedgesFormed() {
		t.Fatalf("formed %d vs %d", capped.WedgesFormed(), full.WedgesFormed())
	}
	if capped.SpaceWords() >= full.SpaceWords() {
		t.Fatalf("capped space %d not below full %d", capped.SpaceWords(), full.SpaceWords())
	}
	// Capped estimator remains centered: average over seeds.
	truth := float64(g.FourCycles())
	var ests []float64
	for seed := uint64(0); seed < 200; seed++ {
		alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, WedgeCap: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Sorted(g), alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("capped mean %v far from truth %v", mean, truth)
	}
}

func TestFourCycleZeroOnC4Free(t *testing.T) {
	g := gen.DisjointTriangles(12)
	alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), alg)
	if got := alg.Estimate(); got != 0 {
		t.Fatalf("estimate = %v on C4-free graph", got)
	}
}

func TestFourCycleConfigValidation(t *testing.T) {
	bad := []FourCycleConfig{
		{},
		{SampleSize: 10, SampleProb: 0.5},
		{SampleProb: 2},
		{SampleSize: 5, WedgeCap: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTwoPassFourCycle(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestClassifyFourCyclesUniform(t *testing.T) {
	// Disjoint 4-cycles: no heavy edges, no overused wedges, all good.
	st := ClassifyFourCycles(gen.DisjointFourCycles(30), 40)
	if st.T != 30 {
		t.Fatalf("T = %d", st.T)
	}
	if st.HeavyEdges != 0 || st.OverusedWedges != 0 || st.BadWedges != 0 {
		t.Fatalf("unexpected bad structure: %+v", st)
	}
	if st.GoodFraction() != 1 {
		t.Fatalf("good fraction = %v, want 1", st.GoodFraction())
	}
}

func TestClassifyFourCyclesDetectsHeavy(t *testing.T) {
	// K_{2,60}: every 4-cycle uses both left vertices; the wedges centered
	// at the two left hubs are hot. With a strict constant the structure is
	// flagged as bad.
	g := gen.CompleteBipartite(2, 60)
	st := ClassifyFourCycles(g, 0.5)
	if st.T != 60*59/2 {
		t.Fatalf("T = %d, want %d", st.T, 60*59/2)
	}
	if st.OverusedWedges == 0 {
		t.Fatal("expected overused wedges in K_{2,60} at strict threshold")
	}
}

func TestClassifyFourCyclesEmpty(t *testing.T) {
	st := ClassifyFourCycles(gen.DisjointTriangles(5), 40)
	if st.T != 0 || st.GoodFraction() != 1 {
		t.Fatalf("unexpected stats on C4-free graph: %+v", st)
	}
}

// Lemma 4.2 empirically: the good fraction is bounded away from zero on
// assorted workloads at the paper's constant 40.
func TestGoodFractionLowerBoundQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(18, 0.4, seed%128+1)
		if err != nil {
			return false
		}
		st := ClassifyFourCycles(g, 40)
		return st.GoodFraction() >= 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
