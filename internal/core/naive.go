package core

import (
	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// NaiveTwoPass is the simple two-pass edge-sampling algorithm of Section 2.1
// (due to McGregor, Vorotnikova and Vu): sample m′ edges in pass one and
// count, across both passes, every triangle containing a sampled edge. Its
// estimate scale·N/3 is unbiased, and with m′ = Θ(m/T^{2/3}) it reliably
// distinguishes triangle-free graphs from graphs with at least T triangles
// (Table 1 row 5). As a (1±ε) estimator it fails on heavy-edge graphs — the
// variance blowup that motivates the lightest-edge rule (ablation A1).
// With m′ = Θ(m^{3/2}/T) it serves as the Table 1 row-3 representative.
type NaiveTwoPass struct {
	cfg     TriangleConfig
	sampler sampling.EdgeSampler
	det     *detector

	pass  int
	pos   int
	items int64
	m     int64
	found int64 // N = Σ_{e∈S} T(e)
	meter space.Meter
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap *stream.CopyState
}

var _ stream.Estimator = (*NaiveTwoPass)(nil)

// NewNaiveTwoPass validates cfg and returns the algorithm. PairCap is
// ignored (only a counter is kept per discovery).
func NewNaiveTwoPass(cfg TriangleConfig) (*NaiveTwoPass, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &NaiveTwoPass{cfg: cfg, det: newDetector()}
	if cfg.SampleSize > 0 {
		n.sampler = sampling.NewBottomK(cfg.SampleSize, cfg.Seed, func(e graph.Edge) {
			if r := n.det.markDead(e); r != nil {
				// Retract discoveries credited to an edge that does not
				// survive into the final sample; otherwise the estimate is
				// biased upward by the early over-inclusive sample.
				n.found -= r.hits
				n.meter.Release(space.WordsPerEdge + 2)
			}
		})
	} else {
		fp, err := sampling.NewFixedProb(cfg.SampleProb, cfg.Seed)
		if err != nil {
			return nil, err
		}
		n.sampler = fp
	}
	return n, nil
}

// Passes implements stream.Algorithm.
func (n *NaiveTwoPass) Passes() int { return 2 }

// StartPass implements stream.Algorithm.
func (n *NaiveTwoPass) StartPass(p int) {
	n.pass = p
	n.pos = 0
	n.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (n *NaiveTwoPass) StartList(owner graph.V) { n.pos++ }

// Edge implements stream.Algorithm.
func (n *NaiveTwoPass) Edge(owner, nbr graph.V) {
	if n.pass == 0 {
		n.items++
		if n.sampler.Offer(owner, nbr) && n.det.get(owner, nbr) == nil {
			n.det.track(owner, nbr, n.pos)
			n.meter.Charge(space.WordsPerEdge + 2)
		}
	}
	n.det.flag(nbr)
}

// EndList implements stream.Algorithm.
func (n *NaiveTwoPass) EndList(owner graph.V) {
	n.det.finishList(func(r *edgeRec) {
		if n.pass == 0 || n.pos < r.posFirst {
			n.found++
			r.hits++
		}
	})
}

// EndPass implements stream.Algorithm.
func (n *NaiveTwoPass) EndPass(p int) {
	if p == 0 {
		n.m = n.items / 2
	}
}

// Estimate returns scale·N/3: unbiased because every triangle is discovered
// once per final-sample edge it contains (discoveries credited to evicted
// edges are retracted), and each triangle has three edges.
func (n *NaiveTwoPass) Estimate() float64 {
	if n.snap != nil {
		return n.snap.Estimate
	}
	return n.sampler.InclusionScale(n.m) * float64(n.found) / 3
}

// Detected reports whether any triangle on a sampled edge was found — the
// 0-versus-T distinguishing answer of Table 1 row 5.
func (n *NaiveTwoPass) Detected() bool { return n.found > 0 }

// PairsDiscovered returns N.
func (n *NaiveTwoPass) PairsDiscovered() int64 { return n.found }

// SpaceWords implements stream.Estimator.
func (n *NaiveTwoPass) SpaceWords() int64 {
	if n.snap != nil {
		return n.snap.SpaceWords
	}
	return n.meter.Peak()
}

// M returns the edge count measured in pass one.
func (n *NaiveTwoPass) M() int64 { return n.m }
