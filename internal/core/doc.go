// Package core implements the paper's contribution: the two-pass
// Õ(m/T^{2/3}) triangle estimator of Theorem 3.7 (with the lightest-edge
// rule computed through the stream-order proxy H_{e,τ}), the three-pass
// exact-T_e variant sketched in Section 2.1, the naive two-pass edge-sample
// estimator/distinguisher that motivates both, and the two-pass Õ(m/T^{3/8})
// 4-cycle estimator of Theorem 4.6, together with the Lemma 4.2 good-wedge
// analysis.
//
// All algorithms operate item-at-a-time in the adjacency list streaming
// model (see internal/stream) and charge a space meter for every word of
// state they retain, so measured space is honest.
//
// # Telemetry
//
// With the global registry of internal/telemetry enabled, the two-pass
// estimators export their space high-water mark, live words, sample-set
// occupancy, and candidate pair/wedge counts under "core.<estimator>.*"
// (e.g. core.twopass_triangle.space_words). Updates happen only at pass
// boundaries, and with telemetry disabled every handle is a nil no-op, so
// estimates and measured space are bit-identical either way — a property
// the root-level equality test pins down.
package core
