package core

import (
	"math"

	"adjstream/internal/graph"
)

// GoodWedgeStats reports the Definition 4.1 classification of a graph's
// 4-cycle structure: an edge is heavy if it lies in ≥ C·√T 4-cycles; a wedge
// is overused if it lies in ≥ C·T^{1/4} 4-cycles, heavy if it contains a
// heavy edge, bad if either, and good otherwise; a 4-cycle is good if it
// contains at least one good wedge. Lemma 4.2 proves |good cycles| = Ω(T)
// with C = 40; GoodFraction lets experiments verify that empirically.
type GoodWedgeStats struct {
	// T is the exact 4-cycle count.
	T int64
	// HeavyEdges is the number of edges in ≥ C√T cycles.
	HeavyEdges int
	// OverusedWedges is the number of wedges in ≥ C·T^{1/4} cycles.
	OverusedWedges int
	// BadWedges counts wedges that are overused or contain a heavy edge,
	// among wedges participating in at least one 4-cycle.
	BadWedges int
	// GoodCycles is the number of 4-cycles containing ≥ 1 good wedge.
	GoodCycles int64
}

// GoodFraction returns GoodCycles/T, or 1 when T = 0.
func (s GoodWedgeStats) GoodFraction() float64 {
	if s.T == 0 {
		return 1
	}
	return float64(s.GoodCycles) / float64(s.T)
}

// ClassifyFourCycles computes GoodWedgeStats for g with threshold constant c
// (the paper uses 40; smaller constants make the classification stricter).
// This is offline analysis over the exact loads, not a streaming algorithm;
// it exists to validate Lemma 4.2 on concrete workloads (ablation A3).
func ClassifyFourCycles(g *graph.Graph, c float64) GoodWedgeStats {
	st := GoodWedgeStats{T: g.FourCycles()}
	if st.T == 0 {
		return st
	}
	edgeHeavyThresh := c * math.Sqrt(float64(st.T))
	wedgeOverThresh := c * math.Pow(float64(st.T), 0.25)

	edgeLoads := g.FourCycleEdgeLoads()
	heavyEdge := make(map[graph.Edge]bool)
	for e, l := range edgeLoads {
		if float64(l) >= edgeHeavyThresh {
			heavyEdge[e] = true
			st.HeavyEdges++
		}
	}
	wedgeLoads := g.FourCycleWedgeLoads()
	badWedge := make(map[graph.Wedge]bool)
	for w, l := range wedgeLoads {
		over := float64(l) >= wedgeOverThresh
		heavy := heavyEdge[w.Edges()[0]] || heavyEdge[w.Edges()[1]]
		if over {
			st.OverusedWedges++
		}
		if over || heavy {
			badWedge[w] = true
			st.BadWedges++
		}
	}
	g.ForEachFourCycle(func(cy graph.FourCycle) {
		for _, w := range cy.Wedges() {
			if !badWedge[w] {
				st.GoodCycles++
				return
			}
		}
	})
	return st
}
