package core

import (
	"math"
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

func TestThreePassExactOnFullSample(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := gen.Complete(8)
		s := stream.Random(g, seed)
		alg, err := NewThreePassTriangle(TriangleConfig{SampleProb: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		if got := alg.Estimate(); got != float64(g.Triangles()) {
			t.Fatalf("seed %d: estimate = %v, want %d", seed, got, g.Triangles())
		}
		if alg.PairsCollected() != int(3*g.Triangles()) {
			t.Fatalf("collected %d pairs, want %d", alg.PairsCollected(), 3*g.Triangles())
		}
	}
}

func TestThreePassExactQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(13, 0.45, seed%256+1)
		if err != nil {
			return false
		}
		alg, err := NewThreePassTriangle(TriangleConfig{SampleProb: 1, Seed: 1})
		if err != nil {
			return false
		}
		stream.Run(stream.Random(g, seed), alg)
		return alg.Estimate() == float64(g.Triangles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThreePassUnbiasedUnderSubsampling(t *testing.T) {
	g, err := gen.PlantedTriangles(50, 20, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 2)
	var ests []float64
	for seed := uint64(0); seed < 250; seed++ {
		alg, err := NewThreePassTriangle(TriangleConfig{SampleProb: 0.4, Seed: seed*5 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean = %v, truth = %v", mean, truth)
	}
}

// The exact-load three-pass and the H-proxy two-pass must agree exactly
// under full sampling (both count each triangle once). This is the heart of
// ablation A2's sanity.
func TestThreeAndTwoPassAgreeOnFullSample(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g, err := gen.ErdosRenyi(16, 0.4, seed)
		if err != nil {
			t.Fatal(err)
		}
		s := stream.Random(g, seed)
		three, err := NewThreePassTriangle(TriangleConfig{SampleProb: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, three)
		two, err := NewTwoPassTriangle(exactCfg(g))
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, two)
		if three.Estimate() != two.Estimate() {
			t.Fatalf("seed %d: three-pass %v vs two-pass %v", seed, three.Estimate(), two.Estimate())
		}
	}
}

func TestThreePassBottomK(t *testing.T) {
	g := gen.DisjointTriangles(40)
	s := stream.Random(g, 1)
	alg, err := NewThreePassTriangle(TriangleConfig{SampleSize: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, alg)
	est := alg.Estimate()
	if est < 0 || math.IsNaN(est) {
		t.Fatalf("degenerate estimate %v", est)
	}
	if alg.M() != g.M() {
		t.Fatalf("M = %d, want %d", alg.M(), g.M())
	}
}

func TestNaiveTwoPassExactAtFullSample(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := gen.Complete(9)
		alg, err := NewNaiveTwoPass(TriangleConfig{SampleProb: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Random(g, seed), alg)
		if got := alg.Estimate(); got != float64(g.Triangles()) {
			t.Fatalf("estimate = %v, want %d", got, g.Triangles())
		}
		if alg.PairsDiscovered() != 3*g.Triangles() {
			t.Fatalf("pairs = %d, want %d", alg.PairsDiscovered(), 3*g.Triangles())
		}
		if !alg.Detected() {
			t.Fatal("Detected should be true")
		}
	}
}

func TestNaiveDistinguisher(t *testing.T) {
	// Triangle-free graph: never detects. T-triangle graph with the
	// paper's m′ = Θ(m/T^{2/3}): detects with good probability.
	free := gen.CompleteBipartite(20, 20)
	alg, err := NewNaiveTwoPass(TriangleConfig{SampleSize: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(free, 1), alg)
	if alg.Detected() {
		t.Fatal("detected a triangle in a triangle-free graph")
	}

	g := gen.DisjointTriangles(100) // m=300, T=100, m/T^{2/3} ≈ 14
	detects := 0
	const trials = 60
	for seed := uint64(0); seed < trials; seed++ {
		d, err := NewNaiveTwoPass(TriangleConfig{SampleSize: 60, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Random(g, 2), d)
		if d.Detected() {
			detects++
		}
	}
	if float64(detects)/trials < 0.9 {
		t.Fatalf("detected in only %d/%d trials", detects, trials)
	}
}

func TestNaiveUnbiasedUnderSubsampling(t *testing.T) {
	g, err := gen.PlantedTriangles(60, 20, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 3)
	var ests []float64
	for seed := uint64(0); seed < 250; seed++ {
		alg, err := NewNaiveTwoPass(TriangleConfig{SampleProb: 0.4, Seed: seed*7 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean = %v, truth = %v", mean, truth)
	}
}

// Ablation A1: on a heavy-edge (book) workload at equal space, the naive
// estimator's variance should exceed the lightest-edge estimator's.
func TestLightestEdgeBeatsNaiveVarianceOnBooks(t *testing.T) {
	g, err := gen.PlantedBooks(2, 150, 30, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 9)
	var naive, smart stats.Running
	for seed := uint64(0); seed < 120; seed++ {
		n, err := NewNaiveTwoPass(TriangleConfig{SampleProb: 0.12, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, n)
		naive.Add(n.Estimate() - truth)

		l, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.12, PairCap: 100000, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, l)
		smart.Add(l.Estimate() - truth)
	}
	nv := naive.Variance() + naive.Mean()*naive.Mean()
	sv := smart.Variance() + smart.Mean()*smart.Mean()
	if sv >= nv {
		t.Fatalf("lightest-edge MSE %v not better than naive MSE %v", sv, nv)
	}
}
