package core

import "adjstream/internal/graph"

// edgeRec is the tracked state of one sampled edge: its canonical endpoints,
// the list positions of its endpoints (filled during pass one; -1 while
// unknown), the position at which it entered the sample, and the two
// presence flags used for triangle detection within the current adjacency
// list ("flag any endpoint of a sampled edge if it appears").
type edgeRec struct {
	u, v       graph.V // canonical u < v
	posU, posV int     // list positions of u's and v's lists; -1 unknown
	posFirst   int     // position at which the edge entered the sample
	flagU      bool
	flagV      bool
	hits       int64 // discoveries credited to this edge (naive estimator)
	dead       bool  // evicted from a bottom-k sample
}

// pos returns the recorded list position of endpoint x (which must be u or
// v), or -1 if not yet seen.
func (r *edgeRec) pos(x graph.V) int {
	if x == r.u {
		return r.posU
	}
	return r.posV
}

// detector maintains the per-list presence flags for a set of tracked edges
// and reports, at the end of each adjacency list, the edges whose both
// endpoints appeared — i.e. the triangles (edge, apex=list owner). It uses
// O(1) state per tracked edge, never O(degree) transient state.
type detector struct {
	recs     map[graph.Edge]*edgeRec
	byVertex map[graph.V][]*edgeRec
	dirty    []*edgeRec
}

func newDetector() *detector {
	return &detector{
		recs:     make(map[graph.Edge]*edgeRec),
		byVertex: make(map[graph.V][]*edgeRec),
	}
}

// get returns the record for {u,v}, or nil.
func (d *detector) get(u, v graph.V) *edgeRec {
	return d.recs[graph.Edge{U: u, V: v}.Norm()]
}

// track registers the edge {owner,nbr} first seen in owner's list at
// position pos, indexing both endpoints for flag lookups.
func (d *detector) track(owner, nbr graph.V, pos int) *edgeRec {
	e := graph.Edge{U: owner, V: nbr}.Norm()
	r := &edgeRec{u: e.U, v: e.V, posU: -1, posV: -1, posFirst: pos}
	if owner == r.u {
		r.posU = pos
	} else {
		r.posV = pos
	}
	d.recs[e] = r
	d.byVertex[r.u] = append(d.byVertex[r.u], r)
	d.byVertex[r.v] = append(d.byVertex[r.v], r)
	return r
}

// notePos records that owner's adjacency list is at position pos, filling
// the endpoint positions of tracked edges incident to owner.
func (d *detector) notePos(owner graph.V, pos int) {
	for _, r := range d.byVertex[owner] {
		if r.dead {
			continue
		}
		if owner == r.u && r.posU < 0 {
			r.posU = pos
		} else if owner == r.v && r.posV < 0 {
			r.posV = pos
		}
	}
}

// flag marks the appearance of nbr inside the current adjacency list.
func (d *detector) flag(nbr graph.V) {
	for _, r := range d.byVertex[nbr] {
		if r.dead {
			continue
		}
		if !r.flagU && !r.flagV {
			d.dirty = append(d.dirty, r)
		}
		if nbr == r.u {
			r.flagU = true
		} else {
			r.flagV = true
		}
	}
}

// finishList invokes emit for every tracked edge both of whose endpoints
// appeared in the list that just ended (the list owner is a triangle apex
// for that edge), then clears all flags.
func (d *detector) finishList(emit func(r *edgeRec)) {
	for _, r := range d.dirty {
		if r.flagU && r.flagV && !r.dead {
			emit(r)
		}
		r.flagU, r.flagV = false, false
	}
	d.dirty = d.dirty[:0]
}

// markDead tombstones the record of e (bottom-k eviction). The record stays
// indexed but is skipped everywhere.
func (d *detector) markDead(e graph.Edge) *edgeRec {
	r := d.recs[e]
	if r != nil {
		r.dead = true
	}
	return r
}

// len returns the number of live tracked edges.
func (d *detector) len() int {
	n := 0
	for _, r := range d.recs {
		if !r.dead {
			n++
		}
	}
	return n
}

// watcher counts, during a designated pass, the adjacency lists whose owner
// is adjacent to both x and y and arrives at a position strictly greater
// than thresh — exactly the quantity H_{e',τ} when thresh is the position of
// τ's apex with respect to e' = {x,y} (or the exact triangle load T(e') when
// thresh is 0).
type watcher struct {
	x, y   graph.V
	thresh int
	// Deferred threshold: when the needed endpoint position is not yet
	// known at registration time, threshRec/threshAt identify it and the
	// threshold is resolved at the end of pass one.
	threshRec *edgeRec
	threshAt  graph.V
	flagX     bool
	flagY     bool
	count     int64
	dead      bool
}

// resolve fills a deferred threshold from the recorded endpoint position.
func (w *watcher) resolve() {
	if w.threshRec != nil {
		w.thresh = w.threshRec.pos(w.threshAt)
		w.threshRec = nil
	}
}

// watchSet is the flag engine for watchers, parallel to detector.
type watchSet struct {
	byVertex map[graph.V][]*watcher
	dirty    []*watcher
}

func newWatchSet() *watchSet {
	return &watchSet{byVertex: make(map[graph.V][]*watcher)}
}

// add registers w for flag lookups on both endpoints.
func (s *watchSet) add(w *watcher) {
	s.byVertex[w.x] = append(s.byVertex[w.x], w)
	s.byVertex[w.y] = append(s.byVertex[w.y], w)
}

// flag marks the appearance of nbr in the current list.
func (s *watchSet) flag(nbr graph.V) {
	for _, w := range s.byVertex[nbr] {
		if w.dead {
			continue
		}
		if !w.flagX && !w.flagY {
			s.dirty = append(s.dirty, w)
		}
		if nbr == w.x {
			w.flagX = true
		} else {
			w.flagY = true
		}
	}
}

// finishList increments every fully-flagged live watcher whose threshold is
// below the position of the list that just ended, then clears flags.
func (s *watchSet) finishList(pos int) {
	for _, w := range s.dirty {
		if w.flagX && w.flagY && !w.dead && pos > w.thresh {
			w.count++
		}
		w.flagX, w.flagY = false, false
	}
	s.dirty = s.dirty[:0]
}
