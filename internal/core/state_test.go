package core

// Fork/Snapshot/Restore round-trips for the core estimators: a restored
// copy answers the summary accessors exactly as the original did, and
// re-snapshotting it reproduces the original bytes, so snapshots survive
// any number of write/read/merge hops unchanged.

import (
	"bytes"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

func stateStream(t testing.TB) *stream.Stream {
	t.Helper()
	g, err := gen.ErdosRenyi(40, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Random(g, 3)
}

// checkStateRoundTrip runs orig over s, snapshots it, restores the snapshot
// into an unrun fork, and checks the fork answers and re-encodes exactly as
// the original.
func checkStateRoundTrip(t *testing.T, name string, orig stream.MergeableEstimator, s *stream.Stream) stream.CopyState {
	t.Helper()
	stream.Run(s, orig)
	snap := orig.Snapshot()
	st, err := stream.DecodeCopyState(snap)
	if err != nil {
		t.Fatalf("%s: decode own snapshot: %v", name, err)
	}
	if st.Estimate != orig.Estimate() || st.SpaceWords != orig.SpaceWords() || st.Passes != int64(orig.Passes()) {
		t.Errorf("%s: snapshot summary %+v diverges from live copy (est %v, space %d, passes %d)",
			name, st, orig.Estimate(), orig.SpaceWords(), orig.Passes())
	}
	fresh := orig.Fork(999)
	if fresh.Estimate() == orig.Estimate() && orig.Estimate() != 0 {
		t.Errorf("%s: fork carried run state (estimate %v)", name, fresh.Estimate())
	}
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	if fresh.Estimate() != orig.Estimate() || fresh.SpaceWords() != orig.SpaceWords() || fresh.Passes() != orig.Passes() {
		t.Errorf("%s: restored copy answers (est %v, space %d, passes %d), want (%v, %d, %d)",
			name, fresh.Estimate(), fresh.SpaceWords(), fresh.Passes(),
			orig.Estimate(), orig.SpaceWords(), orig.Passes())
	}
	if !bytes.Equal(fresh.Snapshot(), snap) {
		t.Errorf("%s: re-snapshot of restored copy is not byte-identical", name)
	}
	if err := fresh.Restore((&stream.CopyState{Algo: "not-" + name, Passes: 1}).Encode()); err == nil {
		t.Errorf("%s: restore accepted a foreign algorithm tag", name)
	}
	return st
}

// checkForkDeterminism checks Fork(seed) behaves exactly like constructing
// with that seed: the pair, run over the same stream, agree bit-for-bit.
func checkForkDeterminism(t *testing.T, name string, mk func(seed uint64) stream.MergeableEstimator, s *stream.Stream) {
	t.Helper()
	forked := mk(1).Fork(77)
	direct := mk(77)
	stream.Run(s, forked)
	stream.Run(s, direct)
	if forked.Estimate() != direct.Estimate() {
		t.Errorf("%s: Fork(77) estimate %v != constructed-with-77 estimate %v",
			name, forked.Estimate(), direct.Estimate())
	}
	if !bytes.Equal(forked.Snapshot(), direct.Snapshot()) {
		t.Errorf("%s: Fork(77) snapshot diverges from constructed-with-77", name)
	}
}

func TestTwoPassTriangleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.6, PairCap: 4096, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*TwoPassTriangle)
	checkStateRoundTrip(t, "twopass-triangle", orig, s)
	restored := orig.Fork(5).(*TwoPassTriangle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.PairsDiscovered() != orig.PairsDiscovered() {
		t.Errorf("restored M/pairs = %d/%d, want %d/%d",
			restored.M(), restored.PairsDiscovered(), orig.M(), orig.PairsDiscovered())
	}
	checkForkDeterminism(t, "twopass-triangle", mk, s)
}

func TestThreePassTriangleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewThreePassTriangle(TriangleConfig{SampleProb: 0.6, PairCap: 4096, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*ThreePassTriangle)
	checkStateRoundTrip(t, "threepass-triangle", orig, s)
	restored := orig.Fork(5).(*ThreePassTriangle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.PairsCollected() != orig.PairsCollected() {
		t.Errorf("restored M/pairs = %d/%d, want %d/%d",
			restored.M(), restored.PairsCollected(), orig.M(), orig.PairsCollected())
	}
	checkForkDeterminism(t, "threepass-triangle", mk, s)
}

func TestNaiveTwoPassState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewNaiveTwoPass(TriangleConfig{SampleProb: 0.6, PairCap: 4096, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*NaiveTwoPass)
	checkStateRoundTrip(t, "naive-twopass", orig, s)
	restored := orig.Fork(5).(*NaiveTwoPass)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() {
		t.Errorf("restored M = %d, want %d", restored.M(), orig.M())
	}
	checkForkDeterminism(t, "naive-twopass", mk, s)
}

func TestAdaptiveTwoPassTriangleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewAdaptiveTwoPassTriangle(AdaptiveConfig{InitialSample: 256, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*AdaptiveTwoPassTriangle)
	checkStateRoundTrip(t, "adaptive-triangle", orig, s)
	restored := orig.Fork(5).(*AdaptiveTwoPassTriangle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.FinalSample() != orig.FinalSample() {
		t.Errorf("restored M/final = %d/%d, want %d/%d",
			restored.M(), restored.FinalSample(), orig.M(), orig.FinalSample())
	}
	checkForkDeterminism(t, "adaptive-triangle", mk, s)
}

func TestTwoPassFourCycleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewTwoPassFourCycle(FourCycleConfig{SampleProb: 0.6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*TwoPassFourCycle)
	checkStateRoundTrip(t, "twopass-fourcycle", orig, s)
	restored := orig.Fork(5).(*TwoPassFourCycle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.WedgesFormed() != orig.WedgesFormed() ||
		restored.WedgesKept() != orig.WedgesKept() ||
		restored.CyclesThroughSampledWedges() != orig.CyclesThroughSampledWedges() {
		t.Errorf("restored wedge summary diverges from original")
	}
	checkForkDeterminism(t, "twopass-fourcycle", mk, s)
}
