package core_test

import (
	"fmt"

	"adjstream/internal/core"
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// ExampleTwoPassTriangle runs the Theorem 3.7 estimator with every edge
// sampled (SampleProb 1), where the estimate is exact: K4 has 4 triangles.
func ExampleTwoPassTriangle() {
	g := graph.MustFromEdges([]graph.Edge{
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	})
	est, err := core.NewTwoPassTriangle(core.TriangleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	stream.Run(stream.Sorted(g), est)
	fmt.Printf("passes=%d estimate=%.0f exact=%d\n", est.Passes(), est.Estimate(), g.Triangles())
	// Output:
	// passes=2 estimate=4 exact=4
}

// ExampleTwoPassFourCycle runs the Theorem 4.6 estimator with every edge
// sampled: K4 contains exactly 3 four-cycles.
func ExampleTwoPassFourCycle() {
	g := graph.MustFromEdges([]graph.Edge{
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	})
	est, err := core.NewTwoPassFourCycle(core.FourCycleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	stream.Run(stream.Sorted(g), est)
	fmt.Printf("passes=%d estimate=%.0f exact=%d\n", est.Passes(), est.Estimate(), g.FourCycles())
	// Output:
	// passes=2 estimate=3 exact=3
}
