package core

import (
	"adjstream/internal/space"
	"adjstream/internal/telemetry"
)

// Estimator telemetry. Handles are bound at construction (one atomic load
// when disabled) and updated at pass boundaries — never per item — so the
// estimators' Edge hot paths stay uninstrumented. All copies of an
// estimator type share the same handles: counters accumulate across copies,
// gauges show the most recent pass (the "what is occupancy right now" view
// of a live sweep), and the space high-water mark is the max over copies —
// directly comparable to the per-copy internal/space numbers, which remain
// exact per estimator via SpaceWords.
//
// Metric names, per estimator (e.g. core.twopass_triangle.*):
//
//	core.<name>.space_words       high-water — peak words across copies
//	core.<name>.space_words_live  gauge      — live words at last pass end
//	core.<name>.sampled_edges     gauge      — edge-sample occupancy
//	core.<name>.pairs_kept        gauge      — candidate pairs/wedges held
//	core.<name>.pairs_found       counter    — pairs/wedges discovered
type estTele struct {
	liveWords  *telemetry.Gauge
	occupancy  *telemetry.Gauge
	pairsKept  *telemetry.Gauge
	pairsFound *telemetry.Counter
}

// newEstTele binds the handle set for the named estimator and attaches the
// meter's high-water mirror; the zero value (telemetry disabled) is inert.
func newEstTele(name string, meter *space.Meter) estTele {
	r := telemetry.Global()
	if r == nil {
		return estTele{}
	}
	p := "core." + name + "."
	meter.Attach(r.HighWater(p + "space_words"))
	return estTele{
		liveWords:  r.Gauge(p + "space_words_live"),
		occupancy:  r.Gauge(p + "sampled_edges"),
		pairsKept:  r.Gauge(p + "pairs_kept"),
		pairsFound: r.Counter(p + "pairs_found"),
	}
}
