package core

import (
	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// ThreePassTriangle is the Section 2.1 three-pass algorithm: pass one
// samples edges, passes one and two collect every triangle on a sampled
// edge, and pass three computes the exact triangle loads T(e′) of all three
// edges of every collected triangle. A triangle is counted iff it was
// sampled at its exact lightest edge argmin_{e′∈τ} T(e′).
//
// Compared with TwoPassTriangle it trades one extra pass for exact loads
// (no H proxy) and stores the entire candidate set Q, whose size is
// (m′/m)·3T in expectation — the two problems the final algorithm fixes.
// It is retained as the Table 1 row-4 representative and for the A2
// ablation (H proxy versus exact T_e).
type ThreePassTriangle struct {
	cfg     TriangleConfig
	sampler sampling.EdgeSampler
	det     *detector
	watch   *watchSet
	pairs   []*trianglePair

	pass  int
	pos   int
	items int64
	m     int64
	meter space.Meter
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap      *stream.CopyState
	snapPairs int
}

var _ stream.Estimator = (*ThreePassTriangle)(nil)

// NewThreePassTriangle validates cfg and returns the estimator. PairCap is
// ignored: this variant deliberately stores all collected triangles.
func NewThreePassTriangle(cfg TriangleConfig) (*ThreePassTriangle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &ThreePassTriangle{cfg: cfg, det: newDetector(), watch: newWatchSet()}
	if cfg.SampleSize > 0 {
		t.sampler = sampling.NewBottomK(cfg.SampleSize, cfg.Seed, func(e graph.Edge) {
			if r := t.det.markDead(e); r != nil {
				t.meter.Release(space.WordsPerEdge + 2)
			}
		})
	} else {
		fp, err := sampling.NewFixedProb(cfg.SampleProb, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.sampler = fp
	}
	return t, nil
}

// Passes implements stream.Algorithm.
func (t *ThreePassTriangle) Passes() int { return 3 }

// StartPass implements stream.Algorithm.
func (t *ThreePassTriangle) StartPass(p int) {
	t.pass = p
	t.pos = 0
	t.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (t *ThreePassTriangle) StartList(owner graph.V) {
	t.pos++
	if t.pass == 0 {
		t.det.notePos(owner, t.pos)
	}
}

// Edge implements stream.Algorithm.
func (t *ThreePassTriangle) Edge(owner, nbr graph.V) {
	switch t.pass {
	case 0:
		t.items++
		if t.sampler.Offer(owner, nbr) && t.det.get(owner, nbr) == nil {
			t.det.track(owner, nbr, t.pos)
			t.meter.Charge(space.WordsPerEdge + 2)
		}
		t.det.flag(nbr)
	case 1:
		t.det.flag(nbr)
	case 2:
		t.watch.flag(nbr)
	}
}

// EndList implements stream.Algorithm.
func (t *ThreePassTriangle) EndList(owner graph.V) {
	switch t.pass {
	case 0:
		t.det.finishList(func(r *edgeRec) { t.collect(r, owner) })
	case 1:
		t.det.finishList(func(r *edgeRec) {
			if t.pos < r.posFirst {
				t.collect(r, owner)
			}
		})
	case 2:
		t.watch.finishList(t.pos)
	}
}

// EndPass implements stream.Algorithm.
func (t *ThreePassTriangle) EndPass(p int) {
	switch p {
	case 0:
		t.m = t.items / 2
	case 1:
		// Register an exact-load counter (threshold 0 counts every apex) for
		// each edge of each collected triangle, counted during pass three.
		for _, pr := range t.pairs {
			if pr.rec.dead {
				continue
			}
			pr.w[0] = &watcher{x: pr.rec.u, y: pr.rec.v}
			pr.w[1] = &watcher{x: pr.rec.u, y: pr.apex}
			pr.w[2] = &watcher{x: pr.rec.v, y: pr.apex}
			for _, w := range pr.w {
				t.watch.add(w)
			}
			t.meter.Charge(3 * space.WordsPerWatcher)
		}
	}
}

func (t *ThreePassTriangle) collect(r *edgeRec, apex graph.V) {
	t.pairs = append(t.pairs, &trianglePair{rec: r, apex: apex})
	t.meter.Charge(space.WordsPerTriangle)
}

// Estimate returns scale · |{(e,τ) collected : argmin_{e′∈τ} T(e′) = e}|.
func (t *ThreePassTriangle) Estimate() float64 {
	if t.snap != nil {
		return t.snap.Estimate
	}
	matched := 0
	for _, pr := range t.pairs {
		if pr.rec.dead || pr.w[0] == nil {
			continue
		}
		if pr.rho() {
			matched++
		}
	}
	return t.sampler.InclusionScale(t.m) * float64(matched)
}

// SpaceWords implements stream.Estimator.
func (t *ThreePassTriangle) SpaceWords() int64 {
	if t.snap != nil {
		return t.snap.SpaceWords
	}
	return t.meter.Peak()
}

// PairsCollected returns |Q|, the number of (edge, triangle) pairs stored.
func (t *ThreePassTriangle) PairsCollected() int {
	if t.snap != nil {
		return t.snapPairs
	}
	return len(t.pairs)
}

// M returns the edge count measured in pass one.
func (t *ThreePassTriangle) M() int64 { return t.m }
