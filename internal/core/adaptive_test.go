package core

import (
	"math"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

func TestAdaptiveConfigValidation(t *testing.T) {
	bad := []AdaptiveConfig{
		{},                                 // no initial sample
		{InitialSample: 10, MinSample: 20}, // min > initial
		{InitialSample: 10, C: -1},         // negative C
		{InitialSample: 10, PairCap: -1},   // negative cap
		{InitialSample: 10, MinSample: -3}, // negative min
	}
	for i, cfg := range bad {
		if _, err := NewAdaptiveTwoPassTriangle(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestAdaptiveShrinksTowardOracleBudget(t *testing.T) {
	// Dense triangles: the oracle budget C·m/T^{2/3} is far below the
	// initial capacity, so the run must shrink substantially.
	g, err := gen.PlantedTriangles(1000, 60, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 1)
	alg, err := NewAdaptiveTwoPassTriangle(AdaptiveConfig{InitialSample: int(g.M()), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, alg)
	oracle := 8 * float64(g.M()) / math.Pow(1000, 2.0/3.0)
	final := float64(alg.FinalSample())
	if final >= float64(g.M()) {
		t.Fatalf("no shrink happened: final = %v", final)
	}
	if final < oracle/6 || final > oracle*6 {
		t.Fatalf("final budget %v far from oracle %v", final, oracle)
	}
	if alg.M() != g.M() {
		t.Fatalf("M = %d", alg.M())
	}
}

func TestAdaptiveAccuracy(t *testing.T) {
	g, err := gen.PlantedTriangles(400, 40, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 2)
	var ests []float64
	for seed := uint64(0); seed < 60; seed++ {
		alg, err := NewAdaptiveTwoPassTriangle(AdaptiveConfig{InitialSample: int(g.M()), Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	mean := stats.Mean(ests)
	if math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("adaptive mean %v far from truth %v", mean, truth)
	}
	med := stats.Median(ests)
	if math.Abs(med-truth)/truth > 0.2 {
		t.Fatalf("adaptive median %v far from truth %v", med, truth)
	}
}

func TestAdaptiveSparseDoesNotOverShrink(t *testing.T) {
	// Few triangles: T̂ stays small, the target stays high, and the run
	// should keep (nearly) its initial capacity.
	g, err := gen.PlantedTriangles(2, 60, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewAdaptiveTwoPassTriangle(AdaptiveConfig{InitialSample: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 4), alg)
	if alg.FinalSample() < 900 {
		t.Fatalf("over-shrunk on sparse workload: final = %d", alg.FinalSample())
	}
}

func TestBottomKShrinkSemantics(t *testing.T) {
	g := gen.Complete(10)
	// Use adaptive machinery indirectly: shrinking must preserve exactness
	// when no shrink triggers (C enormous).
	alg, err := NewAdaptiveTwoPassTriangle(AdaptiveConfig{InitialSample: 1000, C: 1e9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 1), alg)
	if got := alg.Estimate(); got != float64(g.Triangles()) {
		t.Fatalf("estimate %v, want %d", got, g.Triangles())
	}
	if alg.FinalSample() != 1000 {
		t.Fatalf("unexpected shrink to %d", alg.FinalSample())
	}
}
