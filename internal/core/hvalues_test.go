package core

import (
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// referenceH computes H_{e,τ} from first principles: the number of
// triangles on e whose apex's adjacency list arrives strictly after τ's
// apex's list in the given stream.
func referenceH(g *graph.Graph, s *stream.Stream, e graph.Edge, apex graph.V) int64 {
	pos := make(map[graph.V]int)
	for i, v := range s.ListOrder() {
		pos[v] = i + 1
	}
	var h int64
	for _, w := range g.Neighbors(e.U) {
		if w == e.V {
			continue
		}
		if g.HasEdge(w, e.V) && pos[w] > pos[apex] {
			h++
		}
	}
	return h
}

// The two-pass algorithm's watcher counts must equal the definitionally
// computed H_{e,τ} for every collected pair and every edge of its triangle
// — the exact quantity Section 3 defines. Checked under full sampling so
// every (edge, triangle) pair is collected.
func TestWatcherCountsEqualDefinitionalH(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g, err := gen.ErdosRenyi(14, 0.45, seed)
		if err != nil {
			t.Fatal(err)
		}
		s := stream.Random(g, seed*31)
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 1, PairCap: 1 << 20, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		if alg.pairs.Offered() != 3*g.Triangles() {
			t.Fatalf("seed %d: %d pairs, want %d", seed, alg.pairs.Offered(), 3*g.Triangles())
		}
		for _, pr := range alg.pairs.Items() {
			u, v, a := pr.rec.u, pr.rec.v, pr.apex
			edges := [3]graph.Edge{
				{U: u, V: v},
				graph.Edge{U: u, V: a}.Norm(),
				graph.Edge{U: v, V: a}.Norm(),
			}
			apexes := [3]graph.V{a, v, u}
			for i := range edges {
				want := referenceH(g, s, edges[i], apexes[i])
				if got := pr.w[i].count; got != want {
					t.Fatalf("seed %d: pair (%v, apex %d): H[%v] = %d, want %d",
						seed, edges[i], a, edges[i], got, want)
				}
			}
		}
	}
}

// Property form of the same check on smaller inputs.
func TestWatcherCountsEqualDefinitionalHQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(10, 0.5, seed%256+1)
		if err != nil {
			return false
		}
		s := stream.Random(g, seed)
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 1, PairCap: 1 << 20, Seed: 1})
		if err != nil {
			return false
		}
		stream.Run(s, alg)
		for _, pr := range alg.pairs.Items() {
			u, v, a := pr.rec.u, pr.rec.v, pr.apex
			edges := [3]graph.Edge{
				{U: u, V: v},
				graph.Edge{U: u, V: a}.Norm(),
				graph.Edge{U: v, V: a}.Norm(),
			}
			apexes := [3]graph.V{a, v, u}
			for i := range edges {
				if pr.w[i].count != referenceH(g, s, edges[i], apexes[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A hand-built order with known H values: path-of-triangles sharing edge
// loads, list order fixed so H is computable by hand.
func TestHValuesHandExample(t *testing.T) {
	// Book with 3 pages: spine {0,1}, apexes 2,3,4. List order 0,1,2,3,4.
	g := gen.Book(3)
	s := stream.Sorted(g)
	alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 1, PairCap: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, alg)
	// For the spine {0,1} and triangle with apex 2 (position 3): apexes 3
	// and 4 arrive later → H = 2. Apex 3 → H = 1. Apex 4 → H = 0.
	wantSpine := map[graph.V]int64{2: 2, 3: 1, 4: 0}
	found := 0
	for _, pr := range alg.pairs.Items() {
		if pr.rec.u == 0 && pr.rec.v == 1 {
			if got := pr.w[0].count; got != wantSpine[pr.apex] {
				t.Fatalf("spine H for apex %d = %d, want %d", pr.apex, got, wantSpine[pr.apex])
			}
			found++
		}
	}
	if found != 3 {
		t.Fatalf("found %d spine pairs, want 3", found)
	}
	// ρ must pick a side edge (H = 0 there, spine ties only at apex 4);
	// the estimate is exact regardless.
	if alg.Estimate() != 3 {
		t.Fatalf("estimate = %v", alg.Estimate())
	}
}
