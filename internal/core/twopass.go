package core

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// TriangleConfig parameterizes the two- and three-pass triangle estimators.
type TriangleConfig struct {
	// SampleSize m′ selects bottom-k edge sampling with a uniform size-m′
	// sample. Exactly one of SampleSize / SampleProb must be set.
	SampleSize int
	// SampleProb selects independent per-edge sampling with this inclusion
	// probability (decided by a seeded hash). Cleaner estimator; the space
	// is then m·p in expectation rather than exactly m′.
	SampleProb float64
	// PairCap bounds the candidate set Q of (edge, triangle) pairs kept via
	// reservoir sampling — the paper's second fix in Section 2.1. Zero
	// defaults to SampleSize (or 4096 under SampleProb).
	PairCap int
	// Seed drives all sampling decisions deterministically.
	Seed uint64
}

func (c TriangleConfig) validate() error {
	hasSize := c.SampleSize > 0
	hasProb := c.SampleProb > 0
	if hasSize == hasProb {
		return fmt.Errorf("core: exactly one of SampleSize and SampleProb must be set (size=%d prob=%v)", c.SampleSize, c.SampleProb)
	}
	if hasProb && c.SampleProb > 1 {
		return fmt.Errorf("core: SampleProb %v > 1", c.SampleProb)
	}
	if c.PairCap < 0 {
		return fmt.Errorf("core: negative PairCap %d", c.PairCap)
	}
	return nil
}

func (c TriangleConfig) pairCap() int {
	if c.PairCap > 0 {
		return c.PairCap
	}
	if c.SampleSize > 0 {
		return c.SampleSize
	}
	return 4096
}

// trianglePair is a collected (sampled edge, triangle) pair with the three
// H_{e′,τ} watchers of its triangle (index 0 is the sampled edge itself,
// 1 is {u,apex}, 2 is {v,apex}).
type trianglePair struct {
	rec  *edgeRec
	apex graph.V
	w    [3]*watcher
}

// TwoPassTriangle is the paper's main algorithm (Theorem 3.7): a two-pass
// (1±ε) triangle estimator using Õ(m/T^{2/3}) space. Pass one samples edges
// (hash-based, so membership is decided at an edge's first appearance) and
// starts collecting the triangles on sampled edges; pass two completes the
// collection (apexes that arrived before the edge entered the sample) and
// computes, for every collected triangle and each of its three edges, the
// count H_{e′,τ} of later-apex triangles on e′. A collected triangle is
// counted iff it was sampled at its ρ(τ) = argmin H edge, which suppresses
// the heavy-edge variance while keeping the estimator unbiased.
type TwoPassTriangle struct {
	cfg     TriangleConfig
	sampler sampling.EdgeSampler
	det     *detector
	watch   *watchSet
	pairs   *sampling.Reservoir[*trianglePair]

	pass   int
	pos    int   // current adjacency-list position (1-based)
	items  int64 // items seen in pass one; m = items/2
	m      int64
	meter  space.Meter
	tele   estTele
	inList bool
	cur    stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap      *stream.CopyState
	snapPairs int64
}

var _ stream.Estimator = (*TwoPassTriangle)(nil)

// NewTwoPassTriangle validates cfg and returns the estimator.
func NewTwoPassTriangle(cfg TriangleConfig) (*TwoPassTriangle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &TwoPassTriangle{cfg: cfg, det: newDetector(), watch: newWatchSet()}
	if cfg.SampleSize > 0 {
		t.sampler = sampling.NewBottomK(cfg.SampleSize, cfg.Seed, func(e graph.Edge) {
			if r := t.det.markDead(e); r != nil {
				t.meter.Release(space.WordsPerEdge + 2)
			}
		})
	} else {
		fp, err := sampling.NewFixedProb(cfg.SampleProb, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.sampler = fp
	}
	t.pairs = sampling.NewReservoir[*trianglePair](cfg.pairCap(), cfg.Seed^0x5bf0_3635)
	t.tele = newEstTele("twopass_triangle", &t.meter)
	return t, nil
}

// Passes implements stream.Algorithm.
func (t *TwoPassTriangle) Passes() int { return 2 }

// StartPass implements stream.Algorithm.
func (t *TwoPassTriangle) StartPass(p int) {
	t.pass = p
	t.pos = 0
	t.inList = false
	t.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (t *TwoPassTriangle) StartList(owner graph.V) {
	t.pos++
	t.inList = true
	if t.pass == 0 {
		t.det.notePos(owner, t.pos)
	}
}

// Edge implements stream.Algorithm.
func (t *TwoPassTriangle) Edge(owner, nbr graph.V) {
	if t.pass == 0 {
		t.items++
		if t.sampler.Offer(owner, nbr) && t.det.get(owner, nbr) == nil {
			// True first appearance of a sampled edge: start tracking.
			t.det.track(owner, nbr, t.pos)
			t.meter.Charge(space.WordsPerEdge + 2)
		}
	}
	t.det.flag(nbr)
	if t.pass == 1 {
		t.watch.flag(nbr)
	}
}

// EndList implements stream.Algorithm.
func (t *TwoPassTriangle) EndList(owner graph.V) {
	if t.pass == 1 {
		t.watch.finishList(t.pos)
	}
	t.det.finishList(func(r *edgeRec) {
		// r's both endpoints appeared in owner's list: triangle (r, owner).
		// Pass one discovers apexes arriving after the edge entered the
		// sample; pass two is restricted to the complementary prefix so
		// each (edge, triangle) pair is discovered exactly once.
		if t.pass == 0 || t.pos < r.posFirst {
			t.addPair(r, owner)
		}
	})
	t.inList = false
}

// EndPass implements stream.Algorithm.
func (t *TwoPassTriangle) EndPass(p int) {
	t.tele.occupancy.Set(int64(t.det.len()))
	t.tele.pairsKept.Set(int64(t.pairs.Len()))
	t.tele.liveWords.Set(t.meter.Live())
	if p != 0 {
		t.tele.pairsFound.Add(t.pairs.Offered())
		return
	}
	t.m = t.items / 2
	// All endpoint positions are known now; resolve deferred thresholds and
	// tombstone watchers of pairs whose edge was evicted during pass one.
	for _, pr := range t.pairs.Items() {
		for _, w := range pr.w {
			if pr.rec.dead {
				w.dead = true
				continue
			}
			w.resolve()
		}
	}
}

// addPair records a discovered (edge, triangle) pair: counts it toward the
// pair total and offers it to the reservoir Q, registering its three
// H watchers only if retained.
func (t *TwoPassTriangle) addPair(r *edgeRec, apex graph.V) {
	pr := &trianglePair{rec: r, apex: apex}
	victim, evicted, accepted := t.pairs.Offer(pr)
	if evicted {
		for _, w := range victim.w {
			w.dead = true
		}
		t.meter.Release(space.WordsPerTriangle + 3*space.WordsPerWatcher)
	}
	if !accepted {
		return
	}
	pr.w[0] = &watcher{x: r.u, y: r.v, thresh: t.pos}
	pr.w[1] = &watcher{x: r.u, y: apex, threshRec: r, threshAt: r.v, thresh: -1}
	pr.w[2] = &watcher{x: r.v, y: apex, threshRec: r, threshAt: r.u, thresh: -1}
	if t.pass == 1 {
		// Both endpoint positions are known after pass one.
		pr.w[1].resolve()
		pr.w[2].resolve()
	}
	for _, w := range pr.w {
		t.watch.add(w)
	}
	t.meter.Charge(space.WordsPerTriangle + 3*space.WordsPerWatcher)
}

// rho reports whether the pair's triangle has its argmin-H edge equal to the
// sampled edge, with ties broken toward the lexicographically smallest edge
// (an intrinsic, sample-independent tie break).
func (pr *trianglePair) rho() bool {
	sampled := graph.Edge{U: pr.rec.u, V: pr.rec.v}
	best := sampled
	bestH := pr.w[0].count
	for i, other := range [2]graph.Edge{
		graph.Edge{U: pr.rec.u, V: pr.apex}.Norm(),
		graph.Edge{U: pr.rec.v, V: pr.apex}.Norm(),
	} {
		h := pr.w[i+1].count
		if h < bestH || (h == bestH && edgeLess(other, best)) {
			best, bestH = other, h
		}
	}
	return best == sampled
}

func edgeLess(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// Estimate returns the triangle estimate
//
//	T̂ = scale · (N/|Q|) · |{(e,τ) ∈ Q : ρ(τ) = e}|
//
// where scale = 1/Pr[e ∈ S] and N is the total number of discovered pairs.
func (t *TwoPassTriangle) Estimate() float64 {
	if t.snap != nil {
		return t.snap.Estimate
	}
	q := t.pairs.Len()
	if q == 0 {
		return 0
	}
	matched := 0
	for _, pr := range t.pairs.Items() {
		if pr.rec.dead {
			continue
		}
		if pr.rho() {
			matched++
		}
	}
	scale := t.sampler.InclusionScale(t.m)
	dilution := float64(t.pairs.Offered()) / float64(q)
	return scale * dilution * float64(matched)
}

// SpaceWords implements stream.Estimator.
func (t *TwoPassTriangle) SpaceWords() int64 {
	if t.snap != nil {
		return t.snap.SpaceWords
	}
	return t.meter.Peak()
}

// SampledEdges returns the current number of live sampled edges (for space
// diagnostics and tests).
func (t *TwoPassTriangle) SampledEdges() int { return t.det.len() }

// SampledTriangles returns the triangles of the ρ-matched pairs. Because a
// triangle enters this set exactly when its unique ρ(τ) edge is sampled
// (and survives the pair reservoir), the returned set is a uniformly random
// subset of the graph's triangles — the streaming triangle-sampling
// primitive of Pavan et al. for free, as a by-product of the lightest-edge
// rule. Valid after both passes.
func (t *TwoPassTriangle) SampledTriangles() []graph.Triangle {
	var out []graph.Triangle
	for _, pr := range t.pairs.Items() {
		if pr.rec.dead || !pr.rho() {
			continue
		}
		out = append(out, sortedTriangle(pr.rec.u, pr.rec.v, pr.apex))
	}
	return out
}

func sortedTriangle(a, b, c graph.V) graph.Triangle {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return graph.Triangle{A: a, B: b, C: c}
}

// PairsDiscovered returns N, the total number of (edge, triangle) pairs
// found across both passes (including pairs for edges later evicted).
func (t *TwoPassTriangle) PairsDiscovered() int64 {
	if t.snap != nil {
		return t.snapPairs
	}
	return t.pairs.Offered()
}

// M returns the edge count measured in pass one.
func (t *TwoPassTriangle) M() int64 { return t.m }
