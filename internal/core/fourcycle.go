package core

import (
	"fmt"
	"sort"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// FourCycleConfig parameterizes the two-pass 4-cycle estimator.
type FourCycleConfig struct {
	// SampleSize m′ selects bottom-k edge sampling. Exactly one of
	// SampleSize / SampleProb must be set.
	SampleSize int
	// SampleProb selects independent per-edge hash sampling.
	SampleProb float64
	// WedgeCap optionally bounds the wedge set Q by reservoir sampling
	// (0 = keep every wedge formed inside the sample, as in the paper).
	WedgeCap int
	// Seed drives all sampling decisions deterministically.
	Seed uint64
}

func (c FourCycleConfig) validate() error {
	hasSize := c.SampleSize > 0
	hasProb := c.SampleProb > 0
	if hasSize == hasProb {
		return fmt.Errorf("core: exactly one of SampleSize and SampleProb must be set (size=%d prob=%v)", c.SampleSize, c.SampleProb)
	}
	if hasProb && c.SampleProb > 1 {
		return fmt.Errorf("core: SampleProb %v > 1", c.SampleProb)
	}
	if c.WedgeCap < 0 {
		return fmt.Errorf("core: negative WedgeCap %d", c.WedgeCap)
	}
	return nil
}

// sampledWedge is one wedge a–center–b formed by two sampled edges, with the
// flag state for counting the 4-cycles that contain it in pass two.
type sampledWedge struct {
	a, center, b graph.V
	flagA, flagB bool
	count        int64 // T_w: 4-cycles through this wedge
}

// TwoPassFourCycle is the paper's Theorem 4.6 algorithm: pass one samples a
// set S of edges; the wedge set Q consists of the wedges formed by pairs of
// sampled edges sharing an endpoint; pass two counts, for each wedge w ∈ Q,
// the exact number T_w of 4-cycles containing it (every list owner adjacent
// to both wedge endpoints, other than the center, closes one). The estimate
// Σ T_w / (4·Pr[both wedge edges sampled]) is an O(1)-factor approximation:
// Lemma 4.2 guarantees a constant fraction of 4-cycles contain a "good"
// wedge, which bounds the variance, while each cycle has exactly four
// wedges, which centers the estimator.
//
// Unlike the triangle algorithm, pass two need not replay pass one's order.
type TwoPassFourCycle struct {
	cfg     FourCycleConfig
	sampler sampling.EdgeSampler

	wedges      []*sampledWedge
	byVertex    map[graph.V][]*sampledWedge
	dirty       []*sampledWedge
	totalWedges int64 // wedges formed (before any cap)

	pass  int
	items int64
	m     int64
	meter space.Meter
	tele  estTele
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap       *stream.CopyState
	snapKept   int
	snapCycles int64
}

var _ stream.Estimator = (*TwoPassFourCycle)(nil)

// NewTwoPassFourCycle validates cfg and returns the estimator.
func NewTwoPassFourCycle(cfg FourCycleConfig) (*TwoPassFourCycle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &TwoPassFourCycle{cfg: cfg, byVertex: make(map[graph.V][]*sampledWedge)}
	if cfg.SampleSize > 0 {
		f.sampler = sampling.NewBottomK(cfg.SampleSize, cfg.Seed, nil)
	} else {
		fp, err := sampling.NewFixedProb(cfg.SampleProb, cfg.Seed)
		if err != nil {
			return nil, err
		}
		f.sampler = fp
	}
	f.tele = newEstTele("twopass_fourcycle", &f.meter)
	return f, nil
}

// Passes implements stream.Algorithm.
func (f *TwoPassFourCycle) Passes() int { return 2 }

// StartPass implements stream.Algorithm.
func (f *TwoPassFourCycle) StartPass(p int) {
	f.pass = p
	f.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (f *TwoPassFourCycle) StartList(owner graph.V) {}

// Edge implements stream.Algorithm.
func (f *TwoPassFourCycle) Edge(owner, nbr graph.V) {
	switch f.pass {
	case 0:
		f.items++
		f.sampler.Offer(owner, nbr)
	case 1:
		for _, w := range f.byVertex[nbr] {
			if !w.flagA && !w.flagB {
				f.dirty = append(f.dirty, w)
			}
			if nbr == w.a {
				w.flagA = true
			}
			if nbr == w.b {
				w.flagB = true
			}
		}
	}
}

// EndList implements stream.Algorithm.
func (f *TwoPassFourCycle) EndList(owner graph.V) {
	if f.pass != 1 {
		return
	}
	for _, w := range f.dirty {
		// owner adjacent to both wedge endpoints closes a 4-cycle, unless
		// owner is the wedge's own center.
		if w.flagA && w.flagB && owner != w.center {
			w.count++
		}
		w.flagA, w.flagB = false, false
	}
	f.dirty = f.dirty[:0]
}

// EndPass implements stream.Algorithm.
func (f *TwoPassFourCycle) EndPass(p int) {
	if p != 0 {
		f.tele.liveWords.Set(f.meter.Live())
		return
	}
	f.m = f.items / 2
	f.meter.Charge(int64(f.sampler.Len()) * space.WordsPerEdge)
	f.buildWedges()
	f.tele.occupancy.Set(int64(f.sampler.Len()))
	f.tele.pairsKept.Set(int64(len(f.wedges)))
	f.tele.pairsFound.Add(f.totalWedges)
	f.tele.liveWords.Set(f.meter.Live())
}

// buildWedges forms Q, the wedges inside the final edge sample.
func (f *TwoPassFourCycle) buildWedges() {
	incident := make(map[graph.V][]graph.V)
	for _, e := range f.sampledEdges() {
		incident[e.U] = append(incident[e.U], e.V)
		incident[e.V] = append(incident[e.V], e.U)
	}
	var res *sampling.Reservoir[*sampledWedge]
	if f.cfg.WedgeCap > 0 {
		res = sampling.NewReservoir[*sampledWedge](f.cfg.WedgeCap, f.cfg.Seed^0x77ed_21f3)
	}
	// Deterministic center order for reproducibility.
	centers := make([]graph.V, 0, len(incident))
	for c := range incident {
		centers = append(centers, c)
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })
	for _, c := range centers {
		ns := incident[c]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				f.totalWedges++
				w := &sampledWedge{a: ns[i], center: c, b: ns[j]}
				if res == nil {
					f.keepWedge(w)
					continue
				}
				if victim, evicted, accepted := res.Offer(w); accepted {
					if evicted {
						f.dropWedge(victim)
					}
					f.keepWedge(w)
				}
			}
		}
	}
}

func (f *TwoPassFourCycle) keepWedge(w *sampledWedge) {
	f.wedges = append(f.wedges, w)
	f.byVertex[w.a] = append(f.byVertex[w.a], w)
	f.byVertex[w.b] = append(f.byVertex[w.b], w)
	f.meter.Charge(space.WordsPerWedge + space.WordsPerCounter)
}

func (f *TwoPassFourCycle) dropWedge(w *sampledWedge) {
	// Lazy removal: mark by zeroing; dropped wedges are filtered at
	// Estimate time and skipped by making them unreachable from wedges.
	for i, x := range f.wedges {
		if x == w {
			f.wedges[i] = f.wedges[len(f.wedges)-1]
			f.wedges = f.wedges[:len(f.wedges)-1]
			break
		}
	}
	w.count = -1 << 62 // poison so byVertex leftovers cannot contribute
	f.meter.Release(space.WordsPerWedge + space.WordsPerCounter)
}

func (f *TwoPassFourCycle) sampledEdges() []graph.Edge {
	switch s := f.sampler.(type) {
	case *sampling.BottomK:
		return s.Edges()
	case *sampling.FixedProb:
		return s.Edges()
	default:
		return nil
	}
}

// Estimate returns Σ_{w∈Q} T_w · dilution / (4·p₂), where p₂ is the
// probability both edges of a wedge are sampled and dilution corrects for a
// WedgeCap reservoir. Each 4-cycle has exactly four wedges, hence the 1/4.
func (f *TwoPassFourCycle) Estimate() float64 {
	if f.snap != nil {
		return f.snap.Estimate
	}
	var sum int64
	for _, w := range f.wedges {
		if w.count > 0 {
			sum += w.count
		}
	}
	p2 := f.pairInclusionProb()
	if p2 <= 0 {
		return 0
	}
	dilution := 1.0
	if f.cfg.WedgeCap > 0 && f.totalWedges > int64(len(f.wedges)) && len(f.wedges) > 0 {
		dilution = float64(f.totalWedges) / float64(len(f.wedges))
	}
	return float64(sum) * dilution / (4 * p2)
}

// pairInclusionProb returns Pr[both edges of a fixed wedge are in S].
func (f *TwoPassFourCycle) pairInclusionProb() float64 {
	switch s := f.sampler.(type) {
	case *sampling.BottomK:
		if f.m < 2 {
			return 1
		}
		sz := int64(f.cfg.SampleSize)
		if f.m < sz {
			sz = f.m
		}
		return float64(sz) * float64(sz-1) / (float64(f.m) * float64(f.m-1))
	case *sampling.FixedProb:
		return s.P() * s.P()
	default:
		return 0
	}
}

// SpaceWords implements stream.Estimator.
func (f *TwoPassFourCycle) SpaceWords() int64 {
	if f.snap != nil {
		return f.snap.SpaceWords
	}
	return f.meter.Peak()
}

// WedgesFormed returns the total number of wedges formed inside the sample
// (before any cap).
func (f *TwoPassFourCycle) WedgesFormed() int64 { return f.totalWedges }

// WedgesKept returns |Q| after any cap.
func (f *TwoPassFourCycle) WedgesKept() int {
	if f.snap != nil {
		return f.snapKept
	}
	return len(f.wedges)
}

// CyclesThroughSampledWedges returns Σ_{w∈Q} T_w, the raw pass-two count.
func (f *TwoPassFourCycle) CyclesThroughSampledWedges() int64 {
	if f.snap != nil {
		return f.snapCycles
	}
	var sum int64
	for _, w := range f.wedges {
		if w.count > 0 {
			sum += w.count
		}
	}
	return sum
}

// M returns the edge count measured in pass one.
func (f *TwoPassFourCycle) M() int64 { return f.m }
