package core

import (
	"encoding/binary"
	"fmt"

	"adjstream/internal/stream"
)

// Mergeable/serializable state for the core estimators (stream.Snapshotter
// + Fork; see internal/stream/state.go for the contract). Snapshots are
// completed-run summaries: estimate, space, passes and m, plus the extras
// each algorithm's documented accessors need after a Restore. Mid-pass
// reservoir and watcher state is deliberately not serialized — a merge only
// ever reads completed copies.
//
// Extra payloads (fixed 64-bit little-endian fields, in order):
//
//	twopass-triangle   pairs discovered (N)
//	threepass-triangle pairs collected (|Q|)
//	naive-twopass      detections (N)
//	adaptive-triangle  final sample capacity
//	twopass-fourcycle  wedges formed, wedges kept, Σ T_w

var (
	_ stream.MergeableEstimator = (*TwoPassTriangle)(nil)
	_ stream.MergeableEstimator = (*ThreePassTriangle)(nil)
	_ stream.MergeableEstimator = (*NaiveTwoPass)(nil)
	_ stream.MergeableEstimator = (*AdaptiveTwoPassTriangle)(nil)
	_ stream.MergeableEstimator = (*TwoPassFourCycle)(nil)
)

// appendI64 / readI64 are the Extra field codec.
func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func readI64(b []byte, n int) ([]int64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("core: extra payload is %d bytes, want %d", len(b), 8*n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Fork implements stream.MergeableEstimator: a fresh copy with the same
// configuration, reseeded.
func (t *TwoPassTriangle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := t.cfg
	cfg.Seed = seed
	nt, err := NewTwoPassTriangle(cfg)
	if err != nil {
		panic("core: Fork from validated config: " + err.Error())
	}
	return nt
}

// Snapshot implements stream.Snapshotter.
func (t *TwoPassTriangle) Snapshot() []byte {
	return stream.SnapshotOf("twopass-triangle", t, t.M(), appendI64(nil, t.PairsDiscovered()))
}

// Restore implements stream.Snapshotter. The restored copy answers
// Estimate/SpaceWords/M/PairsDiscovered as the original did; the sampled
// edge and triangle sets are not reconstructed (SampledEdges reports 0,
// SampledTriangles is empty).
func (t *TwoPassTriangle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "twopass-triangle")
	if err != nil {
		return err
	}
	xs, err := readI64(st.Extra, 1)
	if err != nil {
		return err
	}
	t.m = st.M
	t.snapPairs = xs[0]
	t.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (t *ThreePassTriangle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := t.cfg
	cfg.Seed = seed
	nt, err := NewThreePassTriangle(cfg)
	if err != nil {
		panic("core: Fork from validated config: " + err.Error())
	}
	return nt
}

// Snapshot implements stream.Snapshotter.
func (t *ThreePassTriangle) Snapshot() []byte {
	return stream.SnapshotOf("threepass-triangle", t, t.M(), appendI64(nil, int64(t.PairsCollected())))
}

// Restore implements stream.Snapshotter.
func (t *ThreePassTriangle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "threepass-triangle")
	if err != nil {
		return err
	}
	xs, err := readI64(st.Extra, 1)
	if err != nil {
		return err
	}
	t.m = st.M
	t.snapPairs = int(xs[0])
	t.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (n *NaiveTwoPass) Fork(seed uint64) stream.MergeableEstimator {
	cfg := n.cfg
	cfg.Seed = seed
	nn, err := NewNaiveTwoPass(cfg)
	if err != nil {
		panic("core: Fork from validated config: " + err.Error())
	}
	return nn
}

// Snapshot implements stream.Snapshotter.
func (n *NaiveTwoPass) Snapshot() []byte {
	return stream.SnapshotOf("naive-twopass", n, n.M(), appendI64(nil, n.found))
}

// Restore implements stream.Snapshotter. found is restored for real, so
// Detected and PairsDiscovered keep answering.
func (n *NaiveTwoPass) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "naive-twopass")
	if err != nil {
		return err
	}
	xs, err := readI64(st.Extra, 1)
	if err != nil {
		return err
	}
	n.m = st.M
	n.found = xs[0]
	n.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (a *AdaptiveTwoPassTriangle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := a.cfg // already defaulted by the constructor
	cfg.Seed = seed
	na, err := NewAdaptiveTwoPassTriangle(cfg)
	if err != nil {
		panic("core: Fork from validated config: " + err.Error())
	}
	return na
}

// Snapshot implements stream.Snapshotter.
func (a *AdaptiveTwoPassTriangle) Snapshot() []byte {
	return stream.SnapshotOf("adaptive-triangle", a, a.M(), appendI64(nil, int64(a.FinalSample())))
}

// Restore implements stream.Snapshotter.
func (a *AdaptiveTwoPassTriangle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "adaptive-triangle")
	if err != nil {
		return err
	}
	xs, err := readI64(st.Extra, 1)
	if err != nil {
		return err
	}
	a.inner.m = st.M
	a.snapFinal = int(xs[0])
	a.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (f *TwoPassFourCycle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := f.cfg
	cfg.Seed = seed
	nf, err := NewTwoPassFourCycle(cfg)
	if err != nil {
		panic("core: Fork from validated config: " + err.Error())
	}
	return nf
}

// Snapshot implements stream.Snapshotter.
func (f *TwoPassFourCycle) Snapshot() []byte {
	extra := appendI64(nil, f.WedgesFormed())
	extra = appendI64(extra, int64(f.WedgesKept()))
	extra = appendI64(extra, f.CyclesThroughSampledWedges())
	return stream.SnapshotOf("twopass-fourcycle", f, f.M(), extra)
}

// Restore implements stream.Snapshotter.
func (f *TwoPassFourCycle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "twopass-fourcycle")
	if err != nil {
		return err
	}
	xs, err := readI64(st.Extra, 3)
	if err != nil {
		return err
	}
	f.m = st.M
	f.totalWedges = xs[0]
	f.snapKept = int(xs[1])
	f.snapCycles = xs[2]
	f.snap = st
	return nil
}
