package core

import (
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

func TestSampledTrianglesFullSampleIsAll(t *testing.T) {
	g := gen.Complete(7) // T = 35
	alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 1, PairCap: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 2), alg)
	got := alg.SampledTriangles()
	if int64(len(got)) != g.Triangles() {
		t.Fatalf("sampled %d triangles, want all %d", len(got), g.Triangles())
	}
	seen := map[graph.Triangle]bool{}
	for _, tr := range got {
		if seen[tr] {
			t.Fatalf("triangle %+v returned twice", tr)
		}
		seen[tr] = true
		if !g.HasEdge(tr.A, tr.B) || !g.HasEdge(tr.B, tr.C) || !g.HasEdge(tr.A, tr.C) {
			t.Fatalf("non-triangle %+v", tr)
		}
	}
}

// Uniformity: under subsampling, each triangle appears with (approximately)
// equal frequency — the triangle-sampling primitive.
func TestSampledTrianglesUniform(t *testing.T) {
	g := gen.DisjointTriangles(12)
	s := stream.Random(g, 5)
	freq := map[graph.Triangle]int{}
	const trials = 600
	var total int
	for seed := uint64(0); seed < trials; seed++ {
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.5, PairCap: 1000, Seed: seed*7 + 3})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		for _, tr := range alg.SampledTriangles() {
			freq[tr]++
			total++
		}
	}
	if len(freq) != 12 {
		t.Fatalf("only %d distinct triangles sampled", len(freq))
	}
	want := float64(total) / 12
	for tr, c := range freq {
		if float64(c) < 0.6*want || float64(c) > 1.4*want {
			t.Fatalf("triangle %+v sampled %d times, expected ≈%.0f", tr, c, want)
		}
	}
}

func TestLocalFourCyclesSumTo4T(t *testing.T) {
	g := gen.CompleteBipartite(4, 5)
	var sum int64
	for _, c := range g.LocalFourCycles() {
		sum += c
	}
	if sum != 4*g.FourCycles() {
		t.Fatalf("Σ local C4 = %d, want %d", sum, 4*g.FourCycles())
	}
}
