package core

import (
	"math"
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// exactCfg samples every edge and keeps every pair, so the estimator must
// return exactly T: every triangle is discovered at all three of its edges
// and counted at exactly one (its ρ edge).
func exactCfg(g *graph.Graph) TriangleConfig {
	cap := int(3*g.Triangles()) + 10
	return TriangleConfig{SampleProb: 1, PairCap: cap, Seed: 1}
}

func runTwoPass(t *testing.T, s *stream.Stream, cfg TriangleConfig) *TwoPassTriangle {
	t.Helper()
	alg, err := NewTwoPassTriangle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, alg)
	return alg
}

func TestTwoPassExactOnFullSample(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"K5":        gen.Complete(5),
		"K8":        gen.Complete(8),
		"book":      gen.Book(30),
		"friends":   gen.Friendship(15),
		"disjoint":  gen.DisjointTriangles(25),
		"trifree":   gen.CompleteBipartite(6, 6),
		"singleTri": gen.DisjointTriangles(1),
	}
	for name, g := range graphs {
		want := float64(g.Triangles())
		for seed := uint64(0); seed < 4; seed++ {
			s := stream.Random(g, seed)
			alg := runTwoPass(t, s, exactCfg(g))
			if got := alg.Estimate(); got != want {
				t.Errorf("%s seed %d: estimate = %v, want exactly %v", name, seed, got, want)
			}
			if alg.M() != g.M() {
				t.Errorf("%s: M = %d, want %d", name, alg.M(), g.M())
			}
			if alg.PairsDiscovered() != 3*g.Triangles() {
				t.Errorf("%s seed %d: pairs = %d, want %d", name, seed, alg.PairsDiscovered(), 3*g.Triangles())
			}
		}
	}
}

func TestTwoPassExactOnFullSampleQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(14, 0.4, seed%512+1)
		if err != nil {
			return false
		}
		s := stream.Random(g, seed)
		alg, err := NewTwoPassTriangle(exactCfg(g))
		if err != nil {
			return false
		}
		stream.Run(s, alg)
		return alg.Estimate() == float64(g.Triangles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPassZeroOnEmptyAndTriangleFree(t *testing.T) {
	g := gen.CompleteBipartite(5, 7)
	alg := runTwoPass(t, stream.Sorted(g), TriangleConfig{SampleProb: 1, Seed: 3})
	if got := alg.Estimate(); got != 0 {
		t.Fatalf("triangle-free estimate = %v", got)
	}
}

func TestTwoPassUnbiasedUnderSubsampling(t *testing.T) {
	g, err := gen.PlantedTriangles(60, 25, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 1)
	var sum float64
	const trials = 300
	for seed := uint64(0); seed < trials; seed++ {
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.4, PairCap: 100000, Seed: seed*2 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		sum += alg.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean estimate %v far from truth %v (bias)", mean, truth)
	}
}

func TestTwoPassUnbiasedWithPairReservoir(t *testing.T) {
	g := gen.DisjointTriangles(80)
	truth := float64(g.Triangles())
	s := stream.Random(g, 2)
	var sum float64
	const trials = 400
	for seed := uint64(0); seed < trials; seed++ {
		// PairCap far below the ~96 pairs expected: exercises dilution.
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.5, PairCap: 20, Seed: seed*3 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		sum += alg.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("mean estimate %v far from truth %v with capped Q", mean, truth)
	}
}

func TestTwoPassBottomKMode(t *testing.T) {
	g, err := gen.PlantedTriangles(50, 20, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 4)
	var ests []float64
	for seed := uint64(0); seed < 200; seed++ {
		alg, err := NewTwoPassTriangle(TriangleConfig{SampleSize: int(g.M() / 2), PairCap: 100000, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		est := alg.Estimate()
		if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("seed %d: degenerate estimate %v", seed, est)
		}
		ests = append(ests, est)
	}
	mean := stats.Mean(ests)
	if math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("bottom-k mean %v far from truth %v", mean, truth)
	}
}

func TestTwoPassBottomKFullCoverageIsExact(t *testing.T) {
	g := gen.Complete(7) // m=21, T=35
	alg, err := NewTwoPassTriangle(TriangleConfig{SampleSize: 100, PairCap: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 3), alg)
	if got := alg.Estimate(); got != float64(g.Triangles()) {
		t.Fatalf("estimate = %v, want %d", got, g.Triangles())
	}
	if alg.SampledEdges() != int(g.M()) {
		t.Fatalf("sampled %d edges, want %d", alg.SampledEdges(), g.M())
	}
}

func TestTwoPassAccuracyOnHeavyEdgeGraph(t *testing.T) {
	// The lightest-edge rule should keep the estimator accurate on book
	// graphs, where naive sampling has huge variance. Use the median of
	// several copies, the paper's amplification.
	g, err := gen.PlantedBooks(4, 100, 40, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles()) // 400
	s := stream.Random(g, 8)
	var errs []float64
	for trial := uint64(0); trial < 20; trial++ {
		copies := make([]stream.Estimator, 9)
		for i := range copies {
			alg, err := NewTwoPassTriangle(TriangleConfig{SampleProb: 0.35, PairCap: 100000, Seed: trial*100 + uint64(i) + 1})
			if err != nil {
				t.Fatal(err)
			}
			copies[i] = alg
		}
		med := stream.NewMedian(copies...)
		stream.Run(s, med)
		errs = append(errs, stats.RelErr(med.Estimate(), truth))
	}
	if q := stats.Quantile(errs, 0.5); q > 0.25 {
		t.Fatalf("median relative error %v too large on heavy-edge graph", q)
	}
}

func TestTwoPassSpaceScalesWithSample(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Sorted(g)
	small, err := NewTwoPassTriangle(TriangleConfig{SampleSize: 20, PairCap: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, small)
	big, err := NewTwoPassTriangle(TriangleConfig{SampleSize: 500, PairCap: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, big)
	if small.SpaceWords() <= 0 || big.SpaceWords() <= small.SpaceWords() {
		t.Fatalf("space: small=%d big=%d", small.SpaceWords(), big.SpaceWords())
	}
}

func TestTriangleConfigValidation(t *testing.T) {
	bad := []TriangleConfig{
		{},                                // neither
		{SampleSize: 10, SampleProb: 0.5}, // both
		{SampleProb: 1.5},                 // p > 1
		{SampleSize: 10, PairCap: -1},     // negative cap
	}
	for i, cfg := range bad {
		if _, err := NewTwoPassTriangle(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
		if _, err := NewThreePassTriangle(cfg); err == nil {
			t.Errorf("case %d: expected config error (3-pass)", i)
		}
		if _, err := NewNaiveTwoPass(cfg); err == nil {
			t.Errorf("case %d: expected config error (naive)", i)
		}
	}
}

// The documented requirement that both passes present the identical order:
// with different orders, the pass-2 prefix restriction (pos < posFirst)
// misaligns and pairs are double-counted or lost. This negative test pins
// the contract — if it ever starts passing, the implementation's order
// assumptions changed and the docs must change with it.
func TestTwoPassRequiresIdenticalPassOrder(t *testing.T) {
	g := gen.Complete(9) // T = 84, dense enough that misalignment shows
	broken := 0
	for seed := uint64(0); seed < 10; seed++ {
		alg, err := NewTwoPassTriangle(exactCfg(g))
		if err != nil {
			t.Fatal(err)
		}
		err = stream.RunOrders([]*stream.Stream{
			stream.Random(g, seed),
			stream.Random(g, seed+1000),
		}, alg)
		if err != nil {
			t.Fatal(err)
		}
		if alg.PairsDiscovered() != 3*g.Triangles() {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("mismatched pass orders never perturbed pair discovery; the identical-order requirement may have been silently lifted")
	}
}

// The H proxy must induce a valid assignment: under full sampling, the
// number of (e,τ) pairs with ρ(τ)=e equals T exactly — each triangle is
// claimed by exactly one edge. This is the combinatorial heart of Lemma 3.1.
func TestRhoPartitionsTrianglesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(12, 0.5, seed%256+1)
		if err != nil {
			return false
		}
		s := stream.Random(g, seed/2)
		alg, err := NewTwoPassTriangle(exactCfg(g))
		if err != nil {
			return false
		}
		stream.Run(s, alg)
		return alg.Estimate() == float64(g.Triangles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Laptop-scale smoke test: a ~100k-edge stream with 10k planted triangles,
// estimated at a 3% budget in well under a minute. Guards against
// accidental super-linear behavior in the detection engine.
func TestTwoPassLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := gen.PlantedTriangles(10000, 280, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() < 90000 {
		t.Fatalf("workload too small: m=%d", g.M())
	}
	s := stream.Random(g, 1)
	alg, err := NewTwoPassTriangle(TriangleConfig{SampleSize: int(g.M() / 32), PairCap: int(g.M() / 4), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(s, alg)
	if e := stats.RelErr(alg.Estimate(), 10000); e > 0.25 {
		t.Fatalf("relative error %v at 3%% budget on 100k edges", e)
	}
}
