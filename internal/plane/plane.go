// Package plane constructs the projective plane PG(2,q) over a prime field
// and its bipartite point–line incidence graph — the "field plane" of
// Section 5.2 of the paper. For order q the plane has q²+q+1 points and as
// many lines, every line contains q+1 points, and the incidence graph is
// 4-cycle-free (girth 6) with Θ(r^{3/2}) edges on 2r vertices: any two
// distinct points lie on exactly one common line and dually. These are the
// extremal C4-free graphs used by the 4-cycle lower bounds (Thms 5.3, 5.4).
package plane

import (
	"fmt"

	"adjstream/internal/ff"
	"adjstream/internal/graph"
)

// Plane is a projective plane of prime-power order q.
type Plane struct {
	q   int64
	f   ff.GF
	pts [][3]int64 // canonical homogeneous coordinates; lines use the same set
}

// New constructs PG(2,q) for any prime-power order q, over GF(q) (the prime
// field for prime q, a polynomial extension field otherwise).
func New(q int64) (*Plane, error) {
	f, err := ff.ForOrder(q)
	if err != nil {
		return nil, fmt.Errorf("plane: order %d: %w", q, err)
	}
	p := &Plane{q: q, f: f}
	// Canonical representatives of the projective points: (1,a,b), (0,1,c),
	// (0,0,1) — exactly q² + q + 1 of them.
	for a := int64(0); a < q; a++ {
		for b := int64(0); b < q; b++ {
			p.pts = append(p.pts, [3]int64{1, a, b})
		}
	}
	for c := int64(0); c < q; c++ {
		p.pts = append(p.pts, [3]int64{0, 1, c})
	}
	p.pts = append(p.pts, [3]int64{0, 0, 1})
	return p, nil
}

// Order returns q.
func (p *Plane) Order() int64 { return p.q }

// Size returns the number of points r = q²+q+1 (equal to the number of
// lines).
func (p *Plane) Size() int { return len(p.pts) }

// Point returns the canonical homogeneous coordinates of point i.
func (p *Plane) Point(i int) [3]int64 { return p.pts[i] }

// Incident reports whether point i lies on line j (the line with the same
// index uses the dual coordinates): incidence is ⟨pt_i, ln_j⟩ = 0 in GF(q).
func (p *Plane) Incident(i, j int) bool {
	return p.f.Dot3(p.pts[i], p.pts[j]) == 0
}

// LinePoints returns the indices of the q+1 points on line j.
func (p *Plane) LinePoints(j int) []int {
	out := make([]int, 0, p.q+1)
	for i := range p.pts {
		if p.Incident(i, j) {
			out = append(out, i)
		}
	}
	return out
}

// IncidenceGraph returns the bipartite point–line incidence graph. Point i
// becomes vertex pointBase+i and line j becomes vertex lineBase+j; the two
// ranges must not overlap. The graph has 2r vertices, r(q+1) edges, and
// girth 6.
func (p *Plane) IncidenceGraph(pointBase, lineBase graph.V) (*graph.Graph, error) {
	r := graph.V(p.Size())
	if !disjoint(pointBase, pointBase+r, lineBase, lineBase+r) {
		return nil, fmt.Errorf("plane: vertex ranges [%d,%d) and [%d,%d) overlap", pointBase, pointBase+r, lineBase, lineBase+r)
	}
	b := graph.NewBuilder()
	for j := 0; j < p.Size(); j++ {
		for _, i := range p.LinePoints(j) {
			if err := b.Add(pointBase+graph.V(i), lineBase+graph.V(j)); err != nil {
				return nil, fmt.Errorf("plane: %w", err)
			}
		}
	}
	return b.Graph(), nil
}

func disjoint(a0, a1, b0, b1 graph.V) bool {
	return a1 <= b0 || b1 <= a0
}

// IncidenceEdges returns the incidence relation as (pointIndex, lineIndex)
// pairs, for callers that embed the plane into larger gadget graphs with
// their own vertex naming.
func (p *Plane) IncidenceEdges() [][2]int {
	var out [][2]int
	for j := 0; j < p.Size(); j++ {
		for _, i := range p.LinePoints(j) {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// C4FreeBipartite returns a dense bipartite 4-cycle-free graph with both
// sides of size at least minSide, by choosing the smallest prime q with
// q²+q+1 ≥ minSide and returning the incidence graph of PG(2,q). The left
// side occupies [pointBase, pointBase+r), the right side
// [lineBase, lineBase+r); r is returned.
func C4FreeBipartite(minSide int, pointBase, lineBase graph.V) (g *graph.Graph, r int, err error) {
	if minSide < 1 {
		return nil, 0, fmt.Errorf("plane: minSide must be positive")
	}
	q := int64(2)
	for {
		if q*q+q+1 >= int64(minSide) {
			break
		}
		q = ff.PrimeAtLeast(q + 1)
	}
	p, err := New(q)
	if err != nil {
		return nil, 0, err
	}
	g, err = p.IncidenceGraph(pointBase, lineBase)
	if err != nil {
		return nil, 0, err
	}
	return g, p.Size(), nil
}
