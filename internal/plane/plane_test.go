package plane

import (
	"testing"

	"adjstream/internal/graph"
)

func TestPlaneSizes(t *testing.T) {
	for _, q := range []int64{2, 3, 5, 7, 11} {
		p, err := New(q)
		if err != nil {
			t.Fatal(err)
		}
		want := int(q*q + q + 1)
		if p.Size() != want {
			t.Errorf("q=%d: Size = %d, want %d", q, p.Size(), want)
		}
		if p.Order() != q {
			t.Errorf("q=%d: Order = %d", q, p.Order())
		}
	}
}

func TestNewRejectsNonPrimePower(t *testing.T) {
	for _, q := range []int64{0, 1, 6, 10, 12} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) should fail", q)
		}
	}
}

// Prime-power orders build over polynomial extension fields and must have
// the same plane axioms and the girth-6 incidence graphs.
func TestPrimePowerOrders(t *testing.T) {
	for _, q := range []int64{4, 8, 9} {
		p, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		want := int(q*q + q + 1)
		if p.Size() != want {
			t.Fatalf("q=%d: Size = %d, want %d", q, p.Size(), want)
		}
		for j := 0; j < p.Size(); j++ {
			if got := len(p.LinePoints(j)); got != int(q+1) {
				t.Fatalf("q=%d line %d has %d points, want %d", q, j, got, q+1)
			}
		}
		g, err := p.IncidenceGraph(0, graph.V(p.Size()))
		if err != nil {
			t.Fatal(err)
		}
		if fc := g.FourCycles(); fc != 0 {
			t.Fatalf("q=%d: incidence graph has %d 4-cycles", q, fc)
		}
		if girth := g.Girth(); girth != 6 {
			t.Fatalf("q=%d: girth = %d, want 6", q, girth)
		}
	}
}

// Two distinct points of PG(2,4) lie on exactly one common line (checked on
// a sample of pairs — the full quadratic check runs for prime orders).
func TestPrimePowerUniqueLines(t *testing.T) {
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Size()
	for i := 0; i < r; i += 3 {
		for j := i + 1; j < r; j += 2 {
			common := 0
			for l := 0; l < r; l++ {
				if p.Incident(i, l) && p.Incident(j, l) {
					common++
				}
			}
			if common != 1 {
				t.Fatalf("points %d,%d on %d common lines", i, j, common)
			}
		}
	}
}

func TestEveryLineHasQPlus1Points(t *testing.T) {
	for _, q := range []int64{2, 3, 5} {
		p, _ := New(q)
		for j := 0; j < p.Size(); j++ {
			if got := len(p.LinePoints(j)); got != int(q+1) {
				t.Fatalf("q=%d line %d has %d points, want %d", q, j, got, q+1)
			}
		}
	}
}

func TestTwoPointsOneCommonLine(t *testing.T) {
	p, _ := New(3)
	r := p.Size()
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			common := 0
			for l := 0; l < r; l++ {
				if p.Incident(i, l) && p.Incident(j, l) {
					common++
				}
			}
			if common != 1 {
				t.Fatalf("points %d,%d lie on %d common lines, want 1", i, j, common)
			}
		}
	}
}

func TestTwoLinesOneCommonPoint(t *testing.T) {
	p, _ := New(3)
	r := p.Size()
	for l1 := 0; l1 < r; l1++ {
		for l2 := l1 + 1; l2 < r; l2++ {
			common := 0
			for i := 0; i < r; i++ {
				if p.Incident(i, l1) && p.Incident(i, l2) {
					common++
				}
			}
			if common != 1 {
				t.Fatalf("lines %d,%d share %d points, want 1", l1, l2, common)
			}
		}
	}
}

func TestIncidenceGraphProperties(t *testing.T) {
	for _, q := range []int64{2, 3, 5} {
		p, _ := New(q)
		r := graph.V(p.Size())
		g, err := p.IncidenceGraph(0, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 2*int(r) {
			t.Errorf("q=%d: N = %d, want %d", q, g.N(), 2*r)
		}
		if g.M() != int64(r)*(q+1) {
			t.Errorf("q=%d: M = %d, want %d", q, g.M(), int64(r)*(q+1))
		}
		for _, v := range g.Vertices() {
			if g.Degree(v) != int(q+1) {
				t.Fatalf("q=%d: degree(%d) = %d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		if fc := g.FourCycles(); fc != 0 {
			t.Errorf("q=%d: incidence graph has %d 4-cycles, want 0", q, fc)
		}
		if tr := g.Triangles(); tr != 0 {
			t.Errorf("q=%d: incidence graph has %d triangles (not bipartite?)", q, tr)
		}
		if girth := g.Girth(); girth != 6 {
			t.Errorf("q=%d: girth = %d, want 6", q, girth)
		}
	}
}

func TestIncidenceGraphRejectsOverlap(t *testing.T) {
	p, _ := New(2)
	if _, err := p.IncidenceGraph(0, 3); err == nil {
		t.Fatal("expected overlap error (r=7, lineBase=3)")
	}
}

func TestIncidenceEdgesCount(t *testing.T) {
	p, _ := New(3)
	es := p.IncidenceEdges()
	if len(es) != p.Size()*4 {
		t.Fatalf("incidences = %d, want %d", len(es), p.Size()*4)
	}
	for _, e := range es {
		if !p.Incident(e[0], e[1]) {
			t.Fatalf("pair %v not incident", e)
		}
	}
}

func TestC4FreeBipartite(t *testing.T) {
	g, r, err := C4FreeBipartite(20, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r < 20 {
		t.Fatalf("r = %d, want ≥ 20", r)
	}
	if g.FourCycles() != 0 {
		t.Fatal("graph should be 4-cycle-free")
	}
	if _, _, err := C4FreeBipartite(0, 0, 1000); err == nil {
		t.Fatal("expected error for minSide=0")
	}
}

// The Θ(r^{3/2}) edge density claim: m = r(q+1) ≈ r^{3/2} since r ≈ q².
func TestEdgeDensityScaling(t *testing.T) {
	for _, q := range []int64{3, 5, 7, 11} {
		p, _ := New(q)
		r := float64(p.Size())
		m := r * float64(q+1)
		lo, hi := r*r/(2*r), 2*r // crude sanity window around r^{1/2} per vertex
		perVertex := m / r
		if perVertex < 1 || float64(perVertex) > hi || lo < 0 {
			t.Fatalf("q=%d density out of range", q)
		}
		// Tighter check: q+1 ∈ [√r, √(2r)] since r = q²+q+1.
		if float64((q+1)*(q+1)) < r || float64((q+1)*(q+1)) > 2*r {
			t.Fatalf("q=%d: (q+1)² = %d not within [r, 2r] = [%v, %v]", q, (q+1)*(q+1), r, 2*r)
		}
	}
}
