package stream

import (
	"time"

	"adjstream/internal/telemetry"
)

// Driver telemetry. Handles are resolved once per driver run (one atomic
// load plus, when enabled, a handful of registry lookups) and then updated
// at pass granularity, so the per-item hot path carries no instrumentation
// at all. With telemetry disabled every handle is nil and each update is a
// nil check — the ≤2% BenchmarkDriver overhead budget of DESIGN.md §4d.
//
// Metric names, per driver ("run" for the sequential driver, "broadcast"
// for the pull fan-out executor, "push" for the legacy push fan-out):
//
//	driver.<name>.pass_ns         histogram — wall time per stream pass
//	driver.<name>.items_per_sec   gauge     — throughput of the last pass
//	driver.<name>.items_read      counter   — stream items read
//	driver.<name>.items_delivered counter   — items delivered to copies
//	driver.<name>.passes          counter   — stream traversals completed
//	driver.<name>.copies          counter   — estimator copies completed
//	driver.<name>.batches         counter   — batch sends / windows iterated
//	driver.push.queue_depth       high-water — peak per-worker backlog
//	driver.broadcast.pass_skew_ns histogram — per-pass worker wall-time
//	                                          spread (stragglers)
//
// One name is global rather than per driver, because it flags a stream
// property every driver hits the same way:
//
//	stream.driver.item_path_fallbacks counter — runs that used the legacy
//	        []Item walk because the stream's vertex ids exceed uint32 and
//	        it has no columnar chunks (the silent chunks==nil fallback)
type driverTele struct {
	passNS      *telemetry.Histogram
	itemsPerSec *telemetry.Gauge
	itemsRead   *telemetry.Counter
	delivered   *telemetry.Counter
	passes      *telemetry.Counter
	copies      *telemetry.Counter
	batches     *telemetry.Counter
	queueDepth  *telemetry.HighWater
	skew        *telemetry.Histogram
	fallbacks   *telemetry.Counter
}

// teleForDriver binds the handle set for the named driver, or the all-nil
// zero value when telemetry is disabled.
func teleForDriver(name string) driverTele {
	r := telemetry.Global()
	if r == nil {
		return driverTele{}
	}
	prefix := "driver." + name + "."
	return driverTele{
		passNS:      r.Histogram(prefix + "pass_ns"),
		itemsPerSec: r.Gauge(prefix + "items_per_sec"),
		itemsRead:   r.Counter(prefix + "items_read"),
		delivered:   r.Counter(prefix + "items_delivered"),
		passes:      r.Counter(prefix + "passes"),
		copies:      r.Counter(prefix + "copies"),
		batches:     r.Counter(prefix + "batches"),
		queueDepth:  r.HighWater(prefix + "queue_depth"),
		skew:        r.Histogram(prefix + "pass_skew_ns"),
		fallbacks:   r.Counter("stream.driver.item_path_fallbacks"),
	}
}

// observeSkew records one pass's worker wall-time spread.
func (t driverTele) observeSkew(ns int64) {
	if t.skew == nil {
		return
	}
	t.skew.Observe(ns)
}

// noteFallback records one driver run that fell back to the []Item walk
// because the stream has no columnar chunks.
func (t driverTele) noteFallback() {
	if t.fallbacks == nil {
		return
	}
	t.fallbacks.Add(1)
}

// startPass returns the pass start time, or the zero time when disabled
// (skipping the clock read entirely).
func (t driverTele) startPass() time.Time {
	if t.passNS == nil {
		return time.Time{}
	}
	return time.Now()
}

// endPass records one completed pass that read items stream items and
// delivered delivered callbacks.
func (t driverTele) endPass(start time.Time, items, delivered int64) {
	if t.passNS == nil {
		return
	}
	el := time.Since(start)
	t.passNS.Observe(int64(el))
	if el > 0 {
		t.itemsPerSec.Set(int64(float64(items) * float64(time.Second) / float64(el)))
	}
	t.itemsRead.Add(items)
	t.delivered.Add(delivered)
	t.passes.Add(1)
}
