package stream

// Guards OPERATIONS.md against drift: binds every driver's handle set and
// asserts the operator guide names each resulting driver.* metric.

import (
	"os"
	"regexp"
	"testing"

	"adjstream/internal/telemetry"
)

func TestOperationsDocCoversDriverMetrics(t *testing.T) {
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()
	for _, d := range []string{"run", "broadcast", "push"} {
		teleForDriver(d)
	}

	driverRe := regexp.MustCompile(`^driver\.(run|broadcast|push)\.`)
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, name := range names {
		normalized := driverRe.ReplaceAllString(name, "driver.<driver>.")
		if !regexp.MustCompile("`" + regexp.QuoteMeta(normalized) + "`").Match(doc) {
			t.Errorf("metric %s (documented form `%s`) is missing from OPERATIONS.md", name, normalized)
		}
	}
}
