package stream

// Tests for the pull-based broadcast executor: trace and estimate
// equivalence against sequential Run and the legacy push driver across
// window/worker/copy sweeps, the Workers clamp, the item-path fallback
// counter, and the ListCursor protocol across fabricated chunk geometries
// (empty chunks, single-item lists on chunk edges, final open lists).

import (
	"math"
	"reflect"
	"testing"

	"adjstream/internal/graph"
	"adjstream/internal/telemetry"
)

// TestPullTraceMatchesSequential checks, event for event, that every copy
// driven by the pull executor sees exactly the callback sequence sequential
// Run produces — across copy counts, fan-out windows (including windows of
// one item and windows larger than the stream), and worker counts.
func TestPullTraceMatchesSequential(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	s := Random(g, 3)
	want := &tracer{passes: 2}
	Run(s, want)
	for _, k := range []int{1, 2, 7, 16} {
		for _, cfg := range []BroadcastConfig{
			{},
			{Window: 1},
			{Window: 3, Workers: 2},
			{Window: s.Len() + 7, Workers: 5},
			{Window: DefaultChunkItems, Workers: 64}, // clamped to k
		} {
			copies := make([]Estimator, k)
			tracers := make([]*tracer, k)
			for i := range copies {
				tr := &tracer{passes: 2}
				tracers[i] = tr
				copies[i] = struct {
					*tracer
					dummyEstimate
				}{tr, dummyEstimate{}}
			}
			RunBroadcastConfig(s, copies, cfg)
			for i, tr := range tracers {
				if !reflect.DeepEqual(tr.events, want.events) {
					t.Fatalf("k=%d cfg=%+v copy %d: trace diverges from sequential Run", k, cfg, i)
				}
			}
		}
	}
}

// TestPullMatchesPushEstimates runs batch-capable copies through the pull
// and push executors and sequential Run; the order-sensitive accumulators
// must agree bit-for-bit.
func TestPullMatchesPushEstimates(t *testing.T) {
	g := randomGraph(40, 0.15, 9)
	s := Random(g, 7)
	want := &sumEstimator{tracer: tracer{passes: 2}}
	Run(s, want)
	const k = 6
	for _, cfg := range []BroadcastConfig{
		{},
		{Window: 5, Workers: 3},
		{Push: true},
		{Push: true, BatchSize: 17, Workers: 2},
	} {
		ests := make([]Estimator, k)
		for i := range ests {
			ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
		}
		RunBroadcastConfig(s, ests, cfg)
		for i, e := range ests {
			if e.Estimate() != want.Estimate() {
				t.Fatalf("cfg=%+v copy %d: estimate %v != sequential %v", cfg, i, e.Estimate(), want.Estimate())
			}
		}
	}
}

// TestBroadcastWorkersClamped checks that a Workers request beyond the copy
// count is clamped to it — no idle workers — on both executors, reported
// through DriverStats.Workers.
func TestBroadcastWorkersClamped(t *testing.T) {
	g := randomGraph(25, 0.2, 1)
	s := Random(g, 2)
	mk := func(k int) []Estimator {
		ests := make([]Estimator, k)
		for i := range ests {
			ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
		}
		return ests
	}
	for _, tc := range []struct {
		cfg    BroadcastConfig
		copies int
		want   int
	}{
		{BroadcastConfig{Workers: 8}, 3, 3},
		{BroadcastConfig{Workers: 2}, 3, 2},
		{BroadcastConfig{Workers: 8, Push: true}, 3, 3},
		{BroadcastConfig{Workers: 2, Push: true}, 3, 2},
	} {
		st := RunBroadcastConfig(s, mk(tc.copies), tc.cfg)
		if st.Workers != tc.want {
			t.Errorf("cfg=%+v copies=%d: Workers = %d, want %d", tc.cfg, tc.copies, st.Workers, tc.want)
		}
	}
}

// TestItemPathFallbackCounter checks that runs over a stream without
// columnar chunks (ids beyond uint32) tick the global fallback counter —
// once per run, on the sequential and both broadcast executors — and that
// chunked streams never do.
func TestItemPathFallbackCounter(t *testing.T) {
	defer telemetry.Disable()
	r := telemetry.Enable()
	r.Reset()
	big := graph.V(math.MaxUint32) + 1
	s, err := FromItems([]Item{{Owner: 1, Nbr: big}, {Owner: big, Nbr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks() != nil {
		t.Fatal("stream with an id beyond uint32 has a columnar form")
	}
	const name = "stream.driver.item_path_fallbacks"

	Run(s, &sumEstimator{tracer: tracer{passes: 2}})
	if got := r.Snapshot()[name]; got != 1 {
		t.Fatalf("after sequential run: %s = %v, want 1", name, got)
	}
	RunBroadcastConfig(s, []Estimator{&sumEstimator{tracer: tracer{passes: 2}}}, BroadcastConfig{})
	if got := r.Snapshot()[name]; got != 2 {
		t.Fatalf("after pull run: %s = %v, want 2", name, got)
	}
	RunBroadcastConfig(s, []Estimator{&sumEstimator{tracer: tracer{passes: 2}}}, BroadcastConfig{Push: true})
	if got := r.Snapshot()[name]; got != 3 {
		t.Fatalf("after push run: %s = %v, want 3", name, got)
	}

	chunked := Random(randomGraph(10, 0.4, 2), 1)
	Run(chunked, &sumEstimator{tracer: tracer{passes: 2}})
	RunBroadcastConfig(chunked, []Estimator{&sumEstimator{tracer: tracer{passes: 2}}}, BroadcastConfig{})
	if got := r.Snapshot()[name]; got != 3 {
		t.Fatalf("chunked runs moved the fallback counter: %s = %v, want 3", name, got)
	}
}

// chunkedStream rebuilds s's columnar form with a custom chunk size and an
// optional sprinkling of empty chunks, so the drivers' list-cursor handling
// can be exercised on geometries the default 1024-item chunking never
// produces: single-item lists on chunk edges, lists spanning many chunks,
// and chunks with no items at all.
func chunkedStream(t *testing.T, s *Stream, chunkItems int, emptyEvery int) *Stream {
	t.Helper()
	chunks := buildChunks(s.Items(), chunkItems)
	if chunks == nil {
		t.Fatal("stream is not chunkable")
	}
	if emptyEvery > 0 {
		withEmpty := make([]Chunk, 0, 2*len(chunks))
		for i, c := range chunks {
			if i%emptyEvery == 0 {
				withEmpty = append(withEmpty, Chunk{})
			}
			withEmpty = append(withEmpty, c)
		}
		chunks = append(withEmpty, Chunk{})
	}
	return &Stream{
		chunks: chunks,
		n:      s.Len(),
		lists:  s.Lists(),
		m:      s.M(),
		items:  s.Items(),
	}
}

// TestCursorAcrossChunkBoundaries drives every driver over fabricated chunk
// geometries — chunk size one (each list straddles chunk edges; single-item
// lists occupy exactly one chunk), size two, size three with interleaved
// empty chunks — and checks both the batch path (EdgeBatch + ListCursor)
// and the item path against the canonical sequential trace, including the
// close of the final open list.
func TestCursorAcrossChunkBoundaries(t *testing.T) {
	// A path plus a pendant: list 2 spans chunks at size 1, lists 1 and 4
	// are single-item lists landing exactly on chunk edges.
	items := []Item{
		{Owner: 1, Nbr: 2},
		{Owner: 2, Nbr: 1}, {Owner: 2, Nbr: 3}, {Owner: 2, Nbr: 4},
		{Owner: 3, Nbr: 2},
		{Owner: 4, Nbr: 2},
	}
	base, err := FromItems(items)
	if err != nil {
		t.Fatal(err)
	}
	want := &tracer{passes: 2}
	Run(base, ItemOnly(struct {
		*tracer
		dummyEstimate
	}{want, dummyEstimate{}}))
	wantSum := &sumEstimator{tracer: tracer{passes: 2}}
	Run(base, ItemOnly(wantSum))

	for _, geo := range []struct {
		name       string
		chunkItems int
		emptyEvery int
	}{
		{"size1", 1, 0},
		{"size2", 2, 0},
		{"size3-empties", 3, 1},
		{"size1-empties", 1, 2},
	} {
		t.Run(geo.name, func(t *testing.T) {
			s := chunkedStream(t, base, geo.chunkItems, geo.emptyEvery)
			drivers := []struct {
				name string
				run  func(e Estimator)
			}{
				{"sequential", func(e Estimator) { Run(s, e) }},
				{"pull", func(e Estimator) { RunBroadcastConfig(s, []Estimator{e}, BroadcastConfig{Window: 2}) }},
				{"push", func(e Estimator) { RunBroadcastConfig(s, []Estimator{e}, BroadcastConfig{Push: true, BatchSize: 2}) }},
			}
			for _, d := range drivers {
				// Item path: a bare tracer (no EdgeBatch) sees the full
				// decoded protocol.
				tr := &tracer{passes: 2}
				d.run(struct {
					*tracer
					dummyEstimate
				}{tr, dummyEstimate{}})
				if !reflect.DeepEqual(tr.events, want.events) {
					t.Errorf("%s item path: trace diverges\n got %v\nwant %v", d.name, tr.events, want.events)
				}
				// Batch path: the EdgeBatch + ListCursor protocol must
				// reconstruct the same events and accumulator.
				se := &sumEstimator{tracer: tracer{passes: 2}}
				d.run(se)
				if se.Estimate() != wantSum.Estimate() {
					t.Errorf("%s batch path: estimate %v != %v", d.name, se.Estimate(), wantSum.Estimate())
				}
			}
		})
	}
}

// TestPullPassSkewReported checks that a multi-worker pull run reports a
// non-negative per-pass wall-time skew and the worker count it actually
// used.
func TestPullPassSkewReported(t *testing.T) {
	g := randomGraph(40, 0.2, 4)
	s := Random(g, 5)
	ests := make([]Estimator, 8)
	for i := range ests {
		ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
	}
	st := RunBroadcastConfig(s, ests, BroadcastConfig{Workers: 4})
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.PassSkewNS < 0 {
		t.Errorf("PassSkewNS = %d, want >= 0", st.PassSkewNS)
	}
}
