package stream

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"adjstream/internal/graph"
)

func triangleGraph() *graph.Graph {
	return graph.MustFromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}})
}

func randomGraph(n int, p float64, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = b.Add(graph.V(i), graph.V(j))
			}
		}
	}
	return b.Graph()
}

func TestSortedStreamValid(t *testing.T) {
	g := triangleGraph()
	s := Sorted(g)
	if err := Validate(s.Items()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 || s.M() != 3 || s.Lists() != 3 {
		t.Fatalf("Len=%d M=%d Lists=%d", s.Len(), s.M(), s.Lists())
	}
	order := s.ListOrder()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("ListOrder = %v", order)
	}
}

func TestRandomStreamValid(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	for seed := uint64(0); seed < 5; seed++ {
		s := Random(g, seed)
		if err := Validate(s.Items()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.M() != g.M() {
			t.Fatalf("seed %d: M=%d want %d", seed, s.M(), g.M())
		}
	}
}

func TestRandomStreamsDiffer(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	a, b := Random(g, 1), Random(g, 2)
	same := len(a.Items()) == len(b.Items())
	if same {
		differs := false
		for i := range a.Items() {
			if a.Items()[i] != b.Items()[i] {
				differs = true
				break
			}
		}
		if !differs {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestRandomStreamDeterministic(t *testing.T) {
	g := randomGraph(20, 0.3, 9)
	a, b := Random(g, 7), Random(g, 7)
	for i := range a.Items() {
		if a.Items()[i] != b.Items()[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestValidateRejectsNonContiguous(t *testing.T) {
	items := []Item{{1, 2}, {3, 1}, {1, 3}, {2, 1}, {3, 2}, {2, 3}}
	// List of 1 is split by list of 3.
	if err := Validate(items); err == nil {
		t.Fatal("expected contiguity violation")
	}
}

func TestValidateRejectsSingleAppearance(t *testing.T) {
	items := []Item{{1, 2}} // edge appears once
	if err := Validate(items); err == nil {
		t.Fatal("expected missing-reverse violation")
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	if err := Validate([]Item{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("expected self-loop violation")
	}
}

func TestValidateRejectsDuplicateItem(t *testing.T) {
	items := []Item{{1, 2}, {1, 2}, {2, 1}, {2, 1}}
	if err := Validate(items); err == nil {
		t.Fatal("expected duplicate-item violation")
	}
}

func TestFromGraphRejectsBadOrder(t *testing.T) {
	g := triangleGraph()
	if _, err := FromGraph(g, []graph.V{1, 2}); err == nil {
		t.Fatal("expected error for missing vertex")
	}
	if _, err := FromGraph(g, []graph.V{1, 2, 3, 1}); err == nil {
		t.Fatal("expected error for repeated vertex")
	}
	if _, err := FromGraph(g, []graph.V{1, 2, 3, 99}); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
}

func TestStreamGraphRoundTrip(t *testing.T) {
	g := randomGraph(25, 0.25, 11)
	s := Random(g, 3)
	g2, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || g2.N() != g.N() {
		t.Fatalf("round trip mismatch: m %d vs %d, n %d vs %d", g2.M(), g.M(), g2.N(), g.N())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

// recorder verifies driver callback sequencing.
type recorder struct {
	passes   int
	events   []string
	curOwner graph.V
	t        *testing.T
}

func (r *recorder) Passes() int     { return r.passes }
func (r *recorder) StartPass(p int) { r.events = append(r.events, "P") }
func (r *recorder) EndPass(p int)   { r.events = append(r.events, "p") }
func (r *recorder) StartList(v graph.V) {
	r.curOwner = v
	r.events = append(r.events, "L")
}
func (r *recorder) EndList(v graph.V) {
	if v != r.curOwner {
		r.t.Fatalf("EndList(%d) during list of %d", v, r.curOwner)
	}
	r.events = append(r.events, "l")
}
func (r *recorder) Edge(o, n graph.V) {
	if o != r.curOwner {
		r.t.Fatalf("Edge owner %d during list of %d", o, r.curOwner)
	}
	r.events = append(r.events, "e")
}

func TestDriverSequencing(t *testing.T) {
	g := triangleGraph()
	s := Sorted(g)
	r := &recorder{passes: 2, t: t}
	Run(s, r)
	got := strings.Join(r.events, "")
	want := "PLeelLeelLeelpPLeelLeelLeelp"
	if got != want {
		t.Fatalf("event sequence = %q, want %q", got, want)
	}
}

func TestRunOrdersChecksCounts(t *testing.T) {
	g := triangleGraph()
	r := &recorder{passes: 2, t: t}
	if err := RunOrders([]*Stream{Sorted(g)}, r); err == nil {
		t.Fatal("expected pass-count mismatch error")
	}
	g2 := graph.MustFromEdges([]graph.Edge{{U: 1, V: 2}})
	if err := RunOrders([]*Stream{Sorted(g), Sorted(g2)}, r); err == nil {
		t.Fatal("expected edge-count mismatch error")
	}
	if err := RunOrders([]*Stream{Sorted(g), Random(g, 1)}, &recorder{passes: 2, t: t}); err != nil {
		t.Fatal(err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(15, 0.3, 2)
	s := Random(g, 4)
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("len %d vs %d", s2.Len(), s.Len())
	}
	for i := range s.Items() {
		if s.Items()[i] != s2.Items()[i] {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"1\n",        // one field
		"a b\n",      // non-numeric
		"1 b\n",      // non-numeric neighbor
		"1 2\n",      // invalid stream (single appearance)
		"1 1\n1 1\n", // self loop
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestReadTextSkipsComments(t *testing.T) {
	in := "# comment\n\n1 2\n1 3\n2 1\n2 3\n3 1\n3 2\n"
	s, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 3 {
		t.Fatalf("M = %d, want 3", s.M())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(20, 0.3, 8)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("M %d vs %d", g2.M(), g.M())
	}
}

func TestReadEdgeListToleratesDuplicates(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("1 2\n2 1\n1 2\n1 1\n# c\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

// Property: any random order of any random graph yields a valid stream
// whose reconstruction equals the source graph.
func TestRandomOrderAlwaysValidQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(12, 0.4, seed%256+1)
		if g.M() == 0 {
			return true
		}
		s := Random(g, seed)
		if Validate(s.Items()) != nil {
			return false
		}
		g2, err := s.Graph()
		if err != nil {
			return false
		}
		return g2.M() == g.M() && g2.Triangles() == g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
