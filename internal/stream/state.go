package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"adjstream/internal/stats"
)

// Mergeable, serializable estimator state. A median-of-k run is k
// independent copies whose estimates meet only at the final median, so the
// copy set can be split into disjoint subsets executed by separate workers
// — or separate processes — as long as (a) copy i gets the same seed no
// matter which subset runs it and (b) each completed copy can hand back a
// summary the merge step combines into the bit-identical median. Fork
// covers (a); Snapshot/Restore plus MergeMedianSet cover (b). The seed
// schedule is the facade's concern (it is independent of the subset
// partition by construction); this file defines the contract and the wire
// form.
//
// A snapshot is a completed-run summary, not a mid-pass checkpoint: it
// captures what the copy contributes to the merge (estimate, space, passes,
// m) plus per-algorithm extras for the accessors that remain meaningful
// after restore. Restoring mid-pass state would require serializing
// reservoir pointer webs for no merge benefit — the merge only ever reads
// completed copies.

// Snapshotter is the serialization half of the state contract: Snapshot
// freezes a completed run into the versioned CopyState wire form, Restore
// loads one into a fresh instance so that Estimate/SpaceWords/M (and the
// algorithm's documented accessors) answer as the original would.
type Snapshotter interface {
	// Snapshot serializes the completed-run summary. Call it only after
	// the copy has finished all its passes.
	Snapshot() []byte
	// Restore loads a snapshot produced by the same algorithm type. It
	// fails on a corrupt snapshot or an algorithm-tag mismatch.
	Restore([]byte) error
}

// MergeableEstimator is an estimator copy that can participate in a split
// median-of-k run: forked for a given copy seed, run anywhere, snapshotted,
// and merged via MergeMedianSet.
type MergeableEstimator interface {
	Estimator
	Snapshotter
	// Fork returns a fresh copy of the same algorithm and configuration,
	// reseeded with seed, holding no run state. Algorithms that consume no
	// randomness ignore the seed.
	Fork(seed uint64) MergeableEstimator
}

// CopyState is the decoded form of one copy's snapshot.
type CopyState struct {
	// Algo tags the algorithm that produced the snapshot (the facade's
	// algorithm name). Merging rejects mixed tags.
	Algo string
	// Estimate is the copy's final estimate (exact float64 bits).
	Estimate float64
	// SpaceWords is the copy's peak space in words.
	SpaceWords int64
	// Passes is the copy's pass count.
	Passes int64
	// M is the edge count the copy observed.
	M int64
	// Extra holds algorithm-specific fields (documented per algorithm in
	// DESIGN.md §4h); may be empty.
	Extra []byte
}

// copyStateVersion is the snapshot wire-format version.
const copyStateVersion = 1

// Encode serializes st: a version byte, then the algorithm tag
// (uvarint length + bytes), the estimate's IEEE-754 bits, SpaceWords,
// Passes and M as fixed 64-bit little-endian two's complement, and the
// extra payload (uvarint length + bytes).
func (st *CopyState) Encode() []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(st.Algo)+4*8+binary.MaxVarintLen64+len(st.Extra))
	buf = append(buf, copyStateVersion)
	buf = binary.AppendUvarint(buf, uint64(len(st.Algo)))
	buf = append(buf, st.Algo...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Estimate))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.SpaceWords))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Passes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.M))
	buf = binary.AppendUvarint(buf, uint64(len(st.Extra)))
	buf = append(buf, st.Extra...)
	return buf
}

// DecodeCopyState parses a snapshot produced by CopyState.Encode.
func DecodeCopyState(b []byte) (CopyState, error) {
	var st CopyState
	if len(b) == 0 {
		return st, errors.New("stream: empty snapshot")
	}
	if b[0] != copyStateVersion {
		return st, fmt.Errorf("stream: snapshot version %d, want %d", b[0], copyStateVersion)
	}
	b = b[1:]
	algoLen, n := binary.Uvarint(b)
	if n <= 0 || algoLen > uint64(len(b)-n) {
		return st, errors.New("stream: snapshot truncated in algorithm tag")
	}
	b = b[n:]
	st.Algo = string(b[:algoLen])
	b = b[algoLen:]
	if len(b) < 4*8 {
		return st, errors.New("stream: snapshot truncated in summary fields")
	}
	st.Estimate = math.Float64frombits(binary.LittleEndian.Uint64(b))
	st.SpaceWords = int64(binary.LittleEndian.Uint64(b[8:]))
	st.Passes = int64(binary.LittleEndian.Uint64(b[16:]))
	st.M = int64(binary.LittleEndian.Uint64(b[24:]))
	b = b[32:]
	extraLen, n := binary.Uvarint(b)
	if n <= 0 || extraLen != uint64(len(b)-n) {
		return st, errors.New("stream: snapshot truncated in extra payload")
	}
	if extraLen > 0 {
		st.Extra = append([]byte(nil), b[n:]...)
	}
	return st, nil
}

// SnapshotOf builds the standard snapshot for a completed estimator copy.
// It reads the summary through the estimator's own accessors, so
// re-snapshotting a restored copy round-trips.
func SnapshotOf(algo string, e Estimator, m int64, extra []byte) []byte {
	st := CopyState{
		Algo:       algo,
		Estimate:   e.Estimate(),
		SpaceWords: e.SpaceWords(),
		Passes:     int64(e.Passes()),
		M:          m,
		Extra:      extra,
	}
	return st.Encode()
}

// DecodeRestore parses a snapshot and checks it carries the expected
// algorithm tag — the shared front half of every Restore implementation.
func DecodeRestore(b []byte, algo string) (*CopyState, error) {
	st, err := DecodeCopyState(b)
	if err != nil {
		return nil, err
	}
	if st.Algo != algo {
		return nil, fmt.Errorf("stream: snapshot is for algorithm %q, not %q", st.Algo, algo)
	}
	return &st, nil
}

// MergeMedianSet combines per-copy snapshots into the median-of-k summary:
// median estimate, summed space, max passes and m. stats.Median sorts its
// input, so the result is bit-identical to MedianOf over the same completed
// copies regardless of how the copies were partitioned across workers or
// processes, and regardless of snapshot order. All snapshots must carry the
// same algorithm tag.
func MergeMedianSet(snapshots [][]byte) (CopyState, error) {
	if len(snapshots) == 0 {
		return CopyState{}, errors.New("stream: no snapshots to merge")
	}
	xs := make([]float64, len(snapshots))
	var merged CopyState
	for i, b := range snapshots {
		st, err := DecodeCopyState(b)
		if err != nil {
			return CopyState{}, fmt.Errorf("stream: snapshot %d: %w", i, err)
		}
		if i == 0 {
			merged.Algo = st.Algo
		} else if st.Algo != merged.Algo {
			return CopyState{}, fmt.Errorf("stream: snapshot %d is for algorithm %q, not %q", i, st.Algo, merged.Algo)
		}
		xs[i] = st.Estimate
		merged.SpaceWords += st.SpaceWords
		if st.Passes > merged.Passes {
			merged.Passes = st.Passes
		}
		if st.M > merged.M {
			merged.M = st.M
		}
	}
	merged.Estimate = stats.Median(xs)
	return merged, nil
}
