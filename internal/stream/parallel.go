package stream

import (
	"context"
	"runtime"
	"sync"
)

// RunParallel drives each estimator over s concurrently (each copy performs
// its own passes; copies are independent, so results are identical to
// sequential Run calls). Concurrency is bounded by GOMAXPROCS.
//
// This is the replay driver: every copy reads the full stream itself, so a
// run costs Σ passes(e)·Len(s) stream-item reads. RunBroadcast performs the
// same computation with one stream read per pass shared by all copies;
// RunParallel is kept as the A/B baseline (see ReplayStats for the
// counters a replay run would report).
func RunParallel(s *Stream, ests []Estimator) {
	// context.Background never fires, so RunParallelContext cannot fail.
	_ = RunParallelContext(context.Background(), s, ests)
}

// RunParallelContext is RunParallel with cooperative cancellation: every
// copy runs under ctx (each polling at the RunContext block granularity) and
// a cancelled ctx makes all of them abandon their current pass. It returns
// ctx.Err() if the run was cancelled — the only error a replay run can
// produce — after every copy goroutine has exited.
func RunParallelContext(ctx context.Context, s *Stream, ests []Estimator) error {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, e := range ests {
		wg.Add(1)
		sem <- struct{}{}
		go func(e Estimator) {
			defer wg.Done()
			defer func() { <-sem }()
			// A cancelled copy returns ctx.Err(), which is sticky and
			// reported once for the whole run below.
			_ = RunContext(ctx, s, e)
		}(e)
	}
	wg.Wait()
	return ctx.Err()
}

// ReplayStats returns the driver counters of a replay run of ests over s
// (RunParallel or per-copy Run): each copy reads the stream itself on every
// one of its passes, and every read is also a delivery. Replay does not
// batch, so Batches and PeakQueueDepth are zero.
func ReplayStats(s *Stream, ests []Estimator) DriverStats {
	st := DriverStats{Copies: len(ests)}
	for _, e := range ests {
		p := e.Passes()
		if p > st.Passes {
			st.Passes = p
		}
		st.StreamItemsRead += int64(p) * int64(s.Len())
	}
	st.ItemsDelivered = st.StreamItemsRead
	return st
}

// MedianParallel runs the copies concurrently over s and returns the median
// estimate and the summed peak space — the parallel counterpart of driving
// a MedianEstimator with Run. Since the broadcast PR it uses the broadcast
// driver (one stream read per pass, fanned out to all copies); MedianReplay
// keeps the old once-per-copy replay for A/B comparison. Both produce
// identical estimates for fixed-seed copies.
func MedianParallel(s *Stream, copies []Estimator) (estimate float64, spaceWords int64) {
	estimate, spaceWords, _ = MedianBroadcast(s, copies)
	return estimate, spaceWords
}

// MedianReplay is MedianParallel on the replay driver: every copy replays
// the full stream itself (the pre-broadcast behavior).
func MedianReplay(s *Stream, copies []Estimator) (estimate float64, spaceWords int64) {
	// context.Background never fires, so the context variant cannot fail.
	estimate, spaceWords, _ = MedianReplayContext(context.Background(), s, copies)
	return estimate, spaceWords
}

// MedianReplayContext is MedianReplay with cooperative cancellation. On
// cancellation it returns ctx.Err() with zero estimate and space; the
// copies' state is unspecified after an aborted run.
func MedianReplayContext(ctx context.Context, s *Stream, copies []Estimator) (estimate float64, spaceWords int64, err error) {
	if err := RunParallelContext(ctx, s, copies); err != nil {
		return 0, 0, err
	}
	estimate, spaceWords = MedianOf(copies)
	return estimate, spaceWords, nil
}
