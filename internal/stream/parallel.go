package stream

import (
	"runtime"
	"sync"

	"adjstream/internal/stats"
)

// RunParallel drives each estimator over s concurrently (each copy performs
// its own passes; copies are independent, so results are identical to
// sequential Run calls). Concurrency is bounded by GOMAXPROCS.
func RunParallel(s *Stream, ests []Estimator) {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, e := range ests {
		wg.Add(1)
		sem <- struct{}{}
		go func(e Estimator) {
			defer wg.Done()
			defer func() { <-sem }()
			Run(s, e)
		}(e)
	}
	wg.Wait()
}

// MedianParallel runs the copies concurrently over s and returns the median
// estimate and the summed peak space — the parallel counterpart of driving
// a MedianEstimator with Run.
func MedianParallel(s *Stream, copies []Estimator) (estimate float64, spaceWords int64) {
	RunParallel(s, copies)
	xs := make([]float64, len(copies))
	var sp int64
	for i, c := range copies {
		xs[i] = c.Estimate()
		sp += c.SpaceWords()
	}
	return stats.Median(xs), sp
}
