package stream

// Cancellation tests for the context-aware drivers: a cancelled run must
// stop promptly at a block/batch boundary, return ctx.Err(), and leak no
// goroutines — and a never-firing context must not perturb a single
// callback relative to the pre-context drivers.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adjstream/internal/graph"
)

// gateEstimator counts Edge callbacks and, at the trip count, signals
// tripped (once) and then blocks until release closes. It lets tests park a
// driver mid-pass deterministically. Safe for concurrent shards: only one
// copy is a gateEstimator per test.
type gateEstimator struct {
	tracer
	n       atomic.Int64
	trip    int64
	tripped chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateEstimator(passes int, trip int64) *gateEstimator {
	return &gateEstimator{
		tracer:  tracer{passes: passes},
		trip:    trip,
		tripped: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (e *gateEstimator) Edge(o, n graph.V) {
	if e.n.Add(1) == e.trip {
		e.once.Do(func() { close(e.tripped) })
		<-e.release
	}
}
func (e *gateEstimator) StartPass(int)     {}
func (e *gateEstimator) EndPass(int)       {}
func (e *gateEstimator) StartList(graph.V) {}
func (e *gateEstimator) EndList(graph.V)   {}
func (e *gateEstimator) Estimate() float64 { return float64(e.n.Load()) }
func (e *gateEstimator) SpaceWords() int64 { return 1 }

// waitGoroutines asserts the goroutine count returns to within slack of
// base, retrying briefly (worker exit is asynchronous after Wait).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d > base %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	s := singleEdgeStream(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := &tracer{passes: 2}
	if err := RunContext(ctx, s, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(tr.events) != 0 {
		t.Fatalf("cancelled run delivered callbacks: %v", tr.events)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	s := Random(g, 3)
	want := &tracer{passes: 2}
	Run(s, want)
	got := &tracer{passes: 2}
	if err := RunContext(context.Background(), s, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.events, want.events) {
		t.Fatal("RunContext(Background) trace diverges from Run")
	}
}

// TestRunContextCancelMidPass parks a sequential run at its trip edge,
// cancels, and checks the run stops at the next block boundary.
func TestRunContextCancelMidPass(t *testing.T) {
	g := randomGraph(60, 0.3, 7)
	s := Random(g, 1)
	if s.Len() < 2*CancelCheckItems/4 {
		t.Skipf("stream too small: %d items", s.Len())
	}
	e := newGateEstimator(2, 10)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- RunContext(ctx, s, e) }()
	<-e.tripped
	cancel()
	close(e.release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run delivered at most one more block after the cancel point.
	if n := e.n.Load(); n > 10+int64(CancelCheckItems) {
		t.Fatalf("delivered %d edges after cancel at 10 (check interval %d)", n, CancelCheckItems)
	}
}

// TestRunContextDeadline checks deadline expiry surfaces as DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	g := randomGraph(60, 0.3, 2)
	s := Random(g, 4)
	e := newGateEstimator(2, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- RunContext(ctx, s, e) }()
	<-e.tripped
	<-ctx.Done() // park past the deadline
	close(e.release)
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBroadcastContextCancelMidPass saturates the broadcast producer behind
// a parked worker, cancels, and checks that the producer abandons the pass,
// every worker exits, and the stream was not fully read.
func TestBroadcastContextCancelMidPass(t *testing.T) {
	g := randomGraph(80, 0.4, 3)
	s := Random(g, 2)
	base := runtime.NumGoroutine()
	gate := newGateEstimator(2, 1) // parks on the very first edge
	others := make([]Estimator, 0, 4)
	for i := 0; i < 4; i++ {
		others = append(others, &sumEstimator{tracer: tracer{passes: 2}})
	}
	ests := append([]Estimator{gate}, others...)
	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		st  DriverStats
		err error
	}
	outc := make(chan out, 1)
	go func() {
		st, err := RunBroadcastConfigContext(ctx, s, ests, BroadcastConfig{BatchSize: 8, QueueDepth: 1, Workers: len(ests)})
		outc <- out{st, err}
	}()
	<-gate.tripped
	cancel()
	close(gate.release)
	res := <-outc
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.err)
	}
	// Two passes over 2m items is the full read; a cancelled first pass
	// must have read strictly less.
	if full := int64(2 * s.Len()); res.st.StreamItemsRead >= full {
		t.Fatalf("StreamItemsRead = %d, want < %d after mid-pass cancel", res.st.StreamItemsRead, full)
	}
	waitGoroutines(t, base)
}

func TestBroadcastContextBackgroundMatchesBroadcast(t *testing.T) {
	g := randomGraph(40, 0.2, 9)
	s := Random(g, 7)
	const k = 6
	want := make([]*sumEstimator, k)
	got := make([]Estimator, k)
	for i := 0; i < k; i++ {
		want[i] = &sumEstimator{tracer: tracer{passes: 2}}
		Run(s, want[i])
		got[i] = &sumEstimator{tracer: tracer{passes: 2}}
	}
	st, err := RunBroadcastContext(context.Background(), s, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if got[i].Estimate() != want[i].Estimate() {
			t.Fatalf("copy %d diverges under a background context", i)
		}
	}
	if st.Passes != 2 || st.StreamItemsRead != int64(2*s.Len()) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMedianBroadcastContextCanceled(t *testing.T) {
	g := randomGraph(30, 0.3, 1)
	s := Random(g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ests := []Estimator{&sumEstimator{tracer: tracer{passes: 2}}}
	_, _, _, err := MedianBroadcastContext(ctx, s, ests)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMedianReplayContextCanceled(t *testing.T) {
	g := randomGraph(30, 0.3, 1)
	s := Random(g, 1)
	base := runtime.NumGoroutine()
	gate := newGateEstimator(2, 1)
	ests := []Estimator{gate, &sumEstimator{tracer: tracer{passes: 2}}}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := MedianReplayContext(ctx, s, ests)
		errc <- err
	}()
	<-gate.tripped
	cancel()
	close(gate.release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

func TestMedianReplayContextBackgroundMatchesReplay(t *testing.T) {
	g := randomGraph(35, 0.2, 6)
	s := Random(g, 2)
	mk := func() []Estimator {
		ests := make([]Estimator, 5)
		for i := range ests {
			ests[i] = &sumEstimator{tracer: tracer{passes: 2}, acc: float64(i)}
		}
		return ests
	}
	wantEst, wantSp := MedianReplay(s, mk())
	gotEst, gotSp, err := MedianReplayContext(context.Background(), s, mk())
	if err != nil {
		t.Fatal(err)
	}
	if gotEst != wantEst || gotSp != wantSp {
		t.Fatalf("context replay (%v, %d) != replay (%v, %d)", gotEst, gotSp, wantEst, wantSp)
	}
}
