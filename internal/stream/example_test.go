package stream_test

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// itemCounter is a minimal two-pass Algorithm: it counts the items and
// adjacency lists each pass delivers.
type itemCounter struct {
	pass  int
	items [2]int
	lists [2]int
}

func (c *itemCounter) Passes() int         { return 2 }
func (c *itemCounter) StartPass(p int)     { c.pass = p }
func (c *itemCounter) StartList(v graph.V) {}
func (c *itemCounter) Edge(o, n graph.V)   { c.items[c.pass]++ }
func (c *itemCounter) EndList(v graph.V)   { c.lists[c.pass]++ }
func (c *itemCounter) EndPass(p int)       {}

// Example drives a two-pass algorithm over the sorted adjacency-list
// stream of a triangle: every pass sees each edge twice, once in each
// endpoint's list.
func Example() {
	g := graph.MustFromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}})
	s := stream.Sorted(g)
	c := &itemCounter{}
	stream.Run(s, c)
	fmt.Printf("m=%d pass 0: %d items in %d lists; pass 1: %d items in %d lists\n",
		s.M(), c.items[0], c.lists[0], c.items[1], c.lists[1])
	// Output:
	// m=3 pass 0: 6 items in 3 lists; pass 1: 6 items in 3 lists
}

// ExampleRunBroadcast fans one stream read per pass out to several
// estimator copies; the driver stats of the configurable variant show the
// read reduction over per-copy replay.
func ExampleRunBroadcastConfig() {
	g := graph.MustFromEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}})
	s := stream.Sorted(g)
	copies := make([]stream.Estimator, 3)
	ests := make([]*itemEstimator, 3)
	for i := range copies {
		ests[i] = &itemEstimator{}
		copies[i] = ests[i]
	}
	st := stream.RunBroadcastConfig(s, copies, stream.BroadcastConfig{})
	fmt.Printf("copies=%d stream items read=%d delivered=%d\n",
		st.Copies, st.StreamItemsRead, st.ItemsDelivered)
	fmt.Printf("each copy saw %v items\n", ests[0].items)
	// Output:
	// copies=3 stream items read=6 delivered=18
	// each copy saw 6 items
}

// itemEstimator counts delivered items and reports them as its estimate.
type itemEstimator struct{ items int64 }

func (e *itemEstimator) Passes() int         { return 1 }
func (e *itemEstimator) StartPass(p int)     {}
func (e *itemEstimator) StartList(v graph.V) {}
func (e *itemEstimator) Edge(o, n graph.V)   { e.items++ }
func (e *itemEstimator) EndList(v graph.V)   {}
func (e *itemEstimator) EndPass(p int)       {}
func (e *itemEstimator) Estimate() float64   { return float64(e.items) }
func (e *itemEstimator) SpaceWords() int64   { return 1 }
