package stream

// The mmap-able columnar stream file format ("adjC", version 1). The file
// stores the chunked columnar representation verbatim in little-endian
// byte order, so on little-endian hosts OpenMapped builds the chunk
// directory by aliasing the mapped bytes — replaying a multi-gigabyte
// stream costs zero parse work and no heap beyond the directory itself.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "adjC"
//	4       4     version (uint32, = 1)
//	8       4     chunkItems (uint32) — max items per chunk at write time
//	12      4     reserved (uint32, = 0)
//	16      8     items (uint64) — total item count (= 2m)
//	24      8     m (uint64) — distinct edge count
//	32      8     lists (uint64) — adjacency-list count (= total runs)
//	40      8     nchunks (uint64)
//	48      8·nchunks   directory: {nItems uint32, nRuns uint32} per chunk
//	...     per chunk: owners [nItems]uint32, nbrs [nItems]uint32,
//	               runs [nRuns]uint32
//
// Every field and array is 4-byte aligned by construction (the header is
// 48 bytes, directory entries and column elements are 4 bytes), so the
// aliased []uint32/[]int32 views are always well-aligned over a
// page-aligned mapping.
//
// OpenMapped performs structural validation only (sizes, run monotonicity,
// header consistency): the full adjacency-list promise is a property of
// the writer, which only accepts validated Streams. The varint "adj1"
// format (binary.go) remains the compact archival format; "adjC" trades
// size for zero-cost replay.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

const (
	mappedMagic   = "adjC"
	mappedVersion = 1
	// mappedHeaderSize is the fixed header length in bytes.
	mappedHeaderSize = 48
	// mappedDirEntrySize is the per-chunk directory entry length in bytes.
	mappedDirEntrySize = 8
)

// hostLittleEndian reports whether native byte order matches the file
// format; when it does, column slices alias the raw bytes instead of being
// decoded element by element.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// WriteColumnar writes s in the "adjC" columnar format. It fails when the
// stream's vertex ids exceed uint32 (such streams have no columnar form).
func WriteColumnar(w io.Writer, s *Stream) error {
	if s.chunks == nil && s.n > 0 {
		return fmt.Errorf("stream: ids exceed uint32; no columnar form to write")
	}
	bw := bufio.NewWriter(w)
	var hdr [mappedHeaderSize]byte
	copy(hdr[0:4], mappedMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], mappedVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(DefaultChunkItems))
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(s.n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(s.m))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(s.lists))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(s.chunks)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: write columnar: %w", err)
	}
	var u32 [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	for i := range s.chunks {
		c := &s.chunks[i]
		if err := put(uint32(len(c.Owners))); err != nil {
			return fmt.Errorf("stream: write columnar: %w", err)
		}
		if err := put(uint32(len(c.Runs))); err != nil {
			return fmt.Errorf("stream: write columnar: %w", err)
		}
	}
	for i := range s.chunks {
		c := &s.chunks[i]
		for _, v := range c.Owners {
			if err := put(v); err != nil {
				return fmt.Errorf("stream: write columnar: %w", err)
			}
		}
		for _, v := range c.Nbrs {
			if err := put(v); err != nil {
				return fmt.Errorf("stream: write columnar: %w", err)
			}
		}
		for _, r := range c.Runs {
			if err := put(uint32(r)); err != nil {
				return fmt.Errorf("stream: write columnar: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: write columnar: %w", err)
	}
	return nil
}

// WriteFile writes s to path in the "adjC" columnar format.
func WriteFile(path string, s *Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if err := WriteColumnar(f, s); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// Mapped is a Stream backed by a memory-mapped "adjC" file. The Stream is
// valid until Close; Close unmaps the file, after which the stream's
// chunks (and any not-yet-materialized Items view) must not be touched.
type Mapped struct {
	*Stream
	data   []byte
	mapped bool
}

// Close releases the mapping (a no-op for the read-into-memory fallback).
func (m *Mapped) Close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	return munmapFile(data)
}

// OpenMapped opens an "adjC" columnar stream file. On platforms with mmap
// support the columns alias the mapped pages directly (on little-endian
// hosts; big-endian hosts decode a copy); elsewhere the file is read into
// memory. The returned stream is immutable and safe for concurrent replay.
func OpenMapped(path string) (*Mapped, error) {
	data, mapped, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	s, err := decodeColumnar(data)
	if err != nil {
		if mapped {
			_ = munmapFile(data)
		}
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	return &Mapped{Stream: s, data: data, mapped: mapped}, nil
}

// decodeColumnar builds a Stream over the raw bytes of an "adjC" file,
// validating structure (sizes, offsets, run monotonicity, header totals)
// without touching the column payload.
func decodeColumnar(data []byte) (*Stream, error) {
	if len(data) < mappedHeaderSize {
		return nil, fmt.Errorf("columnar: file too short (%d bytes)", len(data))
	}
	if string(data[0:4]) != mappedMagic {
		return nil, fmt.Errorf("columnar: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != mappedVersion {
		return nil, fmt.Errorf("columnar: unsupported version %d", v)
	}
	items := binary.LittleEndian.Uint64(data[16:24])
	m := binary.LittleEndian.Uint64(data[24:32])
	lists := binary.LittleEndian.Uint64(data[32:40])
	nchunks := binary.LittleEndian.Uint64(data[40:48])
	if items > math.MaxInt32 {
		return nil, fmt.Errorf("columnar: item count %d too large", items)
	}
	if items%2 != 0 || m != items/2 {
		return nil, fmt.Errorf("columnar: m=%d inconsistent with %d items", m, items)
	}
	if lists > items || (items > 0 && lists == 0) {
		return nil, fmt.Errorf("columnar: list count %d inconsistent with %d items", lists, items)
	}
	if nchunks > items {
		return nil, fmt.Errorf("columnar: %d chunks for %d items", nchunks, items)
	}
	dirEnd := uint64(mappedHeaderSize) + nchunks*mappedDirEntrySize
	if uint64(len(data)) < dirEnd {
		return nil, fmt.Errorf("columnar: truncated directory")
	}
	chunks := make([]Chunk, 0, nchunks)
	var sumItems, sumRuns uint64
	off := dirEnd
	for ci := uint64(0); ci < nchunks; ci++ {
		ent := data[mappedHeaderSize+ci*mappedDirEntrySize:]
		nItems := uint64(binary.LittleEndian.Uint32(ent[0:4]))
		nRuns := uint64(binary.LittleEndian.Uint32(ent[4:8]))
		if nItems == 0 {
			return nil, fmt.Errorf("columnar: chunk %d is empty", ci)
		}
		if nRuns > nItems {
			return nil, fmt.Errorf("columnar: chunk %d has %d runs for %d items", ci, nRuns, nItems)
		}
		sumItems += nItems
		sumRuns += nRuns
		need := (2*nItems + nRuns) * 4
		if uint64(len(data))-off < need {
			return nil, fmt.Errorf("columnar: truncated payload at chunk %d", ci)
		}
		owners := u32View(data[off : off+nItems*4])
		nbrs := u32View(data[off+nItems*4 : off+2*nItems*4])
		runs := i32View(data[off+2*nItems*4 : off+need])
		off += need
		for i, r := range runs {
			if r < 0 || uint64(r) >= nItems || (i > 0 && r <= runs[i-1]) {
				return nil, fmt.Errorf("columnar: chunk %d run %d out of order", ci, i)
			}
		}
		chunks = append(chunks, Chunk{Owners: owners, Nbrs: nbrs, Runs: runs})
	}
	if off != uint64(len(data)) {
		return nil, fmt.Errorf("columnar: %d trailing bytes", uint64(len(data))-off)
	}
	if sumItems != items {
		return nil, fmt.Errorf("columnar: chunks hold %d items, header says %d", sumItems, items)
	}
	if sumRuns != lists {
		return nil, fmt.Errorf("columnar: chunks hold %d runs, header says %d lists", sumRuns, lists)
	}
	if items > 0 && (len(chunks[0].Runs) == 0 || chunks[0].Runs[0] != 0) {
		return nil, fmt.Errorf("columnar: first chunk does not start a list")
	}
	return &Stream{
		chunks: chunks,
		n:      int(items),
		lists:  int(lists),
		m:      int64(m),
	}, nil
}

// u32View reinterprets b (len divisible by 4) as []uint32: a zero-copy
// alias on aligned little-endian hosts, a decoded copy otherwise.
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// i32View is u32View for the run-offset column. Run values are validated
// to be non-negative after decoding.
func i32View(b []byte) []int32 {
	u := u32View(b)
	if len(u) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&u[0])), len(u))
}

// ReadColumnar reads an entire "adjC" stream from r into memory. Unlike
// OpenMapped the returned stream owns its bytes and needs no Close.
func ReadColumnar(r io.Reader) (*Stream, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("stream: read columnar: %w", err)
	}
	s, err := decodeColumnar(data)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return s, nil
}

// ReadAny reads a stream from r in any supported format, sniffing the
// 4-byte magic: "adjC" columnar, "adj1" compact binary, anything else text.
// The returned stream owns its memory; use OpenFile or OpenMapped to map a
// columnar file instead of copying it.
func ReadAny(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("stream: %w", err)
	}
	switch {
	case len(magic) == 4 && string(magic) == mappedMagic:
		return ReadColumnar(br)
	case len(magic) == 4 && string(magic) == string(binaryMagic[:]):
		return ReadBinary(br)
	default:
		return ReadText(br)
	}
}

// OpenFile opens a stream file of any supported format, sniffing the
// magic: "adjC" (columnar, memory-mapped), "adj1" (compact varint binary),
// or text ("owner neighbor" per line). The returned closer releases any
// mapping and must be called after the stream is no longer used; it is
// never nil.
func OpenFile(path string) (*Stream, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: %w", err)
	}
	var magic [4]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("stream: %w", err)
	}
	noop := func() error { return nil }
	switch {
	case n == 4 && string(magic[:]) == mappedMagic:
		f.Close()
		m, err := OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return m.Stream, m.Close, nil
	case n == 4 && magic == binaryMagic:
		defer f.Close()
		s, err := ReadBinary(bufio.NewReader(f))
		return s, noop, err
	default:
		defer f.Close()
		s, err := ReadText(f)
		return s, noop, err
	}
}
