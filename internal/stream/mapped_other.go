//go:build !unix

package stream

import "os"

// mmapFile on platforms without the unix mmap syscalls reads the file into
// memory; the false return tells the caller no munmap is needed.
func mmapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func munmapFile(data []byte) error { return nil }
