package stream

import (
	"math"
	"reflect"
	"testing"

	"adjstream/internal/graph"
)

func TestBuildChunksBoundaries(t *testing.T) {
	// Three lists of degree 3 over chunkItems = 4: list 2's run crosses the
	// first chunk boundary, so chunk 1 must open without a run at 0.
	items := []Item{
		{1, 2}, {1, 3}, {1, 4},
		{2, 1}, {2, 3}, {2, 4},
		{3, 1}, {3, 2}, {3, 4},
		{4, 1}, {4, 2}, {4, 3},
	}
	chunks := buildChunks(items, 4)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	wantRuns := [][]int32{{0, 3}, {2}, {1}}
	for i, c := range chunks {
		if len(c.Owners) != 4 || len(c.Nbrs) != 4 {
			t.Fatalf("chunk %d: columns have %d/%d items, want 4", i, len(c.Owners), len(c.Nbrs))
		}
		if !reflect.DeepEqual(c.Runs, wantRuns[i]) {
			t.Errorf("chunk %d runs = %v, want %v", i, c.Runs, wantRuns[i])
		}
	}
	if got := decodeChunks(chunks, len(items)); !reflect.DeepEqual(got, items) {
		t.Errorf("decodeChunks round trip diverged:\n got %v\nwant %v", got, items)
	}
}

func TestBuildChunksUnchunkable(t *testing.T) {
	big := Item{Owner: math.MaxUint32 + 1, Nbr: 1}
	if chunks := buildChunks([]Item{big}, 4); chunks != nil {
		t.Fatalf("got %d chunks for an id beyond uint32, want nil", len(chunks))
	}
	if chunks := buildChunks([]Item{{Owner: 1, Nbr: -2}}, 4); chunks != nil {
		t.Fatal("got chunks for a negative id, want nil")
	}
}

func TestRunsWindow(t *testing.T) {
	runs := []int32{0, 3, 5, 9}
	cases := []struct {
		lo, hi int
		want   []int32
	}{
		{0, 10, []int32{0, 3, 5, 9}},
		{0, 5, []int32{0, 3}},
		{3, 7, []int32{0, 2}},
		{4, 5, nil},
		{5, 10, []int32{0, 4}},
		{9, 10, []int32{0}},
		{10, 12, nil},
	}
	for _, tc := range cases {
		got := runsWindow(runs, tc.lo, tc.hi)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("runsWindow(%v, %d, %d) = %v, want %v", runs, tc.lo, tc.hi, got, tc.want)
		}
	}
	// The whole-chunk window must alias, not copy.
	if got := runsWindow(runs, 0, 10); &got[0] != &runs[0] {
		t.Error("runsWindow(lo=0) copied instead of aliasing")
	}
}

// TestUnchunkableStreamFallsBack drives a stream whose ids exceed uint32
// through both drivers: it has no columnar form, so the batch-capable
// estimator must still see the exact item-path callback sequence.
func TestUnchunkableStreamFallsBack(t *testing.T) {
	big := graphVBig()
	s, err := FromItems([]Item{{Owner: 1, Nbr: big}, {Owner: big, Nbr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Chunks() != nil {
		t.Fatal("stream with an id beyond uint32 has a columnar form")
	}
	batch := &sumEstimator{tracer: tracer{passes: 2}}
	item := &sumEstimator{tracer: tracer{passes: 2}}
	Run(s, batch)
	Run(s, ItemOnly(item))
	if batch.Estimate() != item.Estimate() {
		t.Errorf("fallback estimate %v != item estimate %v", batch.Estimate(), item.Estimate())
	}
	if !reflect.DeepEqual(batch.events, item.events) {
		t.Errorf("fallback trace diverges from item trace")
	}
	par := []Estimator{&sumEstimator{tracer: tracer{passes: 2}}}
	RunBroadcast(s, par)
	if par[0].Estimate() != item.Estimate() {
		t.Errorf("broadcast fallback estimate %v != item estimate %v", par[0].Estimate(), item.Estimate())
	}
}

// graphVBig returns an id one past the uint32 range.
func graphVBig() graph.V { return graph.V(math.MaxUint32) + 1 }

// TestChunkedStreamMultiChunk pins the chunk geometry of a stream larger
// than one chunk and that ListOrder agrees with the row-form scan.
func TestChunkedStreamMultiChunk(t *testing.T) {
	g := randomGraph(80, 0.3, 4)
	s := Random(g, 6)
	if s.Len() <= DefaultChunkItems {
		t.Fatalf("stream has %d items, want > %d", s.Len(), DefaultChunkItems)
	}
	chunks := s.Chunks()
	total, runs := 0, 0
	for _, c := range chunks {
		total += len(c.Owners)
		runs += len(c.Runs)
	}
	if total != s.Len() {
		t.Errorf("chunks hold %d items, stream has %d", total, s.Len())
	}
	if runs != s.Lists() {
		t.Errorf("chunks hold %d runs, stream has %d lists", runs, s.Lists())
	}
	var fromItems []int64
	var cur int64 = -1
	for _, it := range s.Items() {
		if int64(it.Owner) != cur {
			cur = int64(it.Owner)
			fromItems = append(fromItems, cur)
		}
	}
	order := s.ListOrder()
	if len(order) != len(fromItems) {
		t.Fatalf("ListOrder has %d entries, row scan %d", len(order), len(fromItems))
	}
	for i := range order {
		if int64(order[i]) != fromItems[i] {
			t.Fatalf("ListOrder[%d] = %d, row scan %d", i, order[i], fromItems[i])
		}
	}
}
