//go:build unix

package stream

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only. The second return reports whether the bytes
// are a real mapping (and must be released with munmapFile) rather than a
// heap copy; empty files yield a nil, unmapped slice since zero-length
// mappings are invalid.
func mmapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if fi.Size() == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
