package stream

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks that the stream parser never panics, and that any
// input it accepts round-trips through WriteText and re-validates.
func FuzzReadText(f *testing.F) {
	f.Add("1 2\n2 1\n")
	f.Add("1 2\n1 3\n2 1\n2 3\n3 1\n3 2\n")
	f.Add("# comment\n\n1 2\n2 1\n")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("9223372036854775807 1\n1 9223372036854775807\n")
	f.Add("1 2\n3 1\n1 3\n2 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must satisfy the model promise and round-trip.
		if err := Validate(s.Items()); err != nil {
			t.Fatalf("accepted stream fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if s2.Len() != s.Len() || s2.M() != s.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", s2.Len(), s2.M(), s.Len(), s.M())
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser never panics and that every
// accepted graph is simple (builder invariants hold).
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("1 1\n")
	f.Add("1 2\n2 1\n1 2\n")
	f.Add("# c\n\n-5 7\n")
	f.Add("x y\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		var m int64
		for _, v := range g.Vertices() {
			for _, u := range g.Neighbors(v) {
				if u == v {
					t.Fatal("self-loop in parsed graph")
				}
				if !g.HasEdge(u, v) {
					t.Fatal("asymmetric adjacency")
				}
				if v < u {
					m++
				}
			}
		}
		if m != g.M() {
			t.Fatalf("edge count mismatch: %d vs %d", m, g.M())
		}
	})
}
