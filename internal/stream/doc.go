// Package stream implements the adjacency list streaming model of the paper:
// the input graph arrives as a sequence of ordered pairs (owner, neighbor);
// every edge {u,v} appears exactly twice, once in each endpoint's adjacency
// list; and all pairs sharing an owner are contiguous. Within a list, and
// across lists, the order is arbitrary (adversarial) unless a random order
// is requested explicitly.
//
// The package provides stream construction from a graph under controllable
// orders, validation of the model's promise, multi-pass drivers with
// item-at-a-time callbacks, and a text serialization.
//
// # Drivers
//
// [Run] drives one Algorithm over one stream, pass by pass. Multi-copy runs
// (median amplification, trials) have two drivers with identical per-copy
// results: [RunParallel] replays the stream once per copy, while
// [RunBroadcast] reads the stream once per pass and fans each batch out to
// every copy — the [DriverStats] it returns quantify the read reduction.
//
// # Telemetry
//
// When the global registry of internal/telemetry is enabled, both drivers
// record per-pass wall times, items/sec, delivery counters, and the peak
// fan-out queue depth under "driver.run.*" and "driver.broadcast.*". With
// telemetry disabled (the default) the instrumentation is nil-handle
// no-ops, off the per-item path entirely.
package stream
