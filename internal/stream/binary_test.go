package stream

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(40, 0.2, 7)
	s := Random(g, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("len %d vs %d", s2.Len(), s.Len())
	}
	for i := range s.Items() {
		if s.Items()[i] != s2.Items()[i] {
			t.Fatalf("item %d differs: %v vs %v", i, s2.Items()[i], s.Items()[i])
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	g := randomGraph(80, 0.3, 2)
	s := Sorted(g)
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("xxxx"),
		append([]byte("adj1"), 0xFF),          // truncated varint
		append([]byte("adj1"), 4, 2, 1, 2),    // list shorter than promised
		append([]byte("adj1"), 2, 2, 0, 2, 4), // trailing byte... constructed below
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBinaryRejectsTrailingData(t *testing.T) {
	g := randomGraph(10, 0.4, 1)
	s := Sorted(g)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected trailing-data error")
	}
}

func TestBinaryRejectsInvalidStream(t *testing.T) {
	// Hand-encode a stream whose edge appears only once: must be rejected
	// by the model validation after decoding.
	var buf bytes.Buffer
	buf.Write([]byte("adj1"))
	buf.WriteByte(1) // 1 item
	buf.WriteByte(2) // owner 1 (zig-zag: 2 → 1)
	buf.WriteByte(1) // list length 1
	buf.WriteByte(4) // neighbor delta 2 (zig-zag: 4 → 2)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(15, 0.35, seed%128+1)
		if g.M() == 0 {
			return true
		}
		s := Random(g, seed)
		var buf bytes.Buffer
		if WriteBinary(&buf, s) != nil {
			return false
		}
		s2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return s2.Len() == s.Len() && s2.M() == s.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzReadBinary: the binary parser must never panic and must only accept
// valid streams.
func FuzzReadBinary(f *testing.F) {
	g := randomGraph(8, 0.5, 3)
	var buf bytes.Buffer
	_ = WriteBinary(&buf, Sorted(g))
	f.Add(buf.Bytes())
	f.Add([]byte("adj1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		s, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := Validate(s.Items()); err != nil {
			t.Fatalf("accepted invalid stream: %v", err)
		}
	})
}
