package stream

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"adjstream/internal/graph"
)

// columnarBytes serializes s to the adjC format in memory.
func columnarBytes(t testing.TB, s *Stream) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumnar(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnarRoundTrip writes a multi-chunk stream and maps it back:
// every accessor and a driven estimator must agree with the original.
func TestColumnarRoundTrip(t *testing.T) {
	g := randomGraph(80, 0.3, 4)
	s := Random(g, 6)
	if s.Len() <= DefaultChunkItems {
		t.Fatalf("want a multi-chunk stream, got %d items", s.Len())
	}
	path := filepath.Join(t.TempDir(), "round.adjc")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != s.Len() || m.M() != s.M() || m.Lists() != s.Lists() {
		t.Fatalf("header mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			m.Len(), m.M(), m.Lists(), s.Len(), s.M(), s.Lists())
	}
	if !reflect.DeepEqual(m.ListOrder(), s.ListOrder()) {
		t.Error("ListOrder diverges after round trip")
	}
	if !reflect.DeepEqual(m.Items(), s.Items()) {
		t.Error("Items diverges after round trip")
	}
	orig := &sumEstimator{tracer: tracer{passes: 2}}
	mapped := &sumEstimator{tracer: tracer{passes: 2}}
	Run(s, orig)
	Run(m.Stream, mapped)
	if orig.Estimate() != mapped.Estimate() {
		t.Errorf("mapped replay estimate %v != in-memory %v", mapped.Estimate(), orig.Estimate())
	}
}

// TestColumnarRoundTripEmpty pins the zero-item stream.
func TestColumnarRoundTripEmpty(t *testing.T) {
	s, err := FromItems(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "empty.adjc")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 || m.M() != 0 || m.Lists() != 0 {
		t.Fatalf("empty stream round-tripped to (%d,%d,%d)", m.Len(), m.M(), m.Lists())
	}
}

func TestWriteColumnarRejectsUnchunkable(t *testing.T) {
	big := graph.V(math.MaxUint32) + 1
	s, err := FromItems([]Item{{Owner: 1, Nbr: big}, {Owner: big, Nbr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteColumnar(&bytes.Buffer{}, s); err == nil {
		t.Fatal("WriteColumnar accepted a stream with ids beyond uint32")
	}
}

// TestOpenFileSniffsFormats round-trips one stream through all three file
// formats and checks OpenFile dispatches each by magic.
func TestOpenFileSniffsFormats(t *testing.T) {
	g := randomGraph(20, 0.3, 2)
	s := Sorted(g)
	dir := t.TempDir()

	colPath := filepath.Join(dir, "s.adjc")
	if err := WriteFile(colPath, s); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "s.adj")
	var bin bytes.Buffer
	if err := WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	txtPath := filepath.Join(dir, "s.txt")
	var txt bytes.Buffer
	if err := WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{colPath, binPath, txtPath} {
		got, closeFn, err := OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile(%s): %v", path, err)
		}
		if !reflect.DeepEqual(got.Items(), s.Items()) {
			t.Errorf("OpenFile(%s): items diverge", path)
		}
		if err := closeFn(); err != nil {
			t.Errorf("close %s: %v", path, err)
		}
	}
}

// TestOpenMappedErrors corrupts a valid file one field at a time and checks
// each corruption is rejected.
func TestOpenMappedErrors(t *testing.T) {
	g := randomGraph(20, 0.3, 2)
	s := Sorted(g)
	valid := columnarBytes(t, s)
	open := func(t *testing.T, data []byte) error {
		t.Helper()
		path := filepath.Join(t.TempDir(), "case.adjc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapped(path)
		if err == nil {
			m.Close()
		}
		return err
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:20]},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'x'; return b })},
		{"bad version", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 9)
			return b
		})},
		{"items m mismatch", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:32], 1)
			return b
		})},
		{"truncated payload", valid[:len(valid)-4]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0, 0, 0, 0)},
		{"run out of order", corrupt(func(b []byte) []byte {
			// First run of chunk 0 must be 0; bump it.
			nItems := binary.LittleEndian.Uint32(b[48:52])
			runOff := 48 + 8 + 8*nItems
			binary.LittleEndian.PutUint32(b[runOff:], 2)
			return b
		})},
		{"lists mismatch", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:40], 1)
			return b
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := open(t, tc.data); err == nil {
				t.Fatalf("OpenMapped accepted a %s file", tc.name)
			}
		})
	}
	// The uncorrupted bytes must still open (guards the corruptions above
	// against testing a stale layout).
	if err := open(t, valid); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestMappedDoubleClose(t *testing.T) {
	g := randomGraph(10, 0.4, 1)
	path := filepath.Join(t.TempDir(), "s.adjc")
	if err := WriteFile(path, Sorted(g)); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// FuzzColumnarDecode checks the decoder never panics and that accepted
// inputs are structurally consistent with their headers.
func FuzzColumnarDecode(f *testing.F) {
	g := randomGraph(12, 0.4, 3)
	f.Add(columnarBytes(f, Sorted(g)))
	f.Add(columnarBytes(f, Random(g, 7)))
	empty, _ := FromItems(nil)
	f.Add(columnarBytes(f, empty))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeColumnar(data)
		if err != nil {
			return
		}
		total, runs := 0, 0
		for _, c := range s.Chunks() {
			total += len(c.Owners)
			runs += len(c.Runs)
		}
		if total != s.Len() {
			t.Fatalf("accepted file: chunks hold %d items, header says %d", total, s.Len())
		}
		if runs != s.Lists() {
			t.Fatalf("accepted file: chunks hold %d runs, header says %d", runs, s.Lists())
		}
		if got := len(s.Items()); got != s.Len() {
			t.Fatalf("accepted file: decoded %d items, header says %d", got, s.Len())
		}
		if got := len(s.ListOrder()); got != s.Lists() {
			t.Fatalf("accepted file: %d list-order entries, header says %d", got, s.Lists())
		}
	})
}
