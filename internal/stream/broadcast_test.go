package stream

import (
	"fmt"
	"reflect"
	"testing"

	"adjstream/internal/graph"
)

// tracer records the full callback sequence it observes, so broadcast runs
// can be compared event-for-event against sequential Run. It never calls
// into testing.T: broadcast invokes it from worker goroutines.
type tracer struct {
	passes int
	events []string
}

func (r *tracer) Passes() int         { return r.passes }
func (r *tracer) StartPass(p int)     { r.events = append(r.events, fmt.Sprintf("P%d", p)) }
func (r *tracer) EndPass(p int)       { r.events = append(r.events, fmt.Sprintf("p%d", p)) }
func (r *tracer) StartList(v graph.V) { r.events = append(r.events, fmt.Sprintf("L%d", v)) }
func (r *tracer) EndList(v graph.V)   { r.events = append(r.events, fmt.Sprintf("l%d", v)) }
func (r *tracer) Edge(o, n graph.V)   { r.events = append(r.events, fmt.Sprintf("e%d-%d", o, n)) }

// sumEstimator is a deterministic estimator: its estimate hashes the exact
// item sequence it saw (order-sensitive), so broadcast-vs-sequential
// equality of estimates implies equality of the delivered streams.
type sumEstimator struct {
	tracer
	acc float64
	cur ListCursor
}

func (e *sumEstimator) StartPass(p int) {
	e.tracer.StartPass(p)
	e.cur = ListCursor{}
}

func (e *sumEstimator) Edge(o, n graph.V) {
	e.acc = e.acc*31 + float64(o)*2 + float64(n)
}

// EdgeBatch implements BatchAlgorithm with the same accumulation (and the
// same trace events through the embedded tracer) as the item path, so the
// driver benchmarks and equality tests can A/B the two paths on one type.
func (e *sumEstimator) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			e.acc = e.acc*31 + float64(owners[i])*2 + float64(nbrs[i])
		}
		if e.cur.Open {
			e.EndList(e.cur.Owner)
		}
		e.cur = ListCursor{Owner: graph.V(owners[b]), Open: true}
		e.StartList(e.cur.Owner)
	}
	for ; i < len(owners); i++ {
		e.acc = e.acc*31 + float64(owners[i])*2 + float64(nbrs[i])
	}
}

func (e *sumEstimator) Estimate() float64 { return e.acc }
func (e *sumEstimator) SpaceWords() int64 { return 1 }

var _ BatchAlgorithm = (*sumEstimator)(nil)

func singleEdgeStream(t *testing.T) *Stream {
	t.Helper()
	s, err := FromItems([]Item{{Owner: 1, Nbr: 2}, {Owner: 2, Nbr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func emptyStream(t *testing.T) *Stream {
	t.Helper()
	s, err := FromItems(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBroadcastTraceMatchesSequential checks, event for event, that every
// copy sees exactly the callback sequence sequential Run produces — across
// copy counts, batch sizes, and worker-pool sizes, including batch sizes
// that split adjacency lists mid-list.
func TestBroadcastTraceMatchesSequential(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	s := Random(g, 3)
	want := &tracer{passes: 2}
	Run(s, want)
	for _, k := range []int{1, 2, 7, 16} {
		for _, cfg := range []BroadcastConfig{
			{},
			{BatchSize: 1},
			{BatchSize: 3, Workers: 2, QueueDepth: 1},
			{BatchSize: s.Len(), Workers: 1},
		} {
			copies := make([]Estimator, k)
			tracers := make([]*tracer, k)
			for i := range copies {
				tr := &tracer{passes: 2}
				tracers[i] = tr
				copies[i] = struct {
					*tracer
					dummyEstimate
				}{tr, dummyEstimate{}}
			}
			RunBroadcastConfig(s, copies, cfg)
			for i, tr := range tracers {
				if !reflect.DeepEqual(tr.events, want.events) {
					t.Fatalf("k=%d cfg=%+v copy %d: trace diverges from sequential Run", k, cfg, i)
				}
			}
		}
	}
}

// dummyEstimate upgrades a tracer to an Estimator.
type dummyEstimate struct{}

func (dummyEstimate) Estimate() float64 { return 0 }
func (dummyEstimate) SpaceWords() int64 { return 0 }

func TestBroadcastEstimatesMatchSequential(t *testing.T) {
	g := randomGraph(40, 0.15, 9)
	s := Random(g, 7)
	const k = 12
	seq := make([]*sumEstimator, k)
	par := make([]Estimator, k)
	for i := 0; i < k; i++ {
		seq[i] = &sumEstimator{tracer: tracer{passes: 2}}
		e := &sumEstimator{tracer: tracer{passes: 2}}
		par[i] = e
		Run(s, seq[i])
	}
	RunBroadcast(s, par)
	for i := 0; i < k; i++ {
		if got, want := par[i].Estimate(), seq[i].Estimate(); got != want {
			t.Fatalf("copy %d: broadcast estimate %v != sequential %v", i, got, want)
		}
	}
}

func TestBroadcastEmptyStream(t *testing.T) {
	s := emptyStream(t)
	tr := &tracer{passes: 3}
	st := RunBroadcastConfig(s, []Estimator{struct {
		*tracer
		dummyEstimate
	}{tr, dummyEstimate{}}}, BroadcastConfig{})
	want := []string{"P0", "p0", "P1", "p1", "P2", "p2"}
	if !reflect.DeepEqual(tr.events, want) {
		t.Fatalf("events = %v, want %v", tr.events, want)
	}
	if st.StreamItemsRead != 0 || st.ItemsDelivered != 0 || st.Passes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBroadcastSingleEdgeStream(t *testing.T) {
	s := singleEdgeStream(t)
	want := &tracer{passes: 2}
	Run(s, want)
	tr := &tracer{passes: 2}
	RunBroadcast(s, []Estimator{struct {
		*tracer
		dummyEstimate
	}{tr, dummyEstimate{}}})
	if !reflect.DeepEqual(tr.events, want.events) {
		t.Fatalf("events = %v, want %v", tr.events, want.events)
	}
}

func TestBroadcastNoEstimators(t *testing.T) {
	s := singleEdgeStream(t)
	st := RunBroadcastConfig(s, nil, BroadcastConfig{})
	if st != (DriverStats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
}

// TestBroadcastMixedPassCounts drives copies that disagree on pass count:
// each copy must see exactly its own passes, and only the max pass count of
// stream traversals may be performed.
func TestBroadcastMixedPassCounts(t *testing.T) {
	g := triangleGraph()
	s := Sorted(g)
	one := &tracer{passes: 1}
	three := &tracer{passes: 3}
	st := RunBroadcastConfig(s, []Estimator{
		struct {
			*tracer
			dummyEstimate
		}{one, dummyEstimate{}},
		struct {
			*tracer
			dummyEstimate
		}{three, dummyEstimate{}},
	}, BroadcastConfig{})
	wantOne := &tracer{passes: 1}
	Run(s, wantOne)
	wantThree := &tracer{passes: 3}
	Run(s, wantThree)
	if !reflect.DeepEqual(one.events, wantOne.events) {
		t.Fatalf("1-pass copy saw %v, want %v", one.events, wantOne.events)
	}
	if !reflect.DeepEqual(three.events, wantThree.events) {
		t.Fatalf("3-pass copy saw %v, want %v", three.events, wantThree.events)
	}
	if st.Passes != 3 {
		t.Fatalf("Passes = %d, want 3", st.Passes)
	}
	// Pass 0 read is shared by both copies; passes 1 and 2 serve only the
	// 3-pass copy.
	if want := int64(3 * s.Len()); st.StreamItemsRead != want {
		t.Fatalf("StreamItemsRead = %d, want %d", st.StreamItemsRead, want)
	}
	if want := int64(4 * s.Len()); st.ItemsDelivered != want {
		t.Fatalf("ItemsDelivered = %d, want %d", st.ItemsDelivered, want)
	}
}

// TestBroadcastCountersBeatReplay is the acceptance check: at k = 32 the
// broadcast driver must perform at least 2× fewer stream-item reads than
// the replay driver on the same copies.
func TestBroadcastCountersBeatReplay(t *testing.T) {
	g := randomGraph(50, 0.2, 4)
	s := Random(g, 1)
	const k = 32
	mk := func() []Estimator {
		ests := make([]Estimator, k)
		for i := range ests {
			ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
		}
		return ests
	}
	broadcast := RunBroadcastConfig(s, mk(), BroadcastConfig{})
	replay := ReplayStats(s, mk())
	if broadcast.StreamItemsRead*2 > replay.StreamItemsRead {
		t.Fatalf("broadcast reads %d, replay reads %d: want ≥ 2× reduction",
			broadcast.StreamItemsRead, replay.StreamItemsRead)
	}
	// Both drivers deliver every item to every copy on every pass.
	if broadcast.ItemsDelivered != replay.ItemsDelivered {
		t.Fatalf("ItemsDelivered: broadcast %d != replay %d",
			broadcast.ItemsDelivered, replay.ItemsDelivered)
	}
	if broadcast.Batches == 0 {
		t.Fatal("broadcast reported zero batches")
	}
}

// TestMedianBroadcastMatchesMedianReplay pins the two median drivers to the
// same result on deterministic copies.
func TestMedianBroadcastMatchesMedianReplay(t *testing.T) {
	g := randomGraph(35, 0.2, 6)
	s := Random(g, 2)
	mk := func() []Estimator {
		ests := make([]Estimator, 9)
		for i := range ests {
			ests[i] = &sumEstimator{tracer: tracer{passes: 2}, acc: float64(i)}
		}
		return ests
	}
	bEst, bSp, st := MedianBroadcast(s, mk())
	rEst, rSp := MedianReplay(s, mk())
	if bEst != rEst || bSp != rSp {
		t.Fatalf("broadcast (%v, %d) != replay (%v, %d)", bEst, bSp, rEst, rSp)
	}
	if st.Copies != 9 || st.Passes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDriverStatsMerge(t *testing.T) {
	a := DriverStats{Copies: 2, Passes: 1, StreamItemsRead: 10, ItemsDelivered: 20, Batches: 3, PeakQueueDepth: 2}
	b := DriverStats{Copies: 3, Passes: 2, StreamItemsRead: 5, ItemsDelivered: 15, Batches: 2, PeakQueueDepth: 5}
	a.Merge(b)
	want := DriverStats{Copies: 5, Passes: 2, StreamItemsRead: 15, ItemsDelivered: 35, Batches: 5, PeakQueueDepth: 5}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}

// TestBroadcastRace is the -race regression test: many concurrent copies,
// small batches, more workers than cores, shared immutable stream.
func TestBroadcastRace(t *testing.T) {
	g := randomGraph(40, 0.25, 8)
	s := Random(g, 5)
	ests := make([]Estimator, 64)
	for i := range ests {
		ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
	}
	RunBroadcastConfig(s, ests, BroadcastConfig{BatchSize: 16, Workers: 32, QueueDepth: 2})
	first := ests[0].Estimate()
	for i, e := range ests {
		if e.Estimate() != first {
			t.Fatalf("copy %d diverged: %v != %v", i, e.Estimate(), first)
		}
	}
}
