package stream

// Columnar chunked stream representation. A Stream's canonical storage is a
// sequence of Chunks: flat little-endian-friendly []uint32 owner/neighbor
// columns plus the in-chunk offsets where a new adjacency list starts. The
// chunked form is what the drivers iterate (batch-capable algorithms get
// whole columns at a time, everything else gets the legacy item-at-a-time
// callbacks decoded from the same columns) and what the mmap-able binary
// file format (mapped.go) stores verbatim.
//
// Vertex ids are graph.V (int64) in the model but uint32 in the columns;
// streams whose ids do not fit keep only the row ([]Item) form and every
// driver transparently falls back to the item path for them.

import (
	"math"

	"adjstream/internal/graph"
)

// DefaultChunkItems is the number of items per chunk built by the in-memory
// stream constructors. It equals DefaultBatchSize so the broadcast driver's
// default configuration fans out whole chunks without re-slicing.
const DefaultChunkItems = 1024

// Chunk is one columnar block of a stream: Owners[i]/Nbrs[i] is the i-th
// item, and Runs lists the positions where a new adjacency list begins.
// Adjacency lists may span chunks: a chunk that continues its predecessor's
// open list simply has no run at position 0.
type Chunk struct {
	// Owners holds the list-owner column.
	Owners []uint32
	// Nbrs holds the neighbor column.
	Nbrs []uint32
	// Runs holds the strictly increasing in-chunk indices at which a new
	// adjacency list starts. The first chunk of a non-empty stream always
	// has Runs[0] == 0.
	Runs []int32
}

// BatchAlgorithm is the driver fast path: an Algorithm that can consume a
// columnar batch in one call instead of one Edge callback per item.
//
// The contract mirrors the item protocol exactly. The driver calls
// StartPass, then EdgeBatch once per batch in stream order; inside
// EdgeBatch the algorithm must issue its own StartList/EndList/Edge
// transitions — StartList at every run offset (closing the previously open
// list first, if any), Edge for every column position. Because a batch can
// end mid-list, the algorithm must carry the open-list state across
// EdgeBatch calls (see ListCursor) and reset it in StartPass. After the
// final batch of a pass the DRIVER closes the still-open list by calling
// EndList with the last owner, then calls EndPass — so an implementation's
// EndList/EndPass need no batch-specific handling.
//
// A correct EdgeBatch produces, for any batch split of a stream, the exact
// callback-visible state sequence of the item path; the root
// batch-equality tests enforce this per estimator per driver.
type BatchAlgorithm interface {
	Algorithm
	// EdgeBatch consumes one columnar batch: owners[i]/nbrs[i] is item i,
	// runs the in-batch offsets where a new adjacency list starts.
	EdgeBatch(owners, nbrs []uint32, runs []int32)
}

// ListCursor is the open-list state a BatchAlgorithm carries across
// EdgeBatch calls: the owner of the currently open adjacency list, if any.
// Reset it (to the zero value) in StartPass.
type ListCursor struct {
	// Owner is the owner of the open list; meaningful only when Open.
	Owner graph.V
	// Open reports whether an adjacency list is currently open.
	Open bool
}

// chunkable reports whether every vertex id in items fits the uint32
// columns.
func chunkable(items []Item) bool {
	for _, it := range items {
		if it.Owner < 0 || it.Owner > math.MaxUint32 || it.Nbr < 0 || it.Nbr > math.MaxUint32 {
			return false
		}
	}
	return true
}

// buildChunks encodes items into columnar chunks of at most chunkItems
// items each. It returns nil when some id does not fit uint32 (the caller
// then keeps the row form only).
func buildChunks(items []Item, chunkItems int) []Chunk {
	if !chunkable(items) {
		return nil
	}
	if chunkItems <= 0 {
		chunkItems = DefaultChunkItems
	}
	chunks := make([]Chunk, 0, (len(items)+chunkItems-1)/chunkItems)
	var prev graph.V
	first := true
	for base := 0; base < len(items); base += chunkItems {
		end := base + chunkItems
		if end > len(items) {
			end = len(items)
		}
		seg := items[base:end]
		c := Chunk{
			Owners: make([]uint32, len(seg)),
			Nbrs:   make([]uint32, len(seg)),
		}
		for i, it := range seg {
			c.Owners[i] = uint32(it.Owner)
			c.Nbrs[i] = uint32(it.Nbr)
			if first || it.Owner != prev {
				c.Runs = append(c.Runs, int32(i))
				prev = it.Owner
				first = false
			}
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// decodeChunks materializes the row form of chunks (the Items() adapter).
func decodeChunks(chunks []Chunk, n int) []Item {
	items := make([]Item, 0, n)
	for i := range chunks {
		c := &chunks[i]
		for j := range c.Owners {
			items = append(items, Item{Owner: graph.V(c.Owners[j]), Nbr: graph.V(c.Nbrs[j])})
		}
	}
	return items
}

// runsWindow returns the runs of c that fall in the item window [lo, hi),
// rebased to lo. When lo == 0 the returned slice aliases c.Runs (no
// allocation — the whole-chunk fan-out path).
func runsWindow(runs []int32, lo, hi int) []int32 {
	a := 0
	for a < len(runs) && int(runs[a]) < lo {
		a++
	}
	b := a
	for b < len(runs) && int(runs[b]) < hi {
		b++
	}
	if lo == 0 {
		return runs[a:b]
	}
	if a == b {
		return nil
	}
	out := make([]int32, b-a)
	for i, r := range runs[a:b] {
		out[i] = r - int32(lo)
	}
	return out
}

// itemOnly hides an estimator's EdgeBatch (if any) from the drivers by
// exposing exactly the Estimator method set.
type itemOnly struct{ Estimator }

// ItemOnly wraps e so drivers cannot see an EdgeBatch implementation and
// always use the item-at-a-time path — the A/B control for the
// batch-equality tests and benchmarks.
func ItemOnly(e Estimator) Estimator { return itemOnly{e} }
