package stream

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"adjstream/internal/graph"
	"adjstream/internal/stats"
)

// The paper's estimators are median-of-k independent copies over the same
// adjacency-list stream (Theorems 3.7 and 4.6). Replaying the stream once
// per copy costs O(k · passes · 2m) stream-item reads for what is logically
// O(passes · 2m): every copy sees the identical item sequence. RunBroadcast
// is the shared-traversal driver: each pass reads the stream once and fans
// the items out to all copies. The default executor is pull-based (pull.go:
// workers iterate the immutable chunks directly for their shard of copies);
// BroadcastConfig.Push selects the legacy push fan-out below, which sends
// batches through per-worker channels from a producer goroutine. Per-copy
// semantics are exactly those of sequential Run — same item order, same
// list boundaries, independent per-copy state — so deterministic
// (fixed-seed) estimators produce bit-identical estimates.

// DefaultBatchSize is the number of items per fan-out batch when
// BroadcastConfig.BatchSize is zero. Batches are subslices of the immutable
// stream, so the cost of a batch is one channel send, not a copy; ~1024
// items amortizes channel synchronization without hurting cache locality.
const DefaultBatchSize = 1024

// DefaultQueueDepth is the per-worker channel capacity (in batches) when
// BroadcastConfig.QueueDepth is zero. It bounds how far the producer can
// run ahead of the slowest worker.
const DefaultQueueDepth = 8

// BroadcastConfig tunes RunBroadcastConfig. The zero value selects the
// defaults and is what RunBroadcast uses: the pull executor (see pull.go)
// with the default fan-out window.
type BroadcastConfig struct {
	// BatchSize is the number of stream items per fan-out batch in the
	// legacy push driver (default DefaultBatchSize). The pull executor
	// ignores it; see Window.
	BatchSize int
	// Workers bounds the worker-pool size; estimator copies are sharded
	// contiguously across workers (default GOMAXPROCS). Always clamped to
	// the number of active copies, so an oversized setting cannot spawn
	// idle workers.
	Workers int
	// QueueDepth is the per-worker buffered-channel capacity in batches
	// for the push driver (default DefaultQueueDepth). The pull executor
	// has no queues.
	QueueDepth int
	// Window is the number of stream items fanned to all copies per
	// iteration of the pull executor (default DefaultPullWindow). Small
	// windows let the CPU overlap the independent copies' dependency
	// chains; see pull.go.
	Window int
	// Push selects the legacy push-based fan-out (producer goroutine plus
	// per-worker batch channels) instead of the pull executor. Kept for
	// A/B benchmarking, like the replay driver before it.
	Push bool
}

func (c BroadcastConfig) withDefaults() BroadcastConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.Window <= 0 {
		c.Window = DefaultPullWindow
	}
	return c
}

// workersFor clamps the configured worker count to the number of active
// copies: a Workers setting beyond the copy count would only spawn idle
// workers (each owning an empty shard — and, in the push driver, a
// QueueDepth-deep channel buffer fed every batch for nothing).
func workersFor(cfg BroadcastConfig, active int) int {
	w := cfg.Workers
	if w > active {
		w = active
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DriverStats counts the work a driver run performed. The distinction that
// matters for the broadcast-vs-replay comparison is StreamItemsRead (reads
// of the underlying stream) versus ItemsDelivered (callback deliveries to
// estimator copies): replay needs one stream read per delivery, broadcast
// amortizes one read across all copies of a pass.
type DriverStats struct {
	// Copies is the number of estimator copies driven.
	Copies int
	// Passes is the maximum pass count across copies (the number of
	// stream traversals the broadcast driver performs).
	Passes int
	// StreamItemsRead counts items read from the underlying stream.
	StreamItemsRead int64
	// ItemsDelivered counts items delivered to estimator callbacks,
	// summed over copies.
	ItemsDelivered int64
	// Batches counts fan-out units: producer batch sends in the push
	// driver, windows iterated (summed over workers) in the pull executor.
	Batches int64
	// PeakQueueDepth is the largest per-worker queue backlog (in
	// batches) observed at send time. Always zero for the pull executor,
	// which has no queues.
	PeakQueueDepth int
	// Workers is the largest worker count used in any pass, after
	// clamping to the number of active copies.
	Workers int
	// PassSkewNS is the largest per-pass wall-time spread (slowest worker
	// minus fastest, in nanoseconds) observed across the run's passes.
	// Zero when a pass ran inline on one worker. Stragglers — a shard of
	// copies systematically slower than its peers — show up here.
	PassSkewNS int64
}

// Merge accumulates other into s (peaks by max, counters by sum).
func (s *DriverStats) Merge(other DriverStats) {
	s.Copies += other.Copies
	if other.Passes > s.Passes {
		s.Passes = other.Passes
	}
	s.StreamItemsRead += other.StreamItemsRead
	s.ItemsDelivered += other.ItemsDelivered
	s.Batches += other.Batches
	if other.PeakQueueDepth > s.PeakQueueDepth {
		s.PeakQueueDepth = other.PeakQueueDepth
	}
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	if other.PassSkewNS > s.PassSkewNS {
		s.PassSkewNS = other.PassSkewNS
	}
}

// driverCounters is the in-flight form of DriverStats. During a broadcast
// pass the producer and the shard workers update it concurrently — the
// producer owns reads/batches/queue depth, each worker counts the
// deliveries to its own shard — so every field is atomic. DriverStats
// itself stays a plain snapshot struct for the public API.
type driverCounters struct {
	streamItemsRead atomic.Int64
	itemsDelivered  atomic.Int64
	batches         atomic.Int64
	peakQueueDepth  atomic.Int64
}

// observeQueueDepth raises the peak backlog to d if it exceeds it.
func (c *driverCounters) observeQueueDepth(d int64) {
	for {
		cur := c.peakQueueDepth.Load()
		if d <= cur || c.peakQueueDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// snapshot freezes the counters into the public stats form.
func (c *driverCounters) snapshot(copies, passes int) DriverStats {
	return DriverStats{
		Copies:          copies,
		Passes:          passes,
		StreamItemsRead: c.streamItemsRead.Load(),
		ItemsDelivered:  c.itemsDelivered.Load(),
		Batches:         c.batches.Load(),
		PeakQueueDepth:  int(c.peakQueueDepth.Load()),
	}
}

// RunBroadcast drives every estimator over s reading the stream once per
// pass (not once per copy per pass). Results are identical to calling Run
// on each estimator separately. Copies may disagree on pass count; each
// copy participates in exactly its own first Passes() passes.
func RunBroadcast(s *Stream, ests []Estimator) {
	RunBroadcastConfig(s, ests, BroadcastConfig{})
}

// RunBroadcastConfig is RunBroadcast with explicit tuning knobs; it returns
// the driver counters for the run.
func RunBroadcastConfig(s *Stream, ests []Estimator, cfg BroadcastConfig) DriverStats {
	// context.Background never fires, so the context variant cannot fail.
	st, _ := RunBroadcastConfigContext(context.Background(), s, ests, cfg)
	return st
}

// RunBroadcastContext is RunBroadcast with cooperative cancellation (see
// RunBroadcastConfigContext).
func RunBroadcastContext(ctx context.Context, s *Stream, ests []Estimator) (DriverStats, error) {
	return RunBroadcastConfigContext(ctx, s, ests, BroadcastConfig{})
}

// RunBroadcastConfigContext is RunBroadcastConfig with cooperative
// cancellation. Cancellation is polled at window/batch boundaries — never
// per item — so a never-firing context costs nothing on the fan-out hot
// path. On cancellation the run stops at the next boundary (the push
// driver's workers drain the batches already queued, bounded by QueueDepth)
// and the call returns ctx.Err() with the counters accumulated so far; the
// estimators' state is unspecified. No goroutines outlive the call either
// way.
//
// The default executor is the pull one (see pull.go); cfg.Push selects the
// legacy push fan-out.
func RunBroadcastConfigContext(ctx context.Context, s *Stream, ests []Estimator, cfg BroadcastConfig) (DriverStats, error) {
	cfg = cfg.withDefaults()
	if len(ests) == 0 {
		return DriverStats{}, ctx.Err()
	}
	if !cfg.Push {
		return runPullBroadcast(ctx, s, ests, cfg)
	}
	return runPushBroadcast(ctx, s, ests, cfg)
}

// runPushBroadcast is the legacy push-based broadcast driver: one producer
// goroutine per pass reads the stream and sends batches down per-worker
// channels. Kept as an A/B control for the pull executor.
func runPushBroadcast(ctx context.Context, s *Stream, ests []Estimator, cfg BroadcastConfig) (DriverStats, error) {
	maxPasses := 0
	for _, e := range ests {
		if p := e.Passes(); p > maxPasses {
			maxPasses = p
		}
	}
	var dc driverCounters
	tt := teleForDriver("push")
	if s.chunks == nil {
		tt.noteFallback()
	}
	done := ctx.Done()
	var runErr error
	passes := 0
	maxWorkers := 0
	for p := 0; p < maxPasses; p++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				runErr = err
				break
			}
		}
		active := ests[:0:0]
		for _, e := range ests {
			if e.Passes() > p {
				active = append(active, e)
			}
		}
		if len(active) > 0 {
			if w := workersFor(cfg, len(active)); w > maxWorkers {
				maxWorkers = w
			}
		}
		start := tt.startPass()
		err := broadcastPass(ctx, s, active, p, cfg, &dc)
		tt.endPass(start, int64(s.Len()), int64(s.Len())*int64(len(active)))
		passes = p + 1
		if err != nil {
			runErr = err
			break
		}
	}
	tt.copies.Add(int64(len(ests)))
	st := dc.snapshot(len(ests), passes)
	st.Workers = maxWorkers
	tt.batches.Add(st.Batches)
	tt.queueDepth.Observe(int64(st.PeakQueueDepth))
	return st, runErr
}

// broadcastPass performs pass p: one producer reads the stream, a bounded
// pool of workers (each owning a contiguous shard of the active copies)
// consumes batches and replays the callback protocol for every copy in its
// shard — EdgeBatch for batch-capable copies, the item-at-a-time protocol
// of runPass for the rest. Cancellation is polled per batch send; on a
// cancelled ctx the producer stops early, closes the channels so the
// workers drain and exit, and returns ctx.Err().
//
// Streams whose ids do not fit the uint32 columns have no chunks and use
// the legacy []Item fan-out.
func broadcastPass(ctx context.Context, s *Stream, active []Estimator, p int, cfg BroadcastConfig, dc *driverCounters) error {
	if len(active) == 0 {
		return nil
	}
	if s.chunks != nil {
		return broadcastPassColumnar(ctx, s, active, p, cfg, dc)
	}
	workers := workersFor(cfg, len(active))
	chans := make([]chan []Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Contiguous shards, sizes differing by at most one.
		lo, hi := shardBounds(len(active), workers, w)
		ch := make(chan []Item, cfg.QueueDepth)
		chans[w] = ch
		wg.Add(1)
		go func(shard []Estimator, ch <-chan []Item) {
			defer wg.Done()
			// Each worker counts the deliveries to its own shard.
			dc.itemsDelivered.Add(runShardPass(shard, p, ch))
		}(active[lo:hi], ch)
	}
	items := s.Items()
	done := ctx.Done()
	var batches, read int64
producer:
	for i := 0; i < len(items); i += cfg.BatchSize {
		j := i + cfg.BatchSize
		if j > len(items) {
			j = len(items)
		}
		batch := items[i:j]
		if done == nil {
			// No cancellation requested: the exact pre-context hot path.
			for _, ch := range chans {
				// The producer is the only sender, so len(ch) at send
				// time is an exact backlog measurement.
				dc.observeQueueDepth(int64(len(ch)))
				ch <- batch
				batches++
			}
		} else {
			for _, ch := range chans {
				dc.observeQueueDepth(int64(len(ch)))
				select {
				case ch <- batch:
					batches++
				case <-done:
					// Abandon the pass; workers drain what was queued.
					break producer
				}
			}
		}
		read = int64(j)
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	dc.batches.Add(batches)
	dc.streamItemsRead.Add(read)
	return ctx.Err()
}

// colBatch is one columnar fan-out unit: views into a chunk's columns (or
// freshly rebased runs when BatchSize slices a chunk). Immutable once sent.
type colBatch struct {
	owners, nbrs []uint32
	runs         []int32
}

// broadcastPassColumnar is broadcastPass over the chunked form. With the
// default configuration (BatchSize == DefaultChunkItems) every batch is a
// whole chunk and the producer allocates nothing; smaller batch sizes slice
// chunks and rebase the run offsets per slice.
func broadcastPassColumnar(ctx context.Context, s *Stream, active []Estimator, p int, cfg BroadcastConfig, dc *driverCounters) error {
	workers := workersFor(cfg, len(active))
	chans := make([]chan colBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardBounds(len(active), workers, w)
		ch := make(chan colBatch, cfg.QueueDepth)
		chans[w] = ch
		wg.Add(1)
		go func(shard []Estimator, ch <-chan colBatch) {
			defer wg.Done()
			dc.itemsDelivered.Add(runShardPassColumnar(shard, p, ch))
		}(active[lo:hi], ch)
	}
	done := ctx.Done()
	var batches, read int64
producer:
	for ci := range s.chunks {
		c := &s.chunks[ci]
		for i := 0; i < len(c.Owners); i += cfg.BatchSize {
			j := i + cfg.BatchSize
			if j > len(c.Owners) {
				j = len(c.Owners)
			}
			batch := colBatch{
				owners: c.Owners[i:j],
				nbrs:   c.Nbrs[i:j],
				runs:   runsWindow(c.Runs, i, j),
			}
			if done == nil {
				for _, ch := range chans {
					dc.observeQueueDepth(int64(len(ch)))
					ch <- batch
					batches++
				}
			} else {
				for _, ch := range chans {
					dc.observeQueueDepth(int64(len(ch)))
					select {
					case ch <- batch:
						batches++
					case <-done:
						break producer
					}
				}
			}
			read += int64(j - i)
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	dc.batches.Add(batches)
	dc.streamItemsRead.Add(read)
	return ctx.Err()
}

// shardBounds splits n copies across k workers into contiguous ranges.
func shardBounds(n, k, w int) (lo, hi int) {
	lo = w * n / k
	hi = (w + 1) * n / k
	return lo, hi
}

// runShardPass replays pass p to every estimator in shard from batches and
// returns the number of callback deliveries it performed. List-boundary
// detection is done once per batch position and fanned out, mirroring
// runPass exactly for each copy.
func runShardPass(shard []Estimator, p int, ch <-chan []Item) (delivered int64) {
	for _, e := range shard {
		e.StartPass(p)
	}
	inList := false
	var cur graph.V
	for batch := range ch {
		delivered += int64(len(batch)) * int64(len(shard))
		for _, it := range batch {
			if !inList || it.Owner != cur {
				if inList {
					for _, e := range shard {
						e.EndList(cur)
					}
				}
				cur = it.Owner
				inList = true
				for _, e := range shard {
					e.StartList(cur)
				}
			}
			for _, e := range shard {
				e.Edge(it.Owner, it.Nbr)
			}
		}
	}
	if inList {
		for _, e := range shard {
			e.EndList(cur)
		}
	}
	for _, e := range shard {
		e.EndPass(p)
	}
	return delivered
}

// runShardPassColumnar replays pass p to every estimator in shard from
// columnar batches. Batch-capable copies consume whole columns per
// EdgeBatch call; the rest get the item protocol decoded from the columns,
// with list boundaries read off the run offsets (which mark exactly the
// owner changes runShardPass would detect). The final open list is closed
// by the worker before EndPass, per the BatchAlgorithm contract.
func runShardPassColumnar(shard []Estimator, p int, ch <-chan colBatch) (delivered int64) {
	var batchers []BatchAlgorithm
	var itemized []Estimator
	for _, e := range shard {
		if ba, ok := e.(BatchAlgorithm); ok {
			batchers = append(batchers, ba)
		} else {
			itemized = append(itemized, e)
		}
	}
	for _, e := range shard {
		e.StartPass(p)
	}
	inList := false
	var cur, last graph.V
	open := false
	for b := range ch {
		delivered += int64(len(b.owners)) * int64(len(shard))
		for _, ba := range batchers {
			ba.EdgeBatch(b.owners, b.nbrs, b.runs)
		}
		if len(itemized) > 0 {
			i := 0
			for _, r := range b.runs {
				for ; i < int(r); i++ {
					o, n := graph.V(b.owners[i]), graph.V(b.nbrs[i])
					for _, e := range itemized {
						e.Edge(o, n)
					}
				}
				if inList {
					for _, e := range itemized {
						e.EndList(cur)
					}
				}
				cur = graph.V(b.owners[r])
				inList = true
				for _, e := range itemized {
					e.StartList(cur)
				}
			}
			for ; i < len(b.owners); i++ {
				o, n := graph.V(b.owners[i]), graph.V(b.nbrs[i])
				for _, e := range itemized {
					e.Edge(o, n)
				}
			}
		}
		if n := len(b.owners); n > 0 {
			last = graph.V(b.owners[n-1])
			open = true
		}
	}
	if open {
		for _, ba := range batchers {
			ba.EndList(last)
		}
	}
	if inList {
		for _, e := range itemized {
			e.EndList(cur)
		}
	}
	for _, e := range shard {
		e.EndPass(p)
	}
	return delivered
}

// MedianBroadcast drives the copies with the broadcast driver and returns
// the median estimate, the summed peak space, and the driver counters —
// the single-traversal counterpart of MedianParallel's replay mode.
func MedianBroadcast(s *Stream, copies []Estimator) (estimate float64, spaceWords int64, st DriverStats) {
	// context.Background never fires, so the context variant cannot fail.
	estimate, spaceWords, st, _ = MedianBroadcastContext(context.Background(), s, copies)
	return estimate, spaceWords, st
}

// MedianBroadcastContext is MedianBroadcast with cooperative cancellation.
// On cancellation it returns ctx.Err() with zero estimate and space — the
// copies' state is unspecified after an aborted run — plus the driver
// counters accumulated before the abort.
func MedianBroadcastContext(ctx context.Context, s *Stream, copies []Estimator) (estimate float64, spaceWords int64, st DriverStats, err error) {
	return MedianBroadcastConfigContext(ctx, s, copies, BroadcastConfig{})
}

// MedianBroadcastConfigContext is MedianBroadcastContext with explicit
// tuning knobs (notably Push, for driving the copies through the legacy
// push fan-out instead of the pull executor).
func MedianBroadcastConfigContext(ctx context.Context, s *Stream, copies []Estimator, cfg BroadcastConfig) (estimate float64, spaceWords int64, st DriverStats, err error) {
	st, err = RunBroadcastConfigContext(ctx, s, copies, cfg)
	if err != nil {
		return 0, 0, st, err
	}
	estimate, spaceWords = MedianOf(copies)
	return estimate, spaceWords, st, nil
}

// MedianOf reads the median estimate and summed peak space of copies that
// have completed their run.
func MedianOf(copies []Estimator) (estimate float64, spaceWords int64) {
	xs := make([]float64, len(copies))
	var sp int64
	for i, c := range copies {
		xs[i] = c.Estimate()
		sp += c.SpaceWords()
	}
	return stats.Median(xs), sp
}
