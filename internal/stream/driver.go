package stream

import (
	"context"
	"fmt"

	"adjstream/internal/graph"
)

// Algorithm is a multi-pass adjacency-list streaming algorithm. The driver
// calls StartPass, then for each adjacency list StartList, Edge (once per
// item), EndList, and finally EndPass — in stream order, item at a time, so
// the algorithm can only use the state it explicitly stores.
type Algorithm interface {
	// Passes returns the number of passes the algorithm requires.
	Passes() int
	// StartPass is called before the first item of pass p (0-based).
	StartPass(p int)
	// StartList is called when the adjacency list of owner begins.
	StartList(owner graph.V)
	// Edge is called for each item (owner, nbr) of the current list.
	Edge(owner, nbr graph.V)
	// EndList is called when the adjacency list of owner ends.
	EndList(owner graph.V)
	// EndPass is called after the last item of pass p.
	EndPass(p int)
}

// Run replays s once per pass of a. Every pass sees the identical order, the
// setting required by the paper's two-pass triangle algorithm.
func Run(s *Stream, a Algorithm) {
	// context.Background never fires, so RunContext cannot fail here.
	_ = RunContext(context.Background(), s, a)
}

// CancelCheckItems is the cancellation granularity of the sequential driver:
// RunContext polls ctx once per this many items, so a cancelled run stops
// within one block, never mid-callback. It matches the broadcast driver's
// default batch size, where cancellation is checked per batch send.
const CancelCheckItems = DefaultBatchSize

// RunContext is Run with cooperative cancellation: it replays s once per
// pass of a, polling ctx at block boundaries (every CancelCheckItems items)
// and between passes. On cancellation it abandons the run — the current
// pass's EndList/EndPass are not delivered, and a's state is unspecified —
// and returns ctx.Err(). A context that never fires adds no per-item work
// and yields exactly the callback sequence of Run.
func RunContext(ctx context.Context, s *Stream, a Algorithm) error {
	tt := teleForDriver("run")
	if s.chunks == nil {
		tt.noteFallback()
	}
	done := ctx.Done()
	for p := 0; p < a.Passes(); p++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		start := tt.startPass()
		if done == nil {
			runPass(s, a, p)
		} else if err := runPassContext(ctx, s, a, p); err != nil {
			return err
		}
		tt.endPass(start, int64(s.Len()), int64(s.Len()))
	}
	tt.copies.Add(1)
	return nil
}

// RunOrders drives a with a (possibly) different stream per pass. All
// streams must present the same graph; this models algorithms such as the
// 4-cycle counter that do not require identical pass orders. It returns an
// error if the number of streams does not match the pass count or the
// streams disagree on the edge count.
func RunOrders(streams []*Stream, a Algorithm) error {
	if len(streams) != a.Passes() {
		return fmt.Errorf("stream: %d streams for %d passes", len(streams), a.Passes())
	}
	for i := 1; i < len(streams); i++ {
		if streams[i].M() != streams[0].M() {
			return fmt.Errorf("stream: pass %d has m=%d, pass 0 has m=%d", i, streams[i].M(), streams[0].M())
		}
	}
	tt := teleForDriver("run")
	for _, st := range streams {
		if st.chunks == nil {
			tt.noteFallback()
			break
		}
	}
	for p := 0; p < a.Passes(); p++ {
		start := tt.startPass()
		runPass(streams[p], a, p)
		tt.endPass(start, int64(streams[p].Len()), int64(streams[p].Len()))
	}
	tt.copies.Add(1)
	return nil
}

func runPass(s *Stream, a Algorithm, p int) {
	if ba, ok := a.(BatchAlgorithm); ok && s.chunks != nil {
		runPassBatch(s, ba, p)
		return
	}
	a.StartPass(p)
	inList := false
	var cur graph.V
	for _, it := range s.Items() {
		if !inList || it.Owner != cur {
			if inList {
				a.EndList(cur)
			}
			cur = it.Owner
			inList = true
			a.StartList(cur)
		}
		a.Edge(it.Owner, it.Nbr)
	}
	if inList {
		a.EndList(cur)
	}
	a.EndPass(p)
}

// runPassBatch is the columnar fast path: one EdgeBatch call per chunk, the
// algorithm handling list transitions internally (see BatchAlgorithm), and
// the driver closing the final open list before EndPass.
func runPassBatch(s *Stream, ba BatchAlgorithm, p int) {
	ba.StartPass(p)
	var last graph.V
	open := false
	for i := range s.chunks {
		c := &s.chunks[i]
		if len(c.Owners) == 0 {
			continue
		}
		ba.EdgeBatch(c.Owners, c.Nbrs, c.Runs)
		last = graph.V(c.Owners[len(c.Owners)-1])
		open = true
	}
	if open {
		ba.EndList(last)
	}
	ba.EndPass(p)
}

// runPassBatchContext is runPassBatch with a cancellation poll per chunk —
// the same granularity as the item path's CancelCheckItems blocks, since
// DefaultChunkItems == CancelCheckItems. An aborted pass stops at a chunk
// boundary without closing the open list.
func runPassBatchContext(ctx context.Context, s *Stream, ba BatchAlgorithm, p int) error {
	ba.StartPass(p)
	var last graph.V
	open := false
	for i := range s.chunks {
		if err := ctx.Err(); err != nil {
			return err
		}
		c := &s.chunks[i]
		if len(c.Owners) == 0 {
			continue
		}
		ba.EdgeBatch(c.Owners, c.Nbrs, c.Runs)
		last = graph.V(c.Owners[len(c.Owners)-1])
		open = true
	}
	if open {
		ba.EndList(last)
	}
	ba.EndPass(p)
	return nil
}

// runPassContext is runPass with a cancellation poll every CancelCheckItems
// items. The callback protocol within a block is identical to runPass; an
// aborted pass stops at a block boundary without closing the open list.
func runPassContext(ctx context.Context, s *Stream, a Algorithm, p int) error {
	if ba, ok := a.(BatchAlgorithm); ok && s.chunks != nil {
		return runPassBatchContext(ctx, s, ba, p)
	}
	a.StartPass(p)
	inList := false
	var cur graph.V
	items := s.Items()
	for base := 0; base < len(items); base += CancelCheckItems {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := base + CancelCheckItems
		if end > len(items) {
			end = len(items)
		}
		for _, it := range items[base:end] {
			if !inList || it.Owner != cur {
				if inList {
					a.EndList(cur)
				}
				cur = it.Owner
				inList = true
				a.StartList(cur)
			}
			a.Edge(it.Owner, it.Nbr)
		}
	}
	if inList {
		a.EndList(cur)
	}
	a.EndPass(p)
	return nil
}

// Estimator is an Algorithm that produces a numeric estimate after its final
// pass, along with the peak number of machine words of state it used.
type Estimator interface {
	Algorithm
	// Estimate returns the final estimate; valid after Run.
	Estimate() float64
	// SpaceWords returns the peak words of state used across all passes.
	SpaceWords() int64
}

// Estimate runs e over s and returns its estimate and peak space.
func Estimate(s *Stream, e Estimator) (est float64, words int64) {
	Run(s, e)
	return e.Estimate(), e.SpaceWords()
}
