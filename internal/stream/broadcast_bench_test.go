package stream

// Benchmarks comparing the replay and broadcast drivers at k independent
// copies over the same stream. The quantity at stake is stream-item reads:
// replay performs k·passes·2m, broadcast passes·2m. Reported metrics:
//
//	reads/op — stream items read from the underlying stream per run
//	read-x   — replay reads divided by broadcast reads (broadcast benches)

import (
	"strconv"
	"testing"

	"adjstream/internal/gen"
)

func benchStream(b *testing.B) *Stream {
	b.Helper()
	g, err := gen.ErdosRenyi(500, 0.05, 9)
	if err != nil {
		b.Fatal(err)
	}
	return Random(g, 3)
}

func benchCopies(k int) []Estimator {
	ests := make([]Estimator, k)
	for i := range ests {
		ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
	}
	return ests
}

func benchmarkReplay(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	var reads int64
	for i := 0; i < b.N; i++ {
		ests := benchCopies(k)
		RunParallel(s, ests)
		reads += ReplayStats(s, ests).StreamItemsRead
	}
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
}

func benchmarkBroadcast(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	var reads, replayReads int64
	for i := 0; i < b.N; i++ {
		ests := benchCopies(k)
		st := RunBroadcastConfig(s, ests, BroadcastConfig{})
		reads += st.StreamItemsRead
		replayReads += ReplayStats(s, ests).StreamItemsRead
	}
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
	b.ReportMetric(float64(replayReads)/float64(reads), "read-x")
}

func BenchmarkReplayK8(b *testing.B)      { benchmarkReplay(b, 8) }
func BenchmarkReplayK32(b *testing.B)     { benchmarkReplay(b, 32) }
func BenchmarkReplayK128(b *testing.B)    { benchmarkReplay(b, 128) }
func BenchmarkBroadcastK8(b *testing.B)   { benchmarkBroadcast(b, 8) }
func BenchmarkBroadcastK32(b *testing.B)  { benchmarkBroadcast(b, 32) }
func BenchmarkBroadcastK128(b *testing.B) { benchmarkBroadcast(b, 128) }

// BenchmarkBroadcastBatchSize sweeps the batching knob at k = 32.
func BenchmarkBroadcastBatchSize(b *testing.B) {
	for _, bs := range []int{64, 256, 1024, 4096} {
		b.Run(strconv.Itoa(bs), func(b *testing.B) {
			s := benchStream(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunBroadcastConfig(s, benchCopies(32), BroadcastConfig{BatchSize: bs})
			}
		})
	}
}
