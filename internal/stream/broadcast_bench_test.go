package stream

// Benchmarks comparing the replay and broadcast drivers at k independent
// copies over the same stream. The quantity at stake is stream-item reads:
// replay performs k·passes·2m, broadcast passes·2m. Reported metrics:
//
//	reads/op — stream items read from the underlying stream per run
//	read-x   — replay reads divided by broadcast reads (broadcast benches)

import (
	"strconv"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/graph"
)

func benchStream(b *testing.B) *Stream {
	b.Helper()
	g, err := gen.ErdosRenyi(500, 0.05, 9)
	if err != nil {
		b.Fatal(err)
	}
	return Random(g, 3)
}

// benchEstimator is the benchmark workload: an order-sensitive rolling hash
// with a per-item cost small enough that driver overhead dominates — what
// these benchmarks are meant to measure (sumEstimator's tracer would spend
// the budget on fmt.Sprintf instead). EdgeBatch keeps the accumulator in a
// local so the inner loop runs register-to-register.
type benchEstimator struct {
	passes int
	acc    uint64
	cur    ListCursor
}

func (e *benchEstimator) Passes() int         { return e.passes }
func (e *benchEstimator) StartPass(p int)     { e.cur = ListCursor{} }
func (e *benchEstimator) StartList(v graph.V) {}
func (e *benchEstimator) EndList(v graph.V)   {}
func (e *benchEstimator) EndPass(p int)       {}
func (e *benchEstimator) Estimate() float64   { return float64(e.acc) }
func (e *benchEstimator) SpaceWords() int64   { return 1 }
func (e *benchEstimator) Edge(o, n graph.V) {
	e.acc = e.acc*31 + uint64(o)*2 + uint64(n)
}

func (e *benchEstimator) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	acc := e.acc
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			acc = acc*31 + uint64(owners[i])*2 + uint64(nbrs[i])
		}
		if e.cur.Open {
			e.EndList(e.cur.Owner)
		}
		e.cur = ListCursor{Owner: graph.V(owners[b]), Open: true}
		e.StartList(e.cur.Owner)
	}
	for ; i < len(owners); i++ {
		acc = acc*31 + uint64(owners[i])*2 + uint64(nbrs[i])
	}
	e.acc = acc
}

var _ BatchAlgorithm = (*benchEstimator)(nil)

func benchCopies(k int) []Estimator {
	ests := make([]Estimator, k)
	for i := range ests {
		ests[i] = &benchEstimator{passes: 2}
	}
	return ests
}

// benchCopiesItem is benchCopies behind the ItemOnly wrapper: the same
// estimator driven item-at-a-time, the A/B control for the batch path.
func benchCopiesItem(k int) []Estimator {
	ests := make([]Estimator, k)
	for i := range ests {
		ests[i] = ItemOnly(&benchEstimator{passes: 2})
	}
	return ests
}

func benchmarkReplay(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	var reads int64
	for i := 0; i < b.N; i++ {
		ests := benchCopies(k)
		RunParallel(s, ests)
		reads += ReplayStats(s, ests).StreamItemsRead
	}
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
}

func benchmarkBroadcast(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	var reads, replayReads int64
	for i := 0; i < b.N; i++ {
		ests := benchCopies(k)
		st := RunBroadcastConfig(s, ests, BroadcastConfig{})
		reads += st.StreamItemsRead
		replayReads += ReplayStats(s, ests).StreamItemsRead
	}
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
	b.ReportMetric(float64(replayReads)/float64(reads), "read-x")
}

// benchmarkBroadcastItem is benchmarkBroadcast on the item path (estimators
// behind ItemOnly): the denominator of the batch-speedup claim tracked by
// the bench gate.
func benchmarkBroadcastItem(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBroadcastConfig(s, benchCopiesItem(k), BroadcastConfig{})
	}
}

// benchmarkBroadcastPush is benchmarkBroadcast on the legacy push fan-out:
// the A/B control for the pull executor, and a gated key so the legacy path
// cannot silently rot.
func benchmarkBroadcastPush(b *testing.B, k int) {
	s := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBroadcastConfig(s, benchCopies(k), BroadcastConfig{Push: true})
	}
}

func BenchmarkReplayK8(b *testing.B)             { benchmarkReplay(b, 8) }
func BenchmarkReplayK32(b *testing.B)            { benchmarkReplay(b, 32) }
func BenchmarkReplayK128(b *testing.B)           { benchmarkReplay(b, 128) }
func BenchmarkBroadcastK8(b *testing.B)          { benchmarkBroadcast(b, 8) }
func BenchmarkBroadcastK32(b *testing.B)         { benchmarkBroadcast(b, 32) }
func BenchmarkBroadcastK128(b *testing.B)        { benchmarkBroadcast(b, 128) }
func BenchmarkBroadcastPushK32(b *testing.B)     { benchmarkBroadcastPush(b, 32) }
func BenchmarkBroadcastItemPathK32(b *testing.B) { benchmarkBroadcastItem(b, 32) }

// BenchmarkRunBatchPath / BenchmarkRunItemPath A/B the sequential driver on
// one estimator: the batch path gets whole chunks (direct method calls in
// EdgeBatch), the item path one interface call per item.
func BenchmarkRunBatchPath(b *testing.B) {
	s := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s, &benchEstimator{passes: 2})
	}
}

func BenchmarkRunItemPath(b *testing.B) {
	s := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s, ItemOnly(&benchEstimator{passes: 2}))
	}
}

// BenchmarkBroadcastBatchSize sweeps the batching knob at k = 32.
func BenchmarkBroadcastBatchSize(b *testing.B) {
	for _, bs := range []int{64, 256, 1024, 4096} {
		b.Run(strconv.Itoa(bs), func(b *testing.B) {
			s := benchStream(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunBroadcastConfig(s, benchCopies(32), BroadcastConfig{BatchSize: bs})
			}
		})
	}
}

// BenchmarkBroadcastPullWindow sweeps the pull executor's fan-out window at
// k = 32. Small windows keep several copies' independent dependency chains
// in flight at once; large windows degenerate toward copy-at-a-time.
func BenchmarkBroadcastPullWindow(b *testing.B) {
	for _, w := range []int{8, 32, 128, 1024} {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			s := benchStream(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunBroadcastConfig(s, benchCopies(32), BroadcastConfig{Window: w})
			}
		})
	}
}
