package stream

// Tests for the CopyState wire form and the median merge: round-trips,
// corruption rejection, and the partition-invariance that makes split runs
// bit-identical to single-process ones.

import (
	"math"
	"testing"

	"adjstream/internal/stats"
)

func TestCopyStateRoundTrip(t *testing.T) {
	for _, st := range []CopyState{
		{Algo: "twopass-triangle", Estimate: 1234.5, SpaceWords: 99, Passes: 2, M: 600, Extra: []byte{1, 2, 3}},
		{Algo: "exact", Estimate: 0, SpaceWords: 0, Passes: 1, M: 0},
		{Algo: "x", Estimate: math.Inf(1), SpaceWords: -1, Passes: 0, M: -7, Extra: []byte{}},
		{Algo: "", Estimate: math.SmallestNonzeroFloat64, SpaceWords: 1 << 50, Passes: 3, M: 1},
	} {
		got, err := DecodeCopyState(st.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", st, err)
		}
		if got.Algo != st.Algo || got.Estimate != st.Estimate ||
			got.SpaceWords != st.SpaceWords || got.Passes != st.Passes || got.M != st.M {
			t.Errorf("round trip %+v -> %+v", st, got)
		}
		if len(got.Extra) != len(st.Extra) {
			t.Errorf("extra round trip: %v -> %v", st.Extra, got.Extra)
		}
	}
	// NaN estimates round-trip by bit pattern.
	nan := CopyState{Algo: "a", Estimate: math.NaN()}
	got, err := DecodeCopyState(nan.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Estimate) {
		t.Errorf("NaN estimate decoded to %v", got.Estimate)
	}
}

func TestDecodeCopyStateRejectsCorruption(t *testing.T) {
	good := (&CopyState{Algo: "twopass-triangle", Estimate: 1, Passes: 2, M: 3, Extra: []byte{9}}).Encode()
	cases := map[string][]byte{
		"empty":           nil,
		"bad version":     append([]byte{0xFF}, good[1:]...),
		"truncated tag":   good[:2],
		"truncated body":  good[:len(good)-10],
		"truncated extra": good[:len(good)-1],
		"trailing bytes":  append(append([]byte(nil), good...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeCopyState(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeCopyState(good); err != nil {
		t.Fatalf("control: %v", err)
	}
	if _, err := DecodeRestore(good, "exact"); err == nil {
		t.Error("DecodeRestore accepted a mismatched algorithm tag")
	}
}

// TestMergeMedianSetPartitionInvariant checks the property the split-run
// feature rests on: merging per-copy snapshots gives the same median and
// space totals as MedianOf over the copies, regardless of snapshot order.
func TestMergeMedianSetPartitionInvariant(t *testing.T) {
	ests := []float64{5, 1, 4.25, -3, 9, 2, 7}
	snaps := make([][]byte, len(ests))
	var wantSpace int64
	for i, e := range ests {
		st := CopyState{Algo: "a", Estimate: e, SpaceWords: int64(10 * (i + 1)), Passes: 2, M: int64(100 + i)}
		wantSpace += st.SpaceWords
		snaps[i] = st.Encode()
	}
	want := stats.Median(ests)
	for _, perm := range [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
	} {
		ordered := make([][]byte, len(perm))
		for i, p := range perm {
			ordered[i] = snaps[p]
		}
		got, err := MergeMedianSet(ordered)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want {
			t.Errorf("perm %v: median %v, want %v", perm, got.Estimate, want)
		}
		if got.SpaceWords != wantSpace {
			t.Errorf("perm %v: space %d, want %d", perm, got.SpaceWords, wantSpace)
		}
		if got.Passes != 2 || got.M != 106 {
			t.Errorf("perm %v: passes/m = %d/%d", perm, got.Passes, got.M)
		}
	}
}

func TestMergeMedianSetErrors(t *testing.T) {
	if _, err := MergeMedianSet(nil); err == nil {
		t.Error("empty set merged without error")
	}
	a := (&CopyState{Algo: "a", Estimate: 1}).Encode()
	b := (&CopyState{Algo: "b", Estimate: 2}).Encode()
	if _, err := MergeMedianSet([][]byte{a, b}); err == nil {
		t.Error("mixed algorithm tags merged without error")
	}
	if _, err := MergeMedianSet([][]byte{a, {0xFF}}); err == nil {
		t.Error("corrupt member merged without error")
	}
}
