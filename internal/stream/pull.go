package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adjstream/internal/graph"
)

// Pull-based broadcast executor. The push driver (broadcast.go) moves every
// chunk through a producer goroutine and per-worker channels, paying a
// send/recv synchronization per batch and bounding throughput by the
// producer. But chunks are immutable — and often mmap-ed straight from an
// "adjC" file — so nothing needs to move at all: each worker iterates
// Stream.Chunks() directly for its contiguous shard of copies. The only
// coordination left is a per-pass start/finish barrier (the WaitGroup in
// pullPass) and an atomic pass counter.
//
// The second win is the fan-out window. Fanning a whole 1024-item chunk to
// copy 1, then copy 2, ... walks each copy's serial dependency chain (its
// accumulator state) for 1024 items before switching. Fanning a small
// window instead interleaves the chains at a granularity the CPU's
// out-of-order engine can overlap: copy i+1's window is independent of copy
// i's, so their work pipelines even on a single core. Measured on the
// BroadcastK32 shape, a 32-item window is ~1.35x the chunk-at-a-time rate;
// the window is a knob (BroadcastConfig.Window) because the sweet spot
// depends on per-copy state size.

// DefaultPullWindow is the pull executor's fan-out window (in stream items)
// when BroadcastConfig.Window is zero. Small enough that the independent
// copies' dependency chains overlap in the out-of-order window, large
// enough that per-window loop overhead stays negligible.
const DefaultPullWindow = 32

// runPullBroadcast drives ests over s with the pull executor. Counter
// semantics match the push driver: StreamItemsRead counts one logical
// stream read per pass (workers share the chunks; the read is counted once,
// not per worker), ItemsDelivered counts callback deliveries summed over
// copies, and Batches counts windows iterated summed over workers.
func runPullBroadcast(ctx context.Context, s *Stream, ests []Estimator, cfg BroadcastConfig) (DriverStats, error) {
	maxPasses := 0
	for _, e := range ests {
		if p := e.Passes(); p > maxPasses {
			maxPasses = p
		}
	}
	var dc driverCounters
	tt := teleForDriver("broadcast")
	if s.chunks == nil {
		tt.noteFallback()
	}
	done := ctx.Done()
	var runErr error
	var passCount atomic.Int64
	maxWorkers := 0
	var maxSkew int64
	for p := 0; p < maxPasses; p++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				runErr = err
				break
			}
		}
		active := ests[:0:0]
		for _, e := range ests {
			if e.Passes() > p {
				active = append(active, e)
			}
		}
		start := tt.startPass()
		skew, workers, err := pullPass(ctx, s, active, p, cfg, &dc)
		tt.endPass(start, int64(s.Len()), int64(s.Len())*int64(len(active)))
		tt.observeSkew(skew)
		if workers > maxWorkers {
			maxWorkers = workers
		}
		if skew > maxSkew {
			maxSkew = skew
		}
		passCount.Add(1)
		if err != nil {
			runErr = err
			break
		}
	}
	tt.copies.Add(int64(len(ests)))
	st := dc.snapshot(len(ests), int(passCount.Load()))
	st.Workers = maxWorkers
	st.PassSkewNS = maxSkew
	tt.batches.Add(st.Batches)
	return st, runErr
}

// pullPass runs pass p: each worker traverses the shared chunks for its
// contiguous shard of the active copies. Returns the wall-time skew across
// workers (slowest minus fastest; zero when the pass ran inline on one
// worker) and the worker count used. The WaitGroup is the pass finish
// barrier; the start barrier is implicit in the goroutine launches.
func pullPass(ctx context.Context, s *Stream, active []Estimator, p int, cfg BroadcastConfig, dc *driverCounters) (skewNS int64, workers int, err error) {
	if len(active) == 0 {
		return 0, 0, nil
	}
	workers = workersFor(cfg, len(active))
	if workers == 1 {
		// Single worker: run inline, no goroutine, no clock reads.
		delivered, windows, err := pullShardPass(ctx, s, active, p, cfg.Window)
		dc.itemsDelivered.Add(delivered)
		dc.batches.Add(windows)
		dc.streamItemsRead.Add(int64(s.Len()))
		return 0, 1, err
	}
	var wg sync.WaitGroup
	walls := make([]int64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := shardBounds(len(active), workers, w)
		wg.Add(1)
		go func(w int, shard []Estimator) {
			defer wg.Done()
			start := time.Now()
			delivered, windows, err := pullShardPass(ctx, s, shard, p, cfg.Window)
			walls[w] = int64(time.Since(start))
			errs[w] = err
			dc.itemsDelivered.Add(delivered)
			dc.batches.Add(windows)
		}(w, active[lo:hi])
	}
	wg.Wait()
	// One logical stream read per pass, shared by all workers.
	dc.streamItemsRead.Add(int64(s.Len()))
	minW, maxW := walls[0], walls[0]
	for _, v := range walls[1:] {
		if v < minW {
			minW = v
		}
		if v > maxW {
			maxW = v
		}
	}
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}
	return maxW - minW, workers, err
}

// pullShardPass replays pass p to every copy in shard by iterating the
// chunks directly in windows of window items. Batch-capable copies get
// EdgeBatch per window with run offsets rebased to the window (aliased when
// the window starts a chunk, copied into a reused scratch otherwise); the
// rest get the item protocol decoded from the columns, with the list cursor
// carried across windows and chunks. The final open list is closed before
// EndPass, exactly as the other drivers do. Cancellation is polled per
// chunk. Returns deliveries and windows iterated.
func pullShardPass(ctx context.Context, s *Stream, shard []Estimator, p int, window int) (delivered, windows int64, err error) {
	if s.chunks == nil {
		return pullShardPassItems(ctx, s, shard, p, window)
	}
	var batchers []BatchAlgorithm
	var itemized []Estimator
	for _, e := range shard {
		if ba, ok := e.(BatchAlgorithm); ok {
			batchers = append(batchers, ba)
		} else {
			itemized = append(itemized, e)
		}
	}
	for _, e := range shard {
		e.StartPass(p)
	}
	done := ctx.Done()
	var scratch []int32
	inList := false
	var cur, last graph.V
	open := false
	for ci := range s.chunks {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return delivered, windows, err
			}
		}
		c := &s.chunks[ci]
		if len(c.Owners) == 0 {
			continue
		}
		ri := 0
		for i := 0; i < len(c.Owners); i += window {
			j := i + window
			if j > len(c.Owners) {
				j = len(c.Owners)
			}
			a := ri
			for ri < len(c.Runs) && int(c.Runs[ri]) < j {
				ri++
			}
			var runs []int32
			if i == 0 {
				runs = c.Runs[a:ri]
			} else if ri > a {
				scratch = scratch[:0]
				for _, r := range c.Runs[a:ri] {
					scratch = append(scratch, r-int32(i))
				}
				runs = scratch
			}
			owners, nbrs := c.Owners[i:j], c.Nbrs[i:j]
			for _, ba := range batchers {
				ba.EdgeBatch(owners, nbrs, runs)
			}
			if len(itemized) > 0 {
				ii := 0
				for _, r := range runs {
					for ; ii < int(r); ii++ {
						o, n := graph.V(owners[ii]), graph.V(nbrs[ii])
						for _, e := range itemized {
							e.Edge(o, n)
						}
					}
					if inList {
						for _, e := range itemized {
							e.EndList(cur)
						}
					}
					cur = graph.V(owners[r])
					inList = true
					for _, e := range itemized {
						e.StartList(cur)
					}
				}
				for ; ii < len(owners); ii++ {
					o, n := graph.V(owners[ii]), graph.V(nbrs[ii])
					for _, e := range itemized {
						e.Edge(o, n)
					}
				}
			}
			windows++
			delivered += int64(j-i) * int64(len(shard))
		}
		last = graph.V(c.Owners[len(c.Owners)-1])
		open = true
	}
	if open {
		for _, ba := range batchers {
			ba.EndList(last)
		}
	}
	if inList {
		for _, e := range itemized {
			e.EndList(cur)
		}
	}
	for _, e := range shard {
		e.EndPass(p)
	}
	return delivered, windows, nil
}

// pullShardPassItems is pullShardPass for streams without chunks (ids
// beyond uint32): the legacy []Item walk, windowed the same way so the
// interleaving benefit survives the fallback.
func pullShardPassItems(ctx context.Context, s *Stream, shard []Estimator, p int, window int) (delivered, windows int64, err error) {
	for _, e := range shard {
		e.StartPass(p)
	}
	items := s.Items()
	done := ctx.Done()
	inList := false
	var cur graph.V
	for base := 0; base < len(items); base += window {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return delivered, windows, err
			}
		}
		end := base + window
		if end > len(items) {
			end = len(items)
		}
		for _, it := range items[base:end] {
			if !inList || it.Owner != cur {
				if inList {
					for _, e := range shard {
						e.EndList(cur)
					}
				}
				cur = it.Owner
				inList = true
				for _, e := range shard {
					e.StartList(cur)
				}
			}
			for _, e := range shard {
				e.Edge(it.Owner, it.Nbr)
			}
		}
		windows++
		delivered += int64(end-base) * int64(len(shard))
	}
	if inList {
		for _, e := range shard {
			e.EndList(cur)
		}
	}
	for _, e := range shard {
		e.EndPass(p)
	}
	return delivered, windows, nil
}
