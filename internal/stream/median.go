package stream

import (
	"adjstream/internal/graph"
	"adjstream/internal/stats"
)

// MedianEstimator runs several independent copies of an estimator in
// parallel over the same passes and reports the median of their estimates —
// the standard amplification from constant success probability to 1-δ used
// by Theorems 3.7 and 4.6. Its space is the sum of the copies' spaces.
type MedianEstimator struct {
	copies []Estimator
}

// NewMedian wraps the given copies. All copies must use the same number of
// passes; NewMedian panics otherwise (a programming error, not input error).
func NewMedian(copies ...Estimator) *MedianEstimator {
	if len(copies) == 0 {
		panic("stream: NewMedian needs at least one copy")
	}
	p := copies[0].Passes()
	for _, c := range copies[1:] {
		if c.Passes() != p {
			panic("stream: NewMedian copies disagree on pass count")
		}
	}
	return &MedianEstimator{copies: copies}
}

// Passes implements Algorithm.
func (m *MedianEstimator) Passes() int { return m.copies[0].Passes() }

// StartPass implements Algorithm.
func (m *MedianEstimator) StartPass(p int) {
	for _, c := range m.copies {
		c.StartPass(p)
	}
}

// StartList implements Algorithm.
func (m *MedianEstimator) StartList(v graph.V) {
	for _, c := range m.copies {
		c.StartList(v)
	}
}

// Edge implements Algorithm.
func (m *MedianEstimator) Edge(o, n graph.V) {
	for _, c := range m.copies {
		c.Edge(o, n)
	}
}

// EndList implements Algorithm.
func (m *MedianEstimator) EndList(v graph.V) {
	for _, c := range m.copies {
		c.EndList(v)
	}
}

// EndPass implements Algorithm.
func (m *MedianEstimator) EndPass(p int) {
	for _, c := range m.copies {
		c.EndPass(p)
	}
}

// Estimate returns the median of the copies' estimates.
func (m *MedianEstimator) Estimate() float64 {
	xs := make([]float64, len(m.copies))
	for i, c := range m.copies {
		xs[i] = c.Estimate()
	}
	return stats.Median(xs)
}

// SpaceWords returns the total peak space across copies.
func (m *MedianEstimator) SpaceWords() int64 {
	var s int64
	for _, c := range m.copies {
		s += c.SpaceWords()
	}
	return s
}
