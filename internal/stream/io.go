package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"adjstream/internal/graph"
)

// WriteText serializes the stream as one "owner neighbor" pair per line.
func WriteText(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	for _, it := range s.Items() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", it.Owner, it.Nbr); err != nil {
			return fmt.Errorf("stream: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: write: %w", err)
	}
	return nil
}

// ReadText parses a text stream written by WriteText (or by hand). Blank
// lines and lines starting with '#' are skipped. The result is validated
// against the adjacency-list promise.
func ReadText(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var items []Item
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) != 2 {
			return nil, fmt.Errorf("stream: line %d: want 2 fields, got %d", line, len(fields))
		}
		o, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: owner: %w", line, err)
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: neighbor: %w", line, err)
		}
		items = append(items, Item{Owner: graph.V(o), Nbr: graph.V(n)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return FromItems(items)
}

// ReadEdgeList parses a plain undirected edge list ("u v" per line, '#'
// comments allowed) into a graph, ignoring duplicate edges and self-loops.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	b := graph.NewBuilder()
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			return nil, fmt.Errorf("stream: line %d: want at least 2 fields", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		b.AddIfAbsent(graph.V(u), graph.V(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return b.Graph(), nil
}

// WriteEdgeList writes g's edges one per line in canonical orientation.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("stream: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: write: %w", err)
	}
	return nil
}
