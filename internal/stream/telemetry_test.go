package stream

// Tests for the driver counters (now atomics shared between the broadcast
// producer and its shard workers) and for the driver telemetry. These run
// under `make race` / the race CI job, which is what actually asserts that
// the producer/worker counter sharing is sound.

import (
	"sync"
	"testing"

	"adjstream/internal/telemetry"
)

// TestDriverStatsAtomicCounters drives many concurrent broadcast runs over
// the same stream and checks every run's counters exactly. Workers count
// their own deliveries, the producer counts reads and batches; under -race
// this test is the assertion that the sharing is data-race-free.
func TestDriverStatsAtomicCounters(t *testing.T) {
	g := randomGraph(40, 0.2, 11)
	s := Random(g, 7)
	const runs, k = 8, 16
	// Push pinned: the batch accounting below is the push producer's.
	cfg := BroadcastConfig{BatchSize: 64, Workers: 4, QueueDepth: 2, Push: true}
	var wg sync.WaitGroup
	stats := make([]DriverStats, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ests := make([]Estimator, k)
			for i := range ests {
				ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
			}
			stats[r] = RunBroadcastConfig(s, ests, cfg)
		}(r)
	}
	wg.Wait()
	batchesPerPass := int64((s.Len() + cfg.BatchSize - 1) / cfg.BatchSize * cfg.Workers)
	for r, st := range stats {
		if st.Copies != k || st.Passes != 2 {
			t.Fatalf("run %d: stats = %+v", r, st)
		}
		if want := int64(2 * s.Len()); st.StreamItemsRead != want {
			t.Fatalf("run %d: StreamItemsRead = %d, want %d", r, st.StreamItemsRead, want)
		}
		if want := int64(2 * s.Len() * k); st.ItemsDelivered != want {
			t.Fatalf("run %d: ItemsDelivered = %d, want %d", r, st.ItemsDelivered, want)
		}
		if want := 2 * batchesPerPass; st.Batches != want {
			t.Fatalf("run %d: Batches = %d, want %d", r, st.Batches, want)
		}
	}
}

// TestDriverTelemetry checks the metrics both drivers report into a live
// registry: read/delivery counters, pass counts and timings, copies.
func TestDriverTelemetry(t *testing.T) {
	defer telemetry.Disable()
	r := telemetry.Enable()
	r.Reset()
	g := randomGraph(30, 0.2, 3)
	s := Random(g, 5)

	e := &sumEstimator{tracer: tracer{passes: 2}}
	Run(s, e)
	snap := r.Snapshot()
	if got := snap["driver.run.items_read"]; got != float64(2*s.Len()) {
		t.Fatalf("run items_read = %v, want %d", got, 2*s.Len())
	}
	if got := snap["driver.run.passes"]; got != 2 {
		t.Fatalf("run passes = %v", got)
	}
	if got := snap["driver.run.copies"]; got != 1 {
		t.Fatalf("run copies = %v", got)
	}
	if got := snap["driver.run.pass_ns.count"]; got != 2 {
		t.Fatalf("pass_ns count = %v", got)
	}

	const k = 6
	ests := make([]Estimator, k)
	for i := range ests {
		ests[i] = &sumEstimator{tracer: tracer{passes: 2}}
	}
	st := RunBroadcastConfig(s, ests, BroadcastConfig{BatchSize: 32, Workers: 3})
	snap = r.Snapshot()
	if got := snap["driver.broadcast.items_read"]; got != float64(st.StreamItemsRead) {
		t.Fatalf("broadcast items_read = %v, want %d", got, st.StreamItemsRead)
	}
	if got := snap["driver.broadcast.items_delivered"]; got != float64(st.ItemsDelivered) {
		t.Fatalf("broadcast items_delivered = %v, want %d", got, st.ItemsDelivered)
	}
	if got := snap["driver.broadcast.batches"]; got != float64(st.Batches) {
		t.Fatalf("broadcast batches = %v, want %d", got, st.Batches)
	}
	if got := snap["driver.broadcast.copies"]; got != k {
		t.Fatalf("broadcast copies = %v", got)
	}
	if snap["driver.broadcast.items_per_sec"] <= 0 {
		t.Fatal("items_per_sec not set")
	}
}

// TestBroadcastTelemetryConcurrent has several broadcast runs reporting
// into one shared registry at once (the -listen scenario); totals must add
// up and, under -race, the shared handles must be clean.
func TestBroadcastTelemetryConcurrent(t *testing.T) {
	defer telemetry.Disable()
	r := telemetry.Enable()
	r.Reset()
	g := randomGraph(30, 0.2, 9)
	s := Random(g, 1)
	const runs, k = 6, 8
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ests := make([]Estimator, k)
			for j := range ests {
				ests[j] = &sumEstimator{tracer: tracer{passes: 2}}
			}
			RunBroadcastConfig(s, ests, BroadcastConfig{BatchSize: 128, Workers: 2})
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if want := float64(runs * 2 * s.Len()); snap["driver.broadcast.items_read"] != want {
		t.Fatalf("items_read = %v, want %v", snap["driver.broadcast.items_read"], want)
	}
	if want := float64(runs * k * 2 * s.Len()); snap["driver.broadcast.items_delivered"] != want {
		t.Fatalf("items_delivered = %v, want %v", snap["driver.broadcast.items_delivered"], want)
	}
	if want := float64(runs * k); snap["driver.broadcast.copies"] != want {
		t.Fatalf("copies = %v, want %v", snap["driver.broadcast.copies"], want)
	}
}
