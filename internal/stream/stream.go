package stream

import (
	"fmt"
	"math/rand/v2"

	"adjstream/internal/graph"
)

// Item is one stream element: Nbr appears in Owner's adjacency list.
type Item struct {
	Owner, Nbr graph.V
}

// Stream is a finite adjacency-list stream. Construct with FromGraph,
// FromItems, or the order helpers; a Stream is immutable and safe for
// concurrent replay.
type Stream struct {
	items []Item
	lists int   // number of adjacency lists
	m     int64 // number of distinct edges (= len(items)/2)
}

// Items returns the underlying item sequence. The slice is shared with the
// stream and must not be modified.
func (s *Stream) Items() []Item { return s.items }

// Len returns the number of items (2m).
func (s *Stream) Len() int { return len(s.items) }

// M returns the number of distinct edges.
func (s *Stream) M() int64 { return s.m }

// Lists returns the number of adjacency lists (vertices with degree ≥ 1,
// plus explicitly included isolated vertices never appear: a vertex with an
// empty list contributes no items).
func (s *Stream) Lists() int { return s.lists }

// ListOrder returns the owners in arrival order.
func (s *Stream) ListOrder() []graph.V {
	out := make([]graph.V, 0, s.lists)
	var cur graph.V
	first := true
	for _, it := range s.items {
		if first || it.Owner != cur {
			out = append(out, it.Owner)
			cur = it.Owner
			first = false
		}
	}
	return out
}

// Validate checks the adjacency-list promise on items: owners are
// contiguous, no list repeats, no self-loops, no duplicate items, and every
// edge appears exactly once in each endpoint's list.
func Validate(items []Item) error {
	seenList := make(map[graph.V]bool)
	count := make(map[graph.Edge]int)
	seenItem := make(map[Item]bool, len(items))
	var cur graph.V
	inList := false
	for i, it := range items {
		if it.Owner == it.Nbr {
			return fmt.Errorf("stream: item %d is a self-loop at %d", i, it.Owner)
		}
		if !inList || it.Owner != cur {
			if seenList[it.Owner] {
				return fmt.Errorf("stream: adjacency list of %d is not contiguous (reopened at item %d)", it.Owner, i)
			}
			seenList[it.Owner] = true
			cur = it.Owner
			inList = true
		}
		if seenItem[it] {
			return fmt.Errorf("stream: duplicate item (%d,%d) at index %d", it.Owner, it.Nbr, i)
		}
		seenItem[it] = true
		count[graph.Edge{U: it.Owner, V: it.Nbr}.Norm()]++
	}
	for e, c := range count {
		if c != 2 {
			return fmt.Errorf("stream: edge %v appears %d times, want 2", e, c)
		}
	}
	return nil
}

// FromItems wraps items into a Stream after validating the model promise.
func FromItems(items []Item) (*Stream, error) {
	if err := Validate(items); err != nil {
		return nil, err
	}
	s := &Stream{items: items, m: int64(len(items)) / 2}
	var cur graph.V
	first := true
	for _, it := range items {
		if first || it.Owner != cur {
			s.lists++
			cur = it.Owner
			first = false
		}
	}
	return s, nil
}

// FromGraph builds a stream from g with the given adjacency-list arrival
// order. listOrder must contain every vertex of g with degree ≥ 1 exactly
// once (isolated vertices are permitted and skipped). Within each list,
// neighbors appear in sorted order; use Shuffle* helpers for random orders.
func FromGraph(g *graph.Graph, listOrder []graph.V) (*Stream, error) {
	seen := make(map[graph.V]bool, len(listOrder))
	items := make([]Item, 0, 2*g.M())
	lists := 0
	for _, v := range listOrder {
		if seen[v] {
			return nil, fmt.Errorf("stream: vertex %d repeated in list order", v)
		}
		seen[v] = true
		if !g.HasVertex(v) {
			return nil, fmt.Errorf("stream: vertex %d not in graph", v)
		}
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		lists++
		for _, u := range ns {
			items = append(items, Item{Owner: v, Nbr: u})
		}
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) > 0 && !seen[v] {
			return nil, fmt.Errorf("stream: vertex %d missing from list order", v)
		}
	}
	return &Stream{items: items, lists: lists, m: g.M()}, nil
}

// Sorted returns the stream with lists in ascending vertex order and sorted
// neighbors — the canonical deterministic order.
func Sorted(g *graph.Graph) *Stream {
	s, err := FromGraph(g, g.Vertices())
	if err != nil {
		// Vertices() satisfies FromGraph's contract by construction.
		panic(err)
	}
	return s
}

// SortedDesc returns the stream with lists in ascending vertex order but
// neighbors within each list in descending order. Together with Sorted it
// brackets the within-list order sensitivity of order-dependent estimators
// (experiment M2): ascending neighbor order tends to present an edge's
// second appearance before wedge-forming items, descending after.
func SortedDesc(g *graph.Graph) *Stream {
	s := Sorted(g)
	items := make([]Item, len(s.items))
	copy(items, s.items)
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].Owner == items[i].Owner {
			j++
		}
		for a, b := i, j-1; a < b; a, b = a+1, b-1 {
			items[a], items[b] = items[b], items[a]
		}
		i = j
	}
	return &Stream{items: items, lists: s.lists, m: s.m}
}

// Random returns a stream with a uniformly random list arrival order and
// uniformly random order within each list, driven by seed.
func Random(g *graph.Graph, seed uint64) *Stream {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	order := make([]graph.V, len(g.Vertices()))
	copy(order, g.Vertices())
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	s, err := FromGraph(g, order)
	if err != nil {
		panic(err)
	}
	shuffleWithinLists(s, rng)
	return s
}

// WithOrder returns a stream with the given list order and a seeded shuffle
// within each list.
func WithOrder(g *graph.Graph, listOrder []graph.V, seed uint64) (*Stream, error) {
	s, err := FromGraph(g, listOrder)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xa0761d6478bd642f))
	shuffleWithinLists(s, rng)
	return s, nil
}

func shuffleWithinLists(s *Stream, rng *rand.Rand) {
	i := 0
	for i < len(s.items) {
		j := i
		for j < len(s.items) && s.items[j].Owner == s.items[i].Owner {
			j++
		}
		seg := s.items[i:j]
		rng.Shuffle(len(seg), func(a, b int) { seg[a], seg[b] = seg[b], seg[a] })
		i = j
	}
}

// Graph reconstructs the underlying graph from the stream. Useful for
// cross-checking streams read from files.
func (s *Stream) Graph() (*graph.Graph, error) {
	b := graph.NewBuilder()
	for _, it := range s.items {
		if it.Owner < it.Nbr {
			if err := b.Add(it.Owner, it.Nbr); err != nil {
				return nil, fmt.Errorf("stream: %w", err)
			}
		}
	}
	return b.Graph(), nil
}
