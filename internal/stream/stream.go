package stream

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"adjstream/internal/graph"
)

// Item is one stream element: Nbr appears in Owner's adjacency list.
type Item struct {
	Owner, Nbr graph.V
}

// Stream is a finite adjacency-list stream. Construct with FromGraph,
// FromItems, the order helpers, or OpenMapped; a Stream is immutable and
// safe for concurrent replay.
//
// The canonical storage is the columnar chunked form (see Chunk): flat
// uint32 owner/neighbor columns plus list-boundary run offsets, which is
// what the drivers iterate and what the binary file format maps. The legacy
// row form is preserved behind the Items() adapter; streams whose vertex
// ids exceed uint32 keep only the row form and are driven item-at-a-time.
type Stream struct {
	chunks []Chunk
	n      int   // total number of items
	lists  int   // number of adjacency lists
	m      int64 // number of distinct edges (= n/2)

	// items is the row-form adapter. In-memory constructors retain the
	// slice they were built from; mapped streams materialize it lazily on
	// first Items() call.
	items     []Item
	itemsOnce sync.Once
}

// newStream wraps already-validated items, building the columnar form when
// every id fits the uint32 columns.
func newStream(items []Item, lists int, m int64) *Stream {
	return &Stream{
		chunks: buildChunks(items, DefaultChunkItems),
		n:      len(items),
		lists:  lists,
		m:      m,
		items:  items,
	}
}

// Items returns the stream in row form. The slice is shared with the
// stream and must not be modified. For mapped streams the rows are decoded
// from the columns once, on first use; the chunked drivers never call this.
func (s *Stream) Items() []Item {
	s.itemsOnce.Do(func() {
		if s.items == nil {
			s.items = decodeChunks(s.chunks, s.n)
		}
	})
	return s.items
}

// Chunks returns the columnar form, or nil when the stream's ids do not fit
// uint32. The chunks and their columns are shared and must not be modified.
func (s *Stream) Chunks() []Chunk { return s.chunks }

// Len returns the number of items (2m).
func (s *Stream) Len() int { return s.n }

// M returns the number of distinct edges.
func (s *Stream) M() int64 { return s.m }

// Lists returns the number of adjacency lists (vertices with degree ≥ 1,
// plus explicitly included isolated vertices never appear: a vertex with an
// empty list contributes no items).
func (s *Stream) Lists() int { return s.lists }

// ListOrder returns the owners in arrival order.
func (s *Stream) ListOrder() []graph.V {
	out := make([]graph.V, 0, s.lists)
	if s.chunks != nil {
		for i := range s.chunks {
			c := &s.chunks[i]
			for _, r := range c.Runs {
				out = append(out, graph.V(c.Owners[r]))
			}
		}
		return out
	}
	var cur graph.V
	first := true
	for _, it := range s.Items() {
		if first || it.Owner != cur {
			out = append(out, it.Owner)
			cur = it.Owner
			first = false
		}
	}
	return out
}

// Validate checks the adjacency-list promise on items: owners are
// contiguous, no list repeats, no self-loops, no duplicate items, and every
// edge appears exactly once in each endpoint's list.
func Validate(items []Item) error {
	seenList := make(map[graph.V]bool)
	count := make(map[graph.Edge]int)
	seenItem := make(map[Item]bool, len(items))
	var cur graph.V
	inList := false
	for i, it := range items {
		if it.Owner == it.Nbr {
			return fmt.Errorf("stream: item %d is a self-loop at %d", i, it.Owner)
		}
		if !inList || it.Owner != cur {
			if seenList[it.Owner] {
				return fmt.Errorf("stream: adjacency list of %d is not contiguous (reopened at item %d)", it.Owner, i)
			}
			seenList[it.Owner] = true
			cur = it.Owner
			inList = true
		}
		if seenItem[it] {
			return fmt.Errorf("stream: duplicate item (%d,%d) at index %d", it.Owner, it.Nbr, i)
		}
		seenItem[it] = true
		count[graph.Edge{U: it.Owner, V: it.Nbr}.Norm()]++
	}
	for e, c := range count {
		if c != 2 {
			return fmt.Errorf("stream: edge %v appears %d times, want 2", e, c)
		}
	}
	return nil
}

// countLists returns the number of maximal same-owner runs in items.
func countLists(items []Item) int {
	lists := 0
	var cur graph.V
	first := true
	for _, it := range items {
		if first || it.Owner != cur {
			lists++
			cur = it.Owner
			first = false
		}
	}
	return lists
}

// FromItems wraps items into a Stream after validating the model promise.
func FromItems(items []Item) (*Stream, error) {
	if err := Validate(items); err != nil {
		return nil, err
	}
	return newStream(items, countLists(items), int64(len(items))/2), nil
}

// graphItems lays out g's lists in the given arrival order with sorted
// neighbors, validating the list-order contract of FromGraph.
func graphItems(g *graph.Graph, listOrder []graph.V) (items []Item, lists int, err error) {
	seen := make(map[graph.V]bool, len(listOrder))
	items = make([]Item, 0, 2*g.M())
	for _, v := range listOrder {
		if seen[v] {
			return nil, 0, fmt.Errorf("stream: vertex %d repeated in list order", v)
		}
		seen[v] = true
		if !g.HasVertex(v) {
			return nil, 0, fmt.Errorf("stream: vertex %d not in graph", v)
		}
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		lists++
		for _, u := range ns {
			items = append(items, Item{Owner: v, Nbr: u})
		}
	}
	for _, v := range g.Vertices() {
		if g.Degree(v) > 0 && !seen[v] {
			return nil, 0, fmt.Errorf("stream: vertex %d missing from list order", v)
		}
	}
	return items, lists, nil
}

// FromGraph builds a stream from g with the given adjacency-list arrival
// order. listOrder must contain every vertex of g with degree ≥ 1 exactly
// once (isolated vertices are permitted and skipped). Within each list,
// neighbors appear in sorted order; use the order helpers for random orders.
func FromGraph(g *graph.Graph, listOrder []graph.V) (*Stream, error) {
	items, lists, err := graphItems(g, listOrder)
	if err != nil {
		return nil, err
	}
	return newStream(items, lists, g.M()), nil
}

// Sorted returns the stream with lists in ascending vertex order and sorted
// neighbors — the canonical deterministic order.
func Sorted(g *graph.Graph) *Stream {
	s, err := FromGraph(g, g.Vertices())
	if err != nil {
		// Vertices() satisfies FromGraph's contract by construction.
		panic(err)
	}
	return s
}

// SortedDesc returns the stream with lists in ascending vertex order but
// neighbors within each list in descending order. Together with Sorted it
// brackets the within-list order sensitivity of order-dependent estimators
// (experiment M2): ascending neighbor order tends to present an edge's
// second appearance before wedge-forming items, descending after.
func SortedDesc(g *graph.Graph) *Stream {
	items, lists, err := graphItems(g, g.Vertices())
	if err != nil {
		panic(err)
	}
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].Owner == items[i].Owner {
			j++
		}
		for a, b := i, j-1; a < b; a, b = a+1, b-1 {
			items[a], items[b] = items[b], items[a]
		}
		i = j
	}
	return newStream(items, lists, g.M())
}

// Random returns a stream with a uniformly random list arrival order and
// uniformly random order within each list, driven by seed.
func Random(g *graph.Graph, seed uint64) *Stream {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	order := make([]graph.V, len(g.Vertices()))
	copy(order, g.Vertices())
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	items, lists, err := graphItems(g, order)
	if err != nil {
		panic(err)
	}
	shuffleWithinLists(items, rng)
	return newStream(items, lists, g.M())
}

// WithOrder returns a stream with the given list order and a seeded shuffle
// within each list.
func WithOrder(g *graph.Graph, listOrder []graph.V, seed uint64) (*Stream, error) {
	items, lists, err := graphItems(g, listOrder)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xa0761d6478bd642f))
	shuffleWithinLists(items, rng)
	return newStream(items, lists, g.M()), nil
}

func shuffleWithinLists(items []Item, rng *rand.Rand) {
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].Owner == items[i].Owner {
			j++
		}
		seg := items[i:j]
		rng.Shuffle(len(seg), func(a, b int) { seg[a], seg[b] = seg[b], seg[a] })
		i = j
	}
}

// Graph reconstructs the underlying graph from the stream. Useful for
// cross-checking streams read from files.
func (s *Stream) Graph() (*graph.Graph, error) {
	b := graph.NewBuilder()
	for _, it := range s.Items() {
		if it.Owner < it.Nbr {
			if err := b.Add(it.Owner, it.Nbr); err != nil {
				return nil, fmt.Errorf("stream: %w", err)
			}
		}
	}
	return b.Graph(), nil
}
