package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// The "adjM" snapshot-set container: how a shard's per-copy snapshots
// travel between processes — as files written by cyclecount -snapshot and
// merged by adjmerge, and as HTTP response bodies of the cluster shard
// endpoint (POST /v1/shard). The framing is deliberately the same on disk
// and on the wire, so a shard response saved to a file merges with adjmerge
// and a shard file replayed over HTTP parses unchanged.
//
// Layout (all little-endian): the 4-byte magic "adjM", a uint32 format
// version, a uint32 record count, then one record per snapshot — uint32
// global copy index (lo, lo+1, …), uint32 payload length, payload bytes.
// The indices record which copies of the full run the set covers, letting
// the merge verify disjoint full coverage of [0, k).

// snapshotSetMagic identifies a snapshot-set ("adjM" for merge).
const snapshotSetMagic = "adjM"

// snapshotSetVersion is the snapshot-set format version.
const snapshotSetVersion = 1

// SnapshotSetContentType is the media type a snapshot-set travels under
// over HTTP (the cluster shard endpoint's response body).
const SnapshotSetContentType = "application/x-adjstream-snapshot-set"

// MaxSnapshotSetBytes bounds how much of a snapshot-set HTTP body a client
// will read: per-copy snapshots are completed-run summaries (a few hundred
// bytes each), so even a thousand-copy run is far below this. Protects the
// proxy against a confused or malicious replica streaming garbage.
const MaxSnapshotSetBytes = 16 << 20

// WriteSnapshotSet writes the snapshot-set framing for snaps to w, with the
// records carrying global copy indices lo, lo+1, ….
func WriteSnapshotSet(w io.Writer, lo int, snaps [][]byte) error {
	if lo < 0 {
		return fmt.Errorf("stream: negative snapshot base index %d", lo)
	}
	hdr := make([]byte, 0, 12)
	hdr = append(hdr, snapshotSetMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, snapshotSetVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(snaps)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	for i, snap := range snaps {
		rec := make([]byte, 0, 8+len(snap))
		rec = binary.LittleEndian.AppendUint32(rec, uint32(lo+i))
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(snap)))
		rec = append(rec, snap...)
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
	}
	return nil
}

// EncodeSnapshotSet returns the snapshot-set framing as one byte slice —
// the form an HTTP handler writes as a response body after the status line,
// when partial writes must not follow a 200.
func EncodeSnapshotSet(lo int, snaps [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteSnapshotSet(&buf, lo, snaps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadSnapshotSet reads a snapshot-set written by WriteSnapshotSet,
// returning each record's global copy index and payload.
func ReadSnapshotSet(r io.Reader) (indices []int, snaps [][]byte, err error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, nil, fmt.Errorf("stream: snapshot set header: %w", err)
	}
	if string(hdr[:4]) != snapshotSetMagic {
		return nil, nil, fmt.Errorf("stream: not a snapshot set (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != snapshotSetVersion {
		return nil, nil, fmt.Errorf("stream: snapshot set version %d, want %d", v, snapshotSetVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	indices = make([]int, 0, n)
	snaps = make([][]byte, 0, n)
	var rec [8]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, nil, fmt.Errorf("stream: snapshot record %d: %w", i, err)
		}
		payload := make([]byte, binary.LittleEndian.Uint32(rec[4:]))
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, nil, fmt.Errorf("stream: snapshot record %d: %w", i, err)
		}
		indices = append(indices, int(binary.LittleEndian.Uint32(rec[:])))
		snaps = append(snaps, payload)
	}
	return indices, snaps, nil
}
