package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"adjstream/internal/graph"
)

// Binary stream format: a magic header, the item count, then per adjacency
// list the owner id, the list length, and delta-encoded sorted neighbor
// gaps — all as varints (zig-zag for signed values). Roughly 3–6× smaller
// than the text format on typical workloads and cheaper to parse.
var binaryMagic = [4]byte{'a', 'd', 'j', '1'}

// WriteBinary serializes the stream in the binary format.
func WriteBinary(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("stream: write binary: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(x int64) error {
		n := binary.PutVarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	items := s.Items()
	if err := putUvarint(uint64(len(items))); err != nil {
		return fmt.Errorf("stream: write binary: %w", err)
	}
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].Owner == items[i].Owner {
			j++
		}
		if err := putVarint(int64(items[i].Owner)); err != nil {
			return fmt.Errorf("stream: write binary: %w", err)
		}
		if err := putUvarint(uint64(j - i)); err != nil {
			return fmt.Errorf("stream: write binary: %w", err)
		}
		// Neighbors in stream order as deltas from the previous value
		// (signed: within-list order may be arbitrary).
		prev := int64(0)
		for k := i; k < j; k++ {
			v := int64(items[k].Nbr)
			if err := putVarint(v - prev); err != nil {
				return fmt.Errorf("stream: write binary: %w", err)
			}
			prev = v
		}
		i = j
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: write binary: %w", err)
	}
	return nil
}

// ReadBinary parses a stream written by WriteBinary, validating the model
// promise.
func ReadBinary(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: read binary: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("stream: read binary: bad magic %q", magic)
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: read binary: item count: %w", err)
	}
	const maxItems = 1 << 31
	if total > maxItems {
		return nil, fmt.Errorf("stream: read binary: item count %d too large", total)
	}
	items := make([]Item, 0, total)
	for uint64(len(items)) < total {
		owner, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read binary: owner: %w", err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: read binary: list length: %w", err)
		}
		if n == 0 || uint64(len(items))+n > total {
			return nil, fmt.Errorf("stream: read binary: list length %d inconsistent with item count", n)
		}
		prev := int64(0)
		for k := uint64(0); k < n; k++ {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("stream: read binary: neighbor: %w", err)
			}
			prev += d
			items = append(items, Item{Owner: graph.V(owner), Nbr: graph.V(prev)})
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("stream: read binary: trailing data")
	}
	return FromItems(items)
}
