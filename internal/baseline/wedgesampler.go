package baseline

import (
	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// sampledWedge is a wedge a–center–b formed by two sampled edges, watching
// for the closing edge {a,b} later in the stream.
type sampledWedge struct {
	a, center, b graph.V
	closed       bool
	dead         bool
}

// WedgeSampler is a single-pass wedge-sampling triangle estimator in the
// spirit of Buriol et al. [12] and Jha–Seshadhri–Pinar [17] (Table 1 row 1):
// edges are hash-sampled as they first appear; each pair of sampled edges
// sharing an endpoint forms a wedge; a wedge is closed when its endpoint
// pair later appears as a stream item.
//
// Under a uniformly random adjacency-list order (random list order and
// random order within lists), the expected number of closed wedges per
// triangle whose edges are all sampled is exactly 5/2: with lists arriving
// as x1, x2, x3, the wedges centered at x1 and x2 always form before a
// later appearance of their closing edge, while the wedge centered at x3
// forms in x2's list at the item (x2,x3) and is closed only if the item
// (x2,x1) follows it within that list — probability 1/2. With
// pair-inclusion probability p₂ the unbiased estimate is therefore
// closed·dilution/((5/2)·p₂). In adversarial order the estimator degrades —
// the behaviour the random-order model rules out.
type WedgeSampler struct {
	cfg     Config
	sampler sampling.EdgeSampler

	incident map[graph.V][]graph.V // sampled-edge adjacency
	byPair   map[graph.Edge][]*sampledWedge
	wedges   *sampling.Reservoir[*sampledWedge]
	formed   int64

	items  int64
	m      int64
	closed int64
	meter  space.Meter
	cur    stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap *stream.CopyState
}

var _ stream.Estimator = (*WedgeSampler)(nil)

// NewWedgeSampler validates cfg and returns the estimator. WedgeCap bounds
// the wedge reservoir; 0 defaults to 4·SampleSize (or 65536 in probability
// mode).
func NewWedgeSampler(cfg Config) (*WedgeSampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &WedgeSampler{
		cfg:      cfg,
		incident: make(map[graph.V][]graph.V),
		byPair:   make(map[graph.Edge][]*sampledWedge),
	}
	cap := cfg.WedgeCap
	if cap == 0 {
		if cfg.SampleSize > 0 {
			cap = 4 * cfg.SampleSize
		} else {
			cap = 65536
		}
	}
	w.wedges = sampling.NewReservoir[*sampledWedge](cap, cfg.Seed^0x1f3a_5b77)
	sampler, err := cfg.newSampler(func(e graph.Edge) { w.evictEdge(e) })
	if err != nil {
		return nil, err
	}
	w.sampler = sampler
	attachMeter("wedge_sampler", &w.meter)
	return w, nil
}

// Passes implements stream.Algorithm.
func (w *WedgeSampler) Passes() int { return 1 }

// StartPass implements stream.Algorithm.
func (w *WedgeSampler) StartPass(p int) { w.cur = stream.ListCursor{} }

// StartList implements stream.Algorithm.
func (w *WedgeSampler) StartList(owner graph.V) {}

// Edge implements stream.Algorithm.
func (w *WedgeSampler) Edge(owner, nbr graph.V) {
	w.items++
	// Closure check first: the current item may close existing wedges.
	key := graph.Edge{U: owner, V: nbr}.Norm()
	for _, sw := range w.byPair[key] {
		if !sw.dead && !sw.closed {
			sw.closed = true
			w.closed++
		}
	}
	// Then sampling and wedge formation.
	if w.sampler.Offer(owner, nbr) && !w.hasEdge(key) {
		w.addEdge(key)
	}
}

func (w *WedgeSampler) hasEdge(e graph.Edge) bool {
	for _, x := range w.incident[e.U] {
		if x == e.V {
			return true
		}
	}
	return false
}

func (w *WedgeSampler) addEdge(e graph.Edge) {
	// Form wedges with previously sampled edges sharing an endpoint.
	for _, c := range [2]graph.V{e.U, e.V} {
		other := e.V
		if c == e.V {
			other = e.U
		}
		for _, x := range w.incident[c] {
			w.formWedge(x, c, other)
		}
	}
	w.incident[e.U] = append(w.incident[e.U], e.V)
	w.incident[e.V] = append(w.incident[e.V], e.U)
	w.meter.Charge(space.WordsPerEdge)
}

func (w *WedgeSampler) formWedge(a, center, b graph.V) {
	w.formed++
	sw := &sampledWedge{a: a, center: center, b: b}
	victim, evicted, accepted := w.wedges.Offer(sw)
	if evicted {
		victim.dead = true
		if victim.closed {
			w.closed--
		}
		w.meter.Release(space.WordsPerWedge)
	}
	if !accepted {
		return
	}
	key := graph.Edge{U: a, V: b}.Norm()
	w.byPair[key] = append(w.byPair[key], sw)
	w.meter.Charge(space.WordsPerWedge)
}

func (w *WedgeSampler) evictEdge(e graph.Edge) {
	// Remove the edge from the incidence index and kill its wedges.
	w.incident[e.U] = removeV(w.incident[e.U], e.V)
	w.incident[e.V] = removeV(w.incident[e.V], e.U)
	w.meter.Release(space.WordsPerEdge)
	for _, sws := range w.byPair {
		for _, sw := range sws {
			if sw.dead {
				continue
			}
			if wedgeUses(sw, e) {
				sw.dead = true
				if sw.closed {
					w.closed--
				}
				w.meter.Release(space.WordsPerWedge)
			}
		}
	}
}

func wedgeUses(sw *sampledWedge, e graph.Edge) bool {
	e1 := graph.Edge{U: sw.a, V: sw.center}.Norm()
	e2 := graph.Edge{U: sw.center, V: sw.b}.Norm()
	return e1 == e || e2 == e
}

func removeV(xs []graph.V, v graph.V) []graph.V {
	for i, x := range xs {
		if x == v {
			xs[i] = xs[len(xs)-1]
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// EndList implements stream.Algorithm.
func (w *WedgeSampler) EndList(owner graph.V) {}

// EndPass implements stream.Algorithm.
func (w *WedgeSampler) EndPass(p int) { w.m = w.items / 2 }

// Estimate returns closed·dilution/((5/2)·p₂); see the type comment for the
// random-order analysis behind the factor 5/2.
func (w *WedgeSampler) Estimate() float64 {
	if w.snap != nil {
		return w.snap.Estimate
	}
	p2 := w.pairInclusionProb()
	if p2 <= 0 {
		return 0
	}
	dilution := 1.0
	if w.formed > int64(w.wedges.Len()) && w.wedges.Len() > 0 {
		dilution = float64(w.formed) / float64(w.wedges.Len())
	}
	return float64(w.closed) * dilution / (2.5 * p2)
}

func (w *WedgeSampler) pairInclusionProb() float64 {
	switch s := w.sampler.(type) {
	case *sampling.BottomK:
		if w.m < 2 {
			return 1
		}
		sz := int64(w.cfg.SampleSize)
		if w.m < sz {
			sz = w.m
		}
		return float64(sz) * float64(sz-1) / (float64(w.m) * float64(w.m-1))
	case *sampling.FixedProb:
		return s.P() * s.P()
	default:
		return 0
	}
}

// ClosedWedges returns the number of live closed wedges.
func (w *WedgeSampler) ClosedWedges() int64 { return w.closed }

// WedgesFormed returns the total number of wedges formed (before any cap).
func (w *WedgeSampler) WedgesFormed() int64 { return w.formed }

// SpaceWords implements stream.Estimator.
func (w *WedgeSampler) SpaceWords() int64 {
	if w.snap != nil {
		return w.snap.SpaceWords
	}
	return w.meter.Peak()
}

// M returns the measured edge count.
func (w *WedgeSampler) M() int64 { return w.m }
