package baseline

import (
	"adjstream/internal/space"
	"adjstream/internal/telemetry"
)

// attachMeter mirrors a baseline estimator's space high-water mark into the
// global telemetry registry as baseline.<name>.space_words — the same
// per-pass observability the core estimators get, at the same zero cost
// when telemetry is disabled (nil handle, nil check per new peak). The
// meter stays the source of truth for SpaceWords; the registry is the live
// window over it.
func attachMeter(name string, m *space.Meter) {
	m.Attach(telemetry.Global().HighWater("baseline." + name + ".space_words"))
}
