package baseline

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// Mergeable/serializable state for the baseline algorithms (see
// internal/stream/state.go for the contract and internal/core/state.go for
// the core counterparts). StreamStats is Algorithm-only — it has no
// Estimate — so it gets Snapshotter plus a typed Fork rather than the full
// MergeableEstimator; its snapshot restores every real counter, making it
// the one algorithm whose restore is a complete state restore.
//
// Extra payloads (fixed 64-bit little-endian fields, in order):
//
//	onepass-triangle  detections (N)
//	onepass-fourcycle detected flag (0/1)
//	wedge-sampler     closed wedges, wedges formed
//	local-triangles   count n, then n × (vertex, count float64 bits),
//	                  sorted by vertex
//	exact             cycle length
//	stream-stats      items, lists, max degree, P2, Σ deg²

var (
	_ stream.MergeableEstimator = (*OnePassTriangle)(nil)
	_ stream.MergeableEstimator = (*OnePassFourCycle)(nil)
	_ stream.MergeableEstimator = (*WedgeSampler)(nil)
	_ stream.MergeableEstimator = (*LocalTriangles)(nil)
	_ stream.MergeableEstimator = (*ExactStream)(nil)
	_ stream.Snapshotter        = (*StreamStats)(nil)
)

// appendU64 / readU64 are the Extra field codec.
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func readU64(b []byte, n int) ([]uint64, error) {
	if len(b) != 8*n {
		return nil, fmt.Errorf("baseline: extra payload is %d bytes, want %d", len(b), 8*n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

// Fork implements stream.MergeableEstimator.
func (o *OnePassTriangle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := o.cfg
	cfg.Seed = seed
	no, err := NewOnePassTriangle(cfg)
	if err != nil {
		panic("baseline: Fork from validated config: " + err.Error())
	}
	return no
}

// Snapshot implements stream.Snapshotter.
func (o *OnePassTriangle) Snapshot() []byte {
	return stream.SnapshotOf("onepass-triangle", o, o.M(), appendU64(nil, uint64(o.found)))
}

// Restore implements stream.Snapshotter. found is restored for real, so
// Detected and PairsDiscovered keep answering.
func (o *OnePassTriangle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "onepass-triangle")
	if err != nil {
		return err
	}
	xs, err := readU64(st.Extra, 1)
	if err != nil {
		return err
	}
	o.m = st.M
	o.found = int64(xs[0])
	o.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (o *OnePassFourCycle) Fork(seed uint64) stream.MergeableEstimator {
	cfg := o.cfg
	cfg.Seed = seed
	no, err := NewOnePassFourCycle(cfg)
	if err != nil {
		panic("baseline: Fork from validated config: " + err.Error())
	}
	return no
}

// Snapshot implements stream.Snapshotter.
func (o *OnePassFourCycle) Snapshot() []byte {
	var det uint64
	if o.Detected() {
		det = 1
	}
	return stream.SnapshotOf("onepass-fourcycle", o, o.M(), appendU64(nil, det))
}

// Restore implements stream.Snapshotter. The sampled subgraph is not
// reconstructed; Detected answers from the snapshot flag.
func (o *OnePassFourCycle) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "onepass-fourcycle")
	if err != nil {
		return err
	}
	xs, err := readU64(st.Extra, 1)
	if err != nil {
		return err
	}
	o.m = st.M
	o.snapDetected = xs[0] != 0
	o.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (w *WedgeSampler) Fork(seed uint64) stream.MergeableEstimator {
	cfg := w.cfg
	cfg.Seed = seed
	nw, err := NewWedgeSampler(cfg)
	if err != nil {
		panic("baseline: Fork from validated config: " + err.Error())
	}
	return nw
}

// Snapshot implements stream.Snapshotter.
func (w *WedgeSampler) Snapshot() []byte {
	extra := appendU64(nil, uint64(w.closed))
	extra = appendU64(extra, uint64(w.formed))
	return stream.SnapshotOf("wedge-sampler", w, w.M(), extra)
}

// Restore implements stream.Snapshotter. closed and formed are restored for
// real, so ClosedWedges and WedgesFormed keep answering.
func (w *WedgeSampler) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "wedge-sampler")
	if err != nil {
		return err
	}
	xs, err := readU64(st.Extra, 2)
	if err != nil {
		return err
	}
	w.m = st.M
	w.closed = int64(xs[0])
	w.formed = int64(xs[1])
	w.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator.
func (l *LocalTriangles) Fork(seed uint64) stream.MergeableEstimator {
	nl, err := NewLocalTriangles(l.p, seed)
	if err != nil {
		panic("baseline: Fork from validated config: " + err.Error())
	}
	return nl
}

// Snapshot implements stream.Snapshotter. The per-vertex counts are the
// whole point of a local counter, so the snapshot carries all of them
// (sorted by vertex for a deterministic encoding).
func (l *LocalTriangles) Snapshot() []byte {
	vs := make([]graph.V, 0, len(l.counts))
	for v := range l.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	extra := appendU64(nil, uint64(len(vs)))
	for _, v := range vs {
		extra = appendU64(extra, uint64(int64(v)))
		extra = appendU64(extra, math.Float64bits(l.counts[v]))
	}
	return stream.SnapshotOf("local-triangles", l, l.M(), extra)
}

// Restore implements stream.Snapshotter. The full count map is restored, so
// Local and Counts keep answering.
func (l *LocalTriangles) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "local-triangles")
	if err != nil {
		return err
	}
	if len(st.Extra) < 8 {
		return fmt.Errorf("baseline: local-triangles extra payload is %d bytes, want >= 8", len(st.Extra))
	}
	n := binary.LittleEndian.Uint64(st.Extra)
	xs, err := readU64(st.Extra[8:], int(2*n))
	if err != nil {
		return err
	}
	counts := make(map[graph.V]float64, n)
	for i := uint64(0); i < n; i++ {
		counts[graph.V(int64(xs[2*i]))] = math.Float64frombits(xs[2*i+1])
	}
	l.m = st.M
	l.counts = counts
	l.snap = st
	return nil
}

// Fork implements stream.MergeableEstimator. ExactStream consumes no
// randomness; the seed is ignored.
func (e *ExactStream) Fork(seed uint64) stream.MergeableEstimator {
	ne, err := NewExactStream(e.cycleLen)
	if err != nil {
		panic("baseline: Fork from validated config: " + err.Error())
	}
	return ne
}

// Snapshot implements stream.Snapshotter.
func (e *ExactStream) Snapshot() []byte {
	return stream.SnapshotOf("exact", e, e.M(), appendU64(nil, uint64(e.cycleLen)))
}

// Restore implements stream.Snapshotter. The stored edge set is not
// reconstructed — only the summary. The cycle length must match.
func (e *ExactStream) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "exact")
	if err != nil {
		return err
	}
	xs, err := readU64(st.Extra, 1)
	if err != nil {
		return err
	}
	if int(xs[0]) != e.cycleLen {
		return fmt.Errorf("baseline: exact snapshot counts %d-cycles, receiver counts %d-cycles", xs[0], e.cycleLen)
	}
	e.snap = st
	return nil
}

// Fork returns a fresh StreamStats; the counter consumes no randomness.
func (c *StreamStats) Fork(seed uint64) *StreamStats { return NewStreamStats() }

// Snapshot implements stream.Snapshotter. StreamStats has no estimate; the
// summary's Estimate field is zero and every counter lives in Extra.
func (c *StreamStats) Snapshot() []byte {
	extra := appendU64(nil, uint64(c.items))
	extra = appendU64(extra, uint64(c.lists))
	extra = appendU64(extra, uint64(c.maxDeg))
	extra = appendU64(extra, uint64(c.p2))
	extra = appendU64(extra, uint64(c.degSq))
	st := stream.CopyState{Algo: "stream-stats", Passes: 1, M: c.M(), Extra: extra}
	return st.Encode()
}

// Restore implements stream.Snapshotter. All counters are real state, so
// the restore is complete: every accessor (including Transitivity) answers
// as the original would.
func (c *StreamStats) Restore(b []byte) error {
	st, err := stream.DecodeRestore(b, "stream-stats")
	if err != nil {
		return err
	}
	xs, err := readU64(st.Extra, 5)
	if err != nil {
		return err
	}
	c.items = int64(xs[0])
	c.lists = int64(xs[1])
	c.maxDeg = int64(xs[2])
	c.p2 = int64(xs[3])
	c.degSq = int64(xs[4])
	return nil
}
