package baseline

import (
	"math"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

func TestLocalTrianglesExactAtP1(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewLocalTriangles(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 2), alg)
	want := g.LocalTriangles()
	for v, c := range want {
		if got := alg.Local(v); math.Abs(got-float64(c)) > 1e-9 {
			t.Fatalf("local(%d) = %v, want %d", v, got, c)
		}
	}
	if got := alg.Estimate(); math.Abs(got-float64(g.Triangles())) > 1e-9 {
		t.Fatalf("global = %v, want %d", got, g.Triangles())
	}
	// Vertices in no triangle must not appear in the counts map.
	for v := range alg.Counts() {
		if _, ok := want[v]; !ok {
			t.Fatalf("spurious count for %d", v)
		}
	}
}

func TestLocalTrianglesUnbiased(t *testing.T) {
	g := gen.Friendship(20) // hub 0 in 20 triangles, spokes in 1 each
	s := stream.Random(g, 1)
	var hub stats.Running
	for seed := uint64(0); seed < 150; seed++ {
		alg, err := NewLocalTriangles(0.5, seed*3+1)
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		hub.Add(alg.Local(0))
	}
	if math.Abs(hub.Mean()-20)/20 > 0.1 {
		t.Fatalf("hub mean = %v, want ≈20", hub.Mean())
	}
}

func TestLocalTrianglesValidation(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		if _, err := NewLocalTriangles(p, 1); err == nil {
			t.Fatalf("p=%v should fail", p)
		}
	}
}

func TestLocalTrianglesTriangleFree(t *testing.T) {
	g := gen.CompleteBipartite(6, 6)
	alg, err := NewLocalTriangles(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), alg)
	if alg.Estimate() != 0 || len(alg.Counts()) != 0 {
		t.Fatal("false positives on triangle-free graph")
	}
	if alg.M() != g.M() {
		t.Fatalf("M = %d", alg.M())
	}
}
