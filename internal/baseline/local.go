package baseline

import (
	"sort"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// LocalTriangles is a two-pass semi-streaming estimator of per-vertex
// triangle counts (local triangle counting in the sense of Becchetti et
// al., which the paper's introduction cites as a motivating application).
// It samples edges by hash and credits every discovered (edge, apex)
// incidence to the triangle's three vertices with weight 1/(3p), so each
// vertex's estimate is unbiased for its local count. Like all local
// counters it keeps one counter per touched vertex (semi-streaming space),
// plus the edge sample.
type LocalTriangles struct {
	p       float64
	seed    uint64
	sampler sampling.EdgeSampler
	det     *detectorLite

	counts map[graph.V]float64
	pass   int
	pos    int
	items  int64
	m      int64
	meter  space.Meter
	cur    stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap *stream.CopyState
}

// detectorLite reuses the core detection idea locally: sampled edges with
// two presence flags, reset per list.
type detectorLite struct {
	recs     map[graph.Edge]*liteRec
	byVertex map[graph.V][]*liteRec
	dirty    []*liteRec
}

type liteRec struct {
	u, v         graph.V
	posFirst     int
	flagU, flagV bool
}

// NewLocalTriangles returns the estimator with sampling probability p
// (p = 1 gives exact local counts).
func NewLocalTriangles(p float64, seed uint64) (*LocalTriangles, error) {
	cfg := Config{SampleProb: p, Seed: seed}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sampler, err := sampling.NewFixedProb(p, seed)
	if err != nil {
		return nil, err
	}
	l := &LocalTriangles{
		p:       p,
		seed:    seed,
		counts:  make(map[graph.V]float64),
		det:     &detectorLite{recs: make(map[graph.Edge]*liteRec), byVertex: make(map[graph.V][]*liteRec)},
		sampler: sampler,
	}
	attachMeter("local_triangles", &l.meter)
	return l, nil
}

// Passes implements stream.Algorithm.
func (l *LocalTriangles) Passes() int { return 2 }

// StartPass implements stream.Algorithm.
func (l *LocalTriangles) StartPass(p int) {
	l.pass = p
	l.pos = 0
	l.cur = stream.ListCursor{}
}

// StartList implements stream.Algorithm.
func (l *LocalTriangles) StartList(owner graph.V) { l.pos++ }

// Edge implements stream.Algorithm.
func (l *LocalTriangles) Edge(owner, nbr graph.V) {
	if l.pass == 0 {
		l.items++
		e := graph.Edge{U: owner, V: nbr}.Norm()
		if l.sampler.Offer(owner, nbr) && l.det.recs[e] == nil {
			r := &liteRec{u: e.U, v: e.V, posFirst: l.pos}
			l.det.recs[e] = r
			l.det.byVertex[r.u] = append(l.det.byVertex[r.u], r)
			l.det.byVertex[r.v] = append(l.det.byVertex[r.v], r)
			l.meter.Charge(space.WordsPerEdge + 1)
		}
	}
	for _, r := range l.det.byVertex[nbr] {
		if !r.flagU && !r.flagV {
			l.det.dirty = append(l.det.dirty, r)
		}
		if nbr == r.u {
			r.flagU = true
		} else {
			r.flagV = true
		}
	}
}

// EndList implements stream.Algorithm.
func (l *LocalTriangles) EndList(owner graph.V) {
	for _, r := range l.det.dirty {
		if r.flagU && r.flagV {
			// (r, owner) is a triangle; discovered exactly once across the
			// two passes (pass one: apexes after sampling; pass two: the
			// complementary prefix).
			if l.pass == 0 || l.pos < r.posFirst {
				w := 1 / (3 * l.p)
				l.credit(r.u, w)
				l.credit(r.v, w)
				l.credit(owner, w)
			}
		}
		r.flagU, r.flagV = false, false
	}
	l.det.dirty = l.det.dirty[:0]
}

func (l *LocalTriangles) credit(v graph.V, w float64) {
	if _, ok := l.counts[v]; !ok {
		l.meter.Charge(space.WordsPerCounter + 1)
	}
	l.counts[v] += w
}

// EndPass implements stream.Algorithm.
func (l *LocalTriangles) EndPass(p int) {
	if p == 0 {
		l.m = l.items / 2
	}
}

// Local returns the estimated triangle count through v.
func (l *LocalTriangles) Local(v graph.V) float64 { return l.counts[v] }

// Counts returns the full estimate map (shared; do not modify).
func (l *LocalTriangles) Counts() map[graph.V]float64 { return l.counts }

// Estimate returns the implied global triangle count Σ local / 3.
func (l *LocalTriangles) Estimate() float64 {
	if l.snap != nil {
		return l.snap.Estimate
	}
	// Sum in sorted vertex order: map iteration order is randomized, and
	// a fixed summation order keeps the estimate bit-deterministic across
	// runs and execution drivers.
	vs := make([]graph.V, 0, len(l.counts))
	for v := range l.counts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var s float64
	for _, v := range vs {
		s += l.counts[v]
	}
	return s / 3
}

// SpaceWords implements stream.Estimator.
func (l *LocalTriangles) SpaceWords() int64 {
	if l.snap != nil {
		return l.snap.SpaceWords
	}
	return l.meter.Peak()
}

// M returns the measured edge count.
func (l *LocalTriangles) M() int64 { return l.m }

var _ stream.Estimator = (*LocalTriangles)(nil)
