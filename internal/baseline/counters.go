package baseline

import (
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// StreamStats is a single-pass O(1)-space-per-list counter for the global
// quantities the estimators' budgets are stated in: the edge count m, the
// list (vertex) count, the wedge count P2 = Σ C(deg v, 2), the maximum
// degree, and degree moments. In the adjacency-list model the degree of the
// current list is exact by the list's end, so P2 needs only a running sum —
// the reason transitivity 3T/P2 needs no second estimator.
type StreamStats struct {
	items   int64
	lists   int64
	curDeg  int64
	maxDeg  int64
	p2      int64
	degSq   int64
	started bool
	cur     stream.ListCursor
}

var _ stream.Algorithm = (*StreamStats)(nil)

// NewStreamStats returns an empty counter.
func NewStreamStats() *StreamStats { return &StreamStats{} }

// Passes implements stream.Algorithm.
func (c *StreamStats) Passes() int { return 1 }

// StartPass implements stream.Algorithm.
func (c *StreamStats) StartPass(p int) { c.cur = stream.ListCursor{} }

// StartList implements stream.Algorithm.
func (c *StreamStats) StartList(owner graph.V) {
	c.lists++
	c.curDeg = 0
	c.started = true
}

// Edge implements stream.Algorithm.
func (c *StreamStats) Edge(owner, nbr graph.V) {
	c.items++
	c.curDeg++
}

// EndList implements stream.Algorithm.
func (c *StreamStats) EndList(owner graph.V) {
	d := c.curDeg
	c.p2 += d * (d - 1) / 2
	c.degSq += d * d
	if d > c.maxDeg {
		c.maxDeg = d
	}
}

// EndPass implements stream.Algorithm.
func (c *StreamStats) EndPass(p int) {}

// M returns the edge count m.
func (c *StreamStats) M() int64 { return c.items / 2 }

// Lists returns the number of adjacency lists (non-isolated vertices).
func (c *StreamStats) Lists() int64 { return c.lists }

// WedgeCount returns P2.
func (c *StreamStats) WedgeCount() int64 { return c.p2 }

// MaxDegree returns the maximum list length.
func (c *StreamStats) MaxDegree() int64 { return c.maxDeg }

// DegreeSecondMoment returns Σ deg(v)².
func (c *StreamStats) DegreeSecondMoment() int64 { return c.degSq }

// Transitivity combines an external triangle estimate with the exact P2
// into the global clustering coefficient 3T̂/P2 (0 when P2 = 0).
func (c *StreamStats) Transitivity(triangleEstimate float64) float64 {
	if c.p2 == 0 {
		return 0
	}
	return 3 * triangleEstimate / float64(c.p2)
}
