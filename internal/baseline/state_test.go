package baseline

// Fork/Snapshot/Restore round-trips for the baseline algorithms, mirroring
// internal/core/state_test.go: restored copies answer the documented
// accessors as the original did and re-encode byte-identically.

import (
	"bytes"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

func stateStream(t testing.TB) *stream.Stream {
	t.Helper()
	g, err := gen.ErdosRenyi(40, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Random(g, 3)
}

func checkStateRoundTrip(t *testing.T, name string, orig stream.MergeableEstimator, s *stream.Stream) {
	t.Helper()
	stream.Run(s, orig)
	snap := orig.Snapshot()
	st, err := stream.DecodeCopyState(snap)
	if err != nil {
		t.Fatalf("%s: decode own snapshot: %v", name, err)
	}
	if st.Estimate != orig.Estimate() || st.SpaceWords != orig.SpaceWords() || st.Passes != int64(orig.Passes()) {
		t.Errorf("%s: snapshot summary %+v diverges from live copy (est %v, space %d, passes %d)",
			name, st, orig.Estimate(), orig.SpaceWords(), orig.Passes())
	}
	fresh := orig.Fork(999)
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	if fresh.Estimate() != orig.Estimate() || fresh.SpaceWords() != orig.SpaceWords() || fresh.Passes() != orig.Passes() {
		t.Errorf("%s: restored copy answers (est %v, space %d, passes %d), want (%v, %d, %d)",
			name, fresh.Estimate(), fresh.SpaceWords(), fresh.Passes(),
			orig.Estimate(), orig.SpaceWords(), orig.Passes())
	}
	if !bytes.Equal(fresh.Snapshot(), snap) {
		t.Errorf("%s: re-snapshot of restored copy is not byte-identical", name)
	}
	if err := fresh.Restore((&stream.CopyState{Algo: "not-" + name, Passes: 1}).Encode()); err == nil {
		t.Errorf("%s: restore accepted a foreign algorithm tag", name)
	}
}

func checkForkDeterminism(t *testing.T, name string, mk func(seed uint64) stream.MergeableEstimator, s *stream.Stream) {
	t.Helper()
	forked := mk(1).Fork(77)
	direct := mk(77)
	stream.Run(s, forked)
	stream.Run(s, direct)
	if forked.Estimate() != direct.Estimate() {
		t.Errorf("%s: Fork(77) estimate %v != constructed-with-77 estimate %v",
			name, forked.Estimate(), direct.Estimate())
	}
	if !bytes.Equal(forked.Snapshot(), direct.Snapshot()) {
		t.Errorf("%s: Fork(77) snapshot diverges from constructed-with-77", name)
	}
}

func TestOnePassTriangleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewOnePassTriangle(Config{SampleProb: 0.6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*OnePassTriangle)
	checkStateRoundTrip(t, "onepass-triangle", orig, s)
	restored := orig.Fork(5).(*OnePassTriangle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.Detected() != orig.Detected() {
		t.Errorf("restored M/detected = %d/%v, want %d/%v",
			restored.M(), restored.Detected(), orig.M(), orig.Detected())
	}
	checkForkDeterminism(t, "onepass-triangle", mk, s)
}

func TestOnePassFourCycleState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewOnePassFourCycle(Config{SampleProb: 0.6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*OnePassFourCycle)
	checkStateRoundTrip(t, "onepass-fourcycle", orig, s)
	restored := orig.Fork(5).(*OnePassFourCycle)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.M() != orig.M() || restored.Detected() != orig.Detected() {
		t.Errorf("restored M/detected = %d/%v, want %d/%v",
			restored.M(), restored.Detected(), orig.M(), orig.Detected())
	}
	checkForkDeterminism(t, "onepass-fourcycle", mk, s)
}

func TestWedgeSamplerState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewWedgeSampler(Config{SampleProb: 0.6, WedgeCap: 512, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*WedgeSampler)
	checkStateRoundTrip(t, "wedge-sampler", orig, s)
	restored := orig.Fork(5).(*WedgeSampler)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.ClosedWedges() != orig.ClosedWedges() || restored.WedgesFormed() != orig.WedgesFormed() {
		t.Errorf("restored closed/formed = %d/%d, want %d/%d",
			restored.ClosedWedges(), restored.WedgesFormed(), orig.ClosedWedges(), orig.WedgesFormed())
	}
	checkForkDeterminism(t, "wedge-sampler", mk, s)
}

func TestLocalTrianglesState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewLocalTriangles(0.7, seed)
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*LocalTriangles)
	checkStateRoundTrip(t, "local-triangles", orig, s)
	restored := orig.Fork(5).(*LocalTriangles)
	if err := restored.Restore(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := orig.Counts()
	got := restored.Counts()
	if len(got) != len(want) {
		t.Fatalf("restored %d local counts, want %d", len(got), len(want))
	}
	for v, c := range want {
		if got[v] != c {
			t.Errorf("restored Local(%d) = %v, want %v", v, got[v], c)
		}
	}
	checkForkDeterminism(t, "local-triangles", mk, s)
}

func TestExactStreamState(t *testing.T) {
	s := stateStream(t)
	mk := func(seed uint64) stream.MergeableEstimator {
		alg, err := NewExactStream(3)
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	orig := mk(11).(*ExactStream)
	checkStateRoundTrip(t, "exact", orig, s)
	// A 4-cycle counter must reject a 3-cycle snapshot: same tag, different
	// cycle length.
	other, err := NewExactStream(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(orig.Snapshot()); err == nil {
		t.Error("4-cycle ExactStream restored a 3-cycle snapshot")
	}
}

func TestStreamStatsState(t *testing.T) {
	s := stateStream(t)
	orig := NewStreamStats()
	stream.Run(s, orig)
	snap := orig.Snapshot()
	fresh := orig.Fork(0)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.M() != orig.M() || fresh.Lists() != orig.Lists() ||
		fresh.MaxDegree() != orig.MaxDegree() || fresh.WedgeCount() != orig.WedgeCount() ||
		fresh.DegreeSecondMoment() != orig.DegreeSecondMoment() {
		t.Errorf("restored StreamStats diverges: got (m=%d lists=%d max=%d p2=%d degsq=%d)",
			fresh.M(), fresh.Lists(), fresh.MaxDegree(), fresh.WedgeCount(), fresh.DegreeSecondMoment())
	}
	if fresh.Transitivity(10) != orig.Transitivity(10) {
		t.Errorf("restored Transitivity(10) = %v, want %v", fresh.Transitivity(10), orig.Transitivity(10))
	}
	if !bytes.Equal(fresh.Snapshot(), snap) {
		t.Error("re-snapshot of restored StreamStats is not byte-identical")
	}
	if err := fresh.Restore((&stream.CopyState{Algo: "exact", Passes: 1}).Encode()); err == nil {
		t.Error("StreamStats restored a foreign algorithm tag")
	}
}
