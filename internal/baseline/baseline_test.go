package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

func TestOnePassExactAtFullSample(t *testing.T) {
	// With every edge sampled, N = 2T exactly (each triangle detectable at
	// exactly two of its edges), so the estimate is exactly T.
	cases := []int{1, 5, 25}
	for _, n := range cases {
		g := gen.DisjointTriangles(n)
		for seed := uint64(0); seed < 3; seed++ {
			alg, err := NewOnePassTriangle(Config{SampleProb: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			stream.Run(stream.Random(g, seed), alg)
			if got := alg.Estimate(); got != float64(n) {
				t.Fatalf("t=%d seed %d: estimate = %v", n, seed, got)
			}
			if alg.PairsDiscovered() != int64(2*n) {
				t.Fatalf("t=%d: N = %d, want %d", n, alg.PairsDiscovered(), 2*n)
			}
		}
	}
}

func TestOnePassExactAtFullSampleQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(14, 0.4, seed%256+1)
		if err != nil {
			return false
		}
		alg, err := NewOnePassTriangle(Config{SampleProb: 1, Seed: 1})
		if err != nil {
			return false
		}
		stream.Run(stream.Random(g, seed), alg)
		return alg.Estimate() == float64(g.Triangles()) &&
			alg.PairsDiscovered() == 2*g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnePassUnbiasedUnderSubsampling(t *testing.T) {
	g, err := gen.PlantedTriangles(60, 20, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := stream.Random(g, 3)
	var ests []float64
	for seed := uint64(0); seed < 250; seed++ {
		alg, err := NewOnePassTriangle(Config{SampleProb: 0.4, Seed: seed*3 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.1 {
		t.Fatalf("mean = %v, truth = %v", mean, truth)
	}
}

func TestOnePassBottomK(t *testing.T) {
	g := gen.DisjointTriangles(100)
	var ests []float64
	for seed := uint64(0); seed < 200; seed++ {
		alg, err := NewOnePassTriangle(Config{SampleSize: 150, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Random(g, 5), alg)
		ests = append(ests, alg.Estimate())
	}
	truth := float64(g.Triangles())
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.2 {
		t.Fatalf("bottom-k mean = %v, truth = %v", mean, truth)
	}
}

func TestOnePassTriangleFree(t *testing.T) {
	g := gen.CompleteBipartite(10, 10)
	alg, err := NewOnePassTriangle(Config{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), alg)
	if alg.Detected() || alg.Estimate() != 0 {
		t.Fatal("false positive on triangle-free graph")
	}
}

func TestWedgeSamplerUnbiasedRandomOrder(t *testing.T) {
	g, err := gen.PlantedTriangles(80, 15, 0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(g.Triangles())
	var ests []float64
	// Average over both stream orders and sampling seeds: the 2/3 closure
	// argument is over the random list order.
	for seed := uint64(0); seed < 400; seed++ {
		alg, err := NewWedgeSampler(Config{SampleProb: 0.6, Seed: seed*7 + 3})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Random(g, seed+1000), alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-truth)/truth > 0.15 {
		t.Fatalf("mean = %v, truth = %v", mean, truth)
	}
}

func TestWedgeSamplerFullSampleClosures(t *testing.T) {
	// One triangle, all edges sampled: over many uniformly random orders
	// the closure count must average 5/2 — the wedges centered at the two
	// earliest lists always close, the third closes with probability 1/2
	// (within-list order of its formation and closing items).
	g := gen.DisjointTriangles(1)
	var sum float64
	const trials = 600
	for seed := uint64(0); seed < trials; seed++ {
		alg, err := NewWedgeSampler(Config{SampleProb: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(stream.Random(g, seed), alg)
		c := float64(alg.ClosedWedges())
		if c < 2 || c > 3 {
			t.Fatalf("closed %v wedges of one triangle, want 2 or 3", c)
		}
		sum += c
	}
	if mean := sum / trials; math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("mean closures = %v, want ≈2.5", mean)
	}
}

func TestWedgeSamplerCap(t *testing.T) {
	g := gen.Complete(12)
	alg, err := NewWedgeSampler(Config{SampleProb: 1, WedgeCap: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 1), alg)
	if alg.WedgesFormed() <= 15 {
		t.Fatalf("formed = %d, expected > cap", alg.WedgesFormed())
	}
	if est := alg.Estimate(); est < 0 || math.IsNaN(est) {
		t.Fatalf("degenerate estimate %v", est)
	}
}

func TestWedgeSamplerBottomKEviction(t *testing.T) {
	g := gen.Complete(15)
	alg, err := NewWedgeSampler(Config{SampleSize: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 2), alg)
	if est := alg.Estimate(); est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		t.Fatalf("degenerate estimate %v", est)
	}
}

func TestExactStreamTriangles(t *testing.T) {
	g, err := gen.ErdosRenyi(40, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewExactStream(3)
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 1), alg)
	if got := alg.Estimate(); got != float64(g.Triangles()) {
		t.Fatalf("exact = %v, want %d", got, g.Triangles())
	}
	if alg.SpaceWords() != 2*g.M() {
		t.Fatalf("space = %d, want %d", alg.SpaceWords(), 2*g.M())
	}
	if alg.M() != g.M() {
		t.Fatalf("M = %d", alg.M())
	}
}

func TestExactStreamFourCycles(t *testing.T) {
	g := gen.CompleteBipartite(5, 6)
	alg, err := NewExactStream(4)
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Sorted(g), alg)
	if got := alg.Estimate(); got != float64(g.FourCycles()) {
		t.Fatalf("exact = %v, want %d", got, g.FourCycles())
	}
}

func TestExactStreamRejectsShortCycles(t *testing.T) {
	if _, err := NewExactStream(2); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SampleSize: 5, SampleProb: 0.5},
		{SampleProb: 1.2},
		{SampleSize: 5, WedgeCap: -2},
	}
	for i, cfg := range bad {
		if _, err := NewOnePassTriangle(cfg); err == nil {
			t.Errorf("case %d: expected error (one-pass)", i)
		}
		if _, err := NewWedgeSampler(cfg); err == nil {
			t.Errorf("case %d: expected error (wedge)", i)
		}
	}
}
