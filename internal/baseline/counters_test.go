package baseline

import (
	"testing"
	"testing/quick"

	"adjstream/internal/gen"
	"adjstream/internal/stream"
)

func TestStreamStatsMatchesGraph(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	c := NewStreamStats()
	stream.Run(stream.Random(g, 2), c)
	if c.M() != g.M() {
		t.Errorf("M = %d, want %d", c.M(), g.M())
	}
	if c.WedgeCount() != g.WedgeCount() {
		t.Errorf("P2 = %d, want %d", c.WedgeCount(), g.WedgeCount())
	}
	if c.MaxDegree() != int64(g.MaxDegree()) {
		t.Errorf("maxdeg = %d, want %d", c.MaxDegree(), g.MaxDegree())
	}
	var degSq int64
	for _, v := range g.Vertices() {
		d := int64(g.Degree(v))
		degSq += d * d
	}
	if c.DegreeSecondMoment() != degSq {
		t.Errorf("Σd² = %d, want %d", c.DegreeSecondMoment(), degSq)
	}
}

func TestStreamStatsTransitivity(t *testing.T) {
	g := gen.Complete(6)
	c := NewStreamStats()
	stream.Run(stream.Sorted(g), c)
	if got, want := c.Transitivity(float64(g.Triangles())), g.Transitivity(); got != want {
		t.Fatalf("transitivity = %v, want %v", got, want)
	}
	empty := NewStreamStats()
	if empty.Transitivity(5) != 0 {
		t.Fatal("empty transitivity should be 0")
	}
}

func TestStreamStatsOrderInvariantQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(25, 0.3, seed%128+1)
		if err != nil || g.M() == 0 {
			return true
		}
		a, b := NewStreamStats(), NewStreamStats()
		stream.Run(stream.Random(g, seed), a)
		stream.Run(stream.Random(g, seed+999), b)
		return a.M() == b.M() && a.WedgeCount() == b.WedgeCount() &&
			a.MaxDegree() == b.MaxDegree() && a.Lists() == b.Lists()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	g, err := gen.PlantedTriangles(30, 15, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := stream.Random(g, 1)
	mkCopies := func() []stream.Estimator {
		out := make([]stream.Estimator, 5)
		for i := range out {
			e, err := NewOnePassTriangle(Config{SampleProb: 0.5, Seed: uint64(i) + 1})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = e
		}
		return out
	}
	seq := mkCopies()
	for _, e := range seq {
		stream.Run(s, e)
	}
	par := mkCopies()
	est, sp := stream.MedianParallel(s, par)
	var seqEsts []float64
	var seqSpace int64
	for _, e := range seq {
		seqEsts = append(seqEsts, e.Estimate())
		seqSpace += e.SpaceWords()
	}
	for i := range seq {
		if seq[i].Estimate() != par[i].Estimate() {
			t.Fatalf("copy %d: parallel %v vs sequential %v", i, par[i].Estimate(), seq[i].Estimate())
		}
	}
	if sp != seqSpace {
		t.Fatalf("space %d vs %d", sp, seqSpace)
	}
	_ = est
}
