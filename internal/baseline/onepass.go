package baseline

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// Config parameterizes the baseline samplers; exactly one of SampleSize
// (bottom-k) and SampleProb (independent hash inclusion) must be set.
type Config struct {
	SampleSize int
	SampleProb float64
	// WedgeCap bounds the wedge set of WedgeSampler (0 = unbounded).
	WedgeCap int
	Seed     uint64
}

func (c Config) validate() error {
	hasSize := c.SampleSize > 0
	hasProb := c.SampleProb > 0
	if hasSize == hasProb {
		return fmt.Errorf("baseline: exactly one of SampleSize and SampleProb must be set (size=%d prob=%v)", c.SampleSize, c.SampleProb)
	}
	if hasProb && c.SampleProb > 1 {
		return fmt.Errorf("baseline: SampleProb %v > 1", c.SampleProb)
	}
	if c.WedgeCap < 0 {
		return fmt.Errorf("baseline: negative WedgeCap %d", c.WedgeCap)
	}
	return nil
}

func (c Config) newSampler(onEvict func(graph.Edge)) (sampling.EdgeSampler, error) {
	if c.SampleSize > 0 {
		return sampling.NewBottomK(c.SampleSize, c.Seed, onEvict), nil
	}
	return sampling.NewFixedProb(c.SampleProb, c.Seed)
}

// oneRec is a sampled edge with detection flags for the one-pass estimator.
type oneRec struct {
	u, v         graph.V
	flagU, flagV bool
	hits         int64 // detections credited to this edge
	dead         bool
}

// OnePassTriangle is the Õ(m/√T)-style single-pass estimator: sample edges
// by hash (membership decided at first sight) and flag their endpoints in
// every subsequent adjacency list; a list containing both endpoints of a
// sampled edge closes a triangle. In adjacency-list order, each triangle is
// detectable at exactly two of its three edges (the two whose first
// appearance precedes the third vertex's list), so the estimate is
// scale·N/2.
type OnePassTriangle struct {
	cfg      Config
	sampler  sampling.EdgeSampler
	recs     map[graph.Edge]*oneRec
	byVertex map[graph.V][]*oneRec
	dirty    []*oneRec

	items int64
	m     int64
	found int64
	meter space.Meter
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap *stream.CopyState
}

var _ stream.Estimator = (*OnePassTriangle)(nil)

// NewOnePassTriangle validates cfg and returns the estimator.
func NewOnePassTriangle(cfg Config) (*OnePassTriangle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	o := &OnePassTriangle{
		cfg:      cfg,
		recs:     make(map[graph.Edge]*oneRec),
		byVertex: make(map[graph.V][]*oneRec),
	}
	sampler, err := cfg.newSampler(func(e graph.Edge) {
		if r := o.recs[e]; r != nil {
			r.dead = true
			// Detections by an edge that does not survive into the final
			// sample would bias the estimator upward (early samples are
			// over-inclusive); retract them.
			o.found -= r.hits
			o.meter.Release(space.WordsPerEdge)
		}
	})
	if err != nil {
		return nil, err
	}
	o.sampler = sampler
	attachMeter("onepass_triangle", &o.meter)
	return o, nil
}

// Passes implements stream.Algorithm.
func (o *OnePassTriangle) Passes() int { return 1 }

// StartPass implements stream.Algorithm.
func (o *OnePassTriangle) StartPass(p int) { o.cur = stream.ListCursor{} }

// StartList implements stream.Algorithm.
func (o *OnePassTriangle) StartList(owner graph.V) {}

// Edge implements stream.Algorithm.
func (o *OnePassTriangle) Edge(owner, nbr graph.V) {
	o.items++
	e := graph.Edge{U: owner, V: nbr}.Norm()
	if o.sampler.Offer(owner, nbr) && o.recs[e] == nil {
		r := &oneRec{u: e.U, v: e.V}
		o.recs[e] = r
		o.byVertex[r.u] = append(o.byVertex[r.u], r)
		o.byVertex[r.v] = append(o.byVertex[r.v], r)
		o.meter.Charge(space.WordsPerEdge)
	}
	for _, r := range o.byVertex[nbr] {
		if r.dead {
			continue
		}
		if !r.flagU && !r.flagV {
			o.dirty = append(o.dirty, r)
		}
		if nbr == r.u {
			r.flagU = true
		} else {
			r.flagV = true
		}
	}
}

// EndList implements stream.Algorithm.
func (o *OnePassTriangle) EndList(owner graph.V) {
	for _, r := range o.dirty {
		if r.flagU && r.flagV && !r.dead {
			o.found++
			r.hits++
		}
		r.flagU, r.flagV = false, false
	}
	o.dirty = o.dirty[:0]
}

// EndPass implements stream.Algorithm.
func (o *OnePassTriangle) EndPass(p int) { o.m = o.items / 2 }

// Estimate returns scale·N/2 (two detectable edges per triangle).
func (o *OnePassTriangle) Estimate() float64 {
	if o.snap != nil {
		return o.snap.Estimate
	}
	return o.sampler.InclusionScale(o.m) * float64(o.found) / 2
}

// Detected reports whether any triangle was found.
func (o *OnePassTriangle) Detected() bool { return o.found > 0 }

// PairsDiscovered returns the raw detection count N.
func (o *OnePassTriangle) PairsDiscovered() int64 { return o.found }

// SpaceWords implements stream.Estimator.
func (o *OnePassTriangle) SpaceWords() int64 {
	if o.snap != nil {
		return o.snap.SpaceWords
	}
	return o.meter.Peak()
}

// M returns the measured edge count.
func (o *OnePassTriangle) M() int64 { return o.m }
