package baseline

import (
	"math"
	"testing"

	"adjstream/internal/gen"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

func TestOnePassFourCycleExactAtFullSample(t *testing.T) {
	g := gen.CompleteBipartite(4, 5)
	alg, err := NewOnePassFourCycle(Config{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 2), alg)
	if got := alg.Estimate(); got != float64(g.FourCycles()) {
		t.Fatalf("estimate = %v, want %d", got, g.FourCycles())
	}
	if !alg.Detected() {
		t.Fatal("should detect at full sample")
	}
	if alg.M() != g.M() {
		t.Fatalf("M = %d", alg.M())
	}
}

func TestOnePassFourCycleUnbiased(t *testing.T) {
	g := gen.DisjointFourCycles(100)
	s := stream.Random(g, 1)
	var ests []float64
	for seed := uint64(0); seed < 400; seed++ {
		alg, err := NewOnePassFourCycle(Config{SampleProb: 0.6, Seed: seed*3 + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		ests = append(ests, alg.Estimate())
	}
	if mean := stats.Mean(ests); math.Abs(mean-100)/100 > 0.15 {
		t.Fatalf("mean = %v, want ≈100", mean)
	}
}

// The (m′/m)⁴ collapse: at a sublinear-ish rate the detector almost never
// fires even with plenty of cycles present — the Theorem 5.3 phenomenon.
func TestOnePassFourCycleCollapsesAtLowRate(t *testing.T) {
	g := gen.DisjointFourCycles(50)
	s := stream.Random(g, 4)
	detects := 0
	const trials = 60
	for seed := uint64(0); seed < trials; seed++ {
		alg, err := NewOnePassFourCycle(Config{SampleProb: 0.1, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		stream.Run(s, alg)
		if alg.Detected() {
			detects++
		}
	}
	// Expected detection ≈ 1-(1-10⁻⁴)⁵⁰ ≈ 0.5%; allow slack.
	if float64(detects)/trials > 0.2 {
		t.Fatalf("detected in %d/%d trials; expected near-total collapse", detects, trials)
	}
}

func TestOnePassFourCycleBottomKEviction(t *testing.T) {
	g := gen.CompleteBipartite(6, 6)
	alg, err := NewOnePassFourCycle(Config{SampleSize: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stream.Run(stream.Random(g, 2), alg)
	if est := alg.Estimate(); est < 0 || math.IsNaN(est) {
		t.Fatalf("degenerate estimate %v", est)
	}
}
