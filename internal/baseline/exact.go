package baseline

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// ExactStream is the trivial O(m)-space single-pass algorithm: store every
// edge and count exactly at the end. It anchors the space axis of every
// Table 1 comparison and provides ground truth inside the streaming harness.
type ExactStream struct {
	cycleLen int
	builder  *graph.Builder
	items    int64
	meter    space.Meter
	cur      stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap *stream.CopyState
}

var _ stream.Estimator = (*ExactStream)(nil)

// NewExactStream returns an exact counter for cycles of length cycleLen ≥ 3.
func NewExactStream(cycleLen int) (*ExactStream, error) {
	if cycleLen < 3 {
		return nil, fmt.Errorf("baseline: cycle length %d < 3", cycleLen)
	}
	e := &ExactStream{cycleLen: cycleLen, builder: graph.NewBuilder()}
	attachMeter("exact_stream", &e.meter)
	return e, nil
}

// Passes implements stream.Algorithm.
func (e *ExactStream) Passes() int { return 1 }

// StartPass implements stream.Algorithm.
func (e *ExactStream) StartPass(p int) { e.cur = stream.ListCursor{} }

// StartList implements stream.Algorithm.
func (e *ExactStream) StartList(owner graph.V) {}

// Edge implements stream.Algorithm.
func (e *ExactStream) Edge(owner, nbr graph.V) {
	e.items++
	if e.builder.AddIfAbsent(owner, nbr) {
		e.meter.Charge(space.WordsPerEdge)
	}
}

// EndList implements stream.Algorithm.
func (e *ExactStream) EndList(owner graph.V) {}

// EndPass implements stream.Algorithm.
func (e *ExactStream) EndPass(p int) {}

// Estimate returns the exact cycle count.
func (e *ExactStream) Estimate() float64 {
	if e.snap != nil {
		return e.snap.Estimate
	}
	g := e.builder.Graph()
	n, err := g.CountCycles(e.cycleLen)
	if err != nil {
		return 0
	}
	return float64(n)
}

// SpaceWords implements stream.Estimator.
func (e *ExactStream) SpaceWords() int64 {
	if e.snap != nil {
		return e.snap.SpaceWords
	}
	return e.meter.Peak()
}

// M returns the measured edge count.
func (e *ExactStream) M() int64 {
	if e.snap != nil {
		return e.snap.M
	}
	return e.builder.M()
}
