// Package baseline implements the prior-work streaming algorithms that
// Table 1 of the paper compares against: the one-pass Õ(m/√T) edge-sampling
// triangle estimator in the style of McGregor–Vorotnikova–Vu [27], a
// one-pass wedge-sampling estimator in the style of Buriol et al. [12] /
// Jha–Seshadhri–Pinar [17] (unbiased under random list order), the one-pass
// 4-cycle edge-sampling heuristic that Theorem 5.3's lower bound defeats,
// a local (per-vertex) triangle counter, and the trivial O(m) exact
// streaming counter that anchors the space axis.
//
// Every estimator charges an internal/space meter for retained state; with
// the global registry of internal/telemetry enabled, each constructor also
// mirrors its meter's high-water mark under "baseline.<name>.space_words".
package baseline
