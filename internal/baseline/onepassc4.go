package baseline

import (
	"adjstream/internal/graph"
	"adjstream/internal/sampling"
	"adjstream/internal/space"
	"adjstream/internal/stream"
)

// OnePassFourCycle is the natural sublinear one-pass 4-cycle heuristic:
// keep a bottom-k edge sample and count the 4-cycles inside it, scaling by
// the fourth power of the inclusion rate. Theorem 5.3 proves that *no*
// sublinear one-pass algorithm can work for 4-cycles (unlike triangles),
// and this estimator is the empirical witness: on the Figure 1c gadgets its
// detection probability collapses to (m′/m)⁴-level — experiment T1.R10
// uses it to show the lower bound biting a concrete algorithm.
type OnePassFourCycle struct {
	cfg     Config
	sampler sampling.EdgeSampler
	builder *graph.Builder
	evicted map[graph.Edge]bool

	items int64
	m     int64
	meter space.Meter
	cur   stream.ListCursor

	// Restored-run summary (state.go); nil unless Restore was called.
	snap         *stream.CopyState
	snapDetected bool
}

var _ stream.Estimator = (*OnePassFourCycle)(nil)

// NewOnePassFourCycle validates cfg and returns the estimator.
func NewOnePassFourCycle(cfg Config) (*OnePassFourCycle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	o := &OnePassFourCycle{cfg: cfg, builder: graph.NewBuilder(), evicted: make(map[graph.Edge]bool)}
	sampler, err := cfg.newSampler(func(e graph.Edge) {
		// The builder cannot delete; remember evictions and filter at the
		// end (bottom-k churn is modest at the budgets this is used with).
		o.evicted[e] = true
		o.meter.Release(space.WordsPerEdge)
	})
	if err != nil {
		return nil, err
	}
	o.sampler = sampler
	attachMeter("onepass_fourcycle", &o.meter)
	return o, nil
}

// Passes implements stream.Algorithm.
func (o *OnePassFourCycle) Passes() int { return 1 }

// StartPass implements stream.Algorithm.
func (o *OnePassFourCycle) StartPass(p int) { o.cur = stream.ListCursor{} }

// StartList implements stream.Algorithm.
func (o *OnePassFourCycle) StartList(owner graph.V) {}

// Edge implements stream.Algorithm.
func (o *OnePassFourCycle) Edge(owner, nbr graph.V) {
	o.items++
	if o.sampler.Offer(owner, nbr) {
		if o.builder.AddIfAbsent(owner, nbr) {
			o.meter.Charge(space.WordsPerEdge)
		}
	}
}

// EndList implements stream.Algorithm.
func (o *OnePassFourCycle) EndList(owner graph.V) {}

// EndPass implements stream.Algorithm.
func (o *OnePassFourCycle) EndPass(p int) { o.m = o.items / 2 }

// sampleGraph returns the retained sample as a graph, dropping evictions.
func (o *OnePassFourCycle) sampleGraph() *graph.Graph {
	if len(o.evicted) == 0 {
		return o.builder.Graph()
	}
	full := o.builder.Graph()
	b := graph.NewBuilder()
	for _, e := range full.Edges() {
		if !o.evicted[e] {
			_ = b.Add(e.U, e.V)
		}
	}
	return b.Graph()
}

// Estimate returns (#4-cycles in the sample)·(m/m′)⁴: unbiased, but a cycle
// survives only if all four of its edges are sampled — the (m′/m)⁴ hit that
// makes the estimator useless at sublinear budgets, exactly as Theorem 5.3
// requires.
func (o *OnePassFourCycle) Estimate() float64 {
	if o.snap != nil {
		return o.snap.Estimate
	}
	g := o.sampleGraph()
	inSample := g.FourCycles()
	scale := o.sampler.InclusionScale(o.m)
	return float64(inSample) * scale * scale * scale * scale
}

// Detected reports whether any 4-cycle survived in the sample.
func (o *OnePassFourCycle) Detected() bool {
	if o.snap != nil {
		return o.snapDetected
	}
	return o.sampleGraph().FourCycles() > 0
}

// SpaceWords implements stream.Estimator.
func (o *OnePassFourCycle) SpaceWords() int64 {
	if o.snap != nil {
		return o.snap.SpaceWords
	}
	return o.meter.Peak()
}

// M returns the measured edge count.
func (o *OnePassFourCycle) M() int64 { return o.m }
