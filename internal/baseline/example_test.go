package baseline_test

import (
	"fmt"

	"adjstream/internal/baseline"
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

// ExampleNewExactStream counts triangles exactly in one pass with O(m)
// words — the space-axis anchor of Table 1.
func ExampleNewExactStream() {
	g := graph.MustFromEdges([]graph.Edge{
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	})
	est, err := baseline.NewExactStream(3)
	if err != nil {
		panic(err)
	}
	stream.Run(stream.Sorted(g), est)
	fmt.Printf("triangles=%.0f space=%d words\n", est.Estimate(), est.SpaceWords())
	// Output:
	// triangles=4 space=12 words
}

// ExampleNewOnePassTriangle runs the one-pass Õ(m/√T) edge-sampling
// baseline with every edge kept (SampleProb 1), where it is exact.
func ExampleNewOnePassTriangle() {
	g := graph.MustFromEdges([]graph.Edge{
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	est, err := baseline.NewOnePassTriangle(baseline.Config{SampleProb: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	stream.Run(stream.Sorted(g), est)
	fmt.Printf("passes=%d estimate=%.0f\n", est.Passes(), est.Estimate())
	// Output:
	// passes=1 estimate=1
}
