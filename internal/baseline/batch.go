package baseline

// Columnar fast paths — see internal/core/batch.go for the shared shape.
// Each EdgeBatch walks the run offsets, replaying the exact
// Edge/StartList/EndList sequence of the item driver with direct (inlinable)
// method calls, carrying the open-list cursor across batches per the
// stream.BatchAlgorithm contract.

import (
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

var (
	_ stream.BatchAlgorithm = (*OnePassTriangle)(nil)
	_ stream.BatchAlgorithm = (*OnePassFourCycle)(nil)
	_ stream.BatchAlgorithm = (*ExactStream)(nil)
	_ stream.BatchAlgorithm = (*LocalTriangles)(nil)
	_ stream.BatchAlgorithm = (*WedgeSampler)(nil)
	_ stream.BatchAlgorithm = (*StreamStats)(nil)
)

// EdgeBatch implements stream.BatchAlgorithm.
func (o *OnePassTriangle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			o.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if o.cur.Open {
			o.EndList(o.cur.Owner)
		}
		o.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		o.StartList(o.cur.Owner)
	}
	for ; i < len(owners); i++ {
		o.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (o *OnePassFourCycle) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			o.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if o.cur.Open {
			o.EndList(o.cur.Owner)
		}
		o.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		o.StartList(o.cur.Owner)
	}
	for ; i < len(owners); i++ {
		o.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (e *ExactStream) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			e.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if e.cur.Open {
			e.EndList(e.cur.Owner)
		}
		e.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		e.StartList(e.cur.Owner)
	}
	for ; i < len(owners); i++ {
		e.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (l *LocalTriangles) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			l.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if l.cur.Open {
			l.EndList(l.cur.Owner)
		}
		l.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		l.StartList(l.cur.Owner)
	}
	for ; i < len(owners); i++ {
		l.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (w *WedgeSampler) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			w.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if w.cur.Open {
			w.EndList(w.cur.Owner)
		}
		w.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		w.StartList(w.cur.Owner)
	}
	for ; i < len(owners); i++ {
		w.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}

// EdgeBatch implements stream.BatchAlgorithm.
func (c *StreamStats) EdgeBatch(owners, nbrs []uint32, runs []int32) {
	i := 0
	for _, b := range runs {
		for ; i < int(b); i++ {
			c.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
		}
		if c.cur.Open {
			c.EndList(c.cur.Owner)
		}
		c.cur = stream.ListCursor{Owner: graph.V(owners[b]), Open: true}
		c.StartList(c.cur.Owner)
	}
	for ; i < len(owners); i++ {
		c.Edge(graph.V(owners[i]), graph.V(nbrs[i]))
	}
}
