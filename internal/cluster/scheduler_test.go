package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adjstream"
	"adjstream/internal/gen"
	"adjstream/internal/serve"
)

// replica is one in-process adjserved under test control: shard requests
// can be failed or delayed without touching the serve internals.
type replica struct {
	ts    *httptest.Server
	srv   *serve.Server
	fail  atomic.Int64 // fail this many /v1/shard calls with 500
	delay atomic.Int64 // sleep this many ns before serving /v1/shard
	hits  atomic.Int64 // /v1/shard requests that reached serve
}

// newFleet starts n replicas over an identical catalog (k9 plus star16, so
// preference orders differ between graphs).
func newFleet(t *testing.T, n int) []*replica {
	t.Helper()
	fleet := make([]*replica, n)
	for i := range fleet {
		cat := serve.NewCatalog()
		if _, err := cat.Add("k9", gen.Complete(9)); err != nil {
			t.Fatal(err)
		}
		if _, err := cat.Add("tri32", gen.DisjointTriangles(32)); err != nil {
			t.Fatal(err)
		}
		rep := &replica{srv: serve.New(cat, serve.Config{})}
		h := rep.srv.Handler()
		rep.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				if d := rep.delay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				if rep.fail.Load() > 0 {
					rep.fail.Add(-1)
					http.Error(w, "injected failure", http.StatusInternalServerError)
					return
				}
				rep.hits.Add(1)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(rep.ts.Close)
		fleet[i] = rep
	}
	return fleet
}

func urls(fleet []*replica) []string {
	out := make([]string, len(fleet))
	for i, r := range fleet {
		out[i] = r.ts.URL
	}
	return out
}

// byURL finds the fleet member serving url.
func byURL(t *testing.T, fleet []*replica, url string) *replica {
	t.Helper()
	for _, r := range fleet {
		if r.ts.URL == url {
			return r
		}
	}
	t.Fatalf("no replica at %s", url)
	return nil
}

// newScheduler builds a scheduler over the fleet with fast test timings
// and probes disabled unless cfg overrides them.
func newScheduler(t *testing.T, fleet []*replica, cfg Config) *Scheduler {
	t.Helper()
	cfg.Replicas = urls(fleet)
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// singleNode asks one replica's JSON endpoint for the reference answer.
func singleNode(t *testing.T, rep *replica, kind string, req serve.EstimateRequest) serve.EstimateResponse {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(rep.ts.URL+"/v1/"+kind, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node %s status = %d", kind, resp.StatusCode)
	}
	var out serve.EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// wantIdentical compares a scheduled response to the single-node reference,
// ignoring only ElapsedMS (inherently timing-dependent).
func wantIdentical(t *testing.T, got, want serve.EstimateResponse) {
	t.Helper()
	got.ElapsedMS, want.ElapsedMS = 0, 0
	if got.Found != nil || want.Found != nil {
		if (got.Found == nil) != (want.Found == nil) || *got.Found != *want.Found {
			t.Errorf("found mismatch: %v vs %v", got.Found, want.Found)
		}
		got.Found, want.Found = nil, nil
	}
	if got != want {
		t.Errorf("scheduled response differs from single-node:\n got %+v\nwant %+v", got, want)
	}
}

func seedPtr(v uint64) *uint64 { return &v }

// testDataset builds the proxy-side pinned snapshot for one of newFleet's
// graphs — same content as every replica's catalog, so version 1 and the
// fingerprint line up fleet-wide, exactly as a real proxy's catalog does.
func testDataset(t *testing.T, name string) *serve.Dataset {
	t.Helper()
	cat := serve.NewCatalog()
	var g = gen.Complete(9)
	if name == "tri32" {
		g = gen.DisjointTriangles(32)
	}
	ds, err := cat.Add(name, g)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSchedulerMatchesSingleNode(t *testing.T) {
	fleet := newFleet(t, 3)
	s := newScheduler(t, fleet, Config{})
	req := serve.EstimateRequest{
		Graph:      "k9",
		Algorithm:  string(adjstream.AlgoTwoPassTriangle),
		SampleProb: 0.5,
		Copies:     7,
		Parallel:   true,
		Seed:       seedPtr(11),
	}
	got, err := s.Run(context.Background(), "estimate", req, testDataset(t, req.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if got.Driver != string(adjstream.DriverBroadcast) {
		t.Errorf("driver = %q, want %q (normalized default)", got.Driver, adjstream.DriverBroadcast)
	}
	wantIdentical(t, got, singleNode(t, fleet[0], "estimate", req))

	// Every replica served at least one shard of the 3-way fan-out.
	for i, rep := range fleet {
		if rep.hits.Load() == 0 {
			t.Errorf("replica %d served no shards", i)
		}
	}
}

func TestSchedulerDistinguish(t *testing.T) {
	fleet := newFleet(t, 3)
	s := newScheduler(t, fleet, Config{})
	for _, cycleLen := range []int{3, 4, 5} {
		req := serve.EstimateRequest{Graph: "tri32", CycleLen: cycleLen, Copies: 3, Seed: seedPtr(5)}
		got, err := s.Run(context.Background(), "distinguish", req, testDataset(t, req.Graph))
		if err != nil {
			t.Fatalf("cycle_len %d: %v", cycleLen, err)
		}
		if got.Found == nil {
			t.Fatalf("cycle_len %d: no found bit", cycleLen)
		}
		if want := cycleLen == 3; *got.Found != want {
			t.Errorf("cycle_len %d on disjoint triangles: found = %v, want %v", cycleLen, *got.Found, want)
		}
		if got.Algorithm != "" {
			t.Errorf("cycle_len %d: distinguish response leaked algorithm %q", cycleLen, got.Algorithm)
		}
		wantIdentical(t, got, singleNode(t, fleet[1], "distinguish", req))
	}
}

func TestSchedulerSingleCopyNoDriver(t *testing.T) {
	fleet := newFleet(t, 3)
	s := newScheduler(t, fleet, Config{})
	req := serve.EstimateRequest{Graph: "k9", Algorithm: "exact", Seed: seedPtr(1)}
	got, err := s.Run(context.Background(), "estimate", req, testDataset(t, req.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if got.Driver != "" {
		t.Errorf("single-copy run reported driver %q, want empty", got.Driver)
	}
	wantIdentical(t, got, singleNode(t, fleet[2], "estimate", req))
}

func TestSchedulerRetriesFailedShard(t *testing.T) {
	fleet := newFleet(t, 3)
	s := newScheduler(t, fleet, Config{})
	req := serve.EstimateRequest{
		Graph: "k9", Algorithm: string(adjstream.AlgoThreePassTriangle),
		SampleSize: 30, Copies: 5, Parallel: true, Seed: seedPtr(3),
	}
	// Kill the primary's next shard attempt (only the shard whose first
	// choice is the primary touches it); the retry must land that shard
	// on an alternate and still produce the identical answer.
	primary := byURL(t, fleet, s.Ring().Prefer("k9")[0])
	primary.fail.Store(1)
	got, err := s.Run(context.Background(), "estimate", req, testDataset(t, req.Graph))
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, singleNode(t, fleet[0], "estimate", req))
	if primary.fail.Load() != 0 {
		t.Error("injected failure was not consumed")
	}
	// The failed attempt demoted the primary in the ring.
	if s.Ring().Prefer("k9")[0] == primary.ts.URL {
		t.Error("failed primary was not demoted in the preference order")
	}
}

func TestSchedulerAllReplicasDown(t *testing.T) {
	fleet := newFleet(t, 2)
	s := newScheduler(t, fleet, Config{Attempts: 2})
	for _, rep := range fleet {
		rep.ts.Close()
	}
	_, err := s.Run(context.Background(), "estimate",
		serve.EstimateRequest{Graph: "k9", Algorithm: "exact"}, nil)
	if !errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want wrapping serve.ErrRemoteUnavailable", err)
	}
	if s.Ring().HealthyCount() != 0 {
		t.Errorf("HealthyCount = %d after total outage, want 0", s.Ring().HealthyCount())
	}
}

func TestSchedulerCancellationIsNotUnavailable(t *testing.T) {
	fleet := newFleet(t, 1)
	fleet[0].delay.Store(int64(time.Second))
	s := newScheduler(t, fleet, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Run(ctx, "estimate", serve.EstimateRequest{Graph: "k9", Algorithm: "exact"}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, serve.ErrRemoteUnavailable) {
		t.Error("caller cancellation must not trigger local fallback")
	}
}

func TestSchedulerHedgesSlowShard(t *testing.T) {
	fleet := newFleet(t, 2)
	s := newScheduler(t, fleet, Config{HedgeAfter: 10 * time.Millisecond, MaxShards: 1})
	req := serve.EstimateRequest{Graph: "k9", Algorithm: "exact", Seed: seedPtr(9)}
	prefer := s.Ring().Prefer("k9")
	slow, fast := byURL(t, fleet, prefer[0]), byURL(t, fleet, prefer[1])
	slow.delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	got, err := s.Run(context.Background(), "estimate", req, testDataset(t, req.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("run took %v; the hedge should have answered before the slow primary", elapsed)
	}
	if fast.hits.Load() == 0 {
		t.Error("hedge replica served no shard")
	}
	slow.delay.Store(0)
	wantIdentical(t, got, singleNode(t, slow, "estimate", req))
}

func TestSchedulerProbesFeedRing(t *testing.T) {
	fleet := newFleet(t, 2)
	s := newScheduler(t, fleet, Config{ProbeInterval: 10 * time.Millisecond})
	// Draining flips /healthz to 503; the probe loop must demote the
	// replica, and promote it again once draining ends.
	fleet[0].srv.SetDraining(true)
	deadline := time.Now().Add(2 * time.Second)
	for s.Ring().HealthyCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Ring().HealthyCount(); got != 1 {
		t.Fatalf("HealthyCount = %d while one replica drains, want 1", got)
	}
	fleet[0].srv.SetDraining(false)
	for s.Ring().HealthyCount() != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Ring().HealthyCount(); got != 2 {
		t.Fatalf("HealthyCount = %d after recovery, want 2", got)
	}
}

func TestSchedulerConfidenceCopies(t *testing.T) {
	fleet := newFleet(t, 3)
	s := newScheduler(t, fleet, Config{})
	req := serve.EstimateRequest{
		Graph: "k9", Algorithm: string(adjstream.AlgoTwoPassTriangle),
		SampleProb: 0.5, Confidence: 0.9, Parallel: true, Seed: seedPtr(2),
	}
	got, err := s.Run(context.Background(), "estimate", req, testDataset(t, req.Graph))
	if err != nil {
		t.Fatal(err)
	}
	wantIdentical(t, got, singleNode(t, fleet[0], "estimate", req))
	if got.Copies <= 1 {
		t.Errorf("confidence 0.9 ran %d copies, want > 1", got.Copies)
	}
}
