package cluster_test

import (
	"fmt"

	"adjstream/internal/cluster"
)

// The ring maps a graph name to a stable preference order over replicas.
// Marking a replica unhealthy reorders preference (healthy replicas
// first) but never moves placement: when it recovers, the original order
// returns, so the replica whose stream cache is warm for a graph stays
// its primary.
func ExampleRing() {
	r := cluster.NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)

	prefer := r.Prefer("my-graph")
	fmt.Println("replicas ranked:", len(prefer))

	primary := prefer[0]
	r.SetHealthy(primary, false)
	fmt.Println("demoted while unhealthy:", r.Prefer("my-graph")[0] != primary)

	r.SetHealthy(primary, true)
	fmt.Println("restored on recovery:", r.Prefer("my-graph")[0] == primary)
	// Output:
	// replicas ranked: 3
	// demoted while unhealthy: true
	// restored on recovery: true
}
