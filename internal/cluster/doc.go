// Package cluster scales adjserved horizontally without changing a single
// answer. The observation that makes this safe is structural: a median-of-k
// estimation is k independent estimator copies whose results meet only at
// the final median, and copy i's seed is a pure function of the request
// seed and i — never of how the copies were partitioned. Any disjoint cover
// of [0,k) by copy ranges, executed anywhere, therefore merges into the
// bit-identical single-node result.
//
// The Scheduler is the proxy half of that contract. For each request it
//
//   - derives the estimate-shaped spec (distinguish requests become their
//     underlying estimator via serve.DeriveEstimate),
//   - consistent-hashes the graph name to a preference order of replicas
//     (Ring), healthy replicas first,
//   - cuts the k copies into balanced contiguous ranges and POSTs each to a
//     replica's /v1/shard as JSON, receiving raw "adjM" snapshot-set bytes
//     back (the same framing cyclecount -snapshot writes to disk),
//   - retries failed shards against alternate replicas with capped
//     exponential backoff, optionally hedging slow attempts, and
//   - merges the snapshots with adjstream.MergeSnapshots and rebuilds the
//     serve.EstimateResponse exactly as the local path would have.
//
// Scheduler.Run satisfies serve.RemoteRunner, which is the entire
// integration surface: a serve.Server whose Config.Remote is Run becomes a
// cluster proxy (cmd/adjproxy), with the server's result cache, request
// coalescing, batch endpoint, and drain machinery operating unchanged in
// front — cache keys fingerprint the request and dataset, and the proxied
// response is byte-identical to the single-node one (ElapsedMS aside), so
// the cache cannot tell the difference. When no replica can complete a run,
// Run reports an error wrapping serve.ErrRemoteUnavailable and the server
// degrades to local single-node execution.
//
// Everything is observable under the cluster.* telemetry namespace; see
// telemetry.go and OPERATIONS.md.
package cluster
