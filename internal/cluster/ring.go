package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over replica base URLs with health
// tracking. Placement is a function of the configured replica set alone —
// each replica owns VirtualNodes points on a 64-bit FNV-1a circle — so
// every proxy holding the same -replicas list routes a graph to the same
// primary without coordination. Health does not move placement (that would
// reshuffle cache-warm shards on every flap); it only reorders preference:
// Prefer walks the circle clockwise from the key's hash collecting each
// replica once, then stable-partitions the walk so currently-healthy
// replicas come first. A replica marked unhealthy therefore remains a
// last-resort alternate rather than vanishing.
type Ring struct {
	mu      sync.RWMutex
	healthy map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica string
}

// hash64 is FNV-1a over s, finished with a splitmix64 avalanche. The
// finisher matters: raw FNV of short names differing in one trailing
// character lands within ~2^40 of each other — far closer than the ~2^56
// average gap between ring points — so a fleet serving "g-0"…"g-199"
// would hash every graph into the same gap and onto one replica.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring with vnodes points per replica (minimum 1).
// Replicas start healthy; probes and request outcomes adjust that.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{
		healthy: make(map[string]bool, len(replicas)),
		points:  make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for _, rep := range replicas {
		if _, dup := r.healthy[rep]; dup {
			continue
		}
		r.healthy[rep] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash64(rep + "#" + strconv.Itoa(i)), rep})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.replica < b.replica
	})
	return r
}

// Prefer returns every replica exactly once, ordered by preference for key:
// the clockwise walk from the key's hash point, healthy replicas first.
// The slice is freshly allocated; callers may reorder it.
func (r *Ring) Prefer(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= hash64(key)
	})
	seen := make(map[string]bool, len(r.healthy))
	walk := make([]string, 0, len(r.healthy))
	for i := 0; i < len(r.points) && len(walk) < len(r.healthy); i++ {
		rep := r.points[(start+i)%len(r.points)].replica
		if !seen[rep] {
			seen[rep] = true
			walk = append(walk, rep)
		}
	}
	ordered := make([]string, 0, len(walk))
	for _, rep := range walk {
		if r.healthy[rep] {
			ordered = append(ordered, rep)
		}
	}
	for _, rep := range walk {
		if !r.healthy[rep] {
			ordered = append(ordered, rep)
		}
	}
	return ordered
}

// SetHealthy records replica's health and reports whether that changed it.
// Unknown replicas are ignored (reported as unchanged).
func (r *Ring) SetHealthy(replica string, ok bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, known := r.healthy[replica]
	if !known || cur == ok {
		return false
	}
	r.healthy[replica] = ok
	return true
}

// HealthyCount reports how many replicas are currently marked healthy.
func (r *Ring) HealthyCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, ok := range r.healthy {
		if ok {
			n++
		}
	}
	return n
}

// Replicas returns the configured replica set, sorted.
func (r *Ring) Replicas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.healthy))
	for rep := range r.healthy {
		out = append(out, rep)
	}
	sort.Strings(out)
	return out
}
