package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingPreferStableAndComplete(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(reps, 64)
	first := r.Prefer("k6")
	if len(first) != 3 {
		t.Fatalf("Prefer returned %d replicas, want 3", len(first))
	}
	seen := map[string]bool{}
	for _, rep := range first {
		seen[rep] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Prefer repeated a replica: %v", first)
	}
	// Placement is deterministic: a fresh ring over the same replica set
	// orders the same key identically.
	if again := NewRing(reps, 64).Prefer("k6"); !reflect.DeepEqual(first, again) {
		t.Errorf("Prefer not deterministic: %v vs %v", first, again)
	}
	// Replica order in the config must not matter.
	if perm := NewRing([]string{reps[2], reps[0], reps[1]}, 64).Prefer("k6"); !reflect.DeepEqual(first, perm) {
		t.Errorf("Prefer depends on config order: %v vs %v", first, perm)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(reps, 64)
	primaries := map[string]int{}
	for i := 0; i < 200; i++ {
		primaries[r.Prefer(fmt.Sprintf("graph-%d", i))[0]]++
	}
	if len(primaries) != len(reps) {
		t.Fatalf("only %d of %d replicas are ever primary: %v", len(primaries), len(reps), primaries)
	}
	for rep, n := range primaries {
		if n < 10 {
			t.Errorf("replica %s is primary for only %d/200 keys", rep, n)
		}
	}
}

func TestRingHealthReordersNotReplaces(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	order := r.Prefer("g")
	if changed := r.SetHealthy(order[0], false); !changed {
		t.Fatal("SetHealthy(false) on a healthy replica reported no change")
	}
	if changed := r.SetHealthy(order[0], false); changed {
		t.Error("repeated SetHealthy(false) reported a change")
	}
	if r.HealthyCount() != 2 {
		t.Fatalf("HealthyCount = %d, want 2", r.HealthyCount())
	}
	after := r.Prefer("g")
	if len(after) != 3 {
		t.Fatalf("unhealthy replica vanished from Prefer: %v", after)
	}
	if after[2] != order[0] {
		t.Errorf("unhealthy replica not demoted to last: %v (was primary %s)", after, order[0])
	}
	// The healthy pair keeps its relative ring order.
	if after[0] != order[1] || after[1] != order[2] {
		t.Errorf("healthy replicas reshuffled: %v, want [%s %s] first", after, order[1], order[2])
	}
	r.SetHealthy(order[0], true)
	if got := r.Prefer("g"); !reflect.DeepEqual(got, order) {
		t.Errorf("recovery did not restore placement order: %v vs %v", got, order)
	}
	if r.SetHealthy("http://unknown:1", false) {
		t.Error("SetHealthy on an unknown replica reported a change")
	}
}

func TestCutShards(t *testing.T) {
	cases := []struct {
		k, n int
		want []shardRange
	}{
		{1, 3, []shardRange{{0, 1}}},
		{5, 3, []shardRange{{0, 1}, {1, 3}, {3, 5}}},
		{6, 3, []shardRange{{0, 2}, {2, 4}, {4, 6}}},
		{4, 1, []shardRange{{0, 4}}},
		{3, 0, []shardRange{{0, 3}}},
	}
	for _, tc := range cases {
		if got := cutShards(tc.k, tc.n); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("cutShards(%d, %d) = %v, want %v", tc.k, tc.n, got, tc.want)
		}
	}
}
