package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"adjstream"
	"adjstream/internal/serve"
	"adjstream/internal/stats"
	"adjstream/internal/stream"
)

// Config parameterizes a Scheduler. The zero value of every field except
// Replicas is usable; New fills in the defaults noted below.
type Config struct {
	// Replicas are the base URLs of the adjserved fleet, e.g.
	// "http://10.0.0.7:8356". At least one is required.
	Replicas []string
	// ShardTimeout bounds each individual shard attempt (default 10s).
	// The request's own deadline still bounds the whole run.
	ShardTimeout time.Duration
	// Attempts is how many replicas a shard tries before the run is
	// declared unschedulable (default 3, capped at the replica count).
	Attempts int
	// BackoffBase is the sleep before the first retry; it doubles per
	// attempt up to BackoffCap (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter, when positive, launches a duplicate of a slow shard
	// attempt against the next replica after this delay; the first
	// success wins. Zero disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is how often every replica's /healthz is polled to
	// feed the ring's health view (default 3s; negative disables probes).
	ProbeInterval time.Duration
	// MaxShards caps how many shard calls one request fans out into
	// (default: the replica count).
	MaxShards int
	// VirtualNodes is the ring points per replica (default 64).
	VirtualNodes int
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
}

// Scheduler fans estimate requests out to an adjserved fleet as copy-range
// shard calls and merges the returned snapshot sets into the bit-identical
// single-node response. Its Run method satisfies serve.RemoteRunner, which
// is the whole integration surface: a serve.Server with Config.Remote set
// to Run is a cluster proxy, with the server's cache, coalescing, batch,
// and drain machinery working unchanged in front.
type Scheduler struct {
	cfg  Config
	ring *Ring
	tele schedTele
	stop chan struct{}
	done chan struct{}
}

// New builds a scheduler over cfg.Replicas and starts its health-probe
// loop. Close releases it.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: no replicas configured")
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 10 * time.Second
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 3 * time.Second
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	s := &Scheduler{
		cfg:  cfg,
		ring: NewRing(cfg.Replicas, cfg.VirtualNodes),
		tele: teleForScheduler(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.MaxShards <= 0 {
		s.cfg.MaxShards = len(s.ring.Replicas())
	}
	s.tele.health(false, s.ring.HealthyCount())
	go s.probeLoop()
	return s, nil
}

// Close stops the probe loop. In-flight Run calls are unaffected.
func (s *Scheduler) Close() {
	close(s.stop)
	<-s.done
}

// Ring exposes the scheduler's health-tracking hash ring.
func (s *Scheduler) Ring() *Ring { return s.ring }

// setHealthy records a replica health observation in the ring and the
// telemetry gauges.
func (s *Scheduler) setHealthy(replica string, ok bool) {
	changed := s.ring.SetHealthy(replica, ok)
	s.tele.health(changed, s.ring.HealthyCount())
}

// probeLoop polls every replica's /healthz on ProbeInterval. A 200 marks
// the replica healthy; anything else (including a draining 503) unhealthy.
func (s *Scheduler) probeLoop() {
	defer close(s.done)
	if s.cfg.ProbeInterval < 0 {
		<-s.stop
		return
	}
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		for _, rep := range s.ring.Replicas() {
			s.setHealthy(rep, s.probe(rep))
		}
	}
}

// probe checks one replica's /healthz under a bounded deadline.
func (s *Scheduler) probe(replica string) bool {
	timeout := s.cfg.ProbeInterval
	if s.cfg.ShardTimeout < timeout {
		timeout = s.cfg.ShardTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		add(s.tele.probeFailures, 1)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		add(s.tele.probeFailures, 1)
		return false
	}
	return true
}

// copiesOf mirrors adjstream's Options.copies(): Confidence wins, then
// Copies, then 1. The proxy needs the count up front to cut shard ranges.
func copiesOf(req serve.EstimateRequest) int {
	if req.Confidence > 0 {
		return stats.CopiesForConfidence(1 - req.Confidence)
	}
	if req.Copies == 0 {
		return 1
	}
	return req.Copies
}

// shardRange is one contiguous copy range assigned to the fan-out.
type shardRange struct{ lo, hi int }

// cutShards splits k copies into at most n balanced contiguous ranges.
func cutShards(k, n int) []shardRange {
	if n > k {
		n = k
	}
	if n < 1 {
		n = 1
	}
	out := make([]shardRange, n)
	for i := 0; i < n; i++ {
		out[i] = shardRange{lo: i * k / n, hi: (i + 1) * k / n}
	}
	return out
}

// Run schedules one estimation across the fleet and merges the result. It
// satisfies serve.RemoteRunner: kind is "estimate" or "distinguish", req
// the original validated request. Failures that exhaust every replica
// return an error wrapping serve.ErrRemoteUnavailable so the server can
// degrade to local execution; context errors propagate as themselves so
// cancellation is never mistaken for replica failure.
func (s *Scheduler) Run(ctx context.Context, kind string, req serve.EstimateRequest, ds *serve.Dataset) (serve.EstimateResponse, error) {
	start := time.Now()
	add(s.tele.requests, 1)

	// Ship the estimate-shaped spec: distinguish requests run their
	// derived estimator on the replicas; the decision bit is recovered
	// from the merged estimate below. The spec pins the proxy's snapshot
	// version so every shard of this run — across replicas, retries, and
	// hedges — executes against the same immutable graph even while
	// ingestion advances the fleet.
	base := serve.ShardRequest{EstimateRequest: serve.DeriveEstimate(kind, req)}
	if ds != nil {
		base.GraphVersion = ds.Version()
		base.GraphFingerprint = fmt.Sprintf("%016x", ds.Fingerprint())
	}
	k := copiesOf(base.EstimateRequest)
	prefer := s.ring.Prefer(req.Graph)
	if len(prefer) == 0 {
		add(s.tele.fallbackLocal, 1)
		return serve.EstimateResponse{}, fmt.Errorf("%w: no replicas", serve.ErrRemoteUnavailable)
	}
	shards := cutShards(k, s.cfg.MaxShards)

	type shardResult struct {
		rng   shardRange
		snaps []adjstream.CopySnapshot
		err   error
	}
	results := make(chan shardResult, len(shards))
	for i, rng := range shards {
		go func(i int, rng shardRange) {
			snaps, err := s.runShard(ctx, base, rng, prefer, i)
			results <- shardResult{rng, snaps, err}
		}(i, rng)
	}

	all := make([]adjstream.CopySnapshot, k)
	var firstErr error
	for range shards {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		copy(all[r.rng.lo:r.rng.hi], r.snaps)
	}
	if firstErr != nil {
		if ctx.Err() != nil {
			return serve.EstimateResponse{}, ctx.Err()
		}
		add(s.tele.fallbackLocal, 1)
		return serve.EstimateResponse{}, fmt.Errorf("%w: %w", serve.ErrRemoteUnavailable, firstErr)
	}

	res, err := adjstream.MergeSnapshots(all)
	if err != nil {
		add(s.tele.fallbackLocal, 1)
		return serve.EstimateResponse{}, fmt.Errorf("%w: merge: %w", serve.ErrRemoteUnavailable, err)
	}

	// Mirror serve's single-node response exactly (modulo ElapsedMS):
	// the original request's Algorithm (empty for distinguish), the
	// normalized driver only for parallel multi-copy runs, and the
	// decision bit recovered the way DistinguishContext derives it.
	resp := serve.EstimateResponse{
		Graph:            req.Graph,
		Algorithm:        req.Algorithm,
		Estimate:         res.Estimate,
		SpaceWords:       res.SpaceWords,
		Passes:           res.Passes,
		M:                res.M,
		Copies:           res.Copies,
		Seed:             req.EffectiveSeed(),
		GraphVersion:     base.GraphVersion,
		GraphFingerprint: base.GraphFingerprint,
		ElapsedMS:        float64(time.Since(start)) / float64(time.Millisecond),
	}
	if base.Parallel && k > 1 {
		driver := base.Driver
		if driver == "" {
			driver = string(adjstream.DriverBroadcast)
		}
		resp.Driver = driver
	}
	if kind == "distinguish" {
		found := res.Estimate > 0
		resp.Found = &found
	}
	return resp, nil
}

// runShard executes one copy range, rotating through the preference order
// with capped exponential backoff between attempts. shardIdx staggers the
// primary so concurrent shards of one request land on different replicas.
func (s *Scheduler) runShard(ctx context.Context, base serve.ShardRequest, rng shardRange, prefer []string, shardIdx int) ([]adjstream.CopySnapshot, error) {
	attempts := s.cfg.Attempts
	if attempts > len(prefer) {
		attempts = len(prefer)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			add(s.tele.shardRetries, 1)
			backoff := s.cfg.BackoffBase << (attempt - 1)
			if backoff > s.cfg.BackoffCap {
				backoff = s.cfg.BackoffCap
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
		}
		primary := prefer[(shardIdx+attempt)%len(prefer)]
		next := prefer[(shardIdx+attempt+1)%len(prefer)]
		snaps, err := s.attemptWithHedge(ctx, base, rng, primary, next)
		if err == nil {
			return snaps, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	add(s.tele.shardFailures, 1)
	return nil, fmt.Errorf("shard [%d,%d) failed after %d attempts: %w", rng.lo, rng.hi, attempts, lastErr)
}

// attemptWithHedge posts the shard to primary and, if HedgeAfter elapses
// first, duplicates it to alt; the first success wins and the loser's
// context is canceled. With hedging disabled (or no distinct alternate) it
// is a single post.
func (s *Scheduler) attemptWithHedge(ctx context.Context, base serve.ShardRequest, rng shardRange, primary, alt string) ([]adjstream.CopySnapshot, error) {
	if s.cfg.HedgeAfter <= 0 || alt == primary {
		return s.post(ctx, base, rng, primary)
	}
	hedgeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		snaps  []adjstream.CopySnapshot
		err    error
		hedged bool
	}
	results := make(chan outcome, 2)
	launch := func(replica string, hedged bool) {
		snaps, err := s.post(hedgeCtx, base, rng, replica)
		results <- outcome{snaps, err, hedged}
	}
	go launch(primary, false)
	timer := time.NewTimer(s.cfg.HedgeAfter)
	defer timer.Stop()
	inflight := 1
	for {
		select {
		case <-timer.C:
			add(s.tele.hedgeLaunched, 1)
			inflight++
			go launch(alt, true)
		case r := <-results:
			if r.err == nil {
				if r.hedged {
					add(s.tele.hedgeWins, 1)
				}
				return r.snaps, nil
			}
			if inflight--; inflight == 0 {
				return nil, r.err
			}
			// The other leg is still running; wait for it.
		}
	}
}

// post sends one POST /v1/shard and decodes the snapshot-set response,
// verifying it covers exactly the requested range. Any failure marks the
// replica unhealthy in the ring; a success marks it healthy.
func (s *Scheduler) post(ctx context.Context, base serve.ShardRequest, rng shardRange, replica string) ([]adjstream.CopySnapshot, error) {
	add(s.tele.shardRequests, 1)
	base.CopyLo, base.CopyHi = rng.lo, rng.hi
	body, err := json.Marshal(base)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		s.setHealthy(replica, false)
		return nil, fmt.Errorf("%s: %w", replica, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		s.setHealthy(replica, false)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: shard status %d: %s", replica, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if ct := resp.Header.Get("Content-Type"); ct != stream.SnapshotSetContentType {
		s.setHealthy(replica, false)
		return nil, fmt.Errorf("%s: shard content type %q", replica, ct)
	}
	indices, snaps, err := stream.ReadSnapshotSet(io.LimitReader(resp.Body, stream.MaxSnapshotSetBytes))
	if err != nil {
		s.setHealthy(replica, false)
		return nil, fmt.Errorf("%s: %w", replica, err)
	}
	if len(indices) != rng.hi-rng.lo {
		s.setHealthy(replica, false)
		return nil, fmt.Errorf("%s: shard returned %d snapshots, want %d", replica, len(indices), rng.hi-rng.lo)
	}
	for i, idx := range indices {
		if idx != rng.lo+i {
			s.setHealthy(replica, false)
			return nil, fmt.Errorf("%s: shard snapshot %d has index %d, want %d", replica, i, idx, rng.lo+i)
		}
	}
	s.setHealthy(replica, true)
	s.tele.observeRTT(time.Since(start))
	return snaps, nil
}

// Mutate forwards one edge-batch body verbatim to every replica's
// POST /v1/graphs/{graph}/edges, concurrently, and returns the first
// failure (nil when the whole fleet accepted it). It satisfies
// serve.Config.RemoteIngest. Bodies are forwarded byte-identically and
// batches are idempotent by batch id, so the client retry that follows a
// partial failure converges every replica onto the same version history
// — replicas that already applied the batch replay their recorded
// response, the ones that missed it apply now.
func (s *Scheduler) Mutate(ctx context.Context, graph string, body []byte) error {
	add(s.tele.mutateRequests, 1)
	replicas := s.ring.Replicas()
	errs := make(chan error, len(replicas))
	for _, rep := range replicas {
		go func(rep string) {
			errs <- s.postMutation(ctx, graph, rep, body)
		}(rep)
	}
	var firstErr error
	for range replicas {
		if err := <-errs; err != nil {
			add(s.tele.mutateFailures, 1)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// postMutation sends one edge batch to one replica under the shard
// timeout. Transport failures mark the replica unhealthy; HTTP-level
// rejections (a replica refusing an op) do not — the replica is alive
// and the divergence must surface to the operator, not hide behind the
// health view.
func (s *Scheduler) postMutation(ctx context.Context, graph, replica string, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ShardTimeout)
	defer cancel()
	u := replica + "/v1/graphs/" + url.PathEscape(graph) + "/edges"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		s.setHealthy(replica, false)
		return fmt.Errorf("%s: %w", replica, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: ingest status %d: %s", replica, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}
