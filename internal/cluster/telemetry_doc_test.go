package cluster

// Guards OPERATIONS.md against drift: binds the scheduler's handle set and
// asserts the operator guide names every resulting cluster.* metric.

import (
	"os"
	"regexp"
	"testing"

	"adjstream/internal/telemetry"
)

func TestOperationsDocCoversClusterMetrics(t *testing.T) {
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	telemetry.Disable()
	reg := telemetry.Enable()
	defer telemetry.Disable()
	teleForScheduler()

	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("no metrics registered")
	}
	for _, name := range names {
		if !regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").Match(doc) {
			t.Errorf("metric %s is missing from OPERATIONS.md", name)
		}
	}
}
