package cluster

import (
	"time"

	"adjstream/internal/telemetry"
)

// Cluster telemetry, following the serve/driver convention: handles bind
// once per scheduler from the global registry, and every update is a
// nil-check no-op when telemetry is disabled.
//
// Metric names:
//
//	cluster.requests         counter   — estimate/distinguish runs scheduled
//	cluster.shard.requests   counter   — shard attempts sent to replicas
//	                                     (includes retries and hedges)
//	cluster.shard.retries    counter   — attempts after the first, per shard
//	cluster.shard.failures   counter   — shards that exhausted every attempt
//	cluster.shard.rtt_ns     histogram — wall time of successful shard calls
//	cluster.hedge.launched   counter   — hedge requests fired
//	cluster.hedge.wins       counter   — hedges that answered first
//	cluster.fallback.local   counter   — runs handed back for local execution
//	                                     (no replica could complete them)
//	cluster.mutate.requests  counter   — edge-batch fan-outs scheduled
//	cluster.mutate.failures  counter   — replica forwards that failed
//	cluster.ring.replicas    gauge     — replicas currently marked healthy
//	cluster.ring.changes     counter   — health transitions (either way)
//	cluster.probe.failures   counter   — health probes that failed
type schedTele struct {
	requests       *telemetry.Counter
	shardRequests  *telemetry.Counter
	shardRetries   *telemetry.Counter
	shardFailures  *telemetry.Counter
	shardRTT       *telemetry.Histogram
	hedgeLaunched  *telemetry.Counter
	hedgeWins      *telemetry.Counter
	fallbackLocal  *telemetry.Counter
	mutateRequests *telemetry.Counter
	mutateFailures *telemetry.Counter
	ringReplicas   *telemetry.Gauge
	ringChanges    *telemetry.Counter
	probeFailures  *telemetry.Counter
}

// teleForScheduler binds the handle set, or the all-nil zero value when
// telemetry is disabled.
func teleForScheduler() schedTele {
	r := telemetry.Global()
	if r == nil {
		return schedTele{}
	}
	return schedTele{
		requests:       r.Counter("cluster.requests"),
		shardRequests:  r.Counter("cluster.shard.requests"),
		shardRetries:   r.Counter("cluster.shard.retries"),
		shardFailures:  r.Counter("cluster.shard.failures"),
		shardRTT:       r.Histogram("cluster.shard.rtt_ns"),
		hedgeLaunched:  r.Counter("cluster.hedge.launched"),
		hedgeWins:      r.Counter("cluster.hedge.wins"),
		fallbackLocal:  r.Counter("cluster.fallback.local"),
		mutateRequests: r.Counter("cluster.mutate.requests"),
		mutateFailures: r.Counter("cluster.mutate.failures"),
		ringReplicas:   r.Gauge("cluster.ring.replicas"),
		ringChanges:    r.Counter("cluster.ring.changes"),
		probeFailures:  r.Counter("cluster.probe.failures"),
	}
}

// add is the nil-safe counter bump.
func add(c *telemetry.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// observeRTT records one successful shard round trip.
func (t schedTele) observeRTT(d time.Duration) {
	if t.shardRTT != nil {
		t.shardRTT.Observe(int64(d))
	}
}

// health publishes a ring transition and the new healthy count.
func (t schedTele) health(changed bool, healthy int) {
	if t.ringReplicas == nil {
		return
	}
	if changed {
		t.ringChanges.Add(1)
	}
	t.ringReplicas.Set(int64(healthy))
}
