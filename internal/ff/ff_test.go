package ff

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int64{2, 3, 5, 7, 11, 13, 101, 7919}
	composites := []int64{0, 1, 4, 9, 15, 100, 7917}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestNewRejectsComposite(t *testing.T) {
	for _, n := range []int64{-1, 0, 1, 4, 6, 9} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
}

func TestPrimeAtLeast(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {100, 101},
	}
	for _, c := range cases {
		if got := PrimeAtLeast(c.in); got != c.want {
			t.Errorf("PrimeAtLeast(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFieldArithmetic(t *testing.T) {
	f, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if f.P() != 7 {
		t.Fatalf("P = %d", f.P())
	}
	if f.Add(5, 4) != 2 {
		t.Error("5+4 mod 7")
	}
	if f.Sub(2, 5) != 4 {
		t.Error("2-5 mod 7")
	}
	if f.Neg(3) != 4 {
		t.Error("-3 mod 7")
	}
	if f.Mul(4, 5) != 6 {
		t.Error("4·5 mod 7")
	}
	if f.Mul(-1, 3) != 4 {
		t.Error("Mul should normalize negatives")
	}
	if f.Pow(3, 6) != 1 {
		t.Error("Fermat: 3^6 = 1 mod 7")
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 = 1 by convention")
	}
}

func TestInverse(t *testing.T) {
	for _, p := range []int64{2, 3, 5, 13, 101} {
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for a := int64(1); a < p; a++ {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(%d): %d·%d ≠ 1", p, a, inv)
			}
		}
		if _, err := f.Inv(0); err == nil {
			t.Fatalf("GF(%d): Inv(0) should fail", p)
		}
	}
}

func TestDiv(t *testing.T) {
	f, _ := New(11)
	q, err := f.Div(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mul(q, 3) != 7 {
		t.Fatalf("Div: %d·3 ≠ 7 mod 11", q)
	}
	if _, err := f.Div(1, 0); err == nil {
		t.Fatal("Div by zero should fail")
	}
}

func TestDot3(t *testing.T) {
	f, _ := New(5)
	if got := f.Dot3([3]int64{1, 2, 3}, [3]int64{4, 0, 2}); got != 0 {
		t.Fatalf("Dot3 = %d, want 0 (4+0+6=10≡0)", got)
	}
	if got := f.Dot3([3]int64{1, 1, 1}, [3]int64{1, 1, 1}); got != 3 {
		t.Fatalf("Dot3 = %d, want 3", got)
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	f, _ := New(1009)
	p := f.P()
	assoc := func(a, b, c int64) bool {
		a, b, c = a%p, b%p, c%p
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c)) &&
			f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c))
	}
	distr := func(a, b, c int64) bool {
		a, b, c = a%p, b%p, c%p
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(distr, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPowNegativePanics(t *testing.T) {
	f, _ := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative exponent")
		}
	}()
	f.Pow(2, -1)
}
