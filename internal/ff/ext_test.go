package ff

import (
	"testing"
	"testing/quick"
)

func TestPrimePower(t *testing.T) {
	cases := []struct {
		q     int64
		p     int64
		k     int
		isPow bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {8, 2, 3, true},
		{9, 3, 2, true}, {16, 2, 4, true}, {25, 5, 2, true}, {27, 3, 3, true},
		{6, 0, 0, false}, {12, 0, 0, false}, {1, 0, 0, false}, {0, 0, 0, false},
		{100, 0, 0, false}, {121, 11, 2, true},
	}
	for _, c := range cases {
		p, k, ok := primePower(c.q)
		if ok != c.isPow {
			t.Errorf("primePower(%d): ok=%v, want %v", c.q, ok, c.isPow)
			continue
		}
		if ok && (p != c.p || k != c.k) {
			t.Errorf("primePower(%d) = %d^%d, want %d^%d", c.q, p, k, c.p, c.k)
		}
		if IsPrimePower(c.q) != c.isPow {
			t.Errorf("IsPrimePower(%d) = %v", c.q, !c.isPow)
		}
	}
}

func TestFindIrreducible(t *testing.T) {
	f, _ := New(2)
	irr, err := f.findIrreducible(3)
	if err != nil {
		t.Fatal(err)
	}
	if irr.deg() != 3 || irr[3] != 1 {
		t.Fatalf("irr = %v", irr)
	}
	// Verify: no roots in GF(2) (necessary for degree ≤ 3 irreducibility).
	for x := int64(0); x < 2; x++ {
		var v int64
		for i := len(irr) - 1; i >= 0; i-- {
			v = f.Add(f.Mul(v, x), irr[i])
		}
		if v == 0 {
			t.Fatalf("irreducible %v has root %d", irr, x)
		}
	}
}

func TestPolyArithmetic(t *testing.T) {
	f, _ := New(5)
	a := poly{1, 2}    // 1 + 2x
	b := poly{3, 0, 1} // 3 + x²
	sum := f.polyAdd(a, b)
	if len(sum) != 3 || sum[0] != 4 || sum[1] != 2 || sum[2] != 1 {
		t.Fatalf("sum = %v", sum)
	}
	prod := f.polyMul(a, b) // 3 + 6x + x² + 2x³ = 3 + x + x² + 2x³ mod 5
	want := poly{3, 1, 1, 2}
	if len(prod) != len(want) {
		t.Fatalf("prod = %v", prod)
	}
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("prod = %v, want %v", prod, want)
		}
	}
	r, err := f.polyMod(prod, a)
	if err != nil {
		t.Fatal(err)
	}
	// prod = a·b so prod mod a = 0.
	if len(r) != 0 {
		t.Fatalf("prod mod a = %v, want 0", r)
	}
	if _, err := f.polyMod(a, poly{}); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func testFieldAxioms(t *testing.T, e GF, name string) {
	t.Helper()
	q := e.Order()
	// Additive and multiplicative identities, inverses, distributivity —
	// exhaustively for small q.
	for a := int64(0); a < q; a++ {
		if e.Add(a, 0) != a {
			t.Fatalf("%s: a+0 ≠ a for a=%d", name, a)
		}
		if e.Mul(a, 1) != a {
			t.Fatalf("%s: a·1 ≠ a for a=%d", name, a)
		}
		if e.Add(a, e.Neg(a)) != 0 {
			t.Fatalf("%s: a+(-a) ≠ 0 for a=%d", name, a)
		}
		if a != 0 {
			inv, err := e.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if e.Mul(a, inv) != 1 {
				t.Fatalf("%s: a·a⁻¹ ≠ 1 for a=%d (inv=%d)", name, a, inv)
			}
		}
	}
	if _, err := e.Inv(0); err == nil {
		t.Fatalf("%s: Inv(0) should fail", name)
	}
	for a := int64(0); a < q; a++ {
		for b := int64(0); b < q; b++ {
			if e.Add(a, b) != e.Add(b, a) || e.Mul(a, b) != e.Mul(b, a) {
				t.Fatalf("%s: commutativity fails at %d,%d", name, a, b)
			}
			if e.Sub(a, b) != e.Add(a, e.Neg(b)) {
				t.Fatalf("%s: Sub inconsistent at %d,%d", name, a, b)
			}
			for c := int64(0); c < q; c += 3 {
				if e.Mul(a, e.Add(b, c)) != e.Add(e.Mul(a, b), e.Mul(a, c)) {
					t.Fatalf("%s: distributivity fails at %d,%d,%d", name, a, b, c)
				}
				if e.Mul(e.Mul(a, b), c) != e.Mul(a, e.Mul(b, c)) {
					t.Fatalf("%s: associativity fails at %d,%d,%d", name, a, b, c)
				}
			}
		}
	}
}

func TestExtFieldAxioms(t *testing.T) {
	cases := []struct {
		p int64
		k int
	}{
		{2, 2}, {2, 3}, {3, 2}, {2, 4}, {5, 2},
	}
	for _, c := range cases {
		e, err := NewExt(c.p, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if e.Order() != ipow(c.p, c.k) {
			t.Fatalf("GF(%d^%d): order = %d", c.p, c.k, e.Order())
		}
		if e.P() != c.p || e.Degree() != c.k {
			t.Fatalf("GF(%d^%d): P=%d Degree=%d", c.p, c.k, e.P(), e.Degree())
		}
		testFieldAxioms(t, e, itoa(c.p, c.k))
	}
}

func itoa(p int64, k int) string { return string(rune('0'+p)) + "^" + string(rune('0'+k)) }

func TestExtMultiplicativeOrder(t *testing.T) {
	// Every nonzero element satisfies a^{q-1} = 1 (Lagrange).
	e, err := NewExt(3, 2) // GF(9)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(1); a < 9; a++ {
		if e.Pow(a, 8) != 1 {
			t.Fatalf("a=%d: a^8 = %d ≠ 1", a, e.Pow(a, 8))
		}
	}
}

func TestExtRejectsBadParams(t *testing.T) {
	if _, err := NewExt(4, 2); err == nil {
		t.Fatal("expected error for composite characteristic")
	}
	if _, err := NewExt(2, 1); err == nil {
		t.Fatal("expected error for degree 1")
	}
	if _, err := NewExt(2, 25); err == nil {
		t.Fatal("expected error for huge degree")
	}
}

func TestForOrder(t *testing.T) {
	for _, q := range []int64{2, 3, 4, 5, 7, 8, 9, 11, 16, 25, 27} {
		f, err := ForOrder(q)
		if err != nil {
			t.Fatalf("ForOrder(%d): %v", q, err)
		}
		if f.Order() != q {
			t.Fatalf("ForOrder(%d).Order() = %d", q, f.Order())
		}
	}
	for _, q := range []int64{0, 1, 6, 10, 12, 100} {
		if _, err := ForOrder(q); err == nil {
			t.Fatalf("ForOrder(%d) should fail", q)
		}
	}
}

func TestExtDot3(t *testing.T) {
	e, err := NewExt(2, 2) // GF(4)
	if err != nil {
		t.Fatal(err)
	}
	// In characteristic 2, ⟨v,v⟩ = v0²+v1²+v2².
	v := [3]int64{1, 2, 3}
	want := e.Add(e.Add(e.Mul(1, 1), e.Mul(2, 2)), e.Mul(3, 3))
	if got := e.Dot3(v, v); got != want {
		t.Fatalf("Dot3 = %d, want %d", got, want)
	}
}

func TestExtPowNegativePanics(t *testing.T) {
	e, _ := NewExt(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Pow(1, -1)
}

// Property: the Frobenius map a ↦ a^p is additive in GF(p^k).
func TestFrobeniusAdditiveQuick(t *testing.T) {
	e, err := NewExt(3, 3) // GF(27)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int64) bool {
		a, b = a%27, b%27
		if a < 0 {
			a += 27
		}
		if b < 0 {
			b += 27
		}
		return e.Pow(e.Add(a, b), 3) == e.Add(e.Pow(a, 3), e.Pow(b, 3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
