package ff

import "fmt"

// GF is the arithmetic interface shared by prime fields (Field) and
// prime-power extension fields (Ext). Elements are int64 values in
// [0, Order()): for prime fields the residues themselves, for extensions
// the base-p digit encoding of the coefficient vector.
type GF interface {
	// Order returns the number of field elements q.
	Order() int64
	// Add returns a+b.
	Add(a, b int64) int64
	// Sub returns a-b.
	Sub(a, b int64) int64
	// Neg returns -a.
	Neg(a int64) int64
	// Mul returns a·b.
	Mul(a, b int64) int64
	// Inv returns a⁻¹ or an error for a = 0.
	Inv(a int64) (int64, error)
	// Dot3 returns the dot product of two length-3 vectors.
	Dot3(a, b [3]int64) int64
}

// Order implements GF for the prime field.
func (f *Field) Order() int64 { return f.p }

var _ GF = (*Field)(nil)

// Ext is the extension field GF(p^k), k ≥ 2, built as GF(p)[x]/(irr) for a
// deterministically chosen monic irreducible irr of degree k. Elements are
// encoded as base-p digit strings: element e represents the polynomial
// Σ digit_i(e)·x^i. Multiplication uses precomputed reduction tables for
// x^k..x^{2k-2}, so Mul is O(k²).
type Ext struct {
	p   int64
	k   int
	q   int64 // p^k
	f   *Field
	irr poly
	// red[j] is x^{k+j} mod irr, for j in [0, k-1).
	red []poly
}

var _ GF = (*Ext)(nil)

// NewExt constructs GF(p^k). p must be prime and k ≥ 2; p^k must fit
// comfortably in an int64 (this implementation targets small fields).
func NewExt(p int64, k int) (*Ext, error) {
	f, err := New(p)
	if err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("ff: extension degree %d < 2 (use New for prime fields)", k)
	}
	if k > 20 {
		return nil, fmt.Errorf("ff: extension degree %d too large", k)
	}
	q := ipow(p, k)
	if q > 1<<20 {
		return nil, fmt.Errorf("ff: field order %d too large for this implementation", q)
	}
	irr, err := f.findIrreducible(k)
	if err != nil {
		return nil, err
	}
	e := &Ext{p: p, k: k, q: q, f: f, irr: irr}
	// red[j] = x^{k+j} mod irr, for the table-driven reduction in Mul.
	for j := 0; j < k-1; j++ {
		xp := make(poly, k+j+1)
		xp[k+j] = 1
		m, err := f.polyMod(xp, irr)
		if err != nil {
			return nil, err
		}
		e.red = append(e.red, m)
	}
	return e, nil
}

// Order implements GF.
func (e *Ext) Order() int64 { return e.q }

// P returns the characteristic.
func (e *Ext) P() int64 { return e.p }

// Degree returns the extension degree k.
func (e *Ext) Degree() int { return e.k }

// Irreducible returns a copy of the modulus polynomial (low-degree first).
func (e *Ext) Irreducible() []int64 {
	out := make([]int64, len(e.irr))
	copy(out, e.irr)
	return out
}

// digits decodes an element into its coefficient vector of length k.
func (e *Ext) digits(a int64) []int64 {
	a = e.normElem(a)
	d := make([]int64, e.k)
	for i := 0; i < e.k; i++ {
		d[i] = a % e.p
		a /= e.p
	}
	return d
}

// encode packs a coefficient slice (length ≤ k after reduction) into an
// element.
func (e *Ext) encode(c []int64) int64 {
	var out int64
	for i := e.k - 1; i >= 0; i-- {
		var v int64
		if i < len(c) {
			v = c[i]
		}
		out = out*e.p + v
	}
	return out
}

func (e *Ext) normElem(a int64) int64 {
	a %= e.q
	if a < 0 {
		a += e.q
	}
	return a
}

// Add implements GF (digit-wise addition mod p).
func (e *Ext) Add(a, b int64) int64 {
	da, db := e.digits(a), e.digits(b)
	for i := range da {
		da[i] = e.f.Add(da[i], db[i])
	}
	return e.encode(da)
}

// Sub implements GF.
func (e *Ext) Sub(a, b int64) int64 {
	da, db := e.digits(a), e.digits(b)
	for i := range da {
		da[i] = e.f.Sub(da[i], db[i])
	}
	return e.encode(da)
}

// Neg implements GF.
func (e *Ext) Neg(a int64) int64 {
	da := e.digits(a)
	for i := range da {
		da[i] = e.f.Neg(da[i])
	}
	return e.encode(da)
}

// Mul implements GF: schoolbook polynomial product followed by table-driven
// reduction of the high coefficients.
func (e *Ext) Mul(a, b int64) int64 {
	da, db := e.digits(a), e.digits(b)
	prod := make([]int64, 2*e.k-1)
	for i, x := range da {
		if x == 0 {
			continue
		}
		for j, y := range db {
			if y == 0 {
				continue
			}
			prod[i+j] = e.f.Add(prod[i+j], e.f.Mul(x, y))
		}
	}
	// Reduce degrees ≥ k using red[j] = x^{k+j} mod irr, top down.
	for idx := len(prod) - 1; idx >= e.k; idx-- {
		c := prod[idx]
		if c == 0 {
			continue
		}
		prod[idx] = 0
		rp := e.red[idx-e.k]
		for i, rc := range rp {
			prod[i] = e.f.Add(prod[i], e.f.Mul(c, rc))
		}
	}
	return e.encode(prod[:e.k])
}

// Pow returns a^n for n ≥ 0.
func (e *Ext) Pow(a int64, n int64) int64 {
	if n < 0 {
		panic("ff: negative exponent")
	}
	r := int64(1)
	base := e.normElem(a)
	for n > 0 {
		if n&1 == 1 {
			r = e.Mul(r, base)
		}
		base = e.Mul(base, base)
		n >>= 1
	}
	return r
}

// Inv implements GF via Lagrange: a^{q-2}.
func (e *Ext) Inv(a int64) (int64, error) {
	if e.normElem(a) == 0 {
		return 0, fmt.Errorf("ff: zero has no inverse in GF(%d)", e.q)
	}
	return e.Pow(a, e.q-2), nil
}

// Dot3 implements GF.
func (e *Ext) Dot3(a, b [3]int64) int64 {
	return e.Add(e.Add(e.Mul(a[0], b[0]), e.Mul(a[1], b[1])), e.Mul(a[2], b[2]))
}

// ForOrder returns a field of the given order q: the prime field when q is
// prime, an extension field when q is a prime power, and an error
// otherwise.
func ForOrder(q int64) (GF, error) {
	if q < 2 {
		return nil, fmt.Errorf("ff: order %d < 2", q)
	}
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("ff: %d is not a prime power", q)
	}
	if k == 1 {
		return New(p)
	}
	return NewExt(p, k)
}

// primePower factors q as p^k for prime p, reporting ok=false when q is not
// a prime power.
func primePower(q int64) (p int64, k int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	n := q
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			p = d
			for n%d == 0 {
				n /= d
				k++
			}
			if n != 1 {
				return 0, 0, false
			}
			return p, k, true
		}
	}
	return q, 1, true // q itself is prime
}

// IsPrimePower reports whether q = p^k for a prime p and k ≥ 1.
func IsPrimePower(q int64) bool {
	_, _, ok := primePower(q)
	return ok
}
