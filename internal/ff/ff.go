// Package ff implements arithmetic in prime fields GF(p). It is the
// algebraic substrate for the projective ("field") planes of Section 5.2 of
// the paper, whose incidence graphs are the extremal 4-cycle-free graphs
// used in the 4-cycle lower bound reductions.
package ff

import "fmt"

// Field is the prime field GF(p). Elements are int64 values in [0, p).
type Field struct {
	p int64
}

// New returns GF(p). p must be prime.
func New(p int64) (*Field, error) {
	if p < 2 {
		return nil, fmt.Errorf("ff: %d is not a prime", p)
	}
	if !IsPrime(p) {
		return nil, fmt.Errorf("ff: %d is not a prime", p)
	}
	return &Field{p: p}, nil
}

// IsPrime reports whether n is prime, by trial division (adequate for the
// plane orders used here).
func IsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := int64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// P returns the field characteristic (and order).
func (f *Field) P() int64 { return f.p }

// norm reduces x into [0, p).
func (f *Field) norm(x int64) int64 {
	x %= f.p
	if x < 0 {
		x += f.p
	}
	return x
}

// Add returns a+b in GF(p).
func (f *Field) Add(a, b int64) int64 { return f.norm(a + b) }

// Sub returns a-b in GF(p).
func (f *Field) Sub(a, b int64) int64 { return f.norm(a - b) }

// Neg returns -a in GF(p).
func (f *Field) Neg(a int64) int64 { return f.norm(-a) }

// Mul returns a·b in GF(p).
func (f *Field) Mul(a, b int64) int64 { return f.norm(f.norm(a) * f.norm(b)) }

// Pow returns a^e in GF(p) for e ≥ 0 by binary exponentiation.
func (f *Field) Pow(a int64, e int64) int64 {
	if e < 0 {
		panic("ff: negative exponent")
	}
	a = f.norm(a)
	r := int64(1 % f.p)
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, a)
		}
		a = f.Mul(a, a)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a. It returns an error for a=0.
func (f *Field) Inv(a int64) (int64, error) {
	a = f.norm(a)
	if a == 0 {
		return 0, fmt.Errorf("ff: zero has no inverse in GF(%d)", f.p)
	}
	// Fermat: a^(p-2).
	return f.Pow(a, f.p-2), nil
}

// Div returns a/b. It returns an error for b=0.
func (f *Field) Div(a, b int64) (int64, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, bi), nil
}

// Dot3 returns the GF(p) dot product of two length-3 vectors; used for
// point–line incidence in PG(2,p).
func (f *Field) Dot3(a, b [3]int64) int64 {
	return f.norm(f.Mul(a[0], b[0]) + f.Mul(a[1], b[1]) + f.Mul(a[2], b[2]))
}

// PrimeAtLeast returns the smallest prime ≥ n (n ≥ 2).
func PrimeAtLeast(n int64) int64 {
	if n < 2 {
		n = 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}
