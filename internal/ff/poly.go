package ff

import "fmt"

// poly is a polynomial over GF(p), coefficients low-degree first, always
// normalized (no trailing zeros). The zero polynomial is the empty slice.
type poly []int64

// normPoly trims trailing zero coefficients.
func normPoly(a poly) poly {
	n := len(a)
	for n > 0 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

// deg returns the degree, with -1 for the zero polynomial.
func (a poly) deg() int { return len(a) - 1 }

// polyAdd returns a+b over GF(p).
func (f *Field) polyAdd(a, b poly) poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(poly, n)
	for i := 0; i < n; i++ {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = f.Add(x, y)
	}
	return normPoly(out)
}

// polySub returns a-b over GF(p).
func (f *Field) polySub(a, b poly) poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(poly, n)
	for i := 0; i < n; i++ {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = f.Sub(x, y)
	}
	return normPoly(out)
}

// polyMul returns a·b over GF(p).
func (f *Field) polyMul(a, b poly) poly {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(poly, len(a)+len(b)-1)
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			out[i+j] = f.Add(out[i+j], f.Mul(x, y))
		}
	}
	return normPoly(out)
}

// polyMod returns a mod b over GF(p). b must be nonzero.
func (f *Field) polyMod(a, b poly) (poly, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("ff: polynomial division by zero")
	}
	lead := b[len(b)-1]
	leadInv, err := f.Inv(lead)
	if err != nil {
		return nil, err
	}
	r := make(poly, len(a))
	copy(r, a)
	r = normPoly(r)
	for r.deg() >= b.deg() {
		shift := r.deg() - b.deg()
		c := f.Mul(r[len(r)-1], leadInv)
		for i, bc := range b {
			r[shift+i] = f.Sub(r[shift+i], f.Mul(c, bc))
		}
		r = normPoly(r)
	}
	return r, nil
}

// polyMulMod returns a·b mod m.
func (f *Field) polyMulMod(a, b, m poly) (poly, error) {
	return f.polyMod(f.polyMul(a, b), m)
}

// polyPowMod returns a^e mod m by binary exponentiation.
func (f *Field) polyPowMod(a poly, e int64, m poly) (poly, error) {
	r := poly{1}
	base := a
	var err error
	base, err = f.polyMod(base, m)
	if err != nil {
		return nil, err
	}
	for e > 0 {
		if e&1 == 1 {
			r, err = f.polyMulMod(r, base, m)
			if err != nil {
				return nil, err
			}
		}
		base, err = f.polyMulMod(base, base, m)
		if err != nil {
			return nil, err
		}
		e >>= 1
	}
	return r, nil
}

// polyGCD returns gcd(a, b) (monic).
func (f *Field) polyGCD(a, b poly) (poly, error) {
	for len(b) > 0 {
		r, err := f.polyMod(a, b)
		if err != nil {
			return nil, err
		}
		a, b = b, r
	}
	if len(a) == 0 {
		return a, nil
	}
	// Make monic.
	inv, err := f.Inv(a[len(a)-1])
	if err != nil {
		return nil, err
	}
	out := make(poly, len(a))
	for i, c := range a {
		out[i] = f.Mul(c, inv)
	}
	return out, nil
}

// ipow returns base^e for small non-negative integer exponents.
func ipow(base int64, e int) int64 {
	r := int64(1)
	for i := 0; i < e; i++ {
		r *= base
	}
	return r
}

// isIrreducible applies Rabin's test: a monic f of degree k over GF(p) is
// irreducible iff x^{p^k} ≡ x (mod f) and, for every prime divisor q of k,
// gcd(x^{p^{k/q}} − x, f) = 1.
func (f *Field) isIrreducible(fp poly) (bool, error) {
	k := fp.deg()
	if k < 1 {
		return false, nil
	}
	x := poly{0, 1}
	// x^{p^k} mod f via repeated p-th powering.
	pow := x
	var err error
	for i := 0; i < k; i++ {
		pow, err = f.polyPowMod(pow, f.p, fp)
		if err != nil {
			return false, err
		}
	}
	if diff := f.polySub(pow, x); len(diff) != 0 {
		return false, nil
	}
	for _, q := range primeDivisors(k) {
		pow = x
		for i := 0; i < k/q; i++ {
			pow, err = f.polyPowMod(pow, f.p, fp)
			if err != nil {
				return false, err
			}
		}
		g, err := f.polyGCD(fp, f.polySub(pow, x))
		if err != nil {
			return false, err
		}
		if g.deg() != 0 {
			return false, nil
		}
	}
	return true, nil
}

func primeDivisors(n int) []int {
	var out []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findIrreducible returns a monic irreducible polynomial of degree k over
// GF(p) by deterministic exhaustive search (adequate for the small p^k this
// repository uses).
func (f *Field) findIrreducible(k int) (poly, error) {
	if k < 1 {
		return nil, fmt.Errorf("ff: degree %d < 1", k)
	}
	if k == 1 {
		return poly{0, 1}, nil // x
	}
	total := ipow(f.p, k)
	for c := int64(0); c < total; c++ {
		cand := make(poly, k+1)
		cand[k] = 1
		v := c
		for i := 0; i < k; i++ {
			cand[i] = v % f.p
			v /= f.p
		}
		ok, err := f.isIrreducible(cand)
		if err != nil {
			return nil, err
		}
		if ok {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("ff: no irreducible polynomial of degree %d over GF(%d)", k, f.p)
}
