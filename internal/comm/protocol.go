package comm

import (
	"fmt"

	"adjstream/internal/graph"
	"adjstream/internal/stream"
	"adjstream/internal/telemetry"
)

// Transcript records one simulated run of a streaming algorithm used as a
// communication protocol: the players hold consecutive segments of the
// adjacency-list stream (their assigned vertices' lists), each pass is one
// round of the protocol, and at every handoff the sending player transmits
// the algorithm's entire state — whose size in words is the algorithm's
// live space at that moment.
type Transcript struct {
	// Handoffs is the number of state transmissions: per pass, one per
	// player boundary, plus one between passes (back to the first player).
	Handoffs int
	// HandoffWords[i] is the live state size at the i-th handoff.
	HandoffWords []int64
	// TotalWords is the total communication of the protocol.
	TotalWords int64
	// PeakWords is the algorithm's peak space (max message size).
	PeakWords int64
}

// RunProtocol drives alg over the concatenation of the players' segments
// once per pass, recording the algorithm's reported state size at every
// player boundary. Segments must each satisfy list-contiguity; the
// concatenation must form a valid adjacency-list stream.
func RunProtocol(segments [][]stream.Item, alg stream.Estimator) (*Transcript, error) {
	if len(segments) < 2 {
		return nil, fmt.Errorf("comm: need at least 2 players, got %d", len(segments))
	}
	var all []stream.Item
	ownerSeg := make(map[graph.V]int)
	for si, seg := range segments {
		for _, it := range seg {
			if prev, ok := ownerSeg[it.Owner]; ok && prev != si {
				return nil, fmt.Errorf("comm: adjacency list of %d spans players %d and %d", it.Owner, prev, si)
			}
			ownerSeg[it.Owner] = si
		}
		all = append(all, seg...)
	}
	if err := stream.Validate(all); err != nil {
		return nil, fmt.Errorf("comm: invalid protocol stream: %w", err)
	}
	// Per-pass communication telemetry: a pass of the simulated protocol is
	// one round, and its handoff words are the round's communication —
	// the per-pass axis the Section 5 lower bounds are stated on.
	reg := telemetry.Global()
	passWords := reg.Histogram("comm.pass_words")
	handoffCount := reg.Counter("comm.handoffs")
	totalWords := reg.Counter("comm.handoff_words")
	peakWords := reg.HighWater("comm.peak_words")
	tr := &Transcript{}
	passes := alg.Passes()
	for p := 0; p < passes; p++ {
		passStart := tr.TotalWords
		alg.StartPass(p)
		var cur graph.V
		inList := false
		for si, seg := range segments {
			for _, it := range seg {
				if !inList || it.Owner != cur {
					if inList {
						alg.EndList(cur)
					}
					cur = it.Owner
					inList = true
					alg.StartList(cur)
				}
				alg.Edge(it.Owner, it.Nbr)
			}
			// Handoff after every segment except the very last of the
			// final pass (the last player announces the answer).
			last := p == passes-1 && si == len(segments)-1
			if !last {
				if inList {
					// A list never spans players: each vertex is owned by
					// one player. Close it before the handoff.
					alg.EndList(cur)
					inList = false
				}
				w := alg.SpaceWords()
				tr.Handoffs++
				tr.HandoffWords = append(tr.HandoffWords, w)
				tr.TotalWords += w
				if w > tr.PeakWords {
					tr.PeakWords = w
				}
			}
		}
		if inList {
			alg.EndList(cur)
			inList = false
		}
		alg.EndPass(p)
		passWords.Observe(tr.TotalWords - passStart)
	}
	handoffCount.Add(int64(tr.Handoffs))
	totalWords.Add(tr.TotalWords)
	peakWords.Observe(tr.PeakWords)
	return tr, nil
}
