// Package comm implements the communication complexity games that Section 5
// of the paper reduces from — INDEX, two-party Disjointness, three-party
// number-on-forehead Pointer Jumping, and three-party NOF Disjointness —
// together with a protocol harness that runs an adjacency-list streaming
// algorithm as a communication protocol and measures the state handed
// between players. The reductions themselves (instance → gadget graph) live
// in internal/lb.
package comm

import (
	"fmt"
	"math/rand/v2"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x8e9d_34a1_77f1_02c9))
}

// IndexInstance is an INDEX_r instance: Alice holds the bit string S, Bob
// holds the index X, and the answer is S[X].
type IndexInstance struct {
	S []bool
	X int
}

// Answer returns S[X].
func (i IndexInstance) Answer() bool { return i.S[i.X] }

// Validate checks structural sanity.
func (i IndexInstance) Validate() error {
	if i.X < 0 || i.X >= len(i.S) {
		return fmt.Errorf("comm: index %d out of range [0,%d)", i.X, len(i.S))
	}
	return nil
}

// RandomIndex returns an INDEX_r instance with uniform bits and uniform
// index; want forces the answer bit.
func RandomIndex(r int, want bool, seed uint64) IndexInstance {
	rng := newRNG(seed)
	s := make([]bool, r)
	for i := range s {
		s[i] = rng.IntN(2) == 1
	}
	x := rng.IntN(r)
	s[x] = want
	return IndexInstance{S: s, X: x}
}

// DisjInstance is a two-party DISJ_r instance: the answer is 1 iff some
// index has S1[x] = S2[x] = 1.
type DisjInstance struct {
	S1, S2 []bool
}

// Answer reports whether the sets intersect.
func (d DisjInstance) Answer() bool {
	for i := range d.S1 {
		if d.S1[i] && d.S2[i] {
			return true
		}
	}
	return false
}

// Validate checks structural sanity.
func (d DisjInstance) Validate() error {
	if len(d.S1) != len(d.S2) {
		return fmt.Errorf("comm: string lengths differ: %d vs %d", len(d.S1), len(d.S2))
	}
	return nil
}

// RandomDisj returns a DISJ_r instance with density controlled per side. If
// intersect is true the instance has exactly one common index (the hard
// unique-intersection regime); otherwise none.
func RandomDisj(r int, intersect bool, seed uint64) DisjInstance {
	rng := newRNG(seed)
	s1 := make([]bool, r)
	s2 := make([]bool, r)
	for i := range s1 {
		// Sparse-ish strings keep gadget sizes moderate while leaving both
		// sides nonempty.
		s1[i] = rng.IntN(3) == 0
		s2[i] = rng.IntN(3) == 0
		if s1[i] && s2[i] {
			s2[i] = false // remove accidental intersections
		}
	}
	if intersect {
		x := rng.IntN(r)
		s1[x], s2[x] = true, true
	}
	return DisjInstance{S1: s1, S2: s2}
}

// PJ3Instance is a three-party NOF Pointer Jumping instance over the
// four-layer graph of Section 5: V1 = {v*}, V2 and V3 of size r, and
// V4 = {v40, v41}. P0 is v*'s out-edge (E1), P1 the out-edges of V2 (E2),
// P2 the out-edges of V3 into V4 (E3, as bits). Alice knows (P1, P2), Bob
// knows (P0, P2), Charlie knows (P0, P1).
type PJ3Instance struct {
	P0 int
	P1 []int
	P2 []bool
}

// Answer reports whether v* reaches v41.
func (p PJ3Instance) Answer() bool { return p.P2[p.P1[p.P0]] }

// Validate checks structural sanity.
func (p PJ3Instance) Validate() error {
	r := len(p.P1)
	if len(p.P2) != r {
		return fmt.Errorf("comm: layer sizes differ: %d vs %d", r, len(p.P2))
	}
	if p.P0 < 0 || p.P0 >= r {
		return fmt.Errorf("comm: P0 = %d out of range [0,%d)", p.P0, r)
	}
	for i, t := range p.P1 {
		if t < 0 || t >= r {
			return fmt.Errorf("comm: P1[%d] = %d out of range [0,%d)", i, t, r)
		}
	}
	return nil
}

// RandomPJ3 returns a 3-PJ_r instance with uniform pointers; want forces
// the answer.
func RandomPJ3(r int, want bool, seed uint64) PJ3Instance {
	rng := newRNG(seed)
	p := PJ3Instance{
		P0: rng.IntN(r),
		P1: make([]int, r),
		P2: make([]bool, r),
	}
	for i := range p.P1 {
		p.P1[i] = rng.IntN(r)
	}
	for i := range p.P2 {
		p.P2[i] = rng.IntN(2) == 1
	}
	p.P2[p.P1[p.P0]] = want
	return p
}

// Disj3Instance is a three-party NOF Disjointness instance: the answer is 1
// iff some index has all three bits set. Alice knows (S1, S2), Bob (S2, S3),
// Charlie (S3, S1).
type Disj3Instance struct {
	S1, S2, S3 []bool
}

// Answer reports whether the three sets share an element.
func (d Disj3Instance) Answer() bool {
	for i := range d.S1 {
		if d.S1[i] && d.S2[i] && d.S3[i] {
			return true
		}
	}
	return false
}

// Validate checks structural sanity.
func (d Disj3Instance) Validate() error {
	if len(d.S1) != len(d.S2) || len(d.S2) != len(d.S3) {
		return fmt.Errorf("comm: string lengths differ: %d, %d, %d", len(d.S1), len(d.S2), len(d.S3))
	}
	return nil
}

// RandomDisj3 returns a 3-DISJ_r instance; if intersect is true it has
// exactly one index with all three bits set, otherwise none.
func RandomDisj3(r int, intersect bool, seed uint64) Disj3Instance {
	rng := newRNG(seed)
	d := Disj3Instance{
		S1: make([]bool, r),
		S2: make([]bool, r),
		S3: make([]bool, r),
	}
	for i := 0; i < r; i++ {
		d.S1[i] = rng.IntN(3) == 0
		d.S2[i] = rng.IntN(3) == 0
		d.S3[i] = rng.IntN(3) == 0
		if d.S1[i] && d.S2[i] && d.S3[i] {
			d.S3[i] = false
		}
	}
	if intersect {
		x := rng.IntN(r)
		d.S1[x], d.S2[x], d.S3[x] = true, true, true
	}
	return d
}
