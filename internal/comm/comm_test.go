package comm

import (
	"testing"

	"adjstream/internal/baseline"
	"adjstream/internal/core"
	"adjstream/internal/gen"
	"adjstream/internal/graph"
	"adjstream/internal/stream"
)

func TestRandomIndexForcesAnswer(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, want := range []bool{false, true} {
			inst := RandomIndex(50, want, seed)
			if err := inst.Validate(); err != nil {
				t.Fatal(err)
			}
			if inst.Answer() != want {
				t.Fatalf("seed %d: answer = %v, want %v", seed, inst.Answer(), want)
			}
		}
	}
}

func TestIndexValidate(t *testing.T) {
	if err := (IndexInstance{S: []bool{true}, X: 1}).Validate(); err == nil {
		t.Fatal("expected range error")
	}
	if err := (IndexInstance{S: []bool{true}, X: -1}).Validate(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRandomDisjUniqueIntersection(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		yes := RandomDisj(60, true, seed)
		if !yes.Answer() {
			t.Fatalf("seed %d: forced intersecting instance disjoint", seed)
		}
		count := 0
		for i := range yes.S1 {
			if yes.S1[i] && yes.S2[i] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("seed %d: %d intersections, want exactly 1", seed, count)
		}
		no := RandomDisj(60, false, seed)
		if no.Answer() {
			t.Fatalf("seed %d: forced disjoint instance intersects", seed)
		}
	}
}

func TestDisjValidate(t *testing.T) {
	if err := (DisjInstance{S1: []bool{true}, S2: []bool{}}).Validate(); err == nil {
		t.Fatal("expected length error")
	}
}

func TestRandomPJ3ForcesAnswer(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, want := range []bool{false, true} {
			inst := RandomPJ3(40, want, seed)
			if err := inst.Validate(); err != nil {
				t.Fatal(err)
			}
			if inst.Answer() != want {
				t.Fatalf("seed %d: answer = %v, want %v", seed, inst.Answer(), want)
			}
		}
	}
}

func TestPJ3Validate(t *testing.T) {
	if err := (PJ3Instance{P0: 5, P1: []int{0}, P2: []bool{false}}).Validate(); err == nil {
		t.Fatal("expected P0 range error")
	}
	if err := (PJ3Instance{P0: 0, P1: []int{7}, P2: []bool{false}}).Validate(); err == nil {
		t.Fatal("expected P1 range error")
	}
	if err := (PJ3Instance{P0: 0, P1: []int{0}, P2: []bool{}}).Validate(); err == nil {
		t.Fatal("expected size error")
	}
}

func TestRandomDisj3UniqueTriple(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		yes := RandomDisj3(60, true, seed)
		count := 0
		for i := range yes.S1 {
			if yes.S1[i] && yes.S2[i] && yes.S3[i] {
				count++
			}
		}
		if count != 1 || !yes.Answer() {
			t.Fatalf("seed %d: %d triples", seed, count)
		}
		no := RandomDisj3(60, false, seed)
		if no.Answer() {
			t.Fatalf("seed %d: forced-no instance intersects", seed)
		}
	}
}

// segmentsOf splits a graph's sorted stream into per-player item segments
// by assigning each vertex's list to a player round-robin by vertex blocks.
func segmentsOf(g *graph.Graph, cut graph.V) [][]stream.Item {
	var a, b []stream.Item
	s := stream.Sorted(g)
	for _, it := range s.Items() {
		if it.Owner < cut {
			a = append(a, it)
		} else {
			b = append(b, it)
		}
	}
	return [][]stream.Item{a, b}
}

func TestRunProtocolHandoffCounts(t *testing.T) {
	g := gen.Complete(10)
	segs := segmentsOf(g, 5)
	alg, err := baseline.NewExactStream(3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunProtocol(segs, alg)
	if err != nil {
		t.Fatal(err)
	}
	// One pass, two players: exactly one handoff.
	if tr.Handoffs != 1 || len(tr.HandoffWords) != 1 {
		t.Fatalf("handoffs = %d", tr.Handoffs)
	}
	if tr.TotalWords <= 0 || tr.PeakWords <= 0 {
		t.Fatalf("words: total=%d peak=%d", tr.TotalWords, tr.PeakWords)
	}
	if got := alg.Estimate(); got != float64(g.Triangles()) {
		t.Fatalf("protocol run corrupted the algorithm: estimate %v, want %d", got, g.Triangles())
	}
}

func TestRunProtocolMultiPass(t *testing.T) {
	g := gen.Complete(8)
	segs := segmentsOf(g, 4)
	alg, err := core.NewNaiveTwoPass(core.TriangleConfig{SampleProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunProtocol(segs, alg)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes, two players: handoff mid-pass-1, between passes, and
	// mid-pass-2 = 3 handoffs.
	if tr.Handoffs != 3 {
		t.Fatalf("handoffs = %d, want 3", tr.Handoffs)
	}
}

func TestRunProtocolRejectsBadInput(t *testing.T) {
	g := gen.Complete(4)
	alg, _ := baseline.NewExactStream(3)
	if _, err := RunProtocol(segmentsOf(g, 100)[:1], alg); err == nil {
		t.Fatal("expected error for one player")
	}
	// Invalid stream: split a list between players.
	s := stream.Sorted(g).Items()
	bad := [][]stream.Item{s[:1], s[1:]}
	alg2, _ := baseline.NewExactStream(3)
	if _, err := RunProtocol(bad, alg2); err == nil {
		t.Fatal("expected error for split list")
	}
}
