package adjstream

import (
	"errors"
	"fmt"
)

// Sentinel errors of the public API. Every error returned by the facade
// wraps exactly one of these, so callers dispatch with errors.Is instead of
// matching message strings — the CLIs map them to exit codes and the
// adjserved service maps them to HTTP statuses.
var (
	// ErrUnknownAlgorithm reports an Options.Algorithm that names no
	// estimator (see Algorithms for the roster).
	ErrUnknownAlgorithm = errors.New("adjstream: unknown algorithm")
	// ErrInvalidOptions reports structurally invalid Options — conflicting
	// or out-of-range fields — or a configuration an estimator constructor
	// rejects (e.g. neither SampleSize nor SampleProb for a sampling
	// algorithm).
	ErrInvalidOptions = errors.New("adjstream: invalid options")
	// ErrCanceled reports a run abandoned because its context fired. It
	// wraps the context's error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also discriminate the cause.
	ErrCanceled = errors.New("adjstream: run canceled")
)

// canceled wraps a context error in ErrCanceled; both sentinels (ErrCanceled
// and cause — context.Canceled or context.DeadlineExceeded) match errors.Is.
func canceled(cause error) error {
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Validate checks the structural validity of o: the algorithm and driver
// are known, at most one of Copies/Confidence is set, and every numeric
// field is in range. It does not check the per-algorithm budget rules
// (exactly one of SampleSize/SampleProb, etc.) — those belong to the
// estimator constructors and surface as ErrInvalidOptions from NewEstimator
// and EstimateContext. A nil return guarantees the option plumbing itself
// cannot fail.
func (o Options) Validate() error {
	var arbAlg bool
	switch o.Algorithm {
	case "":
		return fmt.Errorf("%w: Algorithm is required", ErrInvalidOptions)
	case AlgoTwoPassTriangle, AlgoThreePassTriangle, AlgoNaiveTwoPass,
		AlgoOnePassTriangle, AlgoWedgeSampler, AlgoTwoPassFourCycle,
		AlgoAdaptiveTriangle, AlgoExact:
	case AlgoArbTwoPassWedge, AlgoArbBuriol,
		AlgoArbThreePassFourCycle, AlgoArbNearOptFourCycle:
		arbAlg = true
	default:
		return fmt.Errorf("%w %q", ErrUnknownAlgorithm, o.Algorithm)
	}
	switch o.Model {
	case "", ModelAdjacencyList:
		if arbAlg {
			return fmt.Errorf("%w: algorithm %q requires Model %q", ErrInvalidOptions, o.Algorithm, ModelArbitrary)
		}
	case ModelArbitrary:
		if !arbAlg {
			return fmt.Errorf("%w: algorithm %q requires Model %q", ErrInvalidOptions, o.Algorithm, ModelAdjacencyList)
		}
		if o.Driver != "" {
			return fmt.Errorf("%w: drivers traverse adjacency-list streams; leave Driver empty for Model %q", ErrInvalidOptions, ModelArbitrary)
		}
	default:
		return fmt.Errorf("%w: unknown model %q", ErrInvalidOptions, o.Model)
	}
	switch o.Driver {
	case "", DriverBroadcast, DriverPushBroadcast, DriverReplay:
	default:
		return fmt.Errorf("%w: unknown driver %q", ErrInvalidOptions, o.Driver)
	}
	if o.Copies > 0 && o.Confidence > 0 {
		return fmt.Errorf("%w: set at most one of Copies and Confidence", ErrInvalidOptions)
	}
	if o.Copies < 0 {
		return fmt.Errorf("%w: negative Copies %d", ErrInvalidOptions, o.Copies)
	}
	if o.Confidence != 0 && (o.Confidence < 0 || o.Confidence >= 1) {
		return fmt.Errorf("%w: Confidence %v must be in (0,1)", ErrInvalidOptions, o.Confidence)
	}
	if o.SampleSize < 0 {
		return fmt.Errorf("%w: negative SampleSize %d", ErrInvalidOptions, o.SampleSize)
	}
	if o.SampleProb < 0 || o.SampleProb > 1 {
		return fmt.Errorf("%w: SampleProb %v must be in [0,1]", ErrInvalidOptions, o.SampleProb)
	}
	if o.PairCap < 0 {
		return fmt.Errorf("%w: negative PairCap %d", ErrInvalidOptions, o.PairCap)
	}
	if o.CycleLen != 0 && o.CycleLen < 3 {
		return fmt.Errorf("%w: CycleLen %d < 3", ErrInvalidOptions, o.CycleLen)
	}
	return nil
}
