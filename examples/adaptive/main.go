// Adaptive estimation and distinguishing: the deployable workflow when the
// triangle count T is unknown. The paper's budgets are stated in T; the
// adaptive estimator discovers its own budget online, and the Distinguish
// API answers the paper's decision problems directly.
package main

import (
	"fmt"
	"log"
	"math"

	"adjstream"
	"adjstream/internal/gen"
)

func main() {
	// A workload whose T the "operator" does not know.
	g, err := gen.PlantedTriangles(800, 60, 0.25, 11)
	if err != nil {
		log.Fatal(err)
	}
	s := adjstream.RandomStream(g, 1)
	truth := float64(g.Triangles())
	fmt.Printf("workload: m=%d (T hidden from the estimator)\n\n", g.M())

	// Adaptive: start with permission to keep every edge; the run shrinks
	// its own bottom-k budget as the running estimate firms up.
	res, err := adjstream.Estimate(s, adjstream.Options{
		Algorithm:  adjstream.AlgoAdaptiveTriangle,
		SampleSize: int(g.M()), // initial (maximum) budget
		Copies:     5,
		Parallel:   true,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	oracle := 8 * float64(g.M()) / math.Pow(truth, 2.0/3.0)
	fmt.Printf("adaptive estimate: %.0f (truth %.0f, rel err %.3f)\n",
		res.Estimate, truth, math.Abs(res.Estimate-truth)/truth)
	fmt.Printf("space used:        %d words across %d copies\n", res.SpaceWords, res.Copies)
	fmt.Printf("oracle budget:     %.0f edges (needs knowing T)\n\n", oracle)

	// Distinguishing: the paper's decision problems, one call each.
	for _, l := range []int{3, 4, 5} {
		found, dres, err := adjstream.Distinguish(s, l, 0, 9)
		if err != nil {
			log.Fatal(err)
		}
		note := "sublinear distinguisher"
		if l >= 5 {
			note = "exact O(m) — Theorem 5.5 says nothing sublinear exists"
		}
		fmt.Printf("any %d-cycles? %-5v (%d passes, %d words; %s)\n",
			l, found, dres.Passes, dres.SpaceWords, note)
	}
}
