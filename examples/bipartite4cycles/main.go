// Butterfly (4-cycle) counting on a bipartite user–item graph — the
// motif-analytics workload where 4-cycles measure co-purchase overlap. We
// run the paper's Theorem 4.6 two-pass estimator at the Õ(m/T^{3/8}) space
// budget and report the achieved constant-factor accuracy, plus the
// Lemma 4.2 "good wedge" structure of the instance.
package main

import (
	"fmt"
	"log"
	"math"

	"adjstream"
	"adjstream/internal/core"
	"adjstream/internal/gen"
)

func main() {
	// 400 users each linked to 8 of 120 items.
	g, err := gen.BipartiteButterflies(400, 120, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	truth := g.FourCycles()
	fmt.Printf("user–item graph: n=%d m=%d\n", g.N(), g.M())
	fmt.Printf("exact butterflies (4-cycles): %d\n\n", truth)

	// The Lemma 4.2 structure that makes sampling work.
	st := core.ClassifyFourCycles(g, 40)
	fmt.Printf("lemma 4.2 structure: heavy edges=%d overused wedges=%d good fraction=%.3f\n\n",
		st.HeavyEdges, st.OverusedWedges, st.GoodFraction())

	s := adjstream.RandomStream(g, 1)
	// The paper's budget: m' = c·m/T^{3/8}.
	for _, c := range []float64{4, 8, 16} {
		size := int(c * float64(g.M()) / math.Pow(float64(truth), 3.0/8.0))
		if int64(size) > g.M() {
			size = int(g.M())
		}
		res, err := adjstream.Estimate(s, adjstream.Options{
			Algorithm:  adjstream.AlgoTwoPassFourCycle,
			SampleSize: size,
			Copies:     9,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ratio := res.Estimate / float64(truth)
		if ratio < 1 && ratio > 0 {
			ratio = 1 / ratio
		}
		fmt.Printf("m'=%5d (c=%2.0f): estimate %8.0f  approx-ratio %.2f  space %d words\n",
			size, c, res.Estimate, ratio, res.SpaceWords)
	}

	fmt.Println("\nthe estimator is an O(1)-approximation (Theorem 4.6); the paper")
	fmt.Println("proves (1±ε) is impossible at this budget in one pass (Theorem 5.3).")
}
