// The Section 2.1 progression, measured: the paper motivates its final
// algorithm in three steps — the naive edge-sample estimator (unbiased but
// destroyed by heavy edges), the three-pass exact-lightest-edge fix (good
// variance, but an extra pass and an unbounded candidate set), and the
// final two-pass algorithm (the H_{e,τ} stream-order proxy plus a sampled
// candidate set). This example runs all three on the same heavy-edge
// workload at equal sampling rate and prints what each step buys.
package main

import (
	"fmt"
	"log"
	"math"

	"adjstream"
	"adjstream/internal/gen"
)

func main() {
	// Books: one spine edge per block carries h triangles — the heavy-edge
	// structure that motivates the whole design.
	const h = 200
	g, err := gen.PlantedBooks(3, h, 40, 0.25, 5)
	if err != nil {
		log.Fatal(err)
	}
	truth := float64(g.Triangles())
	s := adjstream.RandomStream(g, 1)
	fmt.Printf("workload: m=%d T=%.0f, heaviest edge in %d triangles\n\n", g.M(), truth, g.MaxTriangleLoad())

	steps := []struct {
		name string
		algo adjstream.Algorithm
		note string
	}{
		{"naive 2-pass (step 1)", adjstream.AlgoNaiveTwoPass,
			"unbiased, but one sampled spine swings the estimate by h/(3p)"},
		{"exact lightest edge, 3 passes (step 2)", adjstream.AlgoThreePassTriangle,
			"counts each triangle at its argmin-T(e) edge: variance tamed, pass paid"},
		{"H-proxy lightest edge, 2 passes (final)", adjstream.AlgoTwoPassTriangle,
			"ρ(τ) from the stream-order proxy: same variance story, one pass cheaper"},
	}
	const p, trials = 0.15, 60
	for _, st := range steps {
		var sumSq float64
		for seed := uint64(0); seed < trials; seed++ {
			res, err := adjstream.Estimate(s, adjstream.Options{
				Algorithm:  st.algo,
				SampleProb: p,
				PairCap:    1 << 20,
				Seed:       seed*13 + 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			d := res.Estimate - truth
			sumSq += d * d
		}
		rmse := math.Sqrt(sumSq/trials) / truth
		fmt.Printf("%-42s RMSE/T = %.3f\n    %s\n", st.name, rmse, st.note)
	}
	fmt.Println("\nthe two-pass final algorithm keeps the three-pass variance at the")
	fmt.Println("two-pass price — Theorem 3.7's Õ(m/T^{2/3}) trade-off.")
}
