// Social-network triangle counting: the data-mining scenario from the
// paper's introduction. We generate a skewed Chung–Lu power-law graph (the
// degree structure of real social networks, including the heavy edges that
// break naive sampling), then estimate its triangle count and transitivity
// at a range of space budgets, comparing the one-pass baseline with the
// paper's two-pass algorithm.
package main

import (
	"fmt"
	"log"

	"adjstream"
	"adjstream/internal/gen"
)

func main() {
	// A 1200-vertex power-law graph: hubs create heavy edges.
	g, err := gen.ChungLu(1200, 2.1, 260, 7)
	if err != nil {
		log.Fatal(err)
	}
	truthT := g.Triangles()
	fmt.Printf("network: n=%d m=%d maxdeg=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("exact:   T=%d transitivity=%.4f maxEdgeLoad=%d\n\n",
		truthT, g.Transitivity(), g.MaxTriangleLoad())

	s := adjstream.RandomStream(g, 1)

	fmt.Println("space budget sweep (median of 9 copies each):")
	fmt.Printf("%-10s %-12s %-12s %-12s %-12s\n", "m'", "1-pass est", "1-pass err", "2-pass est", "2-pass err")
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		size := int(frac * float64(g.M()))
		one, err := adjstream.Estimate(s, adjstream.Options{
			Algorithm:  adjstream.AlgoOnePassTriangle,
			SampleSize: size,
			Copies:     9,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		two, err := adjstream.Estimate(s, adjstream.Options{
			Algorithm:  adjstream.AlgoTwoPassTriangle,
			SampleSize: size,
			PairCap:    size,
			Copies:     9,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-12.0f %-12.3f %-12.0f %-12.3f\n",
			size, one.Estimate, relErr(one.Estimate, float64(truthT)),
			two.Estimate, relErr(two.Estimate, float64(truthT)))
	}

	// Transitivity 3T/P2 from the estimate: P2 is exactly countable in one
	// pass with O(1) counters per list.
	best, err := adjstream.Estimate(s, adjstream.Options{
		Algorithm:  adjstream.AlgoTwoPassTriangle,
		SampleSize: int(0.4 * float64(g.M())),
		PairCap:    int(0.4 * float64(g.M())),
		Copies:     9,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	p2 := g.WedgeCount()
	fmt.Printf("\nestimated transitivity: %.4f (exact %.4f)\n",
		3*best.Estimate/float64(p2), g.Transitivity())
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	e := est - truth
	if e < 0 {
		e = -e
	}
	return e / truth
}
