// Lower-bound reductions in action: build the Figure 1 gadget graphs from
// live communication-game instances, verify the 0-versus-T cycle
// dichotomies with exact counters, and run a streaming algorithm as the
// communication protocol, measuring the state handed between players.
package main

import (
	"fmt"
	"log"

	"adjstream/internal/baseline"
	"adjstream/internal/comm"
	"adjstream/internal/lb"
)

func main() {
	fmt.Println("Figure 1a — 3-party pointer jumping → triangle counting (Thm 5.1)")
	for _, want := range []bool{true, false} {
		inst := comm.RandomPJ3(12, want, 5)
		g, err := lb.TrianglePJGadget(inst, 5)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.VerifyDichotomy(); err != nil {
			log.Fatal(err)
		}
		alg, err := baseline.NewExactStream(3)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := comm.RunProtocol(g.Segments, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  answer=%-5v  m=%-4d triangles=%-3.0f  handoffs=%d  communication=%d words (%.1f·m)\n",
			want, g.G.M(), alg.Estimate(), tr.Handoffs, tr.TotalWords,
			float64(tr.TotalWords)/float64(g.G.M()))
	}

	fmt.Println("\nFigure 1c — INDEX on a projective plane → 4-cycle counting (Thm 5.3)")
	strLen, err := lb.IndexGadgetStringLen(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  plane order 5: r=31 points/lines, INDEX string length %d\n", strLen)
	for _, want := range []bool{true, false} {
		inst := comm.RandomIndex(strLen, want, 9)
		g, err := lb.FourCycleIndexGadget(inst, 5, 3)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.VerifyDichotomy(); err != nil {
			log.Fatal(err)
		}
		n, err := g.G.CountCycles(4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  S[x]=%-5v  n=%-4d m=%-4d 4-cycles=%d (girth-6 base graph)\n",
			want, g.G.N(), g.G.M(), n)
	}

	fmt.Println("\nFigure 1e — DISJ → ℓ-cycle counting, ℓ ≥ 5 (Thm 5.5)")
	for _, l := range []int{5, 6, 7} {
		inst := comm.RandomDisj(40, true, uint64(l))
		g, err := lb.LongCycleGadget(inst, 15, l)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.VerifyDichotomy(); err != nil {
			log.Fatal(err)
		}
		alg, err := baseline.NewExactStream(l)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := comm.RunProtocol(g.Segments, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ℓ=%d: m=%-4d %d-cycles=%-3.0f communication=%d words — Ω(m), no sublinear algorithm exists\n",
			l, g.G.M(), l, alg.Estimate(), tr.TotalWords)
	}
}
