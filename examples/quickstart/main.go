// Quickstart: build a small graph, stream it in adjacency-list order, and
// estimate its triangle count with the paper's two-pass algorithm, checking
// against the exact count.
package main

import (
	"fmt"
	"log"

	"adjstream"
)

func main() {
	// A toy graph: two triangles sharing the edge {1,2}, plus a pendant.
	g, err := adjstream.FromEdges([]adjstream.Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3},
		{U: 2, V: 4}, {U: 1, V: 4},
		{U: 4, V: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d, exact triangles=%d\n", g.N(), g.M(), g.Triangles())

	// Present it as an adjacency-list stream (every edge appears once in
	// each endpoint's list; lists are contiguous).
	s := adjstream.SortedStream(g)
	fmt.Printf("stream: %d items over %d lists\n", s.Len(), s.Lists())

	// Estimate with the two-pass Theorem 3.7 algorithm. With SampleProb 1
	// the estimator is exact; shrink it to trade accuracy for space.
	for _, p := range []float64{1.0, 0.75} {
		res, err := adjstream.Estimate(s, adjstream.Options{
			Algorithm:  adjstream.AlgoTwoPassTriangle,
			SampleProb: p,
			Copies:     5,
			Seed:       42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("two-pass estimate at p=%.2f: %.1f (space %d words, %d passes, %d copies)\n",
			p, res.Estimate, res.SpaceWords, res.Passes, res.Copies)
	}

	// The same API counts 4-cycles (Theorem 4.6) and exact ℓ-cycles.
	res, err := adjstream.Estimate(s, adjstream.Options{
		Algorithm:  adjstream.AlgoTwoPassFourCycle,
		SampleProb: 1,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-cycle estimate: %.1f (exact: %d)\n", res.Estimate, g.FourCycles())

	res, err = adjstream.Estimate(s, adjstream.Options{Algorithm: adjstream.AlgoExact, CycleLen: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact 5-cycles: %.0f\n", res.Estimate)
}
