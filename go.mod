module adjstream

go 1.22
