package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"adjstream/internal/serve"
)

// lockedBuffer is a Writer safe to read while the proxy goroutine is still
// writing to it.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startReplicas boots n in-process demo-catalog replicas and returns their
// base URLs joined for -replicas.
func startReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		cat := serve.NewCatalog()
		if err := serve.LoadDemo(cat); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(serve.New(cat, serve.Config{}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// startProxy runs the binary's run() against the replicas and waits for it
// to come up.
func startProxy(t *testing.T, replicas []string, extraArgs ...string) (baseURL string, done chan int, stdout, stderr *lockedBuffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-listen", "localhost:0",
		"-addr-file", addrFile,
		"-demo",
		"-replicas", strings.Join(replicas, ","),
		"-drain-timeout", "5s",
	}, extraArgs...)
	stdout, stderr = &lockedBuffer{}, &lockedBuffer{}
	done = make(chan int, 1)
	go func() { done <- run(args, stdout, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(addrFile)
		if err == nil && len(b) > 0 {
			return "http://" + string(b), done, stdout, stderr
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy never wrote addr file; stderr: %s", stderr)
		}
		select {
		case code := <-done:
			t.Fatalf("proxy exited early with code %d; stderr: %s", code, stderr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// postJSON POSTs body and returns the status, X-Cache header, and the
// response with elapsed_ms removed (the one legitimately varying field).
func postJSON(t *testing.T, url, body string) (int, string, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	delete(m, "elapsed_ms")
	return resp.StatusCode, resp.Header.Get("X-Cache"), m
}

// canonical re-marshals a decoded response for byte comparison.
func canonical(t *testing.T, m map[string]any) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterSmoke is the `make cluster-smoke` entry point: boot three
// replicas and the proxy binary, and check that proxied answers are
// byte-identical (elapsed_ms aside) to a replica's own, that repeats hit
// the proxy's cache, and that SIGTERM drains cleanly.
func TestClusterSmoke(t *testing.T) {
	replicas := startReplicas(t, 3)
	base, done, stdout, stderr := startProxy(t, replicas, "-hedge-after", "2s")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	cases := []string{
		`{"graph":"triangles64","algorithm":"exact","seed":1}`,
		`{"graph":"k16","algorithm":"twopass-triangle","sample_prob":0.5,"copies":7,"parallel":true,"seed":3}`,
		`{"graph":"er400","algorithm":"wedge-sampler","sample_size":128,"pair_cap":256,"copies":5,"seed":9}`,
	}
	for _, body := range cases {
		status, cacheHdr, got := postJSON(t, base+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("proxy status %d for %s: %v", status, body, got)
		}
		if cacheHdr != "miss" {
			t.Errorf("first request X-Cache = %q, want miss (%s)", cacheHdr, body)
		}
		status, _, want := postJSON(t, replicas[0]+"/v1/estimate", body)
		if status != http.StatusOK {
			t.Fatalf("replica status %d for %s", status, body)
		}
		if canonical(t, got) != canonical(t, want) {
			t.Errorf("proxied response differs for %s:\n got %s\nwant %s",
				body, canonical(t, got), canonical(t, want))
		}
		// The repeat is answered from the proxy's cache, byte-identically.
		status, cacheHdr, again := postJSON(t, base+"/v1/estimate", body)
		if status != http.StatusOK || cacheHdr != "hit" {
			t.Errorf("repeat: status %d X-Cache %q, want 200 hit", status, cacheHdr)
		}
		if canonical(t, again) != canonical(t, got) {
			t.Errorf("cached repeat differs for %s", body)
		}
	}

	// Distinguish through the fleet.
	body := `{"graph":"fourcycles64","cycle_len":4,"copies":3,"seed":5}`
	status, _, got := postJSON(t, base+"/v1/distinguish", body)
	if status != http.StatusOK {
		t.Fatalf("distinguish status %d: %v", status, got)
	}
	if found, ok := got["found"].(bool); !ok || !found {
		t.Errorf("distinguish C4 in fourcycles64 = %v, want found=true", got["found"])
	}
	if _, _, want := postJSON(t, replicas[1]+"/v1/distinguish", body); canonical(t, got) != canonical(t, want) {
		t.Errorf("proxied distinguish differs:\n got %s\nwant %s", canonical(t, got), canonical(t, want))
	}

	// Graceful shutdown on SIGTERM.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("proxy did not shut down after SIGTERM; stdout: %s", stdout)
	}
	if !strings.Contains(stdout.String(), "draining...") {
		t.Errorf("shutdown did not announce drain; stdout: %s", stdout)
	}
}

// TestProxyBatch routes batch items through the fleet individually.
func TestProxyBatch(t *testing.T) {
	replicas := startReplicas(t, 2)
	base, done, _, stderr := startProxy(t, replicas)
	defer func() {
		syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		<-done
	}()
	body := `{"requests":[
		{"graph":"triangles64","algorithm":"exact","seed":1},
		{"graph":"nope","algorithm":"exact"},
		{"graph":"k16","algorithm":"naive-twopass","sample_size":64,"copies":3,"seed":2}
	]}`
	resp, err := http.Post(base+"/v1/estimate/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch struct {
		Results []struct {
			Status int            `json:"status"`
			Result map[string]any `json:"result"`
			Error  *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatalf("decode batch: %v (stderr: %s)", err, stderr)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("got %d batch results, want 3", len(batch.Results))
	}
	if batch.Results[0].Status != http.StatusOK || batch.Results[0].Result["estimate"] != float64(64) {
		t.Errorf("item 0 = %+v, want 64 triangles", batch.Results[0])
	}
	if r := batch.Results[1]; r.Status != http.StatusNotFound || r.Error == nil || r.Error.Code != "unknown_graph" {
		t.Errorf("item 1 = %+v, want 404 with unknown_graph envelope", r)
	}
	if batch.Results[2].Status != http.StatusOK {
		t.Errorf("item 2 = %+v, want 200", batch.Results[2])
	}
}

// TestProxyBadFlags covers the usage-error exits.
func TestProxyBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-demo"}, &out, &out); code != 2 {
		t.Errorf("no replicas: code = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "no replicas") {
		t.Errorf("missing usage hint: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-replicas", "http://localhost:1"}, &out, &out); code != 2 {
		t.Errorf("no catalog: code = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-replicas", " , ,", "-demo"}, &out, &out); code != 2 {
		t.Errorf("blank replicas: code = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-replicas", "http://localhost:1", "-demo", "positional"}, &out, &out); code != 2 {
		t.Errorf("positional arg: code = %d, want 2", code)
	}
}

// TestOperationsDocCoversFlags asserts every flag the binary accepts is
// documented in OPERATIONS.md (as `-name`), so the operator guide cannot
// silently fall behind the flag set.
func TestOperationsDocCoversFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	run([]string{"-h"}, &stdout, &stderr)
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	flags := regexp.MustCompile(`(?m)^\s+-([a-z][a-z0-9-]*)`).FindAllStringSubmatch(stderr.String(), -1)
	if len(flags) < 15 {
		t.Fatalf("parsed only %d flags from usage output:\n%s", len(flags), stderr.String())
	}
	for _, m := range flags {
		if !bytes.Contains(doc, []byte("`-"+m[1]+"`")) {
			t.Errorf("flag -%s is not documented in OPERATIONS.md", m[1])
		}
	}
}
