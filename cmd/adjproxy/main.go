// Command adjproxy fronts a fleet of adjserved replicas with the same HTTP
// API adjserved itself serves. Each estimate is split into copy-range shard
// calls, fanned out to replicas chosen by consistent-hashing the graph
// name, and the returned snapshot sets are merged into the bit-identical
// single-node response — so clients, scripts, and the result cache cannot
// tell a proxy from a single server.
//
// Usage:
//
//	adjproxy -replicas http://10.0.0.7:8356,http://10.0.0.8:8356 -demo
//	adjproxy -replicas ... -graphs ./data -shard-retries 4 -hedge-after 300ms
//
// The proxy holds its own catalog (-graphs/-demo) to validate requests and
// key its cache; it must describe the same graphs the replicas serve —
// same names, same content — or shard results will not merge into the
// single-node answer. The API surface is identical to adjserved's:
//
//	POST /v1/estimate              sharded across the fleet
//	POST /v1/distinguish           derived estimator sharded, decision recovered
//	POST /v1/estimate/batch        items scheduled individually
//	GET  /v1/graphs                the proxy's catalog listing
//	GET  /v1/graphs/{name}         the proxy's dataset detail
//	POST /v1/graphs/{name}/edges   applied locally, then forwarded to every replica
//	GET  /healthz                  readiness (503 while draining)
//
// Edge batches apply to the proxy's own catalog first and are then
// forwarded byte-identically to every replica; with matching
// -merge-threshold and -max-versions across the fleet, all nodes advance
// through the same version history, and each sharded estimate pins its
// graph version in the shard spec so replicas run the exact snapshot the
// proxy keyed the result by.
//
// When a shard cannot be completed anywhere — replicas down, retries
// exhausted — the proxy degrades to local single-node execution unless
// -no-fallback is set, in which case the request fails with 503. Health
// probes demote unresponsive replicas in the ring; cluster.* telemetry
// (with -telemetry) exposes every scheduling decision.
//
// On SIGINT/SIGTERM the proxy drains exactly as adjserved does.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"adjstream/internal/cluster"
	"adjstream/internal/serve"
	"adjstream/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeSnapshot dumps the telemetry registry to w, sorted by metric name.
func writeSnapshot(w io.Writer, reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s\t%g\n", name, snap[name])
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adjproxy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "localhost:8355", "proxy listen address")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts and tests)")
	graphsDir := fs.String("graphs", "", "directory of *.edges / *.txt edge-list files (must mirror the replicas' catalog)")
	demo := fs.Bool("demo", false, "load built-in demo graphs (k16, triangles64, fourcycles64, er400)")
	replicas := fs.String("replicas", "", "comma-separated base URLs of the adjserved fleet (required)")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "deadline for each shard attempt against a replica")
	shardRetries := fs.Int("shard-retries", 3, "attempts per shard before the run falls back (rotating replicas)")
	hedgeAfter := fs.Duration("hedge-after", 0, "duplicate a slow shard attempt to the next replica after this delay (0 = off)")
	probeInterval := fs.Duration("probe-interval", 3*time.Second, "how often replica /healthz is polled (negative = never)")
	maxShards := fs.Int("max-shards", 0, "max shard calls per request (0 = one per replica)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
	noFallback := fs.Bool("no-fallback", false, "fail with 503 instead of running locally when no replica can complete a request")
	workers := fs.Int("workers", 0, "max concurrent local-fallback estimations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", -1, "admitted requests waiting for a worker beyond the slots (-1 = 2x workers, 0 = reject immediately)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on per-request deadlines")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	cacheEntries := fs.Int("cache-entries", 4096, "max cached results across all shards")
	cacheTTL := fs.Duration("cache-ttl", 0, "expire cached results after this age (0 = only LRU eviction)")
	noCache := fs.Bool("no-cache", false, "disable the result cache and request coalescing")
	mergeThreshold := fs.Int("merge-threshold", serve.DefaultMergeThreshold, "pending ingested edge ops that force a merge into a new graph version (match the replicas')")
	maxVersions := fs.Int("max-versions", serve.DefaultMaxVersions, "published graph versions retained for version-pinned shard requests (match the replicas')")
	teleAddr := fs.String("telemetry", "", "also serve /debug/vars and /debug/pprof on this address, and dump a metrics snapshot on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "adjproxy: unexpected arguments:", fs.Args())
		return 2
	}
	if *replicas == "" {
		fmt.Fprintln(stderr, "adjproxy: no replicas (use -replicas URL,URL,...)")
		return 2
	}
	var fleet []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			fleet = append(fleet, u)
		}
	}
	if len(fleet) == 0 {
		fmt.Fprintln(stderr, "adjproxy: no replicas (use -replicas URL,URL,...)")
		return 2
	}
	if *graphsDir == "" && !*demo {
		fmt.Fprintln(stderr, "adjproxy: no catalog (use -graphs DIR and/or -demo, mirroring the replicas)")
		return 2
	}

	cat := serve.NewCatalog()
	cat.SetMergePolicy(*mergeThreshold, *maxVersions)
	if *demo {
		if err := serve.LoadDemo(cat); err != nil {
			fmt.Fprintln(stderr, "adjproxy:", err)
			return 1
		}
	}
	if *graphsDir != "" {
		n, err := cat.LoadDir(*graphsDir)
		if err != nil {
			fmt.Fprintln(stderr, "adjproxy:", err)
			return 1
		}
		if n == 0 && !*demo {
			fmt.Fprintf(stderr, "adjproxy: no edge-list files in %s\n", *graphsDir)
			return 1
		}
	}

	var reg *telemetry.Registry
	if *teleAddr != "" {
		ln, err := telemetry.Listen(*teleAddr)
		if err != nil {
			fmt.Fprintln(stderr, "adjproxy:", err)
			return 1
		}
		defer ln.Close()
		reg = telemetry.Global()
		fmt.Fprintf(stdout, "telemetry on http://%s/debug/vars\n", ln.Addr())
	}

	sched, err := cluster.New(cluster.Config{
		Replicas:      fleet,
		ShardTimeout:  *shardTimeout,
		Attempts:      *shardRetries,
		HedgeAfter:    *hedgeAfter,
		ProbeInterval: *probeInterval,
		MaxShards:     *maxShards,
		VirtualNodes:  *vnodes,
	})
	if err != nil {
		fmt.Fprintln(stderr, "adjproxy:", err)
		return 1
	}
	defer sched.Close()

	entries := *cacheEntries
	if *noCache || entries == 0 {
		entries = -1
	}
	srv := serve.New(cat, serve.Config{
		Workers:         *workers,
		Queue:           *queue,
		MaxTimeout:      *maxTimeout,
		CacheEntries:    entries,
		CacheTTL:        *cacheTTL,
		Remote:          sched.Run,
		NoLocalFallback: *noFallback,
		RemoteIngest:    sched.Mutate,
	})
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "adjproxy:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(stderr, "adjproxy:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "proxying %d graphs to %d replicas on http://%s\n",
		cat.Len(), len(fleet), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "adjproxy:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: fail readiness and reject new estimation work first, then
	// wait for in-flight requests before closing connections.
	fmt.Fprintln(stdout, "draining...")
	srv.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.DrainWait(drainCtx); err != nil {
		fmt.Fprintln(stderr, "adjproxy: drain timeout, aborting in-flight requests")
		hs.Close()
	} else if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "adjproxy:", err)
		hs.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed

	if reg != nil {
		fmt.Fprintln(stderr, "final telemetry snapshot:")
		writeSnapshot(stderr, reg)
	}
	fmt.Fprintln(stdout, "bye")
	return 0
}
