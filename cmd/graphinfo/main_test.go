package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adjstream"
	"adjstream/internal/gen"
)

func fixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "k5.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := adjstream.WriteEdgeList(f, gen.Complete(5)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{fixture(t)}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{
		"vertices (n):        5",
		"edges (m):           10",
		"triangles (T):       10",
		"4-cycles:            15",
		"transitivity:        1.0000",
		"girth:               3",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestRunExtraLen(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-len", "5", fixture(t)}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "5-cycles:            12") {
		t.Fatalf("missing 5-cycle count in:\n%s", out.String())
	}
}

func TestRunStreamInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.stream")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := adjstream.WriteStream(f, adjstream.SortedStream(gen.Complete(4))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out, errw bytes.Buffer
	if code := run([]string{"-stream", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "triangles (T):       4") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code == 0 {
		t.Error("expected failure without input")
	}
	if code := run([]string{"/does/not/exist"}, &out, &errw); code == 0 {
		t.Error("expected failure for missing file")
	}
}

func TestRunMotifs(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-motifs", fixture(t)}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	// K5 contains C(5,4) = 5 four-cliques; each contributes 3 four-cycles
	// and 6 diamonds.
	for _, want := range []string{
		"4-cliques:         5",
		"diamonds:          30",
		"4-cycles:          15",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}
