// Command graphinfo prints the structural statistics of a graph that the
// paper's bounds are stated in: n, m, the wedge count P2, exact triangle
// and 4-cycle counts, transitivity, girth, degree statistics, and the
// heavy-edge structure (maximum triangles per edge) that drives estimator
// variance.
//
// Usage:
//
//	graphinfo graph.edges
//	graphinfo -stream stream.txt
//	graphinfo -len 5 graph.edges    # additionally count 5-cycles
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"adjstream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	isStream := fs.Bool("stream", false, "input is an adjacency-list stream file")
	extraLen := fs.Int("len", 0, "additionally count simple cycles of this length (≥ 5; 0 = off)")
	motifs := fs.Bool("motifs", false, "print the full 4-vertex motif census")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: graphinfo [flags] <input-file>")
		fs.Usage()
		return 2
	}

	var g *adjstream.Graph
	var err error
	if *isStream {
		var s *adjstream.Stream
		s, err = adjstream.ReadStreamFile(fs.Arg(0))
		if err == nil {
			g, err = s.Graph()
		}
	} else {
		g, err = adjstream.ReadEdgeListFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(stderr, "graphinfo:", err)
		return 1
	}

	t := g.Triangles()
	c4 := g.FourCycles()
	p2 := g.WedgeCount()
	fmt.Fprintf(stdout, "vertices (n):        %d\n", g.N())
	fmt.Fprintf(stdout, "edges (m):           %d\n", g.M())
	fmt.Fprintf(stdout, "max degree:          %d\n", g.MaxDegree())
	fmt.Fprintf(stdout, "wedges (P2):         %d\n", p2)
	fmt.Fprintf(stdout, "triangles (T):       %d\n", t)
	fmt.Fprintf(stdout, "4-cycles:            %d\n", c4)
	fmt.Fprintf(stdout, "transitivity:        %.4f\n", g.Transitivity())
	fmt.Fprintf(stdout, "girth:               %d\n", g.Girth())
	fmt.Fprintf(stdout, "max triangles/edge:  %d\n", g.MaxTriangleLoad())
	_, d2, d3 := g.DegreeMoments()
	fmt.Fprintf(stdout, "Σdeg², Σdeg³:        %d, %d   (heavy-vertex skew behind the space bounds)\n", d2, d3)
	if t > 0 {
		m := float64(g.M())
		tf := float64(t)
		fmt.Fprintf(stdout, "m/√T:                %.0f   (1-pass budget, Table 1 row 2)\n", m/math.Sqrt(tf))
		fmt.Fprintf(stdout, "m/T^(2/3):           %.0f   (2-pass budget, Theorem 3.7)\n", m/math.Pow(tf, 2.0/3.0))
	}
	if c4 > 0 {
		fmt.Fprintf(stdout, "m/T4^(3/8):          %.0f   (4-cycle budget, Theorem 4.6)\n",
			float64(g.M())/math.Pow(float64(c4), 3.0/8.0))
	}
	if *motifs {
		mc := g.Motifs()
		fmt.Fprintf(stdout, "motif census (4-vertex subgraphs):\n")
		fmt.Fprintf(stdout, "  paths P4:          %d\n", mc.Path4)
		fmt.Fprintf(stdout, "  claws K(1,3):      %d\n", mc.Claw)
		fmt.Fprintf(stdout, "  4-cycles:          %d\n", mc.Cycle4)
		fmt.Fprintf(stdout, "  paws:              %d\n", mc.Paw)
		fmt.Fprintf(stdout, "  diamonds:          %d\n", mc.Diamond)
		fmt.Fprintf(stdout, "  4-cliques:         %d\n", mc.K4)
	}
	if *extraLen >= 5 {
		n, err := g.CountCycles(*extraLen)
		if err != nil {
			fmt.Fprintln(stderr, "graphinfo:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%d-cycles:            %d   (no sublinear streaming algorithm exists, Theorem 5.5)\n", *extraLen, n)
	}
	return 0
}
